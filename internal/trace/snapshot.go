package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// AttrRow is one proc's "where did simulated time go" breakdown over its
// measured interval (ProcStart..ProcEnd). Compute is whatever the
// instrumentation did not claim. Durations marshal as integer nanoseconds.
type AttrRow struct {
	Proc         string        `json:"proc"`
	Tid          int           `json:"tid"`
	Elapsed      time.Duration `json:"elapsed"`
	Compute      time.Duration `json:"compute"`
	Disk         time.Duration `json:"disk"`
	Queue        time.Duration `json:"queue"`
	Lock         time.Duration `json:"lock"`
	CommitWait   time.Duration `json:"commit_wait"`
	CleanerStall time.Duration `json:"cleaner_stall"`
}

// Attribution returns one row per proc slot bracketed by ProcStart, in tid
// order, each covering the measured interval only (attribution accumulated
// before ProcStart is subtracted via the baseline snapshot).
//
//simlint:tokensafe(read-only exporter documented to run after Scheduler.Run returns)
func (t *Tracer) Attribution() []AttrRow {
	if t == nil {
		return nil
	}
	var rows []AttrRow
	for tid, p := range t.procs {
		if p == nil || !p.started {
			continue
		}
		end := p.end
		if !p.ended {
			end = p.start // unclosed interval: report zero elapsed, not garbage
		}
		var cat [numAttrCats]time.Duration
		var claimed time.Duration
		for c := range cat {
			cat[c] = p.cat[c] - p.base[c]
			claimed += cat[c]
		}
		row := AttrRow{
			Proc:         t.procName(tid),
			Tid:          tid,
			Elapsed:      end - p.start,
			Compute:      max(0, end-p.start-claimed),
			Disk:         cat[AttrDisk],
			Queue:        cat[AttrQueue],
			Lock:         cat[AttrLock],
			CommitWait:   cat[AttrCommitWait],
			CleanerStall: cat[AttrCleaner],
		}
		rows = append(rows, row)
	}
	return rows
}

// DiskSection mirrors disk.Device stats without importing the disk package
// (disk imports trace; the snapshot stays one layer up).
type DiskSection struct {
	Reads      int64         `json:"reads"`
	BlocksRead int64         `json:"blocks_read"`
	Writes     int64         `json:"writes"`
	BlocksWrit int64         `json:"blocks_written"`
	Seeks      int64         `json:"seeks"`
	BusyTime   time.Duration `json:"busy"`
	QueueTime  time.Duration `json:"queued"`
	// Devices breaks the totals down per member spindle on multi-device
	// rigs (nil on the classic single disk, keeping those snapshots
	// byte-identical). The top-level fields are the field-wise sum of the
	// rows — each request is counted on exactly one device, never twice.
	Devices []DiskDeviceRow `json:"devices,omitempty"`
}

// DiskDeviceRow is one member device's share of an array's disk totals: the
// per-spindle queue and seek attribution for multi-device rigs.
type DiskDeviceRow struct {
	Dev        int           `json:"dev"`
	Reads      int64         `json:"reads"`
	BlocksRead int64         `json:"blocks_read"`
	Writes     int64         `json:"writes"`
	BlocksWrit int64         `json:"blocks_written"`
	Seeks      int64         `json:"seeks"`
	BusyTime   time.Duration `json:"busy"`
	QueueTime  time.Duration `json:"queued"`
}

// CleanerSection mirrors lfs.CleanerStats.
type CleanerSection struct {
	Runs            int64         `json:"runs"`
	SegmentsCleaned int64         `json:"segments_cleaned"`
	BlocksCopied    int64         `json:"blocks_copied"`
	BlocksDead      int64         `json:"blocks_dead"`
	BusyTime        time.Duration `json:"busy"`
	OverlapTime     time.Duration `json:"overlap"`
	StallTime       time.Duration `json:"stall"`
	HotBlocks       int64         `json:"hot_blocks"`
	ColdBlocks      int64         `json:"cold_blocks"`
	// Snapshot-retention gauges (omitted when no snapshot subsystem ran, so
	// historical snapshots stay byte-identical).
	RetentionSkips int64 `json:"retention_skips,omitempty"`
	RetainedBlocks int64 `json:"retained_blocks,omitempty"`
	HorizonLag     int64 `json:"horizon_lag,omitempty"`
}

// LFSSection mirrors lfs.Stats.
type LFSSection struct {
	PartialSegments int64          `json:"partial_segments"`
	BlocksLogged    int64          `json:"blocks_logged"`
	Checkpoints     int64          `json:"checkpoints"`
	WriteAmp        float64        `json:"write_amplification"`
	Cleaner         CleanerSection `json:"cleaner"`
}

// WALSection mirrors wal.Stats.
type WALSection struct {
	Records      int64 `json:"records"`
	BytesLogged  int64 `json:"bytes_logged"`
	Forces       int64 `json:"forces"`
	GroupCommits int64 `json:"group_commits"`

	Segments         int64 `json:"segments,omitempty"`
	Rotations        int64 `json:"rotations,omitempty"`
	SegmentsSealed   int64 `json:"segments_sealed,omitempty"`
	SegmentsDeleted  int64 `json:"segments_deleted,omitempty"`
	SegmentsArchived int64 `json:"segments_archived,omitempty"`
	Checkpoints      int64 `json:"checkpoints,omitempty"`
	IndexEntries     int64 `json:"index_entries,omitempty"`
	IndexWrites      int64 `json:"index_writes,omitempty"`
}

// LockSection mirrors lock.Stats.
type LockSection struct {
	Acquired       int64         `json:"acquired"`
	Waited         int64         `json:"waited"`
	BlockedTime    time.Duration `json:"blocked"`
	Deadlocks      int64         `json:"deadlocks"`
	DeadlockAborts int64         `json:"deadlock_aborts"`
}

// EmbeddedSection mirrors core.Stats for the kernel-embedded system.
type EmbeddedSection struct {
	Committed    int64 `json:"committed"`
	Aborted      int64 `json:"aborted"`
	CommitFlush  int64 `json:"commit_flushes"`
	PagesFlushed int64 `json:"pages_flushed"`
	BytesFlushed int64 `json:"bytes_flushed"`
	// Multiversion-read counters (omitted when no snapshot ran).
	Snapshots        int64 `json:"snapshots,omitempty"`
	VersionsRecorded int64 `json:"versions_recorded,omitempty"`
}

// ScanSection reports the long-running-reader side of a mixed OLTP + scan
// run: how the scans executed (locking vs snapshot) and what they cost the
// writers (writer-only elapsed/TPS vs the run total).
type ScanSection struct {
	Mode          string        `json:"mode"`
	Scanners      int           `json:"scanners"`
	Scans         int           `json:"scans"`
	Rows          int64         `json:"rows"`
	Retries       int64         `json:"retries,omitempty"` // deadlock-victim scan retries
	WriterElapsed time.Duration `json:"writer_elapsed"`
	WriterTPS     float64       `json:"writer_tps"`
}

// WallStats reports the simulator's own wall-clock performance for a run:
// real time spent inside the scheduled run, scheduler dispatches executed,
// and dispatches per wall-clock second. It measures the simulator, not the
// simulated system, and is therefore inherently nondeterministic — the
// collectors never fill it (snapshots must stay byte-identical across
// same-flag runs); the CLIs populate it only when asked to with -wallstats.
type WallStats struct {
	WallNS       int64   `json:"wall_ns"`
	Dispatches   int64   `json:"dispatches"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// Snapshot is the compact end-of-run report: the benchmark result, the
// per-subsystem statistics, the per-proc time attribution, and the metrics
// registry. It marshals to byte-stable JSON (encoding/json sorts map keys)
// and Render prints the human form both cmd/tpcb and cmd/txnbench use.
type Snapshot struct {
	System  string        `json:"system"`
	Txns    int           `json:"txns"`
	MPL     int           `json:"mpl,omitempty"`
	Retries int64         `json:"retries,omitempty"`
	Elapsed time.Duration `json:"elapsed"`
	TPS     float64       `json:"tps"`

	Disk        *DiskSection     `json:"disk,omitempty"`
	LFS         *LFSSection      `json:"lfs,omitempty"`
	WAL         *WALSection      `json:"wal,omitempty"`
	Locks       *LockSection     `json:"locks,omitempty"`
	Embedded    *EmbeddedSection `json:"embedded,omitempty"`
	Scan        *ScanSection     `json:"scan,omitempty"`
	Attribution []AttrRow        `json:"attribution,omitempty"`
	Metrics     *MetricsSnapshot `json:"metrics,omitempty"`
	Wall        *WallStats       `json:"wall,omitempty"`
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Render returns the human-readable report. The per-subsystem lines keep the
// exact shapes cmd/tpcb printed before this subsystem existed, so scripts
// parsing them keep working; the attribution table is new.
func (s *Snapshot) Render() string {
	var b strings.Builder
	res := fmt.Sprintf("%-12s %6d txns in %8.1fs simulated → %6.2f TPS", s.System, s.Txns, s.Elapsed.Seconds(), s.TPS)
	if s.MPL > 1 {
		res += fmt.Sprintf(" (MPL %d, %d deadlock retries)", s.MPL, s.Retries)
	}
	b.WriteString(res)
	b.WriteByte('\n')

	if d := s.Disk; d != nil {
		fmt.Fprintf(&b, "\ndisk: %d read ops (%d blocks), %d write ops (%d blocks), busy %v, queued %v\n",
			d.Reads, d.BlocksRead, d.Writes, d.BlocksWrit, d.BusyTime, d.QueueTime)
		for _, r := range d.Devices {
			fmt.Fprintf(&b, "disk[%d]: %d read ops (%d blocks), %d write ops (%d blocks), %d seeks, busy %v, queued %v\n",
				r.Dev, r.Reads, r.BlocksRead, r.Writes, r.BlocksWrit, r.Seeks, r.BusyTime, r.QueueTime)
		}
	}
	if f := s.LFS; f != nil {
		fmt.Fprintf(&b, "lfs: %d partial segments, %d blocks logged, %d checkpoints\n",
			f.PartialSegments, f.BlocksLogged, f.Checkpoints)
		cl := f.Cleaner
		fmt.Fprintf(&b, "cleaner: %d segments cleaned in %d passes, %d blocks copied, %d dead, busy %v (%.1f%% of elapsed)\n",
			cl.SegmentsCleaned, cl.Runs, cl.BlocksCopied, cl.BlocksDead,
			cl.BusyTime, pct(cl.BusyTime, s.Elapsed))
		if cl.OverlapTime > 0 || cl.StallTime > 0 {
			fmt.Fprintf(&b, "cleaner: %v overlapped with idle windows, %v stalled the workload (%.1f%% of elapsed)\n",
				cl.OverlapTime, cl.StallTime, pct(cl.StallTime, s.Elapsed))
		}
		if cl.HotBlocks > 0 || cl.ColdBlocks > 0 {
			fmt.Fprintf(&b, "cleaner: %d hot / %d cold blocks relocated, write amplification %.2f×\n",
				cl.HotBlocks, cl.ColdBlocks, f.WriteAmp)
		}
		if cl.RetentionSkips > 0 || cl.RetainedBlocks > 0 || cl.HorizonLag > 0 {
			fmt.Fprintf(&b, "cleaner: %d victim skips for pinned snapshots, %d block versions retained, horizon lag %d\n",
				cl.RetentionSkips, cl.RetainedBlocks, cl.HorizonLag)
		}
	}
	if e := s.Embedded; e != nil {
		fmt.Fprintf(&b, "embedded: %d committed, %d aborted, %d commit flushes, %d pages (%d bytes) forced\n",
			e.Committed, e.Aborted, e.CommitFlush, e.PagesFlushed, e.BytesFlushed)
		if e.Snapshots > 0 || e.VersionsRecorded > 0 {
			fmt.Fprintf(&b, "embedded: %d snapshots, %d page versions recorded\n",
				e.Snapshots, e.VersionsRecorded)
		}
	}
	if sc := s.Scan; sc != nil {
		fmt.Fprintf(&b, "scan: %d scans (%d rows) by %d %s scanner(s), %d retries; writers: %d txns in %.1fs → %.2f TPS\n",
			sc.Scans, sc.Rows, sc.Scanners, sc.Mode, sc.Retries,
			s.Txns, sc.WriterElapsed.Seconds(), sc.WriterTPS)
	}
	if l := s.Locks; l != nil {
		fmt.Fprintf(&b, "locks: %d acquired, %d waits (%v blocked), %d deadlocks (%d aborts)\n",
			l.Acquired, l.Waited, l.BlockedTime, l.Deadlocks, l.DeadlockAborts)
	}
	if w := s.WAL; w != nil {
		fmt.Fprintf(&b, "wal: %d records, %d bytes, %d forces, %d group-absorbed commits\n",
			w.Records, w.BytesLogged, w.Forces, w.GroupCommits)
		if w.Segments > 0 {
			fmt.Fprintf(&b, "wal: %d segments (%d rotations, %d sealed), %d deleted, %d archived, %d checkpoints, %d index entries in %d writes\n",
				w.Segments, w.Rotations, w.SegmentsSealed, w.SegmentsDeleted,
				w.SegmentsArchived, w.Checkpoints, w.IndexEntries, w.IndexWrites)
		}
	}
	if w := s.Wall; w != nil {
		fmt.Fprintf(&b, "wall: %v wall-clock, %d dispatches, %.0f events/s (simulator speed, nondeterministic)\n",
			time.Duration(w.WallNS), w.Dispatches, w.EventsPerSec)
	}
	if len(s.Attribution) > 0 {
		b.WriteString("\nwhere did simulated time go (per proc, measured interval):\n")
		fmt.Fprintf(&b, "  %-10s %10s %10s %10s %10s %10s %10s %10s\n",
			"proc", "elapsed", "compute", "disk", "queue", "lock", "commit", "cleaner")
		var tot AttrRow
		for _, r := range s.Attribution {
			fmt.Fprintf(&b, "  %-10s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
				r.Proc, secs(r.Elapsed), secs(r.Compute), secs(r.Disk), secs(r.Queue),
				secs(r.Lock), secs(r.CommitWait), secs(r.CleanerStall))
			tot.Elapsed += r.Elapsed
			tot.Compute += r.Compute
			tot.Disk += r.Disk
			tot.Queue += r.Queue
			tot.Lock += r.Lock
			tot.CommitWait += r.CommitWait
			tot.CleanerStall += r.CleanerStall
		}
		if len(s.Attribution) > 1 {
			fmt.Fprintf(&b, "  %-10s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
				"total", secs(tot.Elapsed), secs(tot.Compute), secs(tot.Disk), secs(tot.Queue),
				secs(tot.Lock), secs(tot.CommitWait), secs(tot.CleanerStall))
		}
	}
	return b.String()
}

func pct(part, whole time.Duration) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole) * 100
}

func secs(d time.Duration) float64 { return d.Seconds() }
