package trace_test

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// TestNilTracerZeroAllocs pins the off-switch cost: with tracing disabled
// every instrumentation call — including ones that build args — must be
// allocation-free. The typed Arg constructors and the copy-into-arena record
// path keep variadic arg slices on the caller's stack; a regression here
// means untraced runs pay heap traffic for dead annotations.
func TestNilTracerZeroAllocs(t *testing.T) {
	var tr *trace.Tracer
	ctr := tr.Counter("c")
	hist := tr.Hist("h")
	allocs := testing.AllocsPerRun(100, func() {
		span := tr.Begin("io", "op")
		span.End(trace.AI("block", 7), trace.AS("lane", "fg"))
		tr.Complete("io", "op", 0, trace.AI("k", 2), trace.AU("u", 3))
		tr.Instant("txn", "mark", trace.AU("txn", 9))
		tr.Count("c", 1)
		tr.Observe("h", time.Millisecond)
		tr.Attribute(trace.AttrDisk, time.Millisecond)
		tr.AttributeIO(time.Millisecond, 0)
		ctr.Add(1)
		hist.Observe(time.Second)
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %.2f allocs/op, want 0", allocs)
	}
}

// TestLiveTracerSteadyStateAllocs pins the on-switch cost: once the arenas
// and the proc table are warm, recording spans, instants, counters,
// histograms, and attribution allocates nothing per operation beyond the
// amortized arena-block refills (one 4096-slot block per 4096 events).
func TestLiveTracerSteadyStateAllocs(t *testing.T) {
	clk := sim.NewClock()
	tr := trace.New(clk)
	ctr := tr.Counter("c")
	hist := tr.Hist("h")
	work := func() {
		span := tr.Begin("io", "op")
		span.End(trace.AI("block", 7), trace.AS("lane", "fg"))
		tr.Instant("txn", "mark", trace.AU("txn", 1))
		ctr.Add(1)
		hist.Observe(time.Millisecond)
		tr.Attribute(trace.AttrDisk, time.Microsecond)
		tr.AttributeIO(time.Microsecond, time.Microsecond)
	}
	for i := 0; i < 64; i++ {
		work() // warm the arenas, the proc table, and the override stack
	}
	allocs := testing.AllocsPerRun(200, work)
	// 2 events and 3 args per run; a fresh arena block (one make) every
	// ~2048 runs is the only permitted allocation.
	if allocs > 0.05 {
		t.Fatalf("live tracer allocated %.3f allocs/op in steady state, want ~0", allocs)
	}
}

// TestMetricsHandleIdentity: handles resolved before and after increments
// address the same underlying counter the string API sees.
func TestMetricsHandleIdentity(t *testing.T) {
	m := trace.NewMetrics()
	h := m.Counter("x")
	h.Add(3)
	m.Add("x", 4)
	if got := m.CounterValue("x"); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	if again := m.Counter("x"); again != h {
		t.Fatalf("Counter returned a different handle for the same name")
	}
	m.Hist("lat").Observe(time.Millisecond)
	m.Observe("lat", time.Second)
	if got := m.Hist("lat").Count; got != 2 {
		t.Fatalf("hist count = %d, want 2", got)
	}
}
