// Package trace is the deterministic, simulated-clock tracing and metrics
// subsystem of the reproduction. Every subsystem that advances simulated
// time (the disk, the lock manager, the log manager, the cleaner, the two
// transaction managers) can emit spans and instant events stamped with
// sim.Clock time into a Tracer, increment counters, and record latency
// histograms — and the Tracer rolls per-proc time attribution up into a
// "where did simulated time go" report.
//
// Three invariants govern the package (they are the same determinism
// invariants DESIGN.md §7 imposes on the simulation itself, enforced by
// simlint):
//
//   - a nil *Tracer costs nothing: every method nil-checks its receiver, so
//     instrumented hot paths pay one predictable branch when tracing is off;
//   - tracing never perturbs simulated time: the Tracer only ever reads the
//     clock (Now), never advances it, so a traced run and an untraced run of
//     the same seed take exactly the same number of simulated nanoseconds
//     (the MPL=1 exact-nanosecond conformance tests are the guard);
//   - output is byte-identical across same-seed runs: events append in
//     dispatch order (exactly one virtual process runs at a time), and every
//     exporter iterates maps through internal/detsort.
package trace

import (
	"sync"
	"time"

	"repro/internal/sim"
)

// Arg is one key/value annotation on an event. Args are an ordered slice,
// not a map, so event encoding needs no sorting to be deterministic.
type Arg struct {
	Key string
	Val any
}

// A returns an Arg; it keeps call sites short.
func A(key string, val any) Arg { return Arg{Key: key, Val: val} }

// Event phases, following the Chrome trace-event format.
const (
	PhaseComplete = 'X' // a span with a start timestamp and a duration
	PhaseInstant  = 'i' // a point event
)

// Event is one recorded trace event.
type Event struct {
	Name  string
	Cat   string
	Phase byte
	TS    time.Duration // simulated start time
	Dur   time.Duration // simulated duration (PhaseComplete only)
	Tid   int           // proc slot: proc id + 1, 0 = outside proc context
	Args  []Arg
}

// AttrCat classifies where a virtual process's simulated time went. The
// categories are mutually exclusive; whatever the instrumentation does not
// claim is reported as compute time.
type AttrCat int

const (
	// AttrDisk is foreground disk service time (seek + rotation + transfer).
	AttrDisk AttrCat = iota
	// AttrQueue is time spent queued behind another client's disk request.
	AttrQueue
	// AttrLock is time suspended waiting for a page lock.
	AttrLock
	// AttrCommitWait is time a pre-committed transaction spent waiting for
	// the shared group-commit log force.
	AttrCommitWait
	// AttrCleaner is cleaner device time that stalled the workload: the
	// whole pass when cleaning runs synchronously on the critical path, or
	// the residue the idle windows could not absorb in background mode.
	AttrCleaner
	numAttrCats
)

func (c AttrCat) String() string {
	switch c {
	case AttrDisk:
		return "disk"
	case AttrQueue:
		return "queue"
	case AttrLock:
		return "lock"
	case AttrCommitWait:
		return "commit-wait"
	case AttrCleaner:
		return "cleaner-stall"
	}
	return "unknown"
}

// procAttr accumulates one proc slot's attributed time and, once the driver
// brackets the slot with ProcStart/ProcEnd, the measured interval the
// attribution report is computed against.
type procAttr struct {
	name    string
	started bool
	ended   bool
	start   time.Duration
	end     time.Duration
	cat     [numAttrCats]time.Duration
	base    [numAttrCats]time.Duration // cat at ProcStart; excludes setup work
}

// Tracer records events, metrics, and per-proc time attribution against one
// simulated clock. All methods are safe on a nil receiver (no-ops) and safe
// for concurrent use, though within a deterministic run exactly one virtual
// process executes at a time, which is what makes append order reproducible.
type Tracer struct {
	mu       sync.Mutex
	clock    *sim.Clock
	events   []Event
	metrics  *Metrics
	procs    map[int]*procAttr
	override map[int][]AttrCat // per-slot attribution redirect stack
}

// New returns a Tracer stamping events with clock's simulated time.
func New(clock *sim.Clock) *Tracer {
	return &Tracer{
		clock:    clock,
		metrics:  NewMetrics(),
		procs:    make(map[int]*procAttr),
		override: make(map[int][]AttrCat),
	}
}

// Enabled reports whether the tracer is live; instrumentation that must do
// non-trivial work to build args can skip it when false.
func (t *Tracer) Enabled() bool { return t != nil }

// Metrics returns the tracer's metrics registry (nil for a nil tracer; the
// registry's methods are nil-safe too).
func (t *Tracer) Metrics() *Metrics {
	if t == nil {
		return nil
	}
	return t.metrics
}

// tid returns the current proc slot: proc id + 1, or 0 outside proc context.
// Must be called without t.mu held (it takes the clock's lock).
func (t *Tracer) tid() int {
	return t.clock.CurrentProcID() + 1
}

func (t *Tracer) ensureProcLocked(tid int) *procAttr {
	p := t.procs[tid]
	if p == nil {
		p = &procAttr{}
		t.procs[tid] = p
	}
	return p
}

// Span is an in-progress operation opened by Begin. The zero Span (from a
// nil tracer) is valid and End on it is a no-op.
type Span struct {
	t    *Tracer
	cat  string
	name string
	ts   time.Duration
}

// Begin opens a span at the current simulated time. Close it with End; the
// event is recorded only then.
func (t *Tracer) Begin(cat, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, cat: cat, name: name, ts: t.clock.Now()}
}

// End records the span as a complete event lasting from Begin until now.
func (s Span) End(args ...Arg) {
	if s.t == nil {
		return
	}
	s.t.Complete(s.cat, s.name, s.ts, args...)
}

// Complete records a complete event that started at start and ends now.
func (t *Tracer) Complete(cat, name string, start time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	now := t.clock.Now()
	tid := t.tid()
	t.mu.Lock()
	t.ensureProcLocked(tid)
	t.events = append(t.events, Event{
		Name: name, Cat: cat, Phase: PhaseComplete,
		TS: start, Dur: now - start, Tid: tid, Args: args,
	})
	t.mu.Unlock()
}

// Instant records a point event at the current simulated time.
func (t *Tracer) Instant(cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	now := t.clock.Now()
	tid := t.tid()
	t.mu.Lock()
	t.ensureProcLocked(tid)
	t.events = append(t.events, Event{
		Name: name, Cat: cat, Phase: PhaseInstant, TS: now, Tid: tid, Args: args,
	})
	t.mu.Unlock()
}

// Count adds v to the named counter.
func (t *Tracer) Count(name string, v int64) {
	if t == nil {
		return
	}
	t.metrics.Add(name, v)
}

// Observe records d in the named latency histogram.
func (t *Tracer) Observe(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.metrics.Observe(name, d)
}

// Attribute charges d of the current proc's simulated time to category c.
func (t *Tracer) Attribute(c AttrCat, d time.Duration) {
	if t == nil || d <= 0 {
		return
	}
	tid := t.tid()
	t.mu.Lock()
	t.ensureProcLocked(tid).cat[c] += d
	t.mu.Unlock()
}

// AttributeIO charges foreground disk service and queue time, honouring any
// attribution override pushed for the current proc (the cleaner pushes
// AttrCleaner so its own I/O is not mistaken for workload disk time).
func (t *Tracer) AttributeIO(service, queue time.Duration) {
	if t == nil {
		return
	}
	tid := t.tid()
	t.mu.Lock()
	p := t.ensureProcLocked(tid)
	if st := t.override[tid]; len(st) > 0 {
		p.cat[st[len(st)-1]] += service + queue
	} else {
		p.cat[AttrDisk] += service
		p.cat[AttrQueue] += queue
	}
	t.mu.Unlock()
}

// PushAttr redirects the current proc's subsequent AttributeIO charges to
// category c until the matching PopAttr. Used by the cleaner so the disk
// time of a synchronous cleaning pass is classified as cleaner stall.
func (t *Tracer) PushAttr(c AttrCat) {
	if t == nil {
		return
	}
	tid := t.tid()
	t.mu.Lock()
	t.override[tid] = append(t.override[tid], c)
	t.mu.Unlock()
}

// PopAttr undoes the innermost PushAttr of the current proc.
func (t *Tracer) PopAttr() {
	if t == nil {
		return
	}
	tid := t.tid()
	t.mu.Lock()
	if st := t.override[tid]; len(st) > 0 {
		t.override[tid] = st[:len(st)-1]
	}
	t.mu.Unlock()
}

// ProcStart brackets the start of the measured interval for the current
// proc slot and names it in reports. Attribution accumulated before
// ProcStart (the load phase, say) is excluded from the slot's report row.
func (t *Tracer) ProcStart(name string) {
	if t == nil {
		return
	}
	now := t.clock.Now()
	tid := t.tid()
	t.mu.Lock()
	p := t.ensureProcLocked(tid)
	p.name = name
	p.started = true
	p.ended = false
	p.start = now
	p.base = p.cat
	t.mu.Unlock()
}

// ProcEnd closes the measured interval opened by ProcStart.
func (t *Tracer) ProcEnd() {
	if t == nil {
		return
	}
	now := t.clock.Now()
	tid := t.tid()
	t.mu.Lock()
	if p := t.procs[tid]; p != nil && p.started {
		p.end = now
		p.ended = true
	}
	t.mu.Unlock()
}

// Events returns a copy of the recorded events, in append order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// EventCount returns the number of recorded events.
func (t *Tracer) EventCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// procName resolves a slot's display name. Caller must hold t.mu.
func (t *Tracer) procNameLocked(tid int) string {
	if p := t.procs[tid]; p != nil && p.name != "" {
		return p.name
	}
	if tid == 0 {
		return "global"
	}
	return "proc-" + itoa(tid-1)
}

// itoa is strconv.Itoa without the import weight at call sites.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
