// Package trace is the deterministic, simulated-clock tracing and metrics
// subsystem of the reproduction. Every subsystem that advances simulated
// time (the disk, the lock manager, the log manager, the cleaner, the two
// transaction managers) can emit spans and instant events stamped with
// sim.Clock time into a Tracer, increment counters, and record latency
// histograms — and the Tracer rolls per-proc time attribution up into a
// "where did simulated time go" report.
//
// Three invariants govern the package (they are the same determinism
// invariants DESIGN.md §7 imposes on the simulation itself, enforced by
// simlint):
//
//   - a nil *Tracer costs nothing: every method nil-checks its receiver, so
//     instrumented hot paths pay one predictable branch when tracing is off;
//   - tracing never perturbs simulated time: the Tracer only ever reads the
//     clock (Now), never advances it, so a traced run and an untraced run of
//     the same seed take exactly the same number of simulated nanoseconds
//     (the MPL=1 exact-nanosecond conformance tests are the guard);
//   - output is byte-identical across same-seed runs: events append in
//     dispatch order (exactly one virtual process runs at a time), and every
//     exporter walks its state in a deterministic order.
//
// The recording hot path is allocation-free in the steady state: Arg is a
// tagged union (no interface boxing), events and their args are copied into
// chunked arenas whose blocks are reused-never-moved, and per-proc state
// lives in a slice indexed by proc slot. Like the simulation itself the
// Tracer relies on the cooperative scheduling model for safety: exactly one
// virtual process runs at a time and control moves by channel handoff, so
// recording needs no locks. A Tracer must not be shared with goroutines
// outside the simulation while a run is in progress.
package trace

import (
	"time"

	"repro/internal/sim"
)

// argKind discriminates the Arg union.
type argKind uint8

const (
	argInt  argKind = iota // signed integer
	argUint                // unsigned integer
	argStr                 // string
)

// Arg is one key/value annotation on an event. Args are an ordered slice,
// not a map, so event encoding needs no sorting to be deterministic. The
// value is a tagged union of the three types the instrumentation actually
// emits — integers, unsigned integers, and strings — so building an Arg
// never boxes through an interface and never allocates.
type Arg struct {
	Key  string
	str  string
	num  int64
	kind argKind
}

// AI returns an integer-valued Arg.
func AI(key string, v int64) Arg { return Arg{Key: key, num: v, kind: argInt} }

// AU returns an unsigned-integer-valued Arg.
func AU(key string, v uint64) Arg { return Arg{Key: key, num: int64(v), kind: argUint} }

// AS returns a string-valued Arg.
func AS(key string, v string) Arg { return Arg{Key: key, str: v, kind: argStr} }

// A returns an Arg from an arbitrary value; it keeps cold call sites and
// tests short. Hot paths should use the typed constructors (AI, AU, AS),
// which cannot fall through to the string formatting below.
func A(key string, val any) Arg {
	switch v := val.(type) {
	case int:
		return AI(key, int64(v))
	case int64:
		return AI(key, v)
	case int32:
		return AI(key, int64(v))
	case uint64:
		return AU(key, v)
	case uint32:
		return AU(key, uint64(v))
	case uint:
		return AU(key, uint64(v))
	case string:
		return AS(key, v)
	case time.Duration:
		return AI(key, v.Nanoseconds())
	default:
		return AS(key, stringify(val))
	}
}

// stringify is the cold fallback for A on unexpected types. Kept out of A so
// the common cases stay inlinable.
func stringify(val any) string {
	type stringer interface{ String() string }
	if s, ok := val.(stringer); ok {
		return s.String()
	}
	return "?"
}

// Value returns the Arg's value re-boxed as an interface, for tests and
// exporters that want the dynamic type back.
func (a Arg) Value() any {
	switch a.kind {
	case argUint:
		return uint64(a.num)
	case argStr:
		return a.str
	default:
		return a.num
	}
}

// Event phases, following the Chrome trace-event format.
const (
	PhaseComplete = 'X' // a span with a start timestamp and a duration
	PhaseInstant  = 'i' // a point event
)

// Event is one recorded trace event. Args points into the Tracer's arg
// arena; it is immutable once recorded.
type Event struct {
	Name  string
	Cat   string
	Phase byte
	TS    time.Duration // simulated start time
	Dur   time.Duration // simulated duration (PhaseComplete only)
	Tid   int           // proc slot: proc id + 1, 0 = outside proc context
	Args  []Arg
}

// AttrCat classifies where a virtual process's simulated time went. The
// categories are mutually exclusive; whatever the instrumentation does not
// claim is reported as compute time.
type AttrCat int

const (
	// AttrDisk is foreground disk service time (seek + rotation + transfer).
	AttrDisk AttrCat = iota
	// AttrQueue is time spent queued behind another client's disk request.
	AttrQueue
	// AttrLock is time suspended waiting for a page lock.
	AttrLock
	// AttrCommitWait is time a pre-committed transaction spent waiting for
	// the shared group-commit log force.
	AttrCommitWait
	// AttrCleaner is cleaner device time that stalled the workload: the
	// whole pass when cleaning runs synchronously on the critical path, or
	// the residue the idle windows could not absorb in background mode.
	AttrCleaner
	numAttrCats
)

func (c AttrCat) String() string {
	switch c {
	case AttrDisk:
		return "disk"
	case AttrQueue:
		return "queue"
	case AttrLock:
		return "lock"
	case AttrCommitWait:
		return "commit-wait"
	case AttrCleaner:
		return "cleaner-stall"
	}
	return "unknown"
}

// procAttr accumulates one proc slot's attributed time and, once the driver
// brackets the slot with ProcStart/ProcEnd, the measured interval the
// attribution report is computed against.
type procAttr struct {
	name     string
	started  bool
	ended    bool
	start    time.Duration
	end      time.Duration
	cat      [numAttrCats]time.Duration
	base     [numAttrCats]time.Duration // cat at ProcStart; excludes setup work
	override []AttrCat                  // attribution redirect stack (PushAttr)
}

// eventChunkSize is the arena block size for events and args. Blocks are
// allocated whole and never moved, so event Args subslices stay valid, and
// the steady-state cost of recording amortises to zero allocations.
const eventChunkSize = 4096

// Tracer records events, metrics, and per-proc time attribution against one
// simulated clock. All methods are safe on a nil receiver (no-ops). Safety
// under concurrency comes from the cooperative scheduling model (see the
// package comment), not from locks.
type Tracer struct {
	clock   *sim.Clock
	metrics *Metrics
	//simlint:tokenguarded
	procs []*procAttr // indexed by proc slot (tid)

	//simlint:tokenguarded
	full [][]Event // sealed event arena blocks, in record order
	//simlint:tokenguarded
	cur []Event // open event block, len < cap
	//simlint:tokenguarded
	nEvent int // total recorded events across full + cur
	//simlint:tokenguarded
	args []Arg // open arg arena block; sealed blocks are only
	// reachable through the events that point into them
}

// New returns a Tracer stamping events with clock's simulated time.
func New(clock *sim.Clock) *Tracer {
	return &Tracer{clock: clock, metrics: NewMetrics()}
}

// Enabled reports whether the tracer is live; instrumentation that must do
// non-trivial work to build args can skip it when false.
func (t *Tracer) Enabled() bool { return t != nil }

// Metrics returns the tracer's metrics registry (nil for a nil tracer; the
// registry's methods are nil-safe too).
func (t *Tracer) Metrics() *Metrics {
	if t == nil {
		return nil
	}
	return t.metrics
}

// Counter returns a live handle on the named counter, or nil for a nil
// tracer; nil handles are safe to Add to. Hot paths resolve their handles
// once and skip the registry's per-call name lookup thereafter.
func (t *Tracer) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	return t.metrics.Counter(name)
}

// Hist returns a live handle on the named latency histogram, or nil for a
// nil tracer; nil handles are safe to Observe on.
func (t *Tracer) Hist(name string) *Hist {
	if t == nil {
		return nil
	}
	return t.metrics.Hist(name)
}

// tid returns the current proc slot: proc id + 1, or 0 outside proc context.
func (t *Tracer) tid() int {
	return t.clock.CurrentProcID() + 1
}

// proc returns the slot's attribution record, growing the slot table on
// first sight. Slots are dense small integers (proc id + 1), so a slice
// beats a map on every record.
func (t *Tracer) proc(tid int) *procAttr {
	for tid >= len(t.procs) {
		//simlint:alloc(slot table grows to the max proc slot once per run)
		t.procs = append(t.procs, nil)
	}
	p := t.procs[tid]
	if p == nil {
		//simlint:alloc(one attribution record per proc slot, first sight only)
		p = &procAttr{}
		t.procs[tid] = p
	}
	return p
}

// newEvent appends a zeroed event to the arena and returns it for filling.
func (t *Tracer) newEvent() *Event {
	if len(t.cur) == cap(t.cur) {
		if t.cur != nil {
			//simlint:alloc(arena seal: one sealed-block append per eventChunkSize events)
			t.full = append(t.full, t.cur)
		}
		//simlint:alloc(arena block allocation, amortized over eventChunkSize events)
		t.cur = make([]Event, 0, eventChunkSize)
	}
	//simlint:alloc(append within capacity: the block-full check above guarantees room)
	t.cur = append(t.cur, Event{})
	t.nEvent++
	return &t.cur[len(t.cur)-1]
}

// putArgs copies args into the arg arena and returns the stable copy. The
// caller's slice (typically a stack-allocated variadic) is not retained, so
// recording an event never forces the call site's args to escape.
func (t *Tracer) putArgs(args []Arg) []Arg {
	if len(args) == 0 {
		return nil
	}
	if len(t.args)+len(args) > cap(t.args) {
		n := eventChunkSize
		if len(args) > n {
			n = len(args)
		}
		//simlint:alloc(arg arena block allocation, amortized over eventChunkSize args)
		t.args = make([]Arg, 0, n)
	}
	start := len(t.args)
	//simlint:alloc(append within capacity: the block-full check above guarantees room)
	t.args = append(t.args, args...)
	return t.args[start:len(t.args):len(t.args)]
}

// Span is an in-progress operation opened by Begin. The zero Span (from a
// nil tracer) is valid and End on it is a no-op.
type Span struct {
	t    *Tracer
	cat  string
	name string
	ts   time.Duration
}

// Begin opens a span at the current simulated time. Close it with End; the
// event is recorded only then.
//
//simlint:noalloc
func (t *Tracer) Begin(cat, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, cat: cat, name: name, ts: t.clock.Now()}
}

// End records the span as a complete event lasting from Begin until now.
//
//simlint:noalloc
//simlint:tokensafe(recorder API is documented proc-context-only; at MPL=1 the main goroutine is the sole, degenerate token holder)
func (s Span) End(args ...Arg) {
	if s.t == nil {
		return
	}
	s.t.Complete(s.cat, s.name, s.ts, args...)
}

// Complete records a complete event that started at start and ends now.
//
//simlint:noalloc
//simlint:tokensafe(recorder API is documented proc-context-only; at MPL=1 the main goroutine is the sole, degenerate token holder)
func (t *Tracer) Complete(cat, name string, start time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	now := t.clock.Now()
	tid := t.tid()
	t.proc(tid)
	e := t.newEvent()
	e.Name, e.Cat, e.Phase = name, cat, PhaseComplete
	e.TS, e.Dur, e.Tid = start, now-start, tid
	e.Args = t.putArgs(args)
}

// Instant records a point event at the current simulated time.
//
//simlint:noalloc
//simlint:tokensafe(recorder API is documented proc-context-only; at MPL=1 the main goroutine is the sole, degenerate token holder)
func (t *Tracer) Instant(cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	now := t.clock.Now()
	tid := t.tid()
	t.proc(tid)
	e := t.newEvent()
	e.Name, e.Cat, e.Phase = name, cat, PhaseInstant
	e.TS, e.Tid = now, tid
	e.Args = t.putArgs(args)
}

// Count adds v to the named counter. Hot paths should resolve a Counter
// handle instead and skip the name lookup.
//
//simlint:tokensafe(recorder API is documented proc-context-only; at MPL=1 the main goroutine is the sole, degenerate token holder)
func (t *Tracer) Count(name string, v int64) {
	if t == nil {
		return
	}
	t.metrics.Add(name, v)
}

// Observe records d in the named latency histogram. Hot paths should
// resolve a Hist handle instead and skip the name lookup.
//
//simlint:tokensafe(recorder API is documented proc-context-only; at MPL=1 the main goroutine is the sole, degenerate token holder)
func (t *Tracer) Observe(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.metrics.Observe(name, d)
}

// Attribute charges d of the current proc's simulated time to category c.
//
//simlint:noalloc
//simlint:tokensafe(recorder API is documented proc-context-only; at MPL=1 the main goroutine is the sole, degenerate token holder)
func (t *Tracer) Attribute(c AttrCat, d time.Duration) {
	if t == nil || d <= 0 {
		return
	}
	t.proc(t.tid()).cat[c] += d
}

// AttributeIO charges foreground disk service and queue time, honouring any
// attribution override pushed for the current proc (the cleaner pushes
// AttrCleaner so its own I/O is not mistaken for workload disk time).
//
//simlint:noalloc
//simlint:tokensafe(recorder API is documented proc-context-only; at MPL=1 the main goroutine is the sole, degenerate token holder)
func (t *Tracer) AttributeIO(service, queue time.Duration) {
	if t == nil {
		return
	}
	p := t.proc(t.tid())
	if st := p.override; len(st) > 0 {
		p.cat[st[len(st)-1]] += service + queue
	} else {
		p.cat[AttrDisk] += service
		p.cat[AttrQueue] += queue
	}
}

// PushAttr redirects the current proc's subsequent AttributeIO charges to
// category c until the matching PopAttr. Used by the cleaner so the disk
// time of a synchronous cleaning pass is classified as cleaner stall.
//
//simlint:tokensafe(recorder API is documented proc-context-only; at MPL=1 the main goroutine is the sole, degenerate token holder)
func (t *Tracer) PushAttr(c AttrCat) {
	if t == nil {
		return
	}
	p := t.proc(t.tid())
	p.override = append(p.override, c)
}

// PopAttr undoes the innermost PushAttr of the current proc.
//
//simlint:tokensafe(recorder API is documented proc-context-only; at MPL=1 the main goroutine is the sole, degenerate token holder)
func (t *Tracer) PopAttr() {
	if t == nil {
		return
	}
	p := t.proc(t.tid())
	if len(p.override) > 0 {
		p.override = p.override[:len(p.override)-1]
	}
}

// ProcStart brackets the start of the measured interval for the current
// proc slot and names it in reports. Attribution accumulated before
// ProcStart (the load phase, say) is excluded from the slot's report row.
//
//simlint:tokensafe(recorder API is documented proc-context-only; at MPL=1 the main goroutine is the sole, degenerate token holder)
func (t *Tracer) ProcStart(name string) {
	if t == nil {
		return
	}
	now := t.clock.Now()
	p := t.proc(t.tid())
	p.name = name
	p.started = true
	p.ended = false
	p.start = now
	p.base = p.cat
}

// ProcEnd closes the measured interval opened by ProcStart.
//
//simlint:tokensafe(recorder API is documented proc-context-only; at MPL=1 the main goroutine is the sole, degenerate token holder)
func (t *Tracer) ProcEnd() {
	if t == nil {
		return
	}
	now := t.clock.Now()
	tid := t.tid()
	if tid < len(t.procs) {
		if p := t.procs[tid]; p != nil && p.started {
			p.end = now
			p.ended = true
		}
	}
}

// Events returns a copy of the recorded events, in append order.
//
//simlint:tokensafe(read-only collector documented to run after Scheduler.Run returns, when the scheduler goroutine is parked and the main goroutine holds the token)
func (t *Tracer) Events() []Event {
	if t == nil || t.nEvent == 0 {
		return nil
	}
	out := make([]Event, 0, t.nEvent)
	for _, blk := range t.full {
		out = append(out, blk...)
	}
	return append(out, t.cur...)
}

// EventCount returns the number of recorded events.
//
//simlint:tokensafe(read-only collector documented to run after Scheduler.Run returns, when the scheduler goroutine is parked and the main goroutine holds the token)
func (t *Tracer) EventCount() int {
	if t == nil {
		return 0
	}
	return t.nEvent
}

// procName resolves a slot's display name.
func (t *Tracer) procName(tid int) string {
	if tid < len(t.procs) {
		if p := t.procs[tid]; p != nil && p.name != "" {
			return p.name
		}
	}
	if tid == 0 {
		return "global"
	}
	return "proc-" + itoa(tid-1)
}

// itoa is strconv.Itoa without the import weight at call sites.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
