package trace_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// TestNilTracer: every method must be a no-op on a nil receiver — the
// instrumented hot paths rely on it costing nothing when tracing is off.
func TestNilTracer(t *testing.T) {
	var tr *trace.Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	span := tr.Begin("cat", "op")
	span.End(trace.A("k", 1))
	tr.Complete("cat", "op", 0)
	tr.Instant("cat", "op")
	tr.Count("c", 1)
	tr.Observe("h", time.Millisecond)
	tr.Attribute(trace.AttrDisk, time.Millisecond)
	tr.AttributeIO(time.Millisecond, time.Millisecond)
	tr.PushAttr(trace.AttrCleaner)
	tr.PopAttr()
	tr.ProcStart("p")
	tr.ProcEnd()
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer returned events: %v", got)
	}
	if n := tr.EventCount(); n != 0 {
		t.Fatalf("nil tracer EventCount = %d", n)
	}
	if rows := tr.Attribution(); rows != nil {
		t.Fatalf("nil tracer returned attribution: %v", rows)
	}
	m := tr.Metrics()
	m.Add("c", 1)
	m.Observe("h", time.Millisecond)
	if snap := m.Snapshot(); len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil metrics snapshot not empty: %+v", snap)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome on nil tracer: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-tracer chrome output is not JSON: %v\n%s", err, buf.String())
	}
}

// TestSpansAndChrome: spans and instants carry exact simulated timestamps and
// the Chrome export is valid JSON with microsecond ts/dur values.
func TestSpansAndChrome(t *testing.T) {
	clk := sim.NewClock()
	tr := trace.New(clk)

	clk.Advance(5 * time.Microsecond)
	span := tr.Begin("io", "disk.read")
	clk.Advance(3 * time.Microsecond)
	span.End(trace.A("block", 7))
	tr.Instant("txn", "txn.begin", trace.A("txn", 1))

	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if e := events[0]; e.Name != "disk.read" || e.TS != 5*time.Microsecond || e.Dur != 3*time.Microsecond || e.Tid != 0 {
		t.Fatalf("span event wrong: %+v", e)
	}
	if e := events[1]; e.Phase != trace.PhaseInstant || e.TS != 8*time.Microsecond {
		t.Fatalf("instant event wrong: %+v", e)
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var read map[string]any
	for _, e := range doc.TraceEvents {
		if e["name"] == "disk.read" {
			read = e
		}
	}
	if read == nil {
		t.Fatalf("disk.read missing from chrome events: %v", doc.TraceEvents)
	}
	if ts := read["ts"].(float64); ts != 5.0 {
		t.Fatalf("ts = %v µs, want 5", ts)
	}
	if dur := read["dur"].(float64); dur != 3.0 {
		t.Fatalf("dur = %v µs, want 3", dur)
	}
	if args := read["args"].(map[string]any); args["block"].(float64) != 7 {
		t.Fatalf("args = %v", args)
	}
}

// TestTracerNeverAdvancesClock: recording events, metrics, and attribution
// must not move simulated time — the second package invariant.
func TestTracerNeverAdvancesClock(t *testing.T) {
	clk := sim.NewClock()
	tr := trace.New(clk)
	clk.Advance(time.Millisecond)
	before := clk.Now()
	tr.ProcStart("main")
	span := tr.Begin("io", "op")
	span.End()
	tr.Instant("txn", "mark")
	tr.Count("c", 3)
	tr.Observe("h", time.Second)
	tr.AttributeIO(time.Second, time.Second)
	tr.ProcEnd()
	if now := clk.Now(); now != before {
		t.Fatalf("tracing advanced the clock: %v -> %v", before, now)
	}
}

// TestHistogramBuckets: observations land in the right fixed buckets and the
// snapshot carries exact sums and counts.
func TestHistogramBuckets(t *testing.T) {
	m := trace.NewMetrics()
	m.Observe("lat", 1*time.Microsecond)  // below the first bound (10µs)
	m.Observe("lat", 10*time.Microsecond) // on the first bound: bounds are exclusive, so bucket 1
	m.Observe("lat", 42*time.Millisecond) // mid-range
	m.Observe("lat", 10*time.Second)      // beyond the last bound: overflow bucket
	snap := m.Snapshot()
	h, ok := snap.Histograms["lat"]
	if !ok {
		t.Fatalf("histogram missing: %+v", snap)
	}
	if h.Count != 4 {
		t.Fatalf("count = %d, want 4", h.Count)
	}
	want := 1*time.Microsecond + 10*time.Microsecond + 42*time.Millisecond + 10*time.Second
	if h.Sum != want {
		t.Fatalf("sum = %v, want %v", h.Sum, want)
	}
	if len(h.Counts) != len(h.Bounds)+1 {
		t.Fatalf("len(counts) = %d, want len(bounds)+1 = %d", len(h.Counts), len(h.Bounds)+1)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Fatalf("first buckets = %d,%d, want 1,1 (1µs below, 10µs on the exclusive bound)", h.Counts[0], h.Counts[1])
	}
	if h.Counts[len(h.Counts)-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1 (10s)", h.Counts[len(h.Counts)-1])
	}
	var total int64
	for _, c := range h.Counts {
		total += c
	}
	if total != h.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, h.Count)
	}
}

// TestAttribution: the per-proc report charges each category correctly,
// honours the override stack, excludes pre-ProcStart attribution via the
// baseline, and reports the unclaimed remainder as compute.
func TestAttribution(t *testing.T) {
	clk := sim.NewClock()
	tr := trace.New(clk)

	// Load-phase attribution, before ProcStart: must be excluded.
	tr.AttributeIO(time.Hour, 0)

	tr.ProcStart("main")
	clk.Advance(20 * time.Microsecond)
	tr.Attribute(trace.AttrLock, 2*time.Microsecond)
	tr.AttributeIO(3*time.Microsecond, 1*time.Microsecond)
	tr.PushAttr(trace.AttrCleaner)
	tr.AttributeIO(4*time.Microsecond, 0)
	tr.PopAttr()
	tr.Attribute(trace.AttrCommitWait, 5*time.Microsecond)
	tr.ProcEnd()

	rows := tr.Attribution()
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1: %+v", len(rows), rows)
	}
	r := rows[0]
	if r.Proc != "main" || r.Tid != 0 {
		t.Fatalf("row identity wrong: %+v", r)
	}
	if r.Elapsed != 20*time.Microsecond {
		t.Fatalf("elapsed = %v, want 20µs", r.Elapsed)
	}
	if r.Lock != 2*time.Microsecond || r.Disk != 3*time.Microsecond ||
		r.Queue != 1*time.Microsecond || r.CleanerStall != 4*time.Microsecond ||
		r.CommitWait != 5*time.Microsecond {
		t.Fatalf("categories wrong: %+v", r)
	}
	if want := 20*time.Microsecond - 15*time.Microsecond; r.Compute != want {
		t.Fatalf("compute = %v, want %v", r.Compute, want)
	}
}

// TestAttributionComputeClamped: when claimed time exceeds the measured
// interval (over-attribution), compute clamps to zero instead of going
// negative.
func TestAttributionComputeClamped(t *testing.T) {
	clk := sim.NewClock()
	tr := trace.New(clk)
	tr.ProcStart("main")
	clk.Advance(time.Microsecond)
	tr.Attribute(trace.AttrDisk, time.Second)
	tr.ProcEnd()
	rows := tr.Attribution()
	if len(rows) != 1 || rows[0].Compute != 0 {
		t.Fatalf("compute not clamped: %+v", rows)
	}
}
