package trace

import (
	"time"

	"repro/internal/detsort"
)

// DefaultBounds are the upper bounds (exclusive) of the latency histogram
// buckets, log-spaced from 10µs to 5s. A final implicit overflow bucket
// catches everything above the last bound. Fixed bounds keep snapshots
// byte-comparable across runs and across PRs.
var DefaultBounds = []time.Duration{
	10 * time.Microsecond,
	30 * time.Microsecond,
	100 * time.Microsecond,
	300 * time.Microsecond,
	1 * time.Millisecond,
	3 * time.Millisecond,
	10 * time.Millisecond,
	30 * time.Millisecond,
	100 * time.Millisecond,
	300 * time.Millisecond,
	1 * time.Second,
	5 * time.Second,
}

// Counter is a live handle on one named counter. Instrumented hot paths
// resolve the handle once (Metrics.Counter or Tracer.Counter) and Add to it
// directly, paying no map lookup per increment. A nil handle (from a nil
// registry) is safe and free.
type Counter struct {
	v int64
}

// Add increments the counter by v.
func (c *Counter) Add(v int64) {
	if c != nil {
		c.v += v
	}
}

// Value returns the counter's current value.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Hist is a fixed-bucket latency histogram. Like Counter it doubles as a
// live handle: resolve once, Observe directly.
type Hist struct {
	Bounds []time.Duration
	Counts []int64 // len(Bounds)+1; last bucket is overflow
	Sum    time.Duration
	Count  int64
}

func newHist() *Hist {
	return &Hist{Bounds: DefaultBounds, Counts: make([]int64, len(DefaultBounds)+1)}
}

// Observe records d in the histogram. Safe on a nil handle.
func (h *Hist) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.Bounds) && d >= h.Bounds[i] {
		i++
	}
	h.Counts[i]++
	h.Sum += d
	h.Count++
}

// Mean returns the mean observed duration (0 if empty).
func (h *Hist) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// Metrics is a registry of named counters and latency histograms. All
// methods are nil-receiver safe. Like the Tracer it relies on the
// cooperative scheduling model instead of locks (see the package comment).
type Metrics struct {
	//simlint:tokenguarded
	counters map[string]*Counter
	//simlint:tokenguarded
	hists map[string]*Hist
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{counters: make(map[string]*Counter), hists: make(map[string]*Hist)}
}

// Counter returns the live handle for the named counter, creating it on
// first use (nil, which is safe to Add to, for a nil registry).
//
//simlint:tokensafe(handle registration runs at setup time, before Scheduler.Run hands the token to procs)
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Hist returns the live handle for the named histogram, creating it on
// first use (nil, which is safe to Observe on, for a nil registry).
//
//simlint:tokensafe(handle registration runs at setup time, before Scheduler.Run hands the token to procs)
func (m *Metrics) Hist(name string) *Hist {
	if m == nil {
		return nil
	}
	h := m.hists[name]
	if h == nil {
		h = newHist()
		m.hists[name] = h
	}
	return h
}

// Add increments the named counter by v.
//
//simlint:tokensafe(recorder API is documented proc-context-only; at MPL=1 the main goroutine is the sole, degenerate token holder)
func (m *Metrics) Add(name string, v int64) {
	if m == nil {
		return
	}
	m.Counter(name).Add(v)
}

// Set overwrites the named counter with v (used when folding in final
// subsystem Stats at the end of a run).
//
//simlint:tokensafe(read-only collector documented to run after Scheduler.Run returns)
func (m *Metrics) Set(name string, v int64) {
	if m == nil {
		return
	}
	m.Counter(name).v = v
}

// Observe records d in the named histogram, creating it on first use.
//
//simlint:tokensafe(recorder API is documented proc-context-only; at MPL=1 the main goroutine is the sole, degenerate token holder)
func (m *Metrics) Observe(name string, d time.Duration) {
	if m == nil {
		return
	}
	m.Hist(name).Observe(d)
}

// CounterValue returns the named counter's current value.
//
//simlint:tokensafe(read-only collector documented to run after Scheduler.Run returns)
func (m *Metrics) CounterValue(name string) int64 {
	if m == nil {
		return 0
	}
	return m.counters[name].Value()
}

// HistSnapshot is the exported form of one histogram. Durations marshal as
// integer nanoseconds.
type HistSnapshot struct {
	Bounds []time.Duration `json:"bounds"`
	Counts []int64         `json:"counts"`
	Sum    time.Duration   `json:"sum"`
	Count  int64           `json:"count"`
	Mean   time.Duration   `json:"mean"`
}

// MetricsSnapshot is a point-in-time copy of the registry. encoding/json
// sorts map keys, so marshaling a snapshot is byte-stable.
type MetricsSnapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot copies the registry. Iteration goes through detsort so the copy
// itself is built in deterministic order.
//
//simlint:tokensafe(read-only collector documented to run after Scheduler.Run returns)
func (m *Metrics) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Counters:   make(map[string]int64),
		Histograms: make(map[string]HistSnapshot),
	}
	if m == nil {
		return snap
	}
	for _, k := range detsort.Keys(m.counters) {
		snap.Counters[k] = m.counters[k].v
	}
	for _, k := range detsort.Keys(m.hists) {
		h := m.hists[k]
		snap.Histograms[k] = HistSnapshot{
			Bounds: append([]time.Duration(nil), h.Bounds...),
			Counts: append([]int64(nil), h.Counts...),
			Sum:    h.Sum,
			Count:  h.Count,
			Mean:   h.Mean(),
		}
	}
	return snap
}
