package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/detsort"
)

// WriteChrome writes the recorded events in the Chrome trace-event JSON
// format (the "JSON Array Format" with a traceEvents wrapper), loadable in
// Perfetto / chrome://tracing. Timestamps and durations are microseconds
// with nanosecond precision kept in three decimals. Output is byte-identical
// across same-seed runs: events are emitted in append order and the
// metadata thread names iterate the proc map through detsort.
func (t *Tracer) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}
	if t != nil {
		t.mu.Lock()
		emit(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"sim"}}`)
		for _, tid := range detsort.Keys(t.procs) {
			emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%s}}`,
				tid, jsonString(t.procNameLocked(tid))))
		}
		for i := range t.events {
			emit(chromeEvent(&t.events[i]))
		}
		t.mu.Unlock()
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// chromeEvent renders one event as a JSON object literal.
func chromeEvent(e *Event) string {
	var args string
	if len(e.Args) > 0 {
		args = ",\"args\":{"
		for i, a := range e.Args {
			if i > 0 {
				args += ","
			}
			args += jsonString(a.Key) + ":" + jsonValue(a.Val)
		}
		args += "}"
	}
	switch e.Phase {
	case PhaseComplete:
		return fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"X","ts":%s,"dur":%s,"pid":1,"tid":%d%s}`,
			jsonString(e.Name), jsonString(e.Cat), usec(e.TS), usec(e.Dur), e.Tid, args)
	default: // PhaseInstant
		return fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"i","s":"t","ts":%s,"pid":1,"tid":%d%s}`,
			jsonString(e.Name), jsonString(e.Cat), usec(e.TS), e.Tid, args)
	}
}

// usec formats a duration as decimal microseconds with the sub-microsecond
// nanoseconds as three fixed decimals, so exact nanosecond timestamps
// survive the trace format's microsecond convention.
func usec(d time.Duration) string {
	ns := d.Nanoseconds()
	neg := ""
	if ns < 0 {
		neg = "-"
		ns = -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

func jsonValue(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return jsonString(fmt.Sprint(v))
	}
	return string(b)
}
