package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// WriteChrome writes the recorded events in the Chrome trace-event JSON
// format (the "JSON Array Format" with a traceEvents wrapper), loadable in
// Perfetto / chrome://tracing. Timestamps and durations are microseconds
// with nanosecond precision kept in three decimals. Output is byte-identical
// across same-seed runs: events are emitted in append order and the
// metadata thread names walk the slot table in ascending tid order.
//
//simlint:tokensafe(read-only exporter documented to run after Scheduler.Run returns)
func (t *Tracer) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}
	if t != nil {
		emit(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"sim"}}`)
		for tid, p := range t.procs {
			if p == nil {
				continue
			}
			emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%s}}`,
				tid, jsonString(t.procName(tid))))
		}
		for _, blk := range t.full {
			for i := range blk {
				emit(chromeEvent(&blk[i]))
			}
		}
		for i := range t.cur {
			emit(chromeEvent(&t.cur[i]))
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// chromeEvent renders one event as a JSON object literal.
func chromeEvent(e *Event) string {
	var args string
	if len(e.Args) > 0 {
		args = ",\"args\":{"
		for i, a := range e.Args {
			if i > 0 {
				args += ","
			}
			args += jsonString(a.Key) + ":" + jsonValue(a)
		}
		args += "}"
	}
	switch e.Phase {
	case PhaseComplete:
		return fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"X","ts":%s,"dur":%s,"pid":1,"tid":%d%s}`,
			jsonString(e.Name), jsonString(e.Cat), usec(e.TS), usec(e.Dur), e.Tid, args)
	default: // PhaseInstant
		return fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"i","s":"t","ts":%s,"pid":1,"tid":%d%s}`,
			jsonString(e.Name), jsonString(e.Cat), usec(e.TS), e.Tid, args)
	}
}

// usec formats a duration as decimal microseconds with the sub-microsecond
// nanoseconds as three fixed decimals, so exact nanosecond timestamps
// survive the trace format's microsecond convention.
func usec(d time.Duration) string {
	ns := d.Nanoseconds()
	neg := ""
	if ns < 0 {
		neg = "-"
		ns = -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// jsonValue renders an Arg's value: integers as decimal literals, strings
// JSON-escaped — the same bytes encoding/json produced for the old
// interface-valued Arg, so trace files stay byte-comparable across the
// tagged-union change.
func jsonValue(a Arg) string {
	switch a.kind {
	case argUint:
		return strconv.FormatUint(uint64(a.num), 10)
	case argStr:
		return jsonString(a.str)
	default:
		return strconv.FormatInt(a.num, 10)
	}
}
