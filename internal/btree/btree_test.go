package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/pagestore"
)

func newTree(t *testing.T) *Tree {
	t.Helper()
	tr, err := Create(pagestore.NewMemStore(512)) // small pages force splits
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func key(i int) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(i))
	return b
}

func TestPutGet(t *testing.T) {
	tr := newTree(t)
	if err := tr.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, err := tr.Get([]byte("hello"))
	if err != nil || string(v) != "world" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := tr.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
}

func TestPutReplace(t *testing.T) {
	tr := newTree(t)
	tr.Put([]byte("k"), []byte("v1"))
	tr.Put([]byte("k"), []byte("v2"))
	v, _ := tr.Get([]byte("k"))
	if string(v) != "v2" {
		t.Fatalf("Get = %q", v)
	}
	if tr.Count() != 1 {
		t.Fatalf("Count = %d, want 1", tr.Count())
	}
}

func TestManyInsertionsSplit(t *testing.T) {
	tr := newTree(t)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i*7919%n), key(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if tr.Height() < 2 {
		t.Fatalf("height = %d; %d inserts should split", tr.Height(), n)
	}
	if tr.Count() != n {
		t.Fatalf("Count = %d, want %d", tr.Count(), n)
	}
	if cnt, err := tr.Check(); err != nil || cnt != n {
		t.Fatalf("Check = %d, %v", cnt, err)
	}
	for i := 0; i < n; i += 97 {
		if _, err := tr.Get(key(i)); err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
	}
}

func TestScanInKeyOrder(t *testing.T) {
	tr := newTree(t)
	const n = 500
	// Insert in random-ish order.
	for i := 0; i < n; i++ {
		tr.Put(key(i*613%n), []byte{byte(i)})
	}
	c, err := tr.First()
	if err != nil {
		t.Fatal(err)
	}
	var prev []byte
	count := 0
	for c.Next() {
		if prev != nil && bytes.Compare(prev, c.Key()) >= 0 {
			t.Fatal("scan out of order")
		}
		prev = append(prev[:0], c.Key()...)
		count++
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if count != n {
		t.Fatalf("scan visited %d, want %d", count, n)
	}
}

func TestSeek(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 100; i += 2 {
		tr.Put(key(i), key(i))
	}
	// Seek to an absent odd key: lands on the next even one.
	c, err := tr.Seek(key(31))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Next() {
		t.Fatal("expected an entry after seek")
	}
	if !bytes.Equal(c.Key(), key(32)) {
		t.Fatalf("Seek(31) → %v, want 32", c.Key())
	}
	// Seek past the end.
	c, _ = tr.Seek(key(1000))
	if c.Next() {
		t.Fatal("seek past end should be exhausted")
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(t)
	const n = 800
	for i := 0; i < n; i++ {
		tr.Put(key(i), key(i))
	}
	for i := 0; i < n; i += 2 {
		if err := tr.Delete(key(i)); err != nil {
			t.Fatalf("Delete(%d): %v", i, err)
		}
	}
	if tr.Count() != n/2 {
		t.Fatalf("Count = %d, want %d", tr.Count(), n/2)
	}
	for i := 0; i < n; i++ {
		_, err := tr.Get(key(i))
		if i%2 == 0 && !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key %d still present: %v", i, err)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("surviving key %d lost: %v", i, err)
		}
	}
	if cnt, err := tr.Check(); err != nil || cnt != n/2 {
		t.Fatalf("Check = %d, %v", cnt, err)
	}
}

func TestDeleteAll(t *testing.T) {
	tr := newTree(t)
	const n = 300
	for i := 0; i < n; i++ {
		tr.Put(key(i), key(i))
	}
	for i := n - 1; i >= 0; i-- {
		if err := tr.Delete(key(i)); err != nil {
			t.Fatalf("Delete(%d): %v", i, err)
		}
	}
	if tr.Count() != 0 {
		t.Fatalf("Count = %d", tr.Count())
	}
	c, _ := tr.First()
	if c.Next() {
		t.Fatal("empty tree should scan nothing")
	}
	// Reuse after emptying.
	tr.Put([]byte("again"), []byte("yes"))
	if v, err := tr.Get([]byte("again")); err != nil || string(v) != "yes" {
		t.Fatalf("reuse failed: %q %v", v, err)
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := newTree(t)
	tr.Put([]byte("a"), []byte("1"))
	if err := tr.Delete([]byte("b")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
}

func TestTooLargeRejected(t *testing.T) {
	tr := newTree(t)
	big := make([]byte, 400)
	if err := tr.Put([]byte("k"), big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}

func TestPersistenceViaOpen(t *testing.T) {
	st := pagestore.NewMemStore(512)
	tr, err := Create(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		tr.Put(key(i), key(i*2))
	}
	tr2, err := Open(st)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Count() != 400 {
		t.Fatalf("Count after Open = %d", tr2.Count())
	}
	v, err := tr2.Get(key(123))
	if err != nil || !bytes.Equal(v, key(246)) {
		t.Fatalf("Get after Open = %v, %v", v, err)
	}
}

func TestVariableLengthKeys(t *testing.T) {
	tr := newTree(t)
	keys := []string{"a", "ab", "abc", "b", "ba", "z", "zz", "0", "00", "m"}
	for i, k := range keys {
		if err := tr.Put([]byte(k), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	c, _ := tr.First()
	i := 0
	for c.Next() {
		if string(c.Key()) != sorted[i] {
			t.Fatalf("position %d: got %q want %q", i, c.Key(), sorted[i])
		}
		i++
	}
	if i != len(keys) {
		t.Fatalf("visited %d keys", i)
	}
}

// Property: the tree behaves like a sorted map under random put/delete.
func TestTreeMatchesMapProperty(t *testing.T) {
	tr := newTree(t)
	shadow := map[string]string{}
	op := func(ops []struct {
		K   uint16
		V   uint16
		Del bool
	}) bool {
		for _, o := range ops {
			k := string(key(int(o.K % 512)))
			if o.Del {
				_, exists := shadow[k]
				err := tr.Delete([]byte(k))
				if exists != (err == nil) {
					return false
				}
				delete(shadow, k)
			} else {
				v := string(key(int(o.V)))
				if err := tr.Put([]byte(k), []byte(v)); err != nil {
					return false
				}
				shadow[k] = v
			}
		}
		if tr.Count() != int64(len(shadow)) {
			return false
		}
		for k, v := range shadow {
			got, err := tr.Get([]byte(k))
			if err != nil || string(got) != v {
				return false
			}
		}
		cnt, err := tr.Check()
		return err == nil && cnt == int64(len(shadow))
	}
	if err := quick.Check(op, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialInsertDense(t *testing.T) {
	// Sequential insertion (the TPC-B account load) must produce a valid,
	// scannable tree.
	tr := newTree(t)
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), key(i)); err != nil {
			t.Fatal(err)
		}
	}
	cnt, err := tr.Check()
	if err != nil || cnt != n {
		t.Fatalf("Check = %d, %v", cnt, err)
	}
	c, _ := tr.First()
	i := 0
	for c.Next() {
		if !bytes.Equal(c.Key(), key(i)) {
			t.Fatalf("scan position %d wrong", i)
		}
		i++
	}
	if i != n {
		t.Fatalf("scan visited %d", i)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	st := pagestore.NewMemStore(512)
	st.AllocPage()
	if _, err := Open(st); err == nil {
		t.Fatal("opening garbage should fail")
	}
}

func ExampleTree() {
	st := pagestore.NewMemStore(4096)
	tr, _ := Create(st)
	tr.Put([]byte("account-42"), []byte("balance=100"))
	v, _ := tr.Get([]byte("account-42"))
	fmt.Println(string(v))
	// Output: balance=100
}

func sortedFeeder(n int) func() ([]byte, []byte, bool) {
	i := 0
	return func() ([]byte, []byte, bool) {
		if i >= n {
			return nil, nil, false
		}
		k := key(i)
		v := key(i * 2)
		i++
		return k, v, true
	}
}

func TestBulkLoadBasic(t *testing.T) {
	st := pagestore.NewMemStore(512)
	tr, err := BulkLoad(st, sortedFeeder(5000))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 5000 {
		t.Fatalf("Count = %d", tr.Count())
	}
	if cnt, err := tr.Check(); err != nil || cnt != 5000 {
		t.Fatalf("Check = %d, %v", cnt, err)
	}
	// Point lookups.
	for i := 0; i < 5000; i += 137 {
		v, err := tr.Get(key(i))
		if err != nil || !bytes.Equal(v, key(i*2)) {
			t.Fatalf("Get(%d) = %v, %v", i, v, err)
		}
	}
	// Full ordered scan.
	c, _ := tr.First()
	i := 0
	for c.Next() {
		if !bytes.Equal(c.Key(), key(i)) {
			t.Fatalf("scan position %d wrong", i)
		}
		i++
	}
	if i != 5000 {
		t.Fatalf("scan visited %d", i)
	}
}

func TestBulkLoadThenMutate(t *testing.T) {
	st := pagestore.NewMemStore(512)
	tr, err := BulkLoad(st, sortedFeeder(2000))
	if err != nil {
		t.Fatal(err)
	}
	// Inserts, replaces, and deletes must work on a bulk-built tree.
	for i := 0; i < 500; i++ {
		if err := tr.Put(key(10000+i), key(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i += 2 {
		if err := tr.Delete(key(i)); err != nil {
			t.Fatalf("Delete(%d): %v", i, err)
		}
	}
	want := int64(2000 - 1000 + 500)
	if tr.Count() != want {
		t.Fatalf("Count = %d, want %d", tr.Count(), want)
	}
	if cnt, err := tr.Check(); err != nil || cnt != want {
		t.Fatalf("Check = %d, %v", cnt, err)
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	st := pagestore.NewMemStore(512)
	tr, err := BulkLoad(st, sortedFeeder(0))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 0 {
		t.Fatalf("Count = %d", tr.Count())
	}
	if _, err := tr.Get(key(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
	if err := tr.Put(key(1), key(2)); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadSingleEntry(t *testing.T) {
	st := pagestore.NewMemStore(512)
	tr, err := BulkLoad(st, sortedFeeder(1))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 1 || tr.Count() != 1 {
		t.Fatalf("height=%d count=%d", tr.Height(), tr.Count())
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	st := pagestore.NewMemStore(512)
	vals := [][]byte{key(5), key(3)}
	i := 0
	_, err := BulkLoad(st, func() ([]byte, []byte, bool) {
		if i >= len(vals) {
			return nil, nil, false
		}
		k := vals[i]
		i++
		return k, k, true
	})
	if err == nil {
		t.Fatal("unsorted input must be rejected")
	}
}

func TestBulkLoadRejectsDuplicates(t *testing.T) {
	st := pagestore.NewMemStore(512)
	i := 0
	_, err := BulkLoad(st, func() ([]byte, []byte, bool) {
		i++
		if i > 2 {
			return nil, nil, false
		}
		return key(7), key(7), true
	})
	if err == nil {
		t.Fatal("duplicate keys must be rejected")
	}
}

func TestBulkLoadMatchesIncremental(t *testing.T) {
	// The bulk-built tree must contain exactly the same mapping as an
	// incrementally built one.
	stA := pagestore.NewMemStore(512)
	bulk, err := BulkLoad(stA, sortedFeeder(1234))
	if err != nil {
		t.Fatal(err)
	}
	inc := newTree(t)
	for i := 0; i < 1234; i++ {
		inc.Put(key(i), key(i*2))
	}
	ca, _ := bulk.First()
	cb, _ := inc.First()
	for {
		na, nb := ca.Next(), cb.Next()
		if na != nb {
			t.Fatal("trees have different lengths")
		}
		if !na {
			break
		}
		if !bytes.Equal(ca.Key(), cb.Key()) || !bytes.Equal(ca.Value(), cb.Value()) {
			t.Fatalf("divergence at %v vs %v", ca.Key(), cb.Key())
		}
	}
}
