// Package btree implements a B+-tree access method over a pagestore.Store,
// in the spirit of the 4.4BSD db(3) btree routines the paper's record layer
// uses [2]. Keys and values are arbitrary byte strings; keys are kept in
// lexicographic order, so fixed-width big-endian integer keys scan "in key
// order" exactly as the paper's SCAN test requires. Leaves are chained for
// range scans.
//
// Concurrency: the tree itself is single-writer; when run under LIBTP the
// page store acquires two-phase page locks on every access, which
// approximates the high-concurrency B-tree locking of [7] at page
// granularity (the paper's own implementation locked pages too, §3).
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/pagestore"
)

// Errors.
var (
	ErrNotFound = errors.New("btree: key not found")
	ErrTooLarge = errors.New("btree: entry exceeds page capacity")
	ErrCorrupt  = errors.New("btree: corrupt page")
)

const (
	metaMagic = 0x42545231 // "BTR1"

	pgLeaf     = 1
	pgInternal = 2
)

// Tree is a B+-tree.
type Tree struct {
	st       pagestore.Store
	pageSize int
	root     int64
	height   int
	count    int64
	cache    *NodeCache // optional decoded-interior-node cache
	scratch  []byte     // reusable page buffer for cached descents
}

// meta page layout: magic u32, root i64, height u32, count i64.
func (t *Tree) writeMeta() error {
	b := make([]byte, t.pageSize)
	le := binary.LittleEndian
	le.PutUint32(b[0:], metaMagic)
	le.PutUint64(b[4:], uint64(t.root))
	le.PutUint32(b[12:], uint32(t.height))
	le.PutUint64(b[16:], uint64(t.count))
	return t.st.WritePage(0, b)
}

// Create initializes a new tree on an empty store.
func Create(st pagestore.Store) (*Tree, error) {
	t := &Tree{st: st, pageSize: st.PageSize()}
	if n, err := st.NumPages(); err != nil {
		return nil, err
	} else if n != 0 {
		return nil, fmt.Errorf("btree: store not empty (%d pages)", n)
	}
	if _, err := st.AllocPage(); err != nil { // page 0: meta
		return nil, err
	}
	rootNo, err := st.AllocPage()
	if err != nil {
		return nil, err
	}
	t.root = rootNo
	t.height = 1
	if err := t.writeNode(&node{pageNo: rootNo, leaf: true, next: 0}); err != nil {
		return nil, err
	}
	return t, t.writeMeta()
}

// Open loads an existing tree.
func Open(st pagestore.Store) (*Tree, error) {
	t := &Tree{st: st, pageSize: st.PageSize()}
	b := make([]byte, t.pageSize)
	if err := st.ReadPage(0, b); err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	if le.Uint32(b[0:]) != metaMagic {
		return nil, fmt.Errorf("%w: bad meta magic", ErrCorrupt)
	}
	t.root = int64(le.Uint64(b[4:]))
	t.height = int(le.Uint32(b[12:]))
	t.count = int64(le.Uint64(b[16:]))
	return t, nil
}

// Count returns the number of stored records.
func (t *Tree) Count() int64 { return t.count }

// Height returns the tree height (1 = a single leaf).
func (t *Tree) Height() int { return t.height }

// node is the in-memory form of a tree page.
type node struct {
	pageNo   int64
	lsn      uint64 // page version stamp; writeNode bumps it on every write
	leaf     bool
	next     int64 // leaf chain
	keys     [][]byte
	vals     [][]byte // leaf only
	children []int64  // internal only; len(children) == len(keys)+1
}

// Page layout:
//
//	kind  u8 (leaf/internal)
//	nkeys u16
//	leaf:     next i64, then nkeys × (klen u16, vlen u16, key, val)
//	internal: lsn u64, child0 i64, then nkeys × (klen u16, key, child i64)
//
// Only interior pages carry an LSN (bumped on every write, validating
// NodeCache entries): leaves are never cached, and keeping their header
// unchanged preserves leaf capacity — the dominant term in file size.
const nodeHeader = 1 + 2

func (t *Tree) nodeSize(n *node) int {
	size := nodeHeader + 8 // next i64 (leaf) or child0 i64 (internal)
	if !n.leaf {
		size += 8 // lsn u64
	}
	for i, k := range n.keys {
		if n.leaf {
			size += 2 + 2 + len(k) + len(n.vals[i])
		} else {
			size += 2 + len(k) + 8
		}
	}
	return size
}

func (t *Tree) writeNode(n *node) error {
	b := make([]byte, t.pageSize)
	le := binary.LittleEndian
	if n.leaf {
		b[0] = pgLeaf
	} else {
		b[0] = pgInternal
	}
	le.PutUint16(b[1:], uint16(len(n.keys)))
	off := nodeHeader
	if n.leaf {
		le.PutUint64(b[off:], uint64(n.next))
		off += 8
		for i, k := range n.keys {
			le.PutUint16(b[off:], uint16(len(k)))
			le.PutUint16(b[off+2:], uint16(len(n.vals[i])))
			off += 4
			copy(b[off:], k)
			off += len(k)
			copy(b[off:], n.vals[i])
			off += len(n.vals[i])
		}
	} else {
		n.lsn++
		le.PutUint64(b[off:], n.lsn)
		off += 8
		le.PutUint64(b[off:], uint64(n.children[0]))
		off += 8
		for i, k := range n.keys {
			le.PutUint16(b[off:], uint16(len(k)))
			off += 2
			copy(b[off:], k)
			off += len(k)
			le.PutUint64(b[off:], uint64(n.children[i+1]))
			off += 8
		}
	}
	if off > t.pageSize {
		return ErrTooLarge
	}
	return t.st.WritePage(n.pageNo, b)
}

func (t *Tree) readNode(pageNo int64) (*node, error) {
	b := make([]byte, t.pageSize)
	if err := t.st.ReadPage(pageNo, b); err != nil {
		return nil, err
	}
	return decodeNode(pageNo, b)
}

// decodeNode builds the in-memory node from page bytes b, which the node
// aliases: b must be owned by (private to) the returned node.
func decodeNode(pageNo int64, b []byte) (*node, error) {
	le := binary.LittleEndian
	n := &node{pageNo: pageNo}
	switch b[0] {
	case pgLeaf:
		n.leaf = true
	case pgInternal:
	default:
		return nil, fmt.Errorf("%w: page %d kind %d", ErrCorrupt, pageNo, b[0])
	}
	nkeys := int(le.Uint16(b[1:]))
	off := nodeHeader
	// Keys and values alias the page buffer b, which is private to this node:
	// every mutation path replaces the slice headers (inserts copy the caller's
	// bytes into fresh slices, splits copy headers wholesale), never writes
	// through them, so aliasing is safe and saves a per-entry copy. The capped
	// three-index subslices keep an append from one entry clobbering the next.
	if n.leaf {
		n.next = int64(le.Uint64(b[off:]))
		off += 8
		n.keys = make([][]byte, nkeys)
		n.vals = make([][]byte, nkeys)
		for i := 0; i < nkeys; i++ {
			klen := int(le.Uint16(b[off:]))
			vlen := int(le.Uint16(b[off+2:]))
			off += 4
			n.keys[i] = b[off : off+klen : off+klen]
			off += klen
			n.vals[i] = b[off : off+vlen : off+vlen]
			off += vlen
		}
	} else {
		n.lsn = le.Uint64(b[off:])
		off += 8
		n.keys = make([][]byte, nkeys)
		n.children = make([]int64, nkeys+1)
		n.children[0] = int64(le.Uint64(b[off:]))
		off += 8
		for i := 0; i < nkeys; i++ {
			klen := int(le.Uint16(b[off:]))
			off += 2
			n.keys[i] = b[off : off+klen : off+klen]
			off += klen
			n.children[i+1] = int64(le.Uint64(b[off:]))
			off += 8
		}
	}
	return n, nil
}

// search returns the index of the first key ≥ key, and whether it is equal.
//
//simlint:noalloc
func search(keys [][]byte, key []byte) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	eq := lo < len(keys) && bytes.Equal(keys[lo], key)
	return lo, eq
}

// childIndex returns which child of an internal node covers key.
//
//simlint:noalloc
func childIndex(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(key, keys[mid]) < 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) ([]byte, error) {
	n, err := t.readNodeCached(t.root)
	if err != nil {
		return nil, err
	}
	for !n.leaf {
		n, err = t.readNodeCached(n.children[childIndex(n.keys, key)])
		if err != nil {
			return nil, err
		}
	}
	i, eq := search(n.keys, key)
	if !eq {
		return nil, ErrNotFound
	}
	return n.vals[i], nil
}

// split describes a node split propagating upward.
type split struct {
	key   []byte // separator promoted to the parent
	right int64  // new right sibling
}

// Put inserts or replaces key's value. The meta page is rewritten only when
// something in it changed (replacing an existing key's value leaves it
// untouched — important for update-heavy workloads like TPC-B, where the
// meta page would otherwise become a per-transaction hot spot).
func (t *Tree) Put(key, value []byte) error {
	if nodeHeader+8+4+len(key)+len(value) > t.pageSize/2 {
		return ErrTooLarge
	}
	sp, inserted, err := t.insert(t.root, key, value)
	if err != nil {
		return err
	}
	metaDirty := false
	if sp != nil {
		newRootNo, err := t.st.AllocPage()
		if err != nil {
			return err
		}
		root := &node{
			pageNo:   newRootNo,
			keys:     [][]byte{sp.key},
			children: []int64{t.root, sp.right},
		}
		if err := t.writeNode(root); err != nil {
			return err
		}
		t.root = newRootNo
		t.height++
		metaDirty = true
	}
	if inserted {
		t.count++
		metaDirty = true
	}
	if !metaDirty {
		return nil
	}
	return t.writeMeta()
}

func (t *Tree) insert(pageNo int64, key, value []byte) (*split, bool, error) {
	n, err := t.readNode(pageNo)
	if err != nil {
		return nil, false, err
	}
	if n.leaf {
		i, eq := search(n.keys, key)
		inserted := !eq
		if eq {
			n.vals[i] = append([]byte(nil), value...)
		} else {
			n.keys = append(n.keys, nil)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = append([]byte(nil), key...)
			n.vals = append(n.vals, nil)
			copy(n.vals[i+1:], n.vals[i:])
			n.vals[i] = append([]byte(nil), value...)
		}
		sp, err := t.maybeSplit(n)
		return sp, inserted, err
	}
	ci := childIndex(n.keys, key)
	sp, inserted, err := t.insert(n.children[ci], key, value)
	if err != nil {
		return nil, false, err
	}
	if sp == nil {
		return nil, inserted, nil
	}
	// Insert the promoted separator into this node.
	n.keys = append(n.keys, nil)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sp.key
	n.children = append(n.children, 0)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = sp.right
	up, err := t.maybeSplit(n)
	return up, inserted, err
}

// maybeSplit writes n back, splitting it first if it overflows the page.
func (t *Tree) maybeSplit(n *node) (*split, error) {
	if t.nodeSize(n) <= t.pageSize {
		return nil, t.writeNode(n)
	}
	mid := len(n.keys) / 2
	rightNo, err := t.st.AllocPage()
	if err != nil {
		return nil, err
	}
	var sep []byte
	right := &node{pageNo: rightNo, leaf: n.leaf}
	if n.leaf {
		right.keys = append(right.keys, n.keys[mid:]...)
		right.vals = append(right.vals, n.vals[mid:]...)
		right.next = n.next
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = rightNo
		sep = append([]byte(nil), right.keys[0]...)
	} else {
		// The middle key moves up; it does not stay in either half.
		sep = append([]byte(nil), n.keys[mid]...)
		right.keys = append(right.keys, n.keys[mid+1:]...)
		right.children = append(right.children, n.children[mid+1:]...)
		n.keys = n.keys[:mid]
		n.children = n.children[:mid+1]
	}
	if err := t.writeNode(n); err != nil {
		return nil, err
	}
	if err := t.writeNode(right); err != nil {
		return nil, err
	}
	return &split{key: sep, right: rightNo}, nil
}

// Delete removes key. Empty leaves are unlinked from their parent (lazy
// rebalancing: pages may run underfull, as in many production B-trees, but
// structure and ordering invariants are preserved).
func (t *Tree) Delete(key []byte) error {
	removed, _, err := t.remove(t.root, key)
	if err != nil {
		return err
	}
	if !removed {
		return ErrNotFound
	}
	t.count--
	// Collapse a root with a single child.
	for {
		root, err := t.readNode(t.root)
		if err != nil {
			return err
		}
		if root.leaf || len(root.keys) > 0 {
			break
		}
		t.root = root.children[0]
		t.height--
	}
	return t.writeMeta()
}

// remove deletes key under pageNo; reports (removed, nowEmpty).
func (t *Tree) remove(pageNo int64, key []byte) (bool, bool, error) {
	n, err := t.readNode(pageNo)
	if err != nil {
		return false, false, err
	}
	if n.leaf {
		i, eq := search(n.keys, key)
		if !eq {
			return false, false, nil
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		if err := t.writeNode(n); err != nil {
			return false, false, err
		}
		return true, len(n.keys) == 0, nil
	}
	ci := childIndex(n.keys, key)
	removed, empty, err := t.remove(n.children[ci], key)
	if err != nil || !removed {
		return removed, false, err
	}
	if !empty {
		return true, false, nil
	}
	// Unlink the empty child. Fix the leaf chain if it was a leaf.
	child := n.children[ci]
	if err := t.unlinkLeaf(child); err != nil {
		return false, false, err
	}
	if ci == 0 {
		if len(n.keys) == 0 {
			// Node had a single (now empty) child: it becomes empty itself.
			return true, true, nil
		}
		n.keys = n.keys[1:]
		n.children = n.children[1:]
	} else {
		n.keys = append(n.keys[:ci-1], n.keys[ci:]...)
		n.children = append(n.children[:ci], n.children[ci+1:]...)
	}
	if err := t.writeNode(n); err != nil {
		return false, false, err
	}
	return true, len(n.children) == 0, nil
}

// unlinkLeaf removes an empty leaf from the sibling chain by scanning the
// chain from the leftmost leaf (leaves are few per parent; acceptable).
func (t *Tree) unlinkLeaf(pageNo int64) error {
	dead, err := t.readNode(pageNo)
	if err != nil {
		return err
	}
	if !dead.leaf {
		return nil
	}
	// Find the predecessor in the chain.
	cur, err := t.leftmostLeaf()
	if err != nil {
		return err
	}
	if cur.pageNo == pageNo {
		return nil // head of the chain; nothing points at it
	}
	for cur.next != 0 && cur.next != pageNo {
		cur, err = t.readNode(cur.next)
		if err != nil {
			return err
		}
	}
	if cur.next == pageNo {
		cur.next = dead.next
		return t.writeNode(cur)
	}
	return nil
}

func (t *Tree) leftmostLeaf() (*node, error) {
	n, err := t.readNodeCached(t.root)
	if err != nil {
		return nil, err
	}
	for !n.leaf {
		n, err = t.readNodeCached(n.children[0])
		if err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Cursor iterates leaf entries in key order.
type Cursor struct {
	t   *Tree
	n   *node
	idx int
	err error
}

// Seek positions a cursor at the first key ≥ key.
func (t *Tree) Seek(key []byte) (*Cursor, error) {
	n, err := t.readNodeCached(t.root)
	if err != nil {
		return nil, err
	}
	for !n.leaf {
		n, err = t.readNodeCached(n.children[childIndex(n.keys, key)])
		if err != nil {
			return nil, err
		}
	}
	i, _ := search(n.keys, key)
	c := &Cursor{t: t, n: n, idx: i - 1}
	return c, nil
}

// First positions a cursor before the smallest key.
func (t *Tree) First() (*Cursor, error) {
	n, err := t.leftmostLeaf()
	if err != nil {
		return nil, err
	}
	return &Cursor{t: t, n: n, idx: -1}, nil
}

// Next advances to the next entry, returning false at the end.
func (c *Cursor) Next() bool {
	if c.err != nil {
		return false
	}
	c.idx++
	for c.idx >= len(c.n.keys) {
		if c.n.next == 0 {
			return false
		}
		n, err := c.t.readNode(c.n.next)
		if err != nil {
			c.err = err
			return false
		}
		c.n = n
		c.idx = 0
	}
	return true
}

// Key returns the current entry's key.
func (c *Cursor) Key() []byte { return c.n.keys[c.idx] }

// Value returns the current entry's value.
func (c *Cursor) Value() []byte { return c.n.vals[c.idx] }

// Err reports an iteration error, if any.
func (c *Cursor) Err() error { return c.err }

// Check validates tree invariants (ordering, separator bounds, leaf chain
// completeness) and returns the number of reachable records. Tests use it.
func (t *Tree) Check() (int64, error) {
	var leafCount int64
	var walk func(pageNo int64, lo, hi []byte) error
	var leaves []int64
	walk = func(pageNo int64, lo, hi []byte) error {
		n, err := t.readNode(pageNo)
		if err != nil {
			return err
		}
		for i := 1; i < len(n.keys); i++ {
			if bytes.Compare(n.keys[i-1], n.keys[i]) >= 0 {
				return fmt.Errorf("btree: keys out of order in page %d", pageNo)
			}
		}
		for _, k := range n.keys {
			if lo != nil && bytes.Compare(k, lo) < 0 {
				return fmt.Errorf("btree: key below separator in page %d", pageNo)
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				return fmt.Errorf("btree: key above separator in page %d", pageNo)
			}
		}
		if n.leaf {
			leafCount += int64(len(n.keys))
			leaves = append(leaves, pageNo)
			return nil
		}
		for i, ch := range n.children {
			var clo, chi []byte
			if i > 0 {
				clo = n.keys[i-1]
			} else {
				clo = lo
			}
			if i < len(n.keys) {
				chi = n.keys[i]
			} else {
				chi = hi
			}
			if err := walk(ch, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, nil, nil); err != nil {
		return 0, err
	}
	// The leaf chain must visit exactly the reachable leaves, in order.
	n, err := t.leftmostLeaf()
	if err != nil {
		return 0, err
	}
	var chain []int64
	for {
		chain = append(chain, n.pageNo)
		if n.next == 0 {
			break
		}
		n, err = t.readNode(n.next)
		if err != nil {
			return 0, err
		}
	}
	if len(chain) != len(leaves) {
		return 0, fmt.Errorf("btree: leaf chain has %d leaves, tree has %d", len(chain), len(leaves))
	}
	return leafCount, nil
}
