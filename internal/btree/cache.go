package btree

import (
	"encoding/binary"
	"sync"

	"repro/internal/pagestore"
)

// defaultCacheCap bounds a NodeCache when the caller does not.
const defaultCacheCap = 256

// NodeCache caches decoded interior nodes across Tree handles of the same
// relation, keyed by page number and validated by the page's LSN: every
// writeNode bumps the on-page LSN, so a cached node whose LSN no longer
// matches the bytes on the page is simply never returned. The cached read
// path still performs the full ReadPage — the page store's locking and cost
// accounting are unchanged — the cache only skips re-decoding an unchanged
// interior page into fresh slices on every descent.
//
// Cached nodes are shared and strictly read-only: only the read-only
// descents (Get, Seek, First) consult the cache, and the mutation paths
// always decode privately.
//
// One timeline caveat: per-page LSNs restart from the on-page value, so a
// transaction abort that restores a page's before-image also rewinds its
// LSN — a later write could then re-issue an LSN the cache already mapped
// to different (aborted-timeline) bytes. Callers running under a
// transaction system must therefore Flush the cache whenever a transaction
// aborts; the LSN check handles every committed-path invalidation.
type NodeCache struct {
	mu       sync.Mutex
	capacity int
	nodes    map[int64]*node
	hits     int64
	misses   int64
}

// NewNodeCache creates a cache holding at most capacity interior nodes
// (defaultCacheCap if capacity <= 0). Eviction is deterministic and
// wholesale: when full, the next insert of a new page clears the cache.
func NewNodeCache(capacity int) *NodeCache {
	if capacity <= 0 {
		capacity = defaultCacheCap
	}
	return &NodeCache{capacity: capacity, nodes: make(map[int64]*node)}
}

// Flush empties the cache. Transaction systems call this on abort (see the
// timeline caveat above).
func (c *NodeCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.nodes)
}

// Stats returns the hit/miss counters.
func (c *NodeCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// lookup returns the cached node for pageNo iff its LSN matches lsn.
//
//simlint:noalloc
func (c *NodeCache) lookup(pageNo int64, lsn uint64) *node {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.nodes[pageNo]
	if n == nil || n.lsn != lsn {
		c.misses++
		return nil
	}
	c.hits++
	return n
}

// insert stores a freshly decoded interior node, clearing the cache
// wholesale when it is full (deterministic, order-independent eviction).
func (c *NodeCache) insert(n *node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.nodes) >= c.capacity && c.nodes[n.pageNo] == nil {
		clear(c.nodes)
	}
	c.nodes[n.pageNo] = n
}

// AttachCache wires a shared NodeCache into this tree handle's read-only
// descents.
func (t *Tree) AttachCache(c *NodeCache) { t.cache = c }

// OpenWithCache loads an existing tree and attaches a shared node cache.
func OpenWithCache(st pagestore.Store, c *NodeCache) (*Tree, error) {
	t, err := Open(st)
	if err != nil {
		return nil, err
	}
	t.AttachCache(c)
	return t, nil
}

// readNodeCached reads pageNo for a read-only descent. Without a cache it
// is plain readNode. With one, the page is read into the tree's reusable
// scratch buffer (locking and cost identical to readNode); an interior page
// whose LSN matches a cached node returns the shared decoded node with zero
// further allocation, anything else is decoded from a private copy, and
// interior nodes are cached for the next descent. Leaves are never cached:
// they change on every update and their decoded form aliases page memory
// that escapes to callers (Get's value, cursor entries).
func (t *Tree) readNodeCached(pageNo int64) (*node, error) {
	if t.cache == nil {
		return t.readNode(pageNo)
	}
	if t.scratch == nil {
		t.scratch = make([]byte, t.pageSize)
	}
	if err := t.st.ReadPage(pageNo, t.scratch); err != nil {
		return nil, err
	}
	if t.scratch[0] == pgInternal {
		lsn := binary.LittleEndian.Uint64(t.scratch[3:])
		if n := t.cache.lookup(pageNo, lsn); n != nil {
			return n, nil
		}
	}
	b := make([]byte, t.pageSize)
	copy(b, t.scratch)
	n, err := decodeNode(pageNo, b)
	if err != nil {
		return nil, err
	}
	if !n.leaf {
		t.cache.insert(n)
	}
	return n, nil
}
