package btree

import (
	"bytes"
	"testing"

	"repro/internal/pagestore"
)

// cachedTree builds a multi-level tree and attaches a fresh NodeCache.
func cachedTree(t *testing.T, n int) (*Tree, *NodeCache) {
	t.Helper()
	tr := newTree(t)
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i*7919%n), key(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if tr.Height() < 3 {
		t.Fatalf("height = %d, want >= 3 for a meaningful cache test", tr.Height())
	}
	c := NewNodeCache(64)
	tr.AttachCache(c)
	return tr, c
}

func TestNodeCacheHitsAndCorrectness(t *testing.T) {
	const n = 2000
	tr, c := cachedTree(t, n)
	for i := 0; i < n; i++ {
		v, err := tr.Get(key(i))
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if len(v) != 8 {
			t.Fatalf("Get(%d) = %x", i, v)
		}
	}
	hits, misses := c.Stats()
	if hits == 0 {
		t.Fatalf("cache never hit (hits=%d misses=%d)", hits, misses)
	}
	// Steady-state: every interior node on every descent after warmup hits.
	if hits < misses {
		t.Fatalf("cache mostly missing (hits=%d misses=%d)", hits, misses)
	}
}

func TestNodeCacheInvalidation(t *testing.T) {
	const n = 2000
	tr, c := cachedTree(t, n)
	// Warm the cache over the whole key space.
	for i := 0; i < n; i += 13 {
		if _, err := tr.Get(key(i)); err != nil {
			t.Fatalf("warm Get(%d): %v", i, err)
		}
	}
	// Mutate heavily: inserts beyond the loaded range force leaf splits that
	// rewrite interior pages (bumping their LSNs).
	for i := n; i < 2*n; i++ {
		if err := tr.Put(key(i), key(i)); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	// Every read must see the post-mutation tree: stale cached interiors
	// carry old LSNs and are skipped by the LSN check.
	for i := 0; i < 2*n; i += 7 {
		v, err := tr.Get(key(i))
		if err != nil {
			t.Fatalf("Get(%d) after splits: %v", i, err)
		}
		if i >= n && !bytes.Equal(v, key(i)) {
			t.Fatalf("Get(%d) = %x, want %x", i, v, key(i))
		}
	}
	if cnt, err := tr.Check(); err != nil || cnt != 2*n {
		t.Fatalf("Check = %d, %v; want %d", cnt, err, 2*n)
	}
	// A second handle sharing the cache sees the same (valid) entries.
	tr2, err := OpenWithCache(tr.st, c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*n; i += 101 {
		if _, err := tr2.Get(key(i)); err != nil {
			t.Fatalf("shared-handle Get(%d): %v", i, err)
		}
	}
}

func TestNodeCacheFlush(t *testing.T) {
	const n = 2000
	tr, c := cachedTree(t, n)
	for i := 0; i < n; i += 13 {
		tr.Get(key(i))
	}
	c.Flush()
	c.mu.Lock()
	left := len(c.nodes)
	c.mu.Unlock()
	if left != 0 {
		t.Fatalf("Flush left %d entries", left)
	}
	if _, err := tr.Get(key(1)); err != nil {
		t.Fatalf("Get after Flush: %v", err)
	}
}

func TestNodeCacheWholesaleEviction(t *testing.T) {
	const n = 2000
	tr, _ := cachedTree(t, n)
	small := NewNodeCache(1)
	tr.AttachCache(small)
	for i := 0; i < n; i += 37 {
		if _, err := tr.Get(key(i)); err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
	}
	small.mu.Lock()
	entries := len(small.nodes)
	small.mu.Unlock()
	if entries > 1 {
		t.Fatalf("capacity-1 cache holds %d entries", entries)
	}
}

// TestNodeCacheAllocs is the regression test for the cache's purpose:
// a cached read-only descent must allocate strictly less than an uncached
// one, with the remaining allocations attributable to the (uncached) leaf
// decode only.
func TestNodeCacheAllocs(t *testing.T) {
	const n = 2000
	tr, _ := cachedTree(t, n)
	k := key(1234)
	get := func() {
		if _, err := tr.Get(k); err != nil {
			t.Fatalf("Get: %v", err)
		}
	}
	get() // warm scratch + cache along this descent
	cached := testing.AllocsPerRun(200, get)

	bare, err := Open(tr.st)
	if err != nil {
		t.Fatal(err)
	}
	getBare := func() {
		if _, err := bare.Get(k); err != nil {
			t.Fatalf("Get: %v", err)
		}
	}
	getBare()
	uncached := testing.AllocsPerRun(200, getBare)

	if cached >= uncached {
		t.Fatalf("cached descent allocates %.1f/op, uncached %.1f/op: cache saves nothing", cached, uncached)
	}
	// Height >= 3 means >= 2 interior decodes saved; the leaf decode costs
	// 1 page buffer + 1 node + 2 slice headers (+1 scratch-free copy).
	if cached > 6 {
		t.Fatalf("cached descent allocates %.1f/op, want <= 6", cached)
	}
}

// TestInteriorLSNMonotonic verifies writeNode bumps the on-page LSN of
// interior pages so cache validation can key on it.
func TestInteriorLSNMonotonic(t *testing.T) {
	st := pagestore.NewMemStore(512)
	tr, err := Create(st)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 2 {
		t.Fatalf("height = %d", tr.Height())
	}
	root, err := tr.readNode(tr.root)
	if err != nil {
		t.Fatal(err)
	}
	if root.leaf {
		t.Fatal("root unexpectedly a leaf")
	}
	before := root.lsn
	if before == 0 {
		t.Fatal("interior root has zero LSN")
	}
	// Force more splits; the root must be rewritten with a higher LSN.
	for i := n; i < 4*n; i++ {
		if err := tr.Put(key(i), key(i)); err != nil {
			t.Fatal(err)
		}
	}
	root2, err := tr.readNode(tr.root)
	if err != nil {
		t.Fatal(err)
	}
	if !root2.leaf && root2.pageNo == root.pageNo && root2.lsn <= before {
		t.Fatalf("root LSN did not advance: %d -> %d", before, root2.lsn)
	}
}
