package btree

import (
	"bytes"
	"fmt"

	"repro/internal/pagestore"
)

// bulkFill is the target page utilization for bulk-built nodes: full pages
// split immediately on the first insert, so a classic bulk load leaves some
// slack for future updates.
const bulkFill = 0.85

// BulkLoad builds a tree bottom-up from a sorted stream of key/value pairs —
// the standard way to create a large index (like the TPC-B account load)
// without paying a split cascade: leaves are written left to right at the
// fill factor, then each interior level is built over the one below.
//
// next returns the pairs in strictly ascending key order and ok=false at the
// end. The store must be empty.
func BulkLoad(st pagestore.Store, next func() (key, value []byte, ok bool)) (*Tree, error) {
	if n, err := st.NumPages(); err != nil {
		return nil, err
	} else if n != 0 {
		return nil, fmt.Errorf("btree: store not empty (%d pages)", n)
	}
	t := &Tree{st: st, pageSize: st.PageSize()}
	if _, err := st.AllocPage(); err != nil { // page 0: meta
		return nil, err
	}
	budget := int(float64(t.pageSize) * bulkFill)

	// 1. Build the leaf level.
	type levelEntry struct {
		firstKey []byte
		pageNo   int64
	}
	var leaves []levelEntry
	var prevLeaf *node
	cur := &node{leaf: true}
	var count int64
	var lastKey []byte

	flushLeaf := func() error {
		if len(cur.keys) == 0 {
			return nil
		}
		pageNo, err := st.AllocPage()
		if err != nil {
			return err
		}
		cur.pageNo = pageNo
		if prevLeaf != nil {
			prevLeaf.next = pageNo
			if err := t.writeNode(prevLeaf); err != nil {
				return err
			}
		}
		leaves = append(leaves, levelEntry{firstKey: cur.keys[0], pageNo: pageNo})
		prevLeaf = cur
		cur = &node{leaf: true}
		return nil
	}

	for {
		k, v, ok := next()
		if !ok {
			break
		}
		if lastKey != nil && bytes.Compare(k, lastKey) <= 0 {
			return nil, fmt.Errorf("btree: bulk load input not strictly ascending at key %q", k)
		}
		if nodeHeader+8+4+len(k)+len(v) > t.pageSize/2 {
			return nil, ErrTooLarge
		}
		lastKey = append(lastKey[:0], k...)
		kc := append([]byte(nil), k...)
		vc := append([]byte(nil), v...)
		cur.keys = append(cur.keys, kc)
		cur.vals = append(cur.vals, vc)
		count++
		if t.nodeSize(cur) > budget {
			// Move the overflowing entry to the next leaf.
			n := len(cur.keys)
			spill := &node{leaf: true, keys: [][]byte{cur.keys[n-1]}, vals: [][]byte{cur.vals[n-1]}}
			cur.keys = cur.keys[:n-1]
			cur.vals = cur.vals[:n-1]
			if err := flushLeaf(); err != nil {
				return nil, err
			}
			cur = spill
		}
	}
	if err := flushLeaf(); err != nil {
		return nil, err
	}
	if prevLeaf != nil {
		prevLeaf.next = 0
		if err := t.writeNode(prevLeaf); err != nil {
			return nil, err
		}
	}
	if len(leaves) == 0 {
		// Empty input: a single empty leaf as root.
		rootNo, err := st.AllocPage()
		if err != nil {
			return nil, err
		}
		if err := t.writeNode(&node{pageNo: rootNo, leaf: true}); err != nil {
			return nil, err
		}
		t.root, t.height, t.count = rootNo, 1, 0
		return t, t.writeMeta()
	}

	// 2. Build interior levels until one node remains.
	level := leaves
	height := 1
	for len(level) > 1 {
		var parent []levelEntry
		i := 0
		for i < len(level) {
			in := &node{children: []int64{level[i].pageNo}}
			first := level[i].firstKey
			i++
			for i < len(level) {
				in.keys = append(in.keys, level[i].firstKey)
				in.children = append(in.children, level[i].pageNo)
				if t.nodeSize(in) > budget && len(in.children) > 2 {
					// Undo the tentative addition; it starts the next node.
					in.keys = in.keys[:len(in.keys)-1]
					in.children = in.children[:len(in.children)-1]
					break
				}
				i++
			}
			pageNo, err := st.AllocPage()
			if err != nil {
				return nil, err
			}
			in.pageNo = pageNo
			if err := t.writeNode(in); err != nil {
				return nil, err
			}
			parent = append(parent, levelEntry{firstKey: first, pageNo: pageNo})
		}
		level = parent
		height++
	}
	t.root = level[0].pageNo
	t.height = height
	t.count = count
	return t, t.writeMeta()
}
