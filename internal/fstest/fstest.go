// Package fstest is a conformance suite for vfs.FileSystem implementations.
// The same behavioural contract is asserted against the log-structured file
// system, the read-optimized file system, and the embedded transaction
// manager's adapter, so the three stay interchangeable under every workload
// in this repository.
package fstest

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/vfs"
)

// Factory builds a fresh, empty file system for each subtest.
type Factory func(t *testing.T) vfs.FileSystem

// Run executes the whole conformance suite.
func Run(t *testing.T, name string, factory Factory) {
	t.Helper()
	tests := []struct {
		name string
		fn   func(t *testing.T, fsys vfs.FileSystem)
	}{
		{"CreateReadWrite", testCreateReadWrite},
		{"PartialAndOverlappingWrites", testPartialWrites},
		{"ReadBounds", testReadBounds},
		{"SizeAndTruncate", testSizeAndTruncate},
		{"Directories", testDirectories},
		{"PathErrors", testPathErrors},
		{"RemoveSemantics", testRemoveSemantics},
		{"RenameSemantics", testRenameSemantics},
		{"HandleLifecycle", testHandleLifecycle},
		{"ManyFiles", testManyFiles},
		{"LargeFile", testLargeFile},
		{"DeepNesting", testDeepNesting},
		{"SyncIsSafeAnytime", testSync},
		{"StableIDs", testStableIDs},
	}
	for _, tc := range tests {
		t.Run(name+"/"+tc.name, func(t *testing.T) {
			tc.fn(t, factory(t))
		})
	}
}

func write(t *testing.T, fsys vfs.FileSystem, path string, data []byte) {
	t.Helper()
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatalf("Create(%s): %v", path, err)
	}
	defer f.Close()
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("WriteAt(%s): %v", path, err)
	}
}

func read(t *testing.T, fsys vfs.FileSystem, path string) []byte {
	t.Helper()
	f, err := fsys.Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	defer f.Close()
	sz, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, sz)
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatal(err)
	}
	return out
}

func pat(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*11 + seed
	}
	return b
}

func testCreateReadWrite(t *testing.T, fsys vfs.FileSystem) {
	data := pat(10000, 1)
	write(t, fsys, "/f", data)
	if got := read(t, fsys, "/f"); !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if _, err := fsys.Create("/f"); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("duplicate create: %v", err)
	}
}

func testPartialWrites(t *testing.T, fsys vfs.FileSystem) {
	bs := fsys.BlockSize()
	data := pat(3*bs, 2)
	write(t, fsys, "/p", data)
	f, err := fsys.Open("/p")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Straddle a block boundary.
	patch := pat(100, 99)
	off := int64(bs - 50)
	if _, err := f.WriteAt(patch, off); err != nil {
		t.Fatal(err)
	}
	copy(data[off:], patch)
	// Overlapping rewrite.
	patch2 := pat(200, 77)
	if _, err := f.WriteAt(patch2, off-100); err != nil {
		t.Fatal(err)
	}
	copy(data[off-100:], patch2)
	if got := read(t, fsys, "/p"); !bytes.Equal(got, data) {
		t.Fatal("partial writes diverged")
	}
}

func testReadBounds(t *testing.T, fsys vfs.FileSystem) {
	write(t, fsys, "/r", []byte("hello"))
	f, _ := fsys.Open("/r")
	defer f.Close()
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if err != nil || n != 5 {
		t.Fatalf("short read = %d, %v", n, err)
	}
	n, err = f.ReadAt(buf, 5)
	if err != nil || n != 0 {
		t.Fatalf("read at EOF = %d, %v", n, err)
	}
	n, err = f.ReadAt(buf, 100)
	if err != nil || n != 0 {
		t.Fatalf("read past EOF = %d, %v", n, err)
	}
	if _, err := f.ReadAt(buf, -1); err == nil {
		t.Fatal("negative offset should fail")
	}
}

func testSizeAndTruncate(t *testing.T, fsys vfs.FileSystem) {
	bs := fsys.BlockSize()
	write(t, fsys, "/t", pat(2*bs+100, 3))
	f, _ := fsys.Open("/t")
	defer f.Close()
	if sz, _ := f.Size(); sz != int64(2*bs+100) {
		t.Fatalf("size = %d", sz)
	}
	if err := f.Truncate(int64(bs / 2)); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != int64(bs/2) {
		t.Fatalf("size after shrink = %d", sz)
	}
	if err := f.Truncate(int64(bs * 2)); err != nil {
		t.Fatal(err)
	}
	tail := make([]byte, bs)
	if _, err := f.ReadAt(tail, int64(bs)); err != nil {
		t.Fatal(err)
	}
	for _, v := range tail {
		if v != 0 {
			t.Fatal("regrown region must be zeros")
		}
	}
	if err := f.Truncate(-1); err == nil {
		t.Fatal("negative truncate should fail")
	}
}

func testDirectories(t *testing.T, fsys vfs.FileSystem) {
	for _, d := range []string{"/a", "/a/b", "/c"} {
		if err := fsys.Mkdir(d); err != nil {
			t.Fatalf("Mkdir(%s): %v", d, err)
		}
	}
	write(t, fsys, "/a/b/f1", []byte("1"))
	write(t, fsys, "/a/f2", []byte("2"))
	entries, err := fsys.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Name != "a" || entries[1].Name != "c" {
		t.Fatalf("root = %+v", entries)
	}
	entries, err = fsys.ReadDir("/a")
	if err != nil || len(entries) != 2 {
		t.Fatalf("/a = %+v, %v", entries, err)
	}
	if !entries[0].IsDir || entries[1].IsDir {
		t.Fatalf("IsDir flags wrong: %+v", entries)
	}
	info, err := fsys.Stat("/a/b")
	if err != nil || !info.IsDir {
		t.Fatalf("Stat dir = %+v, %v", info, err)
	}
	info, err = fsys.Stat("/a/f2")
	if err != nil || info.IsDir || info.Size != 1 {
		t.Fatalf("Stat file = %+v, %v", info, err)
	}
	// Opening a directory as a file fails; listing a file fails.
	if _, err := fsys.Open("/a"); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("Open(dir): %v", err)
	}
	if _, err := fsys.ReadDir("/a/f2"); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatalf("ReadDir(file): %v", err)
	}
}

func testPathErrors(t *testing.T, fsys vfs.FileSystem) {
	if _, err := fsys.Open("/missing"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("Open missing: %v", err)
	}
	if _, err := fsys.Stat("/missing/deeper"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("Stat through missing: %v", err)
	}
	if _, err := fsys.Create("/no/such/dir/f"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("Create in missing dir: %v", err)
	}
	for _, bad := range []string{"", "/a/../b"} {
		if _, err := fsys.Open(bad); !errors.Is(err, vfs.ErrBadPath) {
			t.Fatalf("Open(%q): %v", bad, err)
		}
	}
	// Creating a file under a file fails.
	write(t, fsys, "/plain", []byte("x"))
	if _, err := fsys.Create("/plain/child"); err == nil {
		t.Fatal("create under a file should fail")
	}
}

func testRemoveSemantics(t *testing.T, fsys vfs.FileSystem) {
	write(t, fsys, "/f", pat(5000, 4))
	if err := fsys.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Stat("/f"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("file should be gone")
	}
	if err := fsys.Remove("/f"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("double remove: %v", err)
	}
	fsys.Mkdir("/d")
	write(t, fsys, "/d/x", []byte("x"))
	if err := fsys.Remove("/d"); !errors.Is(err, vfs.ErrNotEmpty) {
		t.Fatalf("remove non-empty dir: %v", err)
	}
	if err := fsys.Remove("/d/x"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove("/d"); err != nil {
		t.Fatal(err)
	}
	// Name reuse after removal.
	write(t, fsys, "/f", []byte("new"))
	if got := read(t, fsys, "/f"); string(got) != "new" {
		t.Fatal("name reuse broken")
	}
}

func testRenameSemantics(t *testing.T, fsys vfs.FileSystem) {
	fsys.Mkdir("/src")
	fsys.Mkdir("/dst")
	write(t, fsys, "/src/f", []byte("payload"))
	if err := fsys.Rename("/src/f", "/dst/g"); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Stat("/src/f"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("source should be gone")
	}
	if got := read(t, fsys, "/dst/g"); string(got) != "payload" {
		t.Fatal("payload lost in rename")
	}
	// Renaming onto an existing name fails (no implicit replace).
	write(t, fsys, "/dst/h", []byte("other"))
	if err := fsys.Rename("/dst/g", "/dst/h"); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("rename onto existing: %v", err)
	}
	// The failed rename must not lose the source.
	if got := read(t, fsys, "/dst/g"); string(got) != "payload" {
		t.Fatal("failed rename lost the source")
	}
	// Renaming a directory moves its subtree.
	fsys.Mkdir("/src/sub")
	write(t, fsys, "/src/sub/deep", []byte("deep"))
	if err := fsys.Rename("/src/sub", "/dst/sub"); err != nil {
		t.Fatal(err)
	}
	if got := read(t, fsys, "/dst/sub/deep"); string(got) != "deep" {
		t.Fatal("directory rename lost contents")
	}
}

func testHandleLifecycle(t *testing.T, fsys vfs.FileSystem) {
	write(t, fsys, "/h", []byte("x"))
	f, err := fsys.Open("/h")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); !errors.Is(err, vfs.ErrFileClosed) {
		t.Fatalf("double close: %v", err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, vfs.ErrFileClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if _, err := f.WriteAt([]byte("y"), 0); !errors.Is(err, vfs.ErrFileClosed) {
		t.Fatalf("write after close: %v", err)
	}
	// Two handles to the same file observe each other's writes.
	a, _ := fsys.Open("/h")
	b, _ := fsys.Open("/h")
	defer a.Close()
	defer b.Close()
	if _, err := a.WriteAt([]byte("Z"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := b.ReadAt(buf, 0); err != nil || buf[0] != 'Z' {
		t.Fatalf("shared handle visibility: %q, %v", buf, err)
	}
}

func testManyFiles(t *testing.T, fsys vfs.FileSystem) {
	fsys.Mkdir("/m")
	const n = 120
	for i := 0; i < n; i++ {
		write(t, fsys, fmt.Sprintf("/m/f%03d", i), pat(64+i, byte(i)))
	}
	entries, err := fsys.ReadDir("/m")
	if err != nil || len(entries) != n {
		t.Fatalf("ReadDir = %d entries, %v", len(entries), err)
	}
	for i := 0; i < n; i += 13 {
		got := read(t, fsys, fmt.Sprintf("/m/f%03d", i))
		if !bytes.Equal(got, pat(64+i, byte(i))) {
			t.Fatalf("file %d corrupted", i)
		}
	}
}

func testLargeFile(t *testing.T, fsys vfs.FileSystem) {
	// Past the direct-pointer range of the LFS inode (48 KB) and across
	// many extents for the FFS.
	data := pat(300*1024, 9)
	write(t, fsys, "/large", data)
	if err := fsys.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := read(t, fsys, "/large"); !bytes.Equal(got, data) {
		t.Fatal("large file round trip failed")
	}
}

func testDeepNesting(t *testing.T, fsys vfs.FileSystem) {
	path := ""
	for i := 0; i < 12; i++ {
		path = fmt.Sprintf("%s/d%d", path, i)
		if err := fsys.Mkdir(path); err != nil {
			t.Fatalf("Mkdir(%s): %v", path, err)
		}
	}
	write(t, fsys, path+"/leaf", []byte("bottom"))
	if got := read(t, fsys, path+"/leaf"); string(got) != "bottom" {
		t.Fatal("deep path round trip failed")
	}
}

func testSync(t *testing.T, fsys vfs.FileSystem) {
	if err := fsys.Sync(); err != nil {
		t.Fatalf("sync of empty fs: %v", err)
	}
	write(t, fsys, "/s", pat(9000, 5))
	if err := fsys.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Sync(); err != nil {
		t.Fatalf("idempotent sync: %v", err)
	}
	if got := read(t, fsys, "/s"); !bytes.Equal(got, pat(9000, 5)) {
		t.Fatal("sync corrupted data")
	}
}

func testStableIDs(t *testing.T, fsys vfs.FileSystem) {
	write(t, fsys, "/id", []byte("x"))
	a, _ := fsys.Open("/id")
	b, _ := fsys.Open("/id")
	defer a.Close()
	defer b.Close()
	if a.ID() != b.ID() {
		t.Fatal("two handles to one file must share an ID")
	}
	write(t, fsys, "/other", []byte("y"))
	c, _ := fsys.Open("/other")
	defer c.Close()
	if c.ID() == a.ID() {
		t.Fatal("distinct files must have distinct IDs")
	}
	info, _ := fsys.Stat("/id")
	if info.ID != a.ID() {
		t.Fatal("Stat ID must match handle ID")
	}
}
