// Package detsort provides deterministic iteration order over Go maps.
//
// Go randomizes map iteration order on purpose; the simulation packages must
// never let that order reach anything observable (victim selection, disk
// request sequences, replay order), or two runs of the same seed diverge.
// The simlint mapiter analyzer (internal/analysis/mapiter) flags
// order-sensitive map loops in those packages; the canonical fix is to
// iterate detsort.Keys/KeysFunc instead of ranging the map directly.
//
// This package is deliberately outside the simlint simulation-package scope:
// the key-collection loop below is the one place raw map iteration is
// allowed, because sorting erases the order before it escapes.
package detsort

import (
	"cmp"
	"slices"
)

// Keys returns the keys of m sorted ascending.
func Keys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// KeysFunc returns the keys of m sorted by the comparison function compare,
// which follows the slices.SortFunc contract (negative when a < b). compare
// must induce a total order for the result to be deterministic.
func KeysFunc[M ~map[K]V, K comparable, V any](m M, compare func(a, b K) int) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, compare)
	return keys
}
