package detsort

import (
	"cmp"
	"reflect"
	"testing"
)

func TestKeys(t *testing.T) {
	m := map[uint64]string{7: "g", 1: "a", 3: "c", 2: "b"}
	for i := 0; i < 50; i++ {
		got := Keys(m)
		if want := []uint64{1, 2, 3, 7}; !reflect.DeepEqual(got, want) {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
	if got := Keys(map[int]int(nil)); len(got) != 0 {
		t.Fatalf("Keys(nil) = %v", got)
	}
}

func TestKeysFunc(t *testing.T) {
	type pt struct{ X, Y int }
	m := map[pt]bool{{2, 1}: true, {1, 9}: true, {2, 0}: true, {1, 2}: true}
	compare := func(a, b pt) int {
		if c := cmp.Compare(a.X, b.X); c != 0 {
			return c
		}
		return cmp.Compare(a.Y, b.Y)
	}
	for i := 0; i < 50; i++ {
		got := KeysFunc(m, compare)
		want := []pt{{1, 2}, {1, 9}, {2, 0}, {2, 1}}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("KeysFunc = %v, want %v", got, want)
		}
	}
}
