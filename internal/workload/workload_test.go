package workload

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/lfs"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func newLFS(t *testing.T) (*lfs.FS, *sim.Clock) {
	t.Helper()
	clk := sim.NewClock()
	model := sim.RZ55Model()
	model.NumBlocks = 24576 // 96 MB: room for the 10 MB bigfile phases
	dev := disk.New(model, clk)
	fsys, err := lfs.Format(dev, clk, lfs.Options{CacheBlocks: 2048})
	if err != nil {
		t.Fatal(err)
	}
	return fsys, clk
}

func TestAndrewRunsOnLFS(t *testing.T) {
	fsys, clk := newLFS(t)
	res, err := RunAndrew(fsys, clk, DefaultAndrew())
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() <= 0 {
		t.Fatal("elapsed time should be positive")
	}
	// The tree must actually exist.
	entries, err := fsys.ReadDir("/andrew")
	if err != nil || len(entries) != DefaultAndrew().Dirs {
		t.Fatalf("tree = %v, %v", entries, err)
	}
	// Compile outputs exist and have the expected size.
	info, err := fsys.Stat("/andrew/dir00/src000.o")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(float64(DefaultAndrew().FileSize) * DefaultAndrew().ObjectFactor)
	if info.Size != want {
		t.Fatalf("object size = %d, want %d", info.Size, want)
	}
	// Compile phase includes the CPU cost.
	minCompile := DefaultAndrew().CompileCPU * 70
	if res.CompilePhase < minCompile {
		t.Fatalf("compile phase %v < CPU floor %v", res.CompilePhase, minCompile)
	}
}

func TestBigfileRunsOnLFS(t *testing.T) {
	fsys, clk := newLFS(t)
	cfg := BigfileConfig{Sizes: []int64{1 << 20, 2 << 20}, Seed: 1}
	res, err := RunBigfile(fsys, clk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CreatePhase <= 0 || res.CopyPhase <= 0 || res.RemovePhase < 0 {
		t.Fatalf("phases = %+v", res)
	}
	// Files removed at the end.
	if _, err := fsys.Stat("/big0"); err == nil {
		t.Fatal("big0 should be removed")
	}
}

// TestFigure5Property verifies the §5.2 claim: running the workloads on a
// transaction-enabled kernel costs within ~2% of a plain kernel.
func TestFigure5Property(t *testing.T) {
	// Plain kernel.
	fsPlain, clkPlain := newLFS(t)
	plain, err := RunAndrew(fsPlain, clkPlain, DefaultAndrew())
	if err != nil {
		t.Fatal(err)
	}
	// Transaction kernel: same FS wrapped by the embedded TM adapter.
	fsTxn, clkTxn := newLFS(t)
	m := core.New(fsTxn, clkTxn, core.Options{})
	txn, err := RunAndrew(m.AsFileSystem(), clkTxn, DefaultAndrew())
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(txn.Total()) / float64(plain.Total())
	if math.Abs(ratio-1) > 0.02 {
		t.Fatalf("txn kernel / plain kernel = %.4f, want within 2%% (plain=%v txn=%v)", ratio, plain.Total(), txn.Total())
	}
	if txn.Total() < plain.Total() {
		t.Fatalf("txn kernel (%v) should not be faster than plain (%v)", txn.Total(), plain.Total())
	}
}

func TestWorkloadsRunThroughAdapter(t *testing.T) {
	fsys, clk := newLFS(t)
	m := core.New(fsys, clk, core.Options{})
	var adapter vfs.FileSystem = m.AsFileSystem()
	if _, err := RunBigfile(adapter, clk, BigfileConfig{Sizes: []int64{1 << 20}, Seed: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestAndrewDeterministic(t *testing.T) {
	fs1, clk1 := newLFS(t)
	r1, err := RunAndrew(fs1, clk1, DefaultAndrew())
	if err != nil {
		t.Fatal(err)
	}
	fs2, clk2 := newLFS(t)
	r2, err := RunAndrew(fs2, clk2, DefaultAndrew())
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("same config must give identical simulated times: %+v vs %+v", r1, r2)
	}
}
