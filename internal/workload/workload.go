// Package workload implements the non-transaction benchmarks of §5.2:
//
//   - an Andrew-like engineering workstation test [6]: copy a tree of small
//     files, create a directory structure, traverse it, read everything,
//     and run a compile-like phase (CPU work producing object files);
//   - Bigfile: create, copy, and remove a set of large files (1, 5 and
//     10 MB in the paper, scaled to the simulated disk).
//
// Both run against any vfs.FileSystem, so the same code measures a plain
// kernel and a transaction-enabled kernel (via core.FSAdapter) — Figure 5
// shows the elapsed times match within 1–2%.
package workload

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// AndrewConfig sizes the Andrew-like test.
type AndrewConfig struct {
	// Dirs is the number of directories in the source tree.
	Dirs int
	// FilesPerDir is the number of source files per directory.
	FilesPerDir int
	// FileSize is the size of each source file in bytes.
	FileSize int
	// CompileCPU is the simulated CPU time per compiled file.
	CompileCPU time.Duration
	// ObjectFactor scales object size relative to source size.
	ObjectFactor float64
	// Seed drives the deterministic file contents.
	Seed uint64
}

// DefaultAndrew resembles the original benchmark's scale: ~70 source files
// in a handful of directories, a few KB each, with a compile phase.
func DefaultAndrew() AndrewConfig {
	return AndrewConfig{
		Dirs:         5,
		FilesPerDir:  14,
		FileSize:     6 * 1024,
		CompileCPU:   80 * time.Millisecond,
		ObjectFactor: 1.5,
		Seed:         1987,
	}
}

// AndrewResult reports per-phase simulated elapsed times.
type AndrewResult struct {
	MkdirPhase   time.Duration
	CopyPhase    time.Duration
	StatPhase    time.Duration
	ReadPhase    time.Duration
	CompilePhase time.Duration
}

// Total returns the whole run's elapsed time.
func (r AndrewResult) Total() time.Duration {
	return r.MkdirPhase + r.CopyPhase + r.StatPhase + r.ReadPhase + r.CompilePhase
}

func fill(rng *sim.RNG, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Uint64())
	}
	return b
}

// RunAndrew executes the five phases on fsys, measuring each phase in
// simulated time.
func RunAndrew(fsys vfs.FileSystem, clock *sim.Clock, cfg AndrewConfig) (AndrewResult, error) {
	var res AndrewResult
	rng := sim.NewRNG(cfg.Seed)
	dir := func(d int) string { return fmt.Sprintf("/andrew/dir%02d", d) }
	src := func(d, f int) string { return fmt.Sprintf("%s/src%03d.c", dir(d), f) }
	obj := func(d, f int) string { return fmt.Sprintf("%s/src%03d.o", dir(d), f) }

	// Phase 1: create the directory hierarchy.
	t0 := clock.Now()
	if err := fsys.Mkdir("/andrew"); err != nil {
		return res, err
	}
	for d := 0; d < cfg.Dirs; d++ {
		if err := fsys.Mkdir(dir(d)); err != nil {
			return res, err
		}
	}
	res.MkdirPhase = clock.Now() - t0

	// Phase 2: copy the source files into the tree.
	t0 = clock.Now()
	for d := 0; d < cfg.Dirs; d++ {
		for fidx := 0; fidx < cfg.FilesPerDir; fidx++ {
			f, err := fsys.Create(src(d, fidx))
			if err != nil {
				return res, err
			}
			if _, err := f.WriteAt(fill(rng, cfg.FileSize), 0); err != nil {
				f.Close()
				return res, err
			}
			if err := f.Close(); err != nil {
				return res, err
			}
		}
	}
	if err := fsys.Sync(); err != nil {
		return res, err
	}
	res.CopyPhase = clock.Now() - t0

	// Phase 3: traverse the hierarchy, stat every entry.
	t0 = clock.Now()
	for d := 0; d < cfg.Dirs; d++ {
		entries, err := fsys.ReadDir(dir(d))
		if err != nil {
			return res, err
		}
		for _, e := range entries {
			if _, err := fsys.Stat(dir(d) + "/" + e.Name); err != nil {
				return res, err
			}
		}
	}
	res.StatPhase = clock.Now() - t0

	// Phase 4: read every file in its entirety.
	t0 = clock.Now()
	buf := make([]byte, cfg.FileSize)
	for d := 0; d < cfg.Dirs; d++ {
		for fidx := 0; fidx < cfg.FilesPerDir; fidx++ {
			f, err := fsys.Open(src(d, fidx))
			if err != nil {
				return res, err
			}
			if _, err := f.ReadAt(buf, 0); err != nil {
				f.Close()
				return res, err
			}
			f.Close()
		}
	}
	res.ReadPhase = clock.Now() - t0

	// Phase 5: "compile": read a source, burn CPU, emit an object file.
	t0 = clock.Now()
	objSize := int(float64(cfg.FileSize) * cfg.ObjectFactor)
	for d := 0; d < cfg.Dirs; d++ {
		for fidx := 0; fidx < cfg.FilesPerDir; fidx++ {
			f, err := fsys.Open(src(d, fidx))
			if err != nil {
				return res, err
			}
			if _, err := f.ReadAt(buf, 0); err != nil {
				f.Close()
				return res, err
			}
			f.Close()
			clock.Advance(cfg.CompileCPU)
			o, err := fsys.Create(obj(d, fidx))
			if err != nil {
				return res, err
			}
			if _, err := o.WriteAt(fill(rng, objSize), 0); err != nil {
				o.Close()
				return res, err
			}
			o.Close()
		}
	}
	if err := fsys.Sync(); err != nil {
		return res, err
	}
	res.CompilePhase = clock.Now() - t0
	return res, nil
}

// BigfileConfig sizes the large-file throughput test.
type BigfileConfig struct {
	// Sizes are the file sizes in bytes (the paper used 1, 5 and 10 MB on
	// a 300 MB file system).
	Sizes []int64
	// Seed drives the file contents.
	Seed uint64
}

// DefaultBigfile returns the paper's sizes.
func DefaultBigfile() BigfileConfig {
	return BigfileConfig{Sizes: []int64{1 << 20, 5 << 20, 10 << 20}, Seed: 1993}
}

// BigfileResult reports per-phase elapsed times.
type BigfileResult struct {
	CreatePhase time.Duration
	CopyPhase   time.Duration
	RemovePhase time.Duration
}

// Total returns the whole run's elapsed time.
func (r BigfileResult) Total() time.Duration {
	return r.CreatePhase + r.CopyPhase + r.RemovePhase
}

// RunBigfile creates, copies, and removes each configured file.
func RunBigfile(fsys vfs.FileSystem, clock *sim.Clock, cfg BigfileConfig) (BigfileResult, error) {
	var res BigfileResult
	rng := sim.NewRNG(cfg.Seed)
	const chunk = 256 * 1024

	// Create.
	t0 := clock.Now()
	for i, size := range cfg.Sizes {
		f, err := fsys.Create(fmt.Sprintf("/big%d", i))
		if err != nil {
			return res, err
		}
		for off := int64(0); off < size; off += chunk {
			n := int64(chunk)
			if off+n > size {
				n = size - off
			}
			if _, err := f.WriteAt(fill(rng, int(n)), off); err != nil {
				f.Close()
				return res, err
			}
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return res, err
		}
		f.Close()
	}
	res.CreatePhase = clock.Now() - t0

	// Copy.
	t0 = clock.Now()
	buf := make([]byte, chunk)
	for i, size := range cfg.Sizes {
		in, err := fsys.Open(fmt.Sprintf("/big%d", i))
		if err != nil {
			return res, err
		}
		out, err := fsys.Create(fmt.Sprintf("/big%d.copy", i))
		if err != nil {
			in.Close()
			return res, err
		}
		for off := int64(0); off < size; off += chunk {
			n, err := in.ReadAt(buf, off)
			if err != nil {
				in.Close()
				out.Close()
				return res, err
			}
			if _, err := out.WriteAt(buf[:n], off); err != nil {
				in.Close()
				out.Close()
				return res, err
			}
		}
		if err := out.Sync(); err != nil {
			in.Close()
			out.Close()
			return res, err
		}
		in.Close()
		out.Close()
	}
	res.CopyPhase = clock.Now() - t0

	// Remove.
	t0 = clock.Now()
	for i := range cfg.Sizes {
		if err := fsys.Remove(fmt.Sprintf("/big%d", i)); err != nil {
			return res, err
		}
		if err := fsys.Remove(fmt.Sprintf("/big%d.copy", i)); err != nil {
			return res, err
		}
	}
	if err := fsys.Sync(); err != nil {
		return res, err
	}
	res.RemovePhase = clock.Now() - t0
	return res, nil
}
