package disk

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/sim"
)

// Image format:
//
//	magic      uint32 ("DIMG")
//	blockSize  uint32
//	numBlocks  int64
//	repeat until EOF marker:
//	  blockIdx int64   (-1 terminates)
//	  data     [blockSize]byte
//
// Only blocks that were ever written are stored, so images of mostly-empty
// devices stay small.
const imageMagic = 0x44494d47

// ErrBadImage reports a malformed or mismatched device image.
var ErrBadImage = errors.New("disk: bad device image")

// SaveImage writes the device's contents to w. The simulated clock is not
// part of the image (a freshly loaded device starts with an unknown arm
// position and zero stats).
//
//simlint:tokensafe(read-only collector documented to run after Scheduler.Run returns)
func (d *Device) SaveImage(w io.Writer) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	hdr := make([]byte, 16)
	le.PutUint32(hdr[0:], imageMagic)
	le.PutUint32(hdr[4:], uint32(d.model.BlockSize))
	le.PutUint64(hdr[8:], uint64(d.model.NumBlocks))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	idx := make([]byte, 8)
	for i, b := range d.blocks {
		if b == nil {
			continue
		}
		le.PutUint64(idx, uint64(i))
		if _, err := bw.Write(idx); err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	le.PutUint64(idx, ^uint64(0)) // -1 terminator
	if _, err := bw.Write(idx); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadImage creates a device from a saved image, using the given service-
// time model (the geometry must match the image's block size and count).
//
//simlint:tokensafe(setup-time construction: populates a fresh device before Run hands the token to any proc)
func LoadImage(model sim.DiskModel, clock *sim.Clock, r io.Reader) (*Device, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadImage, err)
	}
	if le.Uint32(hdr[0:]) != imageMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadImage)
	}
	bs := int(le.Uint32(hdr[4:]))
	nb := int64(le.Uint64(hdr[8:]))
	if bs != model.BlockSize || nb != model.NumBlocks {
		return nil, fmt.Errorf("%w: geometry %d×%d does not match model %d×%d",
			ErrBadImage, nb, bs, model.NumBlocks, model.BlockSize)
	}
	d := New(model, clock)
	idx := make([]byte, 8)
	for {
		if _, err := io.ReadFull(br, idx); err != nil {
			return nil, fmt.Errorf("%w: truncated index: %v", ErrBadImage, err)
		}
		i := int64(le.Uint64(idx))
		if i == -1 {
			break
		}
		if i < 0 || i >= nb {
			return nil, fmt.Errorf("%w: block %d out of range", ErrBadImage, i)
		}
		b := make([]byte, bs)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("%w: truncated block %d: %v", ErrBadImage, i, err)
		}
		d.blocks[i] = b
	}
	return d, nil
}
