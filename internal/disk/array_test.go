package disk

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/sim"
)

func testArrayModel(perDev int64) sim.DiskModel {
	m := sim.RZ55Model()
	m.NumBlocks = perDev
	return m
}

func fill(bs int, v byte) []byte {
	b := make([]byte, bs)
	for i := range b {
		b[i] = v
	}
	return b
}

// Striped and partitioned arrays must behave as one flat device: whatever a
// run writes at a global address, single-block reads at the same addresses
// get back, and vice versa.
func TestArrayReadWriteRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name   string
		layout Layout
		stripe int64
	}{
		{"stripe1", LayoutStripe, 1},
		{"stripe4", LayoutStripe, 4},
		{"partition", LayoutPartition, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			clk := sim.NewClock()
			arr, err := NewArray(testArrayModel(64), clk, 3, tc.layout, tc.stripe)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := arr.NumBlocks(), int64(3*64); got != want {
				t.Fatalf("NumBlocks = %d, want %d", got, want)
			}
			bs := arr.BlockSize()
			// Write a 13-block run spanning several stripe units / a
			// partition boundary, each block tagged with its index.
			start := int64(58)
			var run [][]byte
			for i := 0; i < 13; i++ {
				run = append(run, fill(bs, byte(i+1)))
			}
			if err := arr.WriteRun(start, run); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 13; i++ {
				buf := make([]byte, bs)
				if err := arr.Read(start+int64(i), buf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf, run[i]) {
					t.Fatalf("%s: block %d read back wrong contents", tc.name, start+int64(i))
				}
			}
			// Single-block writes then a run read.
			if err := arr.Write(start+2, fill(bs, 0xAA)); err != nil {
				t.Fatal(err)
			}
			back := make([][]byte, 13)
			for i := range back {
				back[i] = make([]byte, bs)
			}
			if err := arr.ReadRun(start, back); err != nil {
				t.Fatal(err)
			}
			if back[2][0] != 0xAA || back[3][0] != 4 {
				t.Fatalf("run read after single write: got %x,%x", back[2][0], back[3][0])
			}
		})
	}
}

// Every global address must map to exactly one (device, local) slot: writing
// a distinct byte to every block and then summing per-device occupancy must
// account for every block exactly once, with no aliasing.
func TestArrayMappingBijective(t *testing.T) {
	for _, tc := range []struct {
		name   string
		layout Layout
		stripe int64
	}{
		{"stripe3", LayoutStripe, 3},
		{"partition", LayoutPartition, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			clk := sim.NewClock()
			arr, err := NewArray(testArrayModel(12), clk, 4, tc.layout, tc.stripe)
			if err != nil {
				t.Fatal(err)
			}
			seen := make(map[[2]int64]int64)
			for g := int64(0); g < arr.NumBlocks(); g++ {
				dev, local := arr.locate(g)
				if local < 0 || local >= arr.perDev {
					t.Fatalf("block %d maps to local %d outside [0,%d)", g, local, arr.perDev)
				}
				key := [2]int64{int64(dev), local}
				if prev, dup := seen[key]; dup {
					t.Fatalf("blocks %d and %d alias to device %d local %d", prev, g, dev, local)
				}
				seen[key] = g
			}
			if int64(len(seen)) != arr.NumBlocks() {
				t.Fatalf("mapped %d slots, want %d", len(seen), arr.NumBlocks())
			}
		})
	}
}

// A striped run must fan out across spindles; array stats must be the
// field-wise sum of the member devices, counted once.
func TestArrayStatsAggregation(t *testing.T) {
	clk := sim.NewClock()
	arr, err := NewArray(testArrayModel(64), clk, 4, LayoutStripe, 2)
	if err != nil {
		t.Fatal(err)
	}
	bs := arr.BlockSize()
	var run [][]byte
	for i := 0; i < 16; i++ { // 8 stripe units → 2 per device
		run = append(run, fill(bs, byte(i)))
	}
	if err := arr.WriteRun(0, run); err != nil {
		t.Fatal(err)
	}
	per := arr.PerDevice()
	var wantWrites, wantBlocks int64
	for i, s := range per {
		if s.BlocksWrit != 4 {
			t.Fatalf("device %d got %d blocks, want 4", i, s.BlocksWrit)
		}
		wantWrites += s.Writes
		wantBlocks += s.BlocksWrit
	}
	agg := arr.Stats()
	if agg.Writes != wantWrites || agg.BlocksWrit != wantBlocks {
		t.Fatalf("aggregate %d ops %d blocks, per-device sums %d/%d",
			agg.Writes, agg.BlocksWrit, wantWrites, wantBlocks)
	}
	if agg.BlocksWrit != 16 {
		t.Fatalf("aggregate blocks = %d, want 16 (no double count)", agg.BlocksWrit)
	}
	arr.ResetStats()
	if s := arr.Stats(); s.Writes != 0 || s.BusyTime != 0 {
		t.Fatalf("ResetStats left %+v", s)
	}
}

// IdleCredit on an array is the conservative minimum across members.
func TestArrayIdleCreditMin(t *testing.T) {
	clk := sim.NewClock()
	arr, err := NewArray(testArrayModel(64), clk, 2, LayoutPartition, 0)
	if err != nil {
		t.Fatal(err)
	}
	bs := arr.BlockSize()
	arr.ResetIdleCredit()
	clk.Advance(10 * time.Millisecond)
	// Touch only device 1 (second partition), consuming its idle window.
	if err := arr.Write(64, fill(bs, 1)); err != nil {
		t.Fatal(err)
	}
	d0, d1 := arr.Devices()[0].IdleCredit(), arr.Devices()[1].IdleCredit()
	if d0 <= d1 {
		t.Fatalf("expected untouched device to hold more credit: %v vs %v", d0, d1)
	}
	if got := arr.IdleCredit(); got != d1 {
		t.Fatalf("array credit %v, want min %v", got, d1)
	}
}

// A CrashSet counts write ops globally and takes every member down at once;
// only the crashing op's device may carry a torn prefix.
func TestCrashSetWholeMachine(t *testing.T) {
	clk := sim.NewClock()
	arr, err := NewArray(testArrayModel(64), clk, 2, LayoutPartition, 0)
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCrashSet(arr.Devices()...)
	bs := arr.BlockSize()
	if err := arr.Write(0, fill(bs, 1)); err != nil { // op 1, device 0
		t.Fatal(err)
	}
	if err := arr.Write(64, fill(bs, 2)); err != nil { // op 2, device 1
		t.Fatal(err)
	}
	if got := cs.WriteOps(); got != 2 {
		t.Fatalf("global WriteOps = %d, want 2", got)
	}
	cs.CrashAfter(3, false, 7)
	if err := arr.Write(1, fill(bs, 3)); err != ErrCrashed { // op 3 fires on device 0
		t.Fatalf("crashing write: got %v, want ErrCrashed", err)
	}
	if !cs.Crashed() {
		t.Fatal("set not marked crashed")
	}
	// Both members refuse all traffic, including the untouched one.
	if err := arr.Read(64, make([]byte, bs)); err != ErrCrashed {
		t.Fatalf("read on other member after crash: got %v, want ErrCrashed", err)
	}
	// The crashing op persisted nothing; pre-crash writes survive on both.
	cs.ClearCrash()
	b, err := arr.Peek(1)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 {
		t.Fatal("crashing write leaked to media")
	}
	for g, want := range map[int64]byte{0: 1, 64: 2} {
		b, err := arr.Peek(g)
		if err != nil {
			t.Fatal(err)
		}
		if b[0] != want {
			t.Fatalf("durable block %d lost: got %x want %x", g, b[0], want)
		}
	}
	// After ClearCrash both members accept traffic again.
	if err := arr.Write(2, fill(bs, 4)); err != nil {
		t.Fatal(err)
	}
	if err := arr.Write(65, fill(bs, 5)); err != nil {
		t.Fatal(err)
	}
}

// Torn whole-machine crash: the prefix is deterministic in the seed and
// lands only on the device servicing the crashing run.
func TestCrashSetTornPrefixDeterministic(t *testing.T) {
	runOnce := func() []byte {
		clk := sim.NewClock()
		arr, err := NewArray(testArrayModel(64), clk, 2, LayoutPartition, 0)
		if err != nil {
			t.Fatal(err)
		}
		cs := NewCrashSet(arr.Devices()...)
		bs := arr.BlockSize()
		cs.CrashAfter(1, true, 42)
		var run [][]byte
		for i := 0; i < 8; i++ {
			run = append(run, fill(bs, byte(i+1)))
		}
		// Run entirely within device 1's partition.
		if err := arr.WriteRun(64, run); err != ErrCrashed {
			t.Fatalf("got %v, want ErrCrashed", err)
		}
		cs.ClearCrash()
		out := make([]byte, 8)
		for i := range out {
			b, err := arr.Peek(64 + int64(i))
			if err != nil {
				t.Fatal(err)
			}
			out[i] = b[0]
		}
		// Device 0 must be untouched.
		b, err := arr.Peek(0)
		if err != nil {
			t.Fatal(err)
		}
		if b[0] != 0 {
			t.Fatal("torn prefix leaked onto the wrong device")
		}
		return out
	}
	a, b := runOnce(), runOnce()
	if !bytes.Equal(a, b) {
		t.Fatalf("torn prefix not deterministic: %v vs %v", a, b)
	}
	// The prefix property: once a zero appears, the rest are zero.
	zero := false
	for _, v := range a {
		if v == 0 {
			zero = true
		} else if zero {
			t.Fatalf("survivors are not a prefix: %v", a)
		}
	}
}
