package disk

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// BlockDevice is the block-addressed interface the file systems mount on.
// Both the single-spindle Device and the N-spindle Array implement it, so
// ffs/lfs/pagestore run unchanged on either. Like Device itself, every
// method must be called in proc context (under the scheduler's execution
// token, or on the main goroutine when no scheduler is running).
type BlockDevice interface {
	Model() sim.DiskModel
	BlockSize() int
	NumBlocks() int64
	Read(block int64, buf []byte) error
	Write(block int64, buf []byte) error
	ReadRun(start int64, bufs [][]byte) error
	WriteRun(start int64, bufs [][]byte) error
	Peek(block int64) ([]byte, error)
	SetLane(l Lane) Lane
	IdleCredit() time.Duration
	ResetIdleCredit()
	Stats() Stats
	ResetStats()
	SetTracer(tr *trace.Tracer)
	SetFault(f FaultFn)
	ArmPosition() int64
}

// Layout selects how an Array maps its flat block address space onto member
// devices.
type Layout int

const (
	// LayoutStripe interleaves fixed-size stripe units round-robin across
	// the devices (RAID-0): unit u lives on device u mod N. Sequential runs
	// fan out over all spindles, spreading a single hot log across arms.
	LayoutStripe Layout = iota
	// LayoutPartition assigns each device one contiguous range of the
	// address space: device i owns blocks [i*perDev, (i+1)*perDev).
	// Locality within a partition stays on one arm, so independent
	// workloads on different ranges never disturb each other's positioning.
	LayoutPartition
)

// Array combines N single-spindle devices behind the BlockDevice interface.
// Each member keeps its own arm position, busy window (queueing), lane, and
// idle credit, so at MPL > 1 requests landing on different spindles are
// serviced concurrently in simulated time — the whole point of the array —
// while requests contending for one spindle still queue on that device.
//
// The array itself holds no mutable state: all per-request bookkeeping lives
// in the member devices, which enforce the token-context contract.
type Array struct {
	devs   []*Device
	layout Layout
	stripe int64 // blocks per stripe unit (LayoutStripe)
	perDev int64 // usable blocks per device
	model  sim.DiskModel
}

// NewArray creates an array of n devices, each with the geometry of model
// (model.NumBlocks is the per-device capacity), on the given clock. For
// LayoutStripe, stripeBlocks sets the stripe-unit size in blocks and each
// device's capacity is truncated to a whole number of units; for
// LayoutPartition, stripeBlocks is ignored. The aggregate Model()/NumBlocks
// report the combined usable capacity.
func NewArray(model sim.DiskModel, clock *sim.Clock, n int, layout Layout, stripeBlocks int64) (*Array, error) {
	if n < 1 {
		return nil, fmt.Errorf("disk: array needs at least 1 device, got %d", n)
	}
	perDev := model.NumBlocks
	switch layout {
	case LayoutStripe:
		if stripeBlocks < 1 {
			return nil, fmt.Errorf("disk: stripe width must be >= 1 block, got %d", stripeBlocks)
		}
		perDev -= perDev % stripeBlocks
	case LayoutPartition:
		stripeBlocks = 0
	default:
		return nil, fmt.Errorf("disk: unknown layout %d", layout)
	}
	if perDev < 1 {
		return nil, fmt.Errorf("disk: per-device capacity %d too small", perDev)
	}
	a := &Array{
		devs:   make([]*Device, n),
		layout: layout,
		stripe: stripeBlocks,
		perDev: perDev,
		model:  model,
	}
	a.model.NumBlocks = perDev * int64(n)
	for i := range a.devs {
		a.devs[i] = New(model, clock)
	}
	return a, nil
}

// Devices returns the member devices in address order, for per-spindle stats
// and crash-set wiring. Callers must not reorder the slice.
func (a *Array) Devices() []*Device { return a.devs }

// locate maps a global block address to (member device, local address).
func (a *Array) locate(g int64) (int, int64) {
	if a.layout == LayoutStripe {
		unit := g / a.stripe
		n := int64(len(a.devs))
		return int(unit % n), (unit/n)*a.stripe + g%a.stripe
	}
	return int(g / a.perDev), g % a.perDev
}

// contig returns how many blocks starting at global address g stay
// physically contiguous on a single member device.
func (a *Array) contig(g int64) int64 {
	if a.layout == LayoutStripe {
		return a.stripe - g%a.stripe
	}
	return a.perDev - g%a.perDev
}

// Model returns the aggregate service-time model: per-device geometry and
// timing with NumBlocks set to the combined usable capacity.
func (a *Array) Model() sim.DiskModel { return a.model }

// BlockSize returns the block size in bytes (uniform across members).
func (a *Array) BlockSize() int { return a.model.BlockSize }

// NumBlocks returns the combined usable capacity in blocks.
func (a *Array) NumBlocks() int64 { return a.model.NumBlocks }

func (a *Array) checkRange(block int64, n int) error {
	if block < 0 || block+int64(n) > a.model.NumBlocks {
		return fmt.Errorf("%w: block %d count %d (array has %d)", ErrOutOfRange, block, n, a.model.NumBlocks)
	}
	return nil
}

// Read reads one block into buf.
func (a *Array) Read(block int64, buf []byte) error {
	if err := a.checkRange(block, 1); err != nil {
		return err
	}
	dev, local := a.locate(block)
	return a.devs[dev].Read(local, buf)
}

// Write writes one block from buf.
func (a *Array) Write(block int64, buf []byte) error {
	if err := a.checkRange(block, 1); err != nil {
		return err
	}
	dev, local := a.locate(block)
	return a.devs[dev].Write(local, buf)
}

// ReadRun reads len(bufs) contiguous global blocks starting at start,
// splitting the run into maximal per-device contiguous transfers issued in
// address order. On a striped layout a long run round-robins stripe-unit
// sized transfers across every spindle.
func (a *Array) ReadRun(start int64, bufs [][]byte) error {
	if len(bufs) == 0 {
		return nil
	}
	if err := a.checkRange(start, len(bufs)); err != nil {
		return err
	}
	for off := int64(0); off < int64(len(bufs)); {
		g := start + off
		n := min(a.contig(g), int64(len(bufs))-off)
		dev, local := a.locate(g)
		var err error
		if n == 1 {
			err = a.devs[dev].Read(local, bufs[off])
		} else {
			err = a.devs[dev].ReadRun(local, bufs[off:off+n])
		}
		if err != nil {
			return err
		}
		off += n
	}
	return nil
}

// WriteRun writes len(bufs) contiguous global blocks starting at start,
// splitting the run into maximal per-device contiguous transfers issued in
// address order.
func (a *Array) WriteRun(start int64, bufs [][]byte) error {
	if len(bufs) == 0 {
		return nil
	}
	if err := a.checkRange(start, len(bufs)); err != nil {
		return err
	}
	for off := int64(0); off < int64(len(bufs)); {
		g := start + off
		n := min(a.contig(g), int64(len(bufs))-off)
		dev, local := a.locate(g)
		var err error
		if n == 1 {
			err = a.devs[dev].Write(local, bufs[off])
		} else {
			err = a.devs[dev].WriteRun(local, bufs[off:off+n])
		}
		if err != nil {
			return err
		}
		off += n
	}
	return nil
}

// Peek returns the stored contents of a global block without charging
// simulated time.
func (a *Array) Peek(block int64) ([]byte, error) {
	if err := a.checkRange(block, 1); err != nil {
		return nil, err
	}
	dev, local := a.locate(block)
	return a.devs[dev].Peek(local)
}

// SetLane switches the charging lane on every member and returns the
// previous lane (uniform across members by construction).
func (a *Array) SetLane(l Lane) Lane {
	prev := a.devs[0].SetLane(l)
	for _, d := range a.devs[1:] {
		d.SetLane(l)
	}
	return prev
}

// IdleCredit reports the minimum unspent idle budget across members — the
// budget a background batch touching every spindle can rely on. Individual
// spindles may have more; per-device figures come from Devices().
func (a *Array) IdleCredit() time.Duration {
	credit := a.devs[0].IdleCredit()
	for _, d := range a.devs[1:] {
		if c := d.IdleCredit(); c < credit {
			credit = c
		}
	}
	return credit
}

// ResetIdleCredit forgets accumulated idle time on every member.
func (a *Array) ResetIdleCredit() {
	for _, d := range a.devs {
		d.ResetIdleCredit()
	}
}

// Stats returns the field-wise sum over members. Ops, blocks, seeks, busy,
// queue, and background times are all per-device accumulators charged
// exactly once, so the sum never double-counts; note that summed BusyTime
// can exceed elapsed time when spindles overlap (that overlap is the
// array's throughput win). Per-device breakdowns come from PerDevice.
func (a *Array) Stats() Stats {
	var s Stats
	for _, d := range a.devs {
		s.add(d.Stats())
	}
	return s
}

// PerDevice returns one Stats snapshot per member device, in address order.
func (a *Array) PerDevice() []Stats {
	out := make([]Stats, len(a.devs))
	for i, d := range a.devs {
		out[i] = d.Stats()
	}
	return out
}

// ResetStats zeroes every member's counters.
func (a *Array) ResetStats() {
	for _, d := range a.devs {
		d.ResetStats()
	}
}

// SetTracer attaches a tracer to every member. Per-access complete events
// carry device-local block addresses.
func (a *Array) SetTracer(tr *trace.Tracer) {
	for _, d := range a.devs {
		d.SetTracer(tr)
	}
}

// SetFault installs a fault-injection hook on every member; the hook sees
// device-local block addresses.
func (a *Array) SetFault(f FaultFn) {
	for _, d := range a.devs {
		d.SetFault(f)
	}
}

// ArmPosition returns -1: an array has one arm per member, not a single
// position. The C-SCAN queue treats -1 as "start the sweep at block 0".
func (a *Array) ArmPosition() int64 { return -1 }
