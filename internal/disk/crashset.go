package disk

import "repro/internal/sim"

// CrashControl is the crash-injection control surface shared by a single
// Device and a CrashSet, so the crash-point harness drives single-spindle
// and multi-device rigs through one interface and one write-op coordinate
// system.
type CrashControl interface {
	CrashAfter(n int64, torn bool, seed uint64)
	ClearCrash()
	Crashed() bool
	WriteOps() int64
}

// CrashSet coordinates a whole-machine crash across several devices: write
// operations on every member are counted in one global sequence (the order
// the simulation issues them, which is deterministic), and when the n-th
// write fires, power fails for the whole machine — every member crashes at
// once. The crashing operation persists none of its blocks on its own
// device (or, in torn mode, a deterministic prefix); every other member
// keeps exactly what was durable before that operation. This models the
// failure unit the 2PC recovery protocol must survive: all shards lose
// their volatile state together, each disk keeping its own durable prefix.
type CrashSet struct {
	members []*Device
	//simlint:tokenguarded
	writeOps int64
	//simlint:tokenguarded
	crashAt int64 // 1-based global op index to crash on; 0 = disabled
	//simlint:tokenguarded
	crashTorn bool
	//simlint:tokenguarded
	crashSeed uint64
	//simlint:tokenguarded
	crashed bool
}

// NewCrashSet joins the given devices into one crash domain. Each member's
// own CrashAfter schedule is superseded: counting and firing go through the
// set from here on.
//
//simlint:tokensafe(setup-time registration: runs before Run hands the token to any proc)
func NewCrashSet(devs ...*Device) *CrashSet {
	s := &CrashSet{members: devs}
	for _, d := range devs {
		d.cset = s
	}
	return s
}

// CrashAfter schedules a whole-machine crash on the n-th write operation
// (1-based) counted across every member device. Semantics per operation
// match Device.CrashAfter.
//
//simlint:tokensafe(setup-time registration: runs before Run hands the token to any proc)
func (s *CrashSet) CrashAfter(n int64, torn bool, seed uint64) {
	s.crashAt = n
	s.crashTorn = torn
	s.crashSeed = seed
}

// ClearCrash lifts a fired (or pending) crash on the whole set so every
// member can be remounted, modelling the post-crash reboot.
//
//simlint:tokensafe(setup-time registration: runs before Run hands the token to any proc)
func (s *CrashSet) ClearCrash() {
	s.crashed = false
	s.crashAt = 0
	for _, d := range s.members {
		d.crashed = false
		d.crashAt = 0
	}
}

// Crashed reports whether the scheduled crash has fired.
//
//simlint:tokensafe(read-only collector documented to run after Scheduler.Run returns)
func (s *CrashSet) Crashed() bool { return s.crashed }

// WriteOps returns the number of write operations issued across all members
// so far — the coordinate system CrashAfter addresses.
//
//simlint:tokensafe(read-only collector documented to run after Scheduler.Run returns)
func (s *CrashSet) WriteOps() int64 { return s.writeOps }

// noteWrite is the per-operation hook Device.noteWrite delegates to for
// joined devices: advance the global counter, fire the crash when due, and
// take down every member. The torn prefix lands on d, the device servicing
// the crashing operation.
func (s *CrashSet) noteWrite(d *Device, start int64, bufs [][]byte) bool {
	s.writeOps++
	if s.crashAt == 0 || s.writeOps < s.crashAt {
		return true
	}
	s.crashed = true
	for _, m := range s.members {
		m.crashed = true
	}
	if s.crashTorn {
		// The media wrote blocks strictly in order until power failed, so
		// what survives is a prefix — anywhere from nothing to the full run.
		k := sim.NewRNG(s.crashSeed).Intn(len(bufs) + 1)
		for i := 0; i < k; i++ {
			d.store(start+int64(i), bufs[i])
		}
	}
	return false
}
