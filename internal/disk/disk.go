// Package disk implements the simulated block devices both file systems run
// on. A Device stores block contents in memory and charges simulated time
// for every access using a sim.DiskModel, tracking the arm position so that
// sequential transfers (the log-structured file system's segment writes) are
// billed at media bandwidth while scattered accesses pay seek and rotational
// delays. An Array combines N devices behind the same block-addressed
// interface (see BlockDevice) with a striped or range-partitioned layout,
// each spindle keeping its own arm, queue, lane, and idle credit.
//
// The package also provides a C-SCAN request queue, used by the
// read-optimized file system's syncer to sort delayed writes by block address
// before issuing them — the behaviour §5.1 of the paper describes for the
// conventional system ("sorted in the disk queue with all other I/O").
package disk

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Common errors returned by the device.
var (
	ErrOutOfRange = errors.New("disk: block address out of range")
	ErrBadSize    = errors.New("disk: buffer size does not match block size")
	// ErrCrashed is returned by every access once a scheduled crash point
	// has fired (see CrashAfter), until ClearCrash re-enables the device.
	ErrCrashed = errors.New("disk: device crashed")
)

// Stats accumulates device activity counters.
type Stats struct {
	Reads      int64         // read operations
	Writes     int64         // write operations
	BlocksRead int64         // blocks transferred in
	BlocksWrit int64         // blocks transferred out
	Seeks      int64         // accesses that paid positioning time
	BusyTime   time.Duration // total simulated service time
	QueueTime  time.Duration // foreground time spent queued behind earlier requests (MPL > 1)

	// Background-lane accounting (see Lane). BgTime is total background
	// service time; BgOverlapTime is the portion absorbed by foreground idle
	// windows; BgStallTime is the residue that actually delayed the workload
	// (BgTime = BgOverlapTime + BgStallTime).
	BgTime        time.Duration
	BgOverlapTime time.Duration
	BgStallTime   time.Duration
}

// add accumulates other into s; used by Array.Stats to aggregate spindles
// without double-counting (every field is a per-device sum, so the array
// total is the plain field-wise sum — queue time in particular is charged
// once, on the device whose busy window delayed the request).
func (s *Stats) add(other Stats) {
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.BlocksRead += other.BlocksRead
	s.BlocksWrit += other.BlocksWrit
	s.Seeks += other.Seeks
	s.BusyTime += other.BusyTime
	s.QueueTime += other.QueueTime
	s.BgTime += other.BgTime
	s.BgOverlapTime += other.BgOverlapTime
	s.BgStallTime += other.BgStallTime
}

// Lane selects how an access is charged against simulated time.
type Lane int

const (
	// Foreground accesses advance the clock by their full service time.
	Foreground Lane = iota
	// Background accesses are served in the idle windows between foreground
	// requests: the device keeps a budget of idle time accumulated since its
	// last request completed, background service time drains that budget
	// first, and only the residue advances the clock (stalling the
	// foreground). This models a cleaner that runs while the disk would
	// otherwise sit idle, as §5.4 of the paper prescribes.
	Background
)

// FaultFn can be installed with SetFault to inject I/O errors: it is called
// before every access with the operation ("read" or "write") and, for
// multi-block runs, once per block in the run; a non-nil return aborts the
// whole access with that error before any side effects. Used by tests to
// exercise error paths.
type FaultFn func(op string, block int64) error

// Device is a simulated block device modelling a single spindle. Methods are
// NOT safe for arbitrary concurrent use: like every simulation-facing API in
// this repository they must run in proc context — under the scheduler's
// single execution token (inside a Spawn'd proc or a stall hook), or on the
// main goroutine when no scheduler is running, which is the degenerate
// single-token case. The cooperative scheduler never preempts between a
// method's first field access and its last, so per-request state needs no
// locking; simulated service time is still serialized per spindle through
// busyUntil, which is what models the single arm.
type Device struct {
	model sim.DiskModel
	clock *sim.Clock
	//simlint:tokenguarded
	blocks [][]byte
	//simlint:tokenguarded
	arm int64 // block address one past the last access, -1 if unknown
	//simlint:tokenguarded
	fault FaultFn
	//simlint:tokenguarded
	stats Stats
	//simlint:tokenguarded
	tracer *trace.Tracer // nil = tracing off (every call is a cheap no-op)
	//simlint:tokenguarded
	rd opTrace // per-op cached span names and metric handles
	//simlint:tokenguarded
	wr opTrace

	//simlint:tokenguarded
	lane Lane
	//simlint:tokenguarded
	idleCredit time.Duration // foreground idle time not yet spent on background work
	//simlint:tokenguarded
	lastEnd time.Duration // clock time when the last request finished
	//simlint:tokenguarded
	busyUntil time.Duration // virtual time the spindle finishes its current foreground request

	// Crash model (see CrashAfter). writeOps counts write operations
	// (Write and WriteRun each count as one); when it reaches crashAt the
	// device "loses power": the crashing write persists nothing — or, in
	// torn mode, a deterministic prefix of its blocks — and every access
	// from then on fails with ErrCrashed until ClearCrash. When the device
	// has been joined into a CrashSet, counting and firing are delegated to
	// the set so one write-op coordinate system spans every member device.
	//simlint:tokenguarded
	writeOps int64
	//simlint:tokenguarded
	crashAt int64 // 1-based op index to crash on; 0 = disabled
	//simlint:tokenguarded
	crashTorn bool
	//simlint:tokenguarded
	crashSeed uint64
	//simlint:tokenguarded
	crashed bool
	//simlint:tokenguarded
	cset *CrashSet // nil unless joined into a whole-machine crash set
}

// SetFault installs (or clears, with nil) a fault-injection hook.
//
//simlint:tokensafe(setup-time registration: runs before Run hands the token to any proc)
func (d *Device) SetFault(f FaultFn) {
	d.fault = f
}

// checkFault consults the injection hook.
func (d *Device) checkFault(op string, block int64) error {
	if d.fault == nil {
		return nil
	}
	return d.fault(op, block)
}

// checkFaultRun consults the injection hook for every block of a run, so
// per-block fault rules cannot be bypassed by multi-block transfers. Any
// non-nil return aborts the whole run before any side effects.
func (d *Device) checkFaultRun(op string, start int64, n int) error {
	if d.fault == nil {
		return nil
	}
	for i := 0; i < n; i++ {
		if err := d.fault(op, start+int64(i)); err != nil {
			return err
		}
	}
	return nil
}

// CrashAfter schedules a crash on the n-th write operation from the device's
// creation (1-based; Write and WriteRun each count as one operation — see
// WriteOps). The crashing operation persists none of its blocks, unless torn
// is set, in which case a deterministic prefix of the run — chosen by a RNG
// seeded with seed, possibly empty and possibly the whole run (the
// "acknowledgement lost" case) — reaches the media before power fails. The
// crashing write and every subsequent access return ErrCrashed until
// ClearCrash. No simulated time is charged for accesses after the crash.
//
//simlint:tokensafe(setup-time registration: runs before Run hands the token to any proc)
func (d *Device) CrashAfter(n int64, torn bool, seed uint64) {
	d.crashAt = n
	d.crashTorn = torn
	d.crashSeed = seed
}

// ClearCrash lifts a fired (or still pending) crash so the device can be
// remounted, modelling the post-crash reboot. Stored contents are exactly
// what was durable at the crash point.
//
//simlint:tokensafe(setup-time registration: runs before Run hands the token to any proc)
func (d *Device) ClearCrash() {
	d.crashed = false
	d.crashAt = 0
}

// Crashed reports whether a scheduled crash point has fired.
//
//simlint:tokensafe(read-only collector documented to run after Scheduler.Run returns)
func (d *Device) Crashed() bool {
	return d.crashed
}

// WriteOps returns the number of write operations issued so far — the
// coordinate system CrashAfter addresses. For a device joined into a
// CrashSet the set's global counter is authoritative; use CrashSet.WriteOps.
//
//simlint:tokensafe(read-only collector documented to run after Scheduler.Run returns)
func (d *Device) WriteOps() int64 {
	return d.writeOps
}

// noteWrite advances the write-op counter and fires a scheduled crash,
// persisting a deterministic prefix of bufs in torn mode. It reports whether
// the write may proceed normally. Devices joined into a CrashSet delegate to
// the set's shared counter so a crash takes down every member at once.
func (d *Device) noteWrite(start int64, bufs [][]byte) bool {
	if d.cset != nil {
		return d.cset.noteWrite(d, start, bufs)
	}
	d.writeOps++
	if d.crashAt == 0 || d.writeOps < d.crashAt {
		return true
	}
	d.crashed = true
	if d.crashTorn {
		// The media wrote blocks strictly in order until power failed, so
		// what survives is a prefix — anywhere from nothing to the full run.
		k := sim.NewRNG(d.crashSeed).Intn(len(bufs) + 1)
		for i := 0; i < k; i++ {
			d.store(start+int64(i), bufs[i])
		}
	}
	return false
}

// New creates a device with the given model, advancing the given clock on
// every access.
func New(model sim.DiskModel, clock *sim.Clock) *Device {
	return &Device{
		model:  model,
		clock:  clock,
		blocks: make([][]byte, model.NumBlocks),
		arm:    -1,
	}
}

// opTrace caches one access direction's span name and metric handles so the
// per-access hot path neither concatenates strings nor hashes metric names.
type opTrace struct {
	span   string
	lat    *trace.Hist
	ops    *trace.Counter
	blocks *trace.Counter
}

// SetTracer attaches a tracer; each access then emits a disk.read/disk.write
// complete event with its seek/rotation/transfer/queue breakdown and charges
// per-proc time attribution. A nil tracer (the default) costs nothing.
//
//simlint:tokensafe(setup-time registration: runs before Run hands the token to any proc)
func (d *Device) SetTracer(tr *trace.Tracer) {
	d.tracer = tr
	d.rd = opTrace{span: "disk.read", lat: tr.Hist("disk.read"),
		ops: tr.Counter("disk.reads"), blocks: tr.Counter("disk.read.blocks")}
	d.wr = opTrace{span: "disk.write", lat: tr.Hist("disk.write"),
		ops: tr.Counter("disk.writes"), blocks: tr.Counter("disk.write.blocks")}
}

// Model returns the device's service-time model.
func (d *Device) Model() sim.DiskModel { return d.model }

// BlockSize returns the device block size in bytes.
func (d *Device) BlockSize() int { return d.model.BlockSize }

// NumBlocks returns the number of addressable blocks.
func (d *Device) NumBlocks() int64 { return d.model.NumBlocks }

// Stats returns a snapshot of the accumulated statistics.
//
//simlint:tokensafe(read-only collector documented to run after Scheduler.Run returns)
func (d *Device) Stats() Stats {
	return d.stats
}

// ResetStats zeroes the statistics counters.
//
//simlint:tokensafe(setup-time registration: runs before Run hands the token to any proc)
func (d *Device) ResetStats() {
	d.stats = Stats{}
}

func (d *Device) checkRange(block int64, n int) error {
	if block < 0 || block+int64(n) > d.model.NumBlocks {
		return fmt.Errorf("%w: block %d count %d (device has %d)", ErrOutOfRange, block, n, d.model.NumBlocks)
	}
	return nil
}

// charge bills an access of n contiguous blocks at address block and moves
// the arm. Foreground accesses advance the clock by the full service time;
// background accesses drain the accumulated idle budget first and only their
// residue stalls the clock.
//
// The device models a single spindle: a foreground request issued while an
// earlier foreground request is still in service (possible only at MPL > 1,
// where clients carry independent virtual clocks) first waits out the
// remaining service time, and that queueing delay is charged to the waiting
// client. At MPL = 1 the single client's time is never behind busyUntil, so
// the queue wait is always zero and timings match the direct-advance design
// exactly. Background accesses bypass the queue — they model work scheduled
// into idle windows, and their overlap accounting below already bounds how
// much of them the foreground can absorb.
func (d *Device) charge(ot *opTrace, block int64, n int) {
	start := d.clock.Now()
	var qwait time.Duration
	if d.lane == Foreground {
		if now := d.clock.Now(); d.busyUntil > now {
			qwait = d.busyUntil - now
			d.clock.Advance(qwait)
			d.stats.QueueTime += qwait
		}
	}
	seek, rot, xfer := d.model.AccessTimeParts(d.arm, block, n)
	t := seek + rot + xfer
	if d.arm != block {
		d.stats.Seeks++
	}
	d.arm = block + int64(n)
	d.stats.BusyTime += t
	if now := d.clock.Now(); now > d.lastEnd {
		d.idleCredit += now - d.lastEnd
	}
	if d.lane == Background {
		overlap := min(t, d.idleCredit)
		d.idleCredit -= overlap
		d.stats.BgTime += t
		d.stats.BgOverlapTime += overlap
		d.stats.BgStallTime += t - overlap
		d.clock.Advance(t - overlap)
		// Only the unabsorbed residue delayed anyone; it is cleaner time by
		// construction (the background lane exists for the cleaner).
		d.tracer.Attribute(trace.AttrCleaner, t-overlap)
	} else {
		d.clock.Advance(t)
		d.tracer.AttributeIO(t, qwait)
	}
	d.lastEnd = d.clock.Now()
	if d.lane == Foreground {
		d.busyUntil = d.lastEnd
	}
	if d.tracer.Enabled() {
		lane := "fg"
		if d.lane == Background {
			lane = "bg"
		}
		d.tracer.Complete("disk", ot.span, start,
			trace.AI("block", block), trace.AI("blocks", int64(n)),
			trace.AI("seek_ns", seek.Nanoseconds()), trace.AI("rot_ns", rot.Nanoseconds()),
			trace.AI("xfer_ns", xfer.Nanoseconds()), trace.AI("queue_ns", qwait.Nanoseconds()),
			trace.AS("lane", lane))
		ot.lat.Observe(d.clock.Now() - start)
		ot.ops.Add(1)
		ot.blocks.Add(int64(n))
	}
}

// SetLane switches the charging lane for subsequent accesses and returns the
// previous lane, so callers can restore it with defer.
//
//simlint:tokensafe(device API is documented proc-context-only; at MPL=1 the main goroutine is the sole, degenerate token holder)
func (d *Device) SetLane(l Lane) Lane {
	prev := d.lane
	d.lane = l
	return prev
}

// IdleCredit reports the unspent foreground idle budget: time the device has
// sat idle since its last request that background work could still consume
// for free.
//
//simlint:tokensafe(device API is documented proc-context-only; at MPL=1 the main goroutine is the sole, degenerate token holder)
func (d *Device) IdleCredit() time.Duration {
	credit := d.idleCredit
	if now := d.clock.Now(); now > d.lastEnd {
		credit += now - d.lastEnd
	}
	return credit
}

// ResetIdleCredit forgets accumulated idle time. Benchmark rigs call this
// after the load phase so the measured run's background cleaner cannot hide
// behind setup-time idleness.
//
//simlint:tokensafe(setup-time registration: runs before Run hands the token to any proc)
func (d *Device) ResetIdleCredit() {
	d.idleCredit = 0
	d.lastEnd = d.clock.Now()
}

// Read reads one block into buf. buf must be exactly one block long.
//
//simlint:tokensafe(device API is documented proc-context-only; at MPL=1 the main goroutine is the sole, degenerate token holder)
func (d *Device) Read(block int64, buf []byte) error {
	if len(buf) != d.model.BlockSize {
		return ErrBadSize
	}
	if err := d.checkRange(block, 1); err != nil {
		return err
	}
	if d.crashed {
		return ErrCrashed
	}
	if err := d.checkFault("read", block); err != nil {
		return err
	}
	d.charge(&d.rd, block, 1)
	d.stats.Reads++
	d.stats.BlocksRead++
	if src := d.blocks[block]; src != nil {
		copy(buf, src)
	} else {
		for i := range buf {
			buf[i] = 0
		}
	}
	return nil
}

// Write writes one block from buf. buf must be exactly one block long.
//
//simlint:tokensafe(device API is documented proc-context-only; at MPL=1 the main goroutine is the sole, degenerate token holder)
func (d *Device) Write(block int64, buf []byte) error {
	if len(buf) != d.model.BlockSize {
		return ErrBadSize
	}
	if err := d.checkRange(block, 1); err != nil {
		return err
	}
	if d.crashed {
		return ErrCrashed
	}
	if err := d.checkFault("write", block); err != nil {
		return err
	}
	if !d.noteWrite(block, [][]byte{buf}) {
		return ErrCrashed
	}
	d.charge(&d.wr, block, 1)
	d.stats.Writes++
	d.stats.BlocksWrit++
	d.store(block, buf)
	return nil
}

// store copies buf into block.
func (d *Device) store(block int64, buf []byte) {
	dst := d.blocks[block]
	if dst == nil {
		dst = make([]byte, d.model.BlockSize)
		d.blocks[block] = dst
	}
	copy(dst, buf)
}

// WriteRun writes len(bufs) contiguous blocks starting at start in a single
// sequential transfer: one positioning delay, then media-rate transfer. This
// is the primitive behind LFS segment writes.
//
//simlint:tokensafe(device API is documented proc-context-only; at MPL=1 the main goroutine is the sole, degenerate token holder)
func (d *Device) WriteRun(start int64, bufs [][]byte) error {
	if len(bufs) == 0 {
		return nil
	}
	for _, b := range bufs {
		if len(b) != d.model.BlockSize {
			return ErrBadSize
		}
	}
	if err := d.checkRange(start, len(bufs)); err != nil {
		return err
	}
	if d.crashed {
		return ErrCrashed
	}
	if err := d.checkFaultRun("write", start, len(bufs)); err != nil {
		return err
	}
	if !d.noteWrite(start, bufs) {
		return ErrCrashed
	}
	d.charge(&d.wr, start, len(bufs))
	d.stats.Writes++
	d.stats.BlocksWrit += int64(len(bufs))
	for i, b := range bufs {
		d.store(start+int64(i), b)
	}
	return nil
}

// ReadRun reads len(bufs) contiguous blocks starting at start in a single
// sequential transfer.
//
//simlint:tokensafe(device API is documented proc-context-only; at MPL=1 the main goroutine is the sole, degenerate token holder)
func (d *Device) ReadRun(start int64, bufs [][]byte) error {
	if len(bufs) == 0 {
		return nil
	}
	for _, b := range bufs {
		if len(b) != d.model.BlockSize {
			return ErrBadSize
		}
	}
	if err := d.checkRange(start, len(bufs)); err != nil {
		return err
	}
	if d.crashed {
		return ErrCrashed
	}
	if err := d.checkFaultRun("read", start, len(bufs)); err != nil {
		return err
	}
	d.charge(&d.rd, start, len(bufs))
	d.stats.Reads++
	d.stats.BlocksRead += int64(len(bufs))
	for i, b := range bufs {
		if src := d.blocks[start+int64(i)]; src != nil {
			copy(b, src)
		} else {
			for j := range b {
				b[j] = 0
			}
		}
	}
	return nil
}

// Peek returns the stored contents of a block without charging simulated
// time. It is intended for tests and the lfsdump inspector, not for file
// system code.
//
//simlint:tokensafe(read-only collector documented to run after Scheduler.Run returns)
func (d *Device) Peek(block int64) ([]byte, error) {
	if err := d.checkRange(block, 1); err != nil {
		return nil, err
	}
	out := make([]byte, d.model.BlockSize)
	if src := d.blocks[block]; src != nil {
		copy(out, src)
	}
	return out, nil
}

// ArmPosition reports the current arm position (block address) or -1 when
// unknown. Useful in tests asserting sequential behaviour.
//
//simlint:tokensafe(device API is documented proc-context-only; at MPL=1 the main goroutine is the sole, degenerate token holder)
func (d *Device) ArmPosition() int64 {
	return d.arm
}
