package disk

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func newTestDevice() (*Device, *sim.Clock) {
	clk := sim.NewClock()
	return New(sim.SmallModel(), clk), clk
}

func block(dev *Device, fill byte) []byte {
	b := make([]byte, dev.BlockSize())
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestReadUnwrittenBlockIsZero(t *testing.T) {
	dev, _ := newTestDevice()
	buf := block(dev, 0xff)
	if err := dev.Read(10, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unwritten block should read as zeros")
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dev, _ := newTestDevice()
	w := block(dev, 0xab)
	if err := dev.Write(42, w); err != nil {
		t.Fatal(err)
	}
	r := block(dev, 0)
	if err := dev.Read(42, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w, r) {
		t.Fatal("read back different data")
	}
}

func TestWriteCopiesData(t *testing.T) {
	dev, _ := newTestDevice()
	w := block(dev, 1)
	if err := dev.Write(5, w); err != nil {
		t.Fatal(err)
	}
	w[0] = 99 // mutate caller's buffer after the write
	r := block(dev, 0)
	if err := dev.Read(5, r); err != nil {
		t.Fatal(err)
	}
	if r[0] != 1 {
		t.Fatal("device must store a copy, not alias the caller's buffer")
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	dev, _ := newTestDevice()
	buf := block(dev, 0)
	if err := dev.Read(-1, buf); err == nil {
		t.Fatal("negative block should fail")
	}
	if err := dev.Write(dev.NumBlocks(), buf); err == nil {
		t.Fatal("past-end block should fail")
	}
	if err := dev.WriteRun(dev.NumBlocks()-1, [][]byte{buf, buf}); err == nil {
		t.Fatal("run extending past end should fail")
	}
}

func TestBadBufferSizeRejected(t *testing.T) {
	dev, _ := newTestDevice()
	if err := dev.Read(0, make([]byte, 100)); err != ErrBadSize {
		t.Fatalf("got %v, want ErrBadSize", err)
	}
	if err := dev.Write(0, make([]byte, dev.BlockSize()+1)); err != ErrBadSize {
		t.Fatalf("got %v, want ErrBadSize", err)
	}
}

func TestWriteRunRoundTrip(t *testing.T) {
	dev, _ := newTestDevice()
	bufs := [][]byte{block(dev, 1), block(dev, 2), block(dev, 3)}
	if err := dev.WriteRun(100, bufs); err != nil {
		t.Fatal(err)
	}
	got := [][]byte{block(dev, 0), block(dev, 0), block(dev, 0)}
	if err := dev.ReadRun(100, got); err != nil {
		t.Fatal(err)
	}
	for i := range bufs {
		if !bytes.Equal(bufs[i], got[i]) {
			t.Fatalf("block %d mismatch", i)
		}
	}
}

func TestTimeAccounting(t *testing.T) {
	dev, clk := newTestDevice()
	before := clk.Now()
	buf := block(dev, 7)
	if err := dev.Write(1000, buf); err != nil {
		t.Fatal(err)
	}
	if clk.Now() <= before {
		t.Fatal("a write must advance the simulated clock")
	}
	st := dev.Stats()
	if st.Writes != 1 || st.BlocksWrit != 1 || st.BusyTime <= 0 {
		t.Fatalf("stats = %+v, want one write with busy time", st)
	}
}

func TestSequentialCheaperThanRandom(t *testing.T) {
	devA, clkA := newTestDevice()
	buf := block(devA, 1)
	// Sequential: 64 consecutive blocks.
	for i := int64(0); i < 64; i++ {
		if err := devA.Write(1000+i, buf); err != nil {
			t.Fatal(err)
		}
	}
	seq := clkA.Now()

	devB, clkB := newTestDevice()
	for i := int64(0); i < 64; i++ {
		if err := devB.Write(i*97%devB.NumBlocks(), buf); err != nil {
			t.Fatal(err)
		}
	}
	rnd := clkB.Now()
	if rnd < 3*seq {
		t.Fatalf("random (%v) should be much slower than sequential (%v)", rnd, seq)
	}
}

func TestWriteRunCheaperThanBlockWrites(t *testing.T) {
	devA, clkA := newTestDevice()
	bufs := make([][]byte, 64)
	for i := range bufs {
		bufs[i] = block(devA, byte(i))
	}
	// Position both arms identically first.
	if err := devA.Write(0, bufs[0]); err != nil {
		t.Fatal(err)
	}
	t0 := clkA.Now()
	if err := devA.WriteRun(4000, bufs); err != nil {
		t.Fatal(err)
	}
	runTime := clkA.Now() - t0

	devB, clkB := newTestDevice()
	if err := devB.Write(0, bufs[0]); err != nil {
		t.Fatal(err)
	}
	t1 := clkB.Now()
	for i := range bufs {
		// Same blocks but interleave with a distant access so each write seeks.
		if err := devB.Write(4000+int64(i)*2, bufs[i]); err != nil {
			t.Fatal(err)
		}
		if err := devB.Read(100, bufs[0]); err != nil {
			t.Fatal(err)
		}
	}
	scattered := clkB.Now() - t1
	if scattered < 5*runTime {
		t.Fatalf("scattered writes (%v) should dwarf one run write (%v)", scattered, runTime)
	}
}

func TestArmTracking(t *testing.T) {
	dev, _ := newTestDevice()
	if dev.ArmPosition() != -1 {
		t.Fatal("fresh device arm position should be unknown")
	}
	buf := block(dev, 0)
	if err := dev.Write(10, buf); err != nil {
		t.Fatal(err)
	}
	if got := dev.ArmPosition(); got != 11 {
		t.Fatalf("arm = %d, want 11", got)
	}
	if err := dev.WriteRun(20, [][]byte{buf, buf, buf}); err != nil {
		t.Fatal(err)
	}
	if got := dev.ArmPosition(); got != 23 {
		t.Fatalf("arm = %d, want 23", got)
	}
}

func TestPeekDoesNotAdvanceClock(t *testing.T) {
	dev, clk := newTestDevice()
	buf := block(dev, 9)
	if err := dev.Write(3, buf); err != nil {
		t.Fatal(err)
	}
	before := clk.Now()
	got, err := dev.Peek(3)
	if err != nil {
		t.Fatal(err)
	}
	if clk.Now() != before {
		t.Fatal("Peek must not advance the clock")
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("Peek returned wrong data")
	}
}

func TestResetStats(t *testing.T) {
	dev, _ := newTestDevice()
	buf := block(dev, 0)
	_ = dev.Write(0, buf)
	dev.ResetStats()
	if st := dev.Stats(); st.Writes != 0 || st.BusyTime != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
}

// Property: any sequence of single-block writes followed by reads of the same
// addresses returns the last value written.
func TestWriteReadProperty(t *testing.T) {
	dev, _ := newTestDevice()
	last := map[int64]byte{}
	f := func(addrs []uint16, fills []byte) bool {
		n := len(addrs)
		if len(fills) < n {
			n = len(fills)
		}
		for i := 0; i < n; i++ {
			addr := int64(addrs[i]) % dev.NumBlocks()
			if err := dev.Write(addr, block(dev, fills[i])); err != nil {
				return false
			}
			last[addr] = fills[i]
		}
		for addr, fill := range last {
			buf := block(dev, 0)
			if err := dev.Read(addr, buf); err != nil {
				return false
			}
			if buf[0] != fill || buf[len(buf)-1] != fill {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueFlushEmpty(t *testing.T) {
	dev, clk := newTestDevice()
	q := NewQueue(dev)
	before := clk.Now()
	if err := q.FlushSorted(); err != nil {
		t.Fatal(err)
	}
	if clk.Now() != before {
		t.Fatal("flushing an empty queue should be free")
	}
}

func TestQueueWritesLand(t *testing.T) {
	dev, _ := newTestDevice()
	q := NewQueue(dev)
	q.EnqueueWrite(50, block(dev, 5))
	q.EnqueueWrite(10, block(dev, 1))
	q.EnqueueWrite(30, block(dev, 3))
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	if err := q.FlushSorted(); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 0 {
		t.Fatal("queue should be empty after flush")
	}
	for _, tc := range []struct {
		addr int64
		fill byte
	}{{50, 5}, {10, 1}, {30, 3}} {
		buf := block(dev, 0)
		if err := dev.Read(tc.addr, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != tc.fill {
			t.Fatalf("block %d = %d, want %d", tc.addr, buf[0], tc.fill)
		}
	}
}

func TestQueueEnqueueCopies(t *testing.T) {
	dev, _ := newTestDevice()
	q := NewQueue(dev)
	buf := block(dev, 8)
	q.EnqueueWrite(7, buf)
	buf[0] = 99
	if err := q.FlushSorted(); err != nil {
		t.Fatal(err)
	}
	got := block(dev, 0)
	if err := dev.Read(7, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 8 {
		t.Fatal("queue must copy enqueued data")
	}
}

func TestQueueSortedCheaperThanFIFO(t *testing.T) {
	// Write the same scattered set of blocks via the sorted queue and via
	// direct FIFO writes; the sorted queue should pay less positioning time.
	addrs := []int64{7000, 12, 5600, 900, 3000, 44, 8100, 2000, 6500, 150}

	devA, clkA := newTestDevice()
	q := NewQueue(devA)
	for _, a := range addrs {
		q.EnqueueWrite(a, block(devA, 1))
	}
	if err := q.FlushSorted(); err != nil {
		t.Fatal(err)
	}
	sorted := clkA.Now()

	devB, clkB := newTestDevice()
	for _, a := range addrs {
		if err := devB.Write(a, block(devB, 1)); err != nil {
			t.Fatal(err)
		}
	}
	fifo := clkB.Now()
	if sorted >= fifo {
		t.Fatalf("sorted flush (%v) should beat FIFO (%v)", sorted, fifo)
	}
}

func TestQueueCoalescesContiguousRuns(t *testing.T) {
	dev, _ := newTestDevice()
	q := NewQueue(dev)
	for i := int64(0); i < 8; i++ {
		q.EnqueueWrite(100+i, block(dev, byte(i)))
	}
	if err := q.FlushSorted(); err != nil {
		t.Fatal(err)
	}
	st := dev.Stats()
	if st.Writes != 1 {
		t.Fatalf("contiguous queue should coalesce to 1 write op, got %d", st.Writes)
	}
	if st.BlocksWrit != 8 {
		t.Fatalf("BlocksWrit = %d, want 8", st.BlocksWrit)
	}
}

func TestQueueReads(t *testing.T) {
	dev, _ := newTestDevice()
	if err := dev.Write(77, block(dev, 7)); err != nil {
		t.Fatal(err)
	}
	q := NewQueue(dev)
	buf := block(dev, 0)
	q.EnqueueRead(77, buf)
	if err := q.FlushSorted(); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 7 {
		t.Fatal("queued read did not fill buffer")
	}
}

func TestImageSaveLoadRoundTrip(t *testing.T) {
	dev, _ := newTestDevice()
	for i := int64(0); i < 20; i += 3 {
		if err := dev.Write(i*100, block(dev, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := dev.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	clk2 := sim.NewClock()
	dev2, err := LoadImage(sim.SmallModel(), clk2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i += 3 {
		got := block(dev2, 0)
		if err := dev2.Read(i*100, got); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("block %d content wrong after reload", i*100)
		}
	}
	// Unwritten blocks stay zero.
	got := block(dev2, 0xff)
	dev2.Read(1, got)
	if got[0] != 0 {
		t.Fatal("unwritten block should be zero after reload")
	}
}

func TestImageRejectsGeometryMismatch(t *testing.T) {
	dev, _ := newTestDevice()
	var buf bytes.Buffer
	if err := dev.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	model := sim.RZ55Model() // different block count
	if _, err := LoadImage(model, sim.NewClock(), &buf); err == nil {
		t.Fatal("geometry mismatch should fail")
	}
}

func TestImageRejectsGarbage(t *testing.T) {
	if _, err := LoadImage(sim.SmallModel(), sim.NewClock(), bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage should fail")
	}
}

func TestFaultInjection(t *testing.T) {
	dev, _ := newTestDevice()
	boom := errors.New("media error")
	dev.SetFault(func(op string, block int64) error {
		if op == "read" && block == 7 {
			return boom
		}
		return nil
	})
	buf := block(dev, 0)
	if err := dev.Write(7, block(dev, 1)); err != nil {
		t.Fatalf("write should pass: %v", err)
	}
	if err := dev.Read(7, buf); !errors.Is(err, boom) {
		t.Fatalf("got %v, want injected fault", err)
	}
	if err := dev.Read(8, buf); err != nil {
		t.Fatalf("other blocks unaffected: %v", err)
	}
	st := dev.Stats()
	dev.SetFault(nil)
	if err := dev.Read(7, buf); err != nil {
		t.Fatalf("fault cleared: %v", err)
	}
	// A faulted access must not be counted or charged.
	if dev.Stats().Reads != st.Reads+1 {
		t.Fatal("faulted reads must not count as completed reads")
	}
}

func TestBackgroundLaneOverlapsIdleWindows(t *testing.T) {
	dev, clk := newTestDevice()
	buf := block(dev, 1)

	// A foreground write, then a gap of pure CPU time: the gap becomes idle
	// credit background work may consume.
	if err := dev.Write(0, buf); err != nil {
		t.Fatal(err)
	}
	gap := 500 * time.Millisecond
	clk.Advance(gap)
	if got := dev.IdleCredit(); got != gap {
		t.Fatalf("idle credit = %v, want %v", got, gap)
	}

	// Background accesses drain the credit before stalling the clock.
	prev := dev.SetLane(Background)
	if prev != Foreground {
		t.Fatalf("previous lane = %v, want Foreground", prev)
	}
	before := clk.Now()
	for i := int64(1); i <= 8; i++ {
		if err := dev.Write(i*100, buf); err != nil {
			t.Fatal(err)
		}
	}
	dev.SetLane(prev)
	stalled := clk.Now() - before

	st := dev.Stats()
	if st.BgTime != st.BgOverlapTime+st.BgStallTime {
		t.Errorf("BgTime %v != overlap %v + stall %v", st.BgTime, st.BgOverlapTime, st.BgStallTime)
	}
	if st.BgOverlapTime == 0 {
		t.Error("no background time overlapped the idle window")
	}
	if st.BgStallTime != stalled {
		t.Errorf("clock advanced %v during background work, stats say %v", stalled, st.BgStallTime)
	}
	if st.BgTime <= st.BgOverlapTime && stalled != 0 {
		t.Errorf("stall %v reported with BgTime %v fully overlapped", stalled, st.BgTime)
	}

	// Foreground accounting must be untouched by lane bookkeeping: a
	// foreground access after restoring the lane advances the clock fully.
	fgBefore := clk.Now()
	if err := dev.Write(5000, buf); err != nil {
		t.Fatal(err)
	}
	if clk.Now() == fgBefore {
		t.Error("foreground write after lane restore did not advance the clock")
	}
}

func TestResetIdleCreditForgetsBudget(t *testing.T) {
	dev, clk := newTestDevice()
	buf := block(dev, 2)
	if err := dev.Write(0, buf); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if dev.IdleCredit() == 0 {
		t.Fatal("expected idle credit after a gap")
	}
	dev.ResetIdleCredit()
	if got := dev.IdleCredit(); got != 0 {
		t.Fatalf("idle credit after reset = %v, want 0", got)
	}

	// With no credit, background work stalls the clock for its full cost.
	prev := dev.SetLane(Background)
	before := clk.Now()
	if err := dev.Write(100, buf); err != nil {
		t.Fatal(err)
	}
	dev.SetLane(prev)
	st := dev.Stats()
	if st.BgOverlapTime != 0 {
		t.Errorf("overlap %v after credit reset, want 0", st.BgOverlapTime)
	}
	if advanced := clk.Now() - before; advanced != st.BgStallTime {
		t.Errorf("clock advanced %v, BgStallTime %v", advanced, st.BgStallTime)
	}
}

// TestFaultInjectionMidRun is the regression test for the bug where WriteRun
// and ReadRun consulted the fault hook only for the run's first block: a
// per-block fault rule targeting a mid-run block must abort the whole run
// before any side effects.
func TestFaultInjectionMidRun(t *testing.T) {
	dev, _ := newTestDevice()
	boom := errors.New("media error")
	dev.SetFault(func(op string, block int64) error {
		if block == 12 {
			return boom
		}
		return nil
	})
	bufs := [][]byte{block(dev, 1), block(dev, 2), block(dev, 3)}
	// Run 10..12: block 12 is mid-run (not the first block).
	if err := dev.WriteRun(10, bufs); !errors.Is(err, boom) {
		t.Fatalf("WriteRun over a faulted mid-run block: got %v, want injected fault", err)
	}
	// No side effects: none of the run's blocks were stored.
	for addr := int64(10); addr <= 12; addr++ {
		got, err := dev.Peek(addr)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range got {
			if b != 0 {
				t.Fatalf("block %d partially written by an aborted run", addr)
			}
		}
	}
	if st := dev.Stats(); st.Writes != 0 || st.BlocksWrit != 0 {
		t.Fatalf("aborted run counted in stats: %+v", st)
	}
	rd := [][]byte{block(dev, 0), block(dev, 0), block(dev, 0)}
	if err := dev.ReadRun(10, rd); !errors.Is(err, boom) {
		t.Fatalf("ReadRun over a faulted mid-run block: got %v, want injected fault", err)
	}
	dev.SetFault(nil)
	if err := dev.WriteRun(10, bufs); err != nil {
		t.Fatalf("fault cleared: %v", err)
	}
}

func TestCrashAfterStopsTheDevice(t *testing.T) {
	dev, _ := newTestDevice()
	dev.CrashAfter(3, false, 1)
	if err := dev.Write(0, block(dev, 1)); err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteRun(1, [][]byte{block(dev, 2), block(dev, 3)}); err != nil {
		t.Fatal(err)
	}
	if got := dev.WriteOps(); got != 2 {
		t.Fatalf("WriteOps = %d, want 2", got)
	}
	// Third write op crashes; nothing from it is durable (non-torn mode).
	if err := dev.WriteRun(3, [][]byte{block(dev, 4), block(dev, 5)}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing write: got %v, want ErrCrashed", err)
	}
	if !dev.Crashed() {
		t.Fatal("device should report crashed")
	}
	buf := block(dev, 0)
	if err := dev.Read(0, buf); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read: got %v, want ErrCrashed", err)
	}
	if err := dev.Write(9, block(dev, 9)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: got %v, want ErrCrashed", err)
	}
	// Reboot: earlier writes intact, crashing write absent.
	dev.ClearCrash()
	if err := dev.Read(0, buf); err != nil || buf[0] != 1 {
		t.Fatalf("block 0 after reboot: err=%v fill=%d", err, buf[0])
	}
	for addr, want := range map[int64]byte{1: 2, 2: 3, 3: 0, 4: 0} {
		got, err := dev.Peek(addr)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != want {
			t.Fatalf("block %d after reboot = %d, want %d", addr, got[0], want)
		}
	}
}

// TestCrashTornWriteIsDeterministicPrefix checks torn-mode semantics: the
// crashing run persists a prefix of its blocks chosen by the crash seed, and
// the same seed always yields the same prefix.
func TestCrashTornWriteIsDeterministicPrefix(t *testing.T) {
	run := func(seed uint64) []byte {
		dev, _ := newTestDevice()
		dev.CrashAfter(1, true, seed)
		bufs := make([][]byte, 8)
		for i := range bufs {
			bufs[i] = block(dev, byte(i+1))
		}
		if err := dev.WriteRun(0, bufs); !errors.Is(err, ErrCrashed) {
			t.Fatalf("torn crash: got %v, want ErrCrashed", err)
		}
		dev.ClearCrash()
		fills := make([]byte, 8)
		for i := range fills {
			got, err := dev.Peek(int64(i))
			if err != nil {
				t.Fatal(err)
			}
			fills[i] = got[0]
		}
		return fills
	}
	seen := map[int]bool{}
	for seed := uint64(0); seed < 32; seed++ {
		a, b := run(seed), run(seed)
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: torn prefix not deterministic: %v vs %v", seed, a, b)
		}
		// Survivors must be a prefix: once a block is zero, all later ones are.
		k := 0
		for k < len(a) && a[k] == byte(k+1) {
			k++
		}
		for i := k; i < len(a); i++ {
			if a[i] != 0 {
				t.Fatalf("seed %d: non-prefix survival %v", seed, a)
			}
		}
		seen[k] = true
	}
	// Across seeds the prefix length should actually vary (including
	// possibly 0 and the full run).
	if len(seen) < 3 {
		t.Fatalf("torn prefix lengths show no variety across seeds: %v", seen)
	}
}
