package disk

import "sort"

// Request is one queued block I/O.
type Request struct {
	Block int64
	Data  []byte // nil for reads; for writes, owned by the queue once enqueued
	Read  bool
	Buf   []byte // destination for reads
}

// Queue is a C-SCAN disk request queue: FlushSorted services queued requests
// in ascending block order starting from the arm's current position, wrapping
// once — the classic elevator discipline the conventional file system's
// syncer uses when it pushes 30-second-old dirty pages to disk alongside the
// workload's random reads.
type Queue struct {
	dev  BlockDevice
	reqs []Request
}

// NewQueue returns an empty queue bound to dev.
func NewQueue(dev BlockDevice) *Queue {
	return &Queue{dev: dev}
}

// Len reports the number of pending requests.
func (q *Queue) Len() int { return len(q.reqs) }

// EnqueueWrite adds a write of data to block. The data is copied so the
// caller may reuse its buffer.
func (q *Queue) EnqueueWrite(block int64, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	q.reqs = append(q.reqs, Request{Block: block, Data: cp})
}

// EnqueueRead adds a read of block into buf.
func (q *Queue) EnqueueRead(block int64, buf []byte) {
	q.reqs = append(q.reqs, Request{Block: block, Read: true, Buf: buf})
}

// FlushSorted services all queued requests in C-SCAN order and empties the
// queue. Requests at or beyond the current arm position are serviced first in
// ascending order, then the arm sweeps back to the lowest remaining address.
// Adjacent requests are coalesced into contiguous runs so a well-sorted queue
// still benefits from sequential transfer — but, as the paper's simulation
// study [13] observes, even well-ordered scattered writes rarely exceed ~40%
// of disk bandwidth.
func (q *Queue) FlushSorted() error {
	if len(q.reqs) == 0 {
		return nil
	}
	arm := q.dev.ArmPosition()
	if arm < 0 {
		arm = 0
	}
	sort.SliceStable(q.reqs, func(i, j int) bool { return q.reqs[i].Block < q.reqs[j].Block })
	// Rotate so we start at the first request ≥ arm (C-SCAN).
	start := sort.Search(len(q.reqs), func(i int) bool { return q.reqs[i].Block >= arm })
	ordered := make([]Request, 0, len(q.reqs))
	ordered = append(ordered, q.reqs[start:]...)
	ordered = append(ordered, q.reqs[:start]...)
	q.reqs = q.reqs[:0]

	i := 0
	for i < len(ordered) {
		r := ordered[i]
		if r.Read {
			// Coalesce a contiguous run of reads.
			run := [][]byte{r.Buf}
			j := i + 1
			for j < len(ordered) && ordered[j].Read && ordered[j].Block == r.Block+int64(len(run)) {
				run = append(run, ordered[j].Buf)
				j++
			}
			var err error
			if len(run) == 1 {
				err = q.dev.Read(r.Block, r.Buf)
			} else {
				err = q.dev.ReadRun(r.Block, run)
			}
			if err != nil {
				return err
			}
			i = j
			continue
		}
		// Coalesce a contiguous run of writes.
		run := [][]byte{r.Data}
		j := i + 1
		for j < len(ordered) && !ordered[j].Read && ordered[j].Block == r.Block+int64(len(run)) {
			run = append(run, ordered[j].Data)
			j++
		}
		if err := q.dev.WriteRun(r.Block, run); err != nil {
			return err
		}
		i = j
	}
	return nil
}
