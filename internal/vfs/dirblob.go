package vfs

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// RawDirEntry is the serialized form of a directory entry, shared by both
// file system implementations.
type RawDirEntry struct {
	Ino   uint64
	IsDir bool
	Name  string
}

// EncodeDirEntries serializes a directory's entries. Layout:
//
//	count  uint32
//	repeat count times:
//	  ino     uint64
//	  isdir   uint8
//	  namelen uint16
//	  name    [namelen]byte
func EncodeDirEntries(entries []RawDirEntry) []byte {
	size := 4
	for _, e := range entries {
		size += 8 + 1 + 2 + len(e.Name)
	}
	out := make([]byte, size)
	binary.LittleEndian.PutUint32(out, uint32(len(entries)))
	off := 4
	for _, e := range entries {
		binary.LittleEndian.PutUint64(out[off:], e.Ino)
		off += 8
		if e.IsDir {
			out[off] = 1
		}
		off++
		binary.LittleEndian.PutUint16(out[off:], uint16(len(e.Name)))
		off += 2
		copy(out[off:], e.Name)
		off += len(e.Name)
	}
	return out
}

// DecodeDirEntries parses a directory blob produced by EncodeDirEntries.
func DecodeDirEntries(b []byte) ([]RawDirEntry, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("vfs: directory blob too short (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	off := 4
	entries := make([]RawDirEntry, 0, n)
	for i := 0; i < n; i++ {
		if off+11 > len(b) {
			return nil, fmt.Errorf("vfs: truncated directory entry %d", i)
		}
		var e RawDirEntry
		e.Ino = binary.LittleEndian.Uint64(b[off:])
		off += 8
		e.IsDir = b[off] == 1
		off++
		nameLen := int(binary.LittleEndian.Uint16(b[off:]))
		off += 2
		if off+nameLen > len(b) {
			return nil, fmt.Errorf("vfs: truncated directory name in entry %d", i)
		}
		e.Name = string(b[off : off+nameLen])
		off += nameLen
		entries = append(entries, e)
	}
	return entries, nil
}

// SortDirEntries orders entries by name for deterministic listings.
func SortDirEntries(entries []RawDirEntry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
}
