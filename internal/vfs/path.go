package vfs

import "strings"

// SplitPath normalizes an absolute slash-separated path into its components.
// "/" yields an empty slice. Empty components and "." are dropped; ".." is
// rejected (neither file system supports it) by returning ok=false.
func SplitPath(path string) (parts []string, ok bool) {
	if path == "" {
		return nil, false
	}
	for _, p := range strings.Split(path, "/") {
		switch p {
		case "", ".":
			continue
		case "..":
			return nil, false
		default:
			parts = append(parts, p)
		}
	}
	return parts, true
}

// SplitDirBase splits a path into its parent components and final name.
// ok is false for the root or malformed paths.
func SplitDirBase(path string) (dir []string, base string, ok bool) {
	parts, ok := SplitPath(path)
	if !ok || len(parts) == 0 {
		return nil, "", false
	}
	return parts[:len(parts)-1], parts[len(parts)-1], true
}
