package vfs

import (
	"reflect"
	"testing"
)

func TestSplitPath(t *testing.T) {
	cases := []struct {
		in   string
		want []string
		ok   bool
	}{
		{"/", nil, true},
		{"", nil, false},
		{"/a", []string{"a"}, true},
		{"/a/b/c", []string{"a", "b", "c"}, true},
		{"a/b", []string{"a", "b"}, true},
		{"//a///b/", []string{"a", "b"}, true},
		{"/a/./b", []string{"a", "b"}, true},
		{"/a/../b", nil, false},
		{"..", nil, false},
	}
	for _, c := range cases {
		got, ok := SplitPath(c.in)
		if ok != c.ok || !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitPath(%q) = %v,%v want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestSplitDirBase(t *testing.T) {
	dir, base, ok := SplitDirBase("/a/b/c")
	if !ok || base != "c" || !reflect.DeepEqual(dir, []string{"a", "b"}) {
		t.Fatalf("SplitDirBase(/a/b/c) = %v,%q,%v", dir, base, ok)
	}
	if _, _, ok := SplitDirBase("/"); ok {
		t.Fatal("root has no base name")
	}
	dir, base, ok = SplitDirBase("/top")
	if !ok || base != "top" || len(dir) != 0 {
		t.Fatalf("SplitDirBase(/top) = %v,%q,%v", dir, base, ok)
	}
}
