// Package vfs defines the file-system-neutral interfaces the rest of the
// reproduction is written against. The user-level transaction system
// (internal/libtp), the access methods, and the workloads all operate on
// vfs.FileSystem/vfs.File, so the same code runs unchanged on the
// log-structured file system (internal/lfs) and the read-optimized baseline
// (internal/ffs) — exactly the comparison §5 of the paper makes.
package vfs

import (
	"errors"

	"repro/internal/buffer"
)

// FileID identifies a file (an inode number) within a file system.
type FileID = buffer.FileID

// Errors shared by file system implementations.
var (
	ErrNotExist   = errors.New("vfs: file does not exist")
	ErrExist      = errors.New("vfs: file already exists")
	ErrIsDir      = errors.New("vfs: is a directory")
	ErrNotDir     = errors.New("vfs: not a directory")
	ErrNotEmpty   = errors.New("vfs: directory not empty")
	ErrNoSpace    = errors.New("vfs: no space left on device")
	ErrBadPath    = errors.New("vfs: malformed path")
	ErrFileClosed = errors.New("vfs: file is closed")
)

// FileInfo describes a file.
type FileInfo struct {
	Name         string
	ID           FileID
	Size         int64
	IsDir        bool
	TxnProtected bool // the paper's per-file transaction-protection attribute
}

// DirEntry is one directory entry.
type DirEntry struct {
	Name  string
	ID    FileID
	IsDir bool
}

// File is an open file handle.
type File interface {
	// ID returns the file's identity (inode number).
	ID() FileID
	// ReadAt reads len(p) bytes from byte offset off. Reads past EOF
	// return the available bytes and io.EOF semantics are NOT used: n may
	// be short with a nil error only at EOF.
	ReadAt(p []byte, off int64) (int, error)
	// WriteAt writes len(p) bytes at byte offset off, extending the file
	// if needed.
	WriteAt(p []byte, off int64) (int, error)
	// Size returns the current file size in bytes.
	Size() (int64, error)
	// Truncate sets the file size.
	Truncate(size int64) error
	// Sync forces the file's dirty blocks to stable storage.
	Sync() error
	// Close releases the handle.
	Close() error
}

// FileSystem is the interface both file systems implement.
type FileSystem interface {
	// Name identifies the implementation ("lfs" or "ffs").
	Name() string
	// Create creates a regular file. It fails if the path exists.
	Create(path string) (File, error)
	// Open opens an existing regular file.
	Open(path string) (File, error)
	// Remove unlinks a file or removes an empty directory.
	Remove(path string) error
	// Mkdir creates a directory.
	Mkdir(path string) error
	// ReadDir lists a directory.
	ReadDir(path string) ([]DirEntry, error)
	// Stat describes a path.
	Stat(path string) (FileInfo, error)
	// Rename moves a file to a new path.
	Rename(oldPath, newPath string) error
	// Sync flushes all dirty state to stable storage.
	Sync() error
	// BlockSize returns the file system block size.
	BlockSize() int
}
