package sim

import (
	"slices"
	"testing"
	"time"
)

// TestWaitQueueHeapProperty: after any interleaving of pushes and pops the
// waiters slice satisfies the binary-heap invariant, and pops drain in
// exactly the (now, id) order the previous sort-on-every-wake implementation
// produced.
func TestWaitQueueHeapProperty(t *testing.T) {
	rng := NewRNG(42)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		procs := make([]*Proc, n)
		for i := range procs {
			// Duplicate times on purpose: ties must break by id.
			procs[i] = &Proc{id: i, now: time.Duration(rng.Intn(8)) * time.Millisecond}
		}
		var q WaitQueue
		var reference []*Proc
		for _, p := range procs {
			q.waiters.push(p)
			reference = append(reference, p)
			checkHeap(t, &q)
			// Interleave: occasionally pop mid-build.
			if len(reference) > 1 && rng.Intn(3) == 0 {
				got := q.waiters.popMin()
				want := minProc(reference)
				if got != want {
					t.Fatalf("trial %d: pop = proc %d @%v, want proc %d @%v",
						trial, got.id, got.now, want.id, want.now)
				}
				reference = removeProc(reference, want)
				checkHeap(t, &q)
			}
		}
		for len(reference) > 0 {
			got := q.waiters.popMin()
			want := minProc(reference)
			if got != want {
				t.Fatalf("trial %d: drain pop = proc %d @%v, want proc %d @%v",
					trial, got.id, got.now, want.id, want.now)
			}
			reference = removeProc(reference, want)
			checkHeap(t, &q)
		}
		if !q.Empty() {
			t.Fatalf("trial %d: queue not empty after drain", trial)
		}
	}
}

// TestWaitQueueWakeOneOrder: WakeOne must release waiters in ascending
// (now, id) order regardless of arrival order.
func TestWaitQueueWakeOneOrder(t *testing.T) {
	clock := NewClock()
	sched := NewScheduler(clock)
	const n = 16
	var mu fakeMutex
	var q WaitQueue
	var wakeOrder []int
	for i := 0; i < n; i++ {
		i := i
		sched.Spawn("waiter", func() {
			// Arrival times deliberately collide across ids.
			clock.Advance(time.Duration((i*7)%4) * time.Millisecond)
			q.Wait(clock, &mu)
			wakeOrder = append(wakeOrder, i)
		})
	}
	sched.Spawn("waker", func() {
		clock.Advance(time.Second)
		for {
			clock.Yield()
			if !q.WakeOne(clock) {
				return
			}
		}
	})
	sched.Run()

	want := make([]int, 0, n)
	type key struct {
		now time.Duration
		id  int
	}
	keys := make([]key, n)
	for i := 0; i < n; i++ {
		keys[i] = key{time.Duration((i*7)%4) * time.Millisecond, i}
	}
	slices.SortFunc(keys, func(a, b key) int {
		if a.now != b.now {
			if a.now < b.now {
				return -1
			}
			return 1
		}
		return a.id - b.id
	})
	for _, k := range keys {
		want = append(want, k.id)
	}
	if !slices.Equal(wakeOrder, want) {
		t.Fatalf("wake order %v, want %v", wakeOrder, want)
	}
}

func checkHeap(t *testing.T, q *WaitQueue) {
	t.Helper()
	for i := 1; i < len(q.waiters); i++ {
		parent := (i - 1) / 2
		if waitsBefore(q.waiters[i], q.waiters[parent]) {
			t.Fatalf("heap violated at %d: child proc %d @%v before parent proc %d @%v",
				i, q.waiters[i].id, q.waiters[i].now, q.waiters[parent].id, q.waiters[parent].now)
		}
	}
}

func minProc(ps []*Proc) *Proc {
	best := ps[0]
	for _, p := range ps[1:] {
		if waitsBefore(p, best) {
			best = p
		}
	}
	return best
}

func removeProc(ps []*Proc, p *Proc) []*Proc {
	out := ps[:0]
	for _, q := range ps {
		if q != p {
			out = append(out, q)
		}
	}
	return out
}

// fakeMutex satisfies sync.Locker for WaitQueue tests that have no real
// critical section.
type fakeMutex struct{}

func (fakeMutex) Lock()   {}
func (fakeMutex) Unlock() {}
