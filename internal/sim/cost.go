package sim

import "time"

// CostModel captures the CPU overheads the paper's analysis depends on.
// Section 5.1 attributes the entire user-vs-kernel gap to synchronization
// cost: the DECstation had no hardware test-and-set instruction, so the
// user-level system's semaphores each cost two system calls (obtain and
// release) while the kernel implementation synchronized within a single
// system call.
type CostModel struct {
	// Syscall is the cost of one kernel crossing.
	Syscall time.Duration
	// LockOp is the in-memory cost of one lock-manager operation
	// (acquire or release), excluding any kernel crossing.
	LockOp time.Duration
	// CacheHit is the CPU cost of a buffer-cache hit.
	CacheHit time.Duration
	// RecordOp is the CPU cost of one access-method record operation
	// (B-tree search/insert, recno append) excluding I/O.
	RecordOp time.Duration
	// TxnOp is the bookkeeping cost of transaction begin/commit/abort.
	TxnOp time.Duration
	// PageCopy is the cost of moving one whole page across the user/kernel
	// boundary (copyin/copyout). The user-level architecture pays it on
	// every buffer-pool fill and every dirty-page write-back — §1's
	// "functional redundancy" of double buffering; the embedded manager
	// works in the kernel cache directly and moves only record-sized
	// operands across the boundary, which the Syscall charge covers.
	PageCopy time.Duration
	// UserSyncSyscalls is the number of kernel crossings a user-level
	// synchronization operation costs. On hardware without test-and-set
	// (the paper's DECstation) this is 2 (obtain + release semaphores via
	// syscall); with fast user-level mutual exclusion ([1] Bershad et al.)
	// it is 0.
	UserSyncSyscalls int
}

// SpriteCosts returns a cost model resembling the paper's measurement
// platform: a DECstation 5000/200 (~20 MIPS) without hardware test-and-set.
// RecordOp covers the full record-level code path (parsing, B-tree search,
// buffer management bookkeeping) — the "query processing overhead, context
// switch times, system calls other than those required for locking" that
// §5.1 says the original simulation ignored, and which compress the relative
// differences between the measured systems.
func SpriteCosts() CostModel {
	return CostModel{
		Syscall:          40 * time.Microsecond,
		LockOp:           10 * time.Microsecond,
		CacheHit:         50 * time.Microsecond,
		RecordOp:         2 * time.Millisecond,
		TxnOp:            500 * time.Microsecond,
		PageCopy:         300 * time.Microsecond, // 4 KB at ~13 MB/s kernel-user bcopy
		UserSyncSyscalls: 2,
	}
}

// FastSyncCosts returns the same platform with fast user-level
// synchronization (the ablation discussed at the end of §5.1).
func FastSyncCosts() CostModel {
	c := SpriteCosts()
	c.UserSyncSyscalls = 0
	return c
}

// UserSync returns the cost of one user-level synchronization operation.
func (c CostModel) UserSync() time.Duration {
	return time.Duration(c.UserSyncSyscalls)*c.Syscall + c.LockOp
}

// KernelSync returns the cost of one kernel-level synchronization operation:
// the lock work rides on a system call the application makes anyway, so only
// the lock operation itself is charged beyond that single crossing.
func (c CostModel) KernelSync() time.Duration {
	return c.LockOp
}
