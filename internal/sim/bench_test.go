package sim

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkDispatchYield times the scheduler's core context-switch path: N
// procs advancing in lockstep, each Yield preempting to the next-earliest
// proc via the runnable heap and the direct proc-to-proc handoff. ns/op is
// the wall-clock cost of one dispatch.
func BenchmarkDispatchYield(b *testing.B) {
	for _, n := range []int{2, 16, 64, 256} {
		b.Run(fmt.Sprintf("procs%d", n), func(b *testing.B) {
			clock := NewClock()
			sched := NewScheduler(clock)
			per := b.N/n + 1
			for i := 0; i < n; i++ {
				sched.Spawn("p", func() {
					for j := 0; j < per; j++ {
						clock.Advance(time.Microsecond)
						clock.Yield()
					}
				})
			}
			b.ReportAllocs()
			b.ResetTimer()
			sched.Run()
		})
	}
}

// BenchmarkWakeStorm times WaitQueue under the group-commit pattern: a wave
// of waiters parks, a waker broadcasts, everyone requeues. Exercises heap
// push/pop and the blocked→runnable transition en masse.
func BenchmarkWakeStorm(b *testing.B) {
	const n = 64
	clock := NewClock()
	sched := NewScheduler(clock)
	var mu fakeMutex
	var q WaitQueue
	rounds := b.N/n + 1
	for i := 0; i < n; i++ {
		sched.Spawn("waiter", func() {
			for r := 0; r < rounds; r++ {
				clock.Advance(time.Microsecond)
				q.Wait(clock, &mu)
			}
		})
	}
	sched.Spawn("waker", func() {
		for r := 0; r < rounds; r++ {
			clock.Advance(time.Millisecond)
			q.Broadcast(clock)
			clock.Yield()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	sched.Run()
}

// TestDispatchSteadyStateAllocs pins the scheduler's marginal dispatch cost
// at zero allocations: two runs differing only in yield count must allocate
// (within noise) the same total, because the runnable heap reuses its
// backing array and the park/handoff path is channel-only.
func TestDispatchSteadyStateAllocs(t *testing.T) {
	run := func(yields int) func() {
		return func() {
			clock := NewClock()
			sched := NewScheduler(clock)
			for i := 0; i < 4; i++ {
				sched.Spawn("p", func() {
					for j := 0; j < yields; j++ {
						clock.Advance(time.Microsecond)
						clock.Yield()
					}
				})
			}
			sched.Run()
		}
	}
	base := testing.AllocsPerRun(5, run(50))
	big := testing.AllocsPerRun(5, run(1050))
	// 4 procs × 1000 extra yields = 4000 extra dispatches per run. Allow a
	// little slack for runtime-internal noise (goroutine bookkeeping).
	if extra := big - base; extra > 8 {
		t.Fatalf("4000 extra dispatches allocated %.1f extra allocs/run, want ~0 (base %.1f, big %.1f)",
			extra, base, big)
	}
}
