package sim

import (
	"math"
	"time"
)

// DiskModel computes service times for a simulated disk. The geometry is a
// simplified single-surface model: the block address space is divided into
// cylinders of CylinderBlocks blocks each, seeks cost a fixed settle time plus
// a term proportional to the square root of the cylinder distance (the usual
// first-order approximation of arm acceleration), every discontiguous access
// pays an average rotational delay, and data transfers at a fixed media rate.
//
// The defaults resemble the DEC RZ55 used in the paper: 300 MB, average seek
// about 16 ms, 3600 RPM spindle (8.33 ms per revolution), and roughly
// 1.25 MB/s of media bandwidth.
type DiskModel struct {
	// BlockSize is the size of one block in bytes.
	BlockSize int
	// NumBlocks is the total number of blocks on the device.
	NumBlocks int64
	// CylinderBlocks is the number of blocks per cylinder.
	CylinderBlocks int64
	// SeekSettle is the fixed cost of any seek, however short.
	SeekSettle time.Duration
	// SeekFactor scales with the square root of the cylinder distance.
	SeekFactor time.Duration
	// RotationTime is the time of one full revolution; the average
	// rotational delay for a discontiguous access is half of it.
	RotationTime time.Duration
	// TransferRate is the media transfer rate in bytes per second.
	TransferRate float64
}

// RZ55Model returns a disk model parameterised like the paper's RZ55:
// 300 MB of 4 KB blocks, ~16 ms average seek, 3600 RPM, 1.25 MB/s.
func RZ55Model() DiskModel {
	return DiskModel{
		BlockSize:      4096,
		NumBlocks:      76800, // 300 MB / 4 KB
		CylinderBlocks: 64,    // 256 KB per cylinder
		SeekSettle:     4 * time.Millisecond,
		SeekFactor:     700 * time.Microsecond, // avg seek ≈ settle + factor·√(N/3) ≈ 16 ms
		RotationTime:   16667 * time.Microsecond,
		TransferRate:   1.25e6,
	}
}

// SmallModel returns a scaled-down disk (32 MB) with the same service-time
// characteristics, convenient for fast unit tests.
func SmallModel() DiskModel {
	m := RZ55Model()
	m.NumBlocks = 8192 // 32 MB
	return m
}

// Cylinder returns the cylinder containing the given block.
func (m DiskModel) Cylinder(block int64) int64 {
	if m.CylinderBlocks <= 0 {
		return 0
	}
	return block / m.CylinderBlocks
}

// SeekTime returns the cost of moving the arm between two cylinders.
// A zero-distance seek is free: the arm is already there.
func (m DiskModel) SeekTime(fromCyl, toCyl int64) time.Duration {
	d := toCyl - fromCyl
	if d < 0 {
		d = -d
	}
	if d == 0 {
		return 0
	}
	return m.SeekSettle + time.Duration(float64(m.SeekFactor)*math.Sqrt(float64(d)))
}

// AvgRotationalDelay returns the expected rotational latency of a
// discontiguous access (half a revolution).
func (m DiskModel) AvgRotationalDelay() time.Duration {
	return m.RotationTime / 2
}

// TransferTime returns the media transfer time for n bytes.
func (m DiskModel) TransferTime(n int) time.Duration {
	if n <= 0 || m.TransferRate <= 0 {
		return 0
	}
	return time.Duration(float64(n) / m.TransferRate * float64(time.Second))
}

// AccessTime returns the full service time of an access of nblocks contiguous
// blocks starting at `block`, given that the previous access ended at block
// `prev` (or prev < 0 if the arm position is unknown, which charges an
// average seek). Accesses that continue exactly where the last one ended pay
// neither seek nor rotational delay — this is what makes the log-structured
// file system's segment writes cheap.
func (m DiskModel) AccessTime(prev, block int64, nblocks int) time.Duration {
	seek, rot, xfer := m.AccessTimeParts(prev, block, nblocks)
	return seek + rot + xfer
}

// AccessTimeParts is AccessTime with the service time broken into its seek,
// rotational-delay, and transfer components (each computed exactly as the
// summed AccessTime always has), for per-I/O trace events.
func (m DiskModel) AccessTimeParts(prev, block int64, nblocks int) (seek, rot, xfer time.Duration) {
	sequential := prev >= 0 && block == prev
	if !sequential {
		fromCyl := m.Cylinder(prev)
		if prev < 0 {
			// Unknown arm position: charge an average-distance seek.
			fromCyl = m.Cylinder(m.NumBlocks / 3)
		}
		seek = m.SeekTime(fromCyl, m.Cylinder(block))
		rot = m.AvgRotationalDelay()
	}
	xfer = m.TransferTime(nblocks * m.BlockSize)
	return seek, rot, xfer
}

// AvgSeekTime reports the model's average seek time (using the standard
// random-access expectation of one third of the full stroke).
func (m DiskModel) AvgSeekTime() time.Duration {
	cyls := m.NumBlocks / max(1, m.CylinderBlocks)
	return m.SeekTime(0, cyls/3)
}

// SizeBytes returns the capacity of the modelled device in bytes.
func (m DiskModel) SizeBytes() int64 {
	return m.NumBlocks * int64(m.BlockSize)
}
