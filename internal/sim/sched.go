package sim

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// procState tracks where a virtual process is in its lifecycle.
type procState int

const (
	procRunnable procState = iota
	procBlocked
	procDone
)

func (s procState) String() string {
	switch s {
	case procRunnable:
		return "runnable"
	case procBlocked:
		return "blocked"
	case procDone:
		return "done"
	}
	return "unknown"
}

// Proc is a cooperatively scheduled virtual process. Each proc carries its
// own virtual-time cursor: Clock.Now and Clock.Advance operate on the
// running proc's cursor, so N procs accumulate simulated time independently
// and the scheduler interleaves them by resuming whichever runnable proc is
// earliest in virtual time. Procs are backed by goroutines, but exactly one
// is ever unparked, so code running inside a proc needs no additional
// synchronization against other procs — only against real concurrent
// goroutines (the -race tests), which the existing mutexes already cover.
type Proc struct {
	id    int
	name  string
	sched *Scheduler
	body  func()

	//simlint:tokenguarded
	now time.Duration
	//simlint:tokenguarded
	state procState
	//simlint:tokenguarded
	blocked  time.Duration // cumulative virtual time spent in procBlocked
	resume   chan struct{}
	panicV   any
	didPanic bool
}

// ID returns the proc's spawn index (also its deterministic tie-break key).
func (p *Proc) ID() int { return p.id }

// Name returns the label given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the proc's virtual-time cursor.
//
//simlint:tokensafe(reads the proc's own cursor; meaningful only while the caller holds the token)
func (p *Proc) Now() time.Duration { return p.now }

// BlockedTime returns the cumulative virtual time the proc spent suspended
// on a WaitQueue.
//
//simlint:tokensafe(reads the proc's own cursor; meaningful only while the caller holds the token)
func (p *Proc) BlockedTime() time.Duration { return p.blocked }

// park hands control away from p and waits to be resumed: directly to the
// earliest runnable proc when one exists (one channel handoff, no scheduler
// round-trip), otherwise back to the scheduler goroutine for stall handling.
// Called only from the proc's own goroutine, after p's state has been set to
// procRunnable (yield, with p pushed on the runnable heap) or procBlocked
// (WaitQueue.Wait).
//
//simlint:noalloc
func (p *Proc) park() {
	s := p.sched
	if q := s.runnable.popMin(); q != nil {
		s.startRun(q)
		<-p.resume
		return
	}
	s.handback = p
	s.parked <- struct{}{}
	<-p.resume
}

// Scheduler runs a set of virtual processes to completion over a shared
// Clock, advancing each proc's private virtual-time cursor and resuming the
// runnable proc with the smallest (time, id) key — a deterministic
// discrete-event loop. While the scheduler runs, the clock routes Now and
// Advance to the current proc; when Run returns, the global clock has been
// advanced to the latest proc finish time, so MPL=1 code observes exactly
// the same final clock it did under the direct-advance regime.
//
// Runnable procs that are not currently running live on a binary min-heap
// keyed (virtual time, id), so choosing the next proc is O(log N) instead of
// an O(N) scan and a yield's preemption check is an O(1) peek. The heap
// never needs arbitrary-position updates: a proc's key is immutable while
// queued (only the running proc's cursor advances, and the running proc is
// never on the heap), state transitions happen only at the extremes — pop on
// dispatch, push on yield/wake — and a woken proc is pushed by wake itself.
//
// Control passes between goroutines as a token carried by channel handoffs:
// a proc that yields or blocks resumes its successor directly instead of
// round-tripping through the scheduler goroutine, halving the channel
// operations per context switch. The scheduler goroutine regains control
// only when no successor is runnable (stall hooks, completion) or a proc
// panics. Exactly one goroutine holds the token at any instant and every
// transfer is a channel operation, so the heap, the live counter, and the
// dispatch counter are safely unlocked: the happens-before edges of the
// handoff channels order every access.
type Scheduler struct {
	clock *Clock
	procs []*Proc
	//simlint:tokenguarded
	runnable procHeap
	//simlint:tokenguarded
	live int // procs not yet done
	//simlint:tokenguarded
	dispatches int64 // control transfers into a proc
	//simlint:tokenguarded
	handback     *Proc // proc that last returned control to the scheduler
	parked       chan struct{}
	started      bool
	dispatchHook func(*Proc)
}

// SetDispatchHook registers a function called once per dispatch, after the
// chosen proc becomes current and before it resumes. Observability only: the
// hook must not advance the clock or touch scheduler state. It runs on
// whichever goroutine performs the handoff — the scheduler's or a yielding
// proc's — but calls are serialized by the control token. Must be set before
// Run.
func (s *Scheduler) SetDispatchHook(fn func(*Proc)) {
	if s.started {
		panic("sim: SetDispatchHook after Scheduler.Run")
	}
	s.dispatchHook = fn
}

// Dispatches returns the number of times control has been transferred into a
// proc — the discrete-event count wall-clock benchmarks normalize by. It is
// deterministic: identically seeded runs dispatch identically.
//
//simlint:tokensafe(monotone counter read by the token holder between dispatches or after Run)
func (s *Scheduler) Dispatches() int64 { return s.dispatches }

// NewScheduler attaches a scheduler to the clock. Only one scheduler may be
// attached at a time; it detaches when Run returns.
func NewScheduler(clock *Clock) *Scheduler {
	s := &Scheduler{clock: clock, parked: make(chan struct{})}
	clock.attach(s)
	return s
}

// Spawn registers a virtual process. All procs must be spawned before Run;
// the spawn order fixes proc ids and therefore the deterministic tie-break.
// The proc's virtual clock starts at the global clock's current time.
//
//simlint:tokensafe(setup-time registration: runs before Run hands the token to any proc)
func (s *Scheduler) Spawn(name string, body func()) *Proc {
	if s.started {
		panic("sim: Spawn after Scheduler.Run")
	}
	p := &Proc{
		id:     len(s.procs),
		name:   name,
		sched:  s,
		body:   body,
		now:    s.clock.globalNow(),
		resume: make(chan struct{}),
	}
	s.procs = append(s.procs, p)
	s.runnable.push(p)
	s.live++
	return p
}

// Run executes all spawned procs to completion and returns. It panics if a
// proc panics (re-raising the proc's panic value) or if every live proc is
// blocked and no stall hook can make progress — a simulated deadlock the
// transaction layers failed to resolve.
//
//simlint:tokensafe(Run is the token's home: the main goroutine holds it outside dispatches and the parked channel orders every exchange)
func (s *Scheduler) Run() {
	if s.started {
		panic("sim: Scheduler.Run called twice")
	}
	s.started = true
	defer s.clock.detach(s)

	for _, p := range s.procs {
		p := p
		go func() {
			<-p.resume
			defer func() {
				if r := recover(); r != nil {
					p.panicV = r
					p.didPanic = true
				}
				p.state = procDone
				s.live--
				// Hand off to the next runnable proc directly; fall back
				// to the scheduler when none exists or on panic (the
				// scheduler re-raises immediately, before any other proc
				// runs, preserving the fail-fast contract).
				if !p.didPanic {
					if q := s.runnable.popMin(); q != nil {
						s.startRun(q)
						return
					}
				}
				s.handback = p
				s.parked <- struct{}{}
			}()
			p.body()
		}()
	}

	for {
		p := s.runnable.popMin()
		if p == nil {
			if s.live == 0 {
				break
			}
			if !s.clock.fireStallHooks() || s.runnable.empty() {
				panic("sim: scheduler stalled with no runnable proc:\n" + s.dump())
			}
			continue
		}
		s.startRun(p)
		<-s.parked
		h := s.handback
		s.handback = nil
		s.clock.setCurrent(nil)
		if h.didPanic {
			panic(h.panicV)
		}
	}

	var end time.Duration
	for _, p := range s.procs {
		if p.now > end {
			end = p.now
		}
	}
	s.clock.AdvanceTo(end)
}

// startRun transfers control into p: make it current, count the dispatch,
// and unpark its goroutine. The caller (scheduler loop, or the proc handing
// off) holds the control token.
//
//simlint:noalloc
func (s *Scheduler) startRun(p *Proc) {
	s.clock.setCurrent(p)
	s.dispatches++
	if s.dispatchHook != nil {
		s.dispatchHook(p)
	}
	p.resume <- struct{}{}
}

// liveCount returns the number of procs that have not finished.
func (s *Scheduler) liveCount() int {
	return s.live
}

// shouldPreempt reports whether another runnable proc is strictly earlier in
// the (time, id) order than the current proc — i.e. whether a yield must
// actually reschedule. The current proc is never on the heap, so this is a
// peek at the heap minimum.
//
//simlint:noalloc
func (s *Scheduler) shouldPreempt(cur *Proc) bool {
	return len(s.runnable) > 0 && waitsBefore(s.runnable[0], cur)
}

// dump renders the proc table for the stall panic message.
func (s *Scheduler) dump() string {
	var b strings.Builder
	for _, p := range s.procs {
		fmt.Fprintf(&b, "  proc %d %q: %s at %v (blocked %v)\n", p.id, p.name, p.state, p.now, p.blocked)
	}
	return b.String()
}

// procHeap is a binary min-heap of procs keyed (now, id). It backs both the
// scheduler's runnable set and WaitQueue's waiters. Keys are immutable while
// a proc is queued — only the running proc's cursor advances, and a queued
// proc is by definition not running — so the heap never needs
// arbitrary-position updates, only push and pop-min.
type procHeap []*Proc

// waitsBefore is the (now, id) heap order. Ids are unique, so the order is
// total and the minimum is unambiguous — the determinism contract's dispatch
// and wake order.
//
//simlint:noalloc
func waitsBefore(a, b *Proc) bool {
	if a.now != b.now {
		return a.now < b.now
	}
	return a.id < b.id
}

//simlint:noalloc
func (h *procHeap) empty() bool { return len(*h) == 0 }

// push inserts p, restoring the heap property upward.
//
//simlint:noalloc
func (h *procHeap) push(p *Proc) {
	//simlint:alloc(heap slice grows to the high-water proc count once, then reuses capacity)
	q := append(*h, p)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !waitsBefore(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

// popMin removes and returns the minimum proc, or nil when empty.
//
//simlint:noalloc
func (h *procHeap) popMin() *Proc {
	q := *h
	if len(q) == 0 {
		return nil
	}
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = nil // release the reference
	q = q[:last]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		min := i
		if left < last && waitsBefore(q[left], q[min]) {
			min = left
		}
		if right < last && waitsBefore(q[right], q[min]) {
			min = right
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	*h = q
	return top
}

// WaitQueue is a condition-variable analogue for virtual processes: Wait
// suspends the calling proc (releasing the caller's mutex for the duration)
// until Broadcast or WakeOne runs it again, and charges the wait to the
// proc's blocked time. A waiter resumes at max(its own time, the waker's
// time), preserving per-proc monotonicity. The zero value is ready to use.
//
// The waiters form a procHeap, so insertion order never matters: WakeOne
// pops exactly the proc the previous sort-on-every-wake implementation
// selected, in O(log n) instead of O(n log n).
//
// WaitQueue is for proc context only; callers that may also run on real
// goroutines (the -race concurrency tests) must keep a sync.Cond alongside
// and select the branch with Clock.InProc.
type WaitQueue struct {
	//simlint:tokenguarded
	waiters procHeap
}

// Empty reports whether no procs are waiting.
//
//simlint:noalloc
//simlint:tokensafe(length read under the token; documented proc-context/stall-hook API)
func (q *WaitQueue) Empty() bool { return len(q.waiters) == 0 }

// Wait suspends the current proc until woken, releasing mu while suspended
// and re-acquiring it before returning. It returns the virtual time the
// proc spent blocked. Must be called from proc context with mu held.
//
//simlint:noalloc
//simlint:tokensafe(panics outside proc context before touching any guarded state)
func (q *WaitQueue) Wait(c *Clock, mu sync.Locker) time.Duration {
	p := c.currentProc()
	if p == nil {
		panic("sim: WaitQueue.Wait outside proc context")
	}
	q.waiters.push(p)
	start := p.now
	p.state = procBlocked
	mu.Unlock()
	p.park()
	mu.Lock()
	return p.now - start
}

// wake marks p runnable at time at (or later, if p is already past it),
// accrues the blocked interval, and places p on the scheduler's runnable
// heap. Callers must have dequeued p from their wait queue first: each block
// is matched by exactly one wake, so p cannot already be on the heap.
//
//simlint:noalloc
func (p *Proc) wake(at time.Duration) {
	if at > p.now {
		p.blocked += at - p.now
		p.now = at
	}
	p.state = procRunnable
	p.sched.runnable.push(p)
}

// Broadcast wakes every waiter at the waker's current time. Safe to call
// from proc context or from the scheduler's stall hooks.
//
//simlint:noalloc
//simlint:tokensafe(documented proc-context/stall-hook API; the caller holds the token)
func (q *WaitQueue) Broadcast(c *Clock) {
	if len(q.waiters) == 0 {
		return
	}
	at := c.Now()
	for i, p := range q.waiters {
		p.wake(at)
		q.waiters[i] = nil
	}
	q.waiters = q.waiters[:0]
}

// WakeOne wakes the earliest waiter by (time, id) at the waker's current
// time and reports whether a waiter was woken.
//
//simlint:noalloc
//simlint:tokensafe(documented proc-context/stall-hook API; the caller holds the token)
func (q *WaitQueue) WakeOne(c *Clock) bool {
	if len(q.waiters) == 0 {
		return false
	}
	q.waiters.popMin().wake(c.Now())
	return true
}
