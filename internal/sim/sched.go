package sim

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// procState tracks where a virtual process is in its lifecycle.
type procState int

const (
	procRunnable procState = iota
	procBlocked
	procDone
)

func (s procState) String() string {
	switch s {
	case procRunnable:
		return "runnable"
	case procBlocked:
		return "blocked"
	case procDone:
		return "done"
	}
	return "unknown"
}

// Proc is a cooperatively scheduled virtual process. Each proc carries its
// own virtual-time cursor: Clock.Now and Clock.Advance operate on the
// running proc's cursor, so N procs accumulate simulated time independently
// and the scheduler interleaves them by resuming whichever runnable proc is
// earliest in virtual time. Procs are backed by goroutines, but exactly one
// is ever unparked, so code running inside a proc needs no additional
// synchronization against other procs — only against real concurrent
// goroutines (the -race tests), which the existing mutexes already cover.
type Proc struct {
	id    int
	name  string
	sched *Scheduler
	body  func()

	now      time.Duration
	state    procState
	blocked  time.Duration // cumulative virtual time spent in procBlocked
	resume   chan struct{}
	panicV   any
	didPanic bool
}

// ID returns the proc's spawn index (also its deterministic tie-break key).
func (p *Proc) ID() int { return p.id }

// Name returns the label given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the proc's virtual-time cursor.
func (p *Proc) Now() time.Duration { return p.now }

// BlockedTime returns the cumulative virtual time the proc spent suspended
// on a WaitQueue.
func (p *Proc) BlockedTime() time.Duration { return p.blocked }

// park hands control back to the scheduler and waits to be resumed. Called
// only from the proc's own goroutine.
func (p *Proc) park() {
	p.sched.parked <- struct{}{}
	<-p.resume
}

// Scheduler runs a set of virtual processes to completion over a shared
// Clock, advancing each proc's private virtual-time cursor and resuming the
// runnable proc with the smallest (time, id) key — a deterministic
// discrete-event loop. While the scheduler runs, the clock routes Now and
// Advance to the current proc; when Run returns, the global clock has been
// advanced to the latest proc finish time, so MPL=1 code observes exactly
// the same final clock it did under the direct-advance regime.
type Scheduler struct {
	clock        *Clock
	procs        []*Proc
	parked       chan struct{}
	started      bool
	dispatchHook func(*Proc)
}

// SetDispatchHook registers a function called once per dispatch, after the
// chosen proc becomes current and before it resumes. Observability only: the
// hook must not advance the clock or touch scheduler state. Must be set
// before Run.
func (s *Scheduler) SetDispatchHook(fn func(*Proc)) {
	if s.started {
		panic("sim: SetDispatchHook after Scheduler.Run")
	}
	s.dispatchHook = fn
}

// NewScheduler attaches a scheduler to the clock. Only one scheduler may be
// attached at a time; it detaches when Run returns.
func NewScheduler(clock *Clock) *Scheduler {
	s := &Scheduler{clock: clock, parked: make(chan struct{})}
	clock.attach(s)
	return s
}

// Spawn registers a virtual process. All procs must be spawned before Run;
// the spawn order fixes proc ids and therefore the deterministic tie-break.
// The proc's virtual clock starts at the global clock's current time.
func (s *Scheduler) Spawn(name string, body func()) *Proc {
	if s.started {
		panic("sim: Spawn after Scheduler.Run")
	}
	p := &Proc{
		id:     len(s.procs),
		name:   name,
		sched:  s,
		body:   body,
		now:    s.clock.globalNow(),
		resume: make(chan struct{}),
	}
	s.procs = append(s.procs, p)
	return p
}

// Run executes all spawned procs to completion and returns. It panics if a
// proc panics (re-raising the proc's panic value) or if every live proc is
// blocked and no stall hook can make progress — a simulated deadlock the
// transaction layers failed to resolve.
func (s *Scheduler) Run() {
	if s.started {
		panic("sim: Scheduler.Run called twice")
	}
	s.started = true
	defer s.clock.detach(s)

	for _, p := range s.procs {
		p := p
		go func() {
			<-p.resume
			defer func() {
				if r := recover(); r != nil {
					p.panicV = r
					p.didPanic = true
				}
				p.state = procDone
				s.parked <- struct{}{}
			}()
			p.body()
		}()
	}

	for {
		p := s.pickRunnable()
		if p == nil {
			if s.liveCount() == 0 {
				break
			}
			if !s.clock.fireStallHooks() || s.pickRunnable() == nil {
				panic("sim: scheduler stalled with no runnable proc:\n" + s.dump())
			}
			continue
		}
		s.dispatch(p)
		if p.didPanic {
			panic(p.panicV)
		}
	}

	var end time.Duration
	for _, p := range s.procs {
		if p.now > end {
			end = p.now
		}
	}
	s.clock.AdvanceTo(end)
}

// dispatch resumes p and waits for it to park again (yield, block, or exit).
func (s *Scheduler) dispatch(p *Proc) {
	s.clock.setCurrent(p)
	if s.dispatchHook != nil {
		s.dispatchHook(p)
	}
	p.resume <- struct{}{}
	<-s.parked
	s.clock.setCurrent(nil)
}

// pickRunnable returns the runnable proc with the smallest (now, id), or nil.
func (s *Scheduler) pickRunnable() *Proc {
	var best *Proc
	for _, p := range s.procs {
		if p.state != procRunnable {
			continue
		}
		if best == nil || p.now < best.now {
			best = p
		}
	}
	return best
}

// liveCount returns the number of procs that have not finished.
func (s *Scheduler) liveCount() int {
	n := 0
	for _, p := range s.procs {
		if p.state != procDone {
			n++
		}
	}
	return n
}

// shouldPreempt reports whether another runnable proc is strictly earlier in
// the (time, id) order than the current proc — i.e. whether a yield must
// actually reschedule.
func (s *Scheduler) shouldPreempt(cur *Proc) bool {
	for _, p := range s.procs {
		if p == cur || p.state != procRunnable {
			continue
		}
		if p.now < cur.now || (p.now == cur.now && p.id < cur.id) {
			return true
		}
	}
	return false
}

// dump renders the proc table for the stall panic message.
func (s *Scheduler) dump() string {
	var b strings.Builder
	for _, p := range s.procs {
		fmt.Fprintf(&b, "  proc %d %q: %s at %v (blocked %v)\n", p.id, p.name, p.state, p.now, p.blocked)
	}
	return b.String()
}

// WaitQueue is a condition-variable analogue for virtual processes: Wait
// suspends the calling proc (releasing the caller's mutex for the duration)
// until Broadcast or WakeOne runs it again, and charges the wait to the
// proc's blocked time. A waiter resumes at max(its own time, the waker's
// time), preserving per-proc monotonicity. The zero value is ready to use.
//
// The waiters form a binary min-heap on (now, id). A blocked proc's cursor
// cannot move — only wake touches it, and wake also removes the proc from
// the queue — so the heap keys are immutable while queued and insertion
// order never matters: WakeOne pops exactly the proc the previous
// sort-on-every-wake implementation selected, in O(log n) instead of
// O(n log n).
//
// WaitQueue is for proc context only; callers that may also run on real
// goroutines (the -race concurrency tests) must keep a sync.Cond alongside
// and select the branch with Clock.InProc.
type WaitQueue struct {
	waiters []*Proc
}

// waitsBefore is the (now, id) heap order. Ids are unique, so the order is
// total and the minimum is unambiguous — the determinism contract's wake
// order.
func waitsBefore(a, b *Proc) bool {
	if a.now != b.now {
		return a.now < b.now
	}
	return a.id < b.id
}

// push inserts p, restoring the heap property upward.
func (q *WaitQueue) push(p *Proc) {
	q.waiters = append(q.waiters, p)
	i := len(q.waiters) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !waitsBefore(q.waiters[i], q.waiters[parent]) {
			break
		}
		q.waiters[i], q.waiters[parent] = q.waiters[parent], q.waiters[i]
		i = parent
	}
}

// pop removes and returns the minimum waiter, restoring the heap property
// downward. Caller guarantees the queue is non-empty.
func (q *WaitQueue) pop() *Proc {
	top := q.waiters[0]
	last := len(q.waiters) - 1
	q.waiters[0] = q.waiters[last]
	q.waiters[last] = nil // release the reference
	q.waiters = q.waiters[:last]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		min := i
		if left < last && waitsBefore(q.waiters[left], q.waiters[min]) {
			min = left
		}
		if right < last && waitsBefore(q.waiters[right], q.waiters[min]) {
			min = right
		}
		if min == i {
			break
		}
		q.waiters[i], q.waiters[min] = q.waiters[min], q.waiters[i]
		i = min
	}
	return top
}

// Empty reports whether no procs are waiting.
func (q *WaitQueue) Empty() bool { return len(q.waiters) == 0 }

// Wait suspends the current proc until woken, releasing mu while suspended
// and re-acquiring it before returning. It returns the virtual time the
// proc spent blocked. Must be called from proc context with mu held.
func (q *WaitQueue) Wait(c *Clock, mu sync.Locker) time.Duration {
	p := c.currentProc()
	if p == nil {
		panic("sim: WaitQueue.Wait outside proc context")
	}
	q.push(p)
	start := p.now
	p.state = procBlocked
	mu.Unlock()
	p.park()
	mu.Lock()
	return p.now - start
}

// wake marks p runnable at time at (or later, if p is already past it) and
// accrues the blocked interval.
func (p *Proc) wake(at time.Duration) {
	if at > p.now {
		p.blocked += at - p.now
		p.now = at
	}
	p.state = procRunnable
}

// Broadcast wakes every waiter at the waker's current time. Safe to call
// from proc context or from the scheduler's stall hooks.
func (q *WaitQueue) Broadcast(c *Clock) {
	if len(q.waiters) == 0 {
		return
	}
	at := c.Now()
	for i, p := range q.waiters {
		p.wake(at)
		q.waiters[i] = nil
	}
	q.waiters = q.waiters[:0]
}

// WakeOne wakes the earliest waiter by (time, id) at the waker's current
// time and reports whether a waiter was woken.
func (q *WaitQueue) WakeOne(c *Clock) bool {
	if len(q.waiters) == 0 {
		return false
	}
	q.pop().wake(c.Now())
	return true
}
