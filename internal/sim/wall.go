package sim

import "time"

// WallNow returns the current wall-clock time. It exists so the CLIs and the
// benchmark harness can measure the simulator's own speed — events per real
// second, profiled runs — without reading time.Now directly: the walltime
// analyzer forbids wall-clock access outside internal/sim, and routing the
// one legitimate use through here keeps that rule absolute. Simulation logic
// must never consult it; anything that feeds back into simulated time
// belongs on Clock.
func WallNow() time.Time { return time.Now() }
