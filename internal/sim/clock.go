// Package sim provides the simulation substrate for the reproduction of
// "Transaction Support in a Log-Structured File System" (Seltzer, ICDE 1993):
// a deterministic simulated clock, a disk service-time model parameterised to
// resemble the paper's DEC RZ55 SCSI drive, a CPU cost model for the
// operating-system overheads the paper discusses (system calls, lock
// operations, buffer-cache hits), a small deterministic random number
// generator used by the workloads, and a discrete-event scheduler of
// cooperatively scheduled virtual processes for multiprogramming runs.
//
// All elapsed-time results in the benchmark harness are measured in simulated
// time: the disk model advances the clock for every I/O, and the cost model
// advances it for every modelled CPU operation. With a multiprogramming level
// of one (the paper's configuration) time accrues on a single cursor exactly
// as in the original direct-advance design; at MPL > 1 each client runs as a
// sim.Proc with its own virtual-time cursor and the Scheduler interleaves
// them deterministically.
package sim

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a monotonically increasing simulated clock. The zero value is a
// clock at time zero, ready to use. While a Scheduler is attached and a
// virtual process is running, Now and Advance operate on that proc's private
// virtual-time cursor; otherwise they operate on the global cursor.
type Clock struct {
	mu     sync.Mutex
	now    time.Duration
	strict bool

	sched *Scheduler
	cur   *Proc
	stall []func() bool
}

// NewClock returns a clock starting at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time: the running proc's cursor in proc
// context, the global cursor otherwise.
//
//simlint:tokensafe(routes to the current proc's own cursor; callers hold the token by construction — outside proc context it falls back to the global clock under the mutex)
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur != nil {
		return c.cur.now
	}
	return c.now
}

// globalNow returns the global cursor regardless of proc context.
func (c *Clock) globalNow() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d, charged to the running proc in proc
// context. Negative durations are ignored so a buggy caller can never make
// time run backwards — except in strict mode (SetStrict), where they panic
// so scheduler bugs cannot masquerade as time standing still.
//
//simlint:tokensafe(routes to the current proc's own cursor; callers hold the token by construction — outside proc context it falls back to the global clock under the mutex)
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	if d < 0 && c.strict {
		c.mu.Unlock()
		//simlint:alloc(cold strict-mode panic diagnostic)
		panic(fmt.Sprintf("sim: negative clock advance %v", d))
	}
	if d <= 0 {
		c.mu.Unlock()
		return
	}
	if c.cur != nil {
		c.cur.now += d
	} else {
		c.now += d
	}
	c.mu.Unlock()
}

// AdvanceTo moves the clock forward to t if t is later than the current time.
//
//simlint:tokensafe(documented main-goroutine API for between-run catch-up; the scheduler is detached when it runs)
func (c *Clock) AdvanceTo(t time.Duration) {
	c.mu.Lock()
	if c.cur != nil {
		if t > c.cur.now {
			c.cur.now = t
		}
	} else if t > c.now {
		c.now = t
	}
	c.mu.Unlock()
}

// SetStrict toggles strict mode: negative Advance durations panic instead of
// being ignored. Tests enable this so a miscomputed delay fails loudly.
func (c *Clock) SetStrict(on bool) {
	c.mu.Lock()
	c.strict = on
	c.mu.Unlock()
}

// Reset rewinds the clock to zero. Intended for test setup only.
func (c *Clock) Reset() {
	c.mu.Lock()
	c.now = 0
	c.mu.Unlock()
}

// String formats the current simulated time.
func (c *Clock) String() string {
	return fmt.Sprintf("sim.Clock(%v)", c.Now())
}

// attach binds a scheduler to the clock. Exactly one may be attached.
func (c *Clock) attach(s *Scheduler) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sched != nil {
		panic("sim: clock already has a scheduler attached")
	}
	c.sched = s
}

// detach unbinds the scheduler when its Run completes.
func (c *Clock) detach(s *Scheduler) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sched == s {
		c.sched = nil
		c.cur = nil
	}
}

// setCurrent records which proc is running; nil between dispatches.
func (c *Clock) setCurrent(p *Proc) {
	c.mu.Lock()
	c.cur = p
	c.mu.Unlock()
}

// currentProc returns the running proc, or nil outside proc context.
func (c *Clock) currentProc() *Proc {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}

// InProc reports whether the caller is executing inside a virtual process.
func (c *Clock) InProc() bool { return c.currentProc() != nil }

// CurrentProcID returns the running proc's id, or -1 outside proc context.
// Observability layers use it to attribute events to virtual processes
// without holding a reference to the scheduler.
func (c *Clock) CurrentProcID() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return -1
	}
	return c.cur.id
}

// CurrentProcName returns the running proc's spawn name, or "" outside proc
// context.
func (c *Clock) CurrentProcName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return ""
	}
	return c.cur.name
}

// Yield is a cooperative scheduling point: if another runnable proc is
// earlier in virtual time, the current proc parks and the scheduler resumes
// the earlier one. Outside proc context, or when the current proc is still
// the earliest, it is a no-op — so MPL=1 code paths are unaffected. Callers
// must not hold any mutex across Yield: the parked proc cannot release it
// and every other proc needing it would wedge the real goroutines.
//
//simlint:noalloc
//simlint:tokensafe(no-op outside proc context; in proc context the caller holds the token)
func (c *Clock) Yield() {
	c.mu.Lock()
	p, s := c.cur, c.sched
	c.mu.Unlock()
	if p == nil || !s.shouldPreempt(p) {
		return
	}
	p.state = procRunnable
	s.runnable.push(p)
	p.park()
}

// OtherRunnable reports whether a runnable proc other than the current one
// exists — i.e. whether waiting for more work to batch could ever pay off.
// The runnable heap holds exactly the runnable procs that are not running,
// so this is a length check.
//
//simlint:noalloc
//simlint:tokensafe(reads the runnable heap under the token; returns false when no scheduler is attached)
func (c *Clock) OtherRunnable() bool {
	c.mu.Lock()
	s := c.sched
	c.mu.Unlock()
	return s != nil && len(s.runnable) > 0
}

// LiveProcs returns the number of unfinished procs of the attached
// scheduler, or 0 when none is attached. Transaction layers use
// LiveProcs() > 1 to gate multiprogramming-only behaviour (blocking group
// commit) so MPL=1 remains the exact degenerate case.
//
//simlint:tokensafe(reads the live counter under the token; returns 0 when no scheduler is attached)
func (c *Clock) LiveProcs() int {
	c.mu.Lock()
	s := c.sched
	c.mu.Unlock()
	if s == nil {
		return 0
	}
	return s.liveCount()
}

// OnStall registers a hook the scheduler calls when every live proc is
// blocked. A hook returns true if it made progress (woke at least one
// proc); it runs on the scheduler goroutine with no proc current, so it
// must not advance the clock — typically it flags work as due and wakes a
// waiter to perform it in proc context. This is the discrete-event
// analogue of a group-commit timeout firing.
func (c *Clock) OnStall(fn func() bool) {
	c.mu.Lock()
	c.stall = append(c.stall, fn)
	c.mu.Unlock()
}

// fireStallHooks runs the registered hooks until one reports progress.
func (c *Clock) fireStallHooks() bool {
	c.mu.Lock()
	hooks := append([]func() bool(nil), c.stall...)
	c.mu.Unlock()
	for _, fn := range hooks {
		if fn() {
			return true
		}
	}
	return false
}
