// Package sim provides the simulation substrate for the reproduction of
// "Transaction Support in a Log-Structured File System" (Seltzer, ICDE 1993):
// a deterministic simulated clock, a disk service-time model parameterised to
// resemble the paper's DEC RZ55 SCSI drive, a CPU cost model for the
// operating-system overheads the paper discusses (system calls, lock
// operations, buffer-cache hits), and a small deterministic random number
// generator used by the workloads.
//
// All elapsed-time results in the benchmark harness are measured in simulated
// time: the disk model advances the clock for every I/O, and the cost model
// advances it for every modelled CPU operation. With a multiprogramming level
// of one (the paper's configuration) the simulation is fully deterministic.
package sim

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a monotonically increasing simulated clock. The zero value is a
// clock at time zero, ready to use.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewClock returns a clock starting at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. Negative durations are ignored so a
// buggy caller can never make time run backwards.
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// AdvanceTo moves the clock forward to t if t is later than the current time.
func (c *Clock) AdvanceTo(t time.Duration) {
	c.mu.Lock()
	if t > c.now {
		c.now = t
	}
	c.mu.Unlock()
}

// Reset rewinds the clock to zero. Intended for test setup only.
func (c *Clock) Reset() {
	c.mu.Lock()
	c.now = 0
	c.mu.Unlock()
}

// String formats the current simulated time.
func (c *Clock) String() string {
	return fmt.Sprintf("sim.Clock(%v)", c.Now())
}
