package sim

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSchedulerOrdersByVirtualTime: procs interleave by virtual time, with
// the lower id winning ties.
func TestSchedulerOrdersByVirtualTime(t *testing.T) {
	clk := NewClock()
	s := NewScheduler(clk)
	var trace []string
	step := func(name string, d time.Duration) func() {
		return func() {
			for i := 0; i < 3; i++ {
				clk.Yield()
				trace = append(trace, fmt.Sprintf("%s@%v", name, clk.Now()))
				clk.Advance(d)
			}
		}
	}
	s.Spawn("slow", step("slow", 30))
	s.Spawn("fast", step("fast", 10))
	s.Run()

	want := []string{"slow@0s", "fast@0s", "fast@10ns", "fast@20ns", "slow@30ns", "slow@60ns"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace[%d] = %s, want %s (full: %v)", i, trace[i], want[i], trace)
		}
	}
	if got := clk.Now(); got != 90 {
		t.Fatalf("final clock %v, want 90ns (slowest proc's end)", got)
	}
}

// TestSchedulerSingleProcDegenerate: one proc accrues time exactly as the
// bare clock would, and yields are no-ops.
func TestSchedulerSingleProcDegenerate(t *testing.T) {
	clk := NewClock()
	clk.Advance(5 * time.Millisecond)
	s := NewScheduler(clk)
	s.Spawn("only", func() {
		for i := 0; i < 10; i++ {
			clk.Yield()
			clk.Advance(time.Millisecond)
		}
	})
	s.Run()
	if got, want := clk.Now(), 15*time.Millisecond; got != want {
		t.Fatalf("clock = %v, want %v", got, want)
	}
}

// TestWaitQueueBlockedTime: a waiter resumes at the waker's later time and
// the difference is recorded as blocked time.
func TestWaitQueueBlockedTime(t *testing.T) {
	clk := NewClock()
	s := NewScheduler(clk)
	var mu sync.Mutex
	var q WaitQueue
	ready := false
	var blocked time.Duration

	waiter := s.Spawn("waiter", func() {
		mu.Lock()
		for !ready {
			blocked += q.Wait(clk, &mu)
		}
		mu.Unlock()
	})
	s.Spawn("waker", func() {
		clk.Advance(40 * time.Millisecond)
		mu.Lock()
		ready = true
		q.Broadcast(clk)
		mu.Unlock()
	})
	s.Run()

	if blocked != 40*time.Millisecond {
		t.Fatalf("blocked = %v, want 40ms", blocked)
	}
	if waiter.BlockedTime() != 40*time.Millisecond {
		t.Fatalf("proc blocked time = %v, want 40ms", waiter.BlockedTime())
	}
	if got := clk.Now(); got != 40*time.Millisecond {
		t.Fatalf("final clock = %v", got)
	}
}

// TestStallHookResolves: when every proc is blocked, the registered hook
// runs and can wake one to make progress.
func TestStallHookResolves(t *testing.T) {
	clk := NewClock()
	var mu sync.Mutex
	var q WaitQueue
	released := false
	clk.OnStall(func() bool {
		mu.Lock()
		defer mu.Unlock()
		released = true
		return q.WakeOne(clk)
	})
	s := NewScheduler(clk)
	s.Spawn("sleeper", func() {
		mu.Lock()
		for !released {
			q.Wait(clk, &mu)
		}
		mu.Unlock()
	})
	s.Run()
	if !released {
		t.Fatal("stall hook never ran")
	}
}

// TestSchedulerStallPanics: an unresolvable stall (blocked proc, no hook)
// panics with a proc dump instead of hanging.
func TestSchedulerStallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unresolvable stall")
		}
	}()
	clk := NewClock()
	var mu sync.Mutex
	var q WaitQueue
	s := NewScheduler(clk)
	s.Spawn("stuck", func() {
		mu.Lock()
		q.Wait(clk, &mu)
		mu.Unlock()
	})
	s.Run()
}

// TestStrictNegativeAdvance: strict mode panics on negative durations; the
// default silently ignores them (the historical contract).
func TestStrictNegativeAdvance(t *testing.T) {
	clk := NewClock()
	clk.Advance(-time.Second)
	if clk.Now() != 0 {
		t.Fatalf("lenient clock moved to %v", clk.Now())
	}
	clk.SetStrict(true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on strict negative advance")
		}
	}()
	clk.Advance(-time.Second)
}

// TestSchedulerDeterminism: two identical runs produce identical traces.
func TestSchedulerDeterminism(t *testing.T) {
	run := func() []string {
		clk := NewClock()
		s := NewScheduler(clk)
		var trace []string
		for c := 0; c < 4; c++ {
			c := c
			rng := NewRNG(uint64(100 + c))
			s.Spawn(fmt.Sprintf("p%d", c), func() {
				for i := 0; i < 20; i++ {
					clk.Yield()
					trace = append(trace, fmt.Sprintf("%d@%v", c, clk.Now()))
					clk.Advance(time.Duration(rng.Intn(1000)) * time.Microsecond)
				}
			})
		}
		s.Run()
		trace = append(trace, clk.Now().String())
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestSpawnAfterRunPanics guards the fixed-proc-set invariant.
func TestSpawnAfterRunPanics(t *testing.T) {
	clk := NewClock()
	s := NewScheduler(clk)
	s.Spawn("a", func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Spawn after Run")
		}
	}()
	s.Spawn("b", func() {})
}

// TestProcPanicPropagates: a panic inside a proc surfaces from Run.
func TestProcPanicPropagates(t *testing.T) {
	clk := NewClock()
	s := NewScheduler(clk)
	s.Spawn("boom", func() { panic("kaboom") })
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", r)
		}
	}()
	s.Run()
}
