package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if got := c.Now(); got != 0 {
		t.Fatalf("new clock Now() = %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(5 * time.Millisecond)
	c.Advance(7 * time.Millisecond)
	if got, want := c.Now(), 12*time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestClockIgnoresNegativeAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(time.Second)
	c.Advance(-time.Hour)
	if got, want := c.Now(), time.Second; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.AdvanceTo(3 * time.Second)
	c.AdvanceTo(time.Second) // earlier than now: no-op
	if got, want := c.Now(), 3*time.Second; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.Advance(time.Minute)
	c.Reset()
	if got := c.Now(); got != 0 {
		t.Fatalf("after Reset Now() = %v, want 0", got)
	}
}

func TestClockMonotonicProperty(t *testing.T) {
	c := NewClock()
	f := func(steps []int16) bool {
		prev := c.Now()
		for _, s := range steps {
			c.Advance(time.Duration(s) * time.Microsecond)
			now := c.Now()
			if now < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRZ55ModelGeometry(t *testing.T) {
	m := RZ55Model()
	if got, want := m.SizeBytes(), int64(300*1024*1024); got != want {
		t.Fatalf("SizeBytes = %d, want %d", got, want)
	}
	// Average seek should be in the neighbourhood the RZ55 datasheet quotes.
	avg := m.AvgSeekTime()
	if avg < 10*time.Millisecond || avg > 30*time.Millisecond {
		t.Fatalf("AvgSeekTime = %v, want within [10ms, 30ms]", avg)
	}
}

func TestSeekTimeZeroDistance(t *testing.T) {
	m := RZ55Model()
	if got := m.SeekTime(100, 100); got != 0 {
		t.Fatalf("zero-distance seek = %v, want 0", got)
	}
}

func TestSeekTimeSymmetricAndMonotone(t *testing.T) {
	m := RZ55Model()
	if m.SeekTime(0, 50) != m.SeekTime(50, 0) {
		t.Fatal("seek time should be symmetric in direction")
	}
	if m.SeekTime(0, 10) >= m.SeekTime(0, 1000) {
		t.Fatal("longer seeks should cost more")
	}
}

func TestSequentialAccessIsCheap(t *testing.T) {
	m := RZ55Model()
	// A sequential continuation pays transfer time only.
	seq := m.AccessTime(1000, 1000, 1)
	if got, want := seq, m.TransferTime(m.BlockSize); got != want {
		t.Fatalf("sequential access = %v, want transfer-only %v", got, want)
	}
	// A random access pays seek + rotation + transfer and must be much slower.
	rnd := m.AccessTime(0, 50000, 1)
	if rnd < 5*seq {
		t.Fatalf("random access %v should be far slower than sequential %v", rnd, seq)
	}
}

func TestAccessTimeUnknownArmPosition(t *testing.T) {
	m := RZ55Model()
	got := m.AccessTime(-1, 0, 1)
	if got <= m.TransferTime(m.BlockSize) {
		t.Fatalf("access with unknown arm position should include seek+rotation, got %v", got)
	}
}

func TestTransferTimeScalesLinearly(t *testing.T) {
	m := RZ55Model()
	one := m.TransferTime(m.BlockSize)
	ten := m.TransferTime(10 * m.BlockSize)
	if ten < 9*one || ten > 11*one {
		t.Fatalf("transfer of 10 blocks = %v, want ≈ 10 × %v", ten, one)
	}
}

func TestTransferTimeDegenerate(t *testing.T) {
	m := RZ55Model()
	if m.TransferTime(0) != 0 || m.TransferTime(-5) != 0 {
		t.Fatal("degenerate transfer sizes should cost nothing")
	}
}

// TestSegmentWriteAmortization checks the core premise of the paper: writing
// many blocks in one segment-sized sequential unit approaches media bandwidth,
// while writing the same blocks randomly is dominated by positioning time.
func TestSegmentWriteAmortization(t *testing.T) {
	m := RZ55Model()
	const blocks = 128 // a 512 KB segment
	segTime := m.AccessTime(-1, 1000, blocks)
	var randomTime time.Duration
	pos := int64(-1)
	for i := 0; i < blocks; i++ {
		target := int64(i * 600) // scattered
		randomTime += m.AccessTime(pos, target, 1)
		pos = target + 1
	}
	if randomTime < 4*segTime {
		t.Fatalf("random writes (%v) should be ≥4× slower than one segment write (%v)", randomTime, segTime)
	}
	// And the segment write should achieve a large fraction of media bandwidth.
	media := m.TransferTime(blocks * m.BlockSize)
	util := float64(media) / float64(segTime)
	if util < 0.85 {
		t.Fatalf("segment write utilization = %.2f, want > 0.85", util)
	}
}

func TestCostModelSyncGap(t *testing.T) {
	c := SpriteCosts()
	// Without test-and-set the user-level sync must cost more than kernel sync.
	if c.UserSync() <= c.KernelSync() {
		t.Fatalf("UserSync %v should exceed KernelSync %v on Sprite costs", c.UserSync(), c.KernelSync())
	}
	f := FastSyncCosts()
	if f.UserSync() != f.KernelSync() {
		t.Fatalf("with fast user sync the gap should close: user %v kernel %v", f.UserSync(), f.KernelSync())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce same sequence")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	f := func(n uint8) bool {
		bound := int(n%100) + 1
		v := r.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation at value %d", v)
		}
		seen[v] = true
	}
}

func TestRNGRoughUniformity(t *testing.T) {
	r := NewRNG(2026)
	buckets := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, b := range buckets {
		if b < n/10-n/50 || b > n/10+n/50 {
			t.Fatalf("bucket %d count %d deviates too far from %d", i, b, n/10)
		}
	}
}
