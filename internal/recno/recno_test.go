package recno

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/pagestore"
)

func newFile(t *testing.T, recSize int) *File {
	t.Helper()
	f, err := Create(pagestore.NewMemStore(512), recSize)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func rec(size int, seed byte) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(i) + seed
	}
	return b
}

func TestAppendGet(t *testing.T) {
	f := newFile(t, 50)
	n, err := f.Append(rec(50, 1))
	if err != nil || n != 0 {
		t.Fatalf("Append = %d, %v", n, err)
	}
	got, err := f.Get(0)
	if err != nil || !bytes.Equal(got, rec(50, 1)) {
		t.Fatalf("Get = %v, %v", got, err)
	}
}

func TestAppendAcrossPages(t *testing.T) {
	f := newFile(t, 100) // 5 records per 512-byte page
	const n = 37
	for i := 0; i < n; i++ {
		if _, err := f.Append(rec(100, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if f.Count() != n {
		t.Fatalf("Count = %d", f.Count())
	}
	for i := 0; i < n; i++ {
		got, err := f.Get(int64(i))
		if err != nil || !bytes.Equal(got, rec(100, byte(i))) {
			t.Fatalf("Get(%d) mismatch: %v", i, err)
		}
	}
}

func TestSet(t *testing.T) {
	f := newFile(t, 20)
	for i := 0; i < 10; i++ {
		f.Append(rec(20, byte(i)))
	}
	if err := f.Set(5, rec(20, 99)); err != nil {
		t.Fatal(err)
	}
	got, _ := f.Get(5)
	if !bytes.Equal(got, rec(20, 99)) {
		t.Fatal("Set did not take")
	}
	// Neighbours untouched.
	got, _ = f.Get(4)
	if !bytes.Equal(got, rec(20, 4)) {
		t.Fatal("Set corrupted neighbour")
	}
}

func TestOutOfRange(t *testing.T) {
	f := newFile(t, 20)
	f.Append(rec(20, 0))
	if _, err := f.Get(1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("got %v", err)
	}
	if _, err := f.Get(-1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("got %v", err)
	}
	if err := f.Set(7, rec(20, 0)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("got %v", err)
	}
}

func TestBadSize(t *testing.T) {
	f := newFile(t, 20)
	if _, err := f.Append(rec(19, 0)); !errors.Is(err, ErrBadSize) {
		t.Fatalf("got %v", err)
	}
}

func TestScan(t *testing.T) {
	f := newFile(t, 64)
	const n = 25
	for i := 0; i < n; i++ {
		f.Append(rec(64, byte(i)))
	}
	var seen []int64
	err := f.Scan(func(n int64, r []byte) bool {
		if r[0] != byte(n) {
			t.Fatalf("record %d has wrong content", n)
		}
		seen = append(seen, n)
		return true
	})
	if err != nil || len(seen) != n {
		t.Fatalf("scan saw %d, %v", len(seen), err)
	}
	// Early stop.
	count := 0
	f.Scan(func(int64, []byte) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop at %d", count)
	}
}

func TestPersistence(t *testing.T) {
	st := pagestore.NewMemStore(512)
	f, _ := Create(st, 40)
	for i := 0; i < 30; i++ {
		f.Append(rec(40, byte(i)))
	}
	f2, err := Open(st)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Count() != 30 || f2.RecordSize() != 40 {
		t.Fatalf("reopened: count=%d recsize=%d", f2.Count(), f2.RecordSize())
	}
	got, _ := f2.Get(17)
	if !bytes.Equal(got, rec(40, 17)) {
		t.Fatal("reopened content wrong")
	}
}

func TestCreateValidation(t *testing.T) {
	if _, err := Create(pagestore.NewMemStore(512), 0); err == nil {
		t.Fatal("zero record size should fail")
	}
	if _, err := Create(pagestore.NewMemStore(512), 513); err == nil {
		t.Fatal("record larger than page should fail")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	st := pagestore.NewMemStore(512)
	st.AllocPage()
	if _, err := Open(st); err == nil {
		t.Fatal("garbage should not open")
	}
}

// Property: append/set/get behaves like a slice of records.
func TestShadowProperty(t *testing.T) {
	f := newFile(t, 8)
	var shadow [][]byte
	prop := func(ops []struct {
		Set bool
		Idx uint8
		Val uint64
	}) bool {
		for _, op := range ops {
			r := make([]byte, 8)
			binary.LittleEndian.PutUint64(r, op.Val)
			if op.Set && len(shadow) > 0 {
				idx := int64(op.Idx) % int64(len(shadow))
				if err := f.Set(idx, r); err != nil {
					return false
				}
				shadow[idx] = r
			} else {
				if _, err := f.Append(r); err != nil {
					return false
				}
				shadow = append(shadow, r)
			}
		}
		if f.Count() != int64(len(shadow)) {
			return false
		}
		for i, want := range shadow {
			got, err := f.Get(int64(i))
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
