// Package recno implements a fixed-length record file accessed by record
// number, the db(3) "recno"-style access method the paper's TPC-B history
// relation uses ("records are accessible sequentially or by record number",
// §5.1). Records never span pages, so one record update touches exactly one
// page — the natural unit for page-level locking.
package recno

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/pagestore"
)

// Errors.
var (
	ErrOutOfRange = errors.New("recno: record number out of range")
	ErrCorrupt    = errors.New("recno: corrupt meta page")
	ErrBadSize    = errors.New("recno: record size mismatch")
)

const metaMagic = 0x52454331 // "REC1"

// File is a fixed-length record file.
type File struct {
	st       pagestore.Store
	pageSize int
	recSize  int
	count    int64
}

func (f *File) perPage() int64 { return int64(f.pageSize / f.recSize) }

func (f *File) writeMeta() error {
	b := make([]byte, f.pageSize)
	le := binary.LittleEndian
	le.PutUint32(b[0:], metaMagic)
	le.PutUint32(b[4:], uint32(f.recSize))
	le.PutUint64(b[8:], uint64(f.count))
	return f.st.WritePage(0, b)
}

// Create initializes a new record file with the given record size.
func Create(st pagestore.Store, recSize int) (*File, error) {
	if recSize <= 0 || recSize > st.PageSize() {
		return nil, fmt.Errorf("recno: invalid record size %d", recSize)
	}
	if n, err := st.NumPages(); err != nil {
		return nil, err
	} else if n != 0 {
		return nil, fmt.Errorf("recno: store not empty (%d pages)", n)
	}
	if _, err := st.AllocPage(); err != nil {
		return nil, err
	}
	f := &File{st: st, pageSize: st.PageSize(), recSize: recSize}
	return f, f.writeMeta()
}

// Open loads an existing record file.
func Open(st pagestore.Store) (*File, error) {
	f := &File{st: st, pageSize: st.PageSize()}
	b := make([]byte, f.pageSize)
	if err := st.ReadPage(0, b); err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	if le.Uint32(b[0:]) != metaMagic {
		return nil, ErrCorrupt
	}
	f.recSize = int(le.Uint32(b[4:]))
	f.count = int64(le.Uint64(b[8:]))
	if f.recSize <= 0 || f.recSize > f.pageSize {
		return nil, ErrCorrupt
	}
	return f, nil
}

// Count returns the number of records.
func (f *File) Count() int64 { return f.count }

// RecordSize returns the fixed record size.
func (f *File) RecordSize() int { return f.recSize }

// locate maps a record number to (page, byte offset).
func (f *File) locate(n int64) (int64, int) {
	return 1 + n/f.perPage(), int(n % f.perPage() * int64(f.recSize))
}

// Get reads record n.
func (f *File) Get(n int64) ([]byte, error) {
	if n < 0 || n >= f.count {
		return nil, fmt.Errorf("%w: %d of %d", ErrOutOfRange, n, f.count)
	}
	page, off := f.locate(n)
	b := make([]byte, f.pageSize)
	if err := f.st.ReadPage(page, b); err != nil {
		return nil, err
	}
	out := make([]byte, f.recSize)
	copy(out, b[off:off+f.recSize])
	return out, nil
}

// Set overwrites record n.
func (f *File) Set(n int64, rec []byte) error {
	if len(rec) != f.recSize {
		return ErrBadSize
	}
	if n < 0 || n >= f.count {
		return fmt.Errorf("%w: %d of %d", ErrOutOfRange, n, f.count)
	}
	page, off := f.locate(n)
	b := make([]byte, f.pageSize)
	if err := f.st.ReadPage(page, b); err != nil {
		return err
	}
	copy(b[off:], rec)
	return f.st.WritePage(page, b)
}

// Append adds a record at the end and returns its record number. Appends are
// sequential: the history file grows page by page, exactly the pattern a
// log-structured file system turns into pure sequential I/O.
func (f *File) Append(rec []byte) (int64, error) {
	if len(rec) != f.recSize {
		return 0, ErrBadSize
	}
	n := f.count
	page, off := f.locate(n)
	np, err := f.st.NumPages()
	if err != nil {
		return 0, err
	}
	for np <= page {
		if _, err := f.st.AllocPage(); err != nil {
			return 0, err
		}
		np++
	}
	b := make([]byte, f.pageSize)
	if off > 0 { // partially filled page: preserve earlier records
		if err := f.st.ReadPage(page, b); err != nil {
			return 0, err
		}
	}
	copy(b[off:], rec)
	if err := f.st.WritePage(page, b); err != nil {
		return 0, err
	}
	f.count++
	return n, f.writeMeta()
}

// Scan invokes fn for every record in sequence, stopping early if fn
// returns false.
func (f *File) Scan(fn func(n int64, rec []byte) bool) error {
	b := make([]byte, f.pageSize)
	for n := int64(0); n < f.count; {
		page, _ := f.locate(n)
		if err := f.st.ReadPage(page, b); err != nil {
			return err
		}
		for i := int64(0); i < f.perPage() && n < f.count; i++ {
			off := int(i) * f.recSize
			if !fn(n, b[off:off+f.recSize]) {
				return nil
			}
			n++
		}
	}
	return nil
}
