package simlint

import (
	"testing"

	"repro/internal/analysis"
)

func TestScope(t *testing.T) {
	cases := []struct {
		path            string
		simCore, scoped bool
	}{
		{"repro/internal/sim", true, false},
		{"sim", true, false},
		{"repro/internal/lock", false, true},
		{"repro/internal/wal", false, true},
		{"repro/internal/lfs", false, true},
		{"repro/internal/ffs", false, true},
		{"repro/internal/core", false, true},
		{"repro/internal/libtp", false, true},
		{"repro/internal/buffer", false, true},
		{"repro/internal/disk", false, true},
		{"repro/internal/tpcb", false, true},
		{"repro/internal/figures", false, true},
		{"lock", false, true},
		{"repro/internal/btree", false, true},
		{"repro/internal/workload", false, true},
		{"repro/internal/hashidx", false, true},
		{"repro/internal/recno", false, true},
		{"repro/internal/pagestore", false, true},
		{"repro/internal/vfs", false, true},
		{"repro/internal/detsort", false, false},
		{"repro/internal/analysis/mapiter", false, false},
		{"repro/cmd/tpcb", false, false},
		{"repro/cmd/simlint", false, false},
		{"repro/internal/lockstep", false, false},
	}
	for _, c := range cases {
		if got := analysis.IsSimCore(c.path); got != c.simCore {
			t.Errorf("IsSimCore(%q) = %v, want %v", c.path, got, c.simCore)
		}
		if got := analysis.IsSimScoped(c.path); got != c.scoped {
			t.Errorf("IsSimScoped(%q) = %v, want %v", c.path, got, c.scoped)
		}
	}
}

func TestSuiteScoping(t *testing.T) {
	byName := map[string]Check{}
	for _, c := range Suite() {
		byName[c.Analyzer.Name] = c
	}
	if len(byName) != 4 {
		t.Fatalf("suite has %d analyzers, want 4", len(byName))
	}
	if byName["walltime"].Applies("repro/internal/sim") {
		t.Error("walltime must not bind internal/sim")
	}
	if !byName["walltime"].Applies("repro/internal/lfs") || !byName["walltime"].Applies("repro/cmd/tpcb") {
		t.Error("walltime must bind everything outside internal/sim")
	}
	if !byName["globalrand"].Applies("repro/internal/sim") {
		t.Error("globalrand binds every package, including internal/sim")
	}
	for _, name := range []string{"mapiter", "rawgo"} {
		if byName[name].Applies("repro/internal/sim") {
			t.Errorf("%s must not bind internal/sim (sim.Scheduler itself owns the goroutines)", name)
		}
		if !byName[name].Applies("repro/internal/lock") {
			t.Errorf("%s must bind the simulation packages", name)
		}
		if !byName[name].Applies("repro/internal/btree") {
			t.Errorf("%s must bind btree (its pages are decoded inside the simulation)", name)
		}
		if byName[name].Applies("repro/internal/detsort") {
			t.Errorf("%s must not bind non-simulation packages", name)
		}
	}
}
