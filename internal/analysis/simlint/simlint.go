// Package simlint assembles the determinism-invariant analyzer suite and
// its package-scoping policy. cmd/simlint is the thin driver around it.
//
// The per-package rules (see DESIGN.md, "Determinism invariants"):
//
//	walltime   — no wall-clock time outside internal/sim
//	globalrand — no global math/rand source anywhere
//	mapiter    — no order-sensitive map iteration in simulation packages
//	rawgo      — no raw goroutines in simulation packages
//
// The whole-program rules run on the shared call graph (DESIGN.md §7):
//
//	noalloc  — no heap allocation reachable from //simlint:noalloc roots
//	tokenctx — no non-proc-context access to //simlint:tokenguarded state
package simlint

import (
	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/globalrand"
	"repro/internal/analysis/mapiter"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/rawgo"
	"repro/internal/analysis/tokenctx"
	"repro/internal/analysis/walltime"
)

// A Check pairs an analyzer with the packages it binds.
type Check struct {
	Analyzer *analysis.Analyzer
	// Applies reports whether the analyzer runs on the package. (The
	// analyzers additionally skip _test.go files themselves, and walltime
	// re-checks the sim-core exemption internally.)
	Applies func(pkgPath string) bool
}

// Suite returns the per-package simlint checks in reporting order.
func Suite() []Check {
	everywhere := func(string) bool { return true }
	return []Check{
		{walltime.Analyzer, func(p string) bool { return !analysis.IsSimCore(p) }},
		{globalrand.Analyzer, everywhere},
		{mapiter.Analyzer, analysis.IsSimScoped},
		{rawgo.Analyzer, analysis.IsSimScoped},
	}
}

// GlobalSuite returns the whole-program checks, which run once over the
// call graph built from every loaded package rather than per package.
func GlobalSuite() []*callgraph.Analyzer {
	return []*callgraph.Analyzer{noalloc.Analyzer, tokenctx.Analyzer}
}
