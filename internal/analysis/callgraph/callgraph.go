// Package callgraph builds a whole-module static call graph over the
// packages loaded by internal/analysis — the shared fact layer the
// reachability-based simlint analyzers (noalloc, tokenctx) run on top of.
//
// Resolution is CHA-style (class hierarchy analysis) on the standard library
// only:
//
//   - direct calls (pkg.F, local f, method expressions spelled through an
//     identifier) resolve to the called *types.Func;
//   - method calls on concrete receivers resolve through go/types selections
//     to the declared method, including promoted methods of embedded fields;
//   - method calls on interface receivers resolve to every in-module named
//     type whose method set implements the interface (the class hierarchy),
//     via an explicit worklist of pending dispatch sites drained after all
//     bodies have been scanned — sound for in-module flows, deliberately
//     silent about out-of-module implementers;
//   - function literals are their own nodes, linked to the enclosing
//     function by a "contains" edge (a literal defined on a path is assumed
//     to run on that path), and calls of a literal value at its definition
//     site resolve directly.
//
// Calls through plain function-typed values (fields, parameters, locals) are
// not resolved; the analyzers treat them as leaves. The one load-bearing
// case — the virtual-process bodies handed to sim.Scheduler.Spawn and the
// stall hooks handed to sim.Clock.OnStall — is recovered structurally: any
// function literal, declared function, or method value passed to those two
// entry points is marked TokenEntry, which is what lets tokenctx tell the
// proc world from the collector world.
//
// Identity is canonical across packages: a *types.Func seen through gc
// export data (an import) and the same function seen in its source package
// map to the same node, keyed "pkgpath.Recv.Name".
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// A Func is one call-graph node: a declared function/method or a function
// literal with its body available in a loaded package.
type Func struct {
	// ID is the canonical identity: "pkgpath.Name", "pkgpath.Recv.Name" for
	// methods, or "parentID$litN" for function literals.
	ID string
	// Name is the human-readable form used in diagnostics, e.g.
	// "(*wal.Manager).Force" or "func literal in (*sim.Scheduler).Run".
	Name string
	Pkg  *analysis.Package
	File *ast.File
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Body *ast.BlockStmt

	// Calls are the resolved outgoing call edges, in source order.
	Calls []Edge
	// Contains are the function literals defined directly inside this
	// function (not inside a deeper literal).
	Contains []*Func
	// TokenEntry marks a function passed as a virtual-process body to
	// sim.Scheduler.Spawn or as a stall hook to sim.Clock.OnStall: it runs
	// holding the scheduler's control token.
	TokenEntry bool
}

// Exported reports whether the function is an exported declaration.
func (f *Func) Exported() bool { return f.Decl != nil && f.Decl.Name.IsExported() }

// An Edge is one resolved call site.
type Edge struct {
	Pos token.Pos
	// Callee is the in-module target, nil for out-of-module calls.
	Callee *Func
	// External is the out-of-module (standard library) target, nil when
	// Callee is set.
	External *types.Func
	// Iface marks an edge resolved by interface dispatch (CHA), i.e. an
	// over-approximation: the static type admits this target, the dynamic
	// type selects among them at run time.
	Iface bool
}

// A Program is the loaded module with its call graph: the fact layer global
// analyzers consume.
type Program struct {
	Fset  *token.FileSet
	Pkgs  []*analysis.Package
	Funcs map[string]*Func

	pkgByPath map[string]*analysis.Package
}

// InModule reports whether path is one of the loaded packages.
func (p *Program) InModule(path string) bool { return p.pkgByPath[path] != nil }

// FuncsSorted returns the nodes in deterministic ID order.
func (p *Program) FuncsSorted() []*Func {
	out := make([]*Func, 0, len(p.Funcs))
	for _, f := range p.Funcs {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// An Analyzer is a whole-program check over the call graph, the global
// counterpart of analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Program) []analysis.Diagnostic
}

// FuncID returns the canonical node ID for a function object, matching the
// IDs Build assigns to declarations.
func FuncID(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	id := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			id += named.Obj().Name() + "."
		}
	}
	return id + fn.Name()
}

// ifaceSite is one pending interface-dispatch call site on the resolution
// worklist.
type ifaceSite struct {
	from   *Func
	pos    token.Pos
	iface  *types.Interface
	ifaceS string // types.TypeString key for memoization
	method string
}

// builder carries Build's intermediate state.
type builder struct {
	prog  *Program
	named []*types.Named // in-module named (non-interface) types
	sites []ifaceSite    // interface dispatch worklist
	memo  map[string][]string
}

// Build constructs the call graph over the loaded packages.
func Build(pkgs []*analysis.Package) *Program {
	prog := &Program{
		Funcs:     map[string]*Func{},
		Pkgs:      pkgs,
		pkgByPath: map[string]*analysis.Package{},
	}
	if len(pkgs) > 0 {
		prog.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		prog.pkgByPath[pkg.Types.Path()] = pkg
	}
	b := &builder{prog: prog, memo: map[string][]string{}}

	// Pass 1: index declarations and the in-module class hierarchy.
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if named, ok := tn.Type().(*types.Named); ok {
					if _, isIface := named.Underlying().(*types.Interface); !isIface {
						b.named = append(b.named, named)
					}
				}
			}
		}
		for _, file := range pkg.Syntax {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				f := &Func{
					ID:   FuncID(obj),
					Name: displayName(obj),
					Pkg:  pkg, File: file, Decl: fd, Body: fd.Body,
				}
				prog.Funcs[f.ID] = f
			}
		}
	}

	// Pass 2: scan bodies — direct edges, literal nodes, dispatch worklist.
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					if obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func); ok {
						b.scanBody(prog.Funcs[FuncID(obj)])
					}
				}
			}
		}
	}

	// Drain the interface-dispatch worklist against the class hierarchy.
	for len(b.sites) > 0 {
		site := b.sites[0]
		b.sites = b.sites[1:]
		for _, id := range b.implementers(site) {
			if callee := prog.Funcs[id]; callee != nil {
				site.from.Calls = append(site.from.Calls,
					Edge{Pos: site.pos, Callee: callee, Iface: true})
			}
		}
	}
	return prog
}

// displayName renders a function object for diagnostics: pkg.F or
// (*pkg.T).M.
func displayName(fn *types.Func) string {
	pkg := fn.Pkg().Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		star := ""
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			star = "*"
		}
		if named, ok := t.(*types.Named); ok {
			if star != "" {
				return fmt.Sprintf("(*%s.%s).%s", pkg, named.Obj().Name(), fn.Name())
			}
			return fmt.Sprintf("%s.%s.%s", pkg, named.Obj().Name(), fn.Name())
		}
	}
	return pkg + "." + fn.Name()
}

// scanBody walks one function's body, collecting call edges and creating
// nodes for directly contained function literals (which are then scanned
// recursively as their own nodes).
func (b *builder) scanBody(f *Func) {
	if f == nil || f.Body == nil {
		return
	}
	b.walk(f, f.Body)
}

// walk descends n attributing calls to cur, detouring into a fresh node at
// each function literal.
func (b *builder) walk(cur *Func, n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lit := b.litNode(cur, n)
			b.walk(lit, n.Body)
			return false // the literal's body belongs to its own node
		case *ast.CallExpr:
			b.call(cur, n)
		}
		return true
	})
}

// litNode creates (or returns) the node for a literal defined directly in
// cur.
func (b *builder) litNode(cur *Func, lit *ast.FuncLit) *Func {
	for _, c := range cur.Contains {
		if c.Lit == lit {
			return c
		}
	}
	f := &Func{
		ID:   fmt.Sprintf("%s$lit%d", cur.ID, len(cur.Contains)),
		Name: "func literal in " + cur.Name,
		Pkg:  cur.Pkg, File: cur.File, Lit: lit, Body: lit.Body,
	}
	cur.Contains = append(cur.Contains, f)
	b.prog.Funcs[f.ID] = f
	return f
}

// call resolves one call expression from cur.
func (b *builder) call(cur *Func, call *ast.CallExpr) {
	info := cur.Pkg.TypesInfo
	fun := ast.Unparen(call.Fun)
	// Generic instantiation syntax wraps the real callee; unwrap it. A map or
	// slice index (m[k]()) unwraps to a *types.Var and resolves to nothing
	// below, so unconditional unwrapping is safe.
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}

	switch fn := fun.(type) {
	case *ast.FuncLit:
		lit := b.litNode(cur, fn)
		cur.Calls = append(cur.Calls, Edge{Pos: call.Lparen, Callee: lit})
	case *ast.Ident:
		if obj, ok := info.Uses[fn].(*types.Func); ok {
			b.direct(cur, call, obj)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok && sel.Kind() == types.MethodVal {
			recv := sel.Recv()
			if iface, ok := recv.Underlying().(*types.Interface); ok {
				b.sites = append(b.sites, ifaceSite{
					from: cur, pos: call.Lparen,
					iface: iface, ifaceS: types.TypeString(iface, nil),
					method: sel.Obj().Name(),
				})
				return
			}
			if obj, ok := sel.Obj().(*types.Func); ok {
				b.direct(cur, call, obj)
			}
			return
		}
		// Package-qualified call or method expression.
		if obj, ok := info.Uses[fn.Sel].(*types.Func); ok {
			b.direct(cur, call, obj)
		}
	}
}

// direct records a statically resolved edge and handles the token-entry
// registration sites.
func (b *builder) direct(cur *Func, call *ast.CallExpr, obj *types.Func) {
	id := FuncID(obj)
	if callee := b.prog.Funcs[id]; callee != nil {
		cur.Calls = append(cur.Calls, Edge{Pos: call.Lparen, Callee: callee})
	} else {
		cur.Calls = append(cur.Calls, Edge{Pos: call.Lparen, External: obj})
	}
	if isTokenRegistrar(obj) {
		b.markTokenEntries(cur, call)
	}
}

// isTokenRegistrar reports whether fn is (*sim.Scheduler).Spawn or
// (*sim.Clock).OnStall — the two entry points whose function arguments run
// holding the scheduler's control token.
func isTokenRegistrar(fn *types.Func) bool {
	if fn.Pkg() == nil || !analysis.IsSimCore(fn.Pkg().Path()) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	recv, name := named.Obj().Name(), fn.Name()
	return (recv == "Scheduler" && name == "Spawn") || (recv == "Clock" && name == "OnStall")
}

// markTokenEntries marks every function-valued argument of a registrar call:
// a literal, a declared function, or a method value.
func (b *builder) markTokenEntries(cur *Func, call *ast.CallExpr) {
	info := cur.Pkg.TypesInfo
	for _, arg := range call.Args {
		switch a := ast.Unparen(arg).(type) {
		case *ast.FuncLit:
			b.litNode(cur, a).TokenEntry = true
		case *ast.Ident:
			if obj, ok := info.Uses[a].(*types.Func); ok {
				if f := b.prog.Funcs[FuncID(obj)]; f != nil {
					f.TokenEntry = true
				}
			}
		case *ast.SelectorExpr:
			if obj, ok := info.Uses[a.Sel].(*types.Func); ok {
				if f := b.prog.Funcs[FuncID(obj)]; f != nil {
					f.TokenEntry = true
				}
			}
		}
	}
}

// implementers resolves one dispatch site to the node IDs of every in-module
// method implementing it, memoized per (interface, method).
func (b *builder) implementers(site ifaceSite) []string {
	key := site.ifaceS + "." + site.method
	if ids, ok := b.memo[key]; ok {
		return ids
	}
	var ids []string
	for _, named := range b.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, site.iface) && !types.Implements(ptr, site.iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), site.method)
		if fn, ok := obj.(*types.Func); ok {
			ids = append(ids, FuncID(fn))
		}
	}
	sort.Strings(ids)
	b.memo[key] = ids
	return ids
}

// WalkOpts configures a reachability computation.
type WalkOpts struct {
	// Contains follows enclosing-function → literal edges (a literal defined
	// on a reachable path is assumed to run on it).
	Contains bool
	// Prune, when non-nil and true for a node, keeps the node itself
	// reachable but does not expand its outgoing edges.
	Prune func(*Func) bool
	// PruneEdge, when non-nil and true for an edge, skips that edge.
	PruneEdge func(from *Func, e Edge) bool
}

// Reach computes the in-module set reachable from roots with an explicit
// worklist, returning for each reached node its predecessor (roots map to
// nil) so analyzers can render a witness path.
func (p *Program) Reach(roots []*Func, o WalkOpts) map[*Func]*Func {
	parent := map[*Func]*Func{}
	var work []*Func
	for _, r := range roots {
		if r == nil {
			continue
		}
		if _, ok := parent[r]; !ok {
			parent[r] = nil
			work = append(work, r)
		}
	}
	push := func(from, to *Func) {
		if to == nil {
			return
		}
		if _, ok := parent[to]; ok {
			return
		}
		parent[to] = from
		work = append(work, to)
	}
	for len(work) > 0 {
		f := work[0]
		work = work[1:]
		if o.Prune != nil && o.Prune(f) {
			continue
		}
		for _, e := range f.Calls {
			if o.PruneEdge != nil && o.PruneEdge(f, e) {
				continue
			}
			push(f, e.Callee)
		}
		if o.Contains {
			for _, c := range f.Contains {
				push(f, c)
			}
		}
	}
	return parent
}

// Witness renders a short root-to-node path from a Reach parent map, e.g.
// "(*wal.Manager).AppendCommit → (*wal.Manager).append".
func Witness(parent map[*Func]*Func, f *Func) string {
	var chain []string
	for n := f; n != nil; n = parent[n] {
		chain = append(chain, n.Name)
		if len(chain) >= 6 { // keep diagnostics readable on deep paths
			chain = append(chain, "…")
			break
		}
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return strings.Join(chain, " → ")
}
