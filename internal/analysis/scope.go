package analysis

import "regexp"

// Package scoping for the simlint suite. The determinism invariants do not
// bind every package equally:
//
//   - internal/sim IS the simulated time/randomness source, so the walltime
//     analyzer exempts it (it is also where a real-time escape would be
//     deliberate and reviewed);
//   - the map-iteration and raw-goroutine rules apply to the packages that
//     execute inside the simulation, where iteration order or OS scheduling
//     would leak into simulated-time results.
//
// The matchers accept both full module paths (repro/internal/sim) and bare
// final elements (sim), so analyzer golden tests can model scoped packages
// with short testdata import paths.
var (
	simCoreRE   = regexp.MustCompile(`(^|/)sim$`)
	simScopedRE = regexp.MustCompile(`(^|/)internal/(lock|wal|lfs|ffs|core|libtp|buffer|disk|tpcb|figures|crashsweep|trace|btree)(/|$)|^(lock|wal|lfs|ffs|core|libtp|buffer|disk|tpcb|figures|crashsweep|trace|btree)$`)
)

// IsSimCore reports whether pkgPath is the simulation core (internal/sim),
// the one package allowed to touch wall-clock primitives.
func IsSimCore(pkgPath string) bool { return simCoreRE.MatchString(pkgPath) }

// IsSimScoped reports whether pkgPath is one of the simulation packages the
// mapiter and rawgo analyzers bind: internal/{lock,wal,lfs,ffs,core,libtp,
// buffer,disk,tpcb,figures,crashsweep,trace,btree}.
func IsSimScoped(pkgPath string) bool { return simScopedRE.MatchString(pkgPath) }
