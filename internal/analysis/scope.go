package analysis

import (
	"regexp"
	"strings"
)

// Package scoping for the simlint suite. The determinism invariants do not
// bind every package equally:
//
//   - internal/sim IS the simulated time/randomness source, so the walltime
//     analyzer exempts it (it is also where a real-time escape would be
//     deliberate and reviewed);
//   - the map-iteration and raw-goroutine rules apply to the packages that
//     execute inside the simulation, where iteration order or OS scheduling
//     would leak into simulated-time results.
//
// simScopedPkgs is the single source of truth: both matchers are derived
// from it, and they accept both full module paths (repro/internal/sim) and
// bare final elements (sim), so analyzer golden tests can model scoped
// packages with short testdata import paths.
var simScopedPkgs = []string{
	"lock", "wal", "lfs", "ffs", "core", "libtp", "buffer", "disk",
	"tpcb", "figures", "crashsweep", "trace", "btree",
	"workload", "hashidx", "recno", "pagestore", "vfs",
}

var (
	simCoreRE   = regexp.MustCompile(`(^|/)sim$`)
	simScopedRE = scopedRE(simScopedPkgs)
)

// scopedRE builds the matcher for a package list: internal/<pkg> under any
// module prefix, or the bare package name.
func scopedRE(pkgs []string) *regexp.Regexp {
	alt := strings.Join(pkgs, "|")
	return regexp.MustCompile(`(^|/)internal/(` + alt + `)(/|$)|^(` + alt + `)$`)
}

// IsSimCore reports whether pkgPath is the simulation core (internal/sim),
// the one package allowed to touch wall-clock primitives.
func IsSimCore(pkgPath string) bool { return simCoreRE.MatchString(pkgPath) }

// IsSimScoped reports whether pkgPath is one of the simulation packages the
// mapiter and rawgo analyzers bind (simScopedPkgs).
func IsSimScoped(pkgPath string) bool { return simScopedRE.MatchString(pkgPath) }
