// Package mapiter defines a simlint analyzer that flags order-sensitive
// iteration over Go maps in the simulation packages.
//
// Go randomizes map iteration order per run. That is harmless when the loop
// body commutes (counting, summing, copying into a map keyed by the loop
// variable) but catastrophic in a deterministic simulation when the body
// lets the order escape: appending keys to a slice, selecting a min/max/
// victim, issuing calls into sim/disk/lock (whose state observes the call
// sequence), or exiting the loop early. Such loops make two runs of the same
// seed diverge — the exact failure mode the repository's determinism tests
// exist to prevent.
//
// The fix is to iterate sorted keys (detsort.Keys / detsort.KeysFunc) or,
// when the body is genuinely order-insensitive in a way the heuristic cannot
// see, to annotate the loop:
//
//	//simlint:ordered <justification>
//	for k := range m { ... }
//
// The annotation may sit on the line above the `for` or at the end of the
// same line. A justification is expected; review it like any other
// invariant-suppressing comment.
package mapiter

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags order-sensitive map iteration in simulation packages.
var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flag order-sensitive `range` over maps in simulation packages; iterate sorted keys or annotate //simlint:ordered",
	Run:  run,
}

// sensitivePkgRE matches packages whose state observes call order: the
// simulation core, the disk model, and the lock manager.
var sensitivePkgRE = regexp.MustCompile(`(^|/)(sim|disk|lock)$`)

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		suppressed := suppressedLines(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			line := pass.Fset.Position(rs.For).Line
			if suppressed[line] || suppressed[line-1] {
				return true
			}
			c := &classifier{pass: pass, rs: rs, loopVars: loopVarObjs(pass, rs)}
			c.classify()
			if len(c.reasons) > 0 {
				pass.Reportf(rs.For, "map iteration order is observable here: %s; iterate sorted keys (detsort.Keys) or annotate //simlint:ordered with a justification",
					strings.Join(c.reasons, "; "))
			}
			return true
		})
	}
	return nil, nil
}

// suppressedLines returns the lines carrying a //simlint:ordered annotation.
func suppressedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "simlint:ordered") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// loopVarObjs collects the objects of the range statement's key and value
// variables; writes keyed by them commute across iteration orders.
func loopVarObjs(pass *analysis.Pass, rs *ast.RangeStmt) map[types.Object]bool {
	objs := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if o := pass.TypesInfo.Defs[id]; o != nil {
			objs[o] = true
		} else if o := pass.TypesInfo.Uses[id]; o != nil {
			objs[o] = true
		}
	}
	return objs
}

// classifier walks one map-range body and accumulates the ways iteration
// order escapes it.
type classifier struct {
	pass     *analysis.Pass
	rs       *ast.RangeStmt
	loopVars map[types.Object]bool
	reasons  []string
}

func (c *classifier) add(reason string) {
	for _, r := range c.reasons {
		if r == reason {
			return
		}
	}
	c.reasons = append(c.reasons, reason)
}

func (c *classifier) classify() {
	var exits []ast.Node
	ast.Inspect(c.rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			c.assign(s)
		case *ast.CallExpr:
			c.call(s)
		case *ast.BranchStmt:
			if s.Tok == token.BREAK || s.Tok == token.GOTO {
				exits = append(exits, s)
			}
		case *ast.ReturnStmt:
			exits = append(exits, s)
		}
		return true
	})
	for _, ex := range exits {
		c.exit(ex)
	}
}

// exit decides whether a break/goto/return actually leaves the map range
// early (as opposed to an inner loop/switch or an enclosed function literal).
func (c *classifier) exit(ex ast.Node) {
	path := pathTo(c.rs.Body, ex)
	depth := 0
	for _, n := range path[:len(path)-1] {
		switch n.(type) {
		case *ast.FuncLit:
			return // the literal's control flow is its own
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			depth++
		}
	}
	switch s := ex.(type) {
	case *ast.ReturnStmt:
		c.add("returns out of the loop early, so which elements were visited depends on map order")
	case *ast.BranchStmt:
		if s.Tok == token.BREAK && s.Label == nil && depth > 0 {
			return // breaks an inner construct, not this loop
		}
		c.add("breaks out of the loop early")
	}
}

// assign flags writes that let iteration order escape: appends and
// last-write-wins / selection assignments to state declared outside the
// loop. Commutative accumulation (+=, |=, ...) and writes keyed by the loop
// variable pass.
func (c *classifier) assign(s *ast.AssignStmt) {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
		return // commutative accumulation
	}
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		}
		c.lhs(lhs, rhs)
	}
}

func (c *classifier) lhs(e, rhs ast.Expr) {
	switch l := ast.Unparen(e).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := c.pass.TypesInfo.Uses[l] // := definitions land in Defs and are loop-local
		if obj == nil || c.within(obj) {
			return
		}
		if isAppend(c.pass, rhs) {
			c.add(fmt.Sprintf("appends to %q, whose element order then follows the map order", l.Name))
			return
		}
		c.add(fmt.Sprintf("assigns %q declared outside the loop, so the surviving value depends on map order", l.Name))
	case *ast.IndexExpr:
		if c.usesLoopVar(l.Index) {
			return // keyed by the loop variable: commutes
		}
		if id := rootIdent(l.X); id != nil {
			if obj := c.objOf(id); obj == nil || c.within(obj) {
				return
			}
			c.add(fmt.Sprintf("writes a loop-independent key of %q each iteration (last write wins)", id.Name))
			return
		}
		c.add("writes a loop-independent indexed location each iteration (last write wins)")
	case *ast.SelectorExpr:
		if id := rootIdent(l.X); id != nil {
			if obj := c.objOf(id); obj == nil || c.within(obj) {
				return
			}
			c.add(fmt.Sprintf("assigns %s.%s declared outside the loop (last write wins)", id.Name, l.Sel.Name))
			return
		}
		c.add("assigns a field of an outer value (last write wins)")
	case *ast.StarExpr:
		c.add("writes through a pointer that outlives the iteration (last write wins)")
	}
}

// call flags calls into the order-observing subsystems (sim, disk, lock):
// their clocks, queues, and tables record the sequence of operations, so the
// iteration order becomes simulated state.
func (c *classifier) call(s *ast.CallExpr) {
	var id *ast.Ident
	switch f := ast.Unparen(s.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return
	}
	fn, ok := c.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sensitivePkgRE.MatchString(fn.Pkg().Path()) {
		c.add(fmt.Sprintf("calls %s.%s, letting the simulated subsystem observe the iteration order", fn.Pkg().Name(), fn.Name()))
	}
}

func (c *classifier) objOf(id *ast.Ident) types.Object {
	if o := c.pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return c.pass.TypesInfo.Defs[id]
}

// within reports whether obj is declared inside the range statement.
func (c *classifier) within(obj types.Object) bool {
	return obj.Pos() >= c.rs.Pos() && obj.Pos() <= c.rs.End()
}

// usesLoopVar reports whether expr mentions one of the loop variables.
func (c *classifier) usesLoopVar(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.loopVars[c.pass.TypesInfo.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// isAppend reports whether rhs is a call to the append builtin.
func isAppend(pass *analysis.Pass, rhs ast.Expr) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootIdent returns the leftmost identifier of a selector/index/star chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// pathTo returns the node chain from root down to target, inclusive.
func pathTo(root, target ast.Node) []ast.Node {
	var stack []ast.Node
	var path []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if path != nil {
			return false
		}
		stack = append(stack, n)
		if n == target {
			path = append([]ast.Node(nil), stack...)
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
	return path
}
