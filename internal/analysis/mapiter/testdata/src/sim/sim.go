// Package sim stands in for the simulation core: its state observes the
// order of incoming calls.
package sim

var trace []int

// Do records one event; the call sequence is simulated state.
func Do(x int) { trace = append(trace, x) }
