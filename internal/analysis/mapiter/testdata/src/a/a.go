// Package a seeds mapiter violations — loop bodies that let Go's randomized
// map order escape — alongside order-insensitive bodies that must pass.
package a

import (
	"sort"

	"sim"
)

func collect(m map[int]string) []int {
	var keys []int
	for k := range m { // want `appends to "keys"`
		keys = append(keys, k)
	}
	return keys
}

func victim(m map[int]string) int {
	best := -1
	for k := range m { // want `assigns "best" declared outside the loop`
		if best == -1 || k < best {
			best = k
		}
	}
	return best
}

func first(m map[int]string) (int, bool) {
	for k := range m { // want `returns out of the loop early`
		return k, true
	}
	return 0, false
}

func drainSome(m map[int]string) {
	n := 0
	for k := range m { // want `breaks out of the loop early`
		delete(m, k)
		n++
		if n == 3 {
			break
		}
	}
}

func replay(m map[int]int) {
	for k := range m { // want `calls sim\.Do`
		sim.Do(k)
	}
}

// The bodies below commute across iteration orders and must not be flagged.

func copyMap(m map[int]string) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m { // writes keyed by the loop variable commute
		out[k] = v
	}
	return out
}

func tally(m map[int]int) (n, sum int) {
	for _, v := range m { // counters and += accumulate commutatively
		n++
		sum += v
	}
	return n, sum
}

func sortedKeys(m map[int]string) []int {
	var keys []int
	//simlint:ordered fully sorted immediately below, so collection order is unobservable
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func innerBreak(m map[int][]int) int {
	n := 0
	for _, vs := range m { // the break exits the inner slice loop, not this one
		for _, v := range vs {
			if v < 0 {
				break
			}
			n++
		}
	}
	return n
}
