// Package globalrand defines a simlint analyzer that forbids the global
// math/rand source in simulation code.
//
// The top-level math/rand (and math/rand/v2) functions draw from a
// process-global source that is randomly seeded, shared across goroutines,
// and therefore different on every run — exactly the variance the paper's
// methodology (§5.1) controls away and the repository's two-run determinism
// tests pin. Randomness must come from internal/sim's SplitMix64 streams
// (sim.RNG, sim/rng.go), which give every client an independent,
// reproducible sequence derived from the benchmark seed.
//
// Explicitly seeded sources remain legal: rand.New(rand.NewSource(seed))
// and the v2 constructors (NewPCG, NewChaCha8) take their seeds from the
// caller, so determinism is the caller's visible responsibility; methods on
// a *rand.Rand value are likewise untouched. Only the package-level
// functions — which hide the unseeded global source — are flagged.
package globalrand

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// allowedCtors construct explicitly seeded sources/generators.
var allowedCtors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

// Analyzer flags top-level math/rand and math/rand/v2 functions.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc:  "forbid the global math/rand source in non-test code; use sim.RNG's seeded SplitMix64 streams",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil { // methods on *rand.Rand are caller-seeded
				return true
			}
			if allowedCtors[fn.Name()] {
				return true
			}
			pass.Reportf(id.Pos(), "rand.%s uses the global, unseeded math/rand source; use sim.RNG (seeded SplitMix64 streams) so runs stay reproducible", fn.Name())
			return true
		})
	}
	return nil, nil
}
