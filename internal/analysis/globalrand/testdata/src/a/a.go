// Package a seeds globalrand violations: the process-global, unseeded
// math/rand source.
package a

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func bad() int {
	n := rand.Intn(10)                 // want `rand\.Intn uses the global, unseeded math/rand source`
	rand.Shuffle(n, func(i, j int) {}) // want `rand\.Shuffle uses the global, unseeded math/rand source`
	return n + randv2.Int()            // want `rand\.Int uses the global, unseeded math/rand source`
}

func good() int {
	r := rand.New(rand.NewSource(42)) // explicitly seeded: determinism is visible
	p := randv2.New(randv2.NewPCG(1, 2))
	return r.Intn(10) + p.IntN(10)
}
