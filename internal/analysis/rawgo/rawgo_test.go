package rawgo_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/rawgo"
)

func TestRawgo(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), rawgo.Analyzer, "a")
}
