// Package rawgo defines a simlint analyzer that forbids raw `go` statements
// in simulation packages.
//
// Inside the simulation, concurrency must be expressed as sim.Proc virtual
// processes on sim.Scheduler, whose min-(virtual-time, id) dispatch makes
// interleavings a deterministic function of the seed. A raw goroutine hands
// ordering decisions to the Go runtime scheduler instead, so two identical
// runs can observe different lock-acquisition and disk-queue orders.
// _test.go files are exempt: tests use goroutines to exercise the real
// blocking paths of the lock manager and buffer pool.
package rawgo

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer flags go statements in simulation packages.
var Analyzer = &analysis.Analyzer{
	Name: "rawgo",
	Doc:  "forbid raw `go` statements in simulation packages; spawn sim.Procs on sim.Scheduler instead",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "raw goroutine bypasses sim.Scheduler's deterministic dispatch; express concurrency as a sim.Proc")
			}
			return true
		})
	}
	return nil, nil
}
