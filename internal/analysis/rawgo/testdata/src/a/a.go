// Package a seeds a rawgo violation: a raw goroutine in simulation code.
package a

var done = make(chan struct{})

func work() { close(done) }

func bad() {
	go work() // want `raw goroutine bypasses sim\.Scheduler`
	<-done
}
