package a

// Tests exercise real blocking paths with goroutines; _test.go is exempt.
func spawnInTest() {
	go work()
	<-done
}
