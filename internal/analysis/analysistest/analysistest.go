// Package analysistest runs an analyzer over golden source trees and checks
// its diagnostics against `// want` annotations, mirroring the subset of
// golang.org/x/tools/go/analysis/analysistest the simlint suite needs. Each
// golden package lives under testdata/src/<path>; sibling packages resolve
// against each other (so a fake "sim" package can model the simulation core)
// and everything else resolves against the real standard library via gc
// export data.
//
// An expectation is a comment on the line the diagnostic lands on:
//
//	time.Sleep(d) // want `time\.Sleep reads the wall clock`
//
// The string is a regular expression (Go quoted or backquoted); several may
// follow one `want`. Unexpected diagnostics and unmatched expectations both
// fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// TestData returns the absolute path of the calling test's testdata
// directory (the go tool runs each test in its package directory).
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads each named package from dir/src/<pkg>, applies the analyzer, and
// matches its diagnostics against the packages' `// want` annotations.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	l, err := newLoader(filepath.Join(dir, "src"))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, name := range pkgs {
		pkg, err := l.load(name)
		if err != nil {
			t.Fatalf("analysistest: loading %s: %v", name, err)
		}
		check(t, a, pkg)
	}
}

// RunProgram loads every named golden package into one type-checked set,
// builds the whole-program call graph over it, applies the global analyzer
// once, and matches its diagnostics against `// want` annotations gathered
// from all the packages. Golden trees for the call-graph analyzers model the
// real module in miniature: a sibling "sim" package stands in for the
// simulation core so token-entry registration resolves structurally.
func RunProgram(t *testing.T, dir string, a *callgraph.Analyzer, pkgs ...string) {
	t.Helper()
	l, err := newLoader(filepath.Join(dir, "src"))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var loaded []*analysis.Package
	for _, name := range pkgs {
		pkg, err := l.load(name)
		if err != nil {
			t.Fatalf("analysistest: loading %s: %v", name, err)
		}
		loaded = append(loaded, pkg)
	}
	prog := callgraph.Build(loaded)

	type diag struct {
		file string
		line int
		msg  string
	}
	var got []diag
	for _, d := range a.Run(prog) {
		p := prog.Fset.Position(d.Pos)
		got = append(got, diag{filepath.Base(p.Filename), p.Line, d.Message})
	}

	var wants []*want
	for _, pkg := range loaded {
		w, err := collectWants(pkg)
		if err != nil {
			t.Fatalf("parsing expectations in %s: %v", pkg.ImportPath, err)
		}
		wants = append(wants, w...)
	}
	for _, d := range got {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != d.file || w.line != d.line || !w.re.MatchString(d.msg) {
				continue
			}
			w.matched = true
			matched = true
			break
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", d.file, d.line, d.msg)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// check applies the analyzer to one package and diffs diagnostics against
// expectations.
func check(t *testing.T, a *analysis.Analyzer, pkg *analysis.Package) {
	t.Helper()
	type diag struct {
		file string
		line int
		msg  string
	}
	var got []diag
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report: func(d analysis.Diagnostic) {
			p := pkg.Fset.Position(d.Pos)
			got = append(got, diag{filepath.Base(p.Filename), p.Line, d.Message})
		},
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, pkg.ImportPath, err)
	}

	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatalf("parsing expectations in %s: %v", pkg.ImportPath, err)
	}
	for _, d := range got {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != d.file || w.line != d.line || !w.re.MatchString(d.msg) {
				continue
			}
			w.matched = true
			matched = true
			break
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", d.file, d.line, d.msg)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// want is one expectation: a diagnostic matching re on (file, line).
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRE matches a `want` keyword followed by Go string literals.
var (
	wantRE    = regexp.MustCompile(`want\s+(.*)`)
	literalRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

func collectWants(pkg *analysis.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				lits := literalRE.FindAllString(m[1], -1)
				if len(lits) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment carries no pattern", p.Filename, p.Line)
				}
				for _, lit := range lits {
					s, err := strconv.Unquote(lit)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad pattern %s: %v", p.Filename, p.Line, lit, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad pattern %s: %v", p.Filename, p.Line, lit, err)
					}
					wants = append(wants, &want{file: filepath.Base(p.Filename), line: p.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// loader type-checks golden packages, resolving imports first against the
// testdata tree, then against the standard library.
type loader struct {
	srcRoot string
	fset    *token.FileSet
	std     types.Importer
	memo    map[string]*analysis.Package
	loading map[string]bool
}

func newLoader(srcRoot string) (*loader, error) {
	l := &loader{
		srcRoot: srcRoot,
		fset:    token.NewFileSet(),
		memo:    map[string]*analysis.Package{},
		loading: map[string]bool{},
	}
	std, err := l.stdlibNeeded()
	if err != nil {
		return nil, err
	}
	exports, err := analysis.ListExports(std...)
	if err != nil {
		return nil, err
	}
	l.std = analysis.NewExportImporter(l.fset, exports)
	return l, nil
}

// stdlibNeeded scans every golden file's imports for paths that are not
// sibling testdata packages; those must come from export data.
func (l *loader) stdlibNeeded() ([]string, error) {
	need := map[string]bool{}
	err := filepath.WalkDir(l.srcRoot, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		f, err := parser.ParseFile(token.NewFileSet(), p, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return err
			}
			if !l.isGolden(path) {
				need[path] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []string
	for p := range need {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// isGolden reports whether path names a package under testdata/src.
func (l *loader) isGolden(path string) bool {
	fi, err := os.Stat(filepath.Join(l.srcRoot, path))
	return err == nil && fi.IsDir()
}

func (l *loader) load(path string) (*analysis.Package, error) {
	if p, ok := l.memo[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.srcRoot, path)
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	p := &analysis.Package{ImportPath: path, Fset: l.fset, Syntax: files, Types: tpkg, TypesInfo: info}
	l.memo[path] = p
	return p, nil
}

func (l *loader) importPkg(path string) (*types.Package, error) {
	if l.isGolden(path) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
