// Package tokenctx statically enforces the cooperative single-token
// scheduling discipline (DESIGN.md §7).
//
// The simulator's hottest shared state — the tracer's event arenas, the
// scheduler's runnable heap, per-proc cursors — is deliberately mutex-free:
// its safety argument is that exactly one goroutine holds the scheduler's
// control token at any instant, and channel-based handoffs between procs
// provide the happens-before edges. That argument only holds for code that
// actually runs in proc context. This analyzer checks it statically:
//
//   - state is marked //simlint:tokenguarded on the struct field or package
//     var declaration;
//   - the "proc world" P is everything reachable from the function bodies
//     registered via (*sim.Scheduler).Spawn and (*sim.Clock).OnStall
//     (recovered structurally by the call graph);
//   - the "outside world" N is everything reachable from non-proc entry
//     points: every function of a main package and every exported in-module
//     declaration, minus the proc bodies themselves;
//   - a function that touches token-guarded state and is reachable from N
//     is flagged, unless it (or an entry point dominating it) carries a
//     //simlint:tokensafe(reason) justification — the N-walk stops at
//     tokensafe functions, so a justified public entry point covers its
//     internals.
//
// Typical justifications: a collector documented to run only after
// Scheduler.Run returns; a recorder whose MPL=1 caller is the main
// goroutine acting as the degenerate token holder. Reasons are mandatory.
package tokenctx

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer is the global tokenctx analyzer.
var Analyzer = &callgraph.Analyzer{
	Name: "tokenctx",
	Doc:  "flag non-proc-context access to //simlint:tokenguarded state",
	Run:  run,
}

func run(prog *callgraph.Program) []analysis.Diagnostic {
	c := &checker{
		prog:       prog,
		lineAnnots: map[*ast.File]map[int]analysis.Annotation{},
	}
	c.collectGuarded()
	if len(c.guarded) == 0 {
		return nil
	}

	// tokensafe functions: decl-level doc annotations, plus line-level
	// annotations on a func literal's opening line (or the line above).
	safe := map[*callgraph.Func]bool{}
	for _, f := range prog.FuncsSorted() {
		var a analysis.Annotation
		var ok bool
		if f.Decl != nil {
			a, ok = analysis.DocAnnotation(f.Decl.Doc, analysis.AnnotTokensafe)
		} else if f.Lit != nil {
			a, ok = c.lineAnnot(f.File, f.Lit.Pos(), analysis.AnnotTokensafe)
		}
		if ok {
			safe[f] = true
			c.requireReason(a, "tokensafe")
		}
	}

	// P: the proc world.
	var procRoots []*callgraph.Func
	for _, f := range prog.FuncsSorted() {
		if f.TokenEntry {
			procRoots = append(procRoots, f)
		}
	}
	procReach := prog.Reach(procRoots, callgraph.WalkOpts{Contains: true})

	// N: the outside world, pruned at tokensafe justifications.
	var outRoots []*callgraph.Func
	for _, f := range prog.FuncsSorted() {
		if f.Decl == nil || f.TokenEntry {
			continue
		}
		if f.Pkg.Types.Name() == "main" || f.Exported() {
			outRoots = append(outRoots, f)
		}
	}
	outReach := prog.Reach(outRoots, callgraph.WalkOpts{
		Contains: true,
		// Token entries are pruned too: an exported function that spawns a
		// proc contains its body literal, but that body runs in proc context
		// by construction and must not be dragged into the outside world.
		Prune: func(f *callgraph.Func) bool { return safe[f] || f.TokenEntry },
	})

	for _, f := range prog.FuncsSorted() {
		if safe[f] || f.TokenEntry {
			continue
		}
		if _, out := outReach[f]; !out {
			continue
		}
		for _, t := range c.touches(f) {
			msg := "touches token-guarded " + t.what +
				" outside proc context (" + callgraph.Witness(outReach, f) + ")"
			if _, p := procReach[f]; p {
				msg = "touches token-guarded " + t.what +
					" from both proc context and non-proc entry points (" +
					callgraph.Witness(outReach, f) + ")"
			}
			c.diags = append(c.diags, analysis.Diagnostic{Pos: t.pos, Message: msg})
		}
	}
	return c.diags
}

type checker struct {
	prog       *callgraph.Program
	diags      []analysis.Diagnostic
	guarded    map[string]bool // "pkgpath.Type.field" or "pkgpath.var"
	lineAnnots map[*ast.File]map[int]analysis.Annotation
	reasonSeen map[token.Pos]bool
}

// collectGuarded finds //simlint:tokenguarded struct fields and package
// vars across the module and records their canonical IDs.
func (c *checker) collectGuarded() {
	c.guarded = map[string]bool{}
	for _, pkg := range c.prog.Pkgs {
		path := pkg.Types.Path()
		for _, file := range pkg.Syntax {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						st, ok := s.Type.(*ast.StructType)
						if !ok {
							continue
						}
						for _, field := range st.Fields.List {
							if !c.fieldGuarded(file, field) {
								continue
							}
							for _, name := range field.Names {
								c.guarded[path+"."+s.Name.Name+"."+name.Name] = true
							}
						}
					case *ast.ValueSpec:
						if !c.specGuarded(file, gd, s) {
							continue
						}
						for _, name := range s.Names {
							c.guarded[path+"."+name.Name] = true
						}
					}
				}
			}
		}
	}
}

// fieldGuarded reports whether a struct field carries //simlint:tokenguarded
// in its doc comment, trailing comment, or on the line above.
func (c *checker) fieldGuarded(file *ast.File, field *ast.Field) bool {
	if _, ok := analysis.DocAnnotation(field.Doc, analysis.AnnotTokenguarded); ok {
		return true
	}
	if _, ok := analysis.DocAnnotation(field.Comment, analysis.AnnotTokenguarded); ok {
		return true
	}
	_, ok := c.lineAnnot(file, field.Pos(), analysis.AnnotTokenguarded)
	return ok
}

// specGuarded is fieldGuarded for package-level var specs.
func (c *checker) specGuarded(file *ast.File, gd *ast.GenDecl, s *ast.ValueSpec) bool {
	if _, ok := analysis.DocAnnotation(s.Doc, analysis.AnnotTokenguarded); ok {
		return true
	}
	if _, ok := analysis.DocAnnotation(s.Comment, analysis.AnnotTokenguarded); ok {
		return true
	}
	if len(gd.Specs) == 1 {
		if _, ok := analysis.DocAnnotation(gd.Doc, analysis.AnnotTokenguarded); ok {
			return true
		}
	}
	_, ok := c.lineAnnot(file, s.Pos(), analysis.AnnotTokenguarded)
	return ok
}

// lineAnnot returns an annotation of the given kind on pos's line or the
// line above.
func (c *checker) lineAnnot(file *ast.File, pos token.Pos, kind string) (analysis.Annotation, bool) {
	m, ok := c.lineAnnots[file]
	if !ok {
		m = analysis.AnnotationsByLine(c.prog.Fset, file,
			analysis.AnnotTokenguarded, analysis.AnnotTokensafe)
		c.lineAnnots[file] = m
	}
	line := c.prog.Fset.Position(pos).Line
	if a, ok := m[line]; ok && a.Kind == kind {
		return a, true
	}
	if a, ok := m[line-1]; ok && a.Kind == kind {
		return a, true
	}
	return analysis.Annotation{}, false
}

func (c *checker) requireReason(a analysis.Annotation, kind string) {
	if a.Reason != "" {
		return
	}
	if c.reasonSeen == nil {
		c.reasonSeen = map[token.Pos]bool{}
	}
	if c.reasonSeen[a.Pos] {
		return
	}
	c.reasonSeen[a.Pos] = true
	c.diags = append(c.diags, analysis.Diagnostic{
		Pos:     a.Pos,
		Message: "simlint:" + kind + " suppression requires a (reason)",
	})
}

// touch is one access to guarded state inside a function body.
type touch struct {
	pos  token.Pos
	what string
}

// touches returns the guarded-state accesses in f's own body (nested
// literals are their own nodes).
func (c *checker) touches(f *callgraph.Func) []touch {
	info := f.Pkg.TypesInfo
	var out []touch
	seen := map[string]bool{}
	add := func(pos token.Pos, what string) {
		key := what // one report per distinct state item per function
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, touch{pos: pos, what: what})
	}
	ast.Inspect(f.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != f.Lit {
				return false
			}
		case *ast.SelectorExpr:
			sel, ok := info.Selections[n]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			v, ok := sel.Obj().(*types.Var)
			if !ok || v.Pkg() == nil {
				return true
			}
			recv := sel.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok {
				return true
			}
			id := v.Pkg().Path() + "." + named.Obj().Name() + "." + v.Name()
			if c.guarded[id] {
				add(n.Sel.Pos(), "field "+named.Obj().Name()+"."+v.Name())
			}
		case *ast.Ident:
			v, ok := info.Uses[n].(*types.Var)
			if !ok || v.Pkg() == nil || !isPackageLevel(v) {
				return true
			}
			if c.guarded[v.Pkg().Path()+"."+v.Name()] {
				add(n.Pos(), "package var "+v.Name())
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// isPackageLevel reports whether v is declared at package scope.
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
