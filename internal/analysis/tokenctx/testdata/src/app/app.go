// Package app is a golden model of token-guarded state: a tracer-like arena
// recorded from proc context, collectors that read it from outside, and both
// justified and unjustified crossings.
package app

import "sim"

// tracer models the mutex-free event arena.
type tracer struct {
	// events relies on the single-token discipline for safety.
	//simlint:tokenguarded
	events []int
	// count is ordinary state: untouched by the analyzer.
	count int
}

var tr tracer

// pending is a token-guarded package var.
//
//simlint:tokenguarded
var pending int

// record appends to the arena. It is called from the proc body below and
// from the exported Mixed, so it lives in both worlds.
func record(v int) {
	tr.events = append(tr.events, v) // want `touches token-guarded field tracer\.events from both proc context and non-proc entry points`
	tr.count++
}

// Setup spawns the proc whose body records in proc context.
func Setup(s *sim.Scheduler, c *sim.Clock) {
	s.Spawn("worker", func() {
		record(1)
		pending++
	})
	c.OnStall(stallHook)
}

// stallHook runs on the scheduler goroutine with the token held.
func stallHook() bool {
	pending = 0
	return false
}

// Mixed is an exported entry point that reaches record.
func Mixed(v int) { record(v) }

// Collect reads the arena from a plain exported entry point with no
// justification: flagged.
func Collect() int {
	return len(tr.events) // want `touches token-guarded field tracer\.events outside proc context`
}

// Drain reads the guarded package var without justification: flagged.
func Drain() int {
	return pending // want `touches token-guarded package var pending outside proc context`
}

// Snapshot is a justified collector: the outside-world walk stops here, so
// neither it nor readLen is flagged.
//
//simlint:tokensafe(read-only collector documented to run after the scheduler parks)
func Snapshot() int { return readLen() }

// readLen is covered by Snapshot's justification.
func readLen() int { return len(tr.events) }

// BadSafe carries a justification-free tokensafe: still honored as a
// suppression, but the annotation itself is flagged.
//
//simlint:tokensafe() want `simlint:tokensafe suppression requires a \(reason\)`
func BadSafe() int { return len(tr.events) }
