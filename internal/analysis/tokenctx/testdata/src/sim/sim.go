// Package sim is a golden stand-in for the simulation core: its import path
// matches the analyzer's sim-core scope, so Spawn and OnStall register token
// entry points exactly as the real scheduler's do.
package sim

// Scheduler is the miniature cooperative scheduler.
type Scheduler struct{}

// Spawn registers fn as a virtual process body.
func (s *Scheduler) Spawn(name string, fn func()) { fn() }

// Clock is the miniature simulated clock.
type Clock struct{}

// OnStall registers a stall hook.
func (c *Clock) OnStall(fn func() bool) { _ = fn() }
