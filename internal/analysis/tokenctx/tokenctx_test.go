package tokenctx_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/tokenctx"
)

func TestTokenctx(t *testing.T) {
	analysistest.RunProgram(t, analysistest.TestData(), tokenctx.Analyzer, "sim", "app")
}
