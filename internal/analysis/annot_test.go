package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestSuppressionsCarryJustification walks every Go file in the repository
// and requires that each //simlint:alloc, //simlint:tokensafe, and
// //simlint:ordered suppression carries a non-empty justification, and that
// everything spelled like an annotation actually parses as one. Golden
// trees under testdata are exempt: they deliberately include malformed
// suppressions to exercise the analyzers.
func TestSuppressionsCarryJustification(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	needReason := map[string]bool{AnnotAlloc: true, AnnotTokensafe: true, AnnotOrdered: true}
	fset := token.NewFileSet()
	checked := 0
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//simlint:") {
					continue
				}
				checked++
				a, ok := ParseAnnotation(c)
				pos := fset.Position(c.Pos())
				if !ok {
					t.Errorf("%s:%d: unparseable //simlint: annotation: %s", rel, pos.Line, c.Text)
					continue
				}
				if needReason[a.Kind] && a.Reason == "" {
					t.Errorf("%s:%d: //simlint:%s suppression carries no justification", rel, pos.Line, a.Kind)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("walk found no //simlint: annotations; is the repository root wrong?")
	}
	t.Logf("checked %d annotations", checked)
}

func TestParseAnnotation(t *testing.T) {
	cases := []struct {
		text   string
		ok     bool
		kind   string
		reason string
	}{
		{"//simlint:noalloc", true, AnnotNoalloc, ""},
		{"//simlint:alloc(cold refill slope)", true, AnnotAlloc, "cold refill slope"},
		{"//simlint:alloc()", true, AnnotAlloc, ""},
		{"//simlint:tokenguarded", true, AnnotTokenguarded, ""},
		{"//simlint:tokensafe(collector runs after Run returns)", true, AnnotTokensafe, "collector runs after Run returns"},
		{"//simlint:ordered keys sorted before use", true, AnnotOrdered, "keys sorted before use"},
		{"// prose mentioning //simlint:alloc(x) mid-sentence", false, "", ""},
		{"// simlint:noalloc", false, "", ""},
		{"//simlint:bogus", false, "", ""},
	}
	for _, c := range cases {
		a, ok := ParseAnnotation(&ast.Comment{Text: c.text})
		if ok != c.ok {
			t.Errorf("ParseAnnotation(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if a.Kind != c.kind || a.Reason != c.reason {
			t.Errorf("ParseAnnotation(%q) = (%q, %q), want (%q, %q)", c.text, a.Kind, a.Reason, c.kind, c.reason)
		}
	}
}
