package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one loaded, parsed, and type-checked package ready to be
// handed to analyzers.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// ListExports resolves the given import paths (and their dependencies) to gc
// export data files via `go list -export`. The analysistest runner uses it to
// type-check golden packages against the real standard library without
// loading stdlib source.
func ListExports(paths ...string) (map[string]string, error) {
	if len(paths) == 0 {
		return map[string]string{}, nil
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, paths...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %v: %v\n%s", args, err, stderr.Bytes())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// Load expands the go-list patterns (e.g. "./...") to packages, parses each
// matched package's non-test Go files, and type-checks them against compiler
// export data produced by `go list -export`. Only the matched packages are
// analyzed; their dependencies (including intra-module ones) are imported
// from export data, which keeps loading fast and network-free.
func Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %v: %v\n%s", args, err, stderr.Bytes())
	}

	var targets []*listPkg
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			q := p
			targets = append(targets, &q)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := NewExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{ImportPath: importPath, Fset: fset, Syntax: files, Types: tpkg, TypesInfo: info}, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// NewExportImporter returns a types importer that resolves import paths via
// the given map of import path → gc export data file (as produced by
// `go list -export`), special-casing "unsafe".
func NewExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportImporter{under: importer.ForCompiler(fset, "gc", lookup)}
}

type exportImporter struct{ under types.Importer }

func (i *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.under.Import(path)
}
