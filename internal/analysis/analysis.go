// Package analysis is a minimal, dependency-free reimplementation of the
// driver surface of golang.org/x/tools/go/analysis, built entirely on the
// standard library (go/ast, go/types, and the go command for package
// discovery and export data).
//
// The repository's build environment bakes in only the Go toolchain — no
// third-party modules — so the simlint analyzer suite (see cmd/simlint and
// the sibling packages walltime, globalrand, mapiter, rawgo) targets this
// package instead of x/tools. The API deliberately mirrors x/tools:
// Analyzer{Name, Doc, Run}, Pass with Fset/Files/Pkg/TypesInfo and
// Reportf, and an analysistest-style golden runner under
// internal/analysis/analysistest. If x/tools ever becomes available, each
// analyzer migrates by changing one import line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lowercase identifier).
	Name string
	// Doc is the help text: one summary line, then details.
	Doc string
	// Run applies the analyzer to a single package.
	Run func(*Pass) (any, error)
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass provides one analyzer run with a single type-checked package and a
// sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. The determinism
// invariants bind simulation code, not its tests: tests may use wall-clock
// timeouts and raw goroutines to exercise the blocking paths.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}
