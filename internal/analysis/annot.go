package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// The //simlint:* annotation grammar (DESIGN.md §7). Annotations are magic
// comments, written with no space after "//" like //go: directives:
//
//	//simlint:noalloc             — on a function declaration's doc comment:
//	                                the function and everything it reaches
//	                                in-module must not allocate
//	//simlint:alloc(reason)       — on a declaration: the whole function is a
//	                                justified allocation site and the noalloc
//	                                walk stops at it; on a statement line (or
//	                                the line above): that line's allocations
//	                                and outgoing calls are justified
//	//simlint:tokenguarded        — on a struct field or package var: the
//	                                state relies on the cooperative
//	                                single-token scheduling model for safety
//	//simlint:tokensafe(reason)   — on a function declaration (or a func
//	                                literal's line): reaching token-guarded
//	                                state from non-proc context here is
//	                                justified; the tokenctx walk stops at it
//	//simlint:ordered <reason>    — on a map range: iteration order provably
//	                                does not escape (mapiter analyzer)
//
// Reasons are mandatory: an empty justification is rejected by the analyzers
// and by the repository guard test (TestSuppressionsCarryJustification).

// Annotation kinds.
const (
	AnnotNoalloc      = "noalloc"
	AnnotAlloc        = "alloc"
	AnnotTokenguarded = "tokenguarded"
	AnnotTokensafe    = "tokensafe"
	AnnotOrdered      = "ordered"
)

// An Annotation is one parsed //simlint:* comment.
type Annotation struct {
	Kind   string // one of the Annot* constants
	Reason string // the (reason) or trailing justification, "" if absent
	Pos    token.Pos
}

// Like //go: directives, an annotation must start the comment ("//simlint:"
// with no space); prose mentioning //simlint:* mid-sentence is not parsed.
var annotRE = regexp.MustCompile(`^//simlint:(noalloc|alloc|tokenguarded|tokensafe|ordered)\b\s*(?:\(([^)]*)\))?\s*(.*?)\s*$`)

// ParseAnnotation parses a single comment's text, returning ok=false when the
// comment carries no //simlint: marker.
func ParseAnnotation(c *ast.Comment) (Annotation, bool) {
	m := annotRE.FindStringSubmatch(c.Text)
	if m == nil {
		return Annotation{}, false
	}
	a := Annotation{Kind: m[1], Pos: c.Pos()}
	if m[2] != "" {
		a.Reason = strings.TrimSpace(m[2])
	} else if a.Kind == AnnotOrdered {
		a.Reason = strings.TrimSpace(m[3])
	}
	return a, true
}

// AnnotationsByLine maps each line of f that carries a //simlint:<kind>
// annotation of one of the given kinds to the parsed annotation. Analyzers
// consult the map for the flagged construct's own line and the line above it
// (the two places a suppression may sit).
func AnnotationsByLine(fset *token.FileSet, f *ast.File, kinds ...string) map[int]Annotation {
	want := map[string]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	byLine := map[int]Annotation{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			a, ok := ParseAnnotation(c)
			if !ok || !want[a.Kind] {
				continue
			}
			byLine[fset.Position(c.Pos()).Line] = a
		}
	}
	return byLine
}

// DocAnnotation returns the first annotation of one of the given kinds in a
// declaration's doc comment group.
func DocAnnotation(doc *ast.CommentGroup, kinds ...string) (Annotation, bool) {
	if doc == nil {
		return Annotation{}, false
	}
	want := map[string]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	for _, c := range doc.List {
		if a, ok := ParseAnnotation(c); ok && want[a.Kind] {
			return a, true
		}
	}
	return Annotation{}, false
}
