package noalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.RunProgram(t, analysistest.TestData(), noalloc.Analyzer, "hot")
}
