// Package noalloc statically enforces the zero-allocation hot-path
// invariant (DESIGN.md §7).
//
// Functions whose doc comment carries //simlint:noalloc are roots; the
// analyzer walks the call graph (internal/analysis/callgraph) and flags
// heap-allocating constructs in every in-module function reachable from a
// root, including function literals defined on the path:
//
//   - new/make and map/slice composite literals, plus &T{...};
//   - append (growth cannot be ruled out statically);
//   - function literals used as values (closure allocation);
//   - explicit conversions to interface types, assignments of concrete
//     values into interface variables, and variadic ...interface{} calls
//     (boxing);
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - calls into a denylist of allocating standard-library functions
//     (fmt.*, strconv.*, errors.New, strings.Builder methods, ...).
//
// Pointer-shaped operands (pointers, channels, maps, funcs, unsafe.Pointer)
// and constants do not box and are not flagged for interface conversion.
// Standard-library calls not on the denylist are allowed: the AllocsPerRun
// regression tests remain the dynamic backstop for those.
//
// Suppression is //simlint:alloc(reason). On a function declaration's doc
// comment it exempts the whole function and stops the walk (the function is
// a justified allocation site, e.g. a cold arena-refill slope). On a
// statement's line — or the line above it — it justifies that line's
// allocations and prunes call edges leaving that line. Reasons are
// mandatory.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer is the global noalloc analyzer.
var Analyzer = &callgraph.Analyzer{
	Name: "noalloc",
	Doc:  "flag heap allocations reachable from //simlint:noalloc functions",
	Run:  run,
}

// deniedPkgs are standard-library packages every call into which allocates
// (or formats, which implies allocation).
var deniedPkgs = map[string]bool{
	"fmt": true, "log": true, "os": true, "reflect": true,
	"regexp": true, "encoding/json": true, "bufio": true, "strconv": true,
}

// deniedFuncs are individual standard-library functions known to allocate,
// keyed by callgraph.FuncID.
var deniedFuncs = map[string]bool{
	"errors.New": true, "errors.Join": true,
	"sort.Sort": true, "sort.Stable": true, "sort.Slice": true, "sort.SliceStable": true,
	"strings.Join": true, "strings.Repeat": true, "strings.Clone": true,
	"strings.Split": true, "strings.Fields": true, "strings.Replace": true,
	"strings.ReplaceAll": true, "strings.ToUpper": true, "strings.ToLower": true,
	"bytes.Join": true, "bytes.Repeat": true, "bytes.Clone": true,
	"bytes.Split": true, "bytes.Fields": true,
	"hash/crc32.New": true, "hash/crc32.NewIEEE": true,
}

// deniedRecvs are standard-library types whose methods build up allocated
// state, keyed by "pkgpath.TypeName".
var deniedRecvs = map[string]bool{
	"strings.Builder": true, "bytes.Buffer": true,
}

func run(prog *callgraph.Program) []analysis.Diagnostic {
	c := &checker{prog: prog, lineAnnots: map[*ast.File]map[int]analysis.Annotation{}}

	// Roots: //simlint:noalloc declarations. Decl-level //simlint:alloc
	// exempts a function entirely and prunes the walk at it.
	var roots []*callgraph.Func
	exempt := map[*callgraph.Func]bool{}
	for _, f := range prog.FuncsSorted() {
		if f.Decl == nil {
			continue
		}
		if _, ok := analysis.DocAnnotation(f.Decl.Doc, analysis.AnnotNoalloc); ok {
			roots = append(roots, f)
		}
		if a, ok := analysis.DocAnnotation(f.Decl.Doc, analysis.AnnotAlloc); ok {
			exempt[f] = true
			c.requireReason(a)
		}
	}

	parent := prog.Reach(roots, callgraph.WalkOpts{
		Contains: true,
		Prune:    func(f *callgraph.Func) bool { return exempt[f] },
		PruneEdge: func(from *callgraph.Func, e callgraph.Edge) bool {
			// A line-level //simlint:alloc justifies the calls leaving that
			// line too: the edge is pruned so the callee is not dragged onto
			// the hot path by a justified call site.
			_, ok := c.suppression(from, e.Pos)
			return ok
		},
	})

	for _, f := range prog.FuncsSorted() {
		if _, reached := parent[f]; !reached || exempt[f] {
			continue
		}
		c.checkBody(f, parent)
	}
	return c.diags
}

type checker struct {
	prog       *callgraph.Program
	diags      []analysis.Diagnostic
	lineAnnots map[*ast.File]map[int]analysis.Annotation
	// reasonSeen dedupes missing-justification reports per annotation.
	reasonSeen map[token.Pos]bool
}

// suppression returns the //simlint:alloc annotation covering pos (same line
// or the line above), if any.
func (c *checker) suppression(f *callgraph.Func, pos token.Pos) (analysis.Annotation, bool) {
	m, ok := c.lineAnnots[f.File]
	if !ok {
		m = analysis.AnnotationsByLine(c.prog.Fset, f.File, analysis.AnnotAlloc)
		c.lineAnnots[f.File] = m
	}
	line := c.prog.Fset.Position(pos).Line
	if a, ok := m[line]; ok {
		return a, true
	}
	if a, ok := m[line-1]; ok {
		return a, true
	}
	return analysis.Annotation{}, false
}

// report emits a diagnostic unless a line suppression covers it; suppressions
// must carry a justification.
func (c *checker) report(f *callgraph.Func, pos token.Pos, msg string, parent map[*callgraph.Func]*callgraph.Func) {
	if a, ok := c.suppression(f, pos); ok {
		c.requireReason(a)
		return
	}
	c.diags = append(c.diags, analysis.Diagnostic{
		Pos:     pos,
		Message: msg + " on noalloc path " + callgraph.Witness(parent, f),
	})
}

// requireReason reports a //simlint:alloc annotation written without a
// justification.
func (c *checker) requireReason(a analysis.Annotation) {
	if a.Reason != "" {
		return
	}
	if c.reasonSeen == nil {
		c.reasonSeen = map[token.Pos]bool{}
	}
	if c.reasonSeen[a.Pos] {
		return
	}
	c.reasonSeen[a.Pos] = true
	c.diags = append(c.diags, analysis.Diagnostic{
		Pos:     a.Pos,
		Message: "simlint:alloc suppression requires a (reason)",
	})
}

// checkBody scans one reachable function for allocating constructs. Nested
// literals are separate nodes and are scanned on their own.
func (c *checker) checkBody(f *callgraph.Func, parent map[*callgraph.Func]*callgraph.Func) {
	info := f.Pkg.TypesInfo
	// Denied external calls are detected on edges, which already carry the
	// resolved callee.
	for _, e := range f.Calls {
		if e.External == nil {
			continue
		}
		if why := deniedCall(e.External); why != "" {
			c.report(f, e.Pos, "call to "+why+" allocates", parent)
		}
	}

	immediateLits := map[*ast.FuncLit]bool{}
	ast.Inspect(f.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != f.Lit && !immediateLits[n] {
				c.report(f, n.Pos(), "closure creation allocates", parent)
			}
			return false // nested bodies are their own nodes
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				immediateLits[lit] = true
			}
			c.checkCall(f, n, parent)
		case *ast.CompositeLit:
			c.checkComposite(f, n, parent)
			return false // inner literals are part of the same allocation
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.report(f, n.Pos(), "&composite literal allocates", parent)
					return false
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && !isConst(info, n) && isString(info.TypeOf(n.X)) {
				c.report(f, n.Pos(), "string concatenation allocates", parent)
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					c.checkBoxing(f, info.TypeOf(n.Lhs[i]), rhs, parent)
				}
			}
		case *ast.ValueSpec:
			var lt types.Type
			if n.Type != nil {
				lt = info.TypeOf(n.Type)
			}
			for _, v := range n.Values {
				c.checkBoxing(f, lt, v, parent)
			}
		}
		return true
	})
}

// checkCall flags allocating builtins, allocating conversions, and boxing at
// call sites.
func (c *checker) checkCall(f *callgraph.Func, call *ast.CallExpr, parent map[*callgraph.Func]*callgraph.Func) {
	info := f.Pkg.TypesInfo
	fun := ast.Unparen(call.Fun)

	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				c.report(f, call.Pos(), "new allocates", parent)
			case "make":
				c.report(f, call.Pos(), "make allocates", parent)
			case "append":
				c.report(f, call.Pos(), "append may grow its backing array", parent)
			}
			return
		}
	}

	// Conversions: T(x).
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		to := tv.Type
		from := info.TypeOf(call.Args[0])
		switch {
		case isInterface(to) && boxes(info, call.Args[0], from):
			c.report(f, call.Pos(), "conversion to interface type boxes its operand", parent)
		case isString(to) && from != nil && isByteOrRuneSlice(from):
			c.report(f, call.Pos(), "[]byte/[]rune to string conversion allocates", parent)
		case isByteOrRuneSlice(to) && isString(from) && !isConst(info, call.Args[0]):
			c.report(f, call.Pos(), "string to []byte/[]rune conversion allocates", parent)
		}
		return
	}

	// Boxing into interface parameters, including variadic ...interface{}.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call.Ellipsis != token.NoPos)
		c.checkBoxing(f, pt, arg, parent)
	}
}

// checkBoxing flags storing a boxing-shaped concrete value into an interface
// destination.
func (c *checker) checkBoxing(f *callgraph.Func, dst types.Type, src ast.Expr, parent map[*callgraph.Func]*callgraph.Func) {
	if dst == nil || !isInterface(dst) {
		return
	}
	if boxes(f.Pkg.TypesInfo, src, f.Pkg.TypesInfo.TypeOf(src)) {
		c.report(f, src.Pos(), "interface conversion boxes a concrete value", parent)
	}
}

// checkComposite flags composite literals with heap-allocating shapes.
func (c *checker) checkComposite(f *callgraph.Func, lit *ast.CompositeLit, parent map[*callgraph.Func]*callgraph.Func) {
	t := f.Pkg.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		c.report(f, lit.Pos(), "map literal allocates", parent)
	case *types.Slice:
		c.report(f, lit.Pos(), "slice literal allocates", parent)
	}
	// Plain struct/array value literals stay on the stack unless their
	// address escapes; &T{...} is caught at the UnaryExpr.
}

// paramType returns the type arg i is assigned to, unwrapping variadic
// parameters when the call does not forward a slice with "...".
func paramType(sig *types.Signature, i int, hasEllipsis bool) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 && !hasEllipsis {
		if s, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

// boxes reports whether storing src (of type from) into an interface
// allocates: constants, nils, pointer-shaped values, and values already of
// interface type do not box.
func boxes(info *types.Info, src ast.Expr, from types.Type) bool {
	if from == nil || isInterface(from) {
		return false
	}
	if isConst(info, src) {
		return false
	}
	if tv, ok := info.Types[ast.Unparen(src)]; ok && tv.IsNil() {
		return false
	}
	switch from.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: stored directly in the iface word
	case *types.Basic:
		if from.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.Value != nil
}

// deniedCall classifies an out-of-module callee against the allocation
// denylist, returning a display name when denied and "" when allowed.
func deniedCall(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	id := callgraph.FuncID(fn)
	path := fn.Pkg().Path()
	switch {
	case deniedPkgs[path]:
		return path + "." + strings.TrimPrefix(id, path+".")
	case deniedFuncs[id]:
		return id
	default:
		if i := strings.LastIndexByte(id, '.'); i > 0 && deniedRecvs[id[:i]] {
			return "(" + id[:i] + ")." + id[i+1:]
		}
	}
	return ""
}
