// Package hot is a golden model of an annotated hot path: roots, transitive
// callees, interface dispatch, every allocating construct class, and both
// suppression forms.
package hot

import "fmt"

// Emit models a trace-emit root seeded with deliberate violations.
//
//simlint:noalloc
func Emit(n int) string {
	buf := make([]byte, n) // want `make allocates`
	p := new(int)          // want `new allocates`
	*p = n
	buf = append(buf, byte(n)) // want `append may grow its backing array`
	_ = buf
	s := fmt.Sprintf("ev%d", n) // want `call to fmt\.Sprintf allocates` `interface conversion boxes a concrete value`
	return s
}

// Reach is a root whose violation sits in a transitive callee.
//
//simlint:noalloc
func Reach(n int) { helper(n) }

// helper is unannotated but dragged onto the hot path by Reach.
func helper(n int) {
	xs := []int{n} // want `slice literal allocates`
	_ = xs
	m := map[int]int{n: n} // want `map literal allocates`
	_ = m
}

// Constructs covers the remaining allocating shapes.
//
//simlint:noalloc
func Constructs(a, b string, n int) {
	f := func() int { return n } // want `closure creation allocates`
	_ = f()
	pt := &point{x: n} // want `&composite literal allocates`
	_ = pt
	c := a + b // want `string concatenation allocates`
	_ = c
	bs := []byte(a) // want `string to \[\]byte/\[\]rune conversion allocates`
	s := string(bs) // want `\[\]byte/\[\]rune to string conversion allocates`
	_ = s
	var any interface{} = n // want `interface conversion boxes a concrete value`
	_ = any
}

type point struct{ x int }

// writer dispatches through an interface: the worklist resolves the
// in-module implementation and walks into it.
type writer interface{ write(n int) }

type impl struct{}

func (impl) write(n int) {
	_ = make([]byte, n) // want `make allocates`
}

// Dispatch is a root that only calls through the interface.
//
//simlint:noalloc
func Dispatch(w writer, n int) { w.write(n) }

// Suppressed shows a justified line suppression: no diagnostic, and the
// call edge leaving the line is pruned so coldHelper stays off the path.
//
//simlint:noalloc
func Suppressed(n int) {
	//simlint:alloc(cold refill slope: grows once then reuses capacity)
	b := make([]byte, n)
	_ = b
	//simlint:alloc(cold edge: the refill below the suppressed line is justified)
	coldHelper(n)
}

// coldHelper allocates freely; it is only reachable through suppressed
// edges or the exempt root below.
func coldHelper(n int) []byte { return make([]byte, n) }

// Exempt is a decl-level justified allocation site: the walk stops here.
//
//simlint:alloc(cold per-segment finalize: runs once per rotation)
func Exempt(n int) []byte {
	return append(coldHelper(n), byte(n))
}

// Root3 reaching Exempt sees no diagnostics at all.
//
//simlint:noalloc
func Root3(n int) { _ = Exempt(n) }

// BadSuppression is missing its justification: the construct stays
// suppressed but the annotation itself is flagged.
//
//simlint:noalloc
func BadSuppression(n int) {
	//simlint:alloc() want `simlint:alloc suppression requires a \(reason\)`
	b := make([]byte, n)
	_ = b
}

// NotARoot allocates without any annotation and is unreachable from the
// roots: the analyzer stays silent.
func NotARoot(n int) []byte { return make([]byte, n) }
