package a

import "time"

// Tests legitimately time out in real time; _test.go files are exempt.
func timeout() <-chan time.Time {
	time.Sleep(time.Millisecond)
	return time.After(time.Second)
}
