// Package a seeds walltime violations: non-test simulation code reading or
// waiting on the host clock.
package a

import "time"

func bad() time.Time {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	<-time.After(time.Second)    // want `time\.After reads the wall clock`
	t := time.Now()              // want `time\.Now reads the wall clock`
	_ = time.Since(t)            // want `time\.Since reads the wall clock`
	return t
}

func good() time.Duration {
	const tick = 50 * time.Microsecond // durations and arithmetic are fine
	var d time.Duration = 3 * tick
	return d.Round(time.Millisecond)
}
