// Package sim models the simulation core, the one package allowed to touch
// the wall clock (e.g. to timestamp trace files).
package sim

import "time"

func Stamp() time.Time { return time.Now() }
