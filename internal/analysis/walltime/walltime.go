// Package walltime defines a simlint analyzer that forbids wall-clock time
// in simulation code.
//
// Every figure the repository reproduces is an exact-nanosecond claim on a
// simulated clock; a single time.Now or time.Sleep couples results to the
// host machine and silently breaks two-run determinism. Simulated time must
// flow through sim.Clock / sim.Scheduler. The analyzer exempts _test.go
// files (tests legitimately time out in real time) and the internal/sim
// package itself, the one place a wall-clock escape would be deliberate.
//
// time.Duration values and arithmetic are fine — only the functions that
// read or wait on the host clock are banned.
package walltime

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// banned are the time-package functions that observe or wait on the host
// clock. The issue list (Now/Since/Sleep/After/Tick/NewTimer/NewTicker) is
// extended with Until and AfterFunc, which leak wall time the same way.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Analyzer flags wall-clock time primitives outside internal/sim.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "forbid wall-clock time (time.Now, time.Sleep, ...) in non-test simulation code; use sim.Clock",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if analysis.IsSimCore(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "time" && banned[fn.Name()] {
				pass.Reportf(id.Pos(), "time.%s reads the wall clock; simulated time must flow through sim.Clock/sim.Scheduler", fn.Name())
			}
			return true
		})
	}
	return nil, nil
}
