package lock

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func obj(b int64) Object { return Object{File: 1, Block: b} }

// armWaitHook makes m signal ch each time a request parks, so tests can wait
// for "the other goroutine is blocked" without wall-clock sleeps. Must be
// called before any goroutine uses m. The send never blocks: the buffer
// absorbs the signals a test consumes, extra wake-ups are dropped.
func armWaitHook(m *Manager) chan struct{} {
	ch := make(chan struct{}, 16)
	m.waitHook = func() {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	return ch
}

func TestSharedReaders(t *testing.T) {
	m := NewManager()
	for txn := TxnID(1); txn <= 3; txn++ {
		if err := m.Lock(txn, obj(0), Read); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.HeldCount(1); got != 1 {
		t.Fatalf("HeldCount = %d", got)
	}
}

func TestReacquireHeldLockIsNoop(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, obj(0), Write); err != nil {
		t.Fatal(err)
	}
	// Write covers read; re-lock returns immediately.
	if err := m.Lock(1, obj(0), Read); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, obj(0), Write); err != nil {
		t.Fatal(err)
	}
	if got := m.HeldCount(1); got != 1 {
		t.Fatalf("HeldCount = %d, want 1", got)
	}
}

func TestWriterBlocksReader(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, obj(0), Write); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan struct{})
	go func() {
		if err := m.Lock(2, obj(0), Read); err != nil {
			t.Error(err)
		}
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("reader should block behind writer")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("reader should acquire after release")
	}
}

func TestReaderBlocksWriter(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, obj(0), Read); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan struct{})
	go func() {
		if err := m.Lock(2, obj(0), Write); err != nil {
			t.Error(err)
		}
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("writer should block behind reader")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	<-acquired
}

func TestUpgradeSoleReader(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, obj(0), Read); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, obj(0), Write); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Upgrades != 1 {
		t.Fatalf("Upgrades = %d", m.Stats().Upgrades)
	}
	// The upgraded lock excludes other readers.
	done := make(chan struct{})
	go func() {
		m.Lock(2, obj(0), Read)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("upgraded lock must be exclusive")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	<-done
}

func TestDeadlockDetection(t *testing.T) {
	m := NewManager()
	blocked := armWaitHook(m)
	if err := m.Lock(1, obj(0), Write); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, obj(1), Write); err != nil {
		t.Fatal(err)
	}
	// Txn 1 waits for obj 1 (held by 2).
	errCh := make(chan error, 1)
	go func() { errCh <- m.Lock(1, obj(1), Write) }()
	<-blocked
	// Txn 2 requesting obj 0 closes the cycle: one of the two must get
	// ErrDeadlock.
	err2 := m.Lock(2, obj(0), Write)
	if err2 != nil {
		if !errors.Is(err2, ErrDeadlock) {
			t.Fatalf("got %v, want ErrDeadlock", err2)
		}
		m.ReleaseAll(2)
		if err := <-errCh; err != nil {
			t.Fatalf("txn1 should proceed after victim aborts: %v", err)
		}
	} else {
		// Then txn 1 must have been the victim.
		if err := <-errCh; !errors.Is(err, ErrDeadlock) {
			t.Fatalf("neither transaction saw the deadlock: %v", err)
		}
	}
	if m.Stats().Deadlocks != 1 {
		t.Fatalf("Deadlocks = %d", m.Stats().Deadlocks)
	}
}

func TestUpgradeDeadlock(t *testing.T) {
	// Two readers both trying to upgrade is the classic conversion
	// deadlock; the second requester must be told.
	m := NewManager()
	blocked := armWaitHook(m)
	m.Lock(1, obj(0), Read)
	m.Lock(2, obj(0), Read)
	errCh := make(chan error, 1)
	go func() { errCh <- m.Lock(1, obj(0), Write) }()
	<-blocked
	err2 := m.Lock(2, obj(0), Write)
	if err2 == nil {
		if err1 := <-errCh; !errors.Is(err1, ErrDeadlock) {
			t.Fatalf("expected a deadlock somewhere, got nil and %v", err1)
		}
		return
	}
	if !errors.Is(err2, ErrDeadlock) {
		t.Fatalf("got %v, want ErrDeadlock", err2)
	}
	m.ReleaseAll(2)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

func TestCycleCheckAllocationFree(t *testing.T) {
	// The deadlock check runs before every block; it must not allocate in
	// the steady state. Build the waits-for graph directly (Lock would park
	// the goroutine) and probe it under AllocsPerRun.
	m := NewManager()
	m.mu.Lock()
	defer m.mu.Unlock()
	for id := TxnID(1); id < 8; id++ {
		m.waitsFor[id] = []TxnID{id + 1}
	}
	m.cycleLocked(1) // warm the reusable scratch
	allocs := testing.AllocsPerRun(100, func() {
		if m.cycleLocked(1) {
			t.Error("chain has no cycle")
		}
	})
	if allocs != 0 {
		t.Fatalf("cycleLocked allocates %v per acyclic probe, want 0", allocs)
	}
	m.waitsFor[8] = []TxnID{1} // close the cycle
	allocs = testing.AllocsPerRun(100, func() {
		if !m.cycleLocked(1) {
			t.Error("cycle not found")
		}
	})
	if allocs != 0 {
		t.Fatalf("cycleLocked allocates %v per cyclic probe, want 0", allocs)
	}
}

func TestReleaseAllReturnsWriteSet(t *testing.T) {
	m := NewManager()
	m.Lock(1, obj(0), Read)
	m.Lock(1, obj(1), Write)
	m.Lock(1, obj(2), Write)
	written := m.ReleaseAll(1)
	if len(written) != 2 {
		t.Fatalf("write set = %v, want 2 objects", written)
	}
	if m.HeldCount(1) != 0 {
		t.Fatal("all locks should be gone")
	}
}

func TestUnlockSingle(t *testing.T) {
	m := NewManager()
	m.Lock(1, obj(0), Write)
	m.Unlock(1, obj(0))
	// Another transaction can now take it without blocking.
	done := make(chan struct{})
	go func() {
		m.Lock(2, obj(0), Write)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("lock should be free after Unlock")
	}
}

func TestWriteLockedList(t *testing.T) {
	m := NewManager()
	m.Lock(7, obj(3), Write)
	m.Lock(7, obj(4), Read)
	wl := m.WriteLocked(7)
	if len(wl) != 1 || wl[0] != obj(3) {
		t.Fatalf("WriteLocked = %v", wl)
	}
}

func TestManyConcurrentTxns(t *testing.T) {
	// Stress: 16 goroutines locking 8 objects in ascending order (no
	// deadlock possible) and releasing; counters must add up.
	m := NewManager()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(txn TxnID) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				for b := int64(0); b < 8; b++ {
					if err := m.Lock(txn, obj(b), Write); err != nil {
						t.Errorf("txn %d: %v", txn, err)
						return
					}
				}
				m.ReleaseAll(txn)
			}
		}(TxnID(g + 1))
	}
	wg.Wait()
	if m.Stats().Deadlocks != 0 {
		t.Fatalf("ordered locking must not deadlock: %+v", m.Stats())
	}
	// Table should be empty.
	if n := len(m.table); n != 0 {
		t.Fatalf("%d objects leaked in the lock table", n)
	}
}

func TestStatsWaits(t *testing.T) {
	m := NewManager()
	blocked := armWaitHook(m)
	m.Lock(1, obj(0), Write)
	done := make(chan struct{})
	go func() {
		m.Lock(2, obj(0), Write)
		close(done)
	}()
	<-blocked
	m.ReleaseAll(1)
	<-done
	st := m.Stats()
	if st.Waited != 1 {
		t.Fatalf("Waited = %d, want 1", st.Waited)
	}
}
