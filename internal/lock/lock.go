// Package lock implements the two-phase, page-granularity lock manager both
// transaction systems share: single writer / multiple readers, lock chains
// maintained per object and per transaction (so commit and abort can
// traverse a transaction's locks rapidly, §4.1 of the paper), blocking
// waiters, lock upgrades, and deadlock detection by waits-for cycle search.
package lock

import (
	"cmp"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/detsort"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Mode is a lock mode.
type Mode int

const (
	// Read is a shared lock.
	Read Mode = iota
	// Write is an exclusive lock.
	Write
)

func (m Mode) String() string {
	if m == Write {
		return "write"
	}
	return "read"
}

// Object identifies a lockable object: file and block number, as in the
// paper's lock table ("currently locked objects which are identified by file
// and block number").
type Object struct {
	File  uint64
	Block int64
}

func (o Object) String() string { return fmt.Sprintf("(%d,%d)", o.File, o.Block) }

// compareObject orders objects by (file, block) for deterministic iteration
// over object-keyed maps: victim selection, release order, and the write
// sets handed to abort processing must not depend on Go's randomized map
// order, or identically seeded runs diverge.
func compareObject(a, b Object) int {
	if c := cmp.Compare(a.File, b.File); c != 0 {
		return c
	}
	return cmp.Compare(a.Block, b.Block)
}

// TxnID identifies a lock owner.
type TxnID uint64

// Errors.
var (
	// ErrDeadlock is returned to the transaction chosen as the victim of a
	// waits-for cycle; the caller should abort.
	ErrDeadlock = errors.New("lock: deadlock detected")
)

// Stats counts lock-manager activity.
type Stats struct {
	Acquired  int64 // granted requests (excluding re-grants of held locks)
	Waited    int64 // requests that had to block
	Deadlocks int64 // requests denied by deadlock detection
	Upgrades  int64 // read→write upgrades

	// BlockedTime is the cumulative simulated time transactions spent
	// suspended waiting for locks. Only waits inside virtual processes
	// (multiprogramming runs with a sim clock attached via SetClock) can be
	// measured in simulated time; goroutine waits add nothing here.
	BlockedTime time.Duration
	// DeadlockAborts counts transactions actually aborted after losing
	// deadlock detection, as reported by the transaction layers through
	// NoteDeadlockAbort. It can be lower than Deadlocks when a caller
	// retries the same request without aborting.
	DeadlockAborts int64
}

// holderEntry is one (transaction, mode) pair in a head's holder list.
type holderEntry struct {
	txn  TxnID
	mode Mode
}

// head is the per-object lock state. Holders live in a slice sorted by
// transaction id: holder counts are tiny (one writer or a few readers), so
// linear operations beat a map, and the maintained order makes every
// traversal deterministic without sorting keys on each access.
type head struct {
	holders []holderEntry
	waiters int
}

// get returns txn's held mode, if any.
//
//simlint:noalloc
func (h *head) get(txn TxnID) (Mode, bool) {
	for _, e := range h.holders {
		if e.txn == txn {
			return e.mode, true
		}
	}
	return 0, false
}

// set grants or upgrades txn's lock, keeping the slice sorted.
//
//simlint:noalloc
func (h *head) set(txn TxnID, mode Mode) {
	i := 0
	for i < len(h.holders) && h.holders[i].txn < txn {
		i++
	}
	if i < len(h.holders) && h.holders[i].txn == txn {
		h.holders[i].mode = mode
		return
	}
	//simlint:alloc(amortized holder-slice growth; holder counts are tiny)
	h.holders = append(h.holders, holderEntry{})
	copy(h.holders[i+1:], h.holders[i:])
	h.holders[i] = holderEntry{txn: txn, mode: mode}
}

// remove drops txn from the holder list if present.
//
//simlint:noalloc
func (h *head) remove(txn TxnID) {
	for i, e := range h.holders {
		if e.txn == txn {
			//simlint:alloc(in-place deletion: append into the same backing array never grows)
			h.holders = append(h.holders[:i], h.holders[i+1:]...)
			return
		}
	}
}

// Manager is a lock manager. All methods are safe for concurrent use.
type Manager struct {
	mu    sync.Mutex
	cond  *sync.Cond
	table map[Object]*head
	byTxn map[TxnID]map[Object]Mode
	// waitsFor[t] is the list of transactions t is currently blocked on, in
	// ascending transaction order (the order conflicts produces). Sorted
	// slices rather than sets: edge counts are tiny, the deadlock DFS can
	// walk them directly without materializing sorted keys, and iteration is
	// deterministic by construction.
	waitsFor map[TxnID][]TxnID
	stats    Stats

	// dfsSeen and dfsStack are reusable scratch for cycleLocked, so the
	// deadlock check run before every block allocates nothing in the steady
	// state. Guarded by mu like everything else.
	dfsSeen  map[TxnID]bool
	dfsStack []TxnID

	// clk, when set, lets waiters inside virtual processes suspend in
	// simulated time on simQ instead of parking their goroutine on cond.
	clk      *sim.Clock
	simQ     sim.WaitQueue
	tracer   *trace.Tracer // nil = tracing off
	histWait *trace.Hist   // lock.wait latency handle (nil = tracing off)

	// waitHook, when non-nil, is invoked (with mu held) each time a request
	// is about to park. Tests use it to synchronize on "the waiter is
	// blocked" without wall-clock sleeps; see lock_test.go.
	waitHook func()
}

// NewManager returns an empty lock manager.
func NewManager() *Manager {
	m := &Manager{
		table:    make(map[Object]*head),
		byTxn:    make(map[TxnID]map[Object]Mode),
		waitsFor: make(map[TxnID][]TxnID),
		dfsSeen:  make(map[TxnID]bool),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// SetClock attaches the simulated clock. With a clock attached, a Lock call
// made from a virtual process suspends the proc — accumulating
// Stats.BlockedTime in simulated time — rather than parking its goroutine;
// calls from plain goroutines keep the sync.Cond path.
func (m *Manager) SetClock(clk *sim.Clock) {
	m.mu.Lock()
	m.clk = clk
	m.mu.Unlock()
}

// SetTracer attaches a tracer; lock waits then emit lock.wait spans with
// per-proc lock-blocked time attribution, and deadlock denials emit
// lock.deadlock instants. A nil tracer costs nothing.
func (m *Manager) SetTracer(tr *trace.Tracer) {
	m.mu.Lock()
	m.tracer = tr
	m.histWait = tr.Hist("lock.wait")
	m.mu.Unlock()
}

// NoteDeadlockAbort records that a transaction was aborted because one of
// its lock requests returned ErrDeadlock. The transaction layers call this
// from their abort paths so the figure reports can distinguish denied
// requests from actual victim aborts.
func (m *Manager) NoteDeadlockAbort() {
	m.mu.Lock()
	m.stats.DeadlockAborts++
	m.mu.Unlock()
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Held returns the objects txn currently holds, with their modes.
func (m *Manager) Held(txn TxnID) map[Object]Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[Object]Mode, len(m.byTxn[txn]))
	for o, md := range m.byTxn[txn] {
		out[o] = md
	}
	return out
}

// HeldCount returns the number of locks txn holds.
func (m *Manager) HeldCount(txn TxnID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byTxn[txn])
}

// Holders returns the transactions currently holding obj.
func (m *Manager) Holders(obj Object) []TxnID {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.table[obj]
	if h == nil || len(h.holders) == 0 {
		return nil
	}
	out := make([]TxnID, len(h.holders))
	for i, e := range h.holders {
		out[i] = e.txn
	}
	return out
}

// EachHolder calls fn for each transaction holding obj, in ascending
// transaction order, stopping early if fn returns false. Unlike Holders it
// allocates nothing, so callers on per-page-access paths can inspect holders
// without heap traffic.
//
//simlint:noalloc
func (m *Manager) EachHolder(obj Object, fn func(TxnID) bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h := m.table[obj]; h != nil {
		for _, e := range h.holders {
			if !fn(e.txn) {
				return
			}
		}
	}
}

// conflicts reports the set of other holders blocking txn's request, in
// ascending transaction order. The order matters: it fixes the waits-for
// edges and therefore which transaction a deadlock search reaches first, so
// victim choice is stable across identically seeded runs. The holder slice is
// kept sorted, so iteration order is deterministic and grant checks (the
// common, conflict-free case) allocate nothing.
//
//simlint:noalloc
func (h *head) conflicts(txn TxnID, mode Mode) []TxnID {
	var out []TxnID
	for _, e := range h.holders {
		if e.txn == txn {
			continue
		}
		if mode == Write || e.mode == Write {
			//simlint:alloc(conflict path only: the contention-free grant returns nil)
			out = append(out, e.txn)
		}
	}
	return out
}

// Lock acquires obj in the given mode for txn, blocking until it is granted.
// Re-acquiring a held lock (same or weaker mode) returns immediately; a
// read→write upgrade waits for other readers to drain. If waiting would
// close a cycle in the waits-for graph, the request fails with ErrDeadlock
// and the caller is expected to abort the transaction.
//
//simlint:noalloc
func (m *Manager) Lock(txn TxnID, obj Object, mode Mode) error {
	m.mu.Lock()
	defer m.mu.Unlock()

	h := m.table[obj]
	if h == nil {
		//simlint:alloc(one head per locked object, first contact only)
		h = &head{}
		m.table[obj] = h
	}
	if held, ok := h.get(txn); ok {
		if held == Write || mode == Read {
			return nil // already covered
		}
		m.stats.Upgrades++
	}

	waited := false
	var blocked time.Duration
	for {
		blockers := h.conflicts(txn, mode)
		if len(blockers) == 0 {
			break
		}
		// Deadlock check before blocking. blockers is already in ascending
		// transaction order; it becomes txn's waits-for edge list as is.
		m.waitsFor[txn] = blockers
		if m.cycleLocked(txn) {
			delete(m.waitsFor, txn)
			m.stats.Deadlocks++
			m.tracer.Instant("lock", "lock.deadlock",
				trace.AU("txn", uint64(txn)), trace.AU("file", obj.File),
				trace.AI("block", obj.Block), trace.AS("mode", mode.String()))
			//simlint:alloc(cold deadlock denial: the error carries the victim diagnosis)
			return fmt.Errorf("%w: txn %d on %v (%s)", ErrDeadlock, txn, obj, mode)
		}
		if !waited {
			m.stats.Waited++
			waited = true
		}
		h.waiters++
		if m.waitHook != nil {
			m.waitHook()
		}
		if m.clk != nil && m.clk.InProc() {
			d := m.simQ.Wait(m.clk, &m.mu)
			m.stats.BlockedTime += d
			blocked += d
		} else {
			m.cond.Wait()
		}
		h.waiters--
	}
	if blocked > 0 && m.tracer.Enabled() {
		now := m.clk.Now()
		m.tracer.Complete("lock", "lock.wait", now-blocked,
			trace.AU("txn", uint64(txn)), trace.AU("file", obj.File),
			trace.AI("block", obj.Block), trace.AS("mode", mode.String()))
		m.tracer.Attribute(trace.AttrLock, blocked)
		m.histWait.Observe(blocked)
	}
	delete(m.waitsFor, txn)
	h.set(txn, mode)
	if m.byTxn[txn] == nil {
		//simlint:alloc(one per-transaction lock set, first lock only)
		m.byTxn[txn] = make(map[Object]Mode)
	}
	if prev, ok := m.byTxn[txn][obj]; !ok || prev != mode {
		if !ok {
			m.stats.Acquired++
		}
		m.byTxn[txn][obj] = mode
	}
	return nil
}

// cycleLocked reports whether txn is part of a waits-for cycle. Holder
// relations are implied by waitsFor edges; a cycle exists when following
// edges from txn reaches txn again. The edge lists are sorted slices, so the
// traversal is deterministic without per-node key sorting, and the iterative
// DFS reuses the manager's scratch structures: the check that guards every
// block is allocation-free in the steady state.
//
//simlint:noalloc
func (m *Manager) cycleLocked(start TxnID) bool {
	clear(m.dfsSeen)
	//simlint:alloc(reusable DFS scratch: grows to the deepest waits-for graph once)
	m.dfsStack = append(m.dfsStack[:0], start)
	for len(m.dfsStack) > 0 {
		t := m.dfsStack[len(m.dfsStack)-1]
		m.dfsStack = m.dfsStack[:len(m.dfsStack)-1]
		for _, next := range m.waitsFor[t] {
			if next == start {
				return true
			}
			if !m.dfsSeen[next] {
				m.dfsSeen[next] = true
				//simlint:alloc(reusable DFS scratch: grows to the deepest waits-for graph once)
				m.dfsStack = append(m.dfsStack, next)
			}
		}
	}
	return false
}

// Unlock releases one lock early. Two-phase discipline normally releases
// everything at commit/abort via ReleaseAll; Unlock exists for lock-coupling
// descent in the B-tree layer.
func (m *Manager) Unlock(txn TxnID, obj Object) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.releaseLocked(txn, obj)
	m.wakeLocked()
}

// wakeLocked wakes every waiter on both wait paths. Caller must hold m.mu.
func (m *Manager) wakeLocked() {
	m.cond.Broadcast()
	if m.clk != nil {
		m.simQ.Broadcast(m.clk)
	}
}

func (m *Manager) releaseLocked(txn TxnID, obj Object) {
	if h := m.table[obj]; h != nil {
		h.remove(txn)
		if len(h.holders) == 0 && h.waiters == 0 {
			delete(m.table, obj)
		}
	}
	if s := m.byTxn[txn]; s != nil {
		delete(s, obj)
		if len(s) == 0 {
			delete(m.byTxn, txn)
		}
	}
}

// ReleaseAll releases every lock txn holds (commit or abort: "the kernel
// locates the lock chain for the transaction ... traverses the lock chain,
// releasing locks", §4.3). Locks release in ascending (file, block) order —
// a stable order across runs — and the returned write set, which abort
// processing uses to invalidate dirty buffers, inherits it.
func (m *Manager) ReleaseAll(txn TxnID) []Object {
	m.mu.Lock()
	defer m.mu.Unlock()
	var written []Object
	for _, obj := range detsort.KeysFunc(m.byTxn[txn], compareObject) {
		if m.byTxn[txn][obj] == Write {
			written = append(written, obj)
		}
		if h := m.table[obj]; h != nil {
			h.remove(txn)
			if len(h.holders) == 0 && h.waiters == 0 {
				delete(m.table, obj)
			}
		}
	}
	delete(m.byTxn, txn)
	delete(m.waitsFor, txn)
	m.wakeLocked()
	return written
}

// WriteLocked returns the objects txn holds write locks on, in ascending
// (file, block) order.
func (m *Manager) WriteLocked(txn TxnID) []Object {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Object
	for _, obj := range detsort.KeysFunc(m.byTxn[txn], compareObject) {
		if m.byTxn[txn][obj] == Write {
			out = append(out, obj)
		}
	}
	return out
}
