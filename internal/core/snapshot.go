package core

import (
	"errors"

	"repro/internal/buffer"
	"repro/internal/detsort"
	"repro/internal/lfs"
	"repro/internal/mvcc"
	"repro/internal/pagestore"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// Snapshot errors.
var (
	// ErrSnapshotReadOnly is returned for any write through a snapshot
	// store: snapshot transactions are read-only by contract.
	ErrSnapshotReadOnly = errors.New("core: snapshot transactions are read-only")
	// ErrSnapshotDone is returned for reads through a closed snapshot.
	ErrSnapshotDone = errors.New("core: snapshot already closed")
)

// Snapshot is a read-only multiversion transaction on the embedded system.
// It pins the commit epoch current at BeginSnapshot — the kernel's commit
// point is the commit flush, so the horizon is the number of commit flushes
// completed — and then reads a transaction-consistent image of every
// protected file as of that epoch without acquiring a single page lock.
//
// Where the user-level system rewinds pages with WAL before-images, the
// embedded system has no log of its own: the no-overwrite policy IS the
// version repository. Each commit flush supersedes the previous on-disk
// address of every page it rewrites; the version map remembers those
// addresses, and a snapshot read simply reads the old location. The cleaner
// is fenced off from those segments through the retention adapter below.
type Snapshot struct {
	m      *Manager
	h      int64
	closed bool
}

// BeginSnapshot starts a read-only snapshot transaction pinned at the
// current commit epoch. Transactions whose commit flush has completed are
// visible; committed-but-unflushed (pending group commit) and in-flight
// transactions are not — in this design a transaction's commit point is its
// flush. Snapshots hold no locks and never enter the pending list, so they
// cannot deadlock, block writers, or delay checkpoints.
func (m *Manager) BeginSnapshot() *Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.clock.Advance(m.costs.Syscall + m.costs.TxnOp)
	h := m.commitSeq.Load()
	m.snaps.Pin(h)
	m.stats.Snapshots++
	m.tracer.Instant("txn", "snapshot.begin", trace.AI("epoch", h))
	return &Snapshot{m: m, h: h}
}

// Horizon returns the pinned commit epoch.
func (s *Snapshot) Horizon() int64 { return s.h }

// Close releases the snapshot's pin and prunes every version record no
// remaining snapshot can need, advancing the cleaner's retention horizon.
// Closing twice is a no-op.
func (s *Snapshot) Close() {
	m := s.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	m.snaps.Unpin(s.h)
	oldest, active := m.snaps.Oldest()
	m.vers.Prune(oldest, active)
	m.tracer.Instant("txn", "snapshot.close", trace.AI("epoch", s.h))
}

// Store returns the snapshot's read-only page store for f, so the access
// methods (btree, recno, hashidx) scan old versions unchanged.
func (s *Snapshot) Store(f *File) pagestore.Store {
	ps := s.m.fs.BlockSize()
	st := &snapStore{snap: s, f: f, raBase: -1}
	st.raData = make([]byte, snapReadahead*ps)
	st.raBufs = make([][]byte, snapReadahead)
	for i := range st.raBufs {
		st.raBufs[i] = st.raData[i*ps : (i+1)*ps]
	}
	return st
}

// snapReadahead is the snapshot store's readahead window, in pages.
const snapReadahead = 32

// snapStore is the lock-free read path of an embedded snapshot. It keeps
// the cooperative scheduling point (Yield) of the locking path so scans
// interleave with writers at page granularity, but never touches the lock
// table — no kernel semaphore charge, no blocking, no deadlock exposure.
//
// Cache misses fill a private readahead window with the longest
// physically-contiguous run of committed pages (one seek, one multi-block
// transfer): a scan over data the log has never rewritten runs at
// sequential bandwidth instead of paying a full seek per page, which is
// what keeps a concurrent scan from stealing a page-sized slice of device
// time per row from the writers. Window bytes stay valid for exactly the
// pages the version map has no newer record for — they were fetched while
// this snapshot was pinned, and any later overwrite of a window page would
// have recorded the pre-flush address, diverting the read at use time.
type snapStore struct {
	snap   *Snapshot
	f      *File
	raBase int64 // first page in the readahead window; -1 = empty
	raLen  int   // valid pages in the window
	raData []byte
	raBufs [][]byte
	np     int64 // NumPages, resolved at the first miss (0 = unknown)
}

func (s *snapStore) PageSize() int { return s.f.m.fs.BlockSize() }

func (s *snapStore) NumPages() (int64, error) {
	sz, err := s.f.lf.Size()
	if err != nil {
		return 0, err
	}
	ps := int64(s.PageSize())
	return (sz + ps - 1) / ps, nil
}

// ReadPage reads page n as of the snapshot's epoch.
//
//simlint:noalloc
func (s *snapStore) ReadPage(n int64, p []byte) error {
	if s.snap.closed {
		return ErrSnapshotDone
	}
	m := s.snap.m
	// Scheduling point without a lock-manager call: the scan interleaves
	// but cannot block anyone and nothing can block it.
	m.clock.Yield()
	m.clock.Advance(m.costs.Syscall + checkCost)
	// A version map hit means a commit after the horizon superseded this
	// page: read the retained pre-commit address straight from the log.
	if addr, ok := m.vers.AddrAt(mvcc.PageID{File: uint64(s.f.id), Block: n}, s.snap.h); ok {
		//simlint:alloc(simulated disk I/O below the lookup hot path: device error checks format)
		return m.fs.ReadAddr(addr, p)
	}
	// The current version is the snapshot version. Serve it from the
	// readahead window or the buffer cache — for the cache, only unless the
	// cached copy is on transaction hold (an uncommitted write); the
	// on-disk copy is still the committed image, because held pages are
	// never written ahead of their commit flush.
	ps := s.PageSize()
	if s.raBase >= 0 && n >= s.raBase && n < s.raBase+int64(s.raLen) {
		m.clock.Advance(m.costs.CacheHit)
		off := int(n-s.raBase) * ps
		copy(p, s.raData[off:off+ps])
		return nil
	}
	if b := m.fs.Pool().Lookup(buffer.BlockID{File: s.f.id, Block: n}); b != nil && !b.Held() {
		m.clock.Advance(m.costs.CacheHit)
		copy(p, b.Data)
		return nil
	}
	id := buffer.BlockID{File: s.f.id, Block: n}
	if s.np == 0 {
		np, err := s.NumPages()
		if err != nil {
			return err
		}
		s.np = np
	}
	want := int64(len(s.raBufs))
	if rem := s.np - n; rem < want {
		want = rem
	}
	if want > 1 {
		//simlint:alloc(cache-miss fault path: the multi-block fetch decodes inodes below the lookup hot path)
		k, err := m.fs.ReadCurrentRun(id, s.raBufs[:want])
		if err != nil {
			return err
		}
		if k > 0 {
			s.raBase, s.raLen = n, k
			copy(p, s.raData[:ps])
			return nil
		}
	}
	//simlint:alloc(cache-miss fault path: the inode walk decodes below the lookup hot path)
	return m.fs.ReadCurrent(id, p)
}

func (s *snapStore) WritePage(int64, []byte) error { return ErrSnapshotReadOnly }
func (s *snapStore) AllocPage() (int64, error)     { return 0, ErrSnapshotReadOnly }

// Sync is a no-op: a read-only transaction has nothing to make durable.
func (s *snapStore) Sync() error { return nil }

// capturedAddr is one (page, pre-flush disk address) pair captured ahead of
// a commit flush.
type capturedAddr struct {
	id   buffer.BlockID
	addr int64
}

// capturePreFlushAddrs records, for every page the imminent commit flush
// will rewrite, the disk address it currently occupies — the version a
// snapshot older than this commit must keep reading. Free (and cheap) when
// no snapshot is pinned. The set is the union of the pending transactions'
// write sets and every dirty page of the flushed files (degree-1
// write-through dirties pages outside any transaction's page list, and the
// flush supersedes those too). Caller holds m.mu.
func (m *Manager) capturePreFlushAddrs(fileSet map[vfs.FileID]bool) ([]capturedAddr, error) {
	if !m.snaps.Active() {
		return nil, nil
	}
	seen := make(map[buffer.BlockID]bool)
	for _, t := range m.pending {
		for id := range t.pages {
			seen[id] = true
		}
	}
	pool := m.fs.Pool()
	for _, f := range detsort.Keys(fileSet) {
		for _, b := range pool.DirtyFile(f) {
			seen[b.ID] = true
		}
	}
	capture := make([]capturedAddr, 0, len(seen))
	for _, id := range detsort.KeysFunc(seen, buffer.CompareBlockID) {
		addr, err := m.fs.BlockAddr(id.File, id.Block)
		if err != nil {
			return nil, err
		}
		// addr 0 (a hole: the page never reached disk) is recorded too —
		// at the horizon the page read as zeros, and it must keep doing so.
		capture = append(capture, capturedAddr{id: id, addr: addr})
	}
	return capture, nil
}

// retention adapts the version map and pinned horizons to the LFS cleaner's
// SnapshotRetention interface. The cleaner consults it while a commit flush
// may be in progress under m.mu, so this adapter must never take m.mu: the
// version map and horizon set carry their own locks, and the commit epoch
// is an atomic.
type retention struct {
	m *Manager
}

var _ lfs.SnapshotRetention = (*retention)(nil)

// RetainsRange reports whether any retained version lives in [lo, hi).
func (r *retention) RetainsRange(lo, hi int64) bool {
	return r.m.vers.RetainsRange(lo, hi)
}

// RetainedBlocks returns the number of superseded block versions held for
// pinned snapshots.
func (r *retention) RetainedBlocks() int64 {
	return r.m.vers.RetainedBlocks()
}

// HorizonLag returns how many commit epochs the oldest pinned snapshot
// trails the current epoch (0 when nothing is pinned).
func (r *retention) HorizonLag() int64 {
	oldest, active := r.m.snaps.Oldest()
	if !active {
		return 0
	}
	return r.m.commitSeq.Load() - oldest
}
