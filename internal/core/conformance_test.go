package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/fstest"
	"repro/internal/lfs"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// TestConformance runs the file-system conformance suite through the
// embedded transaction manager's adapter: a transaction-enabled kernel must
// be indistinguishable from a plain one for non-transaction use.
func TestConformance(t *testing.T) {
	fstest.Run(t, "lfs+txn", func(t *testing.T) vfs.FileSystem {
		clk := sim.NewClock()
		dev := disk.New(sim.SmallModel(), clk)
		fsys, err := lfs.Format(dev, clk, lfs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return core.New(fsys, clk, core.Options{}).AsFileSystem()
	})
}
