// Package core implements the paper's primary contribution: a transaction
// manager embedded in the log-structured file system (Figure 3).
//
// Transaction-protection is an attribute of a file; the interface to
// protected files is identical to unprotected ones (open, close, read,
// write) plus three new "system calls" — TxnBegin, TxnCommit, TxnAbort —
// which have no effect on unprotected files. The kernel's buffer cache
// replaces the user-level buffer pool, the kernel scheduler replaces
// user-level process management, and no explicit logging is performed:
//
//   - LFS's no-overwrite policy guarantees before-images (the old versions
//     of updated pages remain in the log until cleaned), and
//   - flushing all dirty pages at commit guarantees after-images.
//
// Therefore the only machinery added to the "kernel" is lock management and
// transaction management (§4): a lock table keyed by (file, block), a
// per-transaction state with its lock chain, per-inode lists of
// transaction-protected buffers (modelled by buffer holds), and group
// commit.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/detsort"
	"repro/internal/lfs"
	"repro/internal/lock"
	"repro/internal/mvcc"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// Errors.
var (
	ErrNoTxn     = errors.New("core: no transaction active for this process")
	ErrTxnActive = errors.New("core: process already has an active transaction")
	ErrDeadlock  = lock.ErrDeadlock
)

// checkCost is the per-access cost non-transaction applications pay on a
// transaction-enabled kernel: "a few instructions in accessing buffers to
// determine that transaction locks are unnecessary" (§5.2).
const checkCost = 500 * time.Nanosecond

// Options configures the embedded transaction manager.
type Options struct {
	// Costs is the CPU cost model (default sim.SpriteCosts()).
	Costs sim.CostModel
	// GroupCommit batches the commit-time flush across this many
	// transactions (default 1 = flush at every commit). Locks are held
	// until the batch flushes (strict two-phase commit), exactly the
	// paper's "the process sleeps ... until sufficiently more
	// transactions have committed to justify the write" (§4.4).
	GroupCommit int
	// Granularity selects page or sub-page locking (default Page, the
	// paper's measured configuration; see Granularity).
	Granularity Granularity
	// Tracer, when non-nil, is wired through the lock table and emits
	// transaction and commit-flush events. The file system's own tracer
	// (disk, cleaner, checkpoint events) is attached separately via
	// lfs.FS.SetTracer. A nil tracer costs nothing.
	Tracer *trace.Tracer
}

// Stats counts transaction-manager activity.
type Stats struct {
	Begun        int64
	Committed    int64
	Aborted      int64
	CommitFlush  int64 // commit-time flush operations (group commits count once)
	PagesFlushed int64 // pages written by commit flushes
	BytesFlushed int64 // whole pages × block size (§4.3's commit cost)
	Deadlocks    int64
	// Snapshots counts read-only snapshot transactions (BeginSnapshot);
	// VersionsRecorded counts superseded page addresses captured into the
	// version map while snapshots were pinned.
	Snapshots        int64
	VersionsRecorded int64
}

// Manager is the embedded transaction manager: the paper's additions to the
// file system state (lock table pointer) and the transaction subsystem.
type Manager struct {
	mu     sync.Mutex
	fs     *lfs.FS
	clock  *sim.Clock
	costs  sim.CostModel
	locks  *lock.Manager
	opts   Options
	tracer *trace.Tracer // from Options.Tracer; nil = tracing off
	// Metric handles resolved at construction; nil handles are free.
	ctrCommits, ctrAborts, ctrFlushes *trace.Counter
	histLatency                       *trace.Hist

	nextTxn uint64
	// heldBy refcounts buffer holds across active and pending-commit
	// transactions.
	heldBy map[buffer.BlockID]int
	// pending are committed transactions awaiting the group-commit flush.
	pending []*Txn
	stats   Stats

	// Snapshot (multiversion read) support. commitSeq is the durable commit
	// epoch — one increment per commit flush; snapshots pin it as their
	// horizon. vers maps (page, epoch) to the superseded on-disk address the
	// no-overwrite log still holds; snaps refcounts the pinned horizons.
	// The retention adapter handed to the LFS cleaner reads vers and snaps
	// directly (they carry their own locks) so the cleaner can consult it
	// mid-flush without touching m.mu.
	commitSeq atomic.Int64
	vers      *mvcc.AddrMap
	snaps     *mvcc.Horizons
}

// New attaches a transaction manager to a mounted log-structured file
// system.
func New(fsys *lfs.FS, clock *sim.Clock, opts Options) *Manager {
	if opts.Costs == (sim.CostModel{}) {
		opts.Costs = sim.SpriteCosts()
	}
	if opts.GroupCommit < 1 {
		opts.GroupCommit = 1
	}
	m := &Manager{
		fs:     fsys,
		clock:  clock,
		costs:  opts.Costs,
		locks:  lock.NewManager(),
		opts:   opts,
		tracer: opts.Tracer,
		heldBy: make(map[buffer.BlockID]int),
		vers:   mvcc.NewAddrMap(),
		snaps:  mvcc.NewHorizons(),
	}
	fsys.SetSnapshotRetention(&retention{m: m})
	m.ctrCommits = opts.Tracer.Counter("txn.commits")
	m.ctrAborts = opts.Tracer.Counter("txn.aborts")
	m.ctrFlushes = opts.Tracer.Counter("core.commitFlushes")
	m.histLatency = opts.Tracer.Hist("txn.latency")
	m.locks.SetClock(clock)
	m.locks.SetTracer(opts.Tracer)
	clock.OnStall(m.groupCommitStall)
	return m
}

// FS returns the underlying file system.
func (m *Manager) FS() *lfs.FS { return m.fs }

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// LockStats exposes the lock table counters.
func (m *Manager) LockStats() lock.Stats { return m.locks.Stats() }

// Protect turns transaction-protection on for a file — the paper's
// "provided utility".
func (m *Manager) Protect(path string) error {
	return m.fs.SetTxnProtected(path, true)
}

// Unprotect turns transaction-protection off.
func (m *Manager) Unprotect(path string) error {
	return m.fs.SetTxnProtected(path, false)
}

// Process models the per-process state the paper extends with a pointer to
// the transaction state: each process has at most one active transaction
// (implementation restriction 4), and transactions may not span processes
// (restriction 3).
type Process struct {
	m   *Manager
	txn *Txn
}

// NewProcess creates a process context.
func (m *Manager) NewProcess() *Process { return &Process{m: m} }

// Txn is the per-transaction state: status, the lock chain (kept in the
// lock manager, traversable by transaction), the transaction identifier,
// and the pages the transaction dirtied (the per-inode transaction buffer
// lists, §4.1).
type Txn struct {
	id     uint64
	proc   *Process
	pages  map[buffer.BlockID]bool
	files  map[vfs.FileID]bool
	status txnStatus
	start  time.Duration // simulated begin time, for the whole-txn trace span
	// undo holds byte-range before-images, used only under SubPage
	// locking (a shared page cannot simply be invalidated on abort).
	undo []undoRange
}

type txnStatus uint8

const (
	txnRunning txnStatus = iota
	txnCommitting
	txnDone
)

// ID returns the transaction identifier.
func (t *Txn) ID() uint64 { return t.id }

// TxnBegin starts a transaction for the process (the txn_begin system
// call): allocate/initialize the transaction state, assign the next
// transaction identifier, initialize the lock list.
func (p *Process) TxnBegin() error {
	if p.txn != nil && p.txn.status == txnRunning {
		return ErrTxnActive
	}
	m := p.m
	m.mu.Lock()
	defer m.mu.Unlock()
	start := m.clock.Now()
	m.clock.Advance(m.costs.Syscall + m.costs.TxnOp)
	m.nextTxn++
	p.txn = &Txn{
		id:    m.nextTxn,
		proc:  p,
		pages: make(map[buffer.BlockID]bool),
		files: make(map[vfs.FileID]bool),
		start: start,
	}
	m.stats.Begun++
	m.tracer.Instant("txn", "txn.begin", trace.AU("txn", p.txn.id))
	return nil
}

// TxnCommit commits the process's transaction (txn_commit): move the dirty
// buffers from the inode's transaction list to its dirty list and, when the
// group-commit batch has filled, flush them to disk and release locks. A
// pending transaction keeps its locks until the flush — the kernel design
// never writes uncommitted pages, so it cannot release early the way the
// user-level log manager can — which is why a conflicting lock request
// (lockObject) or the scheduler's stall hook flushes the batch instead of
// letting requesters queue behind a parked committer.
func (p *Process) TxnCommit() error {
	if p.txn == nil || p.txn.status != txnRunning {
		return ErrNoTxn
	}
	m := p.m
	m.mu.Lock()
	defer m.mu.Unlock()
	m.clock.Advance(m.costs.Syscall + m.costs.TxnOp)
	t := p.txn
	t.status = txnCommitting
	m.pending = append(m.pending, t)
	if len(m.pending) >= m.opts.GroupCommit {
		if err := m.flushPendingLocked(); err != nil {
			return err
		}
	}
	p.txn = nil
	if m.tracer.Enabled() {
		// The span closes when txn_commit returns to the process; a pending
		// transaction's durability arrives later with the batch flush.
		m.tracer.Complete("txn", "txn", t.start, trace.AU("txn", t.id), trace.AS("outcome", "commit"))
		m.histLatency.Observe(m.clock.Now() - t.start)
		m.ctrCommits.Add(1)
	}
	return nil
}

// groupCommitStall is the scheduler's stall hook: every runnable client is
// blocked, and what blocks them is (transitively) a lock held by a pending
// committed transaction. Flush the batch — the discrete-event analogue of
// the group-commit timeout — releasing those locks and waking the waiters.
func (m *Manager) groupCommitStall() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.pending) == 0 {
		return false
	}
	if err := m.flushPendingLocked(); err != nil {
		// A failed flush made no progress: no locks were released, so no
		// waiter can ever run to receive the error, and reporting progress
		// would turn it into a misleading "scheduler stalled" panic. Fail
		// loudly with the real cause instead.
		panic(fmt.Sprintf("core: group-commit flush from stall hook failed: %v", err))
	}
	return true
}

// flushPendingLocked performs the (group) commit flush: force every pending
// transaction's buffers to the log in one partial-segment stream, then
// release the holds and all pending locks. The holds are released only
// AFTER the flush succeeds: the flush itself gathers held pages explicitly
// (FlushFiles), and any cleaner pass the flush triggers on entry still sees
// the pages as held — so it relocates the on-disk before-images instead of
// stealing the uncommitted contents into the log ahead of the commit record.
//
//simlint:alloc(per-batch flush: group commit amortizes its bookkeeping over the batch, not per page access)
func (m *Manager) flushPendingLocked() error {
	if len(m.pending) == 0 {
		return nil
	}
	span := m.tracer.Begin("txn", "core.commitFlush")
	pool := m.fs.Pool()
	fileSet := make(map[vfs.FileID]bool)
	pages := 0
	for _, t := range m.pending {
		pages += len(t.pages)
		for f := range t.files {
			fileSet[f] = true
		}
	}
	// With a snapshot pinned, capture the pre-flush disk address of every
	// page this batch rewrites: the flush supersedes those addresses, but
	// the no-overwrite log keeps their contents — exactly the versions a
	// snapshot older than this commit must keep reading.
	capture, err := m.capturePreFlushAddrs(fileSet)
	if err != nil {
		return err
	}
	if err := m.fs.FlushFiles(detsort.Keys(fileSet)); err != nil {
		return err
	}
	epoch := m.commitSeq.Add(1)
	for _, c := range capture {
		m.vers.Record(mvcc.PageID{File: uint64(c.id.File), Block: c.id.Block}, epoch, c.addr)
		m.stats.VersionsRecorded++
	}
	for _, t := range m.pending {
		for id := range t.pages {
			m.heldBy[id]--
			if m.heldBy[id] == 0 {
				delete(m.heldBy, id)
				if b := pool.Lookup(id); b != nil {
					pool.SetHold(b, false)
				}
			}
		}
	}
	for _, t := range m.pending {
		m.locks.ReleaseAll(lock.TxnID(t.id))
		m.clock.Advance(m.costs.KernelSync())
		t.status = txnDone
		m.stats.Committed++
	}
	m.stats.CommitFlush++
	m.stats.PagesFlushed += int64(pages)
	m.stats.BytesFlushed += int64(pages) * int64(m.fs.BlockSize())
	if m.tracer.Enabled() {
		span.End(trace.AI("txns", int64(len(m.pending))), trace.AI("pages", int64(pages)))
		m.ctrFlushes.Add(1)
	}
	m.pending = m.pending[:0]
	return nil
}

// Flush forces any pending group commit immediately (the timeout arm of
// §4.4's group commit).
func (m *Manager) Flush() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.flushPendingLocked()
}

// TxnAbort aborts the process's transaction (txn_abort): locate the lock
// chain, release locks, and invalidate any dirty buffers associated with
// them. The on-disk before-images — preserved by the no-overwrite policy —
// become current again automatically, because the inode never learned about
// the aborted pages.
func (p *Process) TxnAbort() error {
	if p.txn == nil || p.txn.status != txnRunning {
		return ErrNoTxn
	}
	m := p.m
	m.mu.Lock()
	defer m.mu.Unlock()
	m.clock.Advance(m.costs.Syscall + m.costs.TxnOp)
	t := p.txn
	pool := m.fs.Pool()
	if m.opts.Granularity == SubPage {
		// Restore the written byte ranges in place; pages may carry other
		// transactions' not-yet-flushed committed bytes and must survive.
		if err := m.applyUndoLocked(t); err != nil {
			return err
		}
	}
	for _, id := range detsort.KeysFunc(t.pages, buffer.CompareBlockID) {
		m.heldBy[id]--
		if m.heldBy[id] == 0 {
			delete(m.heldBy, id)
			if b := pool.Lookup(id); b != nil {
				pool.SetHold(b, false)
			}
			if m.opts.Granularity == Page {
				if err := pool.Invalidate(id); err != nil {
					return fmt.Errorf("core: abort invalidate %v: %w", id, err)
				}
			}
		}
	}
	m.locks.ReleaseAll(lock.TxnID(t.id))
	m.clock.Advance(m.costs.KernelSync())
	t.status = txnDone
	p.txn = nil
	m.stats.Aborted++
	if m.tracer.Enabled() {
		m.tracer.Complete("txn", "txn", t.start, trace.AU("txn", t.id), trace.AS("outcome", "abort"))
		m.ctrAborts.Add(1)
	}
	return nil
}

// abortOnDeadlock is invoked when a lock request deadlocks: the transaction
// is aborted and the error surfaced to the caller.
// abortOnDeadlock rolls back the deadlock victim's transaction.
//
//simlint:alloc(cold deadlock victim path: the rollback allocates by design)
func (p *Process) abortOnDeadlock() {
	p.m.mu.Lock()
	p.m.stats.Deadlocks++
	p.m.mu.Unlock()
	p.m.locks.NoteDeadlockAbort()
	_ = p.TxnAbort()
}

// InTxn reports whether the process has an active transaction.
func (p *Process) InTxn() bool { return p.txn != nil && p.txn.status == txnRunning }
