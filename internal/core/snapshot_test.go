package core

import (
	"bytes"
	"errors"
	"testing"
)

// txnWrite runs one write transaction through to its commit flush (group
// commit 1 in these rigs, so TxnCommit is the commit point).
func txnWrite(t *testing.T, r *rig, f *File, data []byte, off int64) {
	t.Helper()
	p := r.m.NewProcess()
	if err := p.TxnBegin(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(f, data, off); err != nil {
		t.Fatal(err)
	}
	if err := p.TxnCommit(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotSeesPreCommitImage: a snapshot pinned before a committing
// writer keeps reading the superseded version from the no-overwrite log,
// rejects writes, and a snapshot opened after the commit sees the new bytes.
func TestSnapshotSeesPreCommitImage(t *testing.T) {
	r := newRig(t, Options{})
	ps := r.fs.BlockSize()
	old := pat(ps, 1)
	f := r.mkProtected(t, "/acct", old)

	snap := r.m.BeginSnapshot()
	defer snap.Close()

	next := pat(ps, 99)
	txnWrite(t, r, f, next, 0)

	got := make([]byte, ps)
	if err := snap.Store(f).ReadPage(0, got); err != nil {
		t.Fatalf("snapshot read: %v", err)
	}
	if !bytes.Equal(got, old) {
		t.Fatal("snapshot read returned post-commit bytes")
	}
	if err := snap.Store(f).WritePage(0, next); !errors.Is(err, ErrSnapshotReadOnly) {
		t.Fatalf("snapshot write: got %v, want ErrSnapshotReadOnly", err)
	}
	if _, err := snap.Store(f).AllocPage(); !errors.Is(err, ErrSnapshotReadOnly) {
		t.Fatalf("snapshot alloc: got %v, want ErrSnapshotReadOnly", err)
	}

	after := r.m.BeginSnapshot()
	defer after.Close()
	if err := after.Store(f).ReadPage(0, got); err != nil {
		t.Fatalf("post-commit snapshot read: %v", err)
	}
	if !bytes.Equal(got, next) {
		t.Fatal("snapshot pinned after the commit should see the new bytes")
	}

	snap.Close()
	if err := snap.Store(f).ReadPage(0, got); !errors.Is(err, ErrSnapshotDone) {
		t.Fatalf("read through closed snapshot: got %v, want ErrSnapshotDone", err)
	}
}

// TestSnapshotHorizonAdvance: the cleaner's retention horizon must hold
// while any snapshot pins superseded versions and advance exactly when the
// last pinning snapshot closes — not at the first close, and not later.
func TestSnapshotHorizonAdvance(t *testing.T) {
	r := newRig(t, Options{})
	ps := r.fs.BlockSize()
	f := r.mkProtected(t, "/acct", pat(4*ps, 1))
	ret := &retention{m: r.m}

	if ret.RetainedBlocks() != 0 || ret.HorizonLag() != 0 {
		t.Fatalf("idle retention not empty: %d blocks, lag %d", ret.RetainedBlocks(), ret.HorizonLag())
	}

	s1 := r.m.BeginSnapshot()
	s2 := r.m.BeginSnapshot()
	for i := 0; i < 3; i++ {
		txnWrite(t, r, f, pat(ps, byte(40+i)), int64(i)*int64(ps))
	}

	if got := ret.RetainedBlocks(); got == 0 {
		t.Fatal("commits over a pinned snapshot retained no versions")
	}
	if got := ret.HorizonLag(); got != 3 {
		t.Fatalf("horizon lag after 3 commit flushes = %d, want 3", got)
	}
	if !ret.RetainsRange(0, 1<<62) {
		t.Fatal("retention claims no version lives anywhere on the device")
	}

	// First close: s1 still pins the same horizon, nothing may be released.
	held := ret.RetainedBlocks()
	s2.Close()
	if got := ret.RetainedBlocks(); got != held {
		t.Fatalf("closing the newer of two equal-horizon snapshots released versions: %d -> %d", held, got)
	}
	if ret.HorizonLag() != 3 {
		t.Fatalf("horizon moved while a snapshot is still pinned: lag %d", ret.HorizonLag())
	}

	// Last close: everything releases at once.
	s1.Close()
	if got := ret.RetainedBlocks(); got != 0 {
		t.Fatalf("last close left %d retained blocks", got)
	}
	if got := ret.HorizonLag(); got != 0 {
		t.Fatalf("last close left horizon lag %d", got)
	}
	if ret.RetainsRange(0, 1<<62) {
		t.Fatal("retention still claims live versions after the last close")
	}
}
