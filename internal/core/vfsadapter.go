package core

import (
	"repro/internal/vfs"
)

// FSAdapter presents the transaction-enabled kernel as an ordinary
// vfs.FileSystem: every call goes through a Process, paying exactly the
// costs a non-transaction application pays on a kernel with embedded
// transaction support. Running the same workload on a plain lfs.FS and on
// this adapter is the paper's Figure 5 comparison ("non-transaction
// applications pay only a few instructions in accessing buffers to
// determine that transaction locks are unnecessary").
type FSAdapter struct {
	m    *Manager
	proc *Process
}

var _ vfs.FileSystem = (*FSAdapter)(nil)

// AsFileSystem wraps the manager's file system for non-transaction use.
func (m *Manager) AsFileSystem() *FSAdapter {
	return &FSAdapter{m: m, proc: m.NewProcess()}
}

// Name implements vfs.FileSystem.
func (a *FSAdapter) Name() string { return "lfs+txn" }

// BlockSize implements vfs.FileSystem.
func (a *FSAdapter) BlockSize() int { return a.m.fs.BlockSize() }

// Create implements vfs.FileSystem.
func (a *FSAdapter) Create(path string) (vfs.File, error) {
	f, err := a.m.Create(path)
	if err != nil {
		return nil, err
	}
	return &adapterFile{a: a, f: f}, nil
}

// Open implements vfs.FileSystem.
func (a *FSAdapter) Open(path string) (vfs.File, error) {
	f, err := a.m.Open(path)
	if err != nil {
		return nil, err
	}
	return &adapterFile{a: a, f: f}, nil
}

// Remove implements vfs.FileSystem.
func (a *FSAdapter) Remove(path string) error { return a.m.fs.Remove(path) }

// Mkdir implements vfs.FileSystem.
func (a *FSAdapter) Mkdir(path string) error { return a.m.fs.Mkdir(path) }

// ReadDir implements vfs.FileSystem.
func (a *FSAdapter) ReadDir(path string) ([]vfs.DirEntry, error) { return a.m.fs.ReadDir(path) }

// Stat implements vfs.FileSystem.
func (a *FSAdapter) Stat(path string) (vfs.FileInfo, error) { return a.m.fs.Stat(path) }

// Rename implements vfs.FileSystem.
func (a *FSAdapter) Rename(oldPath, newPath string) error { return a.m.fs.Rename(oldPath, newPath) }

// Sync implements vfs.FileSystem.
func (a *FSAdapter) Sync() error { return a.m.fs.Sync() }

// adapterFile routes reads and writes through the process (and therefore
// through the kernel transaction manager's lock-necessity check).
type adapterFile struct {
	a *FSAdapter
	f *File
}

var _ vfs.File = (*adapterFile)(nil)

func (af *adapterFile) ID() vfs.FileID { return af.f.ID() }

func (af *adapterFile) ReadAt(p []byte, off int64) (int, error) {
	return af.a.proc.Read(af.f, p, off)
}

func (af *adapterFile) WriteAt(p []byte, off int64) (int, error) {
	return af.a.proc.Write(af.f, p, off)
}

func (af *adapterFile) Size() (int64, error) { return af.f.Size() }

func (af *adapterFile) Truncate(size int64) error { return af.f.Truncate(size) }

func (af *adapterFile) Sync() error { return af.f.Sync() }

func (af *adapterFile) Close() error { return af.f.Close() }
