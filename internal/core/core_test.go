package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/btree"
	"repro/internal/disk"
	"repro/internal/lfs"
	"repro/internal/lock"
	"repro/internal/sim"
)

type rig struct {
	clk *sim.Clock
	dev *disk.Device
	fs  *lfs.FS
	m   *Manager
}

func newRig(t *testing.T, opts Options) *rig {
	t.Helper()
	clk := sim.NewClock()
	dev := disk.New(sim.SmallModel(), clk)
	fsys, err := lfs.Format(dev, clk, lfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{clk: clk, dev: dev, fs: fsys, m: New(fsys, clk, opts)}
}

// mkProtected creates a transaction-protected file with initial contents.
func (r *rig) mkProtected(t *testing.T, path string, data []byte) *File {
	t.Helper()
	f, err := r.m.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	p := r.m.NewProcess()
	if len(data) > 0 {
		if _, err := p.Write(f, data, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.m.Protect(path); err != nil {
		t.Fatal(err)
	}
	if err := r.fs.Sync(); err != nil { // durable setup
		t.Fatal(err)
	}
	return f
}

func pat(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*3 + seed
	}
	return b
}

func TestCommitMakesDataVisible(t *testing.T) {
	r := newRig(t, Options{})
	f := r.mkProtected(t, "/db", pat(8192, 1))
	p := r.m.NewProcess()
	if err := p.TxnBegin(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(f, pat(4096, 2), 0); err != nil {
		t.Fatal(err)
	}
	if err := p.TxnCommit(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if _, err := p.Read(f, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pat(4096, 2)) {
		t.Fatal("committed data not visible")
	}
}

func TestAbortRestoresBeforeImage(t *testing.T) {
	r := newRig(t, Options{})
	f := r.mkProtected(t, "/db", pat(8192, 1))
	p := r.m.NewProcess()
	p.TxnBegin()
	if _, err := p.Write(f, pat(4096, 9), 4096); err != nil {
		t.Fatal(err)
	}
	// Mid-transaction, the process sees its own write.
	got := make([]byte, 4096)
	p.Read(f, got, 4096)
	if !bytes.Equal(got, pat(4096, 9)) {
		t.Fatal("transaction should see its own writes")
	}
	if err := p.TxnAbort(); err != nil {
		t.Fatal(err)
	}
	// After abort the no-overwrite before-image is current again.
	if _, err := p.Read(f, got, 4096); err != nil {
		t.Fatal(err)
	}
	want := pat(8192, 1)[4096:]
	if !bytes.Equal(got, want) {
		t.Fatal("abort did not restore the before-image")
	}
}

func TestAbortPartialPageWrite(t *testing.T) {
	r := newRig(t, Options{})
	f := r.mkProtected(t, "/db", pat(4096, 1))
	p := r.m.NewProcess()
	p.TxnBegin()
	if _, err := p.Write(f, []byte("XXXX"), 100); err != nil {
		t.Fatal(err)
	}
	p.TxnAbort()
	got := make([]byte, 4096)
	p.Read(f, got, 0)
	if !bytes.Equal(got, pat(4096, 1)) {
		t.Fatal("partial-page abort failed")
	}
}

func TestCommitDurableAcrossCrash(t *testing.T) {
	r := newRig(t, Options{})
	f := r.mkProtected(t, "/db", pat(8192, 1))
	p := r.m.NewProcess()
	p.TxnBegin()
	p.Write(f, pat(4096, 5), 0)
	if err := p.TxnCommit(); err != nil {
		t.Fatal(err)
	}
	// Crash WITHOUT any file-system sync: the commit flush alone must have
	// made the data recoverable (single recovery paradigm — LFS
	// roll-forward).
	fs2, err := lfs.Mount(r.dev, r.clk, lfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := fs2.Open("/db")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if _, err := g.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pat(4096, 5)) {
		t.Fatal("committed data lost in crash")
	}
}

func TestUncommittedLostAtCrash(t *testing.T) {
	r := newRig(t, Options{})
	f := r.mkProtected(t, "/db", pat(8192, 1))
	p := r.m.NewProcess()
	p.TxnBegin()
	p.Write(f, pat(4096, 7), 0)
	// Force everything the file system is willing to write: held buffers
	// must stay behind.
	if err := r.fs.Flush(); err != nil {
		t.Fatal(err)
	}
	// Crash with the transaction still active.
	fs2, err := lfs.Mount(r.dev, r.clk, lfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := fs2.Open("/db")
	got := make([]byte, 4096)
	g.ReadAt(got, 0)
	if !bytes.Equal(got, pat(8192, 1)[:4096]) {
		t.Fatal("uncommitted data leaked to disk")
	}
}

func TestOneTxnPerProcess(t *testing.T) {
	r := newRig(t, Options{})
	p := r.m.NewProcess()
	if err := p.TxnBegin(); err != nil {
		t.Fatal(err)
	}
	if err := p.TxnBegin(); !errors.Is(err, ErrTxnActive) {
		t.Fatalf("got %v, want ErrTxnActive (restriction 4)", err)
	}
	if err := p.TxnCommit(); err != nil {
		t.Fatal(err)
	}
	if err := p.TxnCommit(); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("got %v, want ErrNoTxn", err)
	}
}

func TestTxnSyscallsNoEffectOnUnprotected(t *testing.T) {
	r := newRig(t, Options{})
	f, err := r.m.Create("/plain")
	if err != nil {
		t.Fatal(err)
	}
	p := r.m.NewProcess()
	p.TxnBegin()
	p.Write(f, pat(4096, 3), 0)
	p.TxnAbort()
	// The abort must NOT roll back writes to unprotected files.
	got := make([]byte, 4096)
	p.Read(f, got, 0)
	if !bytes.Equal(got, pat(4096, 3)) {
		t.Fatal("abort affected an unprotected file")
	}
	if r.m.LockStats().Acquired != 0 {
		t.Fatal("unprotected access should acquire no locks")
	}
}

func TestIsolationBetweenProcesses(t *testing.T) {
	r := newRig(t, Options{})
	f := r.mkProtected(t, "/db", pat(8192, 1))
	p1 := r.m.NewProcess()
	p1.TxnBegin()
	if _, err := p1.Write(f, pat(4096, 9), 0); err != nil {
		t.Fatal(err)
	}
	// A second process trying to read the locked page blocks until p1
	// finishes ("the process is descheduled and left sleeping").
	p2 := r.m.NewProcess()
	p2.TxnBegin()
	readDone := make(chan []byte)
	go func() {
		buf := make([]byte, 4096)
		if _, err := p2.Read(f, buf, 0); err != nil {
			t.Error(err)
		}
		readDone <- buf
	}()
	select {
	case <-readDone:
		t.Fatal("read should block on p1's write lock")
	default:
	}
	if err := p1.TxnCommit(); err != nil {
		t.Fatal(err)
	}
	got := <-readDone
	if !bytes.Equal(got, pat(4096, 9)) {
		t.Fatal("p2 should see committed data after unblock")
	}
	p2.TxnCommit()
}

func TestDeadlockAbortsTransaction(t *testing.T) {
	r := newRig(t, Options{})
	f := r.mkProtected(t, "/db", pat(12288, 1))
	p1 := r.m.NewProcess()
	p2 := r.m.NewProcess()
	p1.TxnBegin()
	p2.TxnBegin()
	if _, err := p1.Write(f, []byte("a"), 0); err != nil { // page 0
		t.Fatal(err)
	}
	if _, err := p2.Write(f, []byte("b"), 4096); err != nil { // page 1
		t.Fatal(err)
	}
	errs := make(chan error, 1)
	go func() {
		_, err := p1.Write(f, []byte("c"), 4096) // blocks on p2
		errs <- err
	}()
	_, err2 := p2.Write(f, []byte("d"), 0) // closes the cycle
	err1 := <-errs
	if (err1 == nil) == (err2 == nil) {
		t.Fatalf("exactly one transaction should deadlock: %v / %v", err1, err2)
	}
	if r.m.Stats().Deadlocks != 1 {
		t.Fatalf("Deadlocks = %d", r.m.Stats().Deadlocks)
	}
	// The victim was auto-aborted; the survivor can finish.
	if err1 == nil {
		if err := p1.TxnCommit(); err != nil {
			t.Fatal(err)
		}
		if p2.InTxn() {
			t.Fatal("victim should have been aborted")
		}
	} else {
		if err := p2.TxnCommit(); err != nil {
			t.Fatal(err)
		}
		if p1.InTxn() {
			t.Fatal("victim should have been aborted")
		}
	}
}

func TestGroupCommitBatchesFlushes(t *testing.T) {
	r := newRig(t, Options{GroupCommit: 4})
	f := r.mkProtected(t, "/db", pat(64*4096, 1))
	for i := 0; i < 8; i++ {
		p := r.m.NewProcess()
		p.TxnBegin()
		if _, err := p.Write(f, pat(100, byte(i)), int64(i)*4096); err != nil {
			t.Fatal(err)
		}
		if err := p.TxnCommit(); err != nil {
			t.Fatal(err)
		}
	}
	st := r.m.Stats()
	if st.CommitFlush != 2 {
		t.Fatalf("CommitFlush = %d, want 2 (8 commits / batch 4)", st.CommitFlush)
	}
	if st.Committed != 8 {
		t.Fatalf("Committed = %d", st.Committed)
	}
}

func TestGroupCommitConflictFlushesEarly(t *testing.T) {
	r := newRig(t, Options{GroupCommit: 10})
	f := r.mkProtected(t, "/db", pat(8192, 1))
	p1 := r.m.NewProcess()
	p1.TxnBegin()
	p1.Write(f, pat(100, 2), 0)
	if err := p1.TxnCommit(); err != nil {
		t.Fatal(err)
	}
	// p1 is pending (locks still held). p2 touching the same page must
	// trigger the pending flush rather than sleeping forever.
	p2 := r.m.NewProcess()
	p2.TxnBegin()
	if _, err := p2.Write(f, pat(100, 3), 0); err != nil {
		t.Fatal(err)
	}
	if err := p2.TxnCommit(); err != nil {
		t.Fatal(err)
	}
	if err := r.m.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := r.m.Stats().Committed; got != 2 {
		t.Fatalf("Committed = %d", got)
	}
}

func TestFlushDrainsPending(t *testing.T) {
	r := newRig(t, Options{GroupCommit: 100})
	f := r.mkProtected(t, "/db", pat(4096, 1))
	p := r.m.NewProcess()
	p.TxnBegin()
	p.Write(f, pat(100, 2), 0)
	if err := p.TxnCommit(); err != nil {
		t.Fatal(err)
	}
	if r.m.Stats().Committed != 0 {
		t.Fatal("commit should be pending, not complete")
	}
	if err := r.m.Flush(); err != nil {
		t.Fatal(err)
	}
	if r.m.Stats().Committed != 1 {
		t.Fatal("Flush should complete the pending commit")
	}
}

func TestWholePageCommitBytes(t *testing.T) {
	// §4.3: "in the case where only part of a page is modified, the entire
	// page still gets written to disk at commit."
	r := newRig(t, Options{})
	f := r.mkProtected(t, "/db", pat(4096, 1))
	p := r.m.NewProcess()
	p.TxnBegin()
	p.Write(f, []byte("xy"), 10) // 2 bytes
	p.TxnCommit()
	st := r.m.Stats()
	if st.BytesFlushed != 4096 {
		t.Fatalf("BytesFlushed = %d, want one whole page (4096)", st.BytesFlushed)
	}
}

func TestBtreeOnEmbeddedStore(t *testing.T) {
	r := newRig(t, Options{})
	f, err := r.m.Create("/tree")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.m.Protect("/tree"); err != nil {
		t.Fatal(err)
	}
	p := r.m.NewProcess()
	p.TxnBegin()
	tr, err := btree.Create(NewStore(p, f))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("key%03d", i)), []byte(fmt.Sprintf("val%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.TxnCommit(); err != nil {
		t.Fatal(err)
	}

	// Abort a batch of updates: the tree reverts.
	p.TxnBegin()
	tr2, err := btree.Open(NewStore(p, f))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tr2.Put([]byte(fmt.Sprintf("key%03d", i)), []byte("CLOBBERED"))
	}
	p.TxnAbort()

	p.TxnBegin()
	tr3, err := btree.Open(NewStore(p, f))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		v, err := tr3.Get([]byte(fmt.Sprintf("key%03d", i)))
		if err != nil || string(v) != fmt.Sprintf("val%03d", i) {
			t.Fatalf("key%03d = %q, %v after abort", i, v, err)
		}
	}
	p.TxnCommit()
}

func TestSimulatedTimeCharged(t *testing.T) {
	r := newRig(t, Options{})
	f := r.mkProtected(t, "/db", pat(4096, 1))
	before := r.clk.Now()
	p := r.m.NewProcess()
	p.TxnBegin()
	p.Write(f, pat(100, 2), 0)
	p.TxnCommit()
	if r.clk.Now() <= before {
		t.Fatal("transaction must consume simulated time")
	}
}

func TestDegreeOneAccessOutsideTxn(t *testing.T) {
	r := newRig(t, Options{})
	f := r.mkProtected(t, "/db", pat(4096, 1))
	p := r.m.NewProcess()
	// No TxnBegin: access still works, with per-call locking.
	if _, err := p.Write(f, []byte("solo"), 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if _, err := p.Read(f, got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "solo" {
		t.Fatal("degree-1 write lost")
	}
	// Nothing is left locked.
	if r.m.locks.HeldCount(lock.TxnID(1)) != 0 {
		t.Fatal("degree-1 access leaked locks")
	}
}

// TestCommitDurableInIndirectRange crashes right after committing writes in
// the file's indirect-pointer range. Commit forces defer the pointer blocks
// (they stay dirty in memory), so recovery must rebuild the pointers from
// the partial segments' summary entries — the roll-forward pointer replay.
func TestCommitDurableInIndirectRange(t *testing.T) {
	r := newRig(t, Options{})
	// 80 pages: well past the 12 direct pointers.
	f := r.mkProtected(t, "/big", pat(80*4096, 1))
	p := r.m.NewProcess()
	p.TxnBegin()
	// Touch direct, single-indirect ranges in one transaction.
	if _, err := p.Write(f, []byte("DIRECT--"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(f, []byte("INDIRECT"), 50*4096); err != nil {
		t.Fatal(err)
	}
	if err := p.TxnCommit(); err != nil {
		t.Fatal(err)
	}
	// Crash without ever flushing the pointer blocks.
	fs2, err := lfs.Mount(r.dev, r.clk, lfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := fs2.Open("/big")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := g.ReadAt(buf, 0); err != nil || string(buf) != "DIRECT--" {
		t.Fatalf("direct-range data lost: %q %v", buf, err)
	}
	if _, err := g.ReadAt(buf, 50*4096); err != nil || string(buf) != "INDIRECT" {
		t.Fatalf("indirect-range data lost (pointer replay broken): %q %v", buf, err)
	}
	// The rest of the file is untouched.
	if _, err := g.ReadAt(buf, 70*4096); err != nil {
		t.Fatal(err)
	}
	want := pat(80*4096, 1)[70*4096 : 70*4096+8]
	if !bytes.Equal(buf, want) {
		t.Fatal("unrelated data corrupted by recovery")
	}
}

// TestConcurrentProcessesStress drives several goroutine "processes" through
// conflicting transactions with deadlock-retry, then checks that the final
// balance matches the successful transfer count (run with -race to exercise
// the locking paths).
func TestConcurrentProcessesStress(t *testing.T) {
	r := newRig(t, Options{})
	f := r.mkProtected(t, "/counter", pat(4096, 0))
	// Balance starts at 0 in the first 8 bytes.
	p0 := r.m.NewProcess()
	zero := make([]byte, 8)
	p0.TxnBegin()
	p0.Write(f, zero, 0)
	p0.TxnCommit()

	const workers = 6
	const perWorker = 15
	var wg sync.WaitGroup
	var succeeded int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			p := r.m.NewProcess()
			for i := 0; i < perWorker; i++ {
				for attempt := 0; attempt < 20; attempt++ {
					if err := p.TxnBegin(); err != nil {
						t.Error(err)
						return
					}
					buf := make([]byte, 8)
					if _, err := p.Read(f, buf, 0); err != nil {
						p.TxnAbort()
						continue // deadlock victim: retry
					}
					v := int64(binary.LittleEndian.Uint64(buf))
					binary.LittleEndian.PutUint64(buf, uint64(v+1))
					if _, err := p.Write(f, buf, 0); err != nil {
						if p.InTxn() {
							p.TxnAbort()
						}
						continue
					}
					if err := p.TxnCommit(); err != nil {
						t.Error(err)
						return
					}
					atomic.AddInt64(&succeeded, 1)
					break
				}
			}
		}(int64(w))
	}
	wg.Wait()
	check := r.m.NewProcess()
	buf := make([]byte, 8)
	if _, err := check.Read(f, buf, 0); err != nil {
		t.Fatal(err)
	}
	final := int64(binary.LittleEndian.Uint64(buf))
	if final != atomic.LoadInt64(&succeeded) {
		t.Fatalf("counter = %d, want %d (lost updates!)", final, succeeded)
	}
	if final == 0 {
		t.Fatal("no transaction succeeded")
	}
}
