package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/lfs"
)

// TestSubPageConcurrentWritersSamePage is the point of the [16] enhancement:
// two transactions writing different records of the SAME page proceed
// concurrently under sub-page locking, where page locking would serialize
// them.
func TestSubPageConcurrentWritersSamePage(t *testing.T) {
	r := newRig(t, Options{Granularity: SubPage})
	f := r.mkProtected(t, "/db", pat(4096, 1))
	p1 := r.m.NewProcess()
	p2 := r.m.NewProcess()
	p1.TxnBegin()
	p2.TxnBegin()

	// Record A in slot 0, record B in slot 7 — same page.
	if _, err := p1.Write(f, []byte("AAAA"), 0); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := p2.Write(f, []byte("BBBB"), 4000)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
		// Concurrency achieved: p2 wrote while p1's txn was open.
	case <-time.After(2 * time.Second):
		t.Fatal("sub-page writers to distinct slots should not block each other")
	}
	if err := p1.TxnCommit(); err != nil {
		t.Fatal(err)
	}
	if err := p2.TxnCommit(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	p := r.m.NewProcess()
	p.Read(f, got, 0)
	if !bytes.Equal(got[0:4], []byte("AAAA")) || !bytes.Equal(got[4000:4004], []byte("BBBB")) {
		t.Fatal("both writes must land")
	}
}

// TestPageGranularityStillSerializes checks the paper's measured behaviour
// remains the default: writers to the same page conflict.
func TestPageGranularityStillSerializes(t *testing.T) {
	r := newRig(t, Options{})
	f := r.mkProtected(t, "/db", pat(4096, 1))
	p1 := r.m.NewProcess()
	p2 := r.m.NewProcess()
	p1.TxnBegin()
	p2.TxnBegin()
	if _, err := p1.Write(f, []byte("AAAA"), 0); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		p2.Write(f, []byte("BBBB"), 4000)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("page-granularity writers to one page must serialize")
	case <-time.After(50 * time.Millisecond):
	}
	p1.TxnCommit()
	<-done
	p2.TxnCommit()
}

// TestSubPageAbortRestoresOnlyOwnBytes: abort under sub-page locking applies
// byte-range before-images and must not disturb a concurrent transaction's
// bytes in the same page.
func TestSubPageAbortRestoresOnlyOwnBytes(t *testing.T) {
	r := newRig(t, Options{Granularity: SubPage})
	f := r.mkProtected(t, "/db", pat(4096, 1))
	p1 := r.m.NewProcess()
	p2 := r.m.NewProcess()
	p1.TxnBegin()
	p2.TxnBegin()
	if _, err := p1.Write(f, []byte("KEEP"), 0); err != nil { // slot 0
		t.Fatal(err)
	}
	if _, err := p2.Write(f, []byte("DROP"), 4000); err != nil { // slot 7
		t.Fatal(err)
	}
	if err := p2.TxnAbort(); err != nil {
		t.Fatal(err)
	}
	if err := p1.TxnCommit(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	p := r.m.NewProcess()
	p.Read(f, got, 0)
	want := pat(4096, 1)
	copy(want[0:], []byte("KEEP"))
	if !bytes.Equal(got, want) {
		t.Fatal("abort must restore exactly the aborted transaction's bytes")
	}
}

// TestSubPageAbortSequence: multiple overlapping writes by one transaction
// roll back in reverse order to the original state.
func TestSubPageAbortSequence(t *testing.T) {
	r := newRig(t, Options{Granularity: SubPage})
	orig := pat(4096, 3)
	f := r.mkProtected(t, "/db", orig)
	p := r.m.NewProcess()
	p.TxnBegin()
	p.Write(f, []byte("11111111"), 100)
	p.Write(f, []byte("2222"), 102) // overlaps the first write
	p.Write(f, []byte("333"), 600)
	if err := p.TxnAbort(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	p.Read(f, got, 0)
	if !bytes.Equal(got, orig) {
		t.Fatal("overlapping writes must unwind to the original bytes")
	}
}

// TestSubPageCommitDurable: commit durability under sub-page locking, with a
// crash after commit.
func TestSubPageCommitDurable(t *testing.T) {
	r := newRig(t, Options{Granularity: SubPage})
	f := r.mkProtected(t, "/db", pat(8192, 1))
	p := r.m.NewProcess()
	p.TxnBegin()
	p.Write(f, []byte("DURABLE!"), 4096)
	if err := p.TxnCommit(); err != nil {
		t.Fatal(err)
	}
	fs2 := mustMount(t, r)
	g, err := fs2.Open("/db")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	g.ReadAt(got, 4096)
	if string(got) != "DURABLE!" {
		t.Fatalf("got %q after crash", got)
	}
}

// TestSubPageSharedPageCommitDeferred documents the shared-page semantics:
// a committed transaction's page flush defers while another transaction
// still holds slots in the same page, and completes when the holder
// finishes.
func TestSubPageSharedPageCommitDeferred(t *testing.T) {
	r := newRig(t, Options{Granularity: SubPage})
	f := r.mkProtected(t, "/db", pat(4096, 1))
	p1 := r.m.NewProcess()
	p2 := r.m.NewProcess()
	p1.TxnBegin()
	p2.TxnBegin()
	p1.Write(f, []byte("AAAA"), 0)
	p2.Write(f, []byte("BBBB"), 4000)
	if err := p1.TxnCommit(); err != nil {
		t.Fatal(err)
	}
	// Crash now: p1's bytes were in a page still held by p2, so they are
	// not yet durable — acceptable under the documented group-commit-like
	// semantics, but they MUST NOT appear partially.
	if err := p2.TxnCommit(); err != nil {
		t.Fatal(err)
	}
	// After p2 commits, the page flushed with both transactions' bytes.
	fs2 := mustMount(t, r)
	g, _ := fs2.Open("/db")
	got := make([]byte, 4096)
	g.ReadAt(got, 0)
	if !bytes.Equal(got[0:4], []byte("AAAA")) || !bytes.Equal(got[4000:4004], []byte("BBBB")) {
		t.Fatal("both committed transactions must be durable after the shared page flushed")
	}
}

// mustMount remounts the rig's device as a fresh file system (a crash).
func mustMount(t *testing.T, r *rig) *lfs.FS {
	t.Helper()
	fs2, err := lfs.Mount(r.dev, r.clk, lfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fs2
}
