package core

import (
	"errors"

	"repro/internal/buffer"
	"repro/internal/lfs"
	"repro/internal/lock"
	"repro/internal/vfs"
)

// File is an open file under the embedded transaction manager. The
// interface matches ordinary files; if the file carries the
// transaction-protection attribute, reads and writes acquire page locks
// automatically (§4.2: "a read lock is requested for each page before the
// page request is satisfied ... writes are implemented similarly").
type File struct {
	m  *Manager
	lf *lfs.File
	id vfs.FileID
}

// Open opens an existing file.
func (m *Manager) Open(path string) (*File, error) {
	f, err := m.fs.Open(path)
	if err != nil {
		return nil, err
	}
	lf := f.(*lfs.File)
	return &File{m: m, lf: lf, id: f.ID()}, nil
}

// Create creates a new (unprotected) file; call Protect to enable
// transactions on it.
func (m *Manager) Create(path string) (*File, error) {
	f, err := m.fs.Create(path)
	if err != nil {
		return nil, err
	}
	lf := f.(*lfs.File)
	return &File{m: m, lf: lf, id: f.ID()}, nil
}

// ID returns the file's identity.
func (f *File) ID() vfs.FileID { return f.id }

// Close releases the handle.
func (f *File) Close() error { return f.lf.Close() }

// Size returns the file size.
func (f *File) Size() (int64, error) { return f.lf.Size() }

// Truncate resizes the file (non-transactional administrative operation).
func (f *File) Truncate(size int64) error { return f.lf.Truncate(size) }

// Sync forces the file's dirty blocks to the log.
func (f *File) Sync() error { return f.lf.Sync() }

// pageRange returns the logical blocks covered by [off, off+n).
func (f *File) pageRange(off int64, n int) (first, last int64) {
	bs := int64(f.m.fs.BlockSize())
	first = off / bs
	last = (off + int64(n) - 1) / bs
	if n <= 0 {
		last = first
	}
	return first, last
}

// lockObject acquires one lock object for the transaction, resolving
// conflicts with pending group commits by flushing them first, and aborting
// the transaction on deadlock.
// lockObject is the page-access hot path: every read and write of every
// page funnels through here to reach the lock table.
//
//simlint:noalloc
func (p *Process) lockObject(obj lock.Object, mode lock.Mode) error {
	m := p.m
	// Cooperative scheduling point: no mutex is held here, so this is where
	// a multiprogramming run interleaves processes at page-access
	// granularity (the kernel scheduler's preemption point).
	m.clock.Yield()
	// A lock held by a committing (pending group-commit) transaction will
	// be released as soon as the batch flushes; do that now rather than
	// sleeping on it.
	m.mu.Lock()
	pending := false
	//simlint:alloc(non-escaping closure: EachHolder does not retain its callback)
	m.locks.EachHolder(obj, func(holder lock.TxnID) bool {
		if m.isPendingLocked(uint64(holder)) {
			pending = true
			return false
		}
		return true
	})
	if pending {
		if err := m.flushPendingLocked(); err != nil {
			m.mu.Unlock()
			return err
		}
	}
	m.mu.Unlock()
	m.clock.Advance(m.costs.KernelSync())
	if err := m.locks.Lock(lock.TxnID(p.txn.id), obj, mode); err != nil {
		if errors.Is(err, lock.ErrDeadlock) {
			p.abortOnDeadlock()
		}
		return err
	}
	return nil
}

func (m *Manager) isPendingLocked(txnID uint64) bool {
	for _, t := range m.pending {
		if t.id == txnID {
			return true
		}
	}
	return false
}

// Read reads from the file on behalf of the process. For
// transaction-protected files within a transaction, each covered page is
// read-locked before the request is satisfied; the process sleeps if a lock
// cannot be granted. For unprotected files the only cost over a plain read
// is the lock-necessity check.
func (p *Process) Read(f *File, buf []byte, off int64) (int, error) {
	m := p.m
	m.clock.Advance(m.costs.Syscall)
	if !f.lf.TxnProtected() {
		m.clock.Advance(checkCost)
		return f.lf.ReadAt(buf, off)
	}
	if p.InTxn() {
		if err := p.lockSpan(f, off, len(buf), lock.Read); err != nil {
			return 0, err
		}
		return f.lf.ReadAt(buf, off)
	}
	// Degree-1 access outside a transaction: per-call locking.
	tmp := &Process{m: m, txn: &Txn{id: m.degreeOneID(), pages: map[buffer.BlockID]bool{}, files: map[vfs.FileID]bool{}}}
	if err := tmp.lockSpan(f, off, len(buf), lock.Read); err != nil {
		return 0, err
	}
	n, err := f.lf.ReadAt(buf, off)
	m.locks.ReleaseAll(lock.TxnID(tmp.txn.id))
	return n, err
}

// Write writes to the file on behalf of the process. For protected files in
// a transaction, each covered page is write-locked, the write lands in the
// buffer cache, and the dirtied buffers move onto the inode's transaction
// list (a buffer hold): they stay in memory until commit (§4, restriction
// 1) and are invisible to the segment writer until then.
func (p *Process) Write(f *File, data []byte, off int64) (int, error) {
	m := p.m
	m.clock.Advance(m.costs.Syscall)
	if !f.lf.TxnProtected() {
		m.clock.Advance(checkCost)
		return f.lf.WriteAt(data, off)
	}
	first, last := f.pageRange(off, len(data))
	if p.InTxn() {
		t := p.txn
		bs := int64(m.fs.BlockSize())
		n := 0
		// Write and hold page by page: each dirtied buffer joins the
		// inode's transaction list before the next page is touched, so
		// cache pressure can never push an uncommitted page to the log.
		// A transaction whose write set exceeds the cache surfaces
		// buffer.ErrNoBuffers — the paper's restriction (1) made
		// explicit.
		for pg := first; pg <= last; pg++ {
			lo := pg * bs
			if lo < off {
				lo = off
			}
			hi := (pg + 1) * bs
			if end := off + int64(len(data)); hi > end {
				hi = end
			}
			if err := p.lockSpan(f, lo, int(hi-lo), lock.Write); err != nil {
				return n, err
			}
			if err := p.captureUndo(f, pg, int(lo-pg*bs), int(hi-lo)); err != nil {
				return n, err
			}
			w, err := f.lf.WriteAt(data[lo-off:hi-off], lo)
			n += w
			if err != nil {
				return n, err
			}
			m.mu.Lock()
			id := buffer.BlockID{File: f.id, Block: pg}
			if !t.pages[id] {
				t.pages[id] = true
				m.heldBy[id]++
				if m.heldBy[id] == 1 {
					if b := m.fs.Pool().Lookup(id); b != nil {
						m.fs.Pool().SetHold(b, true)
					}
				}
			}
			t.files[f.id] = true
			m.mu.Unlock()
		}
		return n, nil
	}
	// Degree-1 write outside a transaction: lock, write through, unlock.
	tmp := &Process{m: m, txn: &Txn{id: m.degreeOneID(), pages: map[buffer.BlockID]bool{}, files: map[vfs.FileID]bool{}}}
	if err := tmp.lockSpan(f, off, len(data), lock.Write); err != nil {
		return 0, err
	}
	n, err := f.lf.WriteAt(data, off)
	m.locks.ReleaseAll(lock.TxnID(tmp.txn.id))
	return n, err
}

// degreeOneID allocates a transaction identifier for a single-call
// degree-1 access.
func (m *Manager) degreeOneID() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextTxn++
	return m.nextTxn
}

// Store adapts a protected file to the pagestore interface so the access
// methods (btree, recno, hashidx) run unchanged on the embedded system —
// the paper's point that applications keep their existing record interfaces
// and gain transactions from the file system.
type Store struct {
	p *Process
	f *File
}

// NewStore binds a process and file into a page store.
func NewStore(p *Process, f *File) *Store { return &Store{p: p, f: f} }

// PageSize implements pagestore.Store.
func (s *Store) PageSize() int { return s.f.m.fs.BlockSize() }

// NumPages implements pagestore.Store.
func (s *Store) NumPages() (int64, error) {
	sz, err := s.f.lf.Size()
	if err != nil {
		return 0, err
	}
	ps := int64(s.PageSize())
	return (sz + ps - 1) / ps, nil
}

// ReadPage implements pagestore.Store.
func (s *Store) ReadPage(n int64, p []byte) error {
	_, err := s.p.Read(s.f, p, n*int64(s.PageSize()))
	return err
}

// WritePage implements pagestore.Store.
func (s *Store) WritePage(n int64, p []byte) error {
	_, err := s.p.Write(s.f, p, n*int64(s.PageSize()))
	return err
}

// AllocPage implements pagestore.Store: extend the file by one page. The
// extension itself is transactional to the extent that the new page's data
// is held until commit; an abort leaves a zero-filled tail that the access
// methods never reference (their meta page rolls back).
func (s *Store) AllocPage() (int64, error) {
	np, err := s.NumPages()
	if err != nil {
		return 0, err
	}
	zero := make([]byte, s.PageSize())
	if _, err := s.p.Write(s.f, zero, np*int64(s.PageSize())); err != nil {
		return 0, err
	}
	return np, nil
}

// Sync implements pagestore.Store. Under the embedded manager durability
// comes from TxnCommit's flush; Sync forces the file for non-transactional
// setup phases.
func (s *Store) Sync() error { return s.f.Sync() }
