package core

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/lock"
	"repro/internal/vfs"
)

// Lock granularity. The paper's implementation locks whole pages
// (implementation restriction 2: "locking is strictly two-phase and is
// performed at the granularity of a page") and notes that the simulation
// study "indicated that locking at granularities smaller than a page is
// required for environments that are [contentious]", with enhancements
// described in [16]. SubPage implements that enhancement: each page is
// divided into lock slots, writers to different records of one page no
// longer conflict, and abort applies in-memory byte-range before-images
// instead of invalidating the (possibly shared) page.
type Granularity int

const (
	// Page locks whole pages (the paper's measured configuration).
	Page Granularity = iota
	// SubPage locks fixed sub-page slots (the [16] enhancement).
	SubPage
)

// subPageSlots divides each page into this many lock slots.
const subPageSlots = 8

// undoRange is an in-memory before-image for sub-page abort.
type undoRange struct {
	id     buffer.BlockID
	offset int // byte offset within the page
	before []byte
}

// slotObjects returns the lock objects covering bytes [off, off+n) of a
// page. In Page mode there is one object per page; in SubPage mode the
// page's slot indices are folded into the Block field (page*slots + slot),
// which cannot collide with page-mode keys because a Manager uses a single
// granularity for its lifetime.
func (m *Manager) slotObjects(file vfs.FileID, page int64, lo, hi int) []lock.Object {
	if m.opts.Granularity == Page {
		return []lock.Object{{File: uint64(file), Block: page}}
	}
	bs := m.fs.BlockSize()
	slotBytes := bs / subPageSlots
	firstSlot := lo / slotBytes
	lastSlot := (hi - 1) / slotBytes
	out := make([]lock.Object, 0, lastSlot-firstSlot+1)
	for s := firstSlot; s <= lastSlot; s++ {
		out = append(out, lock.Object{File: uint64(file), Block: page*subPageSlots + int64(s)})
	}
	return out
}

// lockSpan acquires locks covering bytes [off, off+n) of the file for the
// process's transaction, at the manager's configured granularity.
func (p *Process) lockSpan(f *File, off int64, n int, mode lock.Mode) error {
	m := p.m
	bs := int64(m.fs.BlockSize())
	first := off / bs
	last := off
	if n > 0 {
		last = off + int64(n) - 1
	}
	lastPage := last / bs
	for pg := first; pg <= lastPage; pg++ {
		lo := int64(0)
		if pg == first {
			lo = off % bs
		}
		hi := bs
		if pg == lastPage {
			hi = last%bs + 1
		}
		for _, obj := range m.slotObjects(f.id, pg, int(lo), int(hi)) {
			if err := p.lockObject(obj, mode); err != nil {
				return err
			}
		}
	}
	return nil
}

// captureUndo records the before-image of bytes [off, off+n) of a page for
// sub-page abort. The caller holds the covering write locks, so the bytes
// cannot change under us.
func (p *Process) captureUndo(f *File, page int64, off, n int) error {
	if p.m.opts.Granularity != SubPage || n <= 0 {
		return nil
	}
	before := make([]byte, n)
	bs := int64(p.m.fs.BlockSize())
	if _, err := f.lf.ReadAt(before, page*bs+int64(off)); err != nil {
		return err
	}
	p.txn.undo = append(p.txn.undo, undoRange{
		id:     buffer.BlockID{File: f.id, Block: page},
		offset: off,
		before: before,
	})
	return nil
}

// applyUndoLocked rolls back a sub-page transaction: apply the before-images
// in reverse order directly into the (held, resident) pages. Unlike
// page-granularity abort, the pages are NOT invalidated — another
// transaction may have committed bytes in the same pages that have not been
// flushed yet. Caller holds m.mu.
func (m *Manager) applyUndoLocked(t *Txn) error {
	pool := m.fs.Pool()
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		b := pool.Lookup(u.id)
		if b == nil {
			// Held pages are pinned in the cache; a missing one is an
			// invariant violation, not a recoverable condition.
			return fmt.Errorf("core: undo target %v not resident", u.id)
		}
		copy(b.Data[u.offset:], u.before)
		pool.MarkDirty(b)
	}
	return nil
}
