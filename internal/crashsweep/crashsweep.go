// Package crashsweep is a deterministic crash-point fault-injection harness
// for the three TPC-B transaction systems. It executes one golden run to
// learn the device's write-operation timeline, samples crash points along it
// (densely near commits, checkpoints, and cleaner passes; strided
// elsewhere), then for each point replays the workload deterministically,
// crashes the simulated disk mid-write (optionally tearing the crashing
// multi-block transfer), discards all in-memory state, and drives the
// system's recovery path:
//
//   - kernel-lfs: LFS checkpoint + roll-forward (the paper's single
//     recovery paradigm — no transaction-manager step at all);
//   - user-lfs:   LFS recovery, then LIBTP WAL redo/undo;
//   - user-ffs:   FFS mount + fsck bitmap rebuild, then LIBTP WAL redo/undo.
//
// After recovery it verifies durability (every transaction acknowledged
// before the crash is present), atomicity (no partial transaction visible),
// file-system self-consistency (fsck), and the TPC-B balance invariants
// against the shadow history. Everything is driven by the simulated clock
// and seeded RNGs: the same options always produce a byte-identical Report.
package crashsweep

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/detsort"
	"repro/internal/ffs"
	"repro/internal/lfs"
	"repro/internal/libtp"
	"repro/internal/lock"
	"repro/internal/pagestore"
	"repro/internal/tpcb"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// Options configures a sweep.
type Options struct {
	// System is the rig kind: "kernel-lfs", "user-lfs", or "user-ffs".
	System string
	// Config sizes the database (default 1000/10/2 accounts/tellers/branches,
	// workload seed derived from Seed).
	Config tpcb.Config
	// Txns is the number of transactions in the golden run (default 200).
	Txns int
	// Seed seeds the workload and the per-point torn-write prefixes.
	Seed uint64
	// Torn enables torn-write mode: the crashing multi-block transfer
	// persists a deterministic prefix of its blocks (default off = the
	// crashing write persists nothing).
	Torn bool
	// MaxPoints bounds the sampled crash points (0 = every write op).
	MaxPoints int
	// CheckpointEvery inserts a harness checkpoint (env checkpoint or LFS
	// sync) every N transactions, creating crash points inside checkpoint
	// processing (default Txns/4; negative disables).
	CheckpointEvery int
	// DiskScale shrinks the rig's disk so the cleaner runs during the
	// sweep (default 1.0).
	DiskScale float64
	// LogSegmentBytes bounds the WAL segment size for the user-level
	// systems (0 = the wal default). Small segments make the sweep cross
	// rotation, index-write, and checkpoint-truncation boundaries.
	LogSegmentBytes int64
	// Devices is the number of spindles (0 or 1 = the classic single
	// disk). With more than one, Layout selects "stripe" (one file system
	// over a striped array; crash points land mid-stripe, tearing
	// transfers across devices) or "partition" (per-device file systems
	// and logs with two-phase commit; crash points land between a
	// participant's prepare and the coordinator's decision, and between
	// the decision and the participants' phase-two commits).
	Devices int
	// Layout is the multi-device layout: "stripe" (default) or
	// "partition".
	Layout string
	// StripeBlocks is the stripe unit for the "stripe" layout.
	StripeBlocks int
	// Snapshots, when positive, opens a read-only MVCC snapshot every
	// Snapshots-th transaction, reads account pages through it, and holds
	// it across the following transactions (closing one transaction before
	// the next opens). Crash points then land while the cleaner is
	// deferring to a pinned snapshot horizon and while commit flushes are
	// capturing superseded page versions; the sweep verifies that the
	// volatile snapshot state (pins die with the crash) never compromises
	// recovery. Ignored on partitioned (sharded) rigs.
	Snapshots int
}

func (o *Options) fill() error {
	switch o.System {
	case "kernel-lfs", "user-lfs", "user-ffs":
	default:
		return fmt.Errorf("crashsweep: unknown system %q", o.System)
	}
	if o.Devices > 1 && o.Layout == "partition" && o.System == "kernel-lfs" {
		return fmt.Errorf("crashsweep: the partitioned layout runs one transaction environment per device; %q has no such split", o.System)
	}
	if o.Config == (tpcb.Config{}) {
		o.Config = tpcb.Config{Accounts: 1000, Tellers: 10, Branches: 2, Seed: o.Seed + 1}
	}
	if o.Devices > 1 && o.Layout == "partition" {
		// Every shard needs at least one row of each relation.
		o.Config.Tellers = max(o.Config.Tellers, int64(o.Devices))
		o.Config.Branches = max(o.Config.Branches, int64(o.Devices))
	}
	if o.Txns == 0 {
		o.Txns = 200
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = o.Txns / 4
	}
	if o.DiskScale == 0 {
		o.DiskScale = 1.0
	}
	return nil
}

// Violation describes one failed crash point.
type Violation struct {
	WriteOp   int64  `json:"write_op"`  // the op the crash fired on
	Committed int    `json:"committed"` // transactions acknowledged before the crash
	Stage     string `json:"stage"`     // workload stage the crash interrupted
	Err       string `json:"err"`
}

// Report is the deterministic result of a sweep.
type Report struct {
	System          string        `json:"system"`
	Seed            uint64        `json:"seed"`
	Torn            bool          `json:"torn"`
	Txns            int           `json:"txns"`
	Snapshots       int           `json:"snapshots,omitempty"` // snapshot-probe cadence (0 = off)
	LoadWriteOps    int64         `json:"load_write_ops"`      // ops consumed by rig build + load
	TotalWriteOps   int64         `json:"total_write_ops"`     // ops in the whole golden run
	Points          int           `json:"points"`              // crash points swept
	DensePoints     int           `json:"dense_points"`        // points from dense (event) sampling
	Survived        int           `json:"survived"`
	Violations      []Violation   `json:"violations,omitempty"`
	MeanRecovery    time.Duration `json:"mean_recovery_ns"`  // mean simulated recovery time
	MaxRecovery     time.Duration `json:"max_recovery_ns"`   // worst simulated recovery time
	CheckpointOps   int64         `json:"checkpoint_ops"`    // ops inside harness checkpoints/drain
	CleanerTxnSpans int           `json:"cleaner_txn_spans"` // transactions whose span included cleaning or a WAL segment event
	MeanReplayTxns  int           `json:"mean_replay_txns"`  // mean committed txns at the crash point

	// Recovery-scan totals, summed over surviving user-level recoveries:
	// how much log the bounded recovery actually read.
	ScanSegments int64 `json:"scan_segments,omitempty"`
	ScanBlocks   int64 `json:"scan_blocks,omitempty"`
	ScanRecords  int64 `json:"scan_records,omitempty"`
}

// OK reports whether the sweep found no violations.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// String renders the report as the EXPERIMENTS.md recovery-matrix row plus
// a violation list.
func (r *Report) String() string {
	var b strings.Builder
	torn := "no"
	if r.Torn {
		torn = "yes"
	}
	fmt.Fprintf(&b, "%-10s  seed=%d torn=%s txns=%d\n", r.System, r.Seed, torn, r.Txns)
	fmt.Fprintf(&b, "  write ops        %d (load %d, checkpoints/drain %d)\n",
		r.TotalWriteOps, r.LoadWriteOps, r.CheckpointOps)
	fmt.Fprintf(&b, "  crash points     %d (%d dense, %d strided)\n",
		r.Points, r.DensePoints, r.Points-r.DensePoints)
	fmt.Fprintf(&b, "  survived         %d/%d\n", r.Survived, r.Points)
	fmt.Fprintf(&b, "  mean recovery    %v (max %v, simulated)\n", r.MeanRecovery, r.MaxRecovery)
	fmt.Fprintf(&b, "  cleaner spans    %d  mean replay %d txns\n", r.CleanerTxnSpans, r.MeanReplayTxns)
	if r.ScanSegments > 0 {
		fmt.Fprintf(&b, "  recovery scans   %d segments, %d blocks, %d records (total over survivors)\n",
			r.ScanSegments, r.ScanBlocks, r.ScanRecords)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  VIOLATION op %d stage=%s committed=%d: %s\n",
			v.WriteOp, v.Stage, v.Committed, v.Err)
	}
	return b.String()
}

// span is one workload stage's write-op interval (ops in (From, To]).
type span struct {
	Stage string // "txn", "txn+event" (cleaner or auto-checkpoint ran), "checkpoint", "drain"
	From  int64
	To    int64
}

func buildRig(opts Options) (*tpcb.Rig, error) {
	return tpcb.BuildRig(tpcb.RigOptions{
		Kind:            opts.System,
		Config:          opts.Config,
		ExpectedTxns:    opts.Txns,
		DiskScale:       opts.DiskScale,
		LogSegmentBytes: opts.LogSegmentBytes,
		Devices:         opts.Devices,
		Layout:          opts.Layout,
		StripeBlocks:    opts.StripeBlocks,
	})
}

// checkpointRig runs the harness checkpoint appropriate for the system. A
// partitioned rig drains through the sharded two-phase path (force every
// log, then checkpoint every shard).
func checkpointRig(rig *tpcb.Rig) error {
	if rig.Shards != nil {
		return rig.Sys.Drain()
	}
	if rig.Env != nil {
		return rig.Env.Checkpoint()
	}
	return rig.LFS.Sync()
}

// lfsEvents snapshots the LFS counters whose changes mark a span as dense
// (auto-checkpoints and cleaner passes).
func lfsEvents(rig *tpcb.Rig) int64 {
	if rig.Shards != nil {
		var n int64
		for _, env := range rig.Shards {
			if lf, ok := env.FS().(*lfs.FS); ok {
				st := lf.Stats()
				n += st.Checkpoints + st.Cleaner.Runs
			}
		}
		return n
	}
	if rig.LFS == nil {
		return 0
	}
	st := rig.LFS.Stats()
	return st.Checkpoints + st.Cleaner.Runs
}

// walEvents snapshots the WAL counters whose changes mark a span as dense:
// segment rotations, seals, checkpoint truncations/archivals, and checkpoint
// records. Crashing on every op of such spans covers torn blocks at segment
// tails, half-written index files, and interrupted truncations.
func walEvents(rig *tpcb.Rig) int64 {
	sum := func(env *libtp.Env) int64 {
		st := env.LogStats()
		return st.Rotations + st.SegmentsSealed + st.SegmentsDeleted + st.SegmentsArchived + st.Checkpoints
	}
	if rig.Shards != nil {
		var n int64
		for _, env := range rig.Shards {
			n += sum(env)
		}
		return n
	}
	if rig.Env == nil {
		return 0
	}
	return sum(rig.Env)
}

// snapshotProber drives Options.Snapshots: a read-only MVCC snapshot opened
// every Nth transaction, probed with raw page reads, and held across the
// transactions in between so crash points land under an active retention
// horizon. The probe only reads, so the golden and replay write-op
// timelines stay aligned whether or not a crash is scheduled.
type snapshotProber struct {
	every int
	buf   []byte

	uEnv  *libtp.Env
	uDB   *libtp.DB
	uSnap *libtp.Snapshot

	kMgr  *core.Manager
	kFile *core.File
	kSnap *core.Snapshot
}

func newSnapshotProber(opts Options, rig *tpcb.Rig) (*snapshotProber, error) {
	if opts.Snapshots <= 0 || rig.Shards != nil {
		return nil, nil
	}
	p := &snapshotProber{every: opts.Snapshots}
	if rig.Core != nil {
		f, err := rig.Core.Open(tpcb.AccountPath)
		if err != nil {
			return nil, fmt.Errorf("snapshot probe open: %w", err)
		}
		p.kMgr, p.kFile = rig.Core, f
		return p, nil
	}
	db, err := rig.Env.OpenDB(tpcb.AccountPath)
	if err != nil {
		return nil, fmt.Errorf("snapshot probe open: %w", err)
	}
	p.uEnv, p.uDB = rig.Env, db
	return p, nil
}

// step runs after transaction i commits: a new snapshot opens (and probes a
// few account pages) on the opening beat, and the held snapshot closes one
// transaction before the next opening, so the pinned horizon spans the
// commits — and commit flushes, checkpoints, and cleaning — in between.
func (p *snapshotProber) step(i int) error {
	if p == nil {
		return nil
	}
	switch {
	case i%p.every == 0:
		return p.probe()
	case i%p.every == p.every-1:
		p.close()
	}
	return nil
}

func (p *snapshotProber) probe() error {
	p.close()
	var st pagestore.Store
	if p.kMgr != nil {
		p.kSnap = p.kMgr.BeginSnapshot()
		st = p.kSnap.Store(p.kFile)
	} else {
		p.uSnap = p.uEnv.BeginSnapshot()
		st = p.uSnap.Store(p.uDB)
	}
	np, err := st.NumPages()
	if err != nil {
		return fmt.Errorf("snapshot probe: %w", err)
	}
	if p.buf == nil {
		p.buf = make([]byte, st.PageSize())
	}
	for n := int64(0); n < np && n < 4; n++ {
		if err := st.ReadPage(n, p.buf); err != nil {
			return fmt.Errorf("snapshot probe page %d: %w", n, err)
		}
	}
	return nil
}

func (p *snapshotProber) close() {
	if p == nil {
		return
	}
	if p.kSnap != nil {
		p.kSnap.Close()
		p.kSnap = nil
	}
	if p.uSnap != nil {
		p.uSnap.Close()
		p.uSnap = nil
	}
}

// goldenRun executes the full workload once, recording the write-op spans of
// every stage. The returned rig has completed the run (for final state
// inspection); the spans drive crash-point sampling.
func goldenRun(opts Options) (*tpcb.Rig, []span, int64, error) {
	rig, err := buildRig(opts)
	if err != nil {
		return nil, nil, 0, err
	}
	loadOps := rig.Crash.WriteOps()
	prober, err := newSnapshotProber(opts, rig)
	if err != nil {
		return nil, nil, 0, err
	}
	gen := tpcb.NewGenerator(opts.Config)
	spans := make([]span, 0, opts.Txns+opts.Txns/4+2)
	prev := loadOps
	events := lfsEvents(rig) + walEvents(rig)
	note := func(stage string) {
		cur := rig.Crash.WriteOps()
		if e := lfsEvents(rig) + walEvents(rig); e != events && stage == "txn" {
			stage, events = "txn+event", e
		}
		if cur > prev {
			spans = append(spans, span{Stage: stage, From: prev, To: cur})
		}
		prev = cur
	}
	for i := 0; i < opts.Txns; i++ {
		tx := gen.Next()
		if err := rig.Sys.Run(tx); err != nil {
			return nil, nil, 0, fmt.Errorf("crashsweep: golden run txn %d: %w", i, err)
		}
		if err := prober.step(i); err != nil {
			return nil, nil, 0, fmt.Errorf("crashsweep: golden run txn %d: %w", i, err)
		}
		note("txn")
		if opts.CheckpointEvery > 0 && (i+1)%opts.CheckpointEvery == 0 && i+1 < opts.Txns {
			if err := checkpointRig(rig); err != nil {
				return nil, nil, 0, fmt.Errorf("crashsweep: golden checkpoint: %w", err)
			}
			note("checkpoint")
		}
	}
	prober.close()
	if err := rig.Sys.Drain(); err != nil {
		return nil, nil, 0, fmt.Errorf("crashsweep: golden drain: %w", err)
	}
	note("drain")
	return rig, spans, loadOps, nil
}

// samplePoints picks the crash points to sweep: every op of checkpoint,
// drain, and cleaner-active spans, the first and last op of every plain
// transaction span (the last is the commit force), then a uniform stride
// over whatever ops remain, all bounded by maxPoints with deterministic
// downsampling.
func samplePoints(spans []span, maxPoints int) (points []int64, dense int) {
	densePts := map[int64]bool{}
	inDense := map[int64]bool{}
	for _, s := range spans {
		if s.Stage == "txn" {
			densePts[s.From+1] = true
			densePts[s.To] = true
			continue
		}
		for op := s.From + 1; op <= s.To; op++ {
			densePts[op] = true
		}
	}
	for op := range densePts {
		inDense[op] = true
	}
	var rest []int64
	for _, s := range spans {
		for op := s.From + 1; op <= s.To; op++ {
			if !inDense[op] {
				rest = append(rest, op)
			}
		}
	}
	denseSorted := detsort.Keys(densePts)
	if maxPoints > 0 && len(denseSorted) > maxPoints {
		// Downsample the dense set itself, evenly.
		out := make([]int64, 0, maxPoints)
		for i := 0; i < maxPoints; i++ {
			out = append(out, denseSorted[i*len(denseSorted)/maxPoints])
		}
		return out, len(out)
	}
	points = append(points, denseSorted...)
	dense = len(points)
	budget := len(rest)
	if maxPoints > 0 {
		budget = maxPoints - len(points)
	}
	if budget > 0 && len(rest) > 0 {
		step := 1
		if len(rest) > budget {
			step = (len(rest) + budget - 1) / budget
		}
		for i := 0; i < len(rest); i += step {
			points = append(points, rest[i])
		}
	}
	// detsort.Keys returned the dense points ordered; merge-sort the full set.
	all := map[int64]bool{}
	for _, p := range points {
		all[p] = true
	}
	return detsort.Keys(all), dense
}

// replayTo rebuilds the rig and replays the workload with a crash scheduled
// at write op n. It returns the transactions acknowledged before the crash,
// the transaction in flight at the crash (nil if the crash interrupted a
// checkpoint or the drain), and the stage name.
func replayTo(opts Options, n int64) (*tpcb.Rig, []tpcb.Txn, *tpcb.Txn, string, error) {
	rig, err := buildRig(opts)
	if err != nil {
		return nil, nil, nil, "", err
	}
	tornSeed := opts.Seed ^ (uint64(n) * 0x9e3779b97f4a7c15)
	prober, err := newSnapshotProber(opts, rig)
	if err != nil {
		return nil, nil, nil, "", err
	}
	rig.Crash.CrashAfter(n, opts.Torn, tornSeed)
	gen := tpcb.NewGenerator(opts.Config)
	var committed []tpcb.Txn
	for i := 0; i < opts.Txns; i++ {
		tx := gen.Next()
		if err := rig.Sys.Run(tx); err != nil {
			if rig.Crash.Crashed() {
				return rig, committed, &tx, "txn", nil
			}
			return nil, nil, nil, "", fmt.Errorf("replay txn %d: %w", i, err)
		}
		committed = append(committed, tx)
		if err := prober.step(i); err != nil {
			// The probe never writes, so it cannot fire the crash itself —
			// but it surfaces device errors if the crash fired mid-commit
			// and the transaction was not acknowledged.
			if rig.Crash.Crashed() {
				return rig, committed, nil, "txn", nil
			}
			return nil, nil, nil, "", fmt.Errorf("replay txn %d: %w", i, err)
		}
		if opts.CheckpointEvery > 0 && (i+1)%opts.CheckpointEvery == 0 && i+1 < opts.Txns {
			if err := checkpointRig(rig); err != nil {
				if rig.Crash.Crashed() {
					return rig, committed, nil, "checkpoint", nil
				}
				return nil, nil, nil, "", fmt.Errorf("replay checkpoint: %w", err)
			}
		}
	}
	prober.close()
	if err := rig.Sys.Drain(); err != nil {
		if rig.Crash.Crashed() {
			return rig, committed, nil, "drain", nil
		}
		return nil, nil, nil, "", fmt.Errorf("replay drain: %w", err)
	}
	if !rig.Crash.Crashed() {
		return nil, nil, nil, "", fmt.Errorf("crash point %d never fired (run issues fewer ops?)", n)
	}
	return rig, committed, nil, "post-drain", nil
}

// recoverAndVerify reboots the crashed device, runs the system's recovery
// path, and checks every invariant. It returns the simulated recovery time
// and, for the user-level systems, the WAL recovery's scan statistics.
func recoverAndVerify(opts Options, rig *tpcb.Rig, committed []tpcb.Txn, inFlight *tpcb.Txn) (time.Duration, wal.ScanStats, error) {
	rig.Crash.ClearCrash()
	start := rig.Clock.Now()
	libtpOpts := libtp.Options{LogSegmentBytes: opts.LogSegmentBytes}
	var scan wal.ScanStats
	if rig.Shards != nil {
		return recoverSharded(opts, rig, libtpOpts, start, committed, inFlight)
	}
	var fsys vfs.FileSystem
	switch opts.System {
	case "kernel-lfs", "user-lfs":
		fs2, err := lfs.Mount(rig.Dev, rig.Clock, lfs.Options{CacheBlocks: 256})
		if err != nil {
			return 0, scan, fmt.Errorf("mount: %w", err)
		}
		if opts.System == "user-lfs" {
			_, walRep, err := libtp.RecoverPaths(fs2, rig.Clock, libtpOpts, tpcb.DBPaths())
			if err != nil {
				return 0, scan, fmt.Errorf("wal recovery: %w", err)
			}
			scan = walRep.Scan
		}
		rep, err := fs2.Fsck()
		if err != nil {
			return 0, scan, fmt.Errorf("fsck: %w", err)
		}
		if !rep.OK() {
			return 0, scan, fmt.Errorf("fsck: inconsistent state: %+v", rep)
		}
		fsys = fs2
	case "user-ffs":
		fs2, err := ffs.Mount(rig.Dev, rig.Clock, ffs.Options{CacheBlocks: 256})
		if err != nil {
			return 0, scan, fmt.Errorf("mount: %w", err)
		}
		// The bitmap rebuild MUST precede WAL replay: replay may extend
		// files, and allocating from the stale bitmap could clobber
		// durable blocks the inode table owns.
		if _, err := fs2.Fsck(); err != nil {
			return 0, scan, fmt.Errorf("fsck: %w", err)
		}
		_, walRep, err := libtp.RecoverPaths(fs2, rig.Clock, libtpOpts, tpcb.DBPaths())
		if err != nil {
			return 0, scan, fmt.Errorf("wal recovery: %w", err)
		}
		scan = walRep.Scan
		fsys = fs2
	}
	elapsed := rig.Clock.Now() - start
	if err := tpcb.VerifyState(fsys, committed, inFlight); err != nil {
		return elapsed, scan, err
	}
	return elapsed, scan, nil
}

// recoverSharded reboots every device of a crashed partitioned rig, resolves
// in-doubt two-phase-commit branches from the union of durable decision
// records, and verifies the cross-shard invariants: a transfer must be
// everywhere or nowhere, never half of each.
func recoverSharded(opts Options, rig *tpcb.Rig, libtpOpts libtp.Options, start time.Duration, committed []tpcb.Txn, inFlight *tpcb.Txn) (time.Duration, wal.ScanStats, error) {
	var scan wal.ScanStats
	fss := make([]vfs.FileSystem, len(rig.Devs))
	for i, dev := range rig.Devs {
		switch opts.System {
		case "user-lfs":
			fs2, err := lfs.Mount(dev, rig.Clock, lfs.Options{CacheBlocks: 256})
			if err != nil {
				return 0, scan, fmt.Errorf("shard %d mount: %w", i, err)
			}
			fss[i] = fs2
		case "user-ffs":
			fs2, err := ffs.Mount(dev, rig.Clock, ffs.Options{CacheBlocks: 256})
			if err != nil {
				return 0, scan, fmt.Errorf("shard %d mount: %w", i, err)
			}
			// Bitmap rebuild before WAL replay, as on the single device.
			if _, err := fs2.Fsck(); err != nil {
				return 0, scan, fmt.Errorf("shard %d fsck: %w", i, err)
			}
			fss[i] = fs2
		default:
			return 0, scan, fmt.Errorf("partitioned layout: unsupported system %q", opts.System)
		}
	}
	_, reps, err := tpcb.RecoverSharded(fss, rig.Clock, libtpOpts, lock.NewManager())
	if err != nil {
		return 0, scan, fmt.Errorf("sharded recovery: %w", err)
	}
	for _, r := range reps {
		scan.Segments += r.Scan.Segments
		scan.Blocks += r.Scan.Blocks
		scan.Records += r.Scan.Records
	}
	if opts.System == "user-lfs" {
		for i, f := range fss {
			rep, err := f.(*lfs.FS).Fsck()
			if err != nil {
				return 0, scan, fmt.Errorf("shard %d fsck: %w", i, err)
			}
			if !rep.OK() {
				return 0, scan, fmt.Errorf("shard %d fsck: inconsistent state: %+v", i, rep)
			}
		}
	}
	elapsed := rig.Clock.Now() - start
	if err := tpcb.VerifyShardedState(fss, rig.Part, committed, inFlight); err != nil {
		return elapsed, scan, err
	}
	return elapsed, scan, nil
}

// Run executes the sweep and returns its deterministic report.
func Run(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	golden, spans, loadOps, err := goldenRun(opts)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		System:        opts.System,
		Seed:          opts.Seed,
		Torn:          opts.Torn,
		Txns:          opts.Txns,
		Snapshots:     opts.Snapshots,
		LoadWriteOps:  loadOps,
		TotalWriteOps: golden.Crash.WriteOps(),
	}
	for _, s := range spans {
		switch s.Stage {
		case "checkpoint", "drain":
			rep.CheckpointOps += s.To - s.From
		case "txn+event":
			rep.CleanerTxnSpans++
		}
	}
	points, dense := samplePoints(spans, opts.MaxPoints)
	rep.Points = len(points)
	rep.DensePoints = dense
	var recoverySum time.Duration
	var replayTxnSum int64
	for _, n := range points {
		rig, committed, inFlight, stage, err := replayTo(opts, n)
		if err != nil {
			return nil, fmt.Errorf("crashsweep: point %d: %w", n, err)
		}
		replayTxnSum += int64(len(committed))
		rt, scan, verr := recoverAndVerify(opts, rig, committed, inFlight)
		if verr != nil {
			rep.Violations = append(rep.Violations, Violation{
				WriteOp: n, Committed: len(committed), Stage: stage, Err: verr.Error(),
			})
			continue
		}
		rep.Survived++
		rep.ScanSegments += scan.Segments
		rep.ScanBlocks += scan.Blocks
		rep.ScanRecords += scan.Records
		recoverySum += rt
		if rt > rep.MaxRecovery {
			rep.MaxRecovery = rt
		}
	}
	if rep.Survived > 0 {
		rep.MeanRecovery = recoverySum / time.Duration(rep.Survived)
	}
	if rep.Points > 0 {
		rep.MeanReplayTxns = int(replayTxnSum) / rep.Points
	}
	return rep, nil
}
