package crashsweep

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/tpcb"
)

func smallOpts(system string, torn bool) Options {
	return Options{
		System:    system,
		Config:    tpcb.Config{Accounts: 400, Tellers: 5, Branches: 1, Seed: 11},
		Txns:      60,
		Seed:      7,
		Torn:      torn,
		MaxPoints: 48,
		DiskScale: 0.7,
	}
}

func runSweep(t *testing.T, system string, torn bool) *Report {
	t.Helper()
	rep, err := Run(smallOpts(system, torn))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Points == 0 {
		t.Fatal("sweep sampled no crash points")
	}
	if !rep.OK() {
		for _, v := range rep.Violations {
			t.Errorf("write op %d (stage %s, %d committed): %s", v.WriteOp, v.Stage, v.Committed, v.Err)
		}
		t.Fatalf("%d/%d crash points failed", len(rep.Violations), rep.Points)
	}
	if rep.Survived != rep.Points {
		t.Fatalf("survived %d of %d with no violations recorded", rep.Survived, rep.Points)
	}
	if rep.MeanRecovery <= 0 {
		t.Fatalf("recovery should charge simulated time, mean = %v", rep.MeanRecovery)
	}
	return rep
}

func TestSweepKernelLFS(t *testing.T)     { runSweep(t, "kernel-lfs", false) }
func TestSweepKernelLFSTorn(t *testing.T) { runSweep(t, "kernel-lfs", true) }
func TestSweepUserLFSTorn(t *testing.T)   { runSweep(t, "user-lfs", true) }
func TestSweepUserFFSTorn(t *testing.T)   { runSweep(t, "user-ffs", true) }

// TestSweepSmallSegmentsTorn is the rotation/truncation acceptance sweep:
// tiny WAL segments make the workload rotate many times and every harness
// checkpoint truncate dead segments, so crash points land on segment-file
// creation, torn blocks at segment tails, index writes, anchor rewrites, and
// interrupted truncations. Zero violations required.
func TestSweepSmallSegmentsTorn(t *testing.T) {
	for _, system := range []string{"user-lfs", "user-ffs"} {
		t.Run(system, func(t *testing.T) {
			opts := smallOpts(system, true)
			opts.LogSegmentBytes = 4096
			rep, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				for _, v := range rep.Violations {
					t.Errorf("write op %d (stage %s, %d committed): %s", v.WriteOp, v.Stage, v.Committed, v.Err)
				}
				t.Fatalf("%d/%d crash points failed with small segments", len(rep.Violations), rep.Points)
			}
			if rep.ScanSegments == 0 || rep.ScanRecords == 0 {
				t.Fatalf("sweep recorded no recovery-scan work: %+v", rep)
			}
			// The point of the configuration: the golden run must actually
			// have crossed segment events inside transaction spans.
			if rep.CleanerTxnSpans == 0 {
				t.Fatal("no txn span crossed a WAL segment event; segments not small enough")
			}
		})
	}
}

// TestSweepSnapshotsTorn is the MVCC acceptance sweep: the workload holds a
// read-only snapshot open across every fourth transaction span, so crash
// points land while the cleaner's retention horizon is pinned and version
// records are live. Snapshots are volatile (a crash drops every pin), so the
// recovery invariants must hold unchanged — zero violations required.
func TestSweepSnapshotsTorn(t *testing.T) {
	for _, system := range []string{"kernel-lfs", "user-lfs"} {
		t.Run(system, func(t *testing.T) {
			opts := smallOpts(system, true)
			opts.Snapshots = 4
			rep, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				for _, v := range rep.Violations {
					t.Errorf("write op %d (stage %s, %d committed): %s", v.WriteOp, v.Stage, v.Committed, v.Err)
				}
				t.Fatalf("%d/%d crash points failed with snapshots pinned", len(rep.Violations), rep.Points)
			}
			if rep.Snapshots != 4 {
				t.Fatalf("report should echo the snapshot cadence, got %d", rep.Snapshots)
			}
		})
	}
}

// TestSweepSamplingCoversCheckpoints checks the dense sampler actually put
// points inside checkpoint processing, not just at commit boundaries.
func TestSweepSamplingCoversCheckpoints(t *testing.T) {
	opts := smallOpts("kernel-lfs", true)
	if err := opts.fill(); err != nil {
		t.Fatal(err)
	}
	_, spans, loadOps, err := goldenRun(opts)
	if err != nil {
		t.Fatal(err)
	}
	var sawCheckpoint bool
	for _, s := range spans {
		if s.From < loadOps {
			t.Fatalf("span %+v starts before the load finished (op %d)", s, loadOps)
		}
		if s.Stage == "checkpoint" {
			sawCheckpoint = true
		}
	}
	if !sawCheckpoint {
		t.Fatal("golden run recorded no checkpoint span")
	}
	points, dense := samplePoints(spans, 0)
	if dense == 0 || len(points) < dense {
		t.Fatalf("sampling looks wrong: %d points, %d dense", len(points), dense)
	}
	for i := 1; i < len(points); i++ {
		if points[i] <= points[i-1] {
			t.Fatal("points not strictly increasing")
		}
	}
	// A bounded sample must honor the cap and stay sorted.
	capped, _ := samplePoints(spans, 10)
	if len(capped) > 10 {
		t.Fatalf("cap ignored: %d points", len(capped))
	}
}

// TestSweepDeterministic requires byte-identical reports from identical
// options — the property the CI job and EXPERIMENTS numbers rest on.
func TestSweepDeterministic(t *testing.T) {
	opts := smallOpts("user-lfs", true)
	opts.Txns = 40
	opts.MaxPoints = 24
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("reports differ:\n%s\n%s", ja, jb)
	}
}
