package tpcb

import (
	"testing"
)

func TestProbeFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	cfg := ScaledConfig(0.05) // 50k accounts
	const n = 5000
	for _, kind := range []string{"user-ffs", "user-lfs", "kernel-lfs"} {
		rig, err := BuildRig(RigOptions{Kind: kind, Config: cfg, ExpectedTxns: n})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunBenchmark(rig.Sys, rig.Clock, cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s  disk=%v", res, rig.Dev.Stats())
		if rig.LFS != nil {
			t.Logf("   lfs stats: %+v", rig.LFS.Stats())
		}
	}
}
