package tpcb

// This file fixes the simulator wall-clock benchmark scenarios shared by the
// in-package go-test benchmarks (bench_test.go) and cmd/simbench, which runs
// the same scenarios and records them in BENCH_simcore.json so CI can chart
// the events/sec trajectory PR over PR. The numbers are wall-clock
// measurements of the discrete-event core itself (scheduler dispatch, trace
// recording, disk-model bookkeeping): the simulated result of every run is
// identical from one PR to the next unless the simulation's behaviour
// deliberately changes, so wall-time movements are pure simulator-speed
// movements.
const (
	// SimCoreBenchTxns is the transaction count of every benchmark scenario.
	SimCoreBenchTxns = 2000
	// SimCoreBenchScale is the TPC-B scale factor of every scenario.
	SimCoreBenchScale = 0.02
)

// SimCoreBenchRig builds the standard benchmark rig for one scenario. MPL 8
// and 64 run the paper-faithful sizing, which keeps the runs blocking-heavy
// and therefore scheduler-heavy — the thing these benchmarks exist to time.
// MPL=256 cannot run under that sizing: with no-steal buffering 256
// concurrent transactions hold the union of their uncommitted write sets in
// the pool, and the defaults (cache = db/10, database ≈ half the disk) leave
// too few free buffers and too few cleanable segments — so that scenario
// alone gets a bigger pool and disk.
func SimCoreBenchRig(kind string, mpl int, traced bool) (*Rig, Config, error) {
	cfg := ScaledConfig(SimCoreBenchScale)
	opts := RigOptions{
		Kind:         kind,
		Config:       cfg,
		ExpectedTxns: SimCoreBenchTxns,
		GroupCommit:  8,
		Trace:        traced,
	}
	if mpl > 64 {
		opts.DiskScale = 3
		opts.CacheBlocks = 2048
	}
	rig, err := BuildRig(opts)
	return rig, cfg, err
}
