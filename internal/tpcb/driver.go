package tpcb

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/lock"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Result reports one benchmark run.
type Result struct {
	System     string
	Txns       int
	MPL        int           // multiprogramming level (0 = legacy single-client driver)
	Retries    int64         // deadlock-victim retries (MPL > 1 only)
	Dispatches int64         // scheduler dispatches (MPL driver only; deterministic)
	Elapsed    time.Duration // simulated time
	TPS        float64
}

func (r Result) String() string {
	out := fmt.Sprintf("%-12s %6d txns in %8.1fs simulated → %6.2f TPS", r.System, r.Txns, r.Elapsed.Seconds(), r.TPS)
	if r.MPL > 1 {
		out += fmt.Sprintf(" (MPL %d, %d deadlock retries)", r.MPL, r.Retries)
	}
	return out
}

// RunBenchmark executes n transactions on sys, measuring simulated elapsed
// time (including the final drain of any pending group commit).
func RunBenchmark(sys System, clock *sim.Clock, cfg Config, n int) (Result, error) {
	return RunBenchmarkIdle(sys, clock, cfg, n, nil)
}

// RunBenchmarkIdle is RunBenchmark with an idle hook invoked between
// transactions. Rigs built with CleanerMode "idle" point the hook at the
// LFS's incremental background cleaner, which reclaims segments in the
// device's idle windows instead of stalling a flush mid-transaction.
func RunBenchmarkIdle(sys System, clock *sim.Clock, cfg Config, n int, idle func() error) (Result, error) {
	return RunBenchmarkIdleTraced(sys, clock, cfg, n, idle, nil)
}

// RunBenchmarkIdleTraced is RunBenchmarkIdle with time attribution: the run
// (including the drain) is bracketed as the "main" proc so the tracer's
// per-proc report covers exactly the measured interval, excluding the load
// phase. A nil tracer makes it identical to RunBenchmarkIdle.
func RunBenchmarkIdleTraced(sys System, clock *sim.Clock, cfg Config, n int, idle func() error, tr *trace.Tracer) (Result, error) {
	gen := NewGenerator(cfg)
	tr.ProcStart("main")
	start := clock.Now()
	for i := 0; i < n; i++ {
		if err := sys.Run(gen.Next()); err != nil {
			return Result{}, fmt.Errorf("tpcb: txn %d on %s: %w", i, sys.Name(), err)
		}
		if idle != nil {
			if err := idle(); err != nil {
				return Result{}, fmt.Errorf("tpcb: idle cleaning after txn %d on %s: %w", i, sys.Name(), err)
			}
		}
	}
	if err := sys.Drain(); err != nil {
		return Result{}, err
	}
	tr.ProcEnd()
	elapsed := clock.Now() - start
	res := Result{System: sys.Name(), Txns: n, Elapsed: elapsed}
	if elapsed > 0 {
		res.TPS = float64(n) / elapsed.Seconds()
	}
	return res, nil
}

// RunBenchmarkMPL executes n transactions spread over mpl concurrent
// clients, each a cooperatively scheduled virtual process with its own
// deterministic transaction stream (ClientSeed). Clients contend for the
// disk, the log tail, and page locks in simulated time; a client that loses
// deadlock detection aborts, retries the same transaction, and the retry is
// counted in Result.Retries. The idle hook (background cleaning) runs after
// each transaction in the issuing client's context, as in RunBenchmarkIdle.
//
// MPL 1 runs through the same scheduler and reproduces the direct-driver
// numbers exactly (client 0 keeps the base seed; a lone proc never queues,
// never blocks, and accrues time exactly as the global clock did).
func RunBenchmarkMPL(sys System, clock *sim.Clock, cfg Config, n, mpl int, idle func() error) (Result, error) {
	return RunBenchmarkMPLTraced(sys, clock, cfg, n, mpl, idle, nil)
}

// RunBenchmarkMPLTraced is RunBenchmarkMPL with time attribution: each client
// proc registers with the tracer for the per-proc "where did simulated time
// go" report, the post-run drain is attributed to a synthetic "drain" proc,
// and scheduler dispatches are counted. A nil tracer makes it identical to
// RunBenchmarkMPL.
func RunBenchmarkMPLTraced(sys System, clock *sim.Clock, cfg Config, n, mpl int, idle func() error, tr *trace.Tracer) (Result, error) {
	if mpl < 1 {
		mpl = 1
	}
	workers := make([]Worker, mpl)
	if mc, ok := sys.(MultiClient); ok {
		for c := range workers {
			w, err := mc.NewWorker()
			if err != nil {
				return Result{}, err
			}
			workers[c] = w
		}
	} else if mpl == 1 {
		workers[0] = sys
	} else {
		return Result{}, fmt.Errorf("tpcb: %s does not support MPL %d (no MultiClient)", sys.Name(), mpl)
	}

	sched := sim.NewScheduler(clock)
	start := clock.Now()
	errs := make([]error, mpl)
	retries := make([]int64, mpl)
	for c := 0; c < mpl; c++ {
		c := c
		gen := NewClientGenerator(cfg, c)
		quota := n / mpl
		if c < n%mpl {
			quota++
		}
		name := fmt.Sprintf("client-%d", c)
		sched.Spawn(name, func() {
			tr.ProcStart(name)
			defer tr.ProcEnd()
			for i := 0; i < quota; i++ {
				clock.Yield()
				t := gen.Next()
				for {
					err := workers[c].Run(t)
					if err == nil {
						break
					}
					if errors.Is(err, lock.ErrDeadlock) {
						// Deadlock victim: the transaction was aborted;
						// retry it (its abort advanced this client's
						// clock, so the retry happens strictly later).
						retries[c]++
						clock.Yield()
						continue
					}
					errs[c] = fmt.Errorf("tpcb: client %d txn %d on %s: %w", c, i, sys.Name(), err)
					return
				}
				if idle != nil {
					if err := idle(); err != nil {
						errs[c] = fmt.Errorf("tpcb: idle cleaning on %s client %d: %w", sys.Name(), c, err)
						return
					}
				}
			}
		})
	}
	sched.Run()
	dispatches := sched.Dispatches()
	tr.Metrics().Set("sched.dispatches", dispatches)
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	// The drain runs outside any client proc; give it its own row so its
	// disk and commit time are not silently dropped from the report.
	tr.ProcStart("drain")
	if err := sys.Drain(); err != nil {
		return Result{}, err
	}
	tr.ProcEnd()
	elapsed := clock.Now() - start
	res := Result{System: sys.Name(), Txns: n, MPL: mpl, Dispatches: dispatches, Elapsed: elapsed}
	for _, r := range retries {
		res.Retries += r
	}
	if elapsed > 0 {
		res.TPS = float64(n) / elapsed.Seconds()
	}
	return res, nil
}
