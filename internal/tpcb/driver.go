package tpcb

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Result reports one benchmark run.
type Result struct {
	System  string
	Txns    int
	Elapsed time.Duration // simulated time
	TPS     float64
}

func (r Result) String() string {
	return fmt.Sprintf("%-12s %6d txns in %8.1fs simulated → %6.2f TPS", r.System, r.Txns, r.Elapsed.Seconds(), r.TPS)
}

// RunBenchmark executes n transactions on sys, measuring simulated elapsed
// time (including the final drain of any pending group commit).
func RunBenchmark(sys System, clock *sim.Clock, cfg Config, n int) (Result, error) {
	return RunBenchmarkIdle(sys, clock, cfg, n, nil)
}

// RunBenchmarkIdle is RunBenchmark with an idle hook invoked between
// transactions. Rigs built with CleanerMode "idle" point the hook at the
// LFS's incremental background cleaner, which reclaims segments in the
// device's idle windows instead of stalling a flush mid-transaction.
func RunBenchmarkIdle(sys System, clock *sim.Clock, cfg Config, n int, idle func() error) (Result, error) {
	gen := NewGenerator(cfg)
	start := clock.Now()
	for i := 0; i < n; i++ {
		if err := sys.Run(gen.Next()); err != nil {
			return Result{}, fmt.Errorf("tpcb: txn %d on %s: %w", i, sys.Name(), err)
		}
		if idle != nil {
			if err := idle(); err != nil {
				return Result{}, fmt.Errorf("tpcb: idle cleaning after txn %d on %s: %w", i, sys.Name(), err)
			}
		}
	}
	if err := sys.Drain(); err != nil {
		return Result{}, err
	}
	elapsed := clock.Now() - start
	res := Result{System: sys.Name(), Txns: n, Elapsed: elapsed}
	if elapsed > 0 {
		res.TPS = float64(n) / elapsed.Seconds()
	}
	return res, nil
}
