package tpcb

import (
	"fmt"
	"testing"

	"repro/internal/lfs"
	"repro/internal/libtp"
	"repro/internal/lock"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// TestPartitionerExactlyOneShard pins the shard-partition arithmetic: for a
// grid of (count, shards) configurations — including non-divisible counts —
// every key maps to exactly one shard, the ranges tile [0, count) with no
// gap or overlap, and no two shards differ by more than one row.
func TestPartitionerExactlyOneShard(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 5, 7, 8} {
		for _, count := range []int64{int64(shards), 10, 13, 100, 101, 255} {
			if count < int64(shards) {
				continue
			}
			covered := int64(0)
			var prevHi int64
			minSz, maxSz := count, int64(0)
			for s := 0; s < shards; s++ {
				lo, hi := rangeOf(count, shards, s)
				if lo != prevHi {
					t.Fatalf("count=%d shards=%d: shard %d starts at %d, want %d (gap or overlap)", count, shards, s, lo, prevHi)
				}
				if hi <= lo {
					t.Fatalf("count=%d shards=%d: shard %d empty [%d,%d)", count, shards, s, lo, hi)
				}
				sz := hi - lo
				minSz, maxSz = min(minSz, sz), max(maxSz, sz)
				for id := lo; id < hi; id++ {
					if got := shardOf(count, shards, id); got != s {
						t.Fatalf("count=%d shards=%d: id %d in range of shard %d but shardOf says %d", count, shards, id, s, got)
					}
				}
				covered += sz
				prevHi = hi
			}
			if covered != count || prevHi != count {
				t.Fatalf("count=%d shards=%d: ranges cover %d rows ending at %d", count, shards, covered, prevHi)
			}
			if maxSz-minSz > 1 {
				t.Fatalf("count=%d shards=%d: shard sizes range %d..%d (remainder not spread)", count, shards, minSz, maxSz)
			}
		}
	}
}

// TestPartitionerValidation pins construction-time validation: shard counts
// below one and relations smaller than the shard count must fail loudly.
func TestPartitionerValidation(t *testing.T) {
	cfg := Config{Accounts: 100, Tellers: 10, Branches: 4, Seed: 1}
	if _, err := NewPartitioner(cfg, 0); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := NewPartitioner(cfg, 5); err == nil {
		t.Fatal("5 shards accepted with only 4 branches")
	}
	p, err := NewPartitioner(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 4 {
		t.Fatalf("Shards() = %d", p.Shards())
	}
}

// shardedStormRig builds a 3-device partitioned user-lfs rig for the crash
// storm tests.
func shardedStormRig(t *testing.T, cfg Config) *Rig {
	t.Helper()
	rig, err := BuildRig(RigOptions{
		Kind:         "user-lfs",
		Config:       cfg,
		ExpectedTxns: 400,
		Devices:      3,
		Layout:       "partition",
	})
	if err != nil {
		t.Fatal(err)
	}
	return rig
}

// TestShardedCrashStorm crashes the partitioned system at transaction
// boundaries: all in-memory state is dropped, every device is remounted,
// recovery resolves in-doubt two-phase-commit branches from the union of
// the shards' decision records, and the cross-shard TPC-B invariants must
// hold — every acknowledged transfer present on every shard it touched.
func TestShardedCrashStorm(t *testing.T) {
	cfg := Config{Accounts: 1500, Tellers: 15, Branches: 3, Seed: 77}
	rig := shardedStormRig(t, cfg)
	sys := rig.Sys.(*ShardedSystem)
	gen := NewGenerator(cfg)
	rng := sim.NewRNG(11)

	var committed []Txn
	for round := 0; round < 5; round++ {
		burst := 20 + rng.Intn(30)
		for i := 0; i < burst; i++ {
			tx := gen.Next()
			if err := sys.Run(tx); err != nil {
				t.Fatalf("round %d txn %d: %v", round, i, err)
			}
			committed = append(committed, tx)
		}
		if cross, _ := sys.CrossShardTxns(); round == 0 && cross == 0 {
			t.Fatal("no cross-shard transactions in the first burst; workload does not exercise 2PC")
		}
		// CRASH: remount every device, recover the array as a whole.
		fss := make([]vfs.FileSystem, len(rig.Devs))
		for d, dev := range rig.Devs {
			fs2, err := lfs.Mount(dev, rig.Clock, lfs.Options{CacheBlocks: 256})
			if err != nil {
				t.Fatalf("round %d shard %d remount: %v", round, d, err)
			}
			fss[d] = fs2
		}
		envs, _, err := RecoverSharded(fss, rig.Clock, libtp.Options{}, lock.NewManager())
		if err != nil {
			t.Fatalf("round %d recover: %v", round, err)
		}
		if err := VerifyShardedState(fss, rig.Part, committed, nil); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		sys = NewShardedSystem(envs, rig.Part, rig.Clock, sim.SpriteCosts())
		if err := sys.Attach(); err != nil {
			t.Fatalf("round %d attach: %v", round, err)
		}
		rig.Shards = envs
	}
}

// TestShardedMid2PCCrash injects device-level crashes mid-run — including
// between a participant's prepare and the coordinator's decision, and
// between the decision and phase two — then recovers and checks atomicity:
// the interrupted cross-shard transfer is either everywhere or nowhere.
func TestShardedMid2PCCrash(t *testing.T) {
	cfg := Config{Accounts: 900, Tellers: 9, Branches: 3, Seed: 55}
	build := func() *Rig { return shardedStormRig(t, cfg) }

	// Learn the write-op timeline from a golden run.
	golden := build()
	loadOps := golden.Crash.WriteOps()
	gen := NewGenerator(cfg)
	const txns = 40
	for i := 0; i < txns; i++ {
		if err := golden.Sys.Run(gen.Next()); err != nil {
			t.Fatalf("golden txn %d: %v", i, err)
		}
	}
	if err := golden.Sys.Drain(); err != nil {
		t.Fatal(err)
	}
	totalOps := golden.Crash.WriteOps()
	if totalOps <= loadOps {
		t.Fatalf("golden run issued no writes (load %d, total %d)", loadOps, totalOps)
	}

	// Sweep a stride of crash points across the run; every log force of a
	// prepare, decision, or phase-two record is a write op, so the stride
	// lands inside two-phase commit windows many times over.
	span := totalOps - loadOps
	step := span / 23
	if step < 1 {
		step = 1
	}
	for n := loadOps + 1; n <= totalOps; n += step {
		rig := build()
		rig.Crash.CrashAfter(n, true, 0x2bc^uint64(n))
		g := NewGenerator(cfg)
		var committed []Txn
		var inFlight *Txn
		for i := 0; i < txns; i++ {
			tx := g.Next()
			if err := rig.Sys.Run(tx); err != nil {
				if !rig.Crash.Crashed() {
					t.Fatalf("point %d txn %d failed without crash: %v", n, i, err)
				}
				inFlight = &tx
				break
			}
			committed = append(committed, tx)
		}
		if !rig.Crash.Crashed() {
			if err := rig.Sys.Drain(); err != nil && !rig.Crash.Crashed() {
				t.Fatalf("point %d drain failed without crash: %v", n, err)
			}
		}
		if !rig.Crash.Crashed() {
			t.Fatalf("crash point %d never fired", n)
		}
		rig.Crash.ClearCrash()
		fss := make([]vfs.FileSystem, len(rig.Devs))
		for d, dev := range rig.Devs {
			fs2, err := lfs.Mount(dev, rig.Clock, lfs.Options{CacheBlocks: 256})
			if err != nil {
				t.Fatalf("point %d shard %d remount: %v", n, d, err)
			}
			fss[d] = fs2
		}
		if _, _, err := RecoverSharded(fss, rig.Clock, libtp.Options{}, lock.NewManager()); err != nil {
			t.Fatalf("point %d recover: %v", n, err)
		}
		if err := VerifyShardedState(fss, rig.Part, committed, inFlight); err != nil {
			t.Fatalf("point %d (committed %d): %v", n, len(committed), err)
		}
	}
}

// TestShardedDeterminism pins two-run byte-equality on a multi-device
// partitioned rig at MPL 8: identical options must yield identical results
// and identical per-device disk statistics.
func TestShardedDeterminism(t *testing.T) {
	cfg := Config{Accounts: 1200, Tellers: 12, Branches: 3, Seed: 42}
	run := func() (Result, []string) {
		rig, err := BuildRig(RigOptions{
			Kind:         "user-lfs",
			Config:       cfg,
			ExpectedTxns: 300,
			Devices:      3,
			Layout:       "partition",
			GroupCommit:  4,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := rig.RunMPL(cfg, 150, 8)
		if err != nil {
			t.Fatal(err)
		}
		var stats []string
		for _, d := range rig.Devs {
			stats = append(stats, fmt.Sprintf("%+v", d.Stats()))
		}
		return res, stats
	}
	r1, s1 := run()
	r2, s2 := run()
	if r1 != r2 {
		t.Fatalf("results differ:\n%+v\n%+v", r1, r2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("device %d stats differ:\n%s\n%s", i, s1[i], s2[i])
		}
	}
}
