package tpcb

import (
	"repro/internal/libtp"
	"repro/internal/trace"
)

// CollectSnapshot assembles the end-of-run report for a rig: the benchmark
// result, every subsystem's counters, and — when the rig carries a tracer —
// the per-proc time attribution and the metrics registry. The trace package
// deliberately imports none of the subsystems, so this is where its neutral
// section structs get filled in.
//
// tr may be nil (or distinct from the rig's tracer, e.g. a harness that owns
// the tracer itself); the stats sections are collected either way.
func CollectSnapshot(rig *Rig, res Result, tr *trace.Tracer) *trace.Snapshot {
	snap := &trace.Snapshot{
		System:  res.System,
		Txns:    res.Txns,
		MPL:     res.MPL,
		Retries: res.Retries,
		Elapsed: res.Elapsed,
		TPS:     res.TPS,
	}
	if rig == nil {
		return snap
	}
	if len(rig.Devs) > 0 {
		// Aggregate = field-wise sum over member devices; each request is
		// charged to exactly one device, so nothing is double-counted. The
		// per-device rows appear only on multi-device rigs, keeping
		// single-disk snapshots byte-identical to historical captures.
		sec := &trace.DiskSection{}
		for i, d := range rig.Devs {
			ds := d.Stats()
			sec.Reads += ds.Reads
			sec.BlocksRead += ds.BlocksRead
			sec.Writes += ds.Writes
			sec.BlocksWrit += ds.BlocksWrit
			sec.Seeks += ds.Seeks
			sec.BusyTime += ds.BusyTime
			sec.QueueTime += ds.QueueTime
			if len(rig.Devs) > 1 {
				sec.Devices = append(sec.Devices, trace.DiskDeviceRow{
					Dev:        i,
					Reads:      ds.Reads,
					BlocksRead: ds.BlocksRead,
					Writes:     ds.Writes,
					BlocksWrit: ds.BlocksWrit,
					Seeks:      ds.Seeks,
					BusyTime:   ds.BusyTime,
					QueueTime:  ds.QueueTime,
				})
			}
		}
		snap.Disk = sec
	}
	if rig.LFS != nil {
		fst := rig.LFS.Stats()
		snap.LFS = &trace.LFSSection{
			PartialSegments: fst.PartialSegments,
			BlocksLogged:    fst.BlocksLogged,
			Checkpoints:     fst.Checkpoints,
			WriteAmp:        fst.WriteAmplification(),
			Cleaner: trace.CleanerSection{
				Runs:            fst.Cleaner.Runs,
				SegmentsCleaned: fst.Cleaner.SegmentsCleaned,
				BlocksCopied:    fst.Cleaner.BlocksCopied,
				BlocksDead:      fst.Cleaner.BlocksDead,
				BusyTime:        fst.Cleaner.BusyTime,
				OverlapTime:     fst.Cleaner.OverlapTime,
				StallTime:       fst.Cleaner.StallTime,
				HotBlocks:       fst.Cleaner.HotBlocks,
				ColdBlocks:      fst.Cleaner.ColdBlocks,
				RetentionSkips:  fst.Cleaner.RetentionSkips,
				RetainedBlocks:  fst.Cleaner.RetainedBlocks,
				HorizonLag:      fst.Cleaner.HorizonLag,
			},
		}
	}
	envs := rig.Shards
	if rig.Env != nil {
		envs = []*libtp.Env{rig.Env}
	}
	if len(envs) > 0 {
		// On a sharded rig each environment has its own log; the section
		// sums them (one record lands in exactly one shard's log).
		sec := &trace.WALSection{}
		for _, env := range envs {
			ws := env.LogStats()
			sec.Records += ws.Records
			sec.BytesLogged += ws.BytesLogged
			sec.Forces += ws.Forces
			sec.GroupCommits += ws.GroupCommits
			sec.Segments += ws.Segments
			sec.Rotations += ws.Rotations
			sec.SegmentsSealed += ws.SegmentsSealed
			sec.SegmentsDeleted += ws.SegmentsDeleted
			sec.SegmentsArchived += ws.SegmentsArchived
			sec.Checkpoints += ws.Checkpoints
			sec.IndexEntries += ws.IndexEntries
			sec.IndexWrites += ws.IndexWrites
		}
		snap.WAL = sec
	}
	if rig.Core != nil {
		cs := rig.Core.Stats()
		snap.Embedded = &trace.EmbeddedSection{
			Committed:    cs.Committed,
			Aborted:      cs.Aborted,
			CommitFlush:  cs.CommitFlush,
			PagesFlushed: cs.PagesFlushed,
			BytesFlushed: cs.BytesFlushed,

			Snapshots:        cs.Snapshots,
			VersionsRecorded: cs.VersionsRecorded,
		}
	}
	if rig.Env != nil || rig.Core != nil || rig.Shards != nil {
		ls := rig.LockStats()
		snap.Locks = &trace.LockSection{
			Acquired:       ls.Acquired,
			Waited:         ls.Waited,
			BlockedTime:    ls.BlockedTime,
			Deadlocks:      ls.Deadlocks,
			DeadlockAborts: ls.DeadlockAborts,
		}
	}
	if tr.Enabled() {
		snap.Attribution = tr.Attribution()
		ms := tr.Metrics().Snapshot()
		snap.Metrics = &ms
	}
	return snap
}

// CollectMixedSnapshot is CollectSnapshot plus the scan section of a mixed
// OLTP + long-running-scan run.
func CollectMixedSnapshot(rig *Rig, res MixedResult, tr *trace.Tracer) *trace.Snapshot {
	snap := CollectSnapshot(rig, res.Result, tr)
	if res.Scanners > 0 {
		snap.Scan = &trace.ScanSection{
			Mode:          string(res.ScanMode),
			Scanners:      res.Scanners,
			Scans:         res.Scans,
			Rows:          res.ScanRows,
			Retries:       res.ScanRetries,
			WriterElapsed: res.WriterElapsed,
			WriterTPS:     res.WriterTPS,
		}
	}
	return snap
}
