package tpcb

import "repro/internal/trace"

// CollectSnapshot assembles the end-of-run report for a rig: the benchmark
// result, every subsystem's counters, and — when the rig carries a tracer —
// the per-proc time attribution and the metrics registry. The trace package
// deliberately imports none of the subsystems, so this is where its neutral
// section structs get filled in.
//
// tr may be nil (or distinct from the rig's tracer, e.g. a harness that owns
// the tracer itself); the stats sections are collected either way.
func CollectSnapshot(rig *Rig, res Result, tr *trace.Tracer) *trace.Snapshot {
	snap := &trace.Snapshot{
		System:  res.System,
		Txns:    res.Txns,
		MPL:     res.MPL,
		Retries: res.Retries,
		Elapsed: res.Elapsed,
		TPS:     res.TPS,
	}
	if rig == nil {
		return snap
	}
	if rig.Dev != nil {
		st := rig.Dev.Stats()
		snap.Disk = &trace.DiskSection{
			Reads:      st.Reads,
			BlocksRead: st.BlocksRead,
			Writes:     st.Writes,
			BlocksWrit: st.BlocksWrit,
			Seeks:      st.Seeks,
			BusyTime:   st.BusyTime,
			QueueTime:  st.QueueTime,
		}
	}
	if rig.LFS != nil {
		fst := rig.LFS.Stats()
		snap.LFS = &trace.LFSSection{
			PartialSegments: fst.PartialSegments,
			BlocksLogged:    fst.BlocksLogged,
			Checkpoints:     fst.Checkpoints,
			WriteAmp:        fst.WriteAmplification(),
			Cleaner: trace.CleanerSection{
				Runs:            fst.Cleaner.Runs,
				SegmentsCleaned: fst.Cleaner.SegmentsCleaned,
				BlocksCopied:    fst.Cleaner.BlocksCopied,
				BlocksDead:      fst.Cleaner.BlocksDead,
				BusyTime:        fst.Cleaner.BusyTime,
				OverlapTime:     fst.Cleaner.OverlapTime,
				StallTime:       fst.Cleaner.StallTime,
				HotBlocks:       fst.Cleaner.HotBlocks,
				ColdBlocks:      fst.Cleaner.ColdBlocks,
			},
		}
	}
	if rig.Env != nil {
		ws := rig.Env.LogStats()
		snap.WAL = &trace.WALSection{
			Records:      ws.Records,
			BytesLogged:  ws.BytesLogged,
			Forces:       ws.Forces,
			GroupCommits: ws.GroupCommits,

			Segments:         ws.Segments,
			Rotations:        ws.Rotations,
			SegmentsSealed:   ws.SegmentsSealed,
			SegmentsDeleted:  ws.SegmentsDeleted,
			SegmentsArchived: ws.SegmentsArchived,
			Checkpoints:      ws.Checkpoints,
			IndexEntries:     ws.IndexEntries,
			IndexWrites:      ws.IndexWrites,
		}
	}
	if rig.Core != nil {
		cs := rig.Core.Stats()
		snap.Embedded = &trace.EmbeddedSection{
			Committed:    cs.Committed,
			Aborted:      cs.Aborted,
			CommitFlush:  cs.CommitFlush,
			PagesFlushed: cs.PagesFlushed,
			BytesFlushed: cs.BytesFlushed,
		}
	}
	if rig.Env != nil || rig.Core != nil {
		ls := rig.LockStats()
		snap.Locks = &trace.LockSection{
			Acquired:       ls.Acquired,
			Waited:         ls.Waited,
			BlockedTime:    ls.BlockedTime,
			Deadlocks:      ls.Deadlocks,
			DeadlockAborts: ls.DeadlockAborts,
		}
	}
	if tr.Enabled() {
		snap.Attribution = tr.Attribution()
		ms := tr.Metrics().Snapshot()
		snap.Metrics = &ms
	}
	return snap
}
