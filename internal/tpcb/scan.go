package tpcb

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/lock"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ScanMode selects how a long-running reader executes against the OLTP
// stream.
type ScanMode string

const (
	// ScanNone runs no scans (the plain TPC-B baseline).
	ScanNone ScanMode = "none"
	// ScanLocking runs each scan as an ordinary two-phase-locking
	// transaction: the scan read-locks every account page it touches and
	// holds the locks to the end of the scan, serializing against writers.
	ScanLocking ScanMode = "locking"
	// ScanSnapshot runs each scan as a read-only multiversion snapshot:
	// no page locks at all, reading the version horizon pinned at scan
	// start from the no-overwrite log (kernel) or the WAL's before-images
	// (user level).
	ScanSnapshot ScanMode = "snapshot"
)

// Scanner runs full key-order scans of the account relation.
type Scanner interface {
	// Scan walks every account record once and returns the row count.
	Scan() (int64, error)
}

// ScanCapable is implemented by systems that support transactional scans.
// NewScanner returns the scanner and the mode it actually runs in: a system
// without retained old versions (user-level on FFS, which overwrites in
// place and whose snapshot horizon the log manager cannot serve once pages
// are gone) degrades ScanSnapshot to ScanLocking.
type ScanCapable interface {
	NewScanner(mode ScanMode) (Scanner, ScanMode, error)
}

// MixedResult reports a mixed OLTP + scan run. Result covers the whole run
// (writer transactions over total elapsed, scans excluded from TPS);
// WriterElapsed/WriterTPS measure the writer side alone — the fair basis
// for "did the scans slow the writers down", since trailing scans may run
// past the last commit.
type MixedResult struct {
	Result
	ScanMode      ScanMode
	Scanners      int
	Scans         int
	ScanRows      int64
	ScanRetries   int64 // deadlock-victim scan retries (locking mode only)
	WriterElapsed time.Duration
	WriterTPS     float64
}

func (r MixedResult) String() string {
	return r.Result.String() + fmt.Sprintf(" + %d %s scans (%d rows, %d retries); writers alone: %.2f TPS",
		r.Scans, r.ScanMode, r.ScanRows, r.ScanRetries, r.WriterTPS)
}

// RunMixedMPL executes n writer transactions over mpl clients while
// `scanners` concurrent readers each perform `scansEach` full account scans
// in the given mode. See RunMixedMPLTraced.
func RunMixedMPL(sys System, clock *sim.Clock, cfg Config, n, mpl, scanners, scansEach int, mode ScanMode, idle func() error) (MixedResult, error) {
	return RunMixedMPLTraced(sys, clock, cfg, n, mpl, scanners, scansEach, mode, idle, nil)
}

// RunMixedMPLTraced is the mixed OLTP + long-scan driver: the writer side
// is exactly RunBenchmarkMPLTraced (client-c procs, deterministic per-client
// streams, deadlock-victim retries), plus scan-s procs interleaving full
// key-order account scans. Locking scans that lose deadlock detection abort
// and retry like writers; snapshot scans cannot deadlock. Writer completion
// times are recorded so the result separates writer-only throughput from
// total elapsed.
func RunMixedMPLTraced(sys System, clock *sim.Clock, cfg Config, n, mpl, scanners, scansEach int, mode ScanMode, idle func() error, tr *trace.Tracer) (MixedResult, error) {
	if mpl < 1 {
		mpl = 1
	}
	if mode == ScanNone || scansEach <= 0 {
		scanners = 0
	}
	workers := make([]Worker, mpl)
	if mc, ok := sys.(MultiClient); ok {
		for c := range workers {
			w, err := mc.NewWorker()
			if err != nil {
				return MixedResult{}, err
			}
			workers[c] = w
		}
	} else if mpl == 1 {
		workers[0] = sys
	} else {
		return MixedResult{}, fmt.Errorf("tpcb: %s does not support MPL %d (no MultiClient)", sys.Name(), mpl)
	}
	scans := make([]Scanner, scanners)
	effMode := mode
	if scanners > 0 {
		sc, ok := sys.(ScanCapable)
		if !ok {
			return MixedResult{}, fmt.Errorf("tpcb: %s does not support scans", sys.Name())
		}
		for i := range scans {
			var err error
			scans[i], effMode, err = sc.NewScanner(mode)
			if err != nil {
				return MixedResult{}, err
			}
		}
	}

	sched := sim.NewScheduler(clock)
	start := clock.Now()
	errs := make([]error, mpl+scanners)
	retries := make([]int64, mpl)
	writerEnd := make([]time.Duration, mpl)
	for c := 0; c < mpl; c++ {
		c := c
		gen := NewClientGenerator(cfg, c)
		quota := n / mpl
		if c < n%mpl {
			quota++
		}
		name := fmt.Sprintf("client-%d", c)
		sched.Spawn(name, func() {
			tr.ProcStart(name)
			defer tr.ProcEnd()
			defer func() { writerEnd[c] = clock.Now() }()
			for i := 0; i < quota; i++ {
				clock.Yield()
				t := gen.Next()
				for {
					err := workers[c].Run(t)
					if err == nil {
						break
					}
					if errors.Is(err, lock.ErrDeadlock) {
						retries[c]++
						clock.Yield()
						continue
					}
					errs[c] = fmt.Errorf("tpcb: client %d txn %d on %s: %w", c, i, sys.Name(), err)
					return
				}
				if idle != nil {
					if err := idle(); err != nil {
						errs[c] = fmt.Errorf("tpcb: idle cleaning on %s client %d: %w", sys.Name(), c, err)
						return
					}
				}
			}
		})
	}
	scanRows := make([]int64, scanners)
	scanRetries := make([]int64, scanners)
	scansDone := make([]int, scanners)
	for s := 0; s < scanners; s++ {
		s := s
		name := fmt.Sprintf("scan-%d", s)
		sched.Spawn(name, func() {
			tr.ProcStart(name)
			defer tr.ProcEnd()
			for k := 0; k < scansEach; k++ {
				clock.Yield()
				for {
					rows, err := scans[s].Scan()
					if err == nil {
						scanRows[s] += rows
						scansDone[s]++
						break
					}
					if errors.Is(err, lock.ErrDeadlock) {
						// Locking scans are deadlock-prone by design: the
						// victim aborts, drops its read locks, and restarts
						// the whole scan.
						scanRetries[s]++
						clock.Yield()
						continue
					}
					errs[mpl+s] = fmt.Errorf("tpcb: scan %d on %s: %w", s, sys.Name(), err)
					return
				}
			}
		})
	}
	sched.Run()
	dispatches := sched.Dispatches()
	tr.Metrics().Set("sched.dispatches", dispatches)
	for _, err := range errs {
		if err != nil {
			return MixedResult{}, err
		}
	}
	tr.ProcStart("drain")
	if err := sys.Drain(); err != nil {
		return MixedResult{}, err
	}
	tr.ProcEnd()
	elapsed := clock.Now() - start
	res := MixedResult{
		Result:   Result{System: sys.Name(), Txns: n, MPL: mpl, Dispatches: dispatches, Elapsed: elapsed},
		ScanMode: effMode,
		Scanners: scanners,
	}
	if scanners == 0 {
		res.ScanMode = ScanNone
	}
	for _, r := range retries {
		res.Retries += r
	}
	var wEnd time.Duration
	for _, e := range writerEnd {
		if e > wEnd {
			wEnd = e
		}
	}
	res.WriterElapsed = wEnd - start
	for s := 0; s < scanners; s++ {
		res.Scans += scansDone[s]
		res.ScanRows += scanRows[s]
		res.ScanRetries += scanRetries[s]
	}
	if elapsed > 0 {
		res.TPS = float64(n) / elapsed.Seconds()
	}
	if res.WriterElapsed > 0 {
		res.WriterTPS = float64(n) / res.WriterElapsed.Seconds()
	}
	if tr.Enabled() && scanners > 0 {
		tr.Metrics().Set("scan.count", int64(res.Scans))
		tr.Metrics().Set("scan.rows", res.ScanRows)
		tr.Metrics().Set("scan.retries", res.ScanRetries)
	}
	return res, nil
}

// RunMixedOn runs the mixed driver on a rig (idle hook and tracer wired).
func (r *Rig) RunMixed(cfg Config, n, mpl, scanners, scansEach int, mode ScanMode) (MixedResult, error) {
	return RunMixedMPLTraced(r.Sys, r.Clock, cfg, n, mpl, scanners, scansEach, mode, r.Idle, r.Tracer)
}

// --- user-level scanners ---

// userLockScanner scans under two-phase locking: a plain read-only
// transaction whose read locks accumulate over every account page until the
// scan commits (the pre-snapshot behavior a long reader imposes on
// writers).
type userLockScanner struct {
	s *UserSystem
}

func (sc *userLockScanner) Scan() (int64, error) {
	txn := sc.s.env.Begin()
	tr, err := btree.Open(txn.Store(sc.s.acc))
	if err != nil {
		txn.Abort()
		return 0, err
	}
	c, err := tr.First()
	if err != nil {
		txn.Abort()
		return 0, err
	}
	var n int64
	for c.Next() {
		n++
	}
	if c.Err() != nil {
		txn.Abort()
		return 0, c.Err()
	}
	return n, txn.Commit()
}

// userSnapScanner scans through a pinned snapshot: zero lock-manager calls,
// pages rewound to the commit horizon with WAL before-images.
type userSnapScanner struct {
	s *UserSystem
}

func (sc *userSnapScanner) Scan() (int64, error) {
	snap := sc.s.env.BeginSnapshot()
	defer snap.Close()
	tr, err := btree.Open(snap.Store(sc.s.acc))
	if err != nil {
		return 0, err
	}
	c, err := tr.First()
	if err != nil {
		return 0, err
	}
	var n int64
	for c.Next() {
		n++
	}
	return n, c.Err()
}

// NewScanner implements ScanCapable. On FFS, snapshot scans degrade to
// locking: FFS overwrites pages in place, so there is no no-overwrite log
// to retain old versions against — see DESIGN.md §12.
func (s *UserSystem) NewScanner(mode ScanMode) (Scanner, ScanMode, error) {
	switch mode {
	case ScanLocking:
		return &userLockScanner{s: s}, ScanLocking, nil
	case ScanSnapshot:
		if s.env.FS().Name() != "lfs" {
			return &userLockScanner{s: s}, ScanLocking, nil
		}
		return &userSnapScanner{s: s}, ScanSnapshot, nil
	}
	return nil, ScanNone, fmt.Errorf("tpcb: unknown scan mode %q", mode)
}

// --- kernel scanners ---

// kernelLockScanner is a read-only kernel transaction on its own process
// (restriction 3: transactions may not span processes): every page read
// acquires a kernel read lock held to commit.
type kernelLockScanner struct {
	s    *EmbeddedSystem
	proc *core.Process
}

func (sc *kernelLockScanner) Scan() (int64, error) {
	if err := sc.proc.TxnBegin(); err != nil {
		return 0, err
	}
	tr, err := btree.Open(core.NewStore(sc.proc, sc.s.acc))
	if err != nil {
		sc.proc.TxnAbort()
		return 0, err
	}
	c, err := tr.First()
	if err != nil {
		sc.proc.TxnAbort()
		return 0, err
	}
	var n int64
	for c.Next() {
		n++
	}
	if c.Err() != nil {
		sc.proc.TxnAbort()
		return 0, c.Err()
	}
	return n, sc.proc.TxnCommit()
}

// kernelSnapScanner scans through a kernel snapshot: superseded page
// versions are read straight from their retained addresses in the
// no-overwrite log.
type kernelSnapScanner struct {
	s *EmbeddedSystem
}

func (sc *kernelSnapScanner) Scan() (int64, error) {
	snap := sc.s.m.BeginSnapshot()
	defer snap.Close()
	tr, err := btree.Open(snap.Store(sc.s.acc))
	if err != nil {
		return 0, err
	}
	c, err := tr.First()
	if err != nil {
		return 0, err
	}
	var n int64
	for c.Next() {
		n++
	}
	return n, c.Err()
}

// NewScanner implements ScanCapable.
func (s *EmbeddedSystem) NewScanner(mode ScanMode) (Scanner, ScanMode, error) {
	switch mode {
	case ScanLocking:
		return &kernelLockScanner{s: s, proc: s.m.NewProcess()}, ScanLocking, nil
	case ScanSnapshot:
		return &kernelSnapScanner{s: s}, ScanSnapshot, nil
	}
	return nil, ScanNone, fmt.Errorf("tpcb: unknown scan mode %q", mode)
}
