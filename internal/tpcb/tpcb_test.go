package tpcb

import (
	"testing"

	"repro/internal/btree"
	"repro/internal/pagestore"
	"repro/internal/recno"
	"repro/internal/sim"
)

func smallCfg() Config {
	return Config{Accounts: 2000, Tellers: 20, Branches: 4, Seed: 7}
}

func buildSmall(t *testing.T, kind string) *Rig {
	t.Helper()
	rig, err := BuildRig(RigOptions{Kind: kind, Config: smallCfg(), ExpectedTxns: 500})
	if err != nil {
		t.Fatalf("BuildRig(%s): %v", kind, err)
	}
	return rig
}

func TestGeneratorDeterministic(t *testing.T) {
	g1, g2 := NewGenerator(smallCfg()), NewGenerator(smallCfg())
	for i := 0; i < 100; i++ {
		if g1.Next() != g2.Next() {
			t.Fatal("generator must be deterministic")
		}
	}
}

func TestGeneratorRanges(t *testing.T) {
	cfg := smallCfg()
	g := NewGenerator(cfg)
	for i := 0; i < 1000; i++ {
		tx := g.Next()
		if tx.Account < 0 || tx.Account >= cfg.Accounts {
			t.Fatalf("account %d out of range", tx.Account)
		}
		if tx.Teller < 0 || tx.Teller >= cfg.Tellers {
			t.Fatalf("teller %d out of range", tx.Teller)
		}
		if tx.Branch < 0 || tx.Branch >= cfg.Branches {
			t.Fatalf("branch %d out of range", tx.Branch)
		}
	}
}

func TestRecordEncoding(t *testing.T) {
	rec := BalanceRecord(42, -12345)
	if len(rec) != BalanceRecordSize {
		t.Fatalf("record size %d", len(rec))
	}
	if Balance(rec) != -12345 {
		t.Fatalf("Balance = %d", Balance(rec))
	}
	SetBalance(rec, 999)
	if Balance(rec) != 999 {
		t.Fatalf("after SetBalance: %d", Balance(rec))
	}
	h := HistoryRecord(1, 2, 3, 4, 5)
	if len(h) != HistoryRecordSize {
		t.Fatalf("history size %d", len(h))
	}
}

func TestScaledConfig(t *testing.T) {
	c := ScaledConfig(1.0)
	if c.Accounts != PaperAccounts || c.Tellers != PaperTellers || c.Branches != PaperBranches {
		t.Fatalf("full scale = %+v", c)
	}
	c = ScaledConfig(0.0001) // floors kick in
	if c.Accounts < 100 || c.Tellers < 10 || c.Branches < 2 {
		t.Fatalf("floored scale = %+v", c)
	}
}

// checkConsistency verifies TPC-B invariants after a run: the sum of branch
// balances equals the sum of teller balances equals the sum of all history
// amounts, and the history has one record per transaction.
func checkConsistency(t *testing.T, rig *Rig, txns []Txn) {
	t.Helper()
	fsys := rig.FS
	sumTree := func(path string) int64 {
		f, err := fsys.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		tr, err := btree.Open(pagestore.NewFileStore(f, fsys.BlockSize()))
		if err != nil {
			t.Fatal(err)
		}
		c, err := tr.First()
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for c.Next() {
			sum += Balance(c.Value())
		}
		return sum
	}
	var want int64
	accountDelta := map[int64]int64{}
	for _, tx := range txns {
		want += tx.Amount
		accountDelta[tx.Account] += tx.Amount
	}
	if got := sumTree(BranchPath); got != want {
		t.Errorf("branch balance sum = %d, want %d", got, want)
	}
	if got := sumTree(TellerPath); got != want {
		t.Errorf("teller balance sum = %d, want %d", got, want)
	}
	if got := sumTree(AccountPath); got != want {
		t.Errorf("account balance sum = %d, want %d", got, want)
	}
}

func TestTPCBConsistencyAllSystems(t *testing.T) {
	for _, kind := range []string{"user-ffs", "user-lfs", "kernel-lfs"} {
		t.Run(kind, func(t *testing.T) {
			rig := buildSmall(t, kind)
			gen := NewGenerator(smallCfg())
			var txns []Txn
			for i := 0; i < 200; i++ {
				tx := gen.Next()
				txns = append(txns, tx)
				if err := rig.Sys.Run(tx); err != nil {
					t.Fatalf("txn %d: %v", i, err)
				}
			}
			if err := rig.Sys.Drain(); err != nil {
				t.Fatal(err)
			}
			checkConsistency(t, rig, txns)
			n, err := rig.Sys.ScanAccounts()
			if err != nil || n != smallCfg().Accounts {
				t.Fatalf("ScanAccounts = %d, %v", n, err)
			}
		})
	}
}

func TestSystemsProduceIdenticalState(t *testing.T) {
	// The same seed must leave the same account balances on every
	// configuration — a strong cross-validation of the two transaction
	// managers.
	balances := map[string]map[int64]int64{}
	for _, kind := range []string{"user-ffs", "user-lfs", "kernel-lfs"} {
		rig := buildSmall(t, kind)
		gen := NewGenerator(smallCfg())
		for i := 0; i < 150; i++ {
			if err := rig.Sys.Run(gen.Next()); err != nil {
				t.Fatal(err)
			}
		}
		rig.Sys.Drain()
		f, err := rig.FS.Open(AccountPath)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := btree.Open(pagestore.NewFileStore(f, rig.FS.BlockSize()))
		if err != nil {
			t.Fatal(err)
		}
		c, _ := tr.First()
		m := map[int64]int64{}
		var id int64
		for c.Next() {
			if b := Balance(c.Value()); b != 0 {
				m[id] = b
			}
			id++
		}
		f.Close()
		balances[kind] = m
	}
	ref := balances["user-ffs"]
	for _, kind := range []string{"user-lfs", "kernel-lfs"} {
		m := balances[kind]
		if len(m) != len(ref) {
			t.Fatalf("%s: %d nonzero balances, want %d", kind, len(m), len(ref))
		}
		for id, b := range ref {
			if m[id] != b {
				t.Fatalf("%s: account %d = %d, want %d", kind, id, m[id], b)
			}
		}
	}
}

func TestRunBenchmarkReportsTPS(t *testing.T) {
	rig := buildSmall(t, "kernel-lfs")
	res, err := RunBenchmark(rig.Sys, rig.Clock, smallCfg(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Txns != 50 || res.Elapsed <= 0 || res.TPS <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestBuildRigRejectsUnknownKind(t *testing.T) {
	if _, err := BuildRig(RigOptions{Kind: "nope", Config: smallCfg()}); err == nil {
		t.Fatal("unknown kind should fail")
	}
}

func TestGroupCommitRig(t *testing.T) {
	rig, err := BuildRig(RigOptions{Kind: "kernel-lfs", Config: smallCfg(), GroupCommit: 5, ExpectedTxns: 500})
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGenerator(smallCfg())
	var txns []Txn
	for i := 0; i < 100; i++ {
		tx := gen.Next()
		txns = append(txns, tx)
		if err := rig.Sys.Run(tx); err != nil {
			t.Fatal(err)
		}
	}
	if err := rig.Sys.Drain(); err != nil {
		t.Fatal(err)
	}
	st := rig.Core.Stats()
	// TPC-B's teller/branch pages are hot: at MPL=1 every new transaction
	// conflicts with the pending one and forces the batch out early, so
	// strict group commit degenerates to per-commit flushes — but must
	// never lose or corrupt anything.
	if st.CommitFlush > st.Committed {
		t.Fatalf("flushes (%d) cannot exceed commits (%d)", st.CommitFlush, st.Committed)
	}
	if st.Committed != 100 {
		t.Fatalf("Committed = %d", st.Committed)
	}
	checkConsistency(t, rig, txns)
}

func TestHistoryGrows(t *testing.T) {
	rig := buildSmall(t, "user-lfs")
	gen := NewGenerator(smallCfg())
	for i := 0; i < 30; i++ {
		if err := rig.Sys.Run(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	rig.Sys.Drain()
	f, err := rig.FS.Open(HistoryPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	hf, err := recno.Open(pagestore.NewFileStore(f, rig.FS.BlockSize()))
	if err != nil {
		t.Fatal(err)
	}
	if hf.Count() != 30 {
		t.Fatalf("history count = %d, want 30", hf.Count())
	}
}

func TestSimClockMonotoneUnderLoad(t *testing.T) {
	rig := buildSmall(t, "user-ffs")
	gen := NewGenerator(smallCfg())
	prev := rig.Clock.Now()
	for i := 0; i < 20; i++ {
		if err := rig.Sys.Run(gen.Next()); err != nil {
			t.Fatal(err)
		}
		now := rig.Clock.Now()
		if now < prev {
			t.Fatal("clock went backwards")
		}
		prev = now
	}
	_ = sim.NewRNG(0)
}
