package tpcb

import (
	"encoding/binary"
	"fmt"

	"repro/internal/btree"
	"repro/internal/libtp"
	"repro/internal/lock"
	"repro/internal/pagestore"
	"repro/internal/recno"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// Partitioner maps TPC-B row ids to shards. Every relation is range-
// partitioned into contiguous id ranges, one per shard: shard s owns rows
// [lo, hi) where the base quota is count/shards rows and the first
// count%shards shards take exactly one extra row each — the remainder is
// spread explicitly rather than piled onto the last shard. Construction
// validates the configuration against the shard count so an undersized
// relation (fewer rows than shards) fails loudly instead of silently
// producing empty shards whose balance invariants would never trip.
type Partitioner struct {
	shards   int
	accounts int64
	tellers  int64
	branches int64
}

// NewPartitioner validates cfg against the shard count and returns the
// range partitioner.
func NewPartitioner(cfg Config, shards int) (*Partitioner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if shards < 1 {
		return nil, fmt.Errorf("tpcb: need at least 1 shard, got %d", shards)
	}
	if cfg.Accounts < int64(shards) || cfg.Tellers < int64(shards) || cfg.Branches < int64(shards) {
		return nil, fmt.Errorf("tpcb: config %d accounts / %d tellers / %d branches cannot partition across %d shards (every shard needs at least one row of each relation)",
			cfg.Accounts, cfg.Tellers, cfg.Branches, shards)
	}
	return &Partitioner{
		shards:   shards,
		accounts: cfg.Accounts,
		tellers:  cfg.Tellers,
		branches: cfg.Branches,
	}, nil
}

// Shards returns the shard count.
func (p *Partitioner) Shards() int { return p.shards }

// rangeOf returns the [lo, hi) id range of count rows owned by shard s:
// q = count/shards rows each, the first r = count%shards shards one extra.
func rangeOf(count int64, shards, s int) (lo, hi int64) {
	q, r := count/int64(shards), count%int64(shards)
	lo = int64(s) * q
	if int64(s) < r {
		lo += int64(s)
	} else {
		lo += r
	}
	hi = lo + q
	if int64(s) < r {
		hi++
	}
	return lo, hi
}

// shardOf inverts rangeOf: the shard owning id within count rows. The first
// r shards own q+1 rows each, covering ids below (q+1)*r; everything above
// belongs to a q-sized shard.
func shardOf(count int64, shards int, id int64) int {
	q, r := count/int64(shards), count%int64(shards)
	cut := (q + 1) * r
	if id < cut {
		return int(id / (q + 1))
	}
	return int(r + (id-cut)/q)
}

// AccountRange returns shard s's [lo, hi) account id range.
func (p *Partitioner) AccountRange(s int) (int64, int64) { return rangeOf(p.accounts, p.shards, s) }

// TellerRange returns shard s's [lo, hi) teller id range.
func (p *Partitioner) TellerRange(s int) (int64, int64) { return rangeOf(p.tellers, p.shards, s) }

// BranchRange returns shard s's [lo, hi) branch id range.
func (p *Partitioner) BranchRange(s int) (int64, int64) { return rangeOf(p.branches, p.shards, s) }

// ShardOfAccount returns the shard owning an account id.
func (p *Partitioner) ShardOfAccount(id int64) int { return shardOf(p.accounts, p.shards, id) }

// ShardOfTeller returns the shard owning a teller id.
func (p *Partitioner) ShardOfTeller(id int64) int { return shardOf(p.tellers, p.shards, id) }

// ShardOfBranch returns the shard owning a branch id.
func (p *Partitioner) ShardOfBranch(id int64) int { return shardOf(p.branches, p.shards, id) }

// ShardLockSpace is the lock-manager namespace for shard s (see
// libtp.Options.LockSpace): the shard index plus one, shifted clear of any
// realistic inode number or transaction id.
func ShardLockSpace(s int) uint64 { return uint64(s+1) << 48 }

// loadShardRelations bulk-loads shard s's slice of the four relations: the
// account/teller/branch B-trees hold only the globally-numbered rows the
// partitioner assigns to s, and the history file starts empty. Key order is
// preserved because each shard's range is contiguous.
func loadShardRelations(fsys vfs.FileSystem, part *Partitioner, s int) error {
	mkTree := func(path string, lo, hi int64) error {
		f, err := fsys.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		id := lo
		_, err = btree.BulkLoad(pagestore.NewFileStore(f, fsys.BlockSize()), func() ([]byte, []byte, bool) {
			if id >= hi {
				return nil, nil, false
			}
			k, v := Key(id), BalanceRecord(id, 0)
			id++
			return k, v, true
		})
		return err
	}
	lo, hi := part.AccountRange(s)
	if err := mkTree(AccountPath, lo, hi); err != nil {
		return fmt.Errorf("tpcb: load shard %d accounts: %w", s, err)
	}
	lo, hi = part.TellerRange(s)
	if err := mkTree(TellerPath, lo, hi); err != nil {
		return fmt.Errorf("tpcb: load shard %d tellers: %w", s, err)
	}
	lo, hi = part.BranchRange(s)
	if err := mkTree(BranchPath, lo, hi); err != nil {
		return fmt.Errorf("tpcb: load shard %d branches: %w", s, err)
	}
	f, err := fsys.Create(HistoryPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := recno.Create(pagestore.NewFileStore(f, fsys.BlockSize()), HistoryRecordSize); err != nil {
		return fmt.Errorf("tpcb: load shard %d history: %w", s, err)
	}
	return fsys.Sync()
}

// Shard is one partition of a sharded TPC-B system: its own file system
// (device), its own transaction environment with its own write-ahead log,
// and its slice of the relations.
type Shard struct {
	Env *libtp.Env
	acc *libtp.DB
	tel *libtp.DB
	brn *libtp.DB
	hst *libtp.DB
}

// ShardedSystem runs TPC-B across N user-level transaction environments,
// one per device, with the relations range-partitioned by the Partitioner.
// Transactions touching a single shard commit through the ordinary local
// path; cross-shard transactions run two-phase commit over the per-shard
// logs, with the account's shard as coordinator (the history record lands
// there too, so the coordinator always has work of its own). All shards
// share one lock manager — under namespaced lock ids — so cross-shard
// waits-for cycles are detected and broken exactly like local ones.
type ShardedSystem struct {
	clock  *sim.Clock
	costs  sim.CostModel
	part   *Partitioner
	shards []*Shard
	label  string
	gids   uint64 // global-transaction id counter (unique across the run)

	// Cross-shard accounting.
	crossTxns  int64
	singleTxns int64
}

// NewShardedSystem builds the sharded user-level configuration over the
// given per-shard environments (typically one per device, created by the
// rig with a shared lock manager and distinct lock spaces).
func NewShardedSystem(envs []*libtp.Env, part *Partitioner, clock *sim.Clock, costs sim.CostModel) *ShardedSystem {
	s := &ShardedSystem{
		clock: clock,
		costs: costs,
		part:  part,
		label: fmt.Sprintf("user-%s[%d]", envs[0].FS().Name(), len(envs)),
	}
	for _, env := range envs {
		s.shards = append(s.shards, &Shard{Env: env})
	}
	return s
}

// Name implements System.
func (s *ShardedSystem) Name() string { return s.label }

// Partitioner returns the id-to-shard mapping.
func (s *ShardedSystem) Partitioner() *Partitioner { return s.part }

// CrossShardTxns returns how many committed transactions spanned shards and
// how many stayed local.
func (s *ShardedSystem) CrossShardTxns() (cross, single int64) {
	return s.crossTxns, s.singleTxns
}

// Load implements System: bulk-load each shard's slice of the relations and
// open the per-shard database handles.
func (s *ShardedSystem) Load(cfg Config) error {
	for i, sh := range s.shards {
		if err := loadShardRelations(sh.Env.FS(), s.part, i); err != nil {
			return err
		}
		if err := sh.attach(); err != nil {
			return err
		}
	}
	return nil
}

// attach opens the four relations on the shard's environment.
func (sh *Shard) attach() error {
	var err error
	if sh.acc, err = sh.Env.OpenDB(AccountPath); err != nil {
		return err
	}
	if sh.tel, err = sh.Env.OpenDB(TellerPath); err != nil {
		return err
	}
	if sh.brn, err = sh.Env.OpenDB(BranchPath); err != nil {
		return err
	}
	sh.hst, err = sh.Env.OpenDB(HistoryPath)
	return err
}

// Attach opens the relations on already-loaded (e.g. recovered) shard
// environments. No load is performed.
func (s *ShardedSystem) Attach() error {
	for _, sh := range s.shards {
		if err := sh.attach(); err != nil {
			return err
		}
	}
	return nil
}

// Run implements System: route each relation update to its owning shard,
// then commit — locally when one shard saw all the work, by two-phase
// commit otherwise.
func (s *ShardedSystem) Run(t Txn) error {
	as := s.part.ShardOfAccount(t.Account)
	ts := s.part.ShardOfTeller(t.Teller)
	bs := s.part.ShardOfBranch(t.Branch)

	locals := make([]*libtp.Txn, len(s.shards))
	begin := func(sh int) *libtp.Txn {
		if locals[sh] == nil {
			locals[sh] = s.shards[sh].Env.Begin()
		}
		return locals[sh]
	}
	abortAll := func() {
		for _, tx := range locals {
			if tx != nil {
				tx.Abort()
			}
		}
	}
	// Begin the coordinator (the account's shard) first so its local
	// transaction ids advance deterministically, then touch relations in
	// the same order as the unsharded system.
	coord := begin(as)
	update := func(sh int, db *libtp.DB, id int64) error {
		s.clock.Advance(s.costs.RecordOp)
		tr, err := btree.Open(begin(sh).Store(db))
		if err != nil {
			return err
		}
		rec, err := tr.Get(Key(id))
		if err != nil {
			return err
		}
		rec2 := append([]byte(nil), rec...)
		SetBalance(rec2, Balance(rec2)+t.Amount)
		return tr.Put(Key(id), rec2)
	}
	if err := update(as, s.shards[as].acc, t.Account); err != nil {
		abortAll()
		return err
	}
	if err := update(ts, s.shards[ts].tel, t.Teller); err != nil {
		abortAll()
		return err
	}
	if err := update(bs, s.shards[bs].brn, t.Branch); err != nil {
		abortAll()
		return err
	}
	// The history record follows the account: the coordinator shard always
	// carries the transaction's one durable history row.
	s.clock.Advance(s.costs.RecordOp)
	hf, err := recno.Open(coord.Store(s.shards[as].hst))
	if err != nil {
		abortAll()
		return err
	}
	if _, err := hf.Append(HistoryRecord(t.Account, t.Teller, t.Branch, t.Amount, int64(s.clock.Now()))); err != nil {
		abortAll()
		return err
	}

	// Single-shard fast path: the ordinary local commit.
	cross := false
	for sh, tx := range locals {
		if tx != nil && sh != as {
			cross = true
			break
		}
	}
	if !cross {
		if err := coord.Commit(); err != nil {
			return err
		}
		s.singleTxns++
		return nil
	}

	// Two-phase commit. Phase 1: every non-coordinator participant
	// prepares (durably, group-batched) while holding its locks.
	s.gids++
	gid := s.gids
	for sh, tx := range locals {
		if tx == nil || sh == as {
			continue
		}
		if err := tx.Prepare(gid); err != nil {
			abortAll()
			return err
		}
	}
	// Decision: the coordinator logs prepare + global-commit + its own
	// commit and forces once; when CommitGlobal returns the decision is
	// durable and the global transaction is committed.
	if err := coord.CommitGlobal(gid); err != nil {
		return err
	}
	// Phase 2: participants commit lazily — the decision record already
	// owns their fate, so no per-shard force is needed.
	for sh, tx := range locals {
		if tx == nil || sh == as {
			continue
		}
		if err := tx.CommitPrepared(); err != nil {
			return err
		}
	}
	s.crossTxns++
	return nil
}

// NewWorker implements MultiClient: like the unsharded user-level system,
// all per-call state lives in the transactions, so clients share the
// System itself.
func (s *ShardedSystem) NewWorker() (Worker, error) { return s, nil }

// Drain implements System, in two phases across the whole array: first
// force every shard's log, then checkpoint every shard. The order matters —
// a checkpoint truncates its shard's log, and an undecided prepare record
// on shard A must never outlive the loss of its decision record on shard B;
// after phase one every decision every shard depends on is durable.
func (s *ShardedSystem) Drain() error {
	for _, sh := range s.shards {
		if err := sh.Env.ForceLog(); err != nil {
			return err
		}
	}
	for _, sh := range s.shards {
		if err := sh.Env.Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// ScanAccounts implements System: scan every shard's slice in shard order
// (which is key order, since partitions are ascending contiguous ranges).
func (s *ShardedSystem) ScanAccounts() (int64, error) {
	var n int64
	for _, sh := range s.shards {
		c, err := scanAccounts(sh.Env.FS())
		if err != nil {
			return n, err
		}
		n += c
	}
	return n, nil
}

// Close implements System.
func (s *ShardedSystem) Close() error { return nil }

// RecoverSharded reopens every shard's environment after a whole-machine
// crash, resolving in-doubt two-phase-commit branches from the union of the
// shards' durable decision records. All logs are scanned before any shard
// replays — a branch prepared on shard A may be decided on shard B, so
// replay cannot start until every decision is known. Pass the shared lock
// manager the revived environments should use.
func RecoverSharded(fss []vfs.FileSystem, clock *sim.Clock, opts libtp.Options, locks *lock.Manager) ([]*libtp.Env, []*libtp.RecoveryReport, error) {
	pend := make([]*libtp.PendingRecovery, len(fss))
	for i, fsys := range fss {
		o := opts
		o.Locks = locks
		o.LockSpace = ShardLockSpace(i)
		p, err := libtp.OpenForRecovery(fsys, clock, o, DBPaths())
		if err != nil {
			return nil, nil, fmt.Errorf("shard %d: %w", i, err)
		}
		pend[i] = p
	}
	decided := map[uint64]bool{}
	for _, p := range pend {
		for gid := range p.GlobalDecisions() {
			decided[gid] = true
		}
	}
	resolve := func(gid uint64) bool { return decided[gid] }
	envs := make([]*libtp.Env, len(fss))
	reports := make([]*libtp.RecoveryReport, len(fss))
	for i, p := range pend {
		env, rep, err := p.Complete(resolve)
		if err != nil {
			return nil, nil, fmt.Errorf("shard %d: %w", i, err)
		}
		envs[i] = env
		reports[i] = rep
	}
	return envs, reports, nil
}

// VerifyShardedState checks the recovered shards against the shadow history
// of committed transactions, exactly like VerifyState for one file system —
// with the atomicity obligation now spanning shards: the total history
// count across all shards must equal the committed count (or, with a
// non-nil inFlight, exactly one more, in which case every relation on every
// shard must consistently reflect the extra transaction). A cross-shard
// transfer that survived on one shard and vanished on another shows up here
// as a balance mismatch.
func VerifyShardedState(fss []vfs.FileSystem, part *Partitioner, committed []Txn, inFlight *Txn) error {
	var histTotal int64
	for i, fsys := range fss {
		hf, err := fsys.Open(HistoryPath)
		if err != nil {
			return fmt.Errorf("shard %d history: %w", i, err)
		}
		h, err := recno.Open(pagestore.NewFileStore(hf, fsys.BlockSize()))
		if err != nil {
			hf.Close()
			return fmt.Errorf("shard %d history: %w", i, err)
		}
		histTotal += h.Count()
		hf.Close()
	}
	expect := committed
	switch {
	case histTotal == int64(len(committed)):
		// The in-flight transaction (if any) did not reach durability.
	case inFlight != nil && histTotal == int64(len(committed))+1:
		// Durable but unacknowledged: fold it into the expected state.
		expect = make([]Txn, len(committed), len(committed)+1)
		copy(expect, committed)
		expect = append(expect, *inFlight)
	default:
		return fmt.Errorf("durability: history count across shards = %d, want %d (in-flight: %v)",
			histTotal, len(committed), inFlight != nil)
	}

	var want int64
	perAccount := map[int64]int64{}
	perTeller := map[int64]int64{}
	perBranch := map[int64]int64{}
	for _, tx := range expect {
		want += tx.Amount
		perAccount[tx.Account] += tx.Amount
		perTeller[tx.Teller] += tx.Amount
		perBranch[tx.Branch] += tx.Amount
	}
	// Per-relation totals across all shards must hit the global sum; ids are
	// decoded from the keys (a shard holds a range, not 0..n-1).
	sumShard := func(fsys vfs.FileSystem, path string, per map[int64]int64, lo, hi int64) (int64, error) {
		f, err := fsys.Open(path)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", path, err)
		}
		defer f.Close()
		tr, err := btree.Open(pagestore.NewFileStore(f, fsys.BlockSize()))
		if err != nil {
			return 0, fmt.Errorf("%s: %w", path, err)
		}
		c, err := tr.First()
		if err != nil {
			return 0, fmt.Errorf("%s: %w", path, err)
		}
		var sum int64
		rows := int64(0)
		for c.Next() {
			id := int64(binary.BigEndian.Uint64(c.Key()))
			if id < lo || id >= hi {
				return 0, fmt.Errorf("partition: %s id %d outside shard range [%d,%d)", path, id, lo, hi)
			}
			b := Balance(c.Value())
			sum += b
			if b != per[id] {
				return 0, fmt.Errorf("atomicity: %s id %d balance %d, want %d", path, id, b, per[id])
			}
			rows++
		}
		if err := c.Err(); err != nil {
			return 0, fmt.Errorf("%s: %w", path, err)
		}
		if rows != hi-lo {
			return 0, fmt.Errorf("partition: %s holds %d rows, want %d", path, rows, hi-lo)
		}
		return sum, nil
	}
	check := func(path string, per map[int64]int64, rng func(int) (int64, int64)) error {
		var total int64
		for i, fsys := range fss {
			lo, hi := rng(i)
			sum, err := sumShard(fsys, path, per, lo, hi)
			if err != nil {
				return fmt.Errorf("shard %d %w", i, err)
			}
			total += sum
		}
		if total != want {
			return fmt.Errorf("balance: %s sum across shards = %d, want %d", path, total, want)
		}
		return nil
	}
	if err := check(AccountPath, perAccount, part.AccountRange); err != nil {
		return err
	}
	if err := check(TellerPath, perTeller, part.TellerRange); err != nil {
		return err
	}
	return check(BranchPath, perBranch, part.BranchRange)
}
