package tpcb

import (
	"bytes"
	"strings"
	"testing"
)

// buildMixed builds the mixed OLTP+scan rig: the cleaner-stress shape of
// buildTraced, but with extra disk headroom — while a snapshot is pinned the
// cleaner cannot reclaim any segment written since the pin, so the log needs
// room for the writes that land during a full account scan.
func buildMixed(t *testing.T, kind string, txns int, traced bool) *Rig {
	t.Helper()
	opts := RigOptions{
		Kind:         kind,
		Config:       smallCfg(),
		ExpectedTxns: txns,
		GroupCommit:  8,
		DiskScale:    4.0,
		Trace:        traced,
	}
	if kind != "user-ffs" {
		opts.CleanerMode = "idle"
		opts.CleanBatch = 4
		opts.IdleCleanTrigger = 10
	}
	rig, err := BuildRig(opts)
	if err != nil {
		t.Fatalf("BuildRig(%s): %v", kind, err)
	}
	rig.Clock.SetStrict(true)
	return rig
}

// TestMixedScanByteIdentical: two same-seed MPL=8 mixed OLTP + snapshot-scan
// runs with the idle background cleaner produce byte-identical Chrome traces
// and metrics snapshots on both LFS systems — determinism holds with the MVCC
// read path, version capture, and cleaner retention all active. The same
// snapshots also carry the lock-freedom acceptance bit: every scan proc's
// lock-blocked time must be exactly zero.
func TestMixedScanByteIdentical(t *testing.T) {
	const txns, mpl = 600, 8
	for _, kind := range []string{"user-lfs", "kernel-lfs"} {
		t.Run(kind, func(t *testing.T) {
			run := func() (chrome, metrics string) {
				rig := buildMixed(t, kind, txns, true)
				res, err := rig.RunMixed(smallCfg(), txns, mpl, 2, 1, ScanSnapshot)
				if err != nil {
					t.Fatalf("RunMixed: %v", err)
				}
				if res.ScanMode != ScanSnapshot {
					t.Fatalf("LFS rig degraded snapshot mode to %q", res.ScanMode)
				}
				if res.ScanRows == 0 {
					t.Fatal("scans read no rows")
				}
				var cb, mb bytes.Buffer
				if err := rig.Tracer.WriteChrome(&cb); err != nil {
					t.Fatalf("WriteChrome: %v", err)
				}
				snap := CollectMixedSnapshot(rig, res, rig.Tracer)
				if snap.Scan == nil || snap.Scan.Mode != string(ScanSnapshot) {
					t.Fatalf("snapshot missing scan section: %+v", snap.Scan)
				}
				var sawScanProc bool
				for _, row := range snap.Attribution {
					if !strings.HasPrefix(row.Proc, "scan-") {
						continue
					}
					sawScanProc = true
					if row.Lock != 0 {
						t.Errorf("snapshot-mode scan proc %s blocked %v on locks; want 0", row.Proc, row.Lock)
					}
				}
				if !sawScanProc {
					t.Fatal("no scan proc in the attribution table")
				}
				if err := snap.WriteJSON(&mb); err != nil {
					t.Fatalf("WriteJSON: %v", err)
				}
				return cb.String(), mb.String()
			}
			c1, m1 := run()
			c2, m2 := run()
			if c1 != c2 {
				t.Errorf("chrome traces differ between same-seed runs (lens %d vs %d)", len(c1), len(c2))
			}
			if m1 != m2 {
				t.Errorf("metrics snapshots differ between same-seed runs:\n%s\n---\n%s", m1, m2)
			}
		})
	}
}

// TestMixedScanLockingBlocks is the contrast case: the same workload in
// locking mode must show scan procs actually blocking on locks (that is the
// regression snapshot mode removes), and both modes must agree on the scan's
// row count — the snapshot read path sees the same balances as a locked scan.
func TestMixedScanLockingBlocks(t *testing.T) {
	const txns, mpl = 600, 8
	rig := buildMixed(t, "kernel-lfs", txns, true)
	res, err := rig.RunMixed(smallCfg(), txns, mpl, 2, 1, ScanLocking)
	if err != nil {
		t.Fatalf("RunMixed: %v", err)
	}
	if res.ScanMode != ScanLocking {
		t.Fatalf("asked locking, ran %q", res.ScanMode)
	}
	snap := CollectMixedSnapshot(rig, res, rig.Tracer)
	var blocked bool
	for _, row := range snap.Attribution {
		if strings.HasPrefix(row.Proc, "scan-") && row.Lock > 0 {
			blocked = true
		}
	}
	if !blocked {
		t.Error("locking-mode scans never blocked on a lock; the contrast with snapshot mode is vacuous")
	}

	snapRig := buildMixed(t, "kernel-lfs", txns, false)
	snapRes, err := snapRig.RunMixed(smallCfg(), txns, mpl, 2, 1, ScanSnapshot)
	if err != nil {
		t.Fatalf("RunMixed(snapshot): %v", err)
	}
	if res.ScanRows != snapRes.ScanRows {
		t.Errorf("scan rows differ across modes: locking %d, snapshot %d", res.ScanRows, snapRes.ScanRows)
	}
}

// TestMixedScanFFSFallback: the user-level system on FFS has no no-overwrite
// log to read versions from, so asking for snapshot scans must degrade to
// locking — reported honestly via the effective mode.
func TestMixedScanFFSFallback(t *testing.T) {
	const txns, mpl = 300, 4
	rig := buildMixed(t, "user-ffs", txns, false)
	res, err := rig.RunMixed(smallCfg(), txns, mpl, 1, 1, ScanSnapshot)
	if err != nil {
		t.Fatalf("RunMixed: %v", err)
	}
	if res.ScanMode != ScanLocking {
		t.Fatalf("user-ffs should degrade snapshot scans to locking, ran %q", res.ScanMode)
	}
	if res.ScanRows == 0 {
		t.Fatal("fallback scan read no rows")
	}
}
