package tpcb

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/ffs"
	"repro/internal/lfs"
	"repro/internal/libtp"
	"repro/internal/lock"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// RigOptions configures a benchmark rig.
type RigOptions struct {
	// Kind selects the configuration: "user-ffs", "user-lfs", "kernel-lfs".
	Kind string
	// Config sizes the database.
	Config Config
	// Costs is the CPU cost model (default sim.SpriteCosts()).
	Costs sim.CostModel
	// GroupCommit batches commits (default 1).
	GroupCommit int
	// Policy selects the LFS cleaner policy.
	Policy lfs.CleanerPolicy
	// ExpectedTxns sizes the disk for history growth (default 100000).
	ExpectedTxns int
	// DiskScale multiplies the computed disk size (default 1.0). The
	// default sizing follows the paper: the database occupies roughly
	// half the disk.
	DiskScale float64
	// CacheBlocks overrides the computed per-pool buffer-cache size
	// (0 = the paper-faithful default of one tenth of the database). High
	// MPL runs need it: with no-steal buffering every uncommitted page
	// stays held, so the pool must fit the union of all concurrent
	// transactions' write sets.
	CacheBlocks int
	// CleanerMode selects how LFS-based rigs clean: "sync" (default) lets
	// the flush path invoke the cleaner synchronously on the critical
	// path; "idle" wires Rig.Idle to the incremental background cleaner so
	// the driver cleans between transactions in device idle windows.
	CleanerMode string
	// CleanBatch overrides the cleaner's victims-per-pass batch size
	// (0 = the LFS default).
	CleanBatch int
	// IdleCleanTrigger overrides the free-segment level below which the
	// background cleaner starts working (0 = the LFS default).
	IdleCleanTrigger int
	// LogSegmentBytes bounds the WAL's segment payload size for the
	// user-level rigs (0 = the wal default). Small segments force frequent
	// rotations; checkpoints then truncate dead segments.
	LogSegmentBytes int64
	// LogRetain archives dead WAL segments at checkpoint instead of
	// deleting them.
	LogRetain bool
	// Trace, when true, makes BuildRig construct a trace.Tracer on the
	// rig's clock and thread it through every layer — disk, file system,
	// buffer pools, lock table, log manager, transaction system — and
	// through the traced driver variants via Rig.Run/RunMPL. The tracer is
	// exposed as Rig.Tracer. When false the rig runs with a nil tracer,
	// which costs nothing.
	Trace bool
	// Devices is the number of spindles (0 or 1 = the classic single
	// disk; the single-device path is bit-for-bit the historical one).
	Devices int
	// Layout selects how a multi-device rig spreads data: "stripe"
	// (default) presents one striped block space to a single file system;
	// "partition" gives each device its own file system, transaction
	// environment, and log, with the TPC-B relations range-partitioned
	// across them and cross-shard transactions running two-phase commit.
	// Partition requires a user-level rig kind.
	Layout string
	// StripeBlocks is the stripe unit in blocks for the "stripe" layout
	// (default 8).
	StripeBlocks int
}

// Rig is a ready-to-run benchmark configuration.
type Rig struct {
	Clock *sim.Clock
	// Dev is the rig's block address space: the single device, or the
	// striped array. Nil for partitioned rigs, which have no unified
	// address space — use Devs.
	Dev disk.BlockDevice
	// Devs lists the physical devices (length 1 for the classic rig).
	Devs []*disk.Device
	// Crash injects whole-machine crashes: the device itself on a
	// single-spindle rig, a disk.CrashSet spanning all members otherwise.
	Crash disk.CrashControl
	FS    vfs.FileSystem
	LFS   *lfs.FS // non-nil for single-FS LFS-based rigs
	Sys   System
	Env   *libtp.Env    // non-nil for single-FS user-level rigs
	Core  *core.Manager // non-nil for the embedded rig
	// Shards holds the per-device transaction environments of a
	// partitioned rig (nil otherwise); Part maps ids to shards.
	Shards []*libtp.Env
	Part   *Partitioner
	// Idle is the between-transactions hook (non-nil when CleanerMode is
	// "idle"): one incremental background cleaning step, charged against
	// foreground idle time. Pass it to RunBenchmarkIdle.
	Idle func() error
	// Tracer is non-nil when the rig was built with RigOptions.Trace.
	Tracer *trace.Tracer
}

// Run executes the benchmark on the rig, using the idle hook if present.
func (r *Rig) Run(cfg Config, n int) (Result, error) {
	return RunBenchmarkIdleTraced(r.Sys, r.Clock, cfg, n, r.Idle, r.Tracer)
}

// RunMPL executes the benchmark with mpl concurrent clients scheduled as
// virtual processes (see RunBenchmarkMPL).
func (r *Rig) RunMPL(cfg Config, n, mpl int) (Result, error) {
	return RunBenchmarkMPLTraced(r.Sys, r.Clock, cfg, n, mpl, r.Idle, r.Tracer)
}

// LockStats returns the rig's lock-manager counters regardless of which
// transaction system it carries.
func (r *Rig) LockStats() lock.Stats {
	if r.Env != nil {
		return r.Env.LockStats()
	}
	if len(r.Shards) > 0 {
		// All shards share one lock manager; any environment reports it.
		return r.Shards[0].LockStats()
	}
	if r.Core != nil {
		return r.Core.LockStats()
	}
	return lock.Stats{}
}

// DiskModelFor returns the simulated disk geometry the rig builder would
// pick for a configuration (exposed for harnesses that assemble their own
// stacks, e.g. the user-TP-on-transaction-kernel leg of Figure 5).
func DiskModelFor(cfg Config, expectedTxns int) sim.DiskModel {
	dbPages := dbPagesEstimate(cfg, expectedTxns)
	model := sim.RZ55Model()
	freeBlocks := max(int64(expectedTxns), dbPages)
	model.NumBlocks = dbPages + dbPages/5 + freeBlocks + 2048
	return model
}

// CacheBlocksFor returns the per-pool cache sizing for a configuration.
func CacheBlocksFor(cfg Config, expectedTxns int) int {
	return max(int(dbPagesEstimate(cfg, expectedTxns)/10), 96)
}

// dbPagesEstimate approximates the loaded database size in pages.
func dbPagesEstimate(cfg Config, expectedTxns int) int64 {
	balances := cfg.Accounts + cfg.Tellers + cfg.Branches
	treePages := balances/28 + 64 // ~30 records per 4 KB leaf + interior slack
	historyPages := int64(expectedTxns)/75 + 16
	return treePages + historyPages
}

// BuildRig constructs the device, file system, transaction system, and
// loaded database for one configuration.
func BuildRig(opts RigOptions) (*Rig, error) {
	if opts.Costs == (sim.CostModel{}) {
		opts.Costs = sim.SpriteCosts()
	}
	if opts.GroupCommit < 1 {
		opts.GroupCommit = 1
	}
	if opts.ExpectedTxns == 0 {
		opts.ExpectedTxns = 100000
	}
	if opts.DiskScale == 0 {
		opts.DiskScale = 1.0
	}
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}

	dbPages := dbPagesEstimate(opts.Config, opts.ExpectedTxns)
	model := sim.RZ55Model()
	// Disk sizing preserves two regimes of the paper's full-scale setup
	// rather than scaling the disk purely with the database:
	//  - enough free space that the log wraps (and the cleaner cycles) at
	//    the paper's per-transaction rate — per-transaction write volume
	//    does not shrink with the database, so free space is sized from
	//    the expected transaction count (~1 block of eventual log space
	//    per transaction kept free, matching the paper's ~18 log cycles
	//    per 100k-transaction run);
	//  - the database still occupying a large fraction of the disk.
	freeBlocks := max(int64(opts.ExpectedTxns), dbPages)
	model.NumBlocks = int64(float64(dbPages+dbPages/5+freeBlocks+2048) * opts.DiskScale)
	// The paper's machine cached a small fraction of the database (32 MB
	// of memory against a 160 MB account file plus the OS): "databases too
	// large to cache in main memory" is what makes the workload
	// read-bound. One tenth per pool; the user-level systems have two
	// pools (user + kernel), the embedded system gets the whole budget in
	// its single kernel cache.
	cache := max(int(dbPages/10), 96)
	if opts.CacheBlocks > 0 {
		cache = opts.CacheBlocks
	}

	clk := sim.NewClock()
	var tr *trace.Tracer
	if opts.Trace {
		tr = trace.New(clk)
	}
	layout := opts.Layout
	if layout == "" {
		layout = "stripe"
	}
	if opts.Devices > 1 && layout == "partition" {
		return buildPartitionedRig(opts, clk, tr, model, cache)
	}
	rig := &Rig{Clock: clk, Tracer: tr}
	if opts.Devices <= 1 {
		// The classic single spindle: this path is bit-for-bit the
		// historical one, so captured single-device outputs stay valid.
		dev := disk.New(model, clk)
		dev.SetTracer(tr)
		rig.Dev, rig.Devs, rig.Crash = dev, []*disk.Device{dev}, dev
	} else if layout == "stripe" {
		per := model
		per.NumBlocks = (model.NumBlocks + int64(opts.Devices) - 1) / int64(opts.Devices)
		stripe := opts.StripeBlocks
		if stripe <= 0 {
			stripe = 8
		}
		arr, err := disk.NewArray(per, clk, opts.Devices, disk.LayoutStripe, int64(stripe))
		if err != nil {
			return nil, err
		}
		arr.SetTracer(tr)
		rig.Dev, rig.Devs, rig.Crash = arr, arr.Devices(), disk.NewCrashSet(arr.Devices()...)
	} else {
		return nil, fmt.Errorf("tpcb: unknown layout %q", layout)
	}
	dev := rig.Dev

	switch opts.Kind {
	case "user-ffs":
		fsys, err := ffs.Format(dev, clk, ffs.Options{CacheBlocks: cache, SyncInterval: 30 * time.Second})
		if err != nil {
			return nil, err
		}
		fsys.Pool().SetTracer(tr, "buffer.ffs")
		rig.FS = fsys
		env, err := libtp.NewEnv(fsys, clk, libtp.Options{CacheBlocks: cache, Costs: opts.Costs, GroupCommit: opts.GroupCommit, LogSegmentBytes: opts.LogSegmentBytes, LogRetain: opts.LogRetain, Tracer: tr})
		if err != nil {
			return nil, err
		}
		rig.Env = env
		rig.Sys = NewUserSystem(env, clk, opts.Costs)
	case "user-lfs":
		fsys, err := lfs.Format(dev, clk, lfs.Options{CacheBlocks: cache, Policy: opts.Policy, CleanBatch: opts.CleanBatch, IdleCleanTrigger: opts.IdleCleanTrigger})
		if err != nil {
			return nil, err
		}
		fsys.SetTracer(tr)
		fsys.Pool().SetTracer(tr, "buffer.lfs")
		rig.FS, rig.LFS = fsys, fsys
		env, err := libtp.NewEnv(fsys, clk, libtp.Options{CacheBlocks: cache, Costs: opts.Costs, GroupCommit: opts.GroupCommit, LogSegmentBytes: opts.LogSegmentBytes, LogRetain: opts.LogRetain, Tracer: tr})
		if err != nil {
			return nil, err
		}
		rig.Env = env
		rig.Sys = NewUserSystem(env, clk, opts.Costs)
	case "kernel-lfs":
		// The embedded system avoids double buffering: the user-level
		// configurations split the same memory between a user pool and
		// the kernel cache, so the kernel configuration gets the whole
		// budget in one cache (§1: the user-level architecture's
		// "functional redundancy").
		fsys, err := lfs.Format(dev, clk, lfs.Options{CacheBlocks: 2 * cache, Policy: opts.Policy, CleanBatch: opts.CleanBatch, IdleCleanTrigger: opts.IdleCleanTrigger})
		if err != nil {
			return nil, err
		}
		fsys.SetTracer(tr)
		fsys.Pool().SetTracer(tr, "buffer.lfs")
		rig.FS, rig.LFS = fsys, fsys
		m := core.New(fsys, clk, core.Options{Costs: opts.Costs, GroupCommit: opts.GroupCommit, Tracer: tr})
		rig.Core = m
		rig.Sys = NewEmbeddedSystem(m, clk, opts.Costs)
	default:
		return nil, fmt.Errorf("tpcb: unknown rig kind %q", opts.Kind)
	}
	if err := rig.Sys.Load(opts.Config); err != nil {
		return nil, fmt.Errorf("tpcb: load on %s: %w", opts.Kind, err)
	}
	switch opts.CleanerMode {
	case "", "sync":
		// Default: the flush path cleans synchronously when it must.
	case "idle":
		if rig.LFS == nil {
			return nil, fmt.Errorf("tpcb: cleaner mode %q needs an LFS-based rig, got %q", opts.CleanerMode, opts.Kind)
		}
		lfsys := rig.LFS
		rig.Idle = func() error {
			_, err := lfsys.CleanIdle()
			return err
		}
	default:
		return nil, fmt.Errorf("tpcb: unknown cleaner mode %q", opts.CleanerMode)
	}
	// The measured run must not hide background work behind idle time the
	// load phase accumulated.
	dev.ResetIdleCredit()
	return rig, nil
}

// buildPartitionedRig assembles an N-device sharded rig: every device gets
// its own file system, transaction environment, and write-ahead log, the
// relations are range-partitioned across them, and all environments share
// one lock manager (under per-shard lock namespaces) so cross-shard
// waits-for cycles are detected like local ones.
func buildPartitionedRig(opts RigOptions, clk *sim.Clock, tr *trace.Tracer, model sim.DiskModel, cache int) (*Rig, error) {
	n := opts.Devices
	part, err := NewPartitioner(opts.Config, n)
	if err != nil {
		return nil, err
	}
	switch opts.CleanerMode {
	case "", "sync":
	default:
		return nil, fmt.Errorf("tpcb: cleaner mode %q is not supported on partitioned rigs", opts.CleanerMode)
	}
	per := model
	// Each shard carries ~1/N of the database and of the history growth,
	// plus fixed per-file-system slack (superblock, checkpoint regions,
	// segment headroom).
	per.NumBlocks = model.NumBlocks/int64(n) + 2048
	shardCache := max(cache/n, 96)
	locks := lock.NewManager()
	rig := &Rig{Clock: clk, Tracer: tr, Part: part}
	envs := make([]*libtp.Env, n)
	for i := 0; i < n; i++ {
		dev := disk.New(per, clk)
		dev.SetTracer(tr)
		rig.Devs = append(rig.Devs, dev)
		var fsys vfs.FileSystem
		switch opts.Kind {
		case "user-lfs":
			lf, err := lfs.Format(dev, clk, lfs.Options{CacheBlocks: shardCache, Policy: opts.Policy, CleanBatch: opts.CleanBatch, IdleCleanTrigger: opts.IdleCleanTrigger})
			if err != nil {
				return nil, err
			}
			lf.SetTracer(tr)
			lf.Pool().SetTracer(tr, fmt.Sprintf("buffer.lfs%d", i))
			fsys = lf
		case "user-ffs":
			ff, err := ffs.Format(dev, clk, ffs.Options{CacheBlocks: shardCache, SyncInterval: 30 * time.Second})
			if err != nil {
				return nil, err
			}
			ff.Pool().SetTracer(tr, fmt.Sprintf("buffer.ffs%d", i))
			fsys = ff
		default:
			return nil, fmt.Errorf("tpcb: layout \"partition\" needs a user-level rig kind, got %q", opts.Kind)
		}
		env, err := libtp.NewEnv(fsys, clk, libtp.Options{
			CacheBlocks:     shardCache,
			Costs:           opts.Costs,
			GroupCommit:     opts.GroupCommit,
			LogSegmentBytes: opts.LogSegmentBytes,
			LogRetain:       opts.LogRetain,
			Tracer:          tr,
			Locks:           locks,
			LockSpace:       ShardLockSpace(i),
		})
		if err != nil {
			return nil, err
		}
		envs[i] = env
	}
	rig.Crash = disk.NewCrashSet(rig.Devs...)
	rig.Shards = envs
	rig.Sys = NewShardedSystem(envs, part, clk, opts.Costs)
	if err := rig.Sys.Load(opts.Config); err != nil {
		return nil, fmt.Errorf("tpcb: load on %s: %w", opts.Kind, err)
	}
	for _, d := range rig.Devs {
		d.ResetIdleCredit()
	}
	return rig, nil
}
