package tpcb

import (
	"testing"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/lfs"
	"repro/internal/libtp"
	"repro/internal/pagestore"
	"repro/internal/recno"
	"repro/internal/sim"
)

// TestEmbeddedCrashStorm repeatedly crashes the embedded transaction system
// at transaction boundaries (remounting the file system from the device and
// rebuilding the transaction manager, with no other recovery step — the
// paper's "single recovery paradigm") and checks that every committed
// transaction survives and the TPC-B invariants hold.
func TestEmbeddedCrashStorm(t *testing.T) {
	cfg := Config{Accounts: 1500, Tellers: 15, Branches: 3, Seed: 99}
	rig, err := BuildRig(RigOptions{Kind: "kernel-lfs", Config: cfg, ExpectedTxns: 400})
	if err != nil {
		t.Fatal(err)
	}
	sys := rig.Sys.(*EmbeddedSystem)
	gen := NewGenerator(cfg)
	rng := sim.NewRNG(7)

	var committed []Txn
	for round := 0; round < 6; round++ {
		// Run a burst of transactions.
		burst := 20 + rng.Intn(40)
		for i := 0; i < burst; i++ {
			tx := gen.Next()
			if err := sys.Run(tx); err != nil {
				t.Fatalf("round %d txn %d: %v", round, i, err)
			}
			committed = append(committed, tx)
		}
		// CRASH: all in-memory state gone; remount from the device.
		fs2, err := lfs.Mount(rig.Dev, rig.Clock, lfs.Options{CacheBlocks: 256})
		if err != nil {
			t.Fatalf("round %d remount: %v", round, err)
		}
		rig.LFS = fs2
		m2 := core.New(fs2, rig.Clock, core.Options{})
		sys = NewEmbeddedSystem(m2, rig.Clock, sim.SpriteCosts())
		if err := sys.Attach(); err != nil {
			t.Fatalf("round %d attach: %v", round, err)
		}
		rig.FS = fs2

		// Verify every committed transaction's effects after this crash.
		verifyState(t, rig, committed)
	}
}

// verifyState checks the TPC-B invariants against the shadow history.
func verifyState(t *testing.T, rig *Rig, committed []Txn) {
	t.Helper()
	var want int64
	perAccount := map[int64]int64{}
	perTeller := map[int64]int64{}
	perBranch := map[int64]int64{}
	for _, tx := range committed {
		want += tx.Amount
		perAccount[tx.Account] += tx.Amount
		perTeller[tx.Teller] += tx.Amount
		perBranch[tx.Branch] += tx.Amount
	}
	sumAndCheck := func(path string, per map[int64]int64) {
		f, err := rig.FS.Open(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		defer f.Close()
		tr, err := btree.Open(pagestore.NewFileStore(f, rig.FS.BlockSize()))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		c, err := tr.First()
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		var id int64
		for c.Next() {
			b := Balance(c.Value())
			sum += b
			if b != per[id] {
				t.Fatalf("%s id %d balance %d, want %d", path, id, b, per[id])
			}
			id++
		}
		if sum != want {
			t.Fatalf("%s sum = %d, want %d", path, sum, want)
		}
	}
	sumAndCheck(AccountPath, perAccount)
	sumAndCheck(TellerPath, perTeller)
	sumAndCheck(BranchPath, perBranch)

	hf, err := rig.FS.Open(HistoryPath)
	if err != nil {
		t.Fatal(err)
	}
	defer hf.Close()
	h, err := recno.Open(pagestore.NewFileStore(hf, rig.FS.BlockSize()))
	if err != nil {
		t.Fatal(err)
	}
	if h.Count() != int64(len(committed)) {
		t.Fatalf("history count = %d, want %d", h.Count(), len(committed))
	}
}

// TestUserCrashStorm does the same for the user-level system: crash at
// transaction boundaries, remount, replay the WAL with RecoverPaths, and
// check the invariants.
func TestUserCrashStorm(t *testing.T) {
	cfg := Config{Accounts: 1500, Tellers: 15, Branches: 3, Seed: 21}
	rig, err := BuildRig(RigOptions{Kind: "user-lfs", Config: cfg, ExpectedTxns: 400})
	if err != nil {
		t.Fatal(err)
	}
	sys := rig.Sys.(*UserSystem)
	gen := NewGenerator(cfg)
	rng := sim.NewRNG(8)

	var committed []Txn
	for round := 0; round < 5; round++ {
		burst := 20 + rng.Intn(30)
		for i := 0; i < burst; i++ {
			tx := gen.Next()
			if err := sys.Run(tx); err != nil {
				t.Fatalf("round %d txn %d: %v", round, i, err)
			}
			committed = append(committed, tx)
		}
		// CRASH + WAL recovery.
		fs2, err := lfs.Mount(rig.Dev, rig.Clock, lfs.Options{CacheBlocks: 256})
		if err != nil {
			t.Fatalf("round %d remount: %v", round, err)
		}
		env2, _, err := libtp.RecoverPaths(fs2, rig.Clock, libtp.Options{}, DBPaths())
		if err != nil {
			t.Fatalf("round %d recover: %v", round, err)
		}
		sys = NewUserSystem(env2, rig.Clock, sim.SpriteCosts())
		if err := sys.Attach(); err != nil {
			t.Fatalf("round %d attach: %v", round, err)
		}
		rig.FS = fs2
		rig.Env = env2

		verifyState(t, rig, committed)
	}
}
