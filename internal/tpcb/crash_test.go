package tpcb

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ffs"
	"repro/internal/lfs"
	"repro/internal/libtp"
	"repro/internal/sim"
)

// TestEmbeddedCrashStorm repeatedly crashes the embedded transaction system
// at transaction boundaries (remounting the file system from the device and
// rebuilding the transaction manager, with no other recovery step — the
// paper's "single recovery paradigm") and checks that every committed
// transaction survives and the TPC-B invariants hold.
func TestEmbeddedCrashStorm(t *testing.T) {
	cfg := Config{Accounts: 1500, Tellers: 15, Branches: 3, Seed: 99}
	rig, err := BuildRig(RigOptions{Kind: "kernel-lfs", Config: cfg, ExpectedTxns: 400})
	if err != nil {
		t.Fatal(err)
	}
	sys := rig.Sys.(*EmbeddedSystem)
	gen := NewGenerator(cfg)
	rng := sim.NewRNG(7)

	var committed []Txn
	for round := 0; round < 6; round++ {
		// Run a burst of transactions.
		burst := 20 + rng.Intn(40)
		for i := 0; i < burst; i++ {
			tx := gen.Next()
			if err := sys.Run(tx); err != nil {
				t.Fatalf("round %d txn %d: %v", round, i, err)
			}
			committed = append(committed, tx)
		}
		// CRASH: all in-memory state gone; remount from the device.
		fs2, err := lfs.Mount(rig.Dev, rig.Clock, lfs.Options{CacheBlocks: 256})
		if err != nil {
			t.Fatalf("round %d remount: %v", round, err)
		}
		rig.LFS = fs2
		m2 := core.New(fs2, rig.Clock, core.Options{})
		sys = NewEmbeddedSystem(m2, rig.Clock, sim.SpriteCosts())
		if err := sys.Attach(); err != nil {
			t.Fatalf("round %d attach: %v", round, err)
		}
		rig.FS = fs2

		// Verify every committed transaction's effects after this crash.
		verifyState(t, rig, committed)
	}
}

// verifyState checks the TPC-B invariants against the shadow history.
func verifyState(t *testing.T, rig *Rig, committed []Txn) {
	t.Helper()
	if err := VerifyState(rig.FS, committed, nil); err != nil {
		t.Fatal(err)
	}
}

// TestUserCrashStorm does the same for the user-level system: crash at
// transaction boundaries, remount, replay the WAL with RecoverPaths, and
// check the invariants.
func TestUserCrashStorm(t *testing.T) {
	cfg := Config{Accounts: 1500, Tellers: 15, Branches: 3, Seed: 21}
	rig, err := BuildRig(RigOptions{Kind: "user-lfs", Config: cfg, ExpectedTxns: 400})
	if err != nil {
		t.Fatal(err)
	}
	sys := rig.Sys.(*UserSystem)
	gen := NewGenerator(cfg)
	rng := sim.NewRNG(8)

	var committed []Txn
	for round := 0; round < 5; round++ {
		burst := 20 + rng.Intn(30)
		for i := 0; i < burst; i++ {
			tx := gen.Next()
			if err := sys.Run(tx); err != nil {
				t.Fatalf("round %d txn %d: %v", round, i, err)
			}
			committed = append(committed, tx)
		}
		// CRASH + WAL recovery.
		fs2, err := lfs.Mount(rig.Dev, rig.Clock, lfs.Options{CacheBlocks: 256})
		if err != nil {
			t.Fatalf("round %d remount: %v", round, err)
		}
		env2, _, err := libtp.RecoverPaths(fs2, rig.Clock, libtp.Options{}, DBPaths())
		if err != nil {
			t.Fatalf("round %d recover: %v", round, err)
		}
		sys = NewUserSystem(env2, rig.Clock, sim.SpriteCosts())
		if err := sys.Attach(); err != nil {
			t.Fatalf("round %d attach: %v", round, err)
		}
		rig.FS = fs2
		rig.Env = env2

		verifyState(t, rig, committed)
	}
}

// TestFFSUserCrashStorm completes the crash-storm coverage for the third
// configuration: LIBTP on the read-optimized file system. Recovery here has
// one extra leg the LFS systems don't need — ffs.Fsck must rebuild the
// stale allocation bitmap from the inode table BEFORE the WAL replay, or
// replay-driven allocations could clobber durable data.
func TestFFSUserCrashStorm(t *testing.T) {
	cfg := Config{Accounts: 1500, Tellers: 15, Branches: 3, Seed: 33}
	rig, err := BuildRig(RigOptions{Kind: "user-ffs", Config: cfg, ExpectedTxns: 400})
	if err != nil {
		t.Fatal(err)
	}
	sys := rig.Sys.(*UserSystem)
	gen := NewGenerator(cfg)
	rng := sim.NewRNG(9)

	var committed []Txn
	for round := 0; round < 5; round++ {
		burst := 20 + rng.Intn(30)
		for i := 0; i < burst; i++ {
			tx := gen.Next()
			if err := sys.Run(tx); err != nil {
				t.Fatalf("round %d txn %d: %v", round, i, err)
			}
			committed = append(committed, tx)
		}
		// CRASH: remount, fsck the bitmap, then WAL recovery.
		fs2, err := ffs.Mount(rig.Dev, rig.Clock, ffs.Options{CacheBlocks: 256})
		if err != nil {
			t.Fatalf("round %d remount: %v", round, err)
		}
		if _, err := fs2.Fsck(); err != nil {
			t.Fatalf("round %d fsck: %v", round, err)
		}
		env2, _, err := libtp.RecoverPaths(fs2, rig.Clock, libtp.Options{}, DBPaths())
		if err != nil {
			t.Fatalf("round %d recover: %v", round, err)
		}
		sys = NewUserSystem(env2, rig.Clock, sim.SpriteCosts())
		if err := sys.Attach(); err != nil {
			t.Fatalf("round %d attach: %v", round, err)
		}
		rig.FS = fs2
		rig.Env = env2

		verifyState(t, rig, committed)
	}
}
