package tpcb

import (
	"fmt"
	"testing"
)

// The scenarios (workload sizing, rig construction) live in simbench.go so
// cmd/simbench measures exactly what these benchmarks measure.

// BenchmarkSimCoreTPCB measures wall-clock speed of the discrete-event core
// on the TPC-B workload at MPL 8, 64, and 256, traced and untraced. Rig
// construction (the load phase) is excluded from the timer: the measured
// region is exactly the scheduled multiprogramming run. The events/s metric
// is scheduler dispatches per wall-clock second — the canonical simulator
// throughput unit BENCH_simcore.json tracks.
func BenchmarkSimCoreTPCB(b *testing.B) {
	for _, mpl := range []int{8, 64, 256} {
		for _, traced := range []bool{false, true} {
			name := fmt.Sprintf("kernel-lfs/mpl%d/traced=%v", mpl, traced)
			b.Run(name, func(b *testing.B) {
				var dispatches int64
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					rig, cfg, err := SimCoreBenchRig("kernel-lfs", mpl, traced)
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					res, err := rig.RunMPL(cfg, SimCoreBenchTxns, mpl)
					if err != nil {
						b.Fatal(err)
					}
					dispatches += res.Dispatches
				}
				if secs := b.Elapsed().Seconds(); secs > 0 && dispatches > 0 {
					b.ReportMetric(float64(dispatches)/secs, "events/s")
				}
			})
		}
	}
}

// BenchmarkSimCoreTPCBUserLFS covers the user-level system at the group
// commit MPL, where commit-wait parking exercises the WaitQueue paths the
// kernel rig mostly avoids.
func BenchmarkSimCoreTPCBUserLFS(b *testing.B) {
	var dispatches int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rig, cfg, err := SimCoreBenchRig("user-lfs", 64, false)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := rig.RunMPL(cfg, SimCoreBenchTxns, 64)
		if err != nil {
			b.Fatal(err)
		}
		dispatches += res.Dispatches
	}
	if secs := b.Elapsed().Seconds(); secs > 0 && dispatches > 0 {
		b.ReportMetric(float64(dispatches)/secs, "events/s")
	}
}
