package tpcb

import (
	"fmt"
	"testing"
)

// simCoreBenchTxns and simCoreBenchScale fix the workload of the simulator
// wall-clock benchmarks. The numbers are wall-clock measurements of the
// discrete-event core itself (scheduler dispatch, trace recording, disk-model
// bookkeeping): the simulated result of every run is identical from one PR to
// the next unless the simulation's behaviour deliberately changes, so ns/op
// movements are pure simulator-speed movements. cmd/simbench runs the same
// scenarios and records them in BENCH_simcore.json so CI can chart the
// events/sec trajectory PR over PR.
const (
	simCoreBenchTxns  = 2000
	simCoreBenchScale = 0.02
)

// simCoreBenchRig builds the standard benchmark rig for one scenario. MPL 8
// and 64 run the paper-faithful sizing, which keeps the runs blocking-heavy
// and therefore scheduler-heavy — the thing this benchmark exists to time.
// MPL=256 cannot run under that sizing: with no-steal buffering 256
// concurrent transactions hold the union of their uncommitted write sets in
// the pool, and the defaults (cache = db/10, database ≈ half the disk) leave
// too few free buffers and too few cleanable segments — so that scenario
// alone gets a bigger pool and disk.
func simCoreBenchRig(kind string, mpl int, traced bool) (*Rig, Config, error) {
	cfg := ScaledConfig(simCoreBenchScale)
	opts := RigOptions{
		Kind:         kind,
		Config:       cfg,
		ExpectedTxns: simCoreBenchTxns,
		GroupCommit:  8,
		Trace:        traced,
	}
	if mpl > 64 {
		opts.DiskScale = 3
		opts.CacheBlocks = 2048
	}
	rig, err := BuildRig(opts)
	return rig, cfg, err
}

// BenchmarkSimCoreTPCB measures wall-clock speed of the discrete-event core
// on the TPC-B workload at MPL 8, 64, and 256, traced and untraced. Rig
// construction (the load phase) is excluded from the timer: the measured
// region is exactly the scheduled multiprogramming run. The events/s metric
// is scheduler dispatches per wall-clock second — the canonical simulator
// throughput unit BENCH_simcore.json tracks.
func BenchmarkSimCoreTPCB(b *testing.B) {
	for _, mpl := range []int{8, 64, 256} {
		for _, traced := range []bool{false, true} {
			name := fmt.Sprintf("kernel-lfs/mpl%d/traced=%v", mpl, traced)
			b.Run(name, func(b *testing.B) {
				var dispatches int64
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					rig, cfg, err := simCoreBenchRig("kernel-lfs", mpl, traced)
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					res, err := rig.RunMPL(cfg, simCoreBenchTxns, mpl)
					if err != nil {
						b.Fatal(err)
					}
					dispatches += res.Dispatches
				}
				if secs := b.Elapsed().Seconds(); secs > 0 && dispatches > 0 {
					b.ReportMetric(float64(dispatches)/secs, "events/s")
				}
			})
		}
	}
}

// BenchmarkSimCoreTPCBUserLFS covers the user-level system at the group
// commit MPL, where commit-wait parking exercises the WaitQueue paths the
// kernel rig mostly avoids.
func BenchmarkSimCoreTPCBUserLFS(b *testing.B) {
	var dispatches int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rig, cfg, err := simCoreBenchRig("user-lfs", 64, false)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := rig.RunMPL(cfg, simCoreBenchTxns, 64)
		if err != nil {
			b.Fatal(err)
		}
		dispatches += res.Dispatches
	}
	if secs := b.Elapsed().Seconds(); secs > 0 && dispatches > 0 {
		b.ReportMetric(float64(dispatches)/secs, "events/s")
	}
}
