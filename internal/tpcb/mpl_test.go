package tpcb

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/lock"
)

// mplKinds are the three measured configurations of Figure 4.
var mplKinds = []string{"user-ffs", "user-lfs", "kernel-lfs"}

func buildSmallGC(t *testing.T, kind string, groupCommit int) *Rig {
	t.Helper()
	rig, err := BuildRig(RigOptions{Kind: kind, Config: smallCfg(), ExpectedTxns: 500, GroupCommit: groupCommit})
	if err != nil {
		t.Fatalf("BuildRig(%s): %v", kind, err)
	}
	// Strict clock: a negative advance anywhere in the scheduled run is a
	// scheduler bug and must fail loudly.
	rig.Clock.SetStrict(true)
	return rig
}

// TestClientSeedStreams: client 0 replays the base stream; other clients
// get distinct deterministic streams.
func TestClientSeedStreams(t *testing.T) {
	cfg := smallCfg()
	if ClientSeed(cfg.Seed, 0) != cfg.Seed {
		t.Fatal("client 0 must keep the base seed")
	}
	g0, gBase := NewClientGenerator(cfg, 0), NewGenerator(cfg)
	for i := 0; i < 50; i++ {
		if g0.Next() != gBase.Next() {
			t.Fatal("client 0 stream diverged from the base stream")
		}
	}
	seen := map[uint64]bool{cfg.Seed: true}
	for c := 1; c < 32; c++ {
		s := ClientSeed(cfg.Seed, c)
		if seen[s] {
			t.Fatalf("client %d seed collides", c)
		}
		seen[s] = true
	}
	a, b := NewClientGenerator(cfg, 3), NewClientGenerator(cfg, 3)
	for i := 0; i < 50; i++ {
		if a.Next() != b.Next() {
			t.Fatal("per-client stream must be deterministic")
		}
	}
}

// TestMPL1Conformance: MPL=1 through the scheduler reproduces the legacy
// single-client driver to the exact simulated nanosecond, for all three
// systems — the guarantee that every paper figure is unchanged by the
// discrete-event refactor.
func TestMPL1Conformance(t *testing.T) {
	const txns = 300
	for _, kind := range mplKinds {
		t.Run(kind, func(t *testing.T) {
			seedRig := buildSmall(t, kind)
			seedRes, err := seedRig.Run(smallCfg(), txns)
			if err != nil {
				t.Fatalf("seed driver: %v", err)
			}
			mplRig := buildSmallGC(t, kind, 1)
			mplRes, err := mplRig.RunMPL(smallCfg(), txns, 1)
			if err != nil {
				t.Fatalf("MPL driver: %v", err)
			}
			if seedRes.Elapsed != mplRes.Elapsed {
				t.Fatalf("MPL=1 elapsed %v (%.4f TPS) != seed-path elapsed %v (%.4f TPS)",
					mplRes.Elapsed, mplRes.TPS, seedRes.Elapsed, seedRes.TPS)
			}
			sd, md := seedRig.Dev.Stats(), mplRig.Dev.Stats()
			if sd != md {
				t.Fatalf("disk stats diverged:\nseed %+v\nmpl  %+v", sd, md)
			}
			if md.QueueTime != 0 {
				t.Fatalf("MPL=1 must never queue, got %v", md.QueueTime)
			}
		})
	}
}

// TestMPL1ConformanceGroupCommit: the degenerate case must also hold with
// group commit enabled (the deferred-force path of the seed design).
func TestMPL1ConformanceGroupCommit(t *testing.T) {
	const txns = 300
	for _, kind := range mplKinds {
		t.Run(kind, func(t *testing.T) {
			seedRig := buildSmallGC(t, kind, 8)
			seedRig.Clock.SetStrict(false)
			seedRes, err := seedRig.Run(smallCfg(), txns)
			if err != nil {
				t.Fatalf("seed driver: %v", err)
			}
			mplRig := buildSmallGC(t, kind, 8)
			mplRes, err := mplRig.RunMPL(smallCfg(), txns, 1)
			if err != nil {
				t.Fatalf("MPL driver: %v", err)
			}
			if seedRes.Elapsed != mplRes.Elapsed {
				t.Fatalf("MPL=1 elapsed %v != seed-path elapsed %v", mplRes.Elapsed, seedRes.Elapsed)
			}
		})
	}
}

// TestMPLDeterminism: two identical MPL=8 runs are byte-for-byte identical —
// same elapsed nanoseconds, same retries, same lock and disk counters.
func TestMPLDeterminism(t *testing.T) {
	const txns, mpl = 400, 8
	for _, kind := range mplKinds {
		t.Run(kind, func(t *testing.T) {
			type snapshot struct {
				res  Result
				lock interface{}
				disk interface{}
			}
			run := func() snapshot {
				rig := buildSmallGC(t, kind, 4)
				res, err := rig.RunMPL(smallCfg(), txns, mpl)
				if err != nil {
					t.Fatalf("RunMPL: %v", err)
				}
				return snapshot{res: res, lock: rig.LockStats(), disk: rig.Dev.Stats()}
			}
			a, b := run(), run()
			if a.res != b.res {
				t.Fatalf("results differ:\n%+v\n%+v", a.res, b.res)
			}
			if a.lock != b.lock {
				t.Fatalf("lock stats differ:\n%+v\n%+v", a.lock, b.lock)
			}
			if a.disk != b.disk {
				t.Fatalf("disk stats differ:\n%+v\n%+v", a.disk, b.disk)
			}
		})
	}
}

// TestMPLCleanerDeterminism: two identical MPL=8 runs with the idle
// background cleaner enabled must stay byte-for-byte identical — the
// cleaner's victim selection, relocation writes, and idle-window scheduling
// all have to be deterministic functions of the seed, on top of everything
// TestMPLDeterminism already pins. The disk is sized so the log wraps and
// cleaning genuinely runs.
func TestMPLCleanerDeterminism(t *testing.T) {
	const txns, mpl = 600, 8
	for _, kind := range []string{"user-lfs", "kernel-lfs"} {
		t.Run(kind, func(t *testing.T) {
			type snapshot struct {
				res  Result
				lock lock.Stats
				lfs  interface{}
				disk interface{}
			}
			run := func() snapshot {
				// The shrunken disk and raised trigger make the log wrap
				// within 600 transactions on both rig kinds, so the run
				// exercises real cleaning, not an idle no-op.
				rig, err := BuildRig(RigOptions{
					Kind:             kind,
					Config:           smallCfg(),
					ExpectedTxns:     txns,
					GroupCommit:      4,
					CleanerMode:      "idle",
					CleanBatch:       4,
					DiskScale:        0.7,
					IdleCleanTrigger: 10,
				})
				if err != nil {
					t.Fatalf("BuildRig(%s): %v", kind, err)
				}
				rig.Clock.SetStrict(true)
				res, err := rig.RunMPL(smallCfg(), txns, mpl)
				if err != nil {
					t.Fatalf("RunMPL: %v", err)
				}
				if cl := rig.LFS.Stats().Cleaner; cl.Runs == 0 || cl.SegmentsCleaned == 0 {
					t.Fatalf("background cleaner never ran (%+v); the test is not exercising cleaning", cl)
				}
				return snapshot{res: res, lock: rig.LockStats(), lfs: rig.LFS.Stats(), disk: rig.Dev.Stats()}
			}
			a, b := run(), run()
			if a.res != b.res {
				t.Fatalf("results differ:\n%+v\n%+v", a.res, b.res)
			}
			if a.lock != b.lock {
				t.Fatalf("lock stats differ:\n%+v\n%+v", a.lock, b.lock)
			}
			if !reflect.DeepEqual(a.lfs, b.lfs) {
				t.Fatalf("lfs stats differ:\n%+v\n%+v", a.lfs, b.lfs)
			}
			if !reflect.DeepEqual(a.disk, b.disk) {
				t.Fatalf("disk stats differ:\n%+v\n%+v", a.disk, b.disk)
			}
		})
	}
}

// TestMPLConsistency: at MPL=4 every client's transactions apply exactly
// once (deadlock victims retry until they succeed), so the TPC-B balance
// invariants hold over the union of all client streams.
func TestMPLConsistency(t *testing.T) {
	const txns, mpl = 400, 4
	for _, kind := range mplKinds {
		t.Run(kind, func(t *testing.T) {
			rig := buildSmallGC(t, kind, 4)
			res, err := rig.RunMPL(smallCfg(), txns, mpl)
			if err != nil {
				t.Fatalf("RunMPL: %v", err)
			}
			// Reconstruct the union of the deterministic client streams.
			var all []Txn
			for c := 0; c < mpl; c++ {
				gen := NewClientGenerator(smallCfg(), c)
				quota := txns / mpl
				if c < txns%mpl {
					quota++
				}
				for i := 0; i < quota; i++ {
					all = append(all, gen.Next())
				}
			}
			checkConsistency(t, rig, all)
			if res.Txns != txns {
				t.Fatalf("res.Txns = %d", res.Txns)
			}
		})
	}
}

// TestMPLBlockedTimeAccrues: with several clients contending, some lock
// waits must suspend in simulated time.
func TestMPLBlockedTimeAccrues(t *testing.T) {
	rig := buildSmallGC(t, "user-lfs", 4)
	if _, err := rig.RunMPL(smallCfg(), 400, 8); err != nil {
		t.Fatalf("RunMPL: %v", err)
	}
	ls := rig.LockStats()
	if ls.Waited == 0 {
		t.Skip("no lock waits at this scale; nothing to measure")
	}
	if ls.BlockedTime <= 0 {
		t.Fatalf("Waited=%d but BlockedTime=%v", ls.Waited, ls.BlockedTime)
	}
}

// TestMPLGroupCommitBatches: at MPL=8, group commit must absorb commits
// into shared forces — strictly fewer log forces than the force-per-commit
// configuration — and convert that into a throughput gain, on an LFS-based
// system (committers pre-commit: locks release at the commit record, so
// batching does not lengthen lock hold times).
func TestMPLGroupCommitBatches(t *testing.T) {
	const txns, mpl = 400, 8
	forces := func(groupCommit int) (int64, time.Duration) {
		rig := buildSmallGC(t, "user-lfs", groupCommit)
		res, err := rig.RunMPL(smallCfg(), txns, mpl)
		if err != nil {
			t.Fatalf("RunMPL(gc=%d): %v", groupCommit, err)
		}
		return rig.Env.LogStats().Forces, res.Elapsed
	}
	fNo, eNo := forces(1)
	fYes, eYes := forces(8)
	if fYes >= fNo {
		t.Fatalf("group commit did not batch: %d forces with gc=8 vs %d with gc=1", fYes, fNo)
	}
	if eYes >= eNo {
		t.Fatalf("group commit did not pay: elapsed %v with gc=8 vs %v with gc=1 (%d vs %d forces)",
			eYes, eNo, fYes, fNo)
	}
}

// TestMPLKernelGroupCommitBatches: the embedded manager's no-steal design
// holds a pending transaction's locks until the batch flush, and a
// conflicting lock request flushes the batch early (§4.4). Under TPC-B's
// hot branch page the next client conflicts almost immediately, so kernel
// group commit cannot batch much — but it must never flush more often than
// force-per-commit, and must not slow the run down.
func TestMPLKernelGroupCommitBatches(t *testing.T) {
	const txns, mpl = 400, 8
	flushes := func(groupCommit int) (int64, time.Duration) {
		rig := buildSmallGC(t, "kernel-lfs", groupCommit)
		res, err := rig.RunMPL(smallCfg(), txns, mpl)
		if err != nil {
			t.Fatalf("RunMPL(gc=%d): %v", groupCommit, err)
		}
		return rig.Core.Stats().CommitFlush, res.Elapsed
	}
	fNo, eNo := flushes(1)
	fYes, eYes := flushes(8)
	if fYes > fNo {
		t.Fatalf("kernel group commit flushed more often than force-per-commit: %d vs %d", fYes, fNo)
	}
	// Conflict-triggered flushes must not make the batched run slower than
	// force-per-commit by more than scheduling noise.
	if eYes > eNo+eNo/10 {
		t.Fatalf("kernel group commit slowed the run: %v with gc=8 vs %v with gc=1", eYes, eNo)
	}
}
