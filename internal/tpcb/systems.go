package tpcb

import (
	"fmt"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/libtp"
	"repro/internal/pagestore"
	"repro/internal/recno"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// Relation paths.
const (
	AccountPath = "/account"
	TellerPath  = "/teller"
	BranchPath  = "/branch"
	HistoryPath = "/history"
)

// DBPaths lists all relation files (for LIBTP crash recovery).
func DBPaths() []string {
	return []string{AccountPath, TellerPath, BranchPath, HistoryPath}
}

// LoadRelations bulk-loads the four relations directly through the file
// system (the offline load phase; transactions are not involved) and syncs.
func LoadRelations(fsys vfs.FileSystem, cfg Config) error {
	return loadRelations(fsys, cfg)
}

// ScanAccountsOn walks the account B-tree in key order through a raw file
// store on any file system (the §5.3 SCAN test measurement).
func ScanAccountsOn(fsys vfs.FileSystem) (int64, error) {
	return scanAccounts(fsys)
}

// loadRelations bulk-loads the four relations directly through the file
// system (the offline load phase; transactions are not involved) and syncs.
func loadRelations(fsys vfs.FileSystem, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	mkTree := func(path string, n int64) error {
		f, err := fsys.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		// Bulk-build the primary index bottom-up from the sorted id
		// stream, as a real database load utility would.
		id := int64(0)
		_, err = btree.BulkLoad(pagestore.NewFileStore(f, fsys.BlockSize()), func() ([]byte, []byte, bool) {
			if id >= n {
				return nil, nil, false
			}
			k, v := Key(id), BalanceRecord(id, 0)
			id++
			return k, v, true
		})
		return err
	}
	if err := mkTree(AccountPath, cfg.Accounts); err != nil {
		return fmt.Errorf("tpcb: load accounts: %w", err)
	}
	if err := mkTree(TellerPath, cfg.Tellers); err != nil {
		return fmt.Errorf("tpcb: load tellers: %w", err)
	}
	if err := mkTree(BranchPath, cfg.Branches); err != nil {
		return fmt.Errorf("tpcb: load branches: %w", err)
	}
	f, err := fsys.Create(HistoryPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := recno.Create(pagestore.NewFileStore(f, fsys.BlockSize()), HistoryRecordSize); err != nil {
		return fmt.Errorf("tpcb: load history: %w", err)
	}
	return fsys.Sync()
}

// scanAccounts walks the account B-tree in key order through a raw file
// store (the SCAN test measures file-system layout, not locking).
func scanAccounts(fsys vfs.FileSystem) (int64, error) {
	f, err := fsys.Open(AccountPath)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	tr, err := btree.Open(pagestore.NewFileStore(f, fsys.BlockSize()))
	if err != nil {
		return 0, err
	}
	c, err := tr.First()
	if err != nil {
		return 0, err
	}
	var n int64
	for c.Next() {
		n++
	}
	if c.Err() != nil {
		return n, c.Err()
	}
	return n, nil
}

// --- user-level system (LIBTP, Figure 2) ---

// UserSystem runs TPC-B through the user-level transaction manager on any
// file system.
type UserSystem struct {
	env   *libtp.Env
	clock *sim.Clock
	costs sim.CostModel
	label string
	acc   *libtp.DB
	tel   *libtp.DB
	brn   *libtp.DB
	hist  *libtp.DB
	// Interior-node caches, one per B-tree relation (history is recno — no
	// interior pages). Shared across workers, validated by on-page LSN, and
	// flushed wholesale on any abort: the before-image restore rewinds page
	// LSNs, so a post-abort writer could reissue an LSN the cache still maps
	// to aborted-timeline bytes.
	accCache *btree.NodeCache
	telCache *btree.NodeCache
	brnCache *btree.NodeCache
}

// NewUserSystem builds the user-level configuration on env's file system.
func NewUserSystem(env *libtp.Env, clock *sim.Clock, costs sim.CostModel) *UserSystem {
	return &UserSystem{
		env:      env,
		clock:    clock,
		costs:    costs,
		label:    "user-" + env.FS().Name(),
		accCache: btree.NewNodeCache(0),
		telCache: btree.NewNodeCache(0),
		brnCache: btree.NewNodeCache(0),
	}
}

// abort rolls the transaction back and drops the shared interior caches
// (see the cache field comment for why aborts must flush).
func (s *UserSystem) abort(txn *libtp.Txn) {
	txn.Abort()
	s.accCache.Flush()
	s.telCache.Flush()
	s.brnCache.Flush()
}

// Name implements System.
func (s *UserSystem) Name() string { return s.label }

// Load implements System.
func (s *UserSystem) Load(cfg Config) error {
	if err := loadRelations(s.env.FS(), cfg); err != nil {
		return err
	}
	var err error
	if s.acc, err = s.env.OpenDB(AccountPath); err != nil {
		return err
	}
	if s.tel, err = s.env.OpenDB(TellerPath); err != nil {
		return err
	}
	if s.brn, err = s.env.OpenDB(BranchPath); err != nil {
		return err
	}
	if s.hist, err = s.env.OpenDB(HistoryPath); err != nil {
		return err
	}
	return nil
}

// Attach opens the four relations on an already-loaded (e.g. recovered)
// environment. No load is performed.
func (s *UserSystem) Attach() error {
	var err error
	if s.acc, err = s.env.OpenDB(AccountPath); err != nil {
		return err
	}
	if s.tel, err = s.env.OpenDB(TellerPath); err != nil {
		return err
	}
	if s.brn, err = s.env.OpenDB(BranchPath); err != nil {
		return err
	}
	if s.hist, err = s.env.OpenDB(HistoryPath); err != nil {
		return err
	}
	return nil
}

// Run implements System: the classic read-update of account, teller, and
// branch plus a history append, inside one transaction.
func (s *UserSystem) Run(t Txn) error {
	txn := s.env.Begin()
	update := func(db *libtp.DB, c *btree.NodeCache, id int64) error {
		s.clock.Advance(s.costs.RecordOp)
		tr, err := btree.OpenWithCache(txn.Store(db), c)
		if err != nil {
			return err
		}
		rec, err := tr.Get(Key(id))
		if err != nil {
			return err
		}
		rec2 := append([]byte(nil), rec...)
		SetBalance(rec2, Balance(rec2)+t.Amount)
		return tr.Put(Key(id), rec2)
	}
	if err := update(s.acc, s.accCache, t.Account); err != nil {
		s.abort(txn)
		return err
	}
	if err := update(s.tel, s.telCache, t.Teller); err != nil {
		s.abort(txn)
		return err
	}
	if err := update(s.brn, s.brnCache, t.Branch); err != nil {
		s.abort(txn)
		return err
	}
	s.clock.Advance(s.costs.RecordOp)
	hf, err := recno.Open(txn.Store(s.hist))
	if err != nil {
		s.abort(txn)
		return err
	}
	if _, err := hf.Append(HistoryRecord(t.Account, t.Teller, t.Branch, t.Amount, int64(s.clock.Now()))); err != nil {
		s.abort(txn)
		return err
	}
	return txn.Commit()
}

// NewWorker implements MultiClient. The user-level system is stateless per
// call — transactions address the shared DB handles through their own
// transactional stores — so every client can share the System itself.
func (s *UserSystem) NewWorker() (Worker, error) { return s, nil }

// Drain implements System: force any batched commits and flush the cache
// through a checkpoint.
func (s *UserSystem) Drain() error {
	return s.env.Checkpoint()
}

// ScanAccounts implements System.
func (s *UserSystem) ScanAccounts() (int64, error) {
	return scanAccounts(s.env.FS())
}

// Close implements System.
func (s *UserSystem) Close() error { return nil }

// --- embedded system (Figure 3) ---

// EmbeddedSystem runs TPC-B through the kernel transaction manager in LFS.
type EmbeddedSystem struct {
	m     *core.Manager
	clock *sim.Clock
	costs sim.CostModel
	proc  *core.Process
	acc   *core.File
	tel   *core.File
	brn   *core.File
	hist  *core.File
	// Shared interior-node caches, as in UserSystem (see that field comment
	// for the abort-flush requirement).
	accCache *btree.NodeCache
	telCache *btree.NodeCache
	brnCache *btree.NodeCache
}

// NewEmbeddedSystem builds the kernel configuration.
func NewEmbeddedSystem(m *core.Manager, clock *sim.Clock, costs sim.CostModel) *EmbeddedSystem {
	return &EmbeddedSystem{
		m: m, clock: clock, costs: costs, proc: m.NewProcess(),
		accCache: btree.NewNodeCache(0),
		telCache: btree.NewNodeCache(0),
		brnCache: btree.NewNodeCache(0),
	}
}

// abort rolls the process's transaction back and drops the shared interior
// caches (abort rewinds page LSNs; see UserSystem).
func (s *EmbeddedSystem) abort(proc *core.Process) {
	proc.TxnAbort()
	s.accCache.Flush()
	s.telCache.Flush()
	s.brnCache.Flush()
}

// Name implements System.
func (s *EmbeddedSystem) Name() string { return "kernel-lfs" }

// Load implements System: bulk-load, then turn transaction-protection on
// for all four relations.
func (s *EmbeddedSystem) Load(cfg Config) error {
	if err := loadRelations(s.m.FS(), cfg); err != nil {
		return err
	}
	for _, p := range DBPaths() {
		if err := s.m.Protect(p); err != nil {
			return err
		}
	}
	if err := s.m.FS().Sync(); err != nil {
		return err
	}
	var err error
	if s.acc, err = s.m.Open(AccountPath); err != nil {
		return err
	}
	if s.tel, err = s.m.Open(TellerPath); err != nil {
		return err
	}
	if s.brn, err = s.m.Open(BranchPath); err != nil {
		return err
	}
	if s.hist, err = s.m.Open(HistoryPath); err != nil {
		return err
	}
	return nil
}

// Attach opens the four relations on an already-loaded file system (after a
// crash and remount, for instance). No load is performed.
func (s *EmbeddedSystem) Attach() error {
	var err error
	if s.acc, err = s.m.Open(AccountPath); err != nil {
		return err
	}
	if s.tel, err = s.m.Open(TellerPath); err != nil {
		return err
	}
	if s.brn, err = s.m.Open(BranchPath); err != nil {
		return err
	}
	if s.hist, err = s.m.Open(HistoryPath); err != nil {
		return err
	}
	return nil
}

// Run implements System, executing on the system's default process.
func (s *EmbeddedSystem) Run(t Txn) error { return s.runWith(s.proc, t) }

// runWith executes one transaction on the given kernel process.
func (s *EmbeddedSystem) runWith(proc *core.Process, t Txn) error {
	if err := proc.TxnBegin(); err != nil {
		return err
	}
	update := func(f *core.File, c *btree.NodeCache, id int64) error {
		s.clock.Advance(s.costs.RecordOp)
		tr, err := btree.OpenWithCache(core.NewStore(proc, f), c)
		if err != nil {
			return err
		}
		rec, err := tr.Get(Key(id))
		if err != nil {
			return err
		}
		rec2 := append([]byte(nil), rec...)
		SetBalance(rec2, Balance(rec2)+t.Amount)
		return tr.Put(Key(id), rec2)
	}
	if err := update(s.acc, s.accCache, t.Account); err != nil {
		s.abort(proc)
		return err
	}
	if err := update(s.tel, s.telCache, t.Teller); err != nil {
		s.abort(proc)
		return err
	}
	if err := update(s.brn, s.brnCache, t.Branch); err != nil {
		s.abort(proc)
		return err
	}
	s.clock.Advance(s.costs.RecordOp)
	hf, err := recno.Open(core.NewStore(proc, s.hist))
	if err != nil {
		s.abort(proc)
		return err
	}
	if _, err := hf.Append(HistoryRecord(t.Account, t.Teller, t.Branch, t.Amount, int64(s.clock.Now()))); err != nil {
		s.abort(proc)
		return err
	}
	return proc.TxnCommit()
}

// embeddedWorker is one client's kernel process (the paper's restriction 3:
// transactions may not span processes, so each client needs its own).
type embeddedWorker struct {
	s    *EmbeddedSystem
	proc *core.Process
}

func (w *embeddedWorker) Run(t Txn) error { return w.s.runWith(w.proc, t) }

// NewWorker implements MultiClient: a fresh kernel process sharing the open
// relation files.
func (s *EmbeddedSystem) NewWorker() (Worker, error) {
	return &embeddedWorker{s: s, proc: s.m.NewProcess()}, nil
}

// Drain implements System.
func (s *EmbeddedSystem) Drain() error { return s.m.Flush() }

// ScanAccounts implements System.
func (s *EmbeddedSystem) ScanAccounts() (int64, error) {
	return scanAccounts(s.m.FS())
}

// Close implements System.
func (s *EmbeddedSystem) Close() error { return nil }
