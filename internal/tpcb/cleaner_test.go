package tpcb

import (
	"reflect"
	"testing"
)

// buildIdleRig builds a kernel-lfs rig with the idle-overlapped batched
// cleaner on a disk small enough that the log wraps and cleaning must run.
func buildIdleRig(t *testing.T, batch int) *Rig {
	t.Helper()
	rig, err := BuildRig(RigOptions{
		Kind:         "kernel-lfs",
		Config:       smallCfg(),
		ExpectedTxns: 600,
		CleanerMode:  "idle",
		CleanBatch:   batch,
	})
	if err != nil {
		t.Fatalf("BuildRig: %v", err)
	}
	if rig.Idle == nil {
		t.Fatal("idle rig has no Idle hook")
	}
	return rig
}

// TestIdleCleanerIntegrity drives TPC-B with background cleaning firing
// between transactions and then checks every layer: TPC-B balance
// invariants, fsck, the segment-usage audit, and free-segment accounting.
func TestIdleCleanerIntegrity(t *testing.T) {
	rig := buildIdleRig(t, 4)
	gen := NewGenerator(smallCfg())
	var txns []Txn
	for i := 0; i < 600; i++ {
		tx := gen.Next()
		txns = append(txns, tx)
		if err := rig.Sys.Run(tx); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
		if err := rig.Idle(); err != nil {
			t.Fatalf("idle clean after txn %d: %v", i, err)
		}
	}
	if err := rig.Sys.Drain(); err != nil {
		t.Fatal(err)
	}

	cl := rig.LFS.Stats().Cleaner
	if cl.Runs == 0 || cl.SegmentsCleaned == 0 {
		t.Fatalf("background cleaner never ran: %+v", cl)
	}
	if cl.BusyTime != cl.OverlapTime+cl.StallTime {
		t.Errorf("busy %v != overlap %v + stall %v", cl.BusyTime, cl.OverlapTime, cl.StallTime)
	}

	// No live block lost: the TPC-B invariants read back every relation.
	checkConsistency(t, rig, txns)

	rep, err := rig.LFS.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("fsck after idle cleaning: %v", rep.Problems)
	}

	// Segment-usage table agrees with reachability, and the free count is
	// consistent with the audited per-segment live totals.
	maintained, actual, diff, err := rig.LFS.AuditUsage()
	if err != nil {
		t.Fatal(err)
	}
	if maintained != actual || len(diff) != 0 {
		t.Errorf("usage audit: maintained %d, actual %d, %d segments disagree", maintained, actual, len(diff))
	}
	if free := rig.LFS.FreeSegments(); free <= 0 {
		t.Errorf("free segments = %d after cleaning; want > 0", free)
	}
}

// TestIdleCleanerDeterministic runs the identical seed twice with the
// background cleaner enabled and requires byte-identical results: same
// elapsed simulated time, same file-system stats, same device stats.
func TestIdleCleanerDeterministic(t *testing.T) {
	run := func() (Result, interface{}, interface{}) {
		rig := buildIdleRig(t, 4)
		res, err := rig.Run(smallCfg(), 600)
		if err != nil {
			t.Fatal(err)
		}
		return res, rig.LFS.Stats(), rig.Dev.Stats()
	}
	res1, fst1, dst1 := run()
	res2, fst2, dst2 := run()
	if res1.Elapsed != res2.Elapsed || res1.TPS != res2.TPS {
		t.Errorf("elapsed differs across identical seeds: %v vs %v", res1.Elapsed, res2.Elapsed)
	}
	if !reflect.DeepEqual(fst1, fst2) {
		t.Errorf("lfs stats differ across identical seeds:\n%+v\n%+v", fst1, fst2)
	}
	if !reflect.DeepEqual(dst1, dst2) {
		t.Errorf("device stats differ across identical seeds:\n%+v\n%+v", dst1, dst2)
	}
}
