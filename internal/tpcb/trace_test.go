package tpcb

import (
	"bytes"
	"fmt"
	"testing"
)

// buildTraced builds the cleaner-stress rig of TestMPLCleanerDeterminism
// (shrunken disk, idle background cleaner, group commit) with or without a
// tracer attached.
func buildTraced(t *testing.T, kind string, txns int, traced bool) *Rig {
	t.Helper()
	opts := RigOptions{
		Kind:         kind,
		Config:       smallCfg(),
		ExpectedTxns: txns,
		GroupCommit:  8,
		DiskScale:    0.7,
		Trace:        traced,
	}
	if kind != "user-ffs" {
		opts.CleanerMode = "idle"
		opts.CleanBatch = 4
		opts.IdleCleanTrigger = 10
	}
	rig, err := BuildRig(opts)
	if err != nil {
		t.Fatalf("BuildRig(%s): %v", kind, err)
	}
	rig.Clock.SetStrict(true)
	return rig
}

// TestTraceByteIdentical: two same-seed MPL=8 runs with group commit and the
// idle background cleaner produce byte-identical Chrome traces and metrics
// snapshots — the third package invariant of internal/trace, on the most
// concurrent configuration the repo has.
func TestTraceByteIdentical(t *testing.T) {
	const txns, mpl = 600, 8
	for _, kind := range []string{"user-lfs", "kernel-lfs"} {
		t.Run(kind, func(t *testing.T) {
			run := func() (chrome, metrics string) {
				rig := buildTraced(t, kind, txns, true)
				res, err := rig.RunMPL(smallCfg(), txns, mpl)
				if err != nil {
					t.Fatalf("RunMPL: %v", err)
				}
				if rig.Tracer.EventCount() == 0 {
					t.Fatal("traced run recorded no events")
				}
				var cb, mb bytes.Buffer
				if err := rig.Tracer.WriteChrome(&cb); err != nil {
					t.Fatalf("WriteChrome: %v", err)
				}
				snap := CollectSnapshot(rig, res, rig.Tracer)
				if len(snap.Attribution) == 0 || snap.Metrics == nil {
					t.Fatalf("snapshot missing attribution or metrics: %+v", snap)
				}
				if err := snap.WriteJSON(&mb); err != nil {
					t.Fatalf("WriteJSON: %v", err)
				}
				return cb.String(), mb.String()
			}
			c1, m1 := run()
			c2, m2 := run()
			if c1 != c2 {
				t.Errorf("chrome traces differ between same-seed runs (lens %d vs %d)", len(c1), len(c2))
			}
			if m1 != m2 {
				t.Errorf("metrics snapshots differ between same-seed runs:\n%s\n---\n%s", m1, m2)
			}
		})
	}
}

// TestTraceNeutrality: attaching a tracer must not move a single simulated
// nanosecond — elapsed, TPS, retries, and every disk counter of a traced run
// equal the untraced run, at MPL=1 and MPL=8.
func TestTraceNeutrality(t *testing.T) {
	const txns = 300
	for _, kind := range []string{"user-ffs", "user-lfs", "kernel-lfs"} {
		for _, mpl := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/mpl%d", kind, mpl), func(t *testing.T) {
				run := func(traced bool) (Result, interface{}) {
					rig := buildTraced(t, kind, txns, traced)
					res, err := rig.RunMPL(smallCfg(), txns, mpl)
					if err != nil {
						t.Fatalf("RunMPL(traced=%v): %v", traced, err)
					}
					if traced == (rig.Tracer == nil) {
						t.Fatalf("rig tracer presence %v does not match traced=%v", rig.Tracer != nil, traced)
					}
					return res, rig.Dev.Stats()
				}
				plainRes, plainDisk := run(false)
				tracedRes, tracedDisk := run(true)
				if plainRes != tracedRes {
					t.Fatalf("tracing changed the result:\nplain  %+v\ntraced %+v", plainRes, tracedRes)
				}
				if plainDisk != tracedDisk {
					t.Fatalf("tracing changed disk stats:\nplain  %+v\ntraced %+v", plainDisk, tracedDisk)
				}
			})
		}
	}
}
