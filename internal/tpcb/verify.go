package tpcb

import (
	"fmt"

	"repro/internal/btree"
	"repro/internal/pagestore"
	"repro/internal/recno"
	"repro/internal/vfs"
)

// VerifyState checks a recovered file system's TPC-B state against the
// shadow history of committed transactions: every relation must hold exactly
// the balances the committed prefix implies, the per-relation sums must
// agree, and the history relation must hold one record per transaction.
//
// inFlight handles the commit-acknowledgement ambiguity inherent to crash
// testing: when the crash hits between a commit's durability point and its
// acknowledgement, recovery legitimately surfaces one more transaction than
// the harness saw committed. If inFlight is non-nil and the history relation
// holds len(committed)+1 records, the in-flight transaction is folded into
// the expected state — but then ALL relations must consistently reflect it.
// A mixture (history with the extra record but a balance without it, or vice
// versa) is an atomicity violation and fails verification.
func VerifyState(fsys vfs.FileSystem, committed []Txn, inFlight *Txn) error {
	hf, err := fsys.Open(HistoryPath)
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	defer hf.Close()
	h, err := recno.Open(pagestore.NewFileStore(hf, fsys.BlockSize()))
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	expect := committed
	switch n := h.Count(); {
	case n == int64(len(committed)):
		// The in-flight transaction (if any) did not reach durability.
	case inFlight != nil && n == int64(len(committed))+1:
		// Durable but unacknowledged: fold it into the expected state.
		expect = make([]Txn, len(committed), len(committed)+1)
		copy(expect, committed)
		expect = append(expect, *inFlight)
	default:
		return fmt.Errorf("durability: history count = %d, want %d (in-flight: %v)",
			n, len(committed), inFlight != nil)
	}

	var want int64
	perAccount := map[int64]int64{}
	perTeller := map[int64]int64{}
	perBranch := map[int64]int64{}
	for _, tx := range expect {
		want += tx.Amount
		perAccount[tx.Account] += tx.Amount
		perTeller[tx.Teller] += tx.Amount
		perBranch[tx.Branch] += tx.Amount
	}
	sumAndCheck := func(path string, per map[int64]int64) error {
		f, err := fsys.Open(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		defer f.Close()
		tr, err := btree.Open(pagestore.NewFileStore(f, fsys.BlockSize()))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		c, err := tr.First()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		var sum int64
		var id int64
		for c.Next() {
			b := Balance(c.Value())
			sum += b
			if b != per[id] {
				return fmt.Errorf("atomicity: %s id %d balance %d, want %d", path, id, b, per[id])
			}
			id++
		}
		if err := c.Err(); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if sum != want {
			return fmt.Errorf("balance: %s sum = %d, want %d", path, sum, want)
		}
		return nil
	}
	if err := sumAndCheck(AccountPath, perAccount); err != nil {
		return err
	}
	if err := sumAndCheck(TellerPath, perTeller); err != nil {
		return err
	}
	return sumAndCheck(BranchPath, perBranch)
}
