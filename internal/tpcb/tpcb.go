// Package tpcb implements the modified TPC-B benchmark of §5.1: account,
// teller, and branch relations as primary B-tree indices, the history
// relation as a fixed-length record file, a single log, a single node, and
// a multiprogramming level of one ("providing a worst-case analysis").
//
// Each transaction withdraws a random amount from a random account and
// updates the corresponding teller and branch balances, then appends a
// history record. The same workload runs on three configurations:
//
//   - user-level transaction manager (LIBTP) on the read-optimized FS,
//   - user-level transaction manager on LFS,
//   - kernel transaction manager embedded in LFS,
//
// which are the three bars of Figure 4.
package tpcb

import (
	"encoding/binary"
	"fmt"

	"repro/internal/sim"
)

// Paper scaling rules for a 10 TPS system (§5.1).
const (
	PaperAccounts = 1000000
	PaperTellers  = 100
	PaperBranches = 10
)

// Record sizes: TPC-B prescribes 100-byte account/teller/branch records and
// 50-byte history records.
const (
	BalanceRecordSize = 100
	HistoryRecordSize = 50
)

// Config sizes the database.
type Config struct {
	Accounts int64
	Tellers  int64
	Branches int64
	// Seed drives the deterministic account/teller selection.
	Seed uint64
	// Locality is the percentage of transactions whose account is drawn
	// from the teller's home branch, the TPC-B account-selection rule
	// (85 in the spec). Zero keeps the historical uniform stream — the
	// generator draws the same RNG sequence it always has, so existing
	// runs stay byte-identical. The multi-spindle device sweep sets it:
	// home-branch locality is what a range-partitioned array exploits,
	// and without it nearly every transaction is a cross-shard two-phase
	// commit that holds hot branch locks across a log force.
	Locality int
}

// ScaledConfig returns the paper's sizing multiplied by scale (scale 1.0 =
// the full 1,000,000-account database; the benchmark default is 0.1).
func ScaledConfig(scale float64) Config {
	c := Config{
		Accounts: int64(float64(PaperAccounts) * scale),
		Tellers:  int64(float64(PaperTellers) * scale),
		Branches: int64(float64(PaperBranches) * scale),
		Seed:     1993,
	}
	if c.Accounts < 100 {
		c.Accounts = 100
	}
	if c.Tellers < 10 {
		c.Tellers = 10
	}
	if c.Branches < 2 {
		c.Branches = 2
	}
	return c
}

// Key encodes an id as a big-endian key so B-tree order equals numeric
// order (the SCAN test reads the account file "in key order").
func Key(id int64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(id))
	return b
}

// BalanceRecord encodes a 100-byte balance record.
func BalanceRecord(id, balance int64) []byte {
	b := make([]byte, BalanceRecordSize)
	le := binary.LittleEndian
	le.PutUint64(b[0:], uint64(id))
	le.PutUint64(b[8:], uint64(balance))
	return b
}

// Balance extracts the balance from a balance record.
func Balance(rec []byte) int64 {
	return int64(binary.LittleEndian.Uint64(rec[8:]))
}

// SetBalance updates the balance field in place.
func SetBalance(rec []byte, balance int64) {
	binary.LittleEndian.PutUint64(rec[8:], uint64(balance))
}

// HistoryRecord encodes a 50-byte history record: account, teller, branch,
// amount, timestamp.
func HistoryRecord(account, teller, branch, amount, now int64) []byte {
	b := make([]byte, HistoryRecordSize)
	le := binary.LittleEndian
	le.PutUint64(b[0:], uint64(account))
	le.PutUint64(b[8:], uint64(teller))
	le.PutUint64(b[16:], uint64(branch))
	le.PutUint64(b[24:], uint64(amount))
	le.PutUint64(b[32:], uint64(now))
	return b
}

// Txn describes one generated transaction.
type Txn struct {
	Account int64
	Teller  int64
	Branch  int64
	Amount  int64
}

// Generator produces the deterministic transaction stream.
type Generator struct {
	cfg Config
	rng *sim.RNG
}

// NewGenerator returns a generator for cfg.
func NewGenerator(cfg Config) *Generator {
	return &Generator{cfg: cfg, rng: sim.NewRNG(cfg.Seed)}
}

// ClientSeed derives the deterministic RNG seed for one client of a
// multiprogramming run. Client 0 keeps the base seed unchanged, so a
// single-client run replays the historical MPL=1 transaction stream byte
// for byte; every other client gets an independent stream from a
// SplitMix64-style scramble of (seed, client).
func ClientSeed(seed uint64, client int) uint64 {
	if client == 0 {
		return seed
	}
	z := seed + 0x9e3779b97f4a7c15*uint64(client)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewClientGenerator returns client's deterministic transaction stream for
// a multiprogramming run.
func NewClientGenerator(cfg Config, client int) *Generator {
	c := cfg
	c.Seed = ClientSeed(cfg.Seed, client)
	return NewGenerator(c)
}

// Next returns the next transaction. Tellers map to branches by division,
// as in the TPC-B hierarchy.
func (g *Generator) Next() Txn {
	teller := g.rng.Int63n(g.cfg.Tellers)
	branchOfTeller := teller * g.cfg.Branches / g.cfg.Tellers
	var account int64
	if g.cfg.Locality > 0 && g.rng.Int63n(100) < int64(g.cfg.Locality) {
		// Home-branch pick: accounts map to branches by division, so
		// branch b owns the contiguous range [b*A/B, (b+1)*A/B).
		lo := branchOfTeller * g.cfg.Accounts / g.cfg.Branches
		hi := (branchOfTeller + 1) * g.cfg.Accounts / g.cfg.Branches
		account = lo + g.rng.Int63n(hi-lo)
	} else {
		account = g.rng.Int63n(g.cfg.Accounts)
	}
	return Txn{
		Account: account,
		Teller:  teller,
		Branch:  branchOfTeller,
		Amount:  g.rng.Int63n(1999999) - 999999, // TPC-B delta range
	}
}

// System abstracts the three measured configurations: load the database,
// run one transaction, and force any pending group commit.
type System interface {
	// Name identifies the configuration (e.g. "user-ffs", "user-lfs",
	// "kernel-lfs").
	Name() string
	// Load creates and populates the four relations.
	Load(cfg Config) error
	// Run executes one TPC-B transaction.
	Run(t Txn) error
	// Drain completes any pending group commit.
	Drain() error
	// ScanAccounts reads the account relation in key order, returning the
	// number of records seen (the §5.3 SCAN test).
	ScanAccounts() (int64, error)
	// Close releases resources.
	Close() error
}

// Worker is one client's execution context in a multiprogramming run: it
// executes transactions against the shared system state. A System is itself
// a Worker (its Run method), which suffices at MPL = 1.
type Worker interface {
	// Run executes one TPC-B transaction.
	Run(t Txn) error
}

// MultiClient is implemented by systems that can serve several concurrent
// clients, each through its own Worker (its own kernel process, in the
// embedded system's terms). RunBenchmarkMPL requires it at MPL > 1.
type MultiClient interface {
	// NewWorker returns a fresh per-client execution context sharing the
	// system's database state.
	NewWorker() (Worker, error)
}

// Validate checks a configuration.
func (c Config) Validate() error {
	if c.Accounts <= 0 || c.Tellers <= 0 || c.Branches <= 0 {
		return fmt.Errorf("tpcb: invalid config %+v", c)
	}
	return nil
}
