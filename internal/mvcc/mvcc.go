// Package mvcc is the version-tracking layer behind snapshot (multiversion)
// reads. A read-only snapshot transaction pins a commit horizon and then
// reads a consistent image of every page as of that horizon without touching
// the lock manager; writers keep running under ordinary two-phase locking.
//
// The package holds three small deterministic structures, all internally
// synchronized and allocation-free on their lookup paths:
//
//   - Horizons: a refcounted multiset of pinned snapshot horizons. The
//     oldest pinned horizon is the retention watermark — versions at or
//     below it can never be needed again and are pruned eagerly.
//
//   - AddrMap: the kernel-side version map. The embedded transaction
//     manager commits by flushing through the no-overwrite LFS, so the
//     pre-commit version of every page it rewrites survives on disk at its
//     old segment address. Each commit batch is an epoch; a record
//     (page, epoch E, addr A) means "page's content *before* the epoch-E
//     commit lives at disk address A". The newest version at-or-before
//     horizon H is therefore the record with the smallest epoch > H, or the
//     current on-disk page when no such record exists. The set of retained
//     addresses doubles as the cleaner's retention horizon: segments
//     containing a retained address may not be reclaimed.
//
//   - DeltaMap: the user-side version map. LIBTP's WAL already carries a
//     before-image for every page write, so old versions are reconstructed
//     in memory by applying before-deltas of all updates that committed
//     after the horizon (or not at all) in reverse log order — the log as
//     the version repository, no disk retention required.
package mvcc

import "sync"

// PageID names one logical page: a file and a block number within it.
type PageID struct {
	File  uint64
	Block int64
}

// Horizons is a refcounted multiset of pinned snapshot horizons. Horizons
// are opaque monotone int64s — WAL LSNs on the user side, commit epochs on
// the kernel side.
type Horizons struct {
	mu   sync.Mutex
	pins map[int64]int
	n    int
}

// NewHorizons returns an empty pin set.
func NewHorizons() *Horizons {
	return &Horizons{pins: make(map[int64]int)}
}

// Pin takes one reference on horizon v.
func (h *Horizons) Pin(v int64) {
	h.mu.Lock()
	h.pins[v]++
	h.n++
	h.mu.Unlock()
}

// Unpin drops one reference on horizon v. It panics if v is not pinned:
// an unbalanced release would silently unblock the cleaner while a snapshot
// still reads through it.
func (h *Horizons) Unpin(v int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	c, ok := h.pins[v]
	if !ok {
		panic("mvcc: Unpin of horizon that is not pinned")
	}
	if c == 1 {
		delete(h.pins, v)
	} else {
		h.pins[v] = c - 1
	}
	h.n--
}

// Active reports whether any snapshot is pinned.
//
//simlint:noalloc
func (h *Horizons) Active() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n > 0
}

// Oldest returns the oldest pinned horizon — the retention watermark — and
// whether any horizon is pinned at all.
//
//simlint:noalloc
func (h *Horizons) Oldest() (int64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0, false
	}
	first := true
	var min int64
	//simlint:ordered commutative min over int64 keys: any iteration order yields the same minimum
	for v := range h.pins {
		if first || v < min {
			min, first = v, false
		}
	}
	return min, true
}

// version is one kernel-side record: the page's content before the epoch-E
// commit lives at disk address Addr (0 = the page did not exist yet).
type version struct {
	epoch int64
	addr  int64
}

// AddrMap maps (page, horizon) to the disk address holding the page's
// newest version at-or-before the horizon. Records for a page carry
// strictly increasing epochs (one commit batch per epoch), so each chain is
// sorted by construction.
type AddrMap struct {
	mu    sync.Mutex
	pages map[PageID][]version
	addrs map[int64]int // refcount of retained non-zero disk addresses
}

// NewAddrMap returns an empty version map.
func NewAddrMap() *AddrMap {
	return &AddrMap{
		pages: make(map[PageID][]version),
		addrs: make(map[int64]int),
	}
}

// Record notes that page id's content before the epoch-E commit lives at
// disk address addr (0 = the page was a hole). Epochs must be recorded in
// increasing order per page; Record panics otherwise, because an unsorted
// chain would silently corrupt AddrAt's binary search.
func (m *AddrMap) Record(id PageID, epoch, addr int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	vs := m.pages[id]
	if len(vs) > 0 && vs[len(vs)-1].epoch >= epoch {
		panic("mvcc: AddrMap.Record epochs must increase per page")
	}
	m.pages[id] = append(vs, version{epoch: epoch, addr: addr})
	if addr != 0 {
		m.addrs[addr]++
	}
}

// AddrAt returns the disk address of page id's newest version at-or-before
// horizon h. The second result is false when the page has not been
// committed-over since h, i.e. the current on-disk page already is the
// snapshot's version. An address of 0 with ok=true means the page did not
// exist at the horizon (read as zeroes).
//
//simlint:noalloc
func (m *AddrMap) AddrAt(id PageID, h int64) (int64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	vs := m.pages[id]
	// First record with epoch > h: its address is the content at h.
	lo, hi := 0, len(vs)
	for lo < hi {
		mid := (lo + hi) / 2
		if vs[mid].epoch > h {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(vs) {
		return 0, false
	}
	return vs[lo].addr, true
}

// RetainsRange reports whether any retained version address falls in
// [lo, hi). The LFS cleaner calls it per victim candidate with the
// segment's block-address range; a true answer vetoes reclaiming the
// segment while a pinned snapshot may still read through it.
//
//simlint:noalloc
func (m *AddrMap) RetainsRange(lo, hi int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.addrs) == 0 {
		return false
	}
	//simlint:ordered pure existence predicate: any iteration order yields the same answer
	for a := range m.addrs {
		if lo <= a && a < hi {
			return true
		}
	}
	return false
}

// RetainedBlocks returns the number of distinct disk addresses currently
// retained for snapshots.
//
//simlint:noalloc
func (m *AddrMap) RetainedBlocks() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.addrs))
}

// Prune drops every version that no pinned snapshot can ever need: records
// with epoch <= oldest (a snapshot at horizon H needs a record only when
// H < its epoch), or all records when active is false. Called with the new
// watermark whenever a snapshot closes.
func (m *AddrMap) Prune(oldest int64, active bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	//simlint:ordered per-entry trim: each chain is filtered independently, no cross-entry order observable
	for id, vs := range m.pages {
		keep := 0
		if active {
			// Chains are epoch-sorted: the dropped records are a prefix.
			for keep < len(vs) && vs[keep].epoch <= oldest {
				keep++
			}
		} else {
			keep = len(vs)
		}
		if keep == 0 {
			continue
		}
		for _, v := range vs[:keep] {
			if v.addr != 0 {
				m.releaseAddrLocked(v.addr)
			}
		}
		if keep == len(vs) {
			delete(m.pages, id)
		} else {
			m.pages[id] = vs[keep:]
		}
	}
}

func (m *AddrMap) releaseAddrLocked(addr int64) {
	c := m.addrs[addr]
	if c <= 1 {
		delete(m.addrs, addr)
	} else {
		m.addrs[addr] = c - 1
	}
}

// delta is one user-side record: byte range [off, off+len(before)) of a
// page held before by the write of transaction txn; commit is the
// transaction's commit LSN, or 0 while it is still in flight.
type delta struct {
	txn    uint64
	commit int64
	off    uint32
	before []byte
}

// DeltaMap reconstructs user-side page versions from WAL before-images.
// Per-page chains are kept in log order; reconstructing a page at horizon H
// applies, newest first, the before-image of every delta whose transaction
// committed after H or not at all.
type DeltaMap struct {
	mu    sync.Mutex
	pages map[PageID][]delta
	byTxn map[uint64][]PageID
	bytes int64
}

// NewDeltaMap returns an empty delta map.
func NewDeltaMap() *DeltaMap {
	return &DeltaMap{
		pages: make(map[PageID][]delta),
		byTxn: make(map[uint64][]PageID),
	}
}

// Record appends an uncommitted before-image delta for a write by txn.
// before is retained (not copied): callers pass the same immutable slice
// they log to the WAL and keep for undo.
func (d *DeltaMap) Record(id PageID, txn uint64, off uint32, before []byte) {
	d.mu.Lock()
	d.pages[id] = append(d.pages[id], delta{txn: txn, off: off, before: before})
	d.byTxn[txn] = append(d.byTxn[txn], id)
	d.bytes += int64(len(before))
	d.mu.Unlock()
}

// Commit stamps every delta of txn with its commit LSN, making the deltas
// visible as "changed after horizon H" for all H < lsn. With keep=false
// (no pinned snapshot predates the commit) the deltas are discarded
// instead — nothing can ever need them.
func (d *DeltaMap) Commit(txn uint64, lsn int64, keep bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !keep {
		d.dropTxnLocked(txn)
		return
	}
	for _, id := range d.byTxn[txn] {
		vs := d.pages[id]
		for i := range vs {
			if vs[i].txn == txn && vs[i].commit == 0 {
				vs[i].commit = lsn
			}
		}
	}
	delete(d.byTxn, txn)
}

// Abort discards every delta of txn: the abort path restores the page
// bytes, so the chain must read as if the transaction never wrote.
func (d *DeltaMap) Abort(txn uint64) {
	d.mu.Lock()
	d.dropTxnLocked(txn)
	d.mu.Unlock()
}

func (d *DeltaMap) dropTxnLocked(txn uint64) {
	for _, id := range d.byTxn[txn] {
		vs := d.pages[id]
		keep := vs[:0]
		for _, v := range vs {
			if v.txn == txn && v.commit == 0 {
				d.bytes -= int64(len(v.before))
				continue
			}
			keep = append(keep, v)
		}
		if len(keep) == 0 {
			delete(d.pages, id)
		} else {
			d.pages[id] = keep
		}
	}
	delete(d.byTxn, txn)
}

// ApplyBefore rewinds page bytes p (the current content of page id) to the
// snapshot horizon h by applying before-images newest-first for every delta
// still in flight or committed after h.
//
//simlint:noalloc
func (d *DeltaMap) ApplyBefore(id PageID, h int64, p []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	vs := d.pages[id]
	for i := len(vs) - 1; i >= 0; i-- {
		v := vs[i]
		if v.commit == 0 || v.commit > h {
			copy(p[v.off:], v.before)
		}
	}
}

// Prune drops every committed delta at-or-below the watermark — no pinned
// snapshot can need it — and, when no snapshot remains pinned (active is
// false), clears the map entirely. Uncommitted deltas of live transactions
// are dropped too in that case: the next BeginSnapshot re-seeds them from
// the transactions' undo logs.
func (d *DeltaMap) Prune(oldest int64, active bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !active {
		clear(d.pages)
		clear(d.byTxn)
		d.bytes = 0
		return
	}
	//simlint:ordered per-entry trim: each chain is filtered independently, no cross-entry order observable
	for id, vs := range d.pages {
		keep := vs[:0]
		for _, v := range vs {
			if v.commit != 0 && v.commit <= oldest {
				d.bytes -= int64(len(v.before))
				continue
			}
			keep = append(keep, v)
		}
		if len(keep) == 0 {
			delete(d.pages, id)
		} else {
			d.pages[id] = keep
		}
	}
}

// Bytes returns the before-image bytes currently retained in memory.
func (d *DeltaMap) Bytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytes
}
