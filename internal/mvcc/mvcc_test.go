package mvcc

import (
	"bytes"
	"testing"
)

func TestHorizonsPinUnpinOldest(t *testing.T) {
	h := NewHorizons()
	if h.Active() {
		t.Fatal("empty set reports active")
	}
	if _, ok := h.Oldest(); ok {
		t.Fatal("empty set reports an oldest horizon")
	}
	h.Pin(30)
	h.Pin(10)
	h.Pin(10)
	h.Pin(20)
	if v, ok := h.Oldest(); !ok || v != 10 {
		t.Fatalf("Oldest = %d, %v; want 10, true", v, ok)
	}
	h.Unpin(10)
	if v, _ := h.Oldest(); v != 10 {
		t.Fatalf("Oldest after one of two unpins = %d, want 10", v)
	}
	h.Unpin(10)
	if v, _ := h.Oldest(); v != 20 {
		t.Fatalf("Oldest = %d, want 20", v)
	}
	h.Unpin(20)
	h.Unpin(30)
	if h.Active() {
		t.Fatal("fully unpinned set reports active")
	}
}

func TestHorizonsUnbalancedUnpinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unpin of unpinned horizon did not panic")
		}
	}()
	NewHorizons().Unpin(7)
}

func TestAddrMapAddrAt(t *testing.T) {
	m := NewAddrMap()
	id := PageID{File: 3, Block: 9}
	// Page rewritten at epochs 5, 8, 12; pre-images at 100, 200, 300.
	m.Record(id, 5, 100)
	m.Record(id, 8, 200)
	m.Record(id, 12, 300)

	cases := []struct {
		h    int64
		addr int64
		ok   bool
	}{
		{0, 100, true}, // before every commit: earliest pre-image
		{4, 100, true}, // still before epoch 5
		{5, 200, true}, // epoch-5 commit visible, epoch-8 is not
		{7, 200, true},
		{11, 300, true},
		{12, 0, false}, // all commits visible: current page is the version
		{99, 0, false},
	}
	for _, c := range cases {
		addr, ok := m.AddrAt(id, c.h)
		if addr != c.addr || ok != c.ok {
			t.Errorf("AddrAt(h=%d) = %d, %v; want %d, %v", c.h, addr, ok, c.addr, c.ok)
		}
	}
	if _, ok := m.AddrAt(PageID{File: 1, Block: 1}, 0); ok {
		t.Error("AddrAt on unrecorded page reported a version")
	}
}

func TestAddrMapRetainsRangeAndPrune(t *testing.T) {
	m := NewAddrMap()
	a := PageID{File: 1, Block: 0}
	b := PageID{File: 1, Block: 1}
	m.Record(a, 5, 100)
	m.Record(a, 9, 250) // both a@250 and b@250: refcounted
	m.Record(b, 9, 250)
	m.Record(b, 11, 0) // hole pre-image retains no address

	if got := m.RetainedBlocks(); got != 2 {
		t.Fatalf("RetainedBlocks = %d, want 2", got)
	}
	if !m.RetainsRange(100, 101) || !m.RetainsRange(250, 256) {
		t.Fatal("RetainsRange misses a retained address")
	}
	if m.RetainsRange(101, 250) || m.RetainsRange(0, 100) {
		t.Fatal("RetainsRange reports an unretained range")
	}

	// Watermark 5: the epoch-5 record can never be needed again.
	m.Prune(5, true)
	if m.RetainsRange(100, 101) {
		t.Fatal("pruned address still retained")
	}
	if addr, ok := m.AddrAt(a, 5); !ok || addr != 250 {
		t.Fatalf("AddrAt(a, 5) after prune = %d, %v; want 250, true", addr, ok)
	}
	// One of the two refs on 250 gone? No: epoch-9 records stay (9 > 5).
	if got := m.RetainedBlocks(); got != 1 {
		t.Fatalf("RetainedBlocks = %d, want 1", got)
	}

	// Last snapshot closed: everything goes.
	m.Prune(0, false)
	if m.RetainedBlocks() != 0 || m.RetainsRange(0, 1<<40) {
		t.Fatal("Prune(inactive) left retained addresses")
	}
	if _, ok := m.AddrAt(a, 0); ok {
		t.Fatal("Prune(inactive) left version records")
	}
}

func TestAddrMapRecordOutOfOrderPanics(t *testing.T) {
	m := NewAddrMap()
	id := PageID{File: 1, Block: 1}
	m.Record(id, 5, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Record did not panic")
		}
	}()
	m.Record(id, 5, 11)
}

// page builds a page whose every byte is v.
func page(n int, v byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = v
	}
	return p
}

func TestDeltaMapReconstruction(t *testing.T) {
	d := NewDeltaMap()
	id := PageID{File: 7, Block: 2}

	// Txn 1 rewrites bytes [0,4) from 'a' to 'b', commits at LSN 10.
	d.Record(id, 1, 0, page(4, 'a'))
	d.Commit(1, 10, true)
	// Txn 2 rewrites bytes [2,6) from current to 'c', commits at LSN 20.
	cur := append(page(4, 'b'), 'a', 'a', 'a', 'a')
	d.Record(id, 2, 2, append([]byte(nil), cur[2:6]...))
	d.Commit(2, 20, true)
	// Txn 3 writes bytes [0,2), still in flight.
	d.Record(id, 3, 0, append([]byte(nil), 'b', 'b'))

	// Current page content after all three writes.
	p := []byte{'x', 'x', 'c', 'c', 'c', 'c', 'a', 'a'}

	// Horizon 25: txn 3 uncommitted → only its delta unwinds.
	got := append([]byte(nil), p...)
	d.ApplyBefore(id, 25, got)
	if want := []byte{'b', 'b', 'c', 'c', 'c', 'c', 'a', 'a'}; !bytes.Equal(got, want) {
		t.Fatalf("h=25: got %q, want %q", got, want)
	}
	// Horizon 15: txn 2 (LSN 20) unwinds too.
	got = append([]byte(nil), p...)
	d.ApplyBefore(id, 15, got)
	if want := []byte{'b', 'b', 'b', 'b', 'a', 'a', 'a', 'a'}; !bytes.Equal(got, want) {
		t.Fatalf("h=15: got %q, want %q", got, want)
	}
	// Horizon 5: everything unwinds back to the original page.
	got = append([]byte(nil), p...)
	d.ApplyBefore(id, 5, got)
	if want := []byte{'a', 'a', 'a', 'a', 'a', 'a', 'a', 'a'}; !bytes.Equal(got, want) {
		t.Fatalf("h=5: got %q, want %q", got, want)
	}
}

func TestDeltaMapAbortAndPrune(t *testing.T) {
	d := NewDeltaMap()
	id := PageID{File: 1, Block: 1}

	d.Record(id, 1, 0, page(4, 'a'))
	d.Commit(1, 10, true)
	d.Record(id, 2, 0, page(4, 'b'))
	d.Abort(2) // abort restores bytes; the delta must vanish

	p := page(4, 'b')
	d.ApplyBefore(id, 5, p)
	if !bytes.Equal(p, page(4, 'a')) {
		t.Fatalf("after abort: got %q, want all-a", p)
	}
	if d.Bytes() != 4 {
		t.Fatalf("Bytes = %d, want 4", d.Bytes())
	}

	// Commit with keep=false (no snapshot older than the commit) drops.
	d.Record(id, 3, 0, page(4, 'c'))
	d.Commit(3, 30, false)
	if d.Bytes() != 4 {
		t.Fatalf("Bytes after keep=false commit = %d, want 4", d.Bytes())
	}

	// Watermark at 10 retires txn 1's delta; inactive clears everything.
	d.Prune(10, true)
	if d.Bytes() != 0 {
		t.Fatalf("Bytes after prune = %d, want 0", d.Bytes())
	}
	d.Record(id, 4, 0, page(4, 'd'))
	d.Prune(0, false)
	if d.Bytes() != 0 {
		t.Fatalf("Bytes after inactive prune = %d, want 0", d.Bytes())
	}
}
