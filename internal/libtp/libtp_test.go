package libtp

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/btree"
	"repro/internal/disk"
	"repro/internal/ffs"
	"repro/internal/lfs"
	"repro/internal/lock"
	"repro/internal/recno"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// testRig bundles a device + file system + environment.
type testRig struct {
	clk *sim.Clock
	dev *disk.Device
	fs  vfs.FileSystem
	env *Env
}

func newRig(t *testing.T, fsKind string) *testRig {
	t.Helper()
	clk := sim.NewClock()
	dev := disk.New(sim.SmallModel(), clk)
	var fsys vfs.FileSystem
	var err error
	switch fsKind {
	case "lfs":
		fsys, err = lfs.Format(dev, clk, lfs.Options{})
	case "ffs":
		fsys, err = ffs.Format(dev, clk, ffs.Options{})
	default:
		t.Fatalf("unknown fs %q", fsKind)
	}
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(fsys, clk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{clk: clk, dev: dev, fs: fsys, env: env}
}

func TestCommitVisible(t *testing.T) {
	for _, kind := range []string{"lfs", "ffs"} {
		t.Run(kind, func(t *testing.T) {
			rig := newRig(t, kind)
			db, err := rig.env.OpenDB("/db")
			if err != nil {
				t.Fatal(err)
			}
			txn := rig.env.Begin()
			tr, err := btree.Create(txn.Store(db))
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Put([]byte("k"), []byte("v")); err != nil {
				t.Fatal(err)
			}
			if err := txn.Commit(); err != nil {
				t.Fatal(err)
			}
			// A later transaction sees the data.
			txn2 := rig.env.Begin()
			tr2, err := btree.Open(txn2.Store(db))
			if err != nil {
				t.Fatal(err)
			}
			v, err := tr2.Get([]byte("k"))
			if err != nil || string(v) != "v" {
				t.Fatalf("Get = %q, %v", v, err)
			}
			txn2.Commit()
		})
	}
}

func TestAbortRollsBack(t *testing.T) {
	rig := newRig(t, "lfs")
	db, _ := rig.env.OpenDB("/db")
	setup := rig.env.Begin()
	tr, err := btree.Create(setup.Store(db))
	if err != nil {
		t.Fatal(err)
	}
	tr.Put([]byte("stable"), []byte("1"))
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	txn := rig.env.Begin()
	tr, err = btree.Open(txn.Store(db))
	if err != nil {
		t.Fatal(err)
	}
	tr.Put([]byte("stable"), []byte("2"))
	tr.Put([]byte("extra"), []byte("x"))
	if err := txn.Abort(); err != nil {
		t.Fatal(err)
	}

	check := rig.env.Begin()
	tr2, err := btree.Open(check.Store(db))
	if err != nil {
		t.Fatal(err)
	}
	v, err := tr2.Get([]byte("stable"))
	if err != nil || string(v) != "1" {
		t.Fatalf("stable = %q, %v (abort did not roll back)", v, err)
	}
	if _, err := tr2.Get([]byte("extra")); !errors.Is(err, btree.ErrNotFound) {
		t.Fatalf("extra should not exist: %v", err)
	}
	check.Commit()
}

func TestAbortReleasesLocks(t *testing.T) {
	rig := newRig(t, "lfs")
	db, _ := rig.env.OpenDB("/db")
	setup := rig.env.Begin()
	tr, _ := btree.Create(setup.Store(db))
	tr.Put([]byte("a"), []byte("1"))
	setup.Commit()

	txn := rig.env.Begin()
	tr1, _ := btree.Open(txn.Store(db))
	tr1.Put([]byte("a"), []byte("2"))
	if rig.env.locks.HeldCount(lock.TxnID(txn.ID())) == 0 {
		t.Fatal("locks should be held mid-transaction")
	}
	txn.Abort()
	if rig.env.locks.HeldCount(lock.TxnID(txn.ID())) != 0 {
		t.Fatal("abort must release all locks")
	}
}

func TestTxnDoneRejected(t *testing.T) {
	rig := newRig(t, "lfs")
	db, _ := rig.env.OpenDB("/db")
	txn := rig.env.Begin()
	btree.Create(txn.Store(db))
	txn.Commit()
	if err := txn.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit: %v", err)
	}
	if err := txn.Abort(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("abort after commit: %v", err)
	}
	st := txn.Store(db)
	if err := st.ReadPage(0, make([]byte, 4096)); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("read after commit: %v", err)
	}
}

func TestRecnoUnderTxn(t *testing.T) {
	rig := newRig(t, "lfs")
	db, _ := rig.env.OpenDB("/hist")
	txn := rig.env.Begin()
	rf, err := recno.Create(txn.Store(db), 64)
	if err != nil {
		t.Fatal(err)
	}
	rec := bytes.Repeat([]byte{7}, 64)
	if _, err := rf.Append(rec); err != nil {
		t.Fatal(err)
	}
	txn.Commit()

	txn2 := rig.env.Begin()
	rf2, err := recno.Open(txn2.Store(db))
	if err != nil {
		t.Fatal(err)
	}
	got, err := rf2.Get(0)
	if err != nil || !bytes.Equal(got, rec) {
		t.Fatalf("Get = %v, %v", got, err)
	}
	txn2.Commit()
}

// crashAndRecover simulates a whole-machine crash on LFS: the file system
// and environment are abandoned, the device is remounted, and LIBTP
// recovery replays the WAL.
func crashAndRecover(t *testing.T, rig *testRig, dbPaths []string) (*Env, *RecoveryReport) {
	t.Helper()
	fs2, err := lfs.Mount(rig.dev, rig.clk, lfs.Options{})
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	env2, rep, err := RecoverPaths(fs2, rig.clk, Options{}, dbPaths)
	if err != nil {
		t.Fatalf("RecoverPaths: %v", err)
	}
	return env2, rep
}

func TestCrashRecoveryCommittedSurvives(t *testing.T) {
	rig := newRig(t, "lfs")
	db, _ := rig.env.OpenDB("/db")
	txn := rig.env.Begin()
	tr, _ := btree.Create(txn.Store(db))
	for i := 0; i < 50; i++ {
		tr.Put([]byte(fmt.Sprintf("key%02d", i)), []byte(fmt.Sprintf("val%02d", i)))
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	// Crash: database pages were never flushed; only the WAL was forced.
	env2, rep := crashAndRecover(t, rig, []string{"/db"})
	if rep.Winners != 1 {
		t.Fatalf("winners = %d, want 1", rep.Winners)
	}
	db2, err := env2.OpenDB("/db")
	if err != nil {
		t.Fatal(err)
	}
	check := env2.Begin()
	tr2, err := btree.Open(check.Store(db2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		v, err := tr2.Get([]byte(fmt.Sprintf("key%02d", i)))
		if err != nil || string(v) != fmt.Sprintf("val%02d", i) {
			t.Fatalf("key%02d lost after crash: %q %v", i, v, err)
		}
	}
	check.Commit()
}

func TestCrashRecoveryUncommittedUndone(t *testing.T) {
	rig := newRig(t, "lfs")
	db, _ := rig.env.OpenDB("/db")
	setup := rig.env.Begin()
	tr, _ := btree.Create(setup.Store(db))
	tr.Put([]byte("k"), []byte("committed"))
	setup.Commit()
	// Push committed state to disk, then start a transaction that dirties
	// pages and force its updates into the log WITHOUT committing.
	if err := rig.env.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	loser := rig.env.Begin()
	trL, _ := btree.Open(loser.Store(db))
	trL.Put([]byte("k"), []byte("uncommitted"))
	rig.env.log.Force() // updates durable, commit record absent
	// Worse: evict the dirty page to the database file, as a steal policy
	// allows.
	rig.env.pool.FlushAll()
	db.f.Sync()

	env2, rep := crashAndRecover(t, rig, []string{"/db"})
	if rep.Losers != 1 {
		t.Fatalf("losers = %d, want 1", rep.Losers)
	}
	db2, _ := env2.OpenDB("/db")
	check := env2.Begin()
	tr2, err := btree.Open(check.Store(db2))
	if err != nil {
		t.Fatal(err)
	}
	v, err := tr2.Get([]byte("k"))
	if err != nil || string(v) != "committed" {
		t.Fatalf("k = %q, %v; loser's write must be undone", v, err)
	}
	check.Commit()
}

func TestCheckpointTruncatesLog(t *testing.T) {
	rig := newRig(t, "lfs")
	db, _ := rig.env.OpenDB("/db")
	txn := rig.env.Begin()
	tr, _ := btree.Create(txn.Store(db))
	tr.Put([]byte("a"), []byte("b"))
	txn.Commit()
	if err := rig.env.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The checkpoint's own record is the log's resting state; everything
	// before it is truncated away.
	recs, err := rig.env.log.Scan()
	if err != nil || len(recs) != 1 || recs[0].Type != wal.RecCheckpoint {
		t.Fatalf("log after checkpoint: %d records, %v", len(recs), err)
	}
	// Data survives without any WAL: it is in the database file now.
	env2, rep := crashAndRecover(t, rig, []string{"/db"})
	if rep.Winners != 0 || rep.Losers != 0 {
		t.Fatalf("recovery after checkpoint should be empty: %+v", rep)
	}
	db2, _ := env2.OpenDB("/db")
	check := env2.Begin()
	tr2, err := btree.Open(check.Store(db2))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := tr2.Get([]byte("a")); err != nil || string(v) != "b" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	check.Commit()
}

func TestCheckpointRequiresQuiescence(t *testing.T) {
	rig := newRig(t, "lfs")
	txn := rig.env.Begin()
	if err := rig.env.Checkpoint(); !errors.Is(err, ErrTxnActive) {
		t.Fatalf("got %v, want ErrTxnActive", err)
	}
	txn.Commit()
}

func TestGroupCommitAmortizesForces(t *testing.T) {
	clk := sim.NewClock()
	dev := disk.New(sim.SmallModel(), clk)
	fsys, _ := lfs.Format(dev, clk, lfs.Options{})
	env, err := NewEnv(fsys, clk, Options{GroupCommit: 5})
	if err != nil {
		t.Fatal(err)
	}
	db, _ := env.OpenDB("/db")
	setup := env.Begin()
	tr, _ := btree.Create(setup.Store(db))
	tr.Put([]byte("init"), []byte("x"))
	setup.Commit()
	forces0 := env.LogStats().Forces
	for i := 0; i < 10; i++ {
		txn := env.Begin()
		tr, _ := btree.Open(txn.Store(db))
		tr.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	forces := env.LogStats().Forces - forces0
	if forces > 3 {
		t.Fatalf("10 commits at batch 5 forced the log %d times, want ≤ 3", forces)
	}
}

func TestSimulatedTimeAdvances(t *testing.T) {
	rig := newRig(t, "lfs")
	db, _ := rig.env.OpenDB("/db")
	before := rig.clk.Now()
	txn := rig.env.Begin()
	tr, _ := btree.Create(txn.Store(db))
	tr.Put([]byte("k"), []byte("v"))
	txn.Commit()
	if rig.clk.Now() <= before {
		t.Fatal("transaction work must consume simulated time")
	}
}

func TestUserSyncCostsMoreThanFastSync(t *testing.T) {
	// The §5.1 effect in miniature: the same workload under Sprite costs
	// (no test-and-set) takes longer than under fast-user-sync costs.
	run := func(costs sim.CostModel) (elapsed int64) {
		clk := sim.NewClock()
		dev := disk.New(sim.SmallModel(), clk)
		fsys, _ := lfs.Format(dev, clk, lfs.Options{})
		env, _ := NewEnv(fsys, clk, Options{Costs: costs})
		db, _ := env.OpenDB("/db")
		setup := env.Begin()
		tr, _ := btree.Create(setup.Store(db))
		tr.Put([]byte("init"), []byte("x"))
		setup.Commit()
		start := clk.Now()
		for i := 0; i < 50; i++ {
			txn := env.Begin()
			tr, _ := btree.Open(txn.Store(db))
			tr.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
			txn.Commit()
		}
		return int64(clk.Now() - start)
	}
	slow := run(sim.SpriteCosts())
	fast := run(sim.FastSyncCosts())
	if slow <= fast {
		t.Fatalf("Sprite sync costs (%d) should exceed fast-sync costs (%d)", slow, fast)
	}
}
