package libtp

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/btree"
	"repro/internal/hashidx"
	"repro/internal/lock"
	"repro/internal/recno"
)

// TestConcurrentTxnsNoLostUpdates drives several goroutines through
// conflicting increments with deadlock-retry; the final counter must equal
// the number of successful commits (run with -race).
func TestConcurrentTxnsNoLostUpdates(t *testing.T) {
	rig := newRig(t, "lfs")
	db, err := rig.env.OpenDB("/db")
	if err != nil {
		t.Fatal(err)
	}
	setup := rig.env.Begin()
	tr, err := btree.Create(setup.Store(db))
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]byte, 8)
	tr.Put([]byte("counter"), zero)
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	const workers = 5
	const perWorker = 12
	var wg sync.WaitGroup
	var committed int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for attempt := 0; attempt < 50; attempt++ {
					txn := rig.env.Begin()
					tr, err := btree.Open(txn.Store(db))
					if err != nil {
						txn.Abort()
						continue
					}
					v, err := tr.Get([]byte("counter"))
					if err != nil {
						txn.Abort()
						if errors.Is(err, lock.ErrDeadlock) {
							continue
						}
						t.Error(err)
						return
					}
					n := binary.LittleEndian.Uint64(v)
					nv := make([]byte, 8)
					binary.LittleEndian.PutUint64(nv, n+1)
					if err := tr.Put([]byte("counter"), nv); err != nil {
						txn.Abort()
						continue
					}
					if err := txn.Commit(); err != nil {
						t.Error(err)
						return
					}
					atomic.AddInt64(&committed, 1)
					break
				}
			}
		}()
	}
	wg.Wait()

	check := rig.env.Begin()
	tr2, err := btree.Open(check.Store(db))
	if err != nil {
		t.Fatal(err)
	}
	v, err := tr2.Get([]byte("counter"))
	if err != nil {
		t.Fatal(err)
	}
	check.Commit()
	if got := int64(binary.LittleEndian.Uint64(v)); got != atomic.LoadInt64(&committed) {
		t.Fatalf("counter = %d, commits = %d: lost updates", got, committed)
	}
}

// TestDeadlockSurfacesToCaller: two transactions locking two pages in
// opposite order; one must receive ErrDeadlock through the store interface.
func TestDeadlockSurfacesToCaller(t *testing.T) {
	rig := newRig(t, "lfs")
	db, _ := rig.env.OpenDB("/db")
	setup := rig.env.Begin()
	st := setup.Store(db)
	// Two pages.
	if _, err := st.AllocPage(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AllocPage(); err != nil {
		t.Fatal(err)
	}
	page := make([]byte, st.PageSize())
	st.WritePage(0, page)
	st.WritePage(1, page)
	setup.Commit()

	t1 := rig.env.Begin()
	t2 := rig.env.Begin()
	s1, s2 := t1.Store(db), t2.Store(db)
	if err := s1.WritePage(0, page); err != nil {
		t.Fatal(err)
	}
	if err := s2.WritePage(1, page); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- s1.WritePage(1, page) }()
	// Let the goroutine block on t2's lock first, then close the cycle.
	for rig.env.locks.Stats().Waited == 0 {
	}
	err2 := s2.WritePage(0, page)
	if errors.Is(err2, lock.ErrDeadlock) {
		// t2 is the victim: abort it, which unblocks t1.
		t2.Abort()
		if err1 := <-errCh; err1 != nil {
			t.Fatalf("winner should proceed after victim aborts: %v", err1)
		}
		if err := t1.Commit(); err != nil {
			t.Fatal(err)
		}
		return
	}
	// Otherwise t1 must have been chosen as the victim.
	if err1 := <-errCh; !errors.Is(err1, lock.ErrDeadlock) {
		t.Fatalf("neither transaction saw the deadlock: %v / %v", err1, err2)
	}
	t1.Abort()
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestHashIndexUnderTxn runs the linear-hash access method through the
// transactional store, with commit, abort, and crash recovery.
func TestHashIndexUnderTxn(t *testing.T) {
	rig := newRig(t, "lfs")
	db, _ := rig.env.OpenDB("/hash")
	txn := rig.env.Begin()
	tb, err := hashidx.Create(txn.Store(db))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		key := []byte{byte(i), byte(i >> 4), 'k'}
		if err := tb.Put(key, []byte{byte(i * 3)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	// An aborted overwrite leaves the table untouched, across bucket
	// splits and overflow pages.
	loser := rig.env.Begin()
	tb2, err := hashidx.Open(loser.Store(db))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		key := []byte{byte(i), byte(i >> 4), 'k'}
		tb2.Put(key, []byte{0xFF})
	}
	loser.Abort()

	check := rig.env.Begin()
	tb3, err := hashidx.Open(check.Store(db))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		key := []byte{byte(i), byte(i >> 4), 'k'}
		v, err := tb3.Get(key)
		if err != nil || v[0] != byte(i*3) {
			t.Fatalf("key %d = %v, %v after abort", i, v, err)
		}
	}
	check.Commit()

	// Crash + recovery.
	env2, _ := crashAndRecover(t, rig, []string{"/hash"})
	db2, _ := env2.OpenDB("/hash")
	final := env2.Begin()
	tb4, err := hashidx.Open(final.Store(db2))
	if err != nil {
		t.Fatal(err)
	}
	if tb4.Count() != 120 {
		t.Fatalf("count after crash = %d", tb4.Count())
	}
	final.Commit()
}

// TestRecnoAbortRestoresCount: recno's meta page (record count) rolls back.
func TestRecnoAbortRestoresCount(t *testing.T) {
	rig := newRig(t, "lfs")
	db, _ := rig.env.OpenDB("/rec")
	txn := rig.env.Begin()
	rf, err := recno.Create(txn.Store(db), 16)
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, 16)
	for i := 0; i < 10; i++ {
		rf.Append(rec)
	}
	txn.Commit()

	loser := rig.env.Begin()
	rf2, _ := recno.Open(loser.Store(db))
	for i := 0; i < 5; i++ {
		rf2.Append(rec)
	}
	loser.Abort()

	check := rig.env.Begin()
	rf3, err := recno.Open(check.Store(db))
	if err != nil {
		t.Fatal(err)
	}
	if rf3.Count() != 10 {
		t.Fatalf("count after abort = %d, want 10", rf3.Count())
	}
	check.Commit()
}
