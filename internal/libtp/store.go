package libtp

import (
	"errors"

	"repro/internal/buffer"
	"repro/internal/lock"
	"repro/internal/mvcc"
	"repro/internal/vfs"
)

// txnStore is the transactional page store a transaction uses to address a
// database: the point where the record layer (Figure 2's "Record" module)
// calls into the buffer, lock, and log managers.
//
//   - ReadPage: acquire a read lock on (db, page), then serve the page from
//     the user-level buffer pool (or fault it in from the file).
//   - WritePage: acquire a write lock, log the changed byte range
//     (before/after images), update the cached page, remember the
//     before-image for in-memory abort.
//
// Locking is strictly two-phase: locks accumulate until commit/abort.
type txnStore struct {
	t  *Txn
	db *DB
}

func (s *txnStore) PageSize() int { return s.t.env.pool.BlockSize() }

func (s *txnStore) NumPages() (int64, error) {
	s.t.env.mu.Lock()
	defer s.t.env.mu.Unlock()
	return s.db.numPages()
}

// fetch loads a page of the database file into the pool: a read() system
// call into the kernel's file system, plus the copyout of the whole page
// into the user-level pool (§1's double-buffering cost — whether the kernel
// served it from its own cache or from disk).
func (s *txnStore) fetch(id buffer.BlockID, dst []byte) error {
	s.t.env.clock.Advance(s.t.env.costs.Syscall + s.t.env.costs.PageCopy)
	_, err := s.db.f.ReadAt(dst, id.Block*int64(len(dst)))
	return err
}

func (s *txnStore) lock(page int64, mode lock.Mode) error {
	e := s.t.env
	// Cooperative scheduling point: no mutex is held here, so this is where
	// a multiprogramming run interleaves clients at page-access granularity.
	e.clock.Yield()
	// Lock-manager call: semaphore acquire/release in user space.
	e.clock.Advance(e.costs.UserSync())
	err := e.locks.Lock(e.lockTxn(s.t.id), lock.Object{File: s.db.id | e.lockSpace, Block: page}, mode)
	if err != nil && errors.Is(err, lock.ErrDeadlock) {
		// Two-phase locking contract: the victim must abort, which the
		// record layer does by surfacing the error to Txn.Abort's caller.
		e.locks.NoteDeadlockAbort()
	}
	return err
}

func (s *txnStore) ReadPage(n int64, p []byte) error {
	if s.t.done {
		return ErrTxnDone
	}
	if err := s.lock(n, lock.Read); err != nil {
		return err
	}
	e := s.t.env
	e.mu.Lock()
	defer e.mu.Unlock()
	e.clock.Advance(e.costs.CacheHit)
	b, err := e.pool.Get(buffer.BlockID{File: vfs.FileID(s.db.id), Block: n}, s.fetch)
	if err != nil {
		return err
	}
	copy(p, b.Data)
	e.pool.Release(b)
	e.stats.PageReads++
	return nil
}

func (s *txnStore) WritePage(n int64, p []byte) error {
	if s.t.done {
		return ErrTxnDone
	}
	if err := s.lock(n, lock.Write); err != nil {
		return err
	}
	e := s.t.env
	e.mu.Lock()
	defer e.mu.Unlock()
	e.clock.Advance(e.costs.CacheHit)
	id := buffer.BlockID{File: vfs.FileID(s.db.id), Block: n}
	b, err := e.pool.Get(id, s.fetch)
	if err != nil {
		return err
	}
	defer e.pool.Release(b)

	// Log only the changed byte range (WAL delta logging, §4.3).
	lo, hi := diffRange(b.Data, p)
	if lo < hi {
		before := append([]byte(nil), b.Data[lo:hi]...)
		after := append([]byte(nil), p[lo:hi]...)
		if _, err := e.log.LogUpdate(s.t.id, s.db.id, n, uint32(lo), before, after); err != nil {
			return err
		}
		e.undo[s.t.id] = append(e.undo[s.t.id], undoRec{db: s.db.id, page: n, offset: uint32(lo), before: before})
		if e.snaps.Active() {
			// A pinned snapshot may need to rewind this write: record the
			// same before-image (shared, immutable) as a version delta.
			e.deltas.Record(mvcc.PageID{File: s.db.id, Block: n}, s.t.id, uint32(lo), before)
		}
		copy(b.Data, p)
		e.pool.MarkDirty(b)
	}
	e.stats.PageWrite++
	return nil
}

// AllocPage extends the database file by one zeroed page. Growth is not
// undone on abort: an aborted transaction may leave unreferenced pages at
// the tail, which the access methods never reach (their meta page was
// rolled back).
func (s *txnStore) AllocPage() (int64, error) {
	if s.t.done {
		return 0, ErrTxnDone
	}
	e := s.t.env
	e.mu.Lock()
	defer e.mu.Unlock()
	np, err := s.db.numPages()
	if err != nil {
		return 0, err
	}
	zero := make([]byte, e.pool.BlockSize())
	e.clock.Advance(e.costs.Syscall + e.costs.PageCopy) // write() of the new page
	if _, err := s.db.f.WriteAt(zero, np*int64(len(zero))); err != nil {
		return 0, err
	}
	return np, nil
}

// Sync forces the log; data pages follow lazily (no-force).
func (s *txnStore) Sync() error {
	e := s.t.env
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.log.Force()
}

// diffRange returns the smallest [lo, hi) byte range where old and new
// differ (lo == hi when identical).
func diffRange(old, new []byte) (int, int) {
	n := len(old)
	if len(new) < n {
		n = len(new)
	}
	lo := 0
	for lo < n && old[lo] == new[lo] {
		lo++
	}
	if lo == n && len(old) == len(new) {
		return 0, 0
	}
	hiOld, hiNew := len(old), len(new)
	for hiOld > lo && hiNew > lo && old[hiOld-1] == new[hiNew-1] {
		hiOld--
		hiNew--
	}
	if hiNew < hiOld {
		hiNew = hiOld
	}
	return lo, hiNew
}
