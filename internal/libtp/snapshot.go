package libtp

import (
	"errors"

	"repro/internal/buffer"
	"repro/internal/detsort"
	"repro/internal/mvcc"
	"repro/internal/pagestore"
	"repro/internal/trace"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// Snapshot errors.
var (
	// ErrSnapshotReadOnly is returned for any write through a snapshot
	// store: snapshot transactions are read-only by contract.
	ErrSnapshotReadOnly = errors.New("libtp: snapshot transactions are read-only")
	// ErrSnapshotDone is returned for reads through a closed snapshot.
	ErrSnapshotDone = errors.New("libtp: snapshot already closed")
)

// Snapshot is a read-only multiversion transaction: it pins the commit
// horizon current at BeginSnapshot and then reads a transaction-consistent
// image of every database as of that horizon — without acquiring a single
// page lock. Writers keep running under ordinary two-phase locking; their
// before-images (already produced for the WAL) rewind pages the snapshot
// reads. Close releases the horizon and prunes every version no remaining
// snapshot needs.
type Snapshot struct {
	env    *Env
	h      wal.LSN
	closed bool
}

// BeginSnapshot starts a read-only snapshot transaction pinned at the
// current end of the log: every transaction whose commit record is already
// in the log is visible, everything later (or still in flight) is not.
// Snapshots do not enter the active-transaction set — they hold no locks
// and write nothing, so checkpoints and quiescence do not wait on them.
func (e *Env) BeginSnapshot() *Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.clock.Advance(e.costs.TxnOp + e.costs.Syscall)
	h := e.log.End()
	if !e.snaps.Active() {
		// First pinned snapshot: deltas were not being recorded. Seed the
		// chains from the undo logs of every in-flight transaction — those
		// are exactly the writes a snapshot at h must rewind if their
		// transaction commits later (or never). 2PL guarantees at most one
		// writer per page, so per-txn seeding preserves per-page log order.
		for _, id := range detsort.Keys(e.undo) {
			for _, u := range e.undo[id] {
				e.deltas.Record(mvcc.PageID{File: u.db, Block: u.page}, id, u.offset, u.before)
			}
		}
	}
	e.snaps.Pin(int64(h))
	e.stats.SnapshotsBegun++
	e.tracer.Instant("txn", "snapshot.begin", trace.AU("lsn", uint64(h)))
	return &Snapshot{env: e, h: h}
}

// Horizon returns the pinned commit horizon (a WAL LSN).
func (s *Snapshot) Horizon() wal.LSN { return s.h }

// Close releases the snapshot's pin on the commit horizon and prunes every
// version record no remaining snapshot can need. Closing twice is a no-op.
func (s *Snapshot) Close() {
	e := s.env
	e.mu.Lock()
	defer e.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	e.snaps.Unpin(int64(s.h))
	oldest, active := e.snaps.Oldest()
	e.deltas.Prune(oldest, active)
	e.tracer.Instant("txn", "snapshot.close", trace.AU("lsn", uint64(s.h)))
}

// Store returns the snapshot's read-only page store for db. Reads are
// lock-free: they serve the current page from the buffer pool and rewind it
// with before-image deltas; writes fail with ErrSnapshotReadOnly.
func (s *Snapshot) Store(db *DB) pagestore.Store {
	return &snapStore{snap: s, db: db}
}

// snapStore is the lock-free read path of a snapshot transaction. It keeps
// the cooperative scheduling point (Yield) of the locking read path so
// multiprogramming interleaves scans with writers at page granularity, but
// never calls the lock manager — no UserSync charge, no blocking, no
// deadlock exposure.
type snapStore struct {
	snap *Snapshot
	db   *DB
}

func (s *snapStore) PageSize() int { return s.snap.env.pool.BlockSize() }

func (s *snapStore) NumPages() (int64, error) {
	s.snap.env.mu.Lock()
	defer s.snap.env.mu.Unlock()
	return s.db.numPages()
}

// fetch loads a page of the database file into the pool (same syscall +
// copyout cost as the locking path's fetch).
func (s *snapStore) fetch(id buffer.BlockID, dst []byte) error {
	e := s.snap.env
	e.clock.Advance(e.costs.Syscall + e.costs.PageCopy)
	_, err := s.db.f.ReadAt(dst, id.Block*int64(len(dst)))
	return err
}

func (s *snapStore) ReadPage(n int64, p []byte) error {
	if s.snap.closed {
		return ErrSnapshotDone
	}
	e := s.snap.env
	// Scheduling point without a lock-manager call: the scan interleaves
	// but cannot block anyone and nothing can block it.
	e.clock.Yield()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.clock.Advance(e.costs.CacheHit)
	// Serve pool-resident pages from the pool, but fault misses straight
	// into the caller's buffer without inserting them: a scan touches every
	// page once, and letting it populate the shared pool would evict the
	// writers' hot set (scan pollution) for bytes nobody reads twice.
	id := buffer.BlockID{File: vfs.FileID(s.db.id), Block: n}
	if b := e.pool.Lookup(id); b != nil {
		copy(p, b.Data)
	} else if err := s.fetch(id, p); err != nil {
		return err
	}
	// Rewind to the horizon: apply before-images of every delta whose
	// transaction committed after the horizon or is still in flight.
	e.deltas.ApplyBefore(mvcc.PageID{File: s.db.id, Block: n}, int64(s.snap.h), p)
	e.stats.PageReads++
	return nil
}

func (s *snapStore) WritePage(int64, []byte) error { return ErrSnapshotReadOnly }
func (s *snapStore) AllocPage() (int64, error)     { return 0, ErrSnapshotReadOnly }

// Sync is a no-op: a read-only transaction has nothing to make durable.
func (s *snapStore) Sync() error { return nil }

// noteCommitLocked stamps (or discards) a committing transaction's version
// deltas once its commit record has a log position. The deltas are kept
// only when some pinned snapshot predates the commit; otherwise nothing can
// ever need them. Caller holds e.mu.
func (e *Env) noteCommitLocked(txn uint64, lsn wal.LSN) {
	oldest, active := e.snaps.Oldest()
	e.deltas.Commit(txn, int64(lsn), active && oldest < int64(lsn))
}
