package libtp

import (
	"errors"
	"testing"

	"repro/internal/btree"
)

// TestSnapshotIsolation: a snapshot pinned between two committed updates
// keeps reading the first value — through a btree, lock-free — while later
// commits, in-flight writers, and even an eventual abort leave its image
// untouched. Writes through the snapshot store are rejected.
func TestSnapshotIsolation(t *testing.T) {
	for _, kind := range []string{"lfs", "ffs"} {
		t.Run(kind, func(t *testing.T) {
			rig := newRig(t, kind)
			db, err := rig.env.OpenDB("/db")
			if err != nil {
				t.Fatal(err)
			}
			setup := rig.env.Begin()
			tr, err := btree.Create(setup.Store(db))
			if err != nil {
				t.Fatal(err)
			}
			tr.Put([]byte("acct"), []byte("100"))
			if err := setup.Commit(); err != nil {
				t.Fatal(err)
			}

			snap := rig.env.BeginSnapshot()
			defer snap.Close()

			// Committed after the pin: invisible.
			upd := rig.env.Begin()
			tru, err := btree.Open(upd.Store(db))
			if err != nil {
				t.Fatal(err)
			}
			tru.Put([]byte("acct"), []byte("200"))
			tru.Put([]byte("new"), []byte("x"))
			if err := upd.Commit(); err != nil {
				t.Fatal(err)
			}

			// Still in flight at read time, then aborted: also invisible.
			fly := rig.env.Begin()
			trf, err := btree.Open(fly.Store(db))
			if err != nil {
				t.Fatal(err)
			}
			trf.Put([]byte("acct"), []byte("300"))

			trs, err := btree.Open(snap.Store(db))
			if err != nil {
				t.Fatalf("btree over snapshot store: %v", err)
			}
			v, err := trs.Get([]byte("acct"))
			if err != nil || string(v) != "100" {
				t.Fatalf("snapshot Get(acct) = %q, %v; want the pinned value 100", v, err)
			}
			if _, err := trs.Get([]byte("new")); !errors.Is(err, btree.ErrNotFound) {
				t.Fatalf("snapshot sees a post-pin insert: %v", err)
			}
			if err := fly.Abort(); err != nil {
				t.Fatal(err)
			}

			// The snapshot store enforces read-only.
			st := snap.Store(db)
			buf := make([]byte, st.PageSize())
			if err := st.WritePage(0, buf); !errors.Is(err, ErrSnapshotReadOnly) {
				t.Fatalf("snapshot write: got %v, want ErrSnapshotReadOnly", err)
			}
			if _, err := st.AllocPage(); !errors.Is(err, ErrSnapshotReadOnly) {
				t.Fatalf("snapshot alloc: got %v, want ErrSnapshotReadOnly", err)
			}

			// A fresh transaction sees the committed update, not the abort.
			check := rig.env.Begin()
			trc, err := btree.Open(check.Store(db))
			if err != nil {
				t.Fatal(err)
			}
			v, err = trc.Get([]byte("acct"))
			if err != nil || string(v) != "200" {
				t.Fatalf("current Get(acct) = %q, %v; want 200", v, err)
			}
			check.Commit()

			// Closed snapshots refuse reads; a new pin sees current data.
			snap.Close()
			if err := snap.Store(db).ReadPage(0, buf); !errors.Is(err, ErrSnapshotDone) {
				t.Fatalf("read through closed snapshot: got %v, want ErrSnapshotDone", err)
			}
			snap2 := rig.env.BeginSnapshot()
			defer snap2.Close()
			trs2, err := btree.Open(snap2.Store(db))
			if err != nil {
				t.Fatal(err)
			}
			v, err = trs2.Get([]byte("acct"))
			if err != nil || string(v) != "200" {
				t.Fatalf("fresh snapshot Get(acct) = %q, %v; want 200", v, err)
			}
		})
	}
}

// TestSnapshotPruneOnClose: version chains accumulate only while a snapshot
// is pinned and are pruned exactly when the last pin drops.
func TestSnapshotPruneOnClose(t *testing.T) {
	rig := newRig(t, "lfs")
	db, _ := rig.env.OpenDB("/db")
	setup := rig.env.Begin()
	tr, err := btree.Create(setup.Store(db))
	if err != nil {
		t.Fatal(err)
	}
	tr.Put([]byte("k"), []byte("0"))
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	// No snapshot pinned: commits must not grow the delta map.
	upd := rig.env.Begin()
	tru, _ := btree.Open(upd.Store(db))
	tru.Put([]byte("k"), []byte("1"))
	if err := upd.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := rig.env.deltas.Bytes(); n != 0 {
		t.Fatalf("delta map holds %d bytes with no snapshot pinned", n)
	}

	s1 := rig.env.BeginSnapshot()
	s2 := rig.env.BeginSnapshot()
	upd2 := rig.env.Begin()
	tru2, _ := btree.Open(upd2.Store(db))
	tru2.Put([]byte("k"), []byte("2"))
	if err := upd2.Commit(); err != nil {
		t.Fatal(err)
	}
	held := rig.env.deltas.Bytes()
	if held == 0 {
		t.Fatal("commit over a pinned snapshot recorded no deltas")
	}

	s2.Close()
	if n := rig.env.deltas.Bytes(); n != held {
		t.Fatalf("closing one of two same-horizon snapshots pruned deltas: %d -> %d", held, n)
	}
	s1.Close()
	if n := rig.env.deltas.Bytes(); n != 0 {
		t.Fatalf("last close left %d delta bytes", n)
	}
}
