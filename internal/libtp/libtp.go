// Package libtp implements the user-level transaction system of the paper's
// Figure 2, modelled on the LIBTP library [15]: a record-oriented interface
// (B-tree, hash, fixed-length records via the pagestore adapter) layered
// over a user-level buffer manager, a general-purpose two-phase lock
// manager, and a write-ahead log manager. Transactions begin, commit and
// abort through a subroutine interface; commit forces the log (with optional
// group commit); abort applies in-memory before-images; crash recovery
// replays the log with redo for winners and undo for losers.
//
// Synchronization cost: every lock-manager call is charged
// CostModel.UserSync() of simulated time. On the paper's DECstation — no
// hardware test-and-set — user-level semaphores cost two system calls,
// which is precisely what made the user-level system slightly slower than
// the kernel-embedded one (§5.1). Configure sim.FastSyncCosts() to model
// fast user-level mutual exclusion [1] and watch the gap close.
package libtp

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/detsort"
	"repro/internal/lock"
	"repro/internal/mvcc"
	"repro/internal/pagestore"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// Errors.
var (
	ErrTxnDone   = errors.New("libtp: transaction already finished")
	ErrTxnActive = errors.New("libtp: operation requires no active transactions")
)

// Options configures an environment.
type Options struct {
	// CacheBlocks is the user-level buffer pool capacity in pages
	// (default 512).
	CacheBlocks int
	// Costs is the CPU cost model (default sim.SpriteCosts()).
	Costs sim.CostModel
	// GroupCommit batches log forces across this many commits (default 1
	// = force at every commit).
	GroupCommit int
	// LogPath is the write-ahead log's base path (default "/libtp.log");
	// the log manager materializes rotated {LogPath}.{seq}.txnlog segments,
	// sidecar indexes, and a {LogPath}.ckpt checkpoint anchor next to it.
	LogPath string
	// LogSegmentBytes is the log rotation threshold (0 = the wal default).
	LogSegmentBytes int64
	// LogRetain keeps dead log segments as read-only archives instead of
	// deleting them at checkpoint truncation.
	LogRetain bool
	// Tracer, when non-nil, is wired through the environment's buffer pool,
	// lock manager, and log manager, and transaction begin/commit/abort emit
	// events with commit-wait attribution.
	Tracer *trace.Tracer
	// Locks, when non-nil, is a shared lock manager used instead of a
	// private one. Sharded rigs point every shard's environment at one
	// manager so cross-shard waits-for cycles are detected (and broken
	// deterministically) like local ones.
	Locks *lock.Manager
	// LockSpace namespaces this environment's lock objects within a shared
	// lock manager (ORed into the object's file id). Shards use distinct
	// spaces so equal inode numbers on different shard file systems never
	// alias. Meaningless without Locks.
	LockSpace uint64
}

func (o *Options) fill() {
	if o.CacheBlocks == 0 {
		o.CacheBlocks = 512
	}
	if o.Costs == (sim.CostModel{}) {
		o.Costs = sim.SpriteCosts()
	}
	if o.GroupCommit == 0 {
		o.GroupCommit = 1
	}
	if o.LogPath == "" {
		o.LogPath = "/libtp.log"
	}
}

// Stats counts environment activity.
type Stats struct {
	Begun     int64
	Committed int64
	Aborted   int64
	PageReads int64
	PageWrite int64
	// SnapshotsBegun counts read-only snapshot transactions (BeginSnapshot);
	// their lock-free page reads land in PageReads like any other read.
	SnapshotsBegun int64
}

// undoRec is an in-memory before-image for abort processing.
type undoRec struct {
	db     uint64
	page   int64
	offset uint32
	before []byte
}

// Env is a user-level transaction environment bound to one file system.
type Env struct {
	mu        sync.Mutex
	fs        vfs.FileSystem
	clock     *sim.Clock
	costs     sim.CostModel
	pool      *buffer.Pool
	locks     *lock.Manager
	lockSpace uint64
	log       *wal.Manager
	opts      Options

	files   map[uint64]vfs.File // db id (inode) → open file
	nextTxn uint64
	active  map[uint64]bool
	undo    map[uint64][]undoRec
	// Snapshot (multiversion read) support: snaps holds the pinned commit
	// horizons (WAL LSNs), deltas the per-page before-image chains that
	// reconstruct older page versions. Deltas are recorded only while a
	// snapshot is pinned; the rest of the time both structures are empty
	// and cost one map lookup per commit.
	snaps  *mvcc.Horizons
	deltas *mvcc.DeltaMap
	stats  Stats
	tracer *trace.Tracer // from Options.Tracer; nil = tracing off
	// Metric handles resolved at construction; nil handles are free.
	ctrCommits, ctrAborts       *trace.Counter
	histLatency, histCommitWait *trace.Hist

	// Blocking group commit (multiprogramming only): commit records of
	// concurrent transactions accumulate until the batch fills — or no other
	// client is runnable, or the scheduler stalls — and every committer in
	// the batch waits on the same log force. gcEpoch increments per force so
	// waiters know their batch went out; gcForceDue asks the earliest waiter
	// to perform the force itself (the "timeout" arm, fired when the
	// scheduler has nothing else to run).
	gcPending  int
	gcEpoch    uint64
	gcForceDue bool
	gcErr      error
	gcWaiters  sim.WaitQueue
}

// newEnvShell builds the in-memory skeleton every construction path (NewEnv,
// OpenForRecovery) shares: pool, lock manager (private or shared), metric
// handles. The log is not opened yet.
func newEnvShell(fsys vfs.FileSystem, clock *sim.Clock, opts Options) *Env {
	locks := opts.Locks
	if locks == nil {
		locks = lock.NewManager()
	}
	env := &Env{
		fs:        fsys,
		clock:     clock,
		costs:     opts.Costs,
		locks:     locks,
		lockSpace: opts.LockSpace,
		opts:      opts,
		files:     make(map[uint64]vfs.File),
		active:    make(map[uint64]bool),
		undo:      make(map[uint64][]undoRec),
		snaps:     mvcc.NewHorizons(),
		deltas:    mvcc.NewDeltaMap(),
		tracer:    opts.Tracer,
	}
	env.pool = buffer.New(opts.CacheBlocks, fsys.BlockSize(), env.writeback)
	env.pool.SetTracer(opts.Tracer, "buffer.user")
	env.locks.SetTracer(opts.Tracer)
	env.ctrCommits = opts.Tracer.Counter("txn.commits")
	env.ctrAborts = opts.Tracer.Counter("txn.aborts")
	env.histLatency = opts.Tracer.Hist("txn.latency")
	env.histCommitWait = opts.Tracer.Hist("txn.commitWait")
	return env
}

// NewEnv creates (or reopens) a transaction environment on fsys. The log
// file is created if absent; if it exists, recovery is run before the
// environment is usable.
func NewEnv(fsys vfs.FileSystem, clock *sim.Clock, opts Options) (*Env, error) {
	opts.fill()
	env := newEnvShell(fsys, clock, opts)

	walOpts := wal.Options{SegmentBytes: opts.LogSegmentBytes, Retain: opts.LogRetain}
	if !wal.Exists(fsys, opts.LogPath) {
		lg, err := wal.Create(fsys, opts.LogPath, walOpts)
		if err != nil {
			return nil, err
		}
		env.log = lg
	} else {
		lg, err := wal.Open(fsys, opts.LogPath, walOpts)
		if err != nil {
			return nil, err
		}
		recs, err := lg.Scan()
		if err != nil {
			return nil, err
		}
		// A checkpoint record at the tail is the normal resting state of a
		// cleanly checkpointed log; anything else needs recovery.
		for _, r := range recs {
			if r.Type != wal.RecCheckpoint {
				return nil, errors.New("libtp: log contains records; recover with RecoverPaths")
			}
		}
		env.log = lg
	}
	env.log.SetGroupCommit(opts.GroupCommit)
	env.log.SetTracer(opts.Tracer)
	env.locks.SetClock(clock)
	clock.OnStall(env.groupCommitStall)
	return env, nil
}

// lockTxn maps a local transaction id into the lock manager's id space.
// With a shared manager (sharded rigs) the environment's LockSpace keeps
// ids from different shards distinct; with a private manager it is zero and
// this is the identity.
//
//simlint:noalloc
func (e *Env) lockTxn(id uint64) lock.TxnID { return lock.TxnID(id | e.lockSpace) }

// FS returns the underlying file system.
func (e *Env) FS() vfs.FileSystem { return e.fs }

// LogPath returns the write-ahead log's base path (segments and the
// checkpoint anchor are materialized next to it).
func (e *Env) LogPath() string { return e.opts.LogPath }

// Stats returns a snapshot of the counters.
func (e *Env) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// LockStats exposes the lock manager counters.
func (e *Env) LockStats() lock.Stats { return e.locks.Stats() }

// LogStats exposes the log manager counters.
func (e *Env) LogStats() wal.Stats { return e.log.Stats() }

// writeback persists an evicted dirty page, honouring the WAL rule: the log
// is forced before the page goes to the database file. The write() into the
// kernel costs a system call plus the copyin of the whole page (the WAL's
// own appends move only record-sized deltas and are charged by the log
// manager).
func (e *Env) writeback(id buffer.BlockID, data []byte) error {
	if err := e.log.Force(); err != nil {
		return err
	}
	e.clock.Advance(e.costs.Syscall + e.costs.PageCopy)
	f, ok := e.files[uint64(id.File)]
	if !ok {
		return fmt.Errorf("libtp: writeback for unknown db %d", id.File)
	}
	_, err := f.WriteAt(data, id.Block*int64(e.pool.BlockSize()))
	return err
}

// OpenDB opens (or creates) a database file. The returned DB is shared: all
// transactions address it through their own transactional page stores.
func (e *Env) OpenDB(path string) (*DB, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f, err := e.fs.Open(path)
	if errors.Is(err, vfs.ErrNotExist) {
		f, err = e.fs.Create(path)
		if err == nil {
			// Make the new database's directory entry durable so crash
			// recovery can find the file by path.
			err = e.fs.Sync()
		}
	}
	if err != nil {
		return nil, err
	}
	db := &DB{env: e, f: f, id: uint64(f.ID())}
	e.files[db.id] = f
	return db, nil
}

// DB is an open database file.
type DB struct {
	env *Env
	f   vfs.File
	id  uint64
}

// ID returns the database's identity (its inode number).
func (db *DB) ID() uint64 { return db.id }

// Path-free page count (used by the store adapter).
func (db *DB) numPages() (int64, error) {
	sz, err := db.f.Size()
	if err != nil {
		return 0, err
	}
	ps := int64(db.env.pool.BlockSize())
	return (sz + ps - 1) / ps, nil
}

// Begin starts a transaction ("txn_begin").
func (e *Env) Begin() *Txn {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nextTxn++
	id := e.nextTxn
	e.active[id] = true
	e.stats.Begun++
	start := e.clock.Now()
	e.clock.Advance(e.costs.TxnOp + e.costs.Syscall) // subroutine + the syscalls it makes
	e.tracer.Instant("txn", "txn.begin", trace.AU("txn", id))
	return &Txn{env: e, id: id, start: start}
}

// Txn is an active transaction.
type Txn struct {
	env   *Env
	id    uint64
	start time.Duration // simulated Begin time, for the whole-txn trace span
	done  bool
}

// ID returns the transaction identifier.
func (t *Txn) ID() uint64 { return t.id }

// Store returns the transactional page store for db: every page read takes
// a read lock, every page write takes a write lock and logs before/after
// images. Access methods (btree.Open, recno.Open, ...) plug in directly.
func (t *Txn) Store(db *DB) pagestore.Store {
	return &txnStore{t: t, db: db}
}

// Commit makes the transaction durable ("txn_commit"): force the log
// (subject to group commit) and release all locks. Dirty pages remain
// cached (no-force policy) and reach the database file on eviction or
// checkpoint, after the log.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	e := t.env
	e.mu.Lock()
	defer e.mu.Unlock()
	e.clock.Advance(e.costs.TxnOp + e.costs.Syscall)
	if e.clock.LiveProcs() > 1 {
		// Multiprogramming: pre-commit. Append the commit record and release
		// locks immediately — commit order is fixed by log order, and a
		// dependent transaction's commit record lands later in the same log,
		// so it can never become durable first — then block until the shared
		// force makes the batch durable. Holding locks across the force wait
		// would serialize the very concurrency group commit needs.
		lsn, err := e.log.AppendCommit(t.id)
		if err != nil {
			return err
		}
		e.noteCommitLocked(t.id, lsn)
		e.locks.ReleaseAll(e.lockTxn(t.id))
		if err := e.awaitGroupForceLocked(); err != nil {
			return err
		}
	} else {
		lsn, _, err := e.log.LogCommit(t.id)
		if err != nil {
			return err
		}
		e.noteCommitLocked(t.id, lsn)
		e.locks.ReleaseAll(e.lockTxn(t.id))
	}
	e.clock.Advance(e.costs.UserSync())
	delete(e.active, t.id)
	delete(e.undo, t.id)
	e.stats.Committed++
	if e.tracer.Enabled() {
		e.tracer.Complete("txn", "txn", t.start, trace.AU("txn", t.id), trace.AS("outcome", "commit"))
		e.histLatency.Observe(e.clock.Now() - t.start)
		e.ctrCommits.Add(1)
	}
	return nil
}

// Prepare votes yes on global transaction gid for this local branch: the
// prepare record is appended and made durable — through the shared
// group-commit batch when other clients are live, otherwise by a direct
// force — while every lock stays held. Once Prepare returns, the branch's
// fate belongs to the coordinator: CommitPrepared after the decision record
// is durable, or Abort if the global transaction aborts before deciding. A
// crash in between leaves the branch in doubt, resolved at recovery by the
// coordinator's log (presumed abort when no decision record survives).
func (t *Txn) Prepare(gid uint64) error {
	if t.done {
		return ErrTxnDone
	}
	e := t.env
	e.mu.Lock()
	defer e.mu.Unlock()
	e.clock.Advance(e.costs.TxnOp + e.costs.Syscall)
	if _, err := e.log.LogPrepare(t.id, gid); err != nil {
		return err
	}
	if e.clock.LiveProcs() > 1 {
		// Batch the prepare force with concurrent committers/preparers.
		// Locks stay held — that is the prepare contract — so the wait can
		// block lock-dependent clients; the scheduler's stall hook then asks
		// the earliest waiter to perform the force itself.
		return e.awaitGroupForceLocked()
	}
	return e.log.Force()
}

// CommitGlobal is the coordinator side of two-phase commit, called after
// every participant's Prepare has returned: it appends the coordinator
// branch's own prepare record, the global decision record, and the local
// commit record — all to the coordinator's log, in that order — and forces
// once (group-batched under multiprogramming). That single force is the
// commit point of the whole global transaction: until it completes no shard
// has a durable decision and every branch presumes abort; after it the
// decision record resolves every in-doubt branch to commit. Locks are
// released with the commit, and CommitGlobal returns only once the decision
// is durable, so phase two (CommitPrepared on the participants) may start
// immediately.
func (t *Txn) CommitGlobal(gid uint64) error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	e := t.env
	e.mu.Lock()
	defer e.mu.Unlock()
	e.clock.Advance(e.costs.TxnOp + e.costs.Syscall)
	// The coordinator branch's own prepare precedes the decision in the same
	// log, so a torn force can never leave the decision durable while the
	// branch's binding to gid is lost.
	if _, err := e.log.LogPrepare(t.id, gid); err != nil {
		return err
	}
	if _, err := e.log.AppendGlobalCommit(gid); err != nil {
		return err
	}
	lsn, err := e.log.AppendCommit(t.id)
	if err != nil {
		return err
	}
	e.noteCommitLocked(t.id, lsn)
	e.locks.ReleaseAll(e.lockTxn(t.id))
	if e.clock.LiveProcs() > 1 {
		if err := e.awaitGroupForceLocked(); err != nil {
			return err
		}
	} else {
		// The decision must be durable before phase two regardless of the
		// group-commit setting — a deferred force here would let an
		// unforced participant commit record become durable first.
		if err := e.log.Force(); err != nil {
			return err
		}
	}
	e.clock.Advance(e.costs.UserSync())
	delete(e.active, t.id)
	delete(e.undo, t.id)
	e.stats.Committed++
	if e.tracer.Enabled() {
		e.tracer.Complete("txn", "txn", t.start, trace.AU("txn", t.id), trace.AS("outcome", "commit"))
		e.histLatency.Observe(e.clock.Now() - t.start)
		e.ctrCommits.Add(1)
	}
	return nil
}

// CommitPrepared is phase two for a prepared participant branch: the global
// decision is durable in the coordinator's log, so the local commit record
// needs no force of its own — it is appended lazily and the locks released.
// If the machine crashes before this record reaches disk, recovery finds
// the branch prepared-but-undecided and the coordinator's decision record
// resolves it to commit; nothing is lost.
func (t *Txn) CommitPrepared() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	e := t.env
	e.mu.Lock()
	defer e.mu.Unlock()
	e.clock.Advance(e.costs.TxnOp + e.costs.Syscall)
	lsn, err := e.log.AppendCommit(t.id)
	if err != nil {
		return err
	}
	e.noteCommitLocked(t.id, lsn)
	e.locks.ReleaseAll(e.lockTxn(t.id))
	e.clock.Advance(e.costs.UserSync())
	delete(e.active, t.id)
	delete(e.undo, t.id)
	e.stats.Committed++
	if e.tracer.Enabled() {
		e.tracer.Complete("txn", "txn", t.start, trace.AU("txn", t.id), trace.AS("outcome", "commit"))
		e.histLatency.Observe(e.clock.Now() - t.start)
		e.ctrCommits.Add(1)
	}
	return nil
}

// ForceLog forces the environment's write-ahead log. Sharded checkpoints
// call it on every shard before checkpointing any of them, so no shard's
// truncation can outrun another shard's undecided prepare records.
func (e *Env) ForceLog() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.log.Force()
}

// awaitGroupForceLocked implements group commit for concurrent committers
// (§4.4: delay the force "until sufficiently more transactions have
// committed"): either force the whole batch — when it has filled, or when no
// other client is runnable so waiting cannot help — or suspend until a later
// committer (or the scheduler's stall hook) forces it. The caller has
// already appended its commit record and released its locks (pre-commit).
// Caller holds e.mu.
//
//simlint:noalloc
func (e *Env) awaitGroupForceLocked() error {
	e.gcPending++
	if e.gcPending >= e.opts.GroupCommit || !e.clock.OtherRunnable() {
		return e.forceGroupLocked()
	}
	e.log.NoteAbsorbed()
	epoch := e.gcEpoch
	var waited time.Duration
	for e.gcEpoch == epoch {
		if e.gcForceDue {
			e.gcForceDue = false
			e.noteCommitWait(waited)
			return e.forceGroupLocked()
		}
		waited += e.gcWaiters.Wait(e.clock, &e.mu)
	}
	e.noteCommitWait(waited)
	return e.gcErr
}

// noteCommitWait attributes time a pre-committed transaction spent parked
// waiting for the shared group-commit force. Caller holds e.mu.
//
//simlint:noalloc
func (e *Env) noteCommitWait(d time.Duration) {
	if d <= 0 || !e.tracer.Enabled() {
		return
	}
	e.tracer.Complete("txn", "txn.commitWait", e.clock.Now()-d)
	e.tracer.Attribute(trace.AttrCommitWait, d)
	e.histCommitWait.Observe(d)
}

// forceGroupLocked forces the log on behalf of every pending commit and
// releases the batch's waiters. Caller holds e.mu.
//
//simlint:noalloc
func (e *Env) forceGroupLocked() error {
	err := e.log.Force()
	e.gcPending = 0
	e.gcErr = err
	e.gcEpoch++
	e.gcForceDue = false
	e.gcWaiters.Broadcast(e.clock)
	return err
}

// groupCommitStall is the scheduler's stall hook — the discrete-event
// analogue of the group-commit timeout. When every runnable client has been
// exhausted and committers are parked waiting for the batch to fill (their
// held locks may be what blocked everyone else), wake the earliest waiter;
// it will find gcForceDue set and perform the force itself, in its own
// simulated time.
//
//simlint:noalloc
func (e *Env) groupCommitStall() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.gcPending == 0 || e.gcWaiters.Empty() {
		return false
	}
	e.gcForceDue = true
	return e.gcWaiters.WakeOne(e.clock)
}

// Abort rolls the transaction back ("txn_abort"): apply before-images in
// reverse order to the cached pages, log the abort, release locks.
func (t *Txn) Abort() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	e := t.env
	e.mu.Lock()
	defer e.mu.Unlock()
	e.clock.Advance(e.costs.TxnOp + e.costs.Syscall)
	undos := e.undo[t.id]
	for i := len(undos) - 1; i >= 0; i-- {
		u := undos[i]
		// Read the bytes being rolled over so the compensation record
		// carries a correct (if unused) before-image.
		cur, err := e.peekLocked(u.db, u.page, u.offset, len(u.before))
		if err != nil {
			return err
		}
		// Compensation log record: replaying it at recovery re-performs
		// the rollback in log order.
		if _, err := e.log.LogUpdate(t.id, u.db, u.page, u.offset, cur, u.before); err != nil {
			return err
		}
		if err := e.applyLocked(u.db, u.page, u.offset, u.before); err != nil {
			return err
		}
	}
	if _, err := e.log.LogAbort(t.id); err != nil {
		return err
	}
	// The rollback above restored every page byte the transaction touched,
	// so its version deltas must vanish: the chains now read as if the
	// transaction never wrote.
	e.deltas.Abort(t.id)
	e.locks.ReleaseAll(e.lockTxn(t.id))
	e.clock.Advance(e.costs.UserSync())
	delete(e.active, t.id)
	delete(e.undo, t.id)
	e.stats.Aborted++
	if e.tracer.Enabled() {
		e.tracer.Complete("txn", "txn", t.start, trace.AU("txn", t.id), trace.AS("outcome", "abort"))
		e.ctrAborts.Add(1)
	}
	return nil
}

// peekLocked reads a byte range from a cached database page.
func (e *Env) peekLocked(db uint64, page int64, offset uint32, n int) ([]byte, error) {
	f, ok := e.files[db]
	if !ok {
		return nil, fmt.Errorf("libtp: unknown db %d", db)
	}
	id := buffer.BlockID{File: vfs.FileID(db), Block: page}
	b, err := e.pool.Get(id, func(_ buffer.BlockID, dst []byte) error {
		_, err := f.ReadAt(dst, page*int64(e.pool.BlockSize()))
		return err
	})
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), b.Data[offset:int(offset)+n]...)
	e.pool.Release(b)
	return out, nil
}

// applyLocked writes a byte range into a cached database page.
func (e *Env) applyLocked(db uint64, page int64, offset uint32, data []byte) error {
	f, ok := e.files[db]
	if !ok {
		return fmt.Errorf("libtp: unknown db %d", db)
	}
	id := buffer.BlockID{File: vfs.FileID(db), Block: page}
	b, err := e.pool.Get(id, func(_ buffer.BlockID, dst []byte) error {
		_, err := f.ReadAt(dst, page*int64(e.pool.BlockSize()))
		return err
	})
	if err != nil {
		return err
	}
	copy(b.Data[offset:], data)
	e.pool.MarkDirty(b)
	e.pool.Release(b)
	return nil
}

// Checkpoint flushes all dirty pages (log first — WAL rule), then writes a
// checkpoint record; the log manager anchors it and truncates the dead
// segments below the new low-water mark. It requires quiescence.
func (e *Env) Checkpoint() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.active) != 0 {
		return ErrTxnActive
	}
	if err := e.log.Force(); err != nil {
		return err
	}
	if err := e.pool.FlushAll(); err != nil {
		return err
	}
	for _, id := range detsort.Keys(e.files) {
		if err := e.files[id].Sync(); err != nil {
			return err
		}
	}
	_, err := e.log.LogCheckpoint()
	return err
}

// applyRecovery writes one recovered byte range into its database file.
func (e *Env) applyRecovery(file uint64, block int64, offset uint32, data []byte) error {
	f, ok := e.files[file]
	if !ok {
		return fmt.Errorf("libtp: recovery update for unopened database %d; pass its path to RecoverPaths", file)
	}
	_, err := f.WriteAt(data, block*int64(e.pool.BlockSize())+int64(offset))
	return err
}

// RecoverPaths reopens an environment whose databases live at the given
// paths, running recovery with every database available. Use this after a
// crash instead of NewEnv. In-doubt branches of global transactions are
// presumed aborted; a sharded recovery with multiple logs uses
// OpenForRecovery on every shard first, then Complete with the union of the
// shards' decision records.
func RecoverPaths(fsys vfs.FileSystem, clock *sim.Clock, opts Options, dbPaths []string) (*Env, *RecoveryReport, error) {
	p, err := OpenForRecovery(fsys, clock, opts, dbPaths)
	if err != nil {
		return nil, nil, err
	}
	return p.Complete(nil)
}

// PendingRecovery is an environment whose log has been opened and scanned
// but not yet replayed. The split exists for cross-shard recovery: every
// shard's scan must complete (collecting the coordinators' decision
// records) before any shard resolves its in-doubt branches.
type PendingRecovery struct {
	env       *Env
	recs      []wal.Record
	scanStart time.Duration
}

// OpenForRecovery opens the databases and the log at the given paths and
// scans the log from its last checkpoint, deferring replay to Complete.
func OpenForRecovery(fsys vfs.FileSystem, clock *sim.Clock, opts Options, dbPaths []string) (*PendingRecovery, error) {
	opts.fill()
	env := newEnvShell(fsys, clock, opts)
	for _, p := range dbPaths {
		f, err := fsys.Open(p)
		if errors.Is(err, vfs.ErrNotExist) {
			continue
		}
		if err != nil {
			return nil, err
		}
		env.files[uint64(f.ID())] = f
	}
	scanStart := clock.Now()
	lg, err := wal.Open(fsys, opts.LogPath, wal.Options{SegmentBytes: opts.LogSegmentBytes, Retain: opts.LogRetain})
	if err != nil {
		return nil, err
	}
	env.log = lg
	env.log.SetTracer(opts.Tracer)
	recs, err := lg.Scan()
	if err != nil {
		return nil, err
	}
	return &PendingRecovery{env: env, recs: recs, scanStart: scanStart}, nil
}

// GlobalDecisions returns the global-transaction ids this shard's log holds
// durable commit decisions for (it was their coordinator).
func (p *PendingRecovery) GlobalDecisions() map[uint64]bool {
	return wal.GlobalDecisions(p.recs)
}

// Complete replays the scanned log — resolve decides in-doubt prepared
// branches, nil meaning presumed abort — syncs the recovered databases,
// checkpoints, and returns the usable environment.
func (p *PendingRecovery) Complete(resolve func(gid uint64) bool) (*Env, *RecoveryReport, error) {
	env, clock, opts := p.env, p.env.clock, p.env.opts
	w, l, indoubt, err := wal.ReplayRecords(p.recs, env.applyRecovery, resolve)
	if err != nil {
		return nil, nil, err
	}
	scan := env.log.LastScanStats()
	opts.Tracer.Hist("wal.recoveryScan").Observe(clock.Now() - p.scanStart)
	opts.Tracer.Counter("wal.recoverySegments").Add(scan.Segments)
	opts.Tracer.Counter("wal.recoveryBlocks").Add(scan.Blocks)
	// Recovered pages must reach the files before a fresh checkpoint
	// truncates the log they were recovered from.
	for _, id := range detsort.Keys(env.files) {
		if err := env.files[id].Sync(); err != nil {
			return nil, nil, err
		}
	}
	if _, err := env.log.LogCheckpoint(); err != nil {
		return nil, nil, err
	}
	env.log.SetGroupCommit(opts.GroupCommit)
	env.locks.SetClock(clock)
	clock.OnStall(env.groupCommitStall)
	return env, &RecoveryReport{Winners: w, Losers: l, InDoubt: indoubt, Scan: scan}, nil
}

// RecoveryReport summarizes a recovery pass.
type RecoveryReport struct {
	Winners int           // transactions redone
	Losers  int           // transactions undone
	InDoubt int           // prepared branches resolved by the coordinator's decision (or presumed abort)
	Scan    wal.ScanStats // how much log the recovery scan had to read
}
