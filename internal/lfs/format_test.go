package lfs

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestSuperblockRoundTrip(t *testing.T) {
	sb := superblock{
		Magic:         superMagic,
		Version:       formatVersion,
		BlockSize:     4096,
		TotalBlocks:   76800,
		SegmentBlocks: 128,
		CPBlocks:      64,
		SegStart:      129,
		NumSegments:   599,
	}
	got, err := decodeSuperblock(sb.encode(4096))
	if err != nil {
		t.Fatal(err)
	}
	if got != sb {
		t.Fatalf("round trip: %+v != %+v", got, sb)
	}
}

func TestSuperblockRejectsCorruption(t *testing.T) {
	sb := superblock{Magic: superMagic, Version: formatVersion, BlockSize: 4096, TotalBlocks: 100, SegmentBlocks: 16, CPBlocks: 4, SegStart: 9, NumSegments: 5}
	b := sb.encode(4096)
	b[10] ^= 0xff
	if _, err := decodeSuperblock(b); err == nil {
		t.Fatal("corrupted superblock should fail checksum")
	}
}

func TestSuperblockRejectsOldFormatVersion(t *testing.T) {
	sb := superblock{Magic: superMagic, Version: formatVersion - 1, BlockSize: 4096, TotalBlocks: 100, SegmentBlocks: 16, CPBlocks: 4, SegStart: 9, NumSegments: 5}
	if _, err := decodeSuperblock(sb.encode(4096)); err == nil {
		t.Fatal("pre-payload-CRC format version must be rejected")
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	s := summary{
		Seq:      42,
		SelfAddr: 777,
		NextSeg:  9,
		NBlocks:  3,
		Entries: []summaryEntry{
			{Ino: 2, Kind: kindData, Index: 10},
			{Ino: 2, Kind: kindInd, Index: 0},
			{Kind: kindInodePack, Index: 2},
			{Ino: 5, Kind: kindDelete},
		},
	}
	enc, err := s.encode(4096)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := decodeSummary(enc, 777)
	if !ok {
		t.Fatal("decode failed")
	}
	if got.Seq != s.Seq || got.NextSeg != s.NextSeg || got.NBlocks != s.NBlocks || len(got.Entries) != len(s.Entries) {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range s.Entries {
		if got.Entries[i] != s.Entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got.Entries[i], s.Entries[i])
		}
	}
}

func TestSummaryRejectsWrongAddress(t *testing.T) {
	s := summary{Seq: 1, SelfAddr: 100, NBlocks: 0}
	enc, _ := s.encode(4096)
	// A relocated copy (e.g. moved by a buggy cleaner) must not decode at
	// a different address.
	if _, ok := decodeSummary(enc, 200); ok {
		t.Fatal("summary decoded at the wrong address")
	}
	if _, ok := decodeSummary(enc, 100); !ok {
		t.Fatal("summary should decode at its own address")
	}
}

func TestSummaryRejectsBitFlips(t *testing.T) {
	s := summary{Seq: 7, SelfAddr: 50, NBlocks: 1, Entries: []summaryEntry{{Ino: 1, Kind: kindData, Index: 0}}}
	enc, _ := s.encode(4096)
	enc[20] ^= 1
	if _, ok := decodeSummary(enc, 50); ok {
		t.Fatal("bit-flipped summary should fail its checksum")
	}
}

func TestSummaryCapacity(t *testing.T) {
	max := maxSummaryEntries(4096)
	entries := make([]summaryEntry, max+1)
	s := summary{Entries: entries}
	if _, err := s.encode(4096); err == nil {
		t.Fatal("over-capacity summary should fail to encode")
	}
	s.Entries = entries[:max]
	if _, err := s.encode(4096); err != nil {
		t.Fatalf("at-capacity summary should encode: %v", err)
	}
}

func TestInodeWireRoundTrip(t *testing.T) {
	in := &inode{
		ino:      77,
		mode:     modeFile,
		flags:    flagTxnProtected,
		size:     123456,
		nlink:    1,
		mtime:    999,
		indAddr:  500,
		dindAddr: 600,
	}
	for i := range in.direct {
		in.direct[i] = int64(1000 + i)
	}
	got, err := decodeInodeWire(in.encodeWire())
	if err != nil {
		t.Fatal(err)
	}
	if got.ino != in.ino || got.mode != in.mode || got.flags != in.flags ||
		got.size != in.size || got.mtime != in.mtime ||
		got.indAddr != in.indAddr || got.dindAddr != in.dindAddr || got.direct != in.direct {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !got.txnProtected() {
		t.Fatal("txn flag lost")
	}
}

func TestInodeWireRejectsCorruption(t *testing.T) {
	in := &inode{ino: 1, mode: modeDir}
	b := in.encodeWire()
	b[30] ^= 0x10
	if _, err := decodeInodeWire(b); err == nil {
		t.Fatal("corrupted inode record should fail")
	}
}

func TestInodePackRoundTrip(t *testing.T) {
	var inodes []*inode
	for i := 0; i < 5; i++ {
		inodes = append(inodes, &inode{ino: Ino(i + 2), mode: modeFile, size: int64(i * 100)})
	}
	pack := encodeInodePack(4096, inodes)
	got, err := decodeInodePack(pack)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("decoded %d inodes", len(got))
	}
	for i := range inodes {
		if got[i].ino != inodes[i].ino || got[i].size != inodes[i].size {
			t.Fatalf("inode %d mismatch", i)
		}
	}
}

func TestInodePackCapacity(t *testing.T) {
	capacity := maxInodesPerPack(4096)
	if capacity < 8 {
		t.Fatalf("pack capacity %d too small to be useful", capacity)
	}
	if packHeader+capacity*inodeWireSize > 4096 {
		t.Fatal("capacity formula overflows the block")
	}
}

func TestInodePackRejectsGarbage(t *testing.T) {
	if _, err := decodeInodePack(make([]byte, 4096)); err == nil {
		t.Fatal("zero block is not a pack")
	}
}

func TestCheckpointRoundTripProperty(t *testing.T) {
	prop := func(seed uint32, nImap uint8, nSegs uint8) bool {
		cp := checkpoint{
			CpSeq:   uint64(seed),
			Seq:     uint64(seed) * 3,
			NextIno: Ino(seed % 1000),
			CurSeg:  int64(seed % 50),
			CurOff:  int64(seed % 128),
			NextSeg: int64(seed%50) + 1,
			Imap:    map[Ino]int64{},
		}
		for i := 0; i < int(nImap); i++ {
			cp.Imap[Ino(i+1)] = int64(seed) + int64(i)*7
		}
		cp.Segs = make([]segInfo, nSegs)
		for i := range cp.Segs {
			cp.Segs[i] = segInfo{State: segState(i % 4), Live: int64(i), SeqStamp: uint64(i) * 2}
		}
		got, err := decodeCheckpoint(cp.encode())
		if err != nil {
			return false
		}
		if got.CpSeq != cp.CpSeq || got.Seq != cp.Seq || got.NextIno != cp.NextIno ||
			got.CurSeg != cp.CurSeg || got.CurOff != cp.CurOff || got.NextSeg != cp.NextSeg {
			return false
		}
		if len(got.Imap) != len(cp.Imap) || len(got.Segs) != len(cp.Segs) {
			return false
		}
		for k, v := range cp.Imap {
			if got.Imap[k] != v {
				return false
			}
		}
		for i := range cp.Segs {
			if got.Segs[i] != cp.Segs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	cp := checkpoint{CpSeq: 1, Imap: map[Ino]int64{1: 100}, Segs: []segInfo{{}}}
	b := cp.encode()
	b[15] ^= 0xff
	if _, err := decodeCheckpoint(b); err == nil {
		t.Fatal("corrupted checkpoint should fail checksum")
	}
}

// TestTornLogTailRecovery simulates a crash that tears the most recent
// partial segment: the summary block is corrupted on disk, and roll-forward
// must stop there cleanly, recovering everything before it.
func TestTornLogTailRecovery(t *testing.T) {
	fs, dev, clk := newFS(t)
	writeFile(t, fs, "/safe", pattern(8192, 1))
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	// Record the log head, then write more and corrupt that partial's
	// summary — as if the write tore.
	fs.mu.Lock()
	tornAddr := fs.segBase(fs.curSeg) + fs.curOff
	fs.mu.Unlock()
	writeFile(t, fs, "/torn", pattern(4096, 2))
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	garbage := make([]byte, dev.BlockSize())
	for i := range garbage {
		garbage[i] = 0xde
	}
	if err := dev.Write(tornAddr, garbage); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(dev, clk, fs.opts)
	if err != nil {
		t.Fatalf("mount after torn tail: %v", err)
	}
	if got := readFile(t, fs2, "/safe"); !bytes_Equal(got, pattern(8192, 1)) {
		t.Fatal("data before the tear must survive")
	}
	// The torn file may or may not be visible; the mount must simply not
	// fail and the surviving state must be consistent.
	if _, _, diff, err := fs2.AuditUsage(); err != nil || len(diff) != 0 {
		t.Fatalf("usage inconsistent after torn-tail recovery: %v %v", diff, err)
	}
}

func bytes_Equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSummaryPayloadCRCRoundTrip(t *testing.T) {
	payload := [][]byte{pattern(4096, 3), pattern(4096, 4)}
	s := summary{
		Seq: 9, SelfAddr: 321, NBlocks: 2,
		PayloadCRC: payloadChecksum(payload),
		Entries: []summaryEntry{
			{Ino: 2, Kind: kindData, Index: 0},
			{Ino: 2, Kind: kindData, Index: 1},
		},
	}
	enc, err := s.encode(4096)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := decodeSummary(enc, 321)
	if !ok {
		t.Fatal("decode failed")
	}
	if got.PayloadCRC != s.PayloadCRC {
		t.Fatalf("payload CRC %#x != %#x", got.PayloadCRC, s.PayloadCRC)
	}
	if got.PayloadCRC == payloadChecksum([][]byte{pattern(4096, 3), pattern(4096, 5)}) {
		t.Fatal("different payloads should not share a CRC")
	}
}

func TestSummaryRejectsBlockCountAboveEntries(t *testing.T) {
	s := summary{Seq: 1, SelfAddr: 10, NBlocks: 1, Entries: []summaryEntry{{Ino: 1, Kind: kindData}}}
	enc, _ := s.encode(4096)
	// Forge NBlocks > nEntries and re-seal the summary checksum: the decoder
	// must still reject it (every described block consumes an entry).
	binary.LittleEndian.PutUint32(enc[32:], 2)
	binary.LittleEndian.PutUint32(enc[4:], summaryChecksum(enc))
	if _, ok := decodeSummary(enc, 10); ok {
		t.Fatal("summary with NBlocks > nEntries must not decode")
	}
}

// TestTornPayloadRecovery simulates the crash the payload CRC exists for:
// the summary block of the last partial segment is intact, but one of the
// blocks it describes never hit the media. Roll-forward must treat the whole
// partial as end-of-log rather than applying the summary against garbage.
func TestTornPayloadRecovery(t *testing.T) {
	fs, dev, clk := newFS(t)
	writeFile(t, fs, "/safe", pattern(8192, 1))
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	fs.mu.Lock()
	tornAddr := fs.segBase(fs.curSeg) + fs.curOff
	fs.mu.Unlock()
	writeFile(t, fs, "/torn", pattern(4096, 2))
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	// The summary at tornAddr stays intact; its first described block is
	// replaced with garbage, as if the segment write tore after the summary.
	garbage := make([]byte, dev.BlockSize())
	for i := range garbage {
		garbage[i] = 0xad
	}
	if err := dev.Write(tornAddr+1, garbage); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(dev, clk, fs.opts)
	if err != nil {
		t.Fatalf("mount after torn payload: %v", err)
	}
	if got := readFile(t, fs2, "/safe"); !bytes_Equal(got, pattern(8192, 1)) {
		t.Fatal("data before the tear must survive")
	}
	if _, _, diff, err := fs2.AuditUsage(); err != nil || len(diff) != 0 {
		t.Fatalf("usage inconsistent after torn-payload recovery: %v %v", diff, err)
	}
}
