package lfs

import "repro/internal/detsort"

// AuditUsage recomputes live block counts from the imap and compares them
// with the maintained segment usage table. Inode pack blocks are shared by
// several inodes and counted once. Used by tests and the lfsdump inspector
// to verify accounting invariants.
func (fs *FS) AuditUsage() (maintained, actual int64, perSegDiff map[int64][2]int64, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	actualLive := make([]int64, fs.sb.NumSegments)
	mark := func(addr int64) {
		if s := fs.segOf(addr); s >= 0 {
			actualLive[s]++
		}
	}
	packSeen := map[int64]bool{}
	for _, ino := range detsort.Keys(fs.imap) {
		if addr := fs.imap[ino]; !packSeen[addr] {
			packSeen[addr] = true
			mark(addr)
		}
		in, e := fs.loadInode(ino)
		if e != nil {
			return 0, 0, nil, e
		}
		e = fs.forEachBlock(in, func(kind blockKind, index, a int64) error {
			mark(a)
			return nil
		})
		if e != nil {
			return 0, 0, nil, e
		}
	}
	perSegDiff = map[int64][2]int64{}
	for s := int64(0); s < fs.sb.NumSegments; s++ {
		maintained += fs.segs[s].Live
		actual += actualLive[s]
		if fs.segs[s].Live != actualLive[s] {
			perSegDiff[s] = [2]int64{fs.segs[s].Live, actualLive[s]}
		}
	}
	return maintained, actual, perSegDiff, nil
}

// DebugAudit enables an internal usage audit after every cleaned segment
// (and panics on divergence). Test diagnostics only.
func (fs *FS) SetDebugAudit(on bool) { fs.debugAudit = on }

// auditLocked is AuditUsage without taking the lock.
func (fs *FS) auditLocked() (int64, int64, map[int64][2]int64, error) {
	actualLive := make([]int64, fs.sb.NumSegments)
	mark := func(addr int64) {
		if s := fs.segOf(addr); s >= 0 {
			actualLive[s]++
		}
	}
	packSeen := map[int64]bool{}
	for _, ino := range detsort.Keys(fs.imap) {
		if addr := fs.imap[ino]; !packSeen[addr] {
			packSeen[addr] = true
			mark(addr)
		}
		in, e := fs.loadInode(ino)
		if e != nil {
			return 0, 0, nil, e
		}
		e = fs.forEachBlock(in, func(kind blockKind, index, a int64) error {
			mark(a)
			return nil
		})
		if e != nil {
			return 0, 0, nil, e
		}
	}
	perSegDiff := map[int64][2]int64{}
	var maintained, actual int64
	for s := int64(0); s < fs.sb.NumSegments; s++ {
		maintained += fs.segs[s].Live
		actual += actualLive[s]
		if fs.segs[s].Live != actualLive[s] {
			perSegDiff[s] = [2]int64{fs.segs[s].Live, actualLive[s]}
		}
	}
	return maintained, actual, perSegDiff, nil
}
