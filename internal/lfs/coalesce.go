package lfs

import (
	"repro/internal/vfs"
)

// Coalesce rewrites a file's data blocks in logical order at the head of
// the log, restoring sequential layout after random updates have strewn the
// file across segments. This is the enhancement §5.3/§5.4 of the paper
// proposes for the idle-period user-space cleaner: "since LFS already has a
// mechanism for rearranging the file system, namely the cleaner, it seems
// obvious that this mechanism should be used to coalesce files which become
// fragmented."
//
// The rewrite is just a relocation: every mapped block is staged (via the
// orphan table, like cleaner copy-forward) and flushed in logical order, so
// consecutive logical blocks land on consecutive disk addresses. Reads and
// crash recovery are unaffected — the file's contents never change, only
// its layout.
func (fs *FS) Coalesce(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	in, err := fs.lookupLocked(path)
	if err != nil {
		return err
	}
	if in.isDir() {
		return vfs.ErrIsDir
	}
	bs := int64(fs.blockSize)
	nblocks := (in.size + bs - 1) / bs

	// Stage every mapped block in the orphan table. Blocks already dirty
	// in the cache (or already parked) are current and will be rewritten
	// by the flush anyway; clean on-disk blocks are read and parked.
	for lbn := int64(0); lbn < nblocks; lbn++ {
		addr, err := fs.blockAddr(in, lbn)
		if err != nil {
			return err
		}
		id := blockIDOf(in.ino, lbn)
		if _, parked := fs.orphans[id]; parked {
			continue
		}
		if b := fs.pool.Lookup(id); b != nil && b.Dirty() {
			continue
		}
		if addr == 0 {
			continue // hole
		}
		data := make([]byte, fs.blockSize)
		if err := fs.dev.Read(addr, data); err != nil {
			return err
		}
		fs.orphans[id] = data
	}
	in.dirty = true

	// Flush the staged blocks through the regular flush path (which sorts
	// by logical block number and invokes the cleaner if segments run
	// low), so the partial segments written here hold the file in logical
	// order — the post-coalesce layout is sequential.
	return fs.flushLocked(map[Ino]bool{in.ino: true}, false, false)
}
