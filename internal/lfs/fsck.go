package lfs

import (
	"fmt"

	"repro/internal/detsort"
)

// FsckReport summarizes a structural check of the file system.
type FsckReport struct {
	Files        int   // reachable regular files
	Dirs         int   // reachable directories
	Blocks       int64 // reachable data + pointer + pack blocks
	Problems     []string
	OrphanInodes []Ino // in the imap but unreachable from the root
}

// OK reports whether no problems were found.
func (r *FsckReport) OK() bool { return len(r.Problems) == 0 }

func (r *FsckReport) problemf(format string, args ...interface{}) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// Fsck verifies the file system's structural invariants:
//
//   - every imap entry decodes to an inode with the right number in a valid
//     pack block;
//   - the directory tree is acyclic and every entry resolves;
//   - every inode in the imap is reachable from the root (no orphans);
//   - no two files claim the same disk block (no cross-linking);
//   - every referenced block address lies inside the segment area;
//   - file sizes are consistent with their block maps;
//   - the maintained segment usage table matches a full recount.
//
// It reads through the device (charging simulated time) but modifies
// nothing.
func (fs *FS) Fsck() (*FsckReport, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	rep := &FsckReport{}

	// 1. Decode every imap entry.
	for ino, addr := range fs.imap {
		if s := fs.segOf(addr); s < 0 || s >= fs.sb.NumSegments {
			rep.problemf("inode %d: imap address %d outside the segment area", ino, addr)
			continue
		}
		if _, err := fs.loadInode(ino); err != nil {
			rep.problemf("inode %d: %v", ino, err)
		}
	}

	// 2. Walk the namespace from the root, checking reachability and
	// cycles.
	reachable := map[Ino]bool{}
	var walk func(ino Ino, path string, depth int) error
	walk = func(ino Ino, path string, depth int) error {
		if depth > 64 {
			rep.problemf("%s: directory tree deeper than 64 (cycle?)", path)
			return nil
		}
		if reachable[ino] {
			rep.problemf("%s: inode %d reached twice (hard link or cycle)", path, ino)
			return nil
		}
		reachable[ino] = true
		in, err := fs.loadInode(ino)
		if err != nil {
			rep.problemf("%s: %v", path, err)
			return nil
		}
		if !in.isDir() {
			rep.Files++
			return nil
		}
		rep.Dirs++
		entries, err := fs.readDirLocked(in)
		if err != nil {
			rep.problemf("%s: unreadable directory: %v", path, err)
			return nil
		}
		seen := map[string]bool{}
		for _, e := range entries {
			if e.Name == "" {
				rep.problemf("%s: empty entry name", path)
				continue
			}
			if seen[e.Name] {
				rep.problemf("%s/%s: duplicate entry", path, e.Name)
				continue
			}
			seen[e.Name] = true
			if _, ok := fs.imap[Ino(e.Ino)]; !ok {
				rep.problemf("%s/%s: dangling entry (inode %d not in imap)", path, e.Name, e.Ino)
				continue
			}
			if err := walk(Ino(e.Ino), path+"/"+e.Name, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if _, ok := fs.imap[RootIno]; !ok {
		rep.problemf("no root directory in the imap")
	} else if err := walk(RootIno, "", 0); err != nil {
		return nil, err
	}

	// 3. Orphan inodes: in the imap but unreachable.
	for _, ino := range detsort.Keys(fs.imap) {
		if !reachable[ino] {
			rep.OrphanInodes = append(rep.OrphanInodes, ino)
			rep.problemf("inode %d: unreachable from the root", ino)
		}
	}

	// 4. Cross-link and bounds check over every block of every file.
	owner := map[int64]Ino{}
	for _, ino := range detsort.Keys(fs.imap) {
		in, err := fs.loadInode(ino)
		if err != nil {
			continue // reported above
		}
		var fileBlocks int64
		err = fs.forEachBlock(in, func(kind blockKind, index, addr int64) error {
			if s := fs.segOf(addr); s < 0 || s >= fs.sb.NumSegments {
				rep.problemf("inode %d: %v block at %d outside the segment area", ino, kind, addr)
				return nil
			}
			if prev, taken := owner[addr]; taken {
				rep.problemf("block %d cross-linked between inodes %d and %d", addr, prev, ino)
			} else {
				owner[addr] = ino
			}
			rep.Blocks++
			if kind == kindData {
				fileBlocks++
			}
			return nil
		})
		if err != nil {
			rep.problemf("inode %d: walk failed: %v", ino, err)
			continue
		}
		// Size consistency: mapped data blocks must fit within the size
		// (holes are fine; blocks past EOF are not).
		maxBlocks := (in.size + int64(fs.blockSize) - 1) / int64(fs.blockSize)
		if fileBlocks > maxBlocks {
			rep.problemf("inode %d: %d data blocks mapped but size %d allows %d",
				ino, fileBlocks, in.size, maxBlocks)
		}
	}
	// Pack blocks count once per distinct address.
	packSeen := map[int64]bool{}
	for ino, addr := range fs.imap {
		if packSeen[addr] {
			continue
		}
		packSeen[addr] = true
		rep.Blocks++
		if refs := fs.packRefs[addr]; refs <= 0 {
			rep.problemf("inode %d: pack block %d has non-positive refcount %d", ino, addr, refs)
		}
	}

	// 5. Segment usage recount.
	if _, _, diff, err := fs.auditLocked(); err != nil {
		rep.problemf("usage audit failed: %v", err)
	} else if len(diff) > 0 {
		rep.problemf("segment usage divergence in %d segments: %v", len(diff), diff)
	}
	return rep, nil
}
