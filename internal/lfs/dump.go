package lfs

import (
	"fmt"
	"io"

	"repro/internal/detsort"
)

// Dump writes a human-readable description of the file system's on-disk and
// in-memory structure: superblock geometry, log position, segment usage
// table, inode map, and cleaner statistics. Used by the lfsdump inspector.
func (fs *FS) Dump(w io.Writer) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()

	fmt.Fprintf(w, "superblock: %d blocks × %d B, %d segments × %d blocks, segments start at %d\n",
		fs.sb.TotalBlocks, fs.sb.BlockSize, fs.sb.NumSegments, fs.sb.SegmentBlocks, fs.sb.SegStart)
	fmt.Fprintf(w, "log head: segment %d offset %d (next %d), seq %d, checkpoint seq %d (boundary %d)\n",
		fs.curSeg, fs.curOff, fs.nextSeg, fs.seq, fs.cpSeq, fs.cpBound)
	fmt.Fprintf(w, "free segments: %d/%d\n", fs.free, fs.sb.NumSegments)

	fmt.Fprintf(w, "\nsegment usage (state live/cap @seq):\n")
	stateNames := map[segState]string{segFree: "free", segInLog: "log ", segCurrent: "cur ", segReserved: "rsvd"}
	for s := int64(0); s < fs.sb.NumSegments; s++ {
		info := fs.segs[s]
		if info.State == segFree && info.Live == 0 && info.SeqStamp == 0 {
			continue
		}
		fmt.Fprintf(w, "  seg %4d: %s %4d/%4d @%d\n", s, stateNames[info.State], info.Live, fs.sb.SegmentBlocks, info.SeqStamp)
	}

	fmt.Fprintf(w, "\ninode map (%d files):\n", len(fs.imap))
	for _, ino := range detsort.Keys(fs.imap) {
		in, err := fs.loadInode(ino)
		if err != nil {
			fmt.Fprintf(w, "  ino %4d @%d: <%v>\n", ino, fs.imap[ino], err)
			continue
		}
		kind := "file"
		if in.isDir() {
			kind = "dir "
		}
		txn := ""
		if in.txnProtected() {
			txn = " txn-protected"
		}
		fmt.Fprintf(w, "  ino %4d @%-8d %s %8d B%s\n", ino, fs.imap[ino], kind, in.size, txn)
	}

	st := fs.stats
	fmt.Fprintf(w, "\nactivity: %d partial segments, %d blocks logged, %d checkpoints\n",
		st.PartialSegments, st.BlocksLogged, st.Checkpoints)
	fmt.Fprintf(w, "cleaner: %d runs, %d segments cleaned, %d copied, %d dead, busy %v\n",
		st.Cleaner.Runs, st.Cleaner.SegmentsCleaned, st.Cleaner.BlocksCopied, st.Cleaner.BlocksDead, st.Cleaner.BusyTime)
	return nil
}
