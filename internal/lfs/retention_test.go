package lfs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/vfs"
)

// fakeRetention retains every disk address while pinned, nothing after.
type fakeRetention struct{ pinned bool }

func (r *fakeRetention) RetainsRange(lo, hi int64) bool { return r.pinned }
func (r *fakeRetention) RetainedBlocks() int64 {
	if r.pinned {
		return 1
	}
	return 0
}
func (r *fakeRetention) HorizonLag() int64 { return 0 }

// TestCleanerRetentionGate: while a snapshot retention horizon pins
// superseded versions, the cleaner must pass over otherwise-cleanable
// segments (counting each skip) and resume reclaiming the moment the
// horizon releases — the cleaner side of "the horizon advances exactly when
// the last pinning snapshot closes".
func TestCleanerRetentionGate(t *testing.T) {
	fs, _, _ := tinyFS(t)
	for round := 0; round < 3; round++ {
		f, err := fs.Open("/churn")
		if errors.Is(err, vfs.ErrNotExist) {
			f, err = fs.Create("/churn")
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(pattern(64*4096, byte(13+round)), 0); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
	}

	ret := &fakeRetention{pinned: true}
	fs.SetSnapshotRetention(ret)
	cleaned, err := fs.CleanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if cleaned {
		t.Fatal("cleaner reclaimed a segment the retention horizon pins")
	}
	if fs.Stats().Cleaner.RetentionSkips == 0 {
		t.Fatal("cleaner recorded no retention skips while everything was pinned")
	}

	// Horizon releases: the same pass must now find a victim.
	ret.pinned = false
	cleaned, err = fs.CleanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !cleaned {
		t.Fatal("cleaner still idle after the retention horizon released")
	}
	if got := readFile(t, fs, "/churn"); !bytes.Equal(got, pattern(64*4096, 15)) {
		t.Fatal("cleaner corrupted live data")
	}
}
