package lfs

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/buffer"
	"repro/internal/detsort"
	"repro/internal/disk"
	"repro/internal/trace"
)

// CleanerPolicy selects how the cleaner picks victim segments.
type CleanerPolicy int

const (
	// CostBenefit picks the segment maximizing (1-u)·age/(1+u), the
	// Sprite-LFS policy: cold, mostly-dead segments first.
	CostBenefit CleanerPolicy = iota
	// Greedy picks the segment with the fewest live blocks.
	Greedy
)

func (p CleanerPolicy) String() string {
	if p == Greedy {
		return "greedy"
	}
	return "cost-benefit"
}

// CleanerStats reports garbage collection activity.
type CleanerStats struct {
	Runs            int64         // cleaning passes
	SegmentsCleaned int64         // victims reclaimed
	BlocksCopied    int64         // live blocks copied forward
	BlocksDead      int64         // dead blocks simply discarded
	BusyTime        time.Duration // device time attributable to cleaning

	// Idle-overlap accounting, filled by CleanIdle: OverlapTime is cleaner
	// device time absorbed by foreground idle windows, StallTime is the
	// residue that actually delayed the workload
	// (BusyTime = OverlapTime + StallTime for background passes).
	OverlapTime time.Duration
	StallTime   time.Duration

	Batches       int64 // batched cleaning passes
	BatchVictims  int64 // victims across all batched passes
	BlocksWritten int64 // blocks the cleaner's own flushes logged (incl. summaries/meta)
	SummaryReads  int64 // summary blocks read from disk (summary-cache misses)
	HotBlocks     int64 // relocated data blocks classified hot (or unsegregated)
	ColdBlocks    int64 // relocated data blocks classified cold

	// Snapshot-retention accounting (zero unless a snapshot layer is
	// attached via SetSnapshotRetention). RetentionSkips counts otherwise
	// reclaimable segments the cleaner had to leave alone because a pinned
	// snapshot still reads through them; RetainedBlocks and HorizonLag are
	// gauges sampled at Stats() time from the retention horizon itself.
	RetentionSkips int64
	RetainedBlocks int64
	HorizonLag     int64
}

// WriteAmplification returns total logged blocks divided by foreground
// (non-cleaner) logged blocks — 1.0 means the cleaner added no writes.
func (s Stats) WriteAmplification() float64 {
	fg := s.BlocksLogged - s.Cleaner.BlocksWritten
	if fg <= 0 {
		return 1
	}
	return float64(s.BlocksLogged) / float64(fg)
}

// CleanOnce runs a single batched cleaning pass regardless of the
// free-segment threshold (used by tests and by the user-space cleaner's
// idle-period policy). It reports whether any segment was reclaimed.
func (fs *FS) CleanOnce() (bool, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cleaning {
		return false, nil
	}
	fs.cleaning = true
	defer func() { fs.cleaning = false }()
	// A synchronous pass runs on the caller's critical path: its disk time
	// is cleaner stall from the workload's point of view, not workload I/O.
	fs.tracer.PushAttr(trace.AttrCleaner)
	defer fs.tracer.PopAttr()
	busy0 := fs.dev.Stats().BusyTime
	defer func() { fs.stats.Cleaner.BusyTime += fs.dev.Stats().BusyTime - busy0 }()
	maxLive := fs.sb.SegmentBlocks - minCleanGain
	victims := fs.pickVictimsLocked(fs.opts.CleanBatch, maxLive)
	if len(victims) == 0 && fs.victimsBlockedByCheckpointLocked(maxLive) {
		if err := fs.writeCheckpointLocked(); err != nil {
			return false, err
		}
		victims = fs.pickVictimsLocked(fs.opts.CleanBatch, maxLive)
	}
	if len(victims) == 0 {
		return false, nil
	}
	fs.stats.Cleaner.Runs++
	if err := fs.cleanBatchLocked(victims); err != nil {
		return false, err
	}
	return true, nil
}

// CleanIdle runs one background-priority cleaning pass if the free-segment
// pool has fallen below the idle trigger. Device time is charged to the
// background lane: I/O is absorbed by the idle windows the foreground
// workload left behind, and only the residue stalls it — the paper's §5.4
// "clean in idle periods" design, made incremental so the TPC-B driver can
// call it between transactions. It reports whether any segment was
// reclaimed.
func (fs *FS) CleanIdle() (bool, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cleaning || fs.free >= int64(fs.opts.IdleCleanTrigger) {
		return false, nil
	}
	fs.cleaning = true
	defer func() { fs.cleaning = false }()
	// Background-lane accesses already attribute their unabsorbed residue to
	// the cleaner in disk.charge; the override here covers any foreground
	// I/O the pass does outside the lane switch (none today, cheap insurance).
	fs.tracer.PushAttr(trace.AttrCleaner)
	defer fs.tracer.PopAttr()
	prev := fs.dev.SetLane(disk.Background)
	defer fs.dev.SetLane(prev)
	d0 := fs.dev.Stats()
	defer func() {
		d1 := fs.dev.Stats()
		fs.stats.Cleaner.BusyTime += d1.BusyTime - d0.BusyTime
		fs.stats.Cleaner.OverlapTime += d1.BgOverlapTime - d0.BgOverlapTime
		fs.stats.Cleaner.StallTime += d1.BgStallTime - d0.BgStallTime
	}()
	// Background passes take only cheap victims: copying a mostly-live
	// segment costs more device time than the idle windows can hide, and
	// cost-benefit's age term would otherwise keep re-picking the cleaner's
	// own cold, mostly-live output segments. Expensive segments are left to
	// shed more blocks; the synchronous path remains the backstop if space
	// runs out first.
	maxLive := fs.sb.SegmentBlocks / 2
	victims := fs.pickVictimsLocked(fs.opts.CleanBatch, maxLive)
	if len(victims) == 0 && fs.victimsBlockedByCheckpointLocked(maxLive) {
		if err := fs.writeCheckpointLocked(); err != nil {
			return false, err
		}
		victims = fs.pickVictimsLocked(fs.opts.CleanBatch, maxLive)
	}
	// Pace the pass to the idle budget: a full batch can cost more device
	// time than the foreground has left idle so far, and the excess would
	// stall the workload even though later windows could have absorbed it.
	// While space is not yet critical, trim the batch to what the accrued
	// credit covers and let the rest wait for more idle time; once the pool
	// falls to the synchronous-cleaning threshold the stall is unavoidable
	// anyway and the full batch proceeds.
	if fs.free > int64(fs.opts.CleanThreshold) {
		credit := fs.dev.IdleCredit()
		model := fs.dev.Model()
		scatter := model.AvgRotationalDelay() + model.TransferTime(model.BlockSize)
		seq := model.TransferTime(model.BlockSize)
		var budget time.Duration
		n := 0
		for _, v := range victims {
			live := fs.segs[v].Live
			// live scattered reads plus a few summary-chain reads, then a
			// sequential rewrite of the survivors.
			cost := time.Duration(live+3)*scatter + time.Duration(live)*seq
			if budget+cost > credit {
				break
			}
			budget += cost
			n++
		}
		victims = victims[:n]
	}
	if len(victims) == 0 {
		return false, nil
	}
	fs.stats.Cleaner.Runs++
	freeBefore := fs.free
	if err := fs.cleanBatchLocked(victims); err != nil {
		return false, err
	}
	return fs.free > freeBefore, nil
}

// cleanLocked brings the free-segment count back to the target. It is
// invoked from the flush path when free segments fall below the threshold —
// the paper's in-kernel cleaner, whose activity stalls the transaction
// workload ("periods of very high transaction throughput are interrupted by
// periods of no transaction throughput", §5.1). Caller holds fs.mu.
func (fs *FS) cleanLocked() error {
	fs.cleaning = true
	defer func() { fs.cleaning = false }()
	fs.tracer.PushAttr(trace.AttrCleaner)
	defer fs.tracer.PopAttr()
	busy0 := fs.dev.Stats().BusyTime
	defer func() { fs.stats.Cleaner.BusyTime += fs.dev.Stats().BusyTime - busy0 }()
	fs.stats.Cleaner.Runs++
	maxLive := fs.sb.SegmentBlocks - minCleanGain
	for fs.free < int64(fs.opts.CleanTarget) {
		victims := fs.pickVictimsLocked(fs.opts.CleanBatch, maxLive)
		if len(victims) == 0 {
			// Candidates may exist that are only blocked by the
			// checkpoint boundary (segments written since the last
			// checkpoint are part of the roll-forward chain). Write a
			// checkpoint (no flush needed — the imap always describes
			// flushed state) to advance the boundary and retry. This is
			// the checkpoint-before-reuse discipline of real LFS.
			if fs.victimsBlockedByCheckpointLocked(maxLive) {
				if err := fs.writeCheckpointLocked(); err != nil {
					return err
				}
				victims = fs.pickVictimsLocked(fs.opts.CleanBatch, maxLive)
			}
		}
		if len(victims) == 0 {
			if fs.free == 0 {
				return ErrNoSpace
			}
			return nil
		}
		freeBefore := fs.free
		if err := fs.cleanBatchLocked(victims); err != nil {
			return err
		}
		if fs.free <= freeBefore {
			// Cleaning made no net progress (copying the live blocks
			// consumed as much as it freed): the disk is effectively
			// full of live data.
			if fs.free == 0 {
				return ErrNoSpace
			}
			return nil
		}
	}
	return nil
}

// minCleanGain is the minimum number of dead blocks a segment must contain
// to be worth cleaning: copying nearly-full segments costs as much space as
// it frees.
const minCleanGain = 4

// minSegregate is the minimum size of each age group before the cleaner
// spends an early segment seal on hot/cold segregation.
const minSegregate = 4

// victimsBlockedByCheckpointLocked reports whether cleanable segments (at
// most maxLive live blocks) exist that are excluded only because they were
// written since the last checkpoint.
func (fs *FS) victimsBlockedByCheckpointLocked(maxLive int64) bool {
	if cap := fs.sb.SegmentBlocks - minCleanGain; maxLive > cap {
		maxLive = cap
	}
	for s := int64(0); s < fs.sb.NumSegments; s++ {
		info := fs.segs[s]
		if info.State == segInLog && info.SeqStamp >= fs.cpBound && info.Live <= maxLive &&
			!fs.retainedLocked(s) {
			return true
		}
	}
	return false
}

// pickVictimsLocked chooses up to n victim segments with at most maxLive
// live blocks each, best score first. Only checkpointed log segments
// qualify: segments written since the last checkpoint are part of the
// roll-forward chain and must not be recycled. Ties break on segment number
// so victim selection is deterministic.
func (fs *FS) pickVictimsLocked(n int, maxLive int64) []int64 {
	if n < 1 {
		n = 1
	}
	if cap := fs.sb.SegmentBlocks - minCleanGain; maxLive > cap {
		maxLive = cap // copying nearly-full segments costs as much space as it frees
	}
	type cand struct {
		seg  int64
		age  int64
		util float64
	}
	var cands []cand
	for s := int64(0); s < fs.sb.NumSegments; s++ {
		info := fs.segs[s]
		if info.State != segInLog || info.SeqStamp >= fs.cpBound {
			continue
		}
		if info.Live > maxLive {
			continue
		}
		if fs.retainedLocked(s) {
			// A pinned snapshot still reads superseded versions inside this
			// segment; reclaiming it would resurrect freed blocks under the
			// reader. The skip is temporary — the watermark advances when
			// the last pinning snapshot closes.
			fs.stats.Cleaner.RetentionSkips++
			continue
		}
		cands = append(cands, cand{
			seg: s,
			// Age is measured from when the segment was written
			// (SeqStamp), not from the data's original write time
			// (AgeStamp): relocated cold data keeps its old stamps, so
			// scoring on data age would make the cleaner's own output
			// segments look ancient and re-pick them every pass, copying
			// the cold set once per log cycle. A freshly compacted cold
			// segment must first age (and shed blocks) before it can
			// compete again.
			age:  int64(fs.seq - info.SeqStamp),
			util: float64(info.Live) / float64(fs.sb.SegmentBlocks),
		})
	}
	// The age benefit saturates at the first-quartile candidate age: a
	// segment that has outlived a quarter of its peers has had its chance to
	// shed blocks, and waiting longer gains nothing, so matured segments
	// compete on utilization alone. Unsaturated, the age term would send the
	// cleaner to old-but-still-live segments over younger, deader ones —
	// copying more blocks per segment freed.
	var ageCap int64 = 1
	if len(cands) > 0 {
		ages := make([]int64, len(cands))
		for i, c := range cands {
			ages[i] = c.age
		}
		sort.Slice(ages, func(i, j int) bool { return ages[i] < ages[j] })
		if ageCap = ages[len(ages)/4]; ageCap < 1 {
			ageCap = 1
		}
	}
	score := func(c cand) float64 {
		if fs.opts.Policy == Greedy {
			return 1 - c.util
		}
		return (1 - c.util) * float64(min(c.age, ageCap)) / (1 + c.util)
	}
	sort.Slice(cands, func(i, j int) bool {
		if si, sj := score(cands[i]), score(cands[j]); si != sj {
			return si > sj
		}
		return cands[i].seg < cands[j].seg
	})
	if len(cands) > n {
		cands = cands[:n]
	}
	victims := make([]int64, len(cands))
	for i, c := range cands {
		victims[i] = c.seg
	}
	return victims
}

// victimSummariesLocked returns the partial-segment summaries of a segment:
// from the in-memory summary cache when present, otherwise by walking the
// summary chain on disk (one block per partial — still far cheaper than
// reading the whole segment).
func (fs *FS) victimSummariesLocked(seg int64) ([]summary, error) {
	if sums, ok := fs.sumCache[seg]; ok {
		return sums, nil
	}
	base := fs.segBase(seg)
	var sums []summary
	buf := make([]byte, fs.blockSize)
	off := int64(0)
	for off < fs.sb.SegmentBlocks {
		addr := base + off
		if err := fs.dev.Read(addr, buf); err != nil {
			return nil, err
		}
		fs.stats.Cleaner.SummaryReads++
		sum, ok := decodeSummary(buf, addr)
		if !ok {
			break
		}
		if len(sums) > 0 && sum.Seq <= sums[len(sums)-1].Seq {
			break // stale summary from a previous life of the segment
		}
		sums = append(sums, sum)
		off += 1 + int64(sum.NBlocks)
	}
	fs.sumCache[seg] = sums
	return sums, nil
}

// cleanBatchLocked reclaims a ranked batch of victim segments in one pass:
//
//  1. walk every victim's summaries (from the summary cache when possible)
//     and test each entry for liveness — in memory, before any data I/O;
//  2. read only the live data blocks, batched through one C-SCAN sweep of
//     the disk queue, and park them in the orphan table; meta-data blocks
//     are merely re-dirtied (their in-memory contents are current);
//  3. partition the relocated blocks by age and flush cold and hot groups
//     into separate output segments, stamping each with its group's age;
//  4. verify every victim is fully dead and return it to the free pool.
func (fs *FS) cleanBatchLocked(victims []int64) error {
	span := fs.tracer.Begin("cleaner", "cleaner.pass")
	copied0, dead0 := fs.stats.Cleaner.BlocksCopied, fs.stats.Cleaner.BlocksDead
	fs.stats.Cleaner.Batches++
	fs.stats.Cleaner.BatchVictims += int64(len(victims))
	logged0 := fs.stats.BlocksLogged

	// 1. Liveness walk over all victims.
	type liveEntry struct {
		e    summaryEntry
		addr int64
		age  uint64
	}
	var live []liveEntry
	var packAddrs []int64
	for _, victim := range victims {
		sums, err := fs.victimSummariesLocked(victim)
		if err != nil {
			return err
		}
		base := fs.segBase(victim)
		off := int64(0)
		for _, sum := range sums {
			age := sum.AgeStamp
			if age == 0 {
				age = sum.Seq
			}
			blockIdx := int64(0)
			for _, e := range sum.Entries {
				if e.Kind == kindDelete {
					continue
				}
				addr := base + off + 1 + blockIdx
				blockIdx++
				isLive, err := fs.entryLiveLocked(e, addr)
				if err != nil {
					return err
				}
				if !isLive {
					fs.stats.Cleaner.BlocksDead++
					continue
				}
				fs.stats.Cleaner.BlocksCopied++
				live = append(live, liveEntry{e, addr, age})
				if e.Kind == kindInodePack {
					packAddrs = append(packAddrs, addr)
				}
			}
			off += 1 + int64(sum.NBlocks)
		}
	}

	// Reverse-map live pack blocks to the inodes that still live in them
	// (one imap scan for the whole batch; sorted for determinism).
	packInos := make(map[int64][]Ino, len(packAddrs))
	if len(packAddrs) > 0 {
		want := make(map[int64]bool, len(packAddrs))
		for _, a := range packAddrs {
			want[a] = true
		}
		for ino, addr := range fs.imap {
			if want[addr] {
				packInos[addr] = append(packInos[addr], ino)
			}
		}
		for _, inos := range packInos {
			sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
		}
	}

	// 2. Stage relocations. Data blocks whose current bytes exist only on
	// disk are queued as single-block reads; a newer staged or dirty
	// resident version supersedes the victim's copy (preserving the
	// no-overwrite guarantee transaction abort depends on), and a clean
	// resident buffer donates its bytes without any I/O.
	type relocBlock struct {
		id  buffer.BlockID
		age uint64
		buf []byte // non-nil: bytes arrive from the queued disk read
	}
	var relocs []relocBlock
	relocIDs := make(map[buffer.BlockID]bool)
	relocInos := make(map[Ino]bool)
	q := disk.NewQueue(fs.dev)
	for _, le := range live {
		switch le.e.Kind {
		case kindData:
			id := blockIDOf(le.e.Ino, le.e.Index)
			relocIDs[id] = true
			rb := relocBlock{id: id, age: le.age}
			if _, parked := fs.orphans[id]; parked {
				// A newer, not-yet-flushed version is already staged.
			} else if b := fs.pool.Lookup(id); b != nil && b.Dirty() && !b.Held() {
				// A dirty resident buffer supersedes the on-disk copy and
				// will be written by the scoped flush.
			} else if b := fs.pool.Lookup(id); b != nil && !b.Dirty() {
				cp := make([]byte, len(b.Data))
				copy(cp, b.Data)
				fs.orphans[id] = cp
			} else {
				rb.buf = make([]byte, fs.blockSize)
				q.EnqueueRead(le.addr, rb.buf)
			}
			relocs = append(relocs, rb)
		case kindInodePack:
			// Re-dirty every inode still living in this pack; the scoped
			// flush writes them into a fresh pack at the log head. The imap
			// already tells us which inodes those are — no pack read needed.
			for _, ino := range packInos[le.addr] {
				in, err := fs.loadInode(ino)
				if err != nil {
					return err
				}
				in.dirty = true
				relocInos[ino] = true
			}
		case kindInd:
			in, err := fs.loadInode(le.e.Ino)
			if err != nil {
				return err
			}
			p, err := fs.loadInd(in)
			if err != nil {
				return err
			}
			p.dirty = true
			relocInos[le.e.Ino] = true
		case kindDInd:
			in, err := fs.loadInode(le.e.Ino)
			if err != nil {
				return err
			}
			p, err := fs.loadDInd(in)
			if err != nil {
				return err
			}
			p.dirty = true
			relocInos[le.e.Ino] = true
		case kindDChild:
			in, err := fs.loadInode(le.e.Ino)
			if err != nil {
				return err
			}
			p, err := fs.loadDChild(in, le.e.Index)
			if err != nil {
				return err
			}
			p.dirty = true
			relocInos[le.e.Ino] = true
		}
	}
	if err := q.FlushSorted(); err != nil {
		return err
	}
	for _, rb := range relocs {
		if rb.buf != nil {
			fs.orphans[rb.id] = rb.buf
		}
	}

	// 3. Hot/cold segregation: split the relocated data by age at the
	// midpoint and write each group into its own output segment, so cold
	// data stops being recopied every time its hot neighbours die (the
	// Sprite-LFS generational trick). Skipped when one group is trivial or
	// free segments are too scarce to spend one on an early seal.
	var minAge, maxAge uint64
	for i, rb := range relocs {
		if i == 0 || rb.age < minAge {
			minAge = rb.age
		}
		if rb.age > maxAge {
			maxAge = rb.age
		}
	}
	coldIDs := make(map[buffer.BlockID]bool)
	hotIDs := make(map[buffer.BlockID]bool)
	var coldAge, hotAge uint64
	if minAge < maxAge {
		pivot := minAge + (maxAge-minAge)/2
		for _, rb := range relocs {
			if rb.age <= pivot {
				coldIDs[rb.id] = true
				coldAge = max(coldAge, rb.age)
			} else {
				hotIDs[rb.id] = true
				hotAge = max(hotAge, rb.age)
			}
		}
	}
	if len(coldIDs) >= minSegregate && len(hotIDs) >= minSegregate &&
		fs.free > int64(fs.opts.CleanThreshold) {
		fs.stats.Cleaner.ColdBlocks += int64(len(coldIDs))
		fs.stats.Cleaner.HotBlocks += int64(len(hotIDs))
		if err := fs.flushRelocLocked(coldIDs, nil, coldAge); err != nil {
			return err
		}
		// Seal the cold output so the hot group starts its own segment.
		if fs.curOff > 0 {
			if err := fs.advanceSegmentLocked(); err != nil {
				return err
			}
		}
		if err := fs.flushRelocLocked(hotIDs, fs.dirtyRelocInosLocked(relocInos), hotAge); err != nil {
			return err
		}
	} else {
		fs.stats.Cleaner.HotBlocks += int64(len(relocs))
		if err := fs.flushRelocLocked(relocIDs, fs.dirtyRelocInosLocked(relocInos), maxAge); err != nil {
			return err
		}
	}

	// 4. Verify and free.
	for _, victim := range victims {
		if fs.segs[victim].Live != 0 {
			return fs.cleanFailureLocked(victim)
		}
		fs.segs[victim].State = segFree
		fs.segs[victim].AgeStamp = 0
		delete(fs.sumCache, victim)
		fs.free++
		fs.stats.Cleaner.SegmentsCleaned++
	}
	fs.stats.Cleaner.BlocksWritten += fs.stats.BlocksLogged - logged0
	if fs.tracer.Enabled() {
		span.End(trace.AI("victims", int64(len(victims))),
			trace.AI("copied", fs.stats.Cleaner.BlocksCopied-copied0),
			trace.AI("dead", fs.stats.Cleaner.BlocksDead-dead0))
		fs.tracer.Count("cleaner.passes", 1)
		fs.tracer.Count("cleaner.victims", int64(len(victims)))
	}
	if fs.debugAudit {
		if _, _, diff, err := fs.auditLocked(); err != nil || len(diff) > 0 {
			panic(fmt.Sprintf("audit after cleaning segs %v: diff=%v err=%v", victims, diff, err))
		}
	}
	return nil
}

// dirtyRelocInosLocked filters relocation-affected files down to those whose
// meta-data is still dirty — an earlier flush in the same pass (the cold
// group) may already have rewritten some of them.
func (fs *FS) dirtyRelocInosLocked(inos map[Ino]bool) map[Ino]bool {
	out := make(map[Ino]bool, len(inos))
	for ino := range inos {
		if in, ok := fs.inodes[ino]; ok && fs.inodeMetaDirty(in) {
			out[ino] = true
		}
	}
	return out
}

// cleanFailureLocked builds the diagnostic for the invariant violation of a
// victim keeping live blocks after its relocation flush.
func (fs *FS) cleanFailureLocked(victim int64) error {
	var kinds [6]int
	sums, err := fs.victimSummariesLocked(victim)
	if err == nil {
		base := fs.segBase(victim)
		off := int64(0)
		for _, sum := range sums {
			blockIdx := int64(0)
			for _, e := range sum.Entries {
				if e.Kind == kindDelete {
					continue
				}
				addr := base + off + 1 + blockIdx
				blockIdx++
				if isLive, _ := fs.entryLiveLocked(e, addr); isLive {
					kinds[e.Kind]++
				}
			}
			off += 1 + int64(sum.NBlocks)
		}
	}
	// Cross-walk: which addresses in the victim does the imap still
	// reference?
	type ref struct {
		Ino  Ino
		Kind blockKind
		Idx  int64
		Addr int64
	}
	var refs []ref
	for _, ino := range detsort.Keys(fs.imap) {
		if fs.segOf(fs.imap[ino]) == victim {
			refs = append(refs, ref{ino, kindInodePack, 0, fs.imap[ino]})
		}
		in, e := fs.loadInode(ino)
		if e != nil {
			continue
		}
		fs.forEachBlock(in, func(kind blockKind, index, a int64) error {
			if fs.segOf(a) == victim {
				refs = append(refs, ref{ino, kind, index, a})
			}
			return nil
		})
	}
	if len(refs) > 8 {
		refs = refs[:8]
	}
	return fmt.Errorf("lfs: segment %d still has %d live blocks after cleaning (%d summaries walked; live kinds data=%d pack=%d ind=%d dind=%d dchild=%d; refs=%+v)",
		victim, fs.segs[victim].Live, len(sums), kinds[kindData], kinds[kindInodePack], kinds[kindInd], kinds[kindDInd], kinds[kindDChild], refs)
}

// entryLiveLocked reports whether a summary entry's block at addr is still
// the current version.
func (fs *FS) entryLiveLocked(e summaryEntry, addr int64) (bool, error) {
	if e.Kind == kindInodePack {
		// A pack block is live while any imap entry still points at it.
		return fs.packRefs[addr] > 0, nil
	}
	cur, ok := fs.imap[e.Ino]
	if !ok {
		return false, nil // file deleted
	}
	_ = cur
	in, err := fs.loadInode(e.Ino)
	if err != nil {
		return false, err
	}
	switch e.Kind {
	case kindData:
		a, err := fs.blockAddr(in, e.Index)
		if err != nil {
			return false, err
		}
		return a == addr, nil
	case kindInd:
		return in.indAddr == addr, nil
	case kindDInd:
		return in.dindAddr == addr, nil
	case kindDChild:
		if in.dindAddr == 0 && in.dind == nil {
			return false, nil
		}
		dind, err := fs.loadDInd(in)
		if err != nil {
			return false, err
		}
		if e.Index < 0 || e.Index >= int64(len(dind.ptrs)) {
			return false, nil
		}
		return dind.ptrs[e.Index] == addr, nil
	default:
		return false, nil
	}
}
