package lfs

import (
	"fmt"
	"time"

	"repro/internal/buffer"
)

// CleanerPolicy selects how the cleaner picks victim segments.
type CleanerPolicy int

const (
	// CostBenefit picks the segment maximizing (1-u)·age/(1+u), the
	// Sprite-LFS policy: cold, mostly-dead segments first.
	CostBenefit CleanerPolicy = iota
	// Greedy picks the segment with the fewest live blocks.
	Greedy
)

func (p CleanerPolicy) String() string {
	if p == Greedy {
		return "greedy"
	}
	return "cost-benefit"
}

// CleanerStats reports garbage collection activity.
type CleanerStats struct {
	Runs            int64         // cleaning passes
	SegmentsCleaned int64         // victims reclaimed
	BlocksCopied    int64         // live blocks copied forward
	BlocksDead      int64         // dead blocks simply discarded
	BusyTime        time.Duration // device time attributable to cleaning
}

// CleanOnce runs a single cleaning pass regardless of the free-segment
// threshold (used by tests and by the user-space cleaner's idle-period
// policy). It reports whether a segment was reclaimed.
func (fs *FS) CleanOnce() (bool, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cleaning {
		return false, nil
	}
	fs.cleaning = true
	defer func() { fs.cleaning = false }()
	busy0 := fs.dev.Stats().BusyTime
	defer func() { fs.stats.Cleaner.BusyTime += fs.dev.Stats().BusyTime - busy0 }()
	victim := fs.pickVictimLocked()
	if victim < 0 && fs.victimsBlockedByCheckpointLocked() {
		if err := fs.writeCheckpointLocked(); err != nil {
			return false, err
		}
		victim = fs.pickVictimLocked()
	}
	if victim < 0 {
		return false, nil
	}
	fs.stats.Cleaner.Runs++
	if err := fs.cleanSegmentLocked(victim); err != nil {
		return false, err
	}
	return true, nil
}

// cleanLocked brings the free-segment count back to the target. It is
// invoked from the flush path when free segments fall below the threshold —
// the paper's in-kernel cleaner, whose activity stalls the transaction
// workload ("periods of very high transaction throughput are interrupted by
// periods of no transaction throughput", §5.1). Caller holds fs.mu.
func (fs *FS) cleanLocked() error {
	fs.cleaning = true
	defer func() { fs.cleaning = false }()
	busy0 := fs.dev.Stats().BusyTime
	defer func() { fs.stats.Cleaner.BusyTime += fs.dev.Stats().BusyTime - busy0 }()
	fs.stats.Cleaner.Runs++
	for fs.free < int64(fs.opts.CleanTarget) {
		victim := fs.pickVictimLocked()
		if victim < 0 {
			// Candidates may exist that are only blocked by the
			// checkpoint boundary (segments written since the last
			// checkpoint are part of the roll-forward chain). Write a
			// checkpoint (no flush needed — the imap always describes
			// flushed state) to advance the boundary and retry. This is
			// the checkpoint-before-reuse discipline of real LFS.
			if fs.victimsBlockedByCheckpointLocked() {
				if err := fs.writeCheckpointLocked(); err != nil {
					return err
				}
				victim = fs.pickVictimLocked()
			}
		}
		if victim < 0 {
			if fs.free == 0 {
				return ErrNoSpace
			}
			return nil
		}
		freeBefore := fs.free
		if err := fs.cleanSegmentLocked(victim); err != nil {
			return err
		}
		if fs.free <= freeBefore {
			// Cleaning made no net progress (copying the live blocks
			// consumed as much as it freed): the disk is effectively
			// full of live data.
			if fs.free == 0 {
				return ErrNoSpace
			}
			return nil
		}
	}
	return nil
}

// minCleanGain is the minimum number of dead blocks a segment must contain
// to be worth cleaning: copying nearly-full segments costs as much space as
// it frees.
const minCleanGain = 4

// victimsBlockedByCheckpointLocked reports whether cleanable segments exist
// that are excluded only because they were written since the last
// checkpoint.
func (fs *FS) victimsBlockedByCheckpointLocked() bool {
	for s := int64(0); s < fs.sb.NumSegments; s++ {
		info := fs.segs[s]
		if info.State == segInLog && info.SeqStamp >= fs.cpBound && info.Live <= fs.sb.SegmentBlocks-minCleanGain {
			return true
		}
	}
	return false
}

// pickVictimLocked chooses a victim segment, or -1 when none is eligible.
// Only checkpointed log segments qualify: segments written since the last
// checkpoint are part of the roll-forward chain and must not be recycled.
func (fs *FS) pickVictimLocked() int64 {
	best := int64(-1)
	var bestScore float64
	for s := int64(0); s < fs.sb.NumSegments; s++ {
		info := fs.segs[s]
		if info.State != segInLog || info.SeqStamp >= fs.cpBound {
			continue
		}
		if info.Live > fs.sb.SegmentBlocks-minCleanGain {
			continue // not enough dead blocks to be worth copying
		}
		var score float64
		u := float64(info.Live) / float64(fs.sb.SegmentBlocks)
		switch fs.opts.Policy {
		case Greedy:
			score = 1 - u
		default: // CostBenefit
			age := float64(fs.seq - info.SeqStamp)
			score = (1 - u) * age / (1 + u)
		}
		if best < 0 || score > bestScore {
			best, bestScore = s, score
		}
	}
	return best
}

// cleanSegmentLocked reclaims one segment: read it, copy its live blocks to
// the head of the log, and mark it clean.
func (fs *FS) cleanSegmentLocked(victim int64) error {
	base := fs.segBase(victim)
	segBlocks := int(fs.sb.SegmentBlocks)
	raw := make([]byte, segBlocks*fs.blockSize)
	bufs := make([][]byte, segBlocks)
	for i := range bufs {
		bufs[i] = raw[i*fs.blockSize : (i+1)*fs.blockSize]
	}
	if err := fs.dev.ReadRun(base, bufs); err != nil {
		return err
	}

	// Walk the partial segments recorded in the victim.
	relocIDs := make(map[buffer.BlockID]bool)
	relocInos := make(map[Ino]bool)
	off := int64(0)
	for off < int64(segBlocks) {
		sum, ok := decodeSummary(bufs[off], base+off)
		if !ok {
			break
		}
		blockIdx := int64(0)
		for _, e := range sum.Entries {
			if e.Kind == kindDelete {
				continue
			}
			addr := base + off + 1 + blockIdx
			data := bufs[off+1+blockIdx]
			blockIdx++
			live, err := fs.entryLiveLocked(e, addr)
			if err != nil {
				return err
			}
			if !live {
				fs.stats.Cleaner.BlocksDead++
				continue
			}
			fs.stats.Cleaner.BlocksCopied++
			inos, err := fs.relocateLocked(e, addr, data)
			if err != nil {
				return err
			}
			for _, ino := range inos {
				relocInos[ino] = true
			}
			if e.Kind == kindData {
				relocIDs[blockIDOf(e.Ino, e.Index)] = true
			}
		}
		off += 1 + int64(sum.NBlocks)
	}

	// Write the relocated blocks and affected meta-data to the log. The
	// flush is scoped to exactly this work so cleaning never amplifies
	// into a full flush of the dirty pool while segments are scarce.
	if err := fs.flushRelocLocked(relocIDs, relocInos); err != nil {
		return err
	}
	if fs.segs[victim].Live != 0 {
		// Diagnose which entries remain live (invariant violation).
		var kinds [6]int
		off = 0
		for off < int64(segBlocks) {
			sum, ok := decodeSummary(bufs[off], base+off)
			if !ok {
				break
			}
			blockIdx := int64(0)
			for _, e := range sum.Entries {
				if e.Kind == kindDelete {
					continue
				}
				addr := base + off + 1 + blockIdx
				blockIdx++
				if live, _ := fs.entryLiveLocked(e, addr); live {
					kinds[e.Kind]++
				}
			}
			off += 1 + int64(sum.NBlocks)
		}
		// Cross-walk: which addresses in the victim does the imap still
		// reference, and did the summary walk cover them?
		covered := off
		type ref struct {
			Ino  Ino
			Kind blockKind
			Idx  int64
			Addr int64
		}
		var refs []ref
		for ino := range fs.imap {
			if fs.segOf(fs.imap[ino]) == victim {
				refs = append(refs, ref{ino, kindInodePack, 0, fs.imap[ino]})
			}
			in, e := fs.loadInode(ino)
			if e != nil {
				continue
			}
			fs.forEachBlock(in, func(kind blockKind, index, a int64) error {
				if fs.segOf(a) == victim {
					refs = append(refs, ref{ino, kind, index, a})
				}
				return nil
			})
		}
		if len(refs) > 8 {
			refs = refs[:8]
		}
		return fmt.Errorf("lfs: segment %d still has %d live blocks after cleaning (walk covered %d/%d blocks; live kinds data=%d pack=%d ind=%d dind=%d dchild=%d; refs=%+v)",
			victim, fs.segs[victim].Live, covered, segBlocks, kinds[kindData], kinds[kindInodePack], kinds[kindInd], kinds[kindDInd], kinds[kindDChild], refs)
	}
	fs.segs[victim].State = segFree
	fs.free++
	fs.stats.Cleaner.SegmentsCleaned++
	if fs.debugAudit {
		if _, _, diff, err := fs.auditLocked(); err != nil || len(diff) > 0 {
			panic(fmt.Sprintf("audit after cleaning seg %d: diff=%v err=%v", victim, diff, err))
		}
	}
	return nil
}

// entryLiveLocked reports whether a summary entry's block at addr is still
// the current version.
func (fs *FS) entryLiveLocked(e summaryEntry, addr int64) (bool, error) {
	if e.Kind == kindInodePack {
		// A pack block is live while any imap entry still points at it.
		return fs.packRefs[addr] > 0, nil
	}
	cur, ok := fs.imap[e.Ino]
	if !ok {
		return false, nil // file deleted
	}
	_ = cur
	in, err := fs.loadInode(e.Ino)
	if err != nil {
		return false, err
	}
	switch e.Kind {
	case kindData:
		a, err := fs.blockAddr(in, e.Index)
		if err != nil {
			return false, err
		}
		return a == addr, nil
	case kindInd:
		return in.indAddr == addr, nil
	case kindDInd:
		return in.dindAddr == addr, nil
	case kindDChild:
		if in.dindAddr == 0 && in.dind == nil {
			return false, nil
		}
		dind, err := fs.loadDInd(in)
		if err != nil {
			return false, err
		}
		if e.Index < 0 || e.Index >= int64(len(dind.ptrs)) {
			return false, nil
		}
		return dind.ptrs[e.Index] == addr, nil
	default:
		return false, nil
	}
}

// relocateLocked stages a live block for rewriting at the log head.
//
// Data blocks are parked in the orphan table (their bytes must move); the
// next flush assigns them new addresses and updates the inode. If a
// transaction currently holds a newer uncommitted version of the page in the
// cache, the on-disk before-image is what gets relocated — preserving the
// no-overwrite guarantee that abort depends on. Meta-data blocks are merely
// marked dirty: their in-memory contents are current (everything unheld was
// flushed before cleaning), so rewriting them relocates them.
func (fs *FS) relocateLocked(e summaryEntry, addr int64, data []byte) ([]Ino, error) {
	if e.Kind == kindInodePack {
		// Re-dirty every inode in the pack that still lives here; the
		// scoped flush writes them into a fresh pack at the log head.
		pack, err := decodeInodePack(data)
		if err != nil {
			return nil, err
		}
		var inos []Ino
		for _, packedIn := range pack {
			if fs.imap[packedIn.ino] != addr {
				continue
			}
			in, err := fs.loadInode(packedIn.ino)
			if err != nil {
				return nil, err
			}
			in.dirty = true
			inos = append(inos, packedIn.ino)
		}
		return inos, nil
	}
	in, err := fs.loadInode(e.Ino)
	if err != nil {
		return nil, err
	}
	switch e.Kind {
	case kindData:
		id := blockIDOf(e.Ino, e.Index)
		if _, exists := fs.orphans[id]; exists {
			// A newer, not-yet-flushed version of this block is already
			// parked in the orphan table; flushing it supersedes the
			// victim's copy. Never clobber it with the older image.
			break
		}
		if b := fs.pool.Lookup(id); b != nil && b.Dirty() && !b.Held() {
			// Same: a dirty resident buffer supersedes the on-disk copy
			// and will be written by the scoped flush.
			break
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		fs.orphans[id] = cp
	case kindInd:
		p, err := fs.loadInd(in)
		if err != nil {
			return nil, err
		}
		p.dirty = true
	case kindDInd:
		p, err := fs.loadDInd(in)
		if err != nil {
			return nil, err
		}
		p.dirty = true
	case kindDChild:
		p, err := fs.loadDChild(in, e.Index)
		if err != nil {
			return nil, err
		}
		p.dirty = true
	}
	return []Ino{e.Ino}, nil
}
