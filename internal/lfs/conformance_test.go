package lfs_test

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/fstest"
	"repro/internal/lfs"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func TestConformance(t *testing.T) {
	fstest.Run(t, "lfs", func(t *testing.T) vfs.FileSystem {
		clk := sim.NewClock()
		dev := disk.New(sim.SmallModel(), clk)
		fsys, err := lfs.Format(dev, clk, lfs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return fsys
	})
}
