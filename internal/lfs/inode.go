package lfs

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// File mode values stored in the inode.
const (
	modeFile uint32 = 1
	modeDir  uint32 = 2
)

// Inode flags.
const (
	flagTxnProtected uint32 = 1 << 0 // the paper's per-file transaction attribute
)

// inode is the in-memory representation of a file's index structure: the
// paper's "meta-data". Direct blocks hold data; the single indirect block
// holds addresses of data blocks; the double indirect block holds addresses
// of indirect ("child") blocks. Address 0 means "no block" (a hole reads as
// zeros; the superblock lives at 0 so it can never be a data address).
type inode struct {
	ino    Ino
	mode   uint32
	flags  uint32
	size   int64
	nlink  uint32
	mtime  int64 // simulated time in nanoseconds
	direct [NDirect]int64

	// On-disk addresses of the pointer blocks (0 = none).
	indAddr  int64
	dindAddr int64

	// Cached pointer blocks, loaded lazily.
	ind    *ptrBlock
	dind   *ptrBlock
	dchild map[int64]*ptrBlock

	dirty bool // inode (or any cached pointer block) needs rewriting
	refs  int  // open handles
}

// ptrBlock is a cached block of disk addresses.
type ptrBlock struct {
	addr  int64 // current on-disk address, 0 if never written
	ptrs  []int64
	dirty bool
}

func newPtrBlock(nptr int) *ptrBlock {
	return &ptrBlock{ptrs: make([]int64, nptr)}
}

func (p *ptrBlock) encode(blockSize int) []byte {
	b := make([]byte, blockSize)
	for i, v := range p.ptrs {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
	}
	return b
}

func decodePtrBlock(b []byte) *ptrBlock {
	n := len(b) / 8
	p := &ptrBlock{ptrs: make([]int64, n)}
	for i := 0; i < n; i++ {
		p.ptrs[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return p
}

// nptr returns the number of pointers a block holds.
func nptr(blockSize int) int64 { return int64(blockSize / 8) }

// maxLBN returns the largest mappable logical block number + 1.
func maxLBN(blockSize int) int64 {
	n := nptr(blockSize)
	return NDirect + n + n*n
}

// inode wire format (a fixed-size record; several records are packed into
// one "inode pack" block per partial segment, as Sprite LFS packed dinodes —
// this keeps the per-commit meta-data overhead at one block regardless of
// how many files a transaction touched):
//
//	magic  uint32
//	crc    uint32
//	ino    uint64
//	mode   uint32
//	flags  uint32
//	size   int64
//	nlink  uint32
//	pad    uint32
//	mtime  int64
//	direct [NDirect]int64
//	indAddr  int64
//	dindAddr int64
const inodeWireSize = 4 + 4 + 8 + 4 + 4 + 8 + 4 + 4 + 8 + NDirect*8 + 8 + 8

// encodeWire serializes the inode into a fixed-size self-checksummed record.
func (in *inode) encodeWire() []byte {
	b := make([]byte, inodeWireSize)
	le := binary.LittleEndian
	le.PutUint32(b[0:], inodeMagic)
	le.PutUint64(b[8:], uint64(in.ino))
	le.PutUint32(b[16:], in.mode)
	le.PutUint32(b[20:], in.flags)
	le.PutUint64(b[24:], uint64(in.size))
	le.PutUint32(b[32:], in.nlink)
	le.PutUint64(b[40:], uint64(in.mtime))
	off := 48
	for _, d := range in.direct {
		le.PutUint64(b[off:], uint64(d))
		off += 8
	}
	le.PutUint64(b[off:], uint64(in.indAddr))
	le.PutUint64(b[off+8:], uint64(in.dindAddr))
	le.PutUint32(b[4:], crc32.ChecksumIEEE(b[8:inodeWireSize]))
	return b
}

func decodeInodeWire(b []byte) (*inode, error) {
	if len(b) < inodeWireSize {
		return nil, fmt.Errorf("%w: short inode record", ErrCorrupt)
	}
	le := binary.LittleEndian
	if le.Uint32(b[0:]) != inodeMagic {
		return nil, fmt.Errorf("%w: bad inode magic", ErrCorrupt)
	}
	if le.Uint32(b[4:]) != crc32.ChecksumIEEE(b[8:inodeWireSize]) {
		return nil, fmt.Errorf("%w: inode checksum", ErrCorrupt)
	}
	in := &inode{}
	in.ino = Ino(le.Uint64(b[8:]))
	in.mode = le.Uint32(b[16:])
	in.flags = le.Uint32(b[20:])
	in.size = int64(le.Uint64(b[24:]))
	in.nlink = le.Uint32(b[32:])
	in.mtime = int64(le.Uint64(b[40:]))
	off := 48
	for i := range in.direct {
		in.direct[i] = int64(le.Uint64(b[off:]))
		off += 8
	}
	in.indAddr = int64(le.Uint64(b[off:]))
	in.dindAddr = int64(le.Uint64(b[off+8:]))
	return in, nil
}

// Inode pack block: header (magic u32, count u32, pad 8) + count wire
// records.
const (
	packMagic  = 0x4c465350 // "LFSP"
	packHeader = 16
)

// maxInodesPerPack returns how many inode records one pack block holds.
func maxInodesPerPack(blockSize int) int {
	return (blockSize - packHeader) / inodeWireSize
}

// encodeInodePack builds a pack block from the given inodes.
func encodeInodePack(blockSize int, inodes []*inode) []byte {
	b := make([]byte, blockSize)
	le := binary.LittleEndian
	le.PutUint32(b[0:], packMagic)
	le.PutUint32(b[4:], uint32(len(inodes)))
	off := packHeader
	for _, in := range inodes {
		copy(b[off:], in.encodeWire())
		off += inodeWireSize
	}
	return b
}

// decodeInodePack parses a pack block into its inode records.
func decodeInodePack(b []byte) ([]*inode, error) {
	le := binary.LittleEndian
	if len(b) < packHeader || le.Uint32(b[0:]) != packMagic {
		return nil, fmt.Errorf("%w: bad inode pack magic", ErrCorrupt)
	}
	n := int(le.Uint32(b[4:]))
	if n < 0 || packHeader+n*inodeWireSize > len(b) {
		return nil, fmt.Errorf("%w: inode pack count %d", ErrCorrupt, n)
	}
	out := make([]*inode, 0, n)
	off := packHeader
	for i := 0; i < n; i++ {
		in, err := decodeInodeWire(b[off : off+inodeWireSize])
		if err != nil {
			return nil, err
		}
		out = append(out, in)
		off += inodeWireSize
	}
	return out, nil
}

func (in *inode) isDir() bool        { return in.mode == modeDir }
func (in *inode) txnProtected() bool { return in.flags&flagTxnProtected != 0 }

// loadInd ensures the single indirect pointer block is cached.
func (fs *FS) loadInd(in *inode) (*ptrBlock, error) {
	if in.ind != nil {
		return in.ind, nil
	}
	np := int(nptr(fs.blockSize))
	if in.indAddr == 0 {
		in.ind = newPtrBlock(np)
		return in.ind, nil
	}
	buf := make([]byte, fs.blockSize)
	if err := fs.dev.Read(in.indAddr, buf); err != nil {
		return nil, err
	}
	p := decodePtrBlock(buf)
	p.addr = in.indAddr
	in.ind = p
	return p, nil
}

// loadDInd ensures the double indirect pointer block is cached.
func (fs *FS) loadDInd(in *inode) (*ptrBlock, error) {
	if in.dind != nil {
		return in.dind, nil
	}
	np := int(nptr(fs.blockSize))
	if in.dindAddr == 0 {
		in.dind = newPtrBlock(np)
		return in.dind, nil
	}
	buf := make([]byte, fs.blockSize)
	if err := fs.dev.Read(in.dindAddr, buf); err != nil {
		return nil, err
	}
	p := decodePtrBlock(buf)
	p.addr = in.dindAddr
	in.dind = p
	return p, nil
}

// loadDChild ensures child slot `slot` of the double indirect block is cached.
func (fs *FS) loadDChild(in *inode, slot int64) (*ptrBlock, error) {
	if in.dchild == nil {
		in.dchild = make(map[int64]*ptrBlock)
	}
	if p, ok := in.dchild[slot]; ok {
		return p, nil
	}
	dind, err := fs.loadDInd(in)
	if err != nil {
		return nil, err
	}
	np := int(nptr(fs.blockSize))
	addr := dind.ptrs[slot]
	if addr == 0 {
		p := newPtrBlock(np)
		in.dchild[slot] = p
		return p, nil
	}
	buf := make([]byte, fs.blockSize)
	if err := fs.dev.Read(addr, buf); err != nil {
		return nil, err
	}
	p := decodePtrBlock(buf)
	p.addr = addr
	in.dchild[slot] = p
	return p, nil
}

// blockAddr returns the on-disk address of logical block lbn (0 = hole).
func (fs *FS) blockAddr(in *inode, lbn int64) (int64, error) {
	np := nptr(fs.blockSize)
	switch {
	case lbn < 0:
		return 0, fmt.Errorf("lfs: negative logical block %d", lbn)
	case lbn < NDirect:
		return in.direct[lbn], nil
	case lbn < NDirect+np:
		if in.indAddr == 0 && in.ind == nil {
			return 0, nil
		}
		p, err := fs.loadInd(in)
		if err != nil {
			return 0, err
		}
		return p.ptrs[lbn-NDirect], nil
	case lbn < maxLBN(fs.blockSize):
		rel := lbn - NDirect - np
		slot, idx := rel/np, rel%np
		if in.dindAddr == 0 && in.dind == nil {
			return 0, nil
		}
		dind, err := fs.loadDInd(in)
		if err != nil {
			return 0, err
		}
		if dind.ptrs[slot] == 0 {
			if in.dchild == nil || in.dchild[slot] == nil {
				return 0, nil
			}
		}
		child, err := fs.loadDChild(in, slot)
		if err != nil {
			return 0, err
		}
		return child.ptrs[idx], nil
	default:
		return 0, ErrFileTooLarge
	}
}

// setBlockAddr points logical block lbn at addr, returning the previous
// address. The affected pointer blocks are marked dirty so the next partial
// segment rewrites them — LFS never updates meta-data in place.
func (fs *FS) setBlockAddr(in *inode, lbn, addr int64) (old int64, err error) {
	np := nptr(fs.blockSize)
	in.dirty = true
	switch {
	case lbn < 0:
		return 0, fmt.Errorf("lfs: negative logical block %d", lbn)
	case lbn < NDirect:
		old = in.direct[lbn]
		in.direct[lbn] = addr
		return old, nil
	case lbn < NDirect+np:
		p, err := fs.loadInd(in)
		if err != nil {
			return 0, err
		}
		old = p.ptrs[lbn-NDirect]
		p.ptrs[lbn-NDirect] = addr
		p.dirty = true
		return old, nil
	case lbn < maxLBN(fs.blockSize):
		rel := lbn - NDirect - np
		slot, idx := rel/np, rel%np
		child, err := fs.loadDChild(in, slot)
		if err != nil {
			return 0, err
		}
		old = child.ptrs[idx]
		child.ptrs[idx] = addr
		child.dirty = true
		return old, nil
	default:
		return 0, ErrFileTooLarge
	}
}

// forEachBlock invokes fn for every mapped (non-hole) logical block of the
// file, including pointer blocks (with kind != kindData). Used by Remove,
// the cleaner's liveness audit, and the mount-time usage rebuild.
func (fs *FS) forEachBlock(in *inode, fn func(kind blockKind, index, addr int64) error) error {
	np := nptr(fs.blockSize)
	for i := int64(0); i < NDirect; i++ {
		if in.direct[i] != 0 {
			if err := fn(kindData, i, in.direct[i]); err != nil {
				return err
			}
		}
	}
	if in.indAddr != 0 || in.ind != nil {
		p, err := fs.loadInd(in)
		if err != nil {
			return err
		}
		if p.addr != 0 {
			if err := fn(kindInd, 0, p.addr); err != nil {
				return err
			}
		}
		for i, a := range p.ptrs {
			if a != 0 {
				if err := fn(kindData, NDirect+int64(i), a); err != nil {
					return err
				}
			}
		}
	}
	if in.dindAddr != 0 || in.dind != nil {
		dind, err := fs.loadDInd(in)
		if err != nil {
			return err
		}
		if dind.addr != 0 {
			if err := fn(kindDInd, 0, dind.addr); err != nil {
				return err
			}
		}
		for slot := int64(0); slot < np; slot++ {
			if dind.ptrs[slot] == 0 && (in.dchild == nil || in.dchild[slot] == nil) {
				continue
			}
			child, err := fs.loadDChild(in, slot)
			if err != nil {
				return err
			}
			if child.addr != 0 {
				if err := fn(kindDChild, slot, child.addr); err != nil {
					return err
				}
			}
			for i, a := range child.ptrs {
				if a != 0 {
					if err := fn(kindData, NDirect+np+slot*np+int64(i), a); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
