package lfs

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/vfs"
)

// File is an open file handle.
type File struct {
	fs     *FS
	in     *inode
	closed bool
}

var _ vfs.File = (*File)(nil)

// ID implements vfs.File.
func (f *File) ID() vfs.FileID { return vfs.FileID(f.in.ino) }

// Size implements vfs.File.
func (f *File) Size() (int64, error) {
	if f.closed {
		return 0, vfs.ErrFileClosed
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return f.in.size, nil
}

// Close implements vfs.File.
func (f *File) Close() error {
	if f.closed {
		return vfs.ErrFileClosed
	}
	f.closed = true
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.in.refs--
	return nil
}

// Sync implements vfs.File: force this file's dirty blocks to the log.
func (f *File) Sync() error {
	if f.closed {
		return vfs.ErrFileClosed
	}
	return f.fs.FlushFile(vfs.FileID(f.in.ino))
}

// ReadAt implements vfs.File.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, vfs.ErrFileClosed
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.maybeFlushOrphansLocked(); err != nil {
		return 0, err
	}
	return f.fs.readAtLocked(f.in, p, off)
}

// WriteAt implements vfs.File.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, vfs.ErrFileClosed
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.maybeFlushOrphansLocked(); err != nil {
		return 0, err
	}
	return f.fs.writeAtLocked(f.in, p, off)
}

// Truncate implements vfs.File.
func (f *File) Truncate(size int64) error {
	if f.closed {
		return vfs.ErrFileClosed
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return f.fs.truncateLocked(f.in, size)
}

// TxnProtected reports whether the file carries the transaction-protection
// attribute (§4: "transaction-protection is considered to be an attribute of
// a file").
func (f *File) TxnProtected() bool {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return f.in.txnProtected()
}

// GetPage pins the buffer for logical block lbn, fetching it if absent. The
// embedded transaction manager uses page handles directly to hold
// uncommitted pages in memory.
func (f *File) GetPage(lbn int64) (*buffer.Buf, error) {
	if f.closed {
		return nil, vfs.ErrFileClosed
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return f.fs.pool.Get(buffer.BlockID{File: vfs.FileID(f.in.ino), Block: lbn}, f.fs.fetchBlock)
}

// readAtLocked reads up to len(p) bytes at off, bounded by the file size.
func (fs *FS) readAtLocked(in *inode, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("lfs: negative offset %d", off)
	}
	if off >= in.size {
		return 0, nil
	}
	if max := in.size - off; int64(len(p)) > max {
		p = p[:max]
	}
	bs := int64(fs.blockSize)
	n := 0
	for n < len(p) {
		lbn := (off + int64(n)) / bs
		bo := (off + int64(n)) % bs
		want := len(p) - n
		if avail := int(bs - bo); want > avail {
			want = avail
		}
		b, err := fs.pool.Get(buffer.BlockID{File: vfs.FileID(in.ino), Block: lbn}, fs.fetchBlock)
		if err != nil {
			return n, err
		}
		copy(p[n:n+want], b.Data[bo:])
		fs.pool.Release(b)
		n += want
	}
	return n, nil
}

// writeAtLocked writes p at off, extending the file as needed.
func (fs *FS) writeAtLocked(in *inode, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("lfs: negative offset %d", off)
	}
	if end := off + int64(len(p)); end > maxLBN(fs.blockSize)*int64(fs.blockSize) {
		return 0, ErrFileTooLarge
	}
	bs := int64(fs.blockSize)
	n := 0
	for n < len(p) {
		lbn := (off + int64(n)) / bs
		bo := (off + int64(n)) % bs
		want := len(p) - n
		if avail := int(bs - bo); want > avail {
			want = avail
		}
		// A whole-block overwrite needn't fetch the old contents.
		var fetch buffer.Fetch
		if !(bo == 0 && want == int(bs)) {
			fetch = fs.fetchBlock
		}
		b, err := fs.pool.Get(buffer.BlockID{File: vfs.FileID(in.ino), Block: lbn}, fetch)
		if err != nil {
			return n, err
		}
		copy(b.Data[bo:], p[n:n+want])
		fs.pool.MarkDirty(b)
		fs.pool.Release(b)
		n += want
	}
	if end := off + int64(len(p)); end > in.size {
		in.size = end
		in.dirty = true
	}
	in.mtime = int64(fs.clock.Now())
	in.dirty = true
	return n, nil
}

// truncateLocked sets the file size, freeing blocks beyond the new end.
func (fs *FS) truncateLocked(in *inode, size int64) error {
	if size < 0 {
		return fmt.Errorf("lfs: negative truncate size %d", size)
	}
	if size >= in.size {
		in.size = size
		in.dirty = true
		return nil
	}
	bs := int64(fs.blockSize)
	firstDead := (size + bs - 1) / bs
	lastLBN := (in.size - 1) / bs
	for lbn := firstDead; lbn <= lastLBN; lbn++ {
		addr, err := fs.blockAddr(in, lbn)
		if err != nil {
			return err
		}
		if addr != 0 {
			if _, err := fs.setBlockAddr(in, lbn, 0); err != nil {
				return err
			}
			fs.accountOld(addr)
		}
		_ = fs.pool.Invalidate(buffer.BlockID{File: vfs.FileID(in.ino), Block: lbn})
		delete(fs.orphans, buffer.BlockID{File: vfs.FileID(in.ino), Block: lbn})
	}
	// Zero the tail of the last surviving block so re-extension reads zeros.
	if size%bs != 0 {
		lbn := size / bs
		id := buffer.BlockID{File: vfs.FileID(in.ino), Block: lbn}
		b, err := fs.pool.Get(id, fs.fetchBlock)
		if err != nil {
			return err
		}
		for i := size % bs; i < bs; i++ {
			b.Data[i] = 0
		}
		fs.pool.MarkDirty(b)
		fs.pool.Release(b)
	}
	in.size = size
	in.dirty = true
	return nil
}

// freeFileBlocksLocked releases every block of a file (for Remove).
func (fs *FS) freeFileBlocksLocked(in *inode) error {
	return fs.forEachBlock(in, func(kind blockKind, index, addr int64) error {
		fs.accountOld(addr)
		return nil
	})
}
