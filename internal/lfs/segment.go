package lfs

import (
	"fmt"
	"sort"

	"repro/internal/buffer"
	"repro/internal/detsort"
)

// dataItem is one dirty file block awaiting a log address.
type dataItem struct {
	id   buffer.BlockID
	buf  *buffer.Buf // resident buffer, or nil if the bytes came from the orphan table
	data []byte
}

// flushLocked writes dirty state to the log as one or more partial segments.
// If only is non-nil, just the listed files (plus pending deletion records)
// are written — the commit-force path. When deferPtr is set (commit forces),
// dirty indirect-pointer blocks stay in memory: the partial segment's
// summary records every data block's (inode, logical block) pair, so
// roll-forward can reconstruct the pointers after a crash — the same trick
// that lets real LFS implementations keep fsync cheap. Full flushes
// (deferPtr false) write the pointer blocks out. Caller holds fs.mu.
func (fs *FS) flushLocked(only map[Ino]bool, deferPtr bool, includeHeld bool) error {
	if !fs.cleaning && fs.free < int64(fs.opts.CleanThreshold) {
		if err := fs.cleanLocked(); err != nil {
			return err
		}
	}

	items, files, err := fs.gatherLocked(only, deferPtr, includeHeld)
	if err != nil {
		return err
	}
	if len(items) == 0 && len(files) == 0 && len(fs.pendingDel) == 0 {
		return nil
	}

	// Partition work into partial segments: at most maxFilesPerPartial
	// files and a data-block budget that, together with the worst-case
	// meta-data estimate, fits a segment. When the batch needs more than
	// one partial, all but the last are flagged sumFlagCont so recovery
	// applies the batch atomically — a commit force's pages must never be
	// half-visible after a crash.
	lastCleanFree := int64(-1)
	defer func() { fs.chainCont = false }()
	for len(items) > 0 || len(files) > 0 {
		// A long flush can consume segments faster than the entry check
		// anticipated; re-invoke the cleaner mid-flush when the free pool
		// runs low. Guard against a no-progress loop: only retry cleaning
		// once the free count has changed since the last attempt.
		if !fs.cleaning && fs.free < int64(fs.opts.CleanThreshold) && fs.free != lastCleanFree {
			lastCleanFree = fs.free
			if err := fs.cleanLocked(); err != nil {
				return err
			}
			if fs.free != lastCleanFree {
				lastCleanFree = -1 // progress: cleaning may be retried
			}
			items, files, err = fs.gatherLocked(only, deferPtr, includeHeld)
			if err != nil {
				return err
			}
			continue
		}
		chunk, chunkFiles, err := fs.takeChunk(&items, &files, deferPtr)
		if err != nil {
			return err
		}
		// Deletion records are not part of the atomic batch (any flush
		// drains them opportunistically), so only remaining data/meta
		// work keeps the chain open.
		fs.chainCont = len(items) > 0 || len(files) > 0
		if err := fs.writePartialLocked(chunk, chunkFiles, deferPtr, 0); err != nil {
			return err
		}
	}
	fs.chainCont = false
	// Deletion records with no accompanying blocks still need logging.
	if len(fs.pendingDel) > 0 {
		if err := fs.writePartialLocked(nil, nil, deferPtr, 0); err != nil {
			return err
		}
	}
	// Periodic checkpoint: bound the roll-forward chain a crash would
	// have to replay. The checkpoint itself is flushless (the imap always
	// describes flushed state).
	if fs.seq-fs.cpBound >= uint64(fs.opts.CheckpointEvery) {
		return fs.writeCheckpointLocked()
	}
	return nil
}

// gatherLocked collects the dirty data blocks (pool + orphans) and the set
// of files whose meta-data needs rewriting. includeHeld is the group-commit
// path: the committing transactions' pages are still on hold (the hold is
// released only after the log write succeeds, so the cleaner can never write
// uncommitted contents on the commit's behalf), and this flush is the one
// place they may — must — be written.
func (fs *FS) gatherLocked(only map[Ino]bool, deferPtr bool, includeHeld bool) ([]dataItem, []Ino, error) {
	want := func(ino Ino) bool { return only == nil || only[ino] }

	var items []dataItem
	heldIDs := make(map[buffer.BlockID]bool)
	for _, b := range fs.pool.Dirty() {
		if !want(Ino(b.ID.File)) {
			continue
		}
		items = append(items, dataItem{id: b.ID, buf: b, data: b.Data})
	}
	if includeHeld && only != nil {
		for _, ino := range detsort.Keys(only) {
			for _, b := range fs.pool.HeldFile(buffer.FileID(ino)) {
				if b.Dirty() {
					items = append(items, dataItem{id: b.ID, buf: b, data: b.Data})
					heldIDs[b.ID] = true
				}
			}
		}
	}
	//simlint:ordered items are fully sorted by (file, block) below; orphan deletes are keyed by the loop variable
	for id, data := range fs.orphans {
		if !want(Ino(id.File)) {
			continue
		}
		if heldIDs[id] {
			// The commit's after-image of this block is being written in
			// the same batch; the staged (older) copy is superseded.
			delete(fs.orphans, id)
			continue
		}
		if fs.pool.Lookup(id) != nil {
			// A resident buffer shadows the orphan; if it is dirty it was
			// collected above, if clean the contents are identical and the
			// orphan copy is redundant — but the orphan may be a cleaner
			// relocation whose bytes must reach a new address, so keep it
			// unless a dirty buffer already carries the block.
			if b := fs.pool.Lookup(id); b.Dirty() && !b.Held() {
				delete(fs.orphans, id)
				continue
			}
		}
		items = append(items, dataItem{id: id, data: data})
	}
	// Deterministic order: by file, then logical block.
	sort.Slice(items, func(i, j int) bool {
		if items[i].id.File != items[j].id.File {
			return items[i].id.File < items[j].id.File
		}
		return items[i].id.Block < items[j].id.Block
	})

	fileSet := make(map[Ino]bool)
	for _, it := range items {
		fileSet[Ino(it.id.File)] = true
	}
	// Files with dirty meta-data but no dirty data blocks.
	for ino, in := range fs.inodes {
		if !want(ino) || fileSet[ino] {
			continue
		}
		if deferPtr {
			if in.dirty {
				fileSet[ino] = true
			}
		} else if fs.inodeMetaDirty(in) {
			fileSet[ino] = true
		}
	}
	var metaOnly []Ino
	for _, ino := range detsort.Keys(fileSet) {
		found := false
		for _, it := range items {
			if Ino(it.id.File) == ino {
				found = true
				break
			}
		}
		if !found {
			metaOnly = append(metaOnly, ino)
		}
	}
	return items, metaOnly, nil
}

// gatherRelocLocked builds a scoped work list for the cleaner: exactly the
// relocated blocks (preferring a dirty, unheld pool version over the
// relocated on-disk image, since it supersedes it) plus the meta-data of the
// affected files. Scoping matters: the cleaner runs when segments are
// scarce, so its flushes must not drag the entire dirty pool along.
func (fs *FS) gatherRelocLocked(ids map[buffer.BlockID]bool, inos map[Ino]bool) ([]dataItem, []Ino) {
	// Sorted by (file, block), so items needs no further ordering.
	var items []dataItem
	for _, id := range detsort.KeysFunc(ids, buffer.CompareBlockID) {
		if b := fs.pool.Lookup(id); b != nil && b.Dirty() && !b.Held() {
			delete(fs.orphans, id)
			items = append(items, dataItem{id: id, buf: b, data: b.Data})
			continue
		}
		if data, ok := fs.orphans[id]; ok {
			items = append(items, dataItem{id: id, data: data})
		}
	}
	fileSet := make(map[Ino]bool, len(inos))
	for ino := range inos {
		fileSet[ino] = true
	}
	for _, it := range items {
		delete(fileSet, Ino(it.id.File))
	}
	var metaOnly []Ino
	for _, ino := range detsort.Keys(fileSet) {
		metaOnly = append(metaOnly, ino)
	}
	return items, metaOnly
}

// flushRelocLocked writes the cleaner's scoped work list. Cleaning is in
// progress, so no further cleaning is triggered; segment advances may dig
// into the reserve the CleanThreshold maintains. ageStamp (non-zero) carries
// the age of the relocated blocks into the output partials so the receiving
// segment inherits their coldness.
func (fs *FS) flushRelocLocked(ids map[buffer.BlockID]bool, inos map[Ino]bool, ageStamp uint64) error {
	items, files := fs.gatherRelocLocked(ids, inos)
	for len(items) > 0 || len(files) > 0 {
		chunk, chunkFiles, err := fs.takeChunk(&items, &files, false)
		if err != nil {
			return err
		}
		if err := fs.writePartialLocked(chunk, chunkFiles, false, ageStamp); err != nil {
			return err
		}
	}
	return nil
}

// inodeMetaDirty reports whether an inode or any of its cached pointer
// blocks needs rewriting.
func (fs *FS) inodeMetaDirty(in *inode) bool {
	if in.dirty {
		return true
	}
	if in.ind != nil && in.ind.dirty {
		return true
	}
	if in.dind != nil && in.dind.dirty {
		return true
	}
	//simlint:ordered pure existence predicate: any iteration order yields the same answer
	for _, c := range in.dchild {
		if c.dirty {
			return true
		}
	}
	return false
}

// metaCostLocked returns the exact number of indirect-pointer blocks that
// flushing the given logical blocks of a file will write, including pointer
// blocks that are already dirty from earlier operations. The shared inode
// pack block is accounted separately by the caller.
func (fs *FS) metaCostLocked(in *inode, lbns []int64) int {
	np := nptr(fs.blockSize)
	needInd := in.ind != nil && in.ind.dirty
	needDind := in.dind != nil && in.dind.dirty
	slots := map[int64]bool{}
	for slot, c := range in.dchild {
		if c.dirty {
			slots[slot] = true
		}
	}
	for _, lbn := range lbns {
		switch {
		case lbn < NDirect:
		case lbn < NDirect+np:
			needInd = true
		default:
			slots[(lbn-NDirect-np)/np] = true
			needDind = true
		}
	}
	cost := len(slots)
	if needInd {
		cost++
	}
	if needDind {
		cost++
	}
	return cost
}

// partialCostLocked computes the exact block count of a partial segment
// carrying the given data items and meta-only files: summary + data +
// pointer blocks + inode pack blocks.
func (fs *FS) partialCostLocked(perFile map[Ino][]int64, deferPtr bool) (int, error) {
	total := 1 // summary
	for _, ino := range detsort.Keys(perFile) {
		in, err := fs.loadInode(ino)
		if err != nil {
			return 0, err
		}
		total += len(perFile[ino])
		if !deferPtr {
			total += fs.metaCostLocked(in, perFile[ino])
		}
	}
	packCap := maxInodesPerPack(fs.blockSize)
	total += (len(perFile) + packCap - 1) / packCap
	return total, nil
}

// takeChunk removes up to one partial segment's worth of work from items and
// files, using exact cost accounting so the assembled partial can never
// outgrow a segment.
func (fs *FS) takeChunk(items *[]dataItem, files *[]Ino, deferPtr bool) ([]dataItem, []Ino, error) {
	segBlocks := int(fs.sb.SegmentBlocks)
	budget := segBlocks - minSegmentTail
	if cap := maxSummaryEntries(fs.blockSize) - 16; budget > cap {
		budget = cap
	}

	perFile := map[Ino][]int64{}
	var chunk []dataItem
	i := 0
	for ; i < len(*items); i++ {
		it := (*items)[i]
		ino := Ino(it.id.File)
		if len(chunk) >= maxDataPerPartial {
			break
		}
		if _, ok := perFile[ino]; !ok && len(perFile) >= maxFilesPerPartial {
			break
		}
		perFile[ino] = append(perFile[ino], it.id.Block)
		cost, err := fs.partialCostLocked(perFile, deferPtr)
		if err != nil {
			return nil, nil, err
		}
		if cost > budget && len(chunk) > 0 {
			// Undo the tentative addition and stop.
			perFile[ino] = perFile[ino][:len(perFile[ino])-1]
			if len(perFile[ino]) == 0 {
				delete(perFile, ino)
			}
			break
		}
		chunk = append(chunk, it)
	}
	*items = (*items)[i:]

	var chunkFiles []Ino
	for len(*files) > 0 {
		ino := (*files)[0]
		_, present := perFile[ino]
		if !present && len(perFile) >= maxFilesPerPartial {
			break
		}
		if !present {
			perFile[ino] = []int64{}
		}
		cost, err := fs.partialCostLocked(perFile, deferPtr)
		if err != nil {
			return nil, nil, err
		}
		if cost > budget && (len(chunk) > 0 || len(chunkFiles) > 0) {
			if !present {
				delete(perFile, ino)
			}
			break
		}
		*files = (*files)[1:]
		chunkFiles = append(chunkFiles, ino)
	}
	return chunk, chunkFiles, nil
}

// writePartialLocked emits one partial segment: a summary block followed by
// the chunk's data blocks, then the affected pointer blocks and inodes (in
// dependency order), then logs pending deletions in the summary. ageStamp 0
// means "fresh data" (stamped with the current sequence number); the cleaner
// passes the age of the blocks it relocates.
func (fs *FS) writePartialLocked(chunk []dataItem, metaOnly []Ino, deferPtr bool, ageStamp uint64) error {
	fileSet := map[Ino]bool{}
	perFile := map[Ino][]int64{}
	for _, it := range chunk {
		fileSet[Ino(it.id.File)] = true
		perFile[Ino(it.id.File)] = append(perFile[Ino(it.id.File)], it.id.Block)
	}
	for _, ino := range metaOnly {
		fileSet[ino] = true
		if _, ok := perFile[ino]; !ok {
			perFile[ino] = []int64{}
		}
	}
	cost, err := fs.partialCostLocked(perFile, deferPtr)
	if err != nil {
		return err
	}
	required := int64(cost)
	if required > fs.sb.SegmentBlocks {
		return fmt.Errorf("lfs: partial segment of %d blocks exceeds segment size %d", required, fs.sb.SegmentBlocks)
	}
	if fs.sb.SegmentBlocks-fs.curOff < required {
		if err := fs.advanceSegmentLocked(); err != nil {
			return err
		}
	}

	base := fs.segBase(fs.curSeg) + fs.curOff
	blocks := make([][]byte, 1, required) // slot 0 = summary, filled last
	var entries []summaryEntry
	next := func() int64 { return base + int64(len(blocks)) }

	// 1. Data blocks.
	for _, it := range chunk {
		in, err := fs.loadInode(Ino(it.id.File))
		if err != nil {
			return fmt.Errorf("lfs: flush of block %v: %w", it.id, err)
		}
		addr := next()
		old, err := fs.setBlockAddr(in, it.id.Block, addr)
		if err != nil {
			return err
		}
		fs.accountOld(old)
		fs.accountNew(addr)
		blocks = append(blocks, it.data)
		entries = append(entries, summaryEntry{Ino: in.ino, Kind: kindData, Index: it.id.Block})
	}

	// 2. Meta-data blocks per file, in dependency order: double-indirect
	// children first (their addresses go into the double indirect block),
	// then the single and double indirect blocks (addresses go into the
	// inode), then the inode itself (address goes into the imap).
	var packed []*inode
	for _, ino := range detsort.Keys(fileSet) {
		in, err := fs.loadInode(ino)
		if err != nil {
			return err
		}
		if deferPtr {
			// Commit fast path: indirect-pointer blocks stay dirty in
			// memory; the summary's data entries carry enough for
			// roll-forward to rebuild them after a crash.
			packed = append(packed, in)
			continue
		}
		for _, slot := range detsort.Keys(in.dchild) {
			c := in.dchild[slot]
			if !c.dirty {
				continue
			}
			dind, err := fs.loadDInd(in)
			if err != nil {
				return err
			}
			addr := next()
			fs.accountOld(c.addr)
			fs.accountNew(addr)
			c.addr = addr
			c.dirty = false
			dind.ptrs[slot] = addr
			dind.dirty = true
			blocks = append(blocks, c.encode(fs.blockSize))
			entries = append(entries, summaryEntry{Ino: ino, Kind: kindDChild, Index: slot})
		}
		if in.ind != nil && in.ind.dirty {
			addr := next()
			fs.accountOld(in.ind.addr)
			fs.accountNew(addr)
			in.ind.addr = addr
			in.ind.dirty = false
			in.indAddr = addr
			in.dirty = true
			blocks = append(blocks, in.ind.encode(fs.blockSize))
			entries = append(entries, summaryEntry{Ino: ino, Kind: kindInd})
		}
		if in.dind != nil && in.dind.dirty {
			addr := next()
			fs.accountOld(in.dind.addr)
			fs.accountNew(addr)
			in.dind.addr = addr
			in.dind.dirty = false
			in.dindAddr = addr
			in.dirty = true
			blocks = append(blocks, in.dind.encode(fs.blockSize))
			entries = append(entries, summaryEntry{Ino: ino, Kind: kindDInd})
		}
		// The inode is rewritten whenever anything about the file changed
		// (LFS writes the inode in the same partial segment as its data,
		// which is what makes roll-forward recovery possible). All inodes
		// of this partial segment share pack blocks, emitted below.
		packed = append(packed, in)
	}

	// Emit the inode pack block(s): one block per maxInodesPerPack inodes.
	for lo := 0; lo < len(packed); lo += maxInodesPerPack(fs.blockSize) {
		hi := lo + maxInodesPerPack(fs.blockSize)
		if hi > len(packed) {
			hi = len(packed)
		}
		group := packed[lo:hi]
		addr := next()
		for _, in := range group {
			fs.decPackRef(fs.imap[in.ino])
			fs.imap[in.ino] = addr
			in.dirty = false
		}
		fs.packRefs[addr] = len(group)
		fs.accountNew(addr)
		blocks = append(blocks, encodeInodePack(fs.blockSize, group))
		entries = append(entries, summaryEntry{Kind: kindInodePack, Index: int64(len(group))})
	}

	// 3. Deletion records (no blocks; capacity permitting).
	for len(fs.pendingDel) > 0 && len(entries) < maxSummaryEntries(fs.blockSize) {
		ino := fs.pendingDel[0]
		fs.pendingDel = fs.pendingDel[1:]
		entries = append(entries, summaryEntry{Ino: ino, Kind: kindDelete})
	}

	// 4. Summary block, then one sequential device write.
	if ageStamp == 0 {
		ageStamp = fs.seq
	}
	var flags uint32
	if fs.chainCont {
		flags = sumFlagCont
	}
	sum := summary{
		Seq:        fs.seq,
		SelfAddr:   base,
		NextSeg:    fs.nextSeg,
		NBlocks:    len(blocks) - 1,
		AgeStamp:   ageStamp,
		PayloadCRC: payloadChecksum(blocks[1:]),
		Flags:      flags,
		Entries:    entries,
	}
	enc, err := sum.encode(fs.blockSize)
	if err != nil {
		return err
	}
	blocks[0] = enc
	// Hard invariant: a partial segment must never cross the segment
	// boundary (it would clobber the neighbouring segment's summaries).
	if fs.curOff+int64(len(blocks)) > fs.sb.SegmentBlocks {
		return fmt.Errorf("lfs: internal error: partial segment (%d blocks at offset %d) overflows segment of %d blocks",
			len(blocks), fs.curOff, fs.sb.SegmentBlocks)
	}
	if err := fs.dev.WriteRun(base, blocks); err != nil {
		return err
	}
	fs.segs[fs.curSeg].SeqStamp = fs.seq
	if ageStamp > fs.segs[fs.curSeg].AgeStamp {
		fs.segs[fs.curSeg].AgeStamp = ageStamp
	}
	// Maintain the summary cache, but only where it is complete: a fresh
	// entry when this partial starts the segment, an append when the cache
	// already covers everything before it. (After a mount the current
	// segment may have pre-existing partials we never saw; its cache entry
	// stays absent and the cleaner falls back to the disk walk.)
	if fs.curOff == 0 {
		fs.sumCache[fs.curSeg] = []summary{sum}
	} else if sums, ok := fs.sumCache[fs.curSeg]; ok {
		fs.sumCache[fs.curSeg] = append(sums, sum)
	}
	fs.seq++
	fs.curOff += int64(len(blocks))
	fs.stats.PartialSegments++
	fs.stats.BlocksLogged += int64(len(blocks))
	fs.stats.SummaryBlocks++

	// 5. The written blocks are now clean/persisted.
	for _, it := range chunk {
		if it.buf != nil {
			fs.pool.MarkClean(it.buf)
		}
		delete(fs.orphans, it.id)
	}

	if fs.sb.SegmentBlocks-fs.curOff < minSegmentTail {
		return fs.advanceSegmentLocked()
	}
	return nil
}

// advanceSegmentLocked seals the current segment and moves the log head to
// the pre-allocated next segment, reserving a new successor.
func (fs *FS) advanceSegmentLocked() error {
	fs.segs[fs.curSeg].State = segInLog
	fs.curSeg = fs.nextSeg
	fs.curOff = 0
	fs.segs[fs.curSeg].State = segCurrent
	ns, err := fs.pickFreeLocked()
	if err != nil {
		// Desperation: try to reclaim dead segments without copying.
		if ferr := fs.freeDeadSegmentsLocked(); ferr == nil {
			ns, err = fs.pickFreeLocked()
		}
		if err != nil {
			return err
		}
	}
	fs.nextSeg = ns
	fs.segs[ns].State = segReserved
	fs.free--
	return nil
}

// pickFreeLocked returns the lowest-numbered clean segment.
func (fs *FS) pickFreeLocked() (int64, error) {
	for s := int64(0); s < fs.sb.NumSegments; s++ {
		if fs.segs[s].State == segFree {
			return s, nil
		}
	}
	return 0, ErrNoSpace
}

// freeDeadSegmentsLocked returns fully-dead, checkpoint-safe segments to the
// free pool without any copying.
func (fs *FS) freeDeadSegmentsLocked() error {
	n := 0
	for s := int64(0); s < fs.sb.NumSegments; s++ {
		if fs.segs[s].State == segInLog && fs.segs[s].Live == 0 && fs.segs[s].SeqStamp < fs.cpBound &&
			!fs.retainedLocked(s) {
			fs.segs[s].State = segFree
			fs.segs[s].AgeStamp = 0
			delete(fs.sumCache, s)
			fs.free++
			n++
		}
	}
	if n == 0 {
		return ErrNoSpace
	}
	return nil
}
