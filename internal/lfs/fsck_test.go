package lfs

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/vfs"
)

func TestFsckCleanImage(t *testing.T) {
	fs, _, _ := newFS(t)
	fs.Mkdir("/a")
	fs.Mkdir("/a/b")
	writeFile(t, fs, "/a/b/f", pattern(100000, 1))
	writeFile(t, fs, "/top", pattern(500, 2))
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	rep, err := fs.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean image reported problems: %v", rep.Problems)
	}
	if rep.Files != 2 || rep.Dirs != 3 { // root + a + b
		t.Fatalf("files=%d dirs=%d", rep.Files, rep.Dirs)
	}
	if rep.Blocks == 0 {
		t.Fatal("no blocks counted")
	}
}

func TestFsckAfterChurnAndCleaning(t *testing.T) {
	fs, _, _ := tinyFS(t)
	for round := 0; round < 15; round++ {
		f, err := fs.Open("/churn")
		if errors.Is(err, vfs.ErrNotExist) {
			f, err = fs.Create("/churn")
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(pattern(128*1024, byte(round)), 0); err != nil {
			t.Fatal(err)
		}
		f.Close()
		fs.Sync()
	}
	rep, err := fs.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("post-churn fsck problems: %v", rep.Problems)
	}
}

func TestFsckAfterCrashRecovery(t *testing.T) {
	fs, dev, clk := newFS(t)
	fs.Mkdir("/d")
	writeFile(t, fs, "/d/f", pattern(300*1024, 3))
	if err := fs.Flush(); err != nil { // no checkpoint: force roll-forward
		t.Fatal(err)
	}
	fs2, err := Mount(dev, clk, fs.opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fs2.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("post-recovery fsck problems: %v", rep.Problems)
	}
}

func TestFsckDetectsDanglingEntry(t *testing.T) {
	fs, _, _ := newFS(t)
	writeFile(t, fs, "/f", []byte("x"))
	// Corrupt in memory: remove the imap entry but keep the dir entry.
	fs.mu.Lock()
	in, _ := fs.lookupLocked("/f")
	delete(fs.imap, in.ino)
	delete(fs.inodes, in.ino)
	fs.mu.Unlock()
	rep, err := fs.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("fsck should flag the dangling directory entry")
	}
}

func TestFsckDetectsOrphanInode(t *testing.T) {
	fs, _, _ := newFS(t)
	writeFile(t, fs, "/f", []byte("x"))
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Corrupt: drop the directory entry but keep the imap entry.
	fs.mu.Lock()
	root, _ := fs.loadInode(RootIno)
	if err := fs.writeDirLocked(root, nil); err != nil {
		fs.mu.Unlock()
		t.Fatal(err)
	}
	fs.mu.Unlock()
	rep, err := fs.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OrphanInodes) != 1 {
		t.Fatalf("orphans = %v, want exactly one", rep.OrphanInodes)
	}
}

func TestFsckAtScale(t *testing.T) {
	fs, _, _ := newFS(t)
	fs.Mkdir("/tree")
	for i := 0; i < 80; i++ {
		writeFile(t, fs, fmt.Sprintf("/tree/f%02d", i), pattern(2000+i*37, byte(i)))
	}
	fs.Sync()
	rep, err := fs.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("problems: %v", rep.Problems)
	}
	if rep.Files != 80 {
		t.Fatalf("files = %d", rep.Files)
	}
}
