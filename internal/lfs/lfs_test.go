package lfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func newFS(t *testing.T) (*FS, *disk.Device, *sim.Clock) {
	t.Helper()
	clk := sim.NewClock()
	dev := disk.New(sim.SmallModel(), clk)
	fs, err := Format(dev, clk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fs, dev, clk
}

// tinyFS creates a small file system that fills quickly, for cleaner tests.
func tinyFS(t *testing.T) (*FS, *disk.Device, *sim.Clock) {
	t.Helper()
	clk := sim.NewClock()
	model := sim.SmallModel()
	model.NumBlocks = 2048 // 8 MB
	dev := disk.New(model, clk)
	fs, err := Format(dev, clk, Options{SegmentBlocks: 64, CheckpointBlocks: 32, CacheBlocks: 128})
	if err != nil {
		t.Fatal(err)
	}
	return fs, dev, clk
}

func writeFile(t *testing.T, fs vfs.FileSystem, path string, data []byte) {
	t.Helper()
	f, err := fs.Create(path)
	if err != nil {
		t.Fatalf("Create(%s): %v", path, err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("WriteAt(%s): %v", path, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func readFile(t *testing.T, fs vfs.FileSystem, path string) []byte {
	t.Helper()
	f, err := fs.Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil {
		t.Fatalf("ReadAt(%s): %v", path, err)
	}
	return data
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + seed
	}
	return b
}

func TestCreateWriteReadSmall(t *testing.T) {
	fs, _, _ := newFS(t)
	data := pattern(1000, 1)
	writeFile(t, fs, "/hello", data)
	if got := readFile(t, fs, "/hello"); !bytes.Equal(got, data) {
		t.Fatal("read back mismatch")
	}
}

func TestWriteSpanningBlocks(t *testing.T) {
	fs, _, _ := newFS(t)
	data := pattern(3*4096+123, 2)
	writeFile(t, fs, "/multi", data)
	if got := readFile(t, fs, "/multi"); !bytes.Equal(got, data) {
		t.Fatal("multi-block read back mismatch")
	}
}

func TestPartialBlockOverwrite(t *testing.T) {
	fs, _, _ := newFS(t)
	data := pattern(8192, 3)
	writeFile(t, fs, "/f", data)
	f, err := fs.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	patch := []byte("PATCHED")
	if _, err := f.WriteAt(patch, 4090); err != nil {
		t.Fatal(err)
	}
	f.Close()
	copy(data[4090:], patch)
	if got := readFile(t, fs, "/f"); !bytes.Equal(got, data) {
		t.Fatal("patched read back mismatch")
	}
}

func TestReadPastEOF(t *testing.T) {
	fs, _, _ := newFS(t)
	writeFile(t, fs, "/short", []byte("abc"))
	f, _ := fs.Open("/short")
	defer f.Close()
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if err != nil || n != 3 {
		t.Fatalf("ReadAt = %d,%v want 3,nil", n, err)
	}
	n, err = f.ReadAt(buf, 100)
	if err != nil || n != 0 {
		t.Fatalf("ReadAt past EOF = %d,%v want 0,nil", n, err)
	}
}

func TestSparseFileReadsZeros(t *testing.T) {
	fs, _, _ := newFS(t)
	f, err := fs.Create("/sparse")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("end"), 100000); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if _, err := f.ReadAt(buf, 50000); err != nil {
		t.Fatal(err)
	}
	for _, v := range buf {
		if v != 0 {
			t.Fatal("hole should read as zeros")
		}
	}
	f.Close()
}

func TestIndirectBlocks(t *testing.T) {
	fs, _, _ := newFS(t)
	// Past the direct range (12 × 4 KB = 48 KB).
	data := pattern(200*1024, 4)
	writeFile(t, fs, "/big", data)
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, fs, "/big"); !bytes.Equal(got, data) {
		t.Fatal("indirect-range read back mismatch")
	}
}

func TestDoubleIndirectBlocks(t *testing.T) {
	fs, _, _ := newFS(t)
	// Write sparsely past 12+512 blocks (≈ 2.05 MB) to hit the double
	// indirect path without filling the small disk.
	f, err := fs.Create("/huge")
	if err != nil {
		t.Fatal(err)
	}
	off := int64((NDirect + 512 + 100) * 4096)
	data := pattern(5000, 5)
	if _, err := f.WriteAt(data, off); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	f, _ = fs.Open("/huge")
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if !bytes.Equal(got, data) {
		t.Fatal("double-indirect read back mismatch")
	}
}

func TestTruncateShrinkAndGrow(t *testing.T) {
	fs, _, _ := newFS(t)
	data := pattern(10000, 6)
	writeFile(t, fs, "/t", data)
	f, _ := fs.Open("/t")
	if err := f.Truncate(5000); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 5000 {
		t.Fatalf("size after shrink = %d", sz)
	}
	if err := f.Truncate(8000); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3000)
	if _, err := f.ReadAt(buf, 5000); err != nil {
		t.Fatal(err)
	}
	for _, v := range buf {
		if v != 0 {
			t.Fatal("re-grown region must read as zeros")
		}
	}
	f.Close()
}

func TestDirectories(t *testing.T) {
	fs, _, _ := newFS(t)
	if err := fs.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/a/b"); err != nil {
		t.Fatal(err)
	}
	writeFile(t, fs, "/a/b/file1", []byte("one"))
	writeFile(t, fs, "/a/file2", []byte("two"))
	entries, err := fs.ReadDir("/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Name != "b" || entries[1].Name != "file2" {
		t.Fatalf("ReadDir(/a) = %+v", entries)
	}
	info, err := fs.Stat("/a/b")
	if err != nil || !info.IsDir {
		t.Fatalf("Stat(/a/b) = %+v, %v", info, err)
	}
	if got := readFile(t, fs, "/a/b/file1"); string(got) != "one" {
		t.Fatal("nested file content wrong")
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	fs, _, _ := newFS(t)
	writeFile(t, fs, "/dup", []byte("x"))
	if _, err := fs.Create("/dup"); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("got %v, want ErrExist", err)
	}
}

func TestOpenMissingFails(t *testing.T) {
	fs, _, _ := newFS(t)
	if _, err := fs.Open("/nope"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("got %v, want ErrNotExist", err)
	}
}

func TestRemove(t *testing.T) {
	fs, _, _ := newFS(t)
	writeFile(t, fs, "/gone", pattern(9000, 7))
	if err := fs.Remove("/gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/gone"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("got %v after remove", err)
	}
	// The name can be reused.
	writeFile(t, fs, "/gone", []byte("again"))
	if got := readFile(t, fs, "/gone"); string(got) != "again" {
		t.Fatal("recreated file content wrong")
	}
}

func TestRemoveOpenFileFails(t *testing.T) {
	fs, _, _ := newFS(t)
	writeFile(t, fs, "/busy", []byte("x"))
	f, _ := fs.Open("/busy")
	if err := fs.Remove("/busy"); err == nil {
		t.Fatal("removing an open file should fail")
	}
	f.Close()
	if err := fs.Remove("/busy"); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveNonEmptyDirFails(t *testing.T) {
	fs, _, _ := newFS(t)
	fs.Mkdir("/d")
	writeFile(t, fs, "/d/x", []byte("x"))
	if err := fs.Remove("/d"); !errors.Is(err, vfs.ErrNotEmpty) {
		t.Fatalf("got %v, want ErrNotEmpty", err)
	}
	fs.Remove("/d/x")
	if err := fs.Remove("/d"); err != nil {
		t.Fatal(err)
	}
}

func TestRename(t *testing.T) {
	fs, _, _ := newFS(t)
	fs.Mkdir("/src")
	fs.Mkdir("/dst")
	writeFile(t, fs, "/src/f", []byte("move me"))
	if err := fs.Rename("/src/f", "/dst/g"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/src/f"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("old path should be gone")
	}
	if got := readFile(t, fs, "/dst/g"); string(got) != "move me" {
		t.Fatal("renamed content wrong")
	}
}

func TestTxnProtectAttribute(t *testing.T) {
	fs, _, _ := newFS(t)
	writeFile(t, fs, "/db", []byte("x"))
	if err := fs.SetTxnProtected("/db", true); err != nil {
		t.Fatal(err)
	}
	info, _ := fs.Stat("/db")
	if !info.TxnProtected {
		t.Fatal("attribute should be set")
	}
	// Attribute survives a remount.
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs2 := remount(t, fs)
	info, _ = fs2.Stat("/db")
	if !info.TxnProtected {
		t.Fatal("attribute should persist")
	}
	if err := fs2.SetTxnProtected("/db", false); err != nil {
		t.Fatal(err)
	}
	info, _ = fs2.Stat("/db")
	if info.TxnProtected {
		t.Fatal("attribute should clear")
	}
}

// remount simulates a clean unmount/mount cycle on the same device.
func remount(t *testing.T, fs *FS) *FS {
	t.Helper()
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(fs.dev, fs.clock, fs.opts)
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	return fs2
}

func TestRemountPreservesData(t *testing.T) {
	fs, _, _ := newFS(t)
	data := pattern(100000, 8)
	fs.Mkdir("/dir")
	writeFile(t, fs, "/dir/f", data)
	fs2 := remount(t, fs)
	if got := readFile(t, fs2, "/dir/f"); !bytes.Equal(got, data) {
		t.Fatal("data lost across remount")
	}
	entries, err := fs2.ReadDir("/")
	if err != nil || len(entries) != 1 || entries[0].Name != "dir" {
		t.Fatalf("root listing after remount = %+v, %v", entries, err)
	}
}

func TestCrashRecoveryRollForward(t *testing.T) {
	fs, dev, clk := newFS(t)
	writeFile(t, fs, "/pre", []byte("before checkpoint"))
	if err := fs.Sync(); err != nil { // checkpoint
		t.Fatal(err)
	}
	// Write more data, flush to the log, but do NOT checkpoint.
	writeFile(t, fs, "/post", pattern(20000, 9))
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	// Crash: abandon the in-memory state entirely, remount from disk.
	fs2, err := Mount(dev, clk, fs.opts)
	if err != nil {
		t.Fatalf("Mount after crash: %v", err)
	}
	if got := readFile(t, fs2, "/pre"); string(got) != "before checkpoint" {
		t.Fatal("pre-checkpoint data lost")
	}
	if got := readFile(t, fs2, "/post"); !bytes.Equal(got, pattern(20000, 9)) {
		t.Fatal("roll-forward failed to recover post-checkpoint data")
	}
}

func TestCrashRecoveryDeletion(t *testing.T) {
	fs, dev, clk := newFS(t)
	writeFile(t, fs, "/doomed", []byte("delete me"))
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/doomed"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Flush(); err != nil { // logs the deletion record, no checkpoint
		t.Fatal(err)
	}
	fs2, err := Mount(dev, clk, fs.opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs2.Stat("/doomed"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("deletion not recovered: %v", err)
	}
}

func TestCrashLosesUnflushedOnly(t *testing.T) {
	fs, dev, clk := newFS(t)
	writeFile(t, fs, "/durable", []byte("safe"))
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	writeFile(t, fs, "/volatile", []byte("lost")) // never flushed
	fs2, err := Mount(dev, clk, fs.opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, fs2, "/durable"); string(got) != "safe" {
		t.Fatal("flushed data must survive")
	}
	if _, err := fs2.Stat("/volatile"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("unflushed create should be lost, got %v", err)
	}
}

// TestNoOverwriteBeforeImage verifies the property the embedded transaction
// manager depends on (§2): after modifying a block in the cache and flushing,
// the previous version still exists at its old disk address.
func TestNoOverwriteBeforeImage(t *testing.T) {
	fs, dev, _ := newFS(t)
	writeFile(t, fs, "/f", pattern(4096, 10))
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	fs.mu.Lock()
	in, _ := fs.loadInode(fs.mustIno(t, "/f"))
	oldAddr, _ := fs.blockAddr(in, 0)
	fs.mu.Unlock()
	if oldAddr == 0 {
		t.Fatal("block should be on disk")
	}
	// Overwrite and flush: LFS must write a NEW address.
	f, _ := fs.Open("/f")
	f.WriteAt(pattern(4096, 11), 0)
	f.Close()
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	fs.mu.Lock()
	newAddr, _ := fs.blockAddr(in, 0)
	fs.mu.Unlock()
	if newAddr == oldAddr {
		t.Fatal("LFS must not overwrite in place")
	}
	old, err := dev.Peek(oldAddr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(old, pattern(4096, 10)) {
		t.Fatal("before-image should survive at the old address")
	}
}

// mustIno resolves a path to its inode number (test helper; caller holds mu).
func (fs *FS) mustIno(t *testing.T, path string) Ino {
	t.Helper()
	in, err := fs.lookupLocked(path)
	if err != nil {
		t.Fatal(err)
	}
	return in.ino
}

func TestSegmentWritesAreSequential(t *testing.T) {
	fs, dev, _ := newFS(t)
	dev.ResetStats()
	data := pattern(256*1024, 12)
	writeFile(t, fs, "/seq", data)
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	st := dev.Stats()
	// 64 data blocks + metadata, written in a handful of runs: the number
	// of write operations (runs) must be far below the block count.
	if st.Writes > st.BlocksWrit/4 {
		t.Fatalf("expected batched writes: %d ops for %d blocks", st.Writes, st.BlocksWrit)
	}
}

func TestCleanerReclaimsSegments(t *testing.T) {
	fs, _, _ := tinyFS(t)
	// Fill a good chunk of the disk, then overwrite it all to make the
	// earlier segments dead.
	for round := 0; round < 3; round++ {
		f, err := fs.Open("/churn")
		if errors.Is(err, vfs.ErrNotExist) {
			f, err = fs.Create("/churn")
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(pattern(64*4096, byte(13+round)), 0); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	before := fs.FreeSegments()
	cleaned, err := fs.CleanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !cleaned {
		t.Fatal("there should be a cleanable segment")
	}
	if fs.FreeSegments() <= before {
		t.Fatalf("free segments %d should exceed %d after cleaning", fs.FreeSegments(), before)
	}
	// Data must survive cleaning.
	if got := readFile(t, fs, "/churn"); !bytes.Equal(got, pattern(64*4096, 15)) {
		t.Fatal("cleaner corrupted live data")
	}
	st := fs.Stats()
	if st.Cleaner.SegmentsCleaned == 0 {
		t.Fatal("cleaner stats not recorded")
	}
}

func TestCleanerTriggersUnderPressure(t *testing.T) {
	fs, _, _ := tinyFS(t)
	// Keep rewriting one file; the log would exhaust the disk without the
	// cleaner reclaiming dead segments.
	data := pattern(128*1024, 20)
	for round := 0; round < 30; round++ {
		f, err := fs.Open("/wheel")
		if errors.Is(err, vfs.ErrNotExist) {
			f, err = fs.Create("/wheel")
		}
		if err != nil {
			t.Fatal(err)
		}
		data[0] = byte(round)
		if _, err := f.WriteAt(data, 0); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		f.Close()
		if err := fs.Sync(); err != nil {
			t.Fatalf("round %d sync: %v", round, err)
		}
	}
	st := fs.Stats()
	if st.Cleaner.SegmentsCleaned == 0 {
		t.Fatal("cleaner should have run under log pressure")
	}
	want := pattern(128*1024, 20)
	want[0] = 29
	if got := readFile(t, fs, "/wheel"); !bytes.Equal(got, want) {
		t.Fatal("data corrupted under cleaning pressure")
	}
}

func TestCleanerPoliciesBothWork(t *testing.T) {
	for _, policy := range []CleanerPolicy{Greedy, CostBenefit} {
		t.Run(policy.String(), func(t *testing.T) {
			clk := sim.NewClock()
			model := sim.SmallModel()
			model.NumBlocks = 2048
			dev := disk.New(model, clk)
			fs, err := Format(dev, clk, Options{SegmentBlocks: 64, CheckpointBlocks: 32, CacheBlocks: 128, Policy: policy})
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 20; round++ {
				f, err := fs.Open("/f")
				if errors.Is(err, vfs.ErrNotExist) {
					f, err = fs.Create("/f")
				}
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.WriteAt(pattern(100*1024, byte(round)), 0); err != nil {
					t.Fatal(err)
				}
				f.Close()
				if err := fs.Sync(); err != nil {
					t.Fatal(err)
				}
			}
			if got := readFile(t, fs, "/f"); !bytes.Equal(got, pattern(100*1024, 19)) {
				t.Fatal("data corrupted")
			}
		})
	}
}

func TestRemountAfterCleaning(t *testing.T) {
	fs, _, _ := tinyFS(t)
	for round := 0; round < 10; round++ {
		f, err := fs.Open("/f")
		if errors.Is(err, vfs.ErrNotExist) {
			f, err = fs.Create("/f")
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(pattern(100*1024, byte(round)), 0); err != nil {
			t.Fatal(err)
		}
		f.Close()
		fs.Sync()
	}
	fs.CleanOnce()
	fs2 := remount(t, fs)
	if got := readFile(t, fs2, "/f"); !bytes.Equal(got, pattern(100*1024, 9)) {
		t.Fatal("data lost after cleaning + remount")
	}
}

func TestDiskFullReturnsError(t *testing.T) {
	fs, _, _ := tinyFS(t)
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		var f vfs.File
		f, err = fs.Create(fmt.Sprintf("/fill%d", i))
		if err != nil {
			break
		}
		_, err = f.WriteAt(pattern(256*1024, byte(i)), 0)
		f.Close()
		if err == nil {
			err = fs.Sync()
		}
	}
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("expected ErrNoSpace filling the disk, got %v", err)
	}
}

// Property test: a random sequence of writes at random offsets, interleaved
// with flushes and remounts, always reads back like an in-memory shadow copy.
func TestRandomWriteShadowProperty(t *testing.T) {
	fs, dev, clk := newFS(t)
	f, err := fs.Create("/shadow")
	if err != nil {
		t.Fatal(err)
	}
	const fileSize = 200 * 1024
	shadow := make([]byte, fileSize)
	rng := sim.NewRNG(77)

	check := func() error {
		got := make([]byte, fileSize)
		n, err := f.ReadAt(got, 0)
		if err != nil {
			return err
		}
		if !bytes.Equal(got[:n], shadow[:n]) {
			return errors.New("content diverged from shadow")
		}
		return nil
	}

	prop := func(seed uint16) bool {
		for i := 0; i < 20; i++ {
			off := rng.Int63n(fileSize - 1)
			length := 1 + rng.Intn(9000)
			if off+int64(length) > fileSize {
				length = int(fileSize - off)
			}
			data := pattern(length, byte(seed)+byte(i))
			if _, err := f.WriteAt(data, off); err != nil {
				return false
			}
			copy(shadow[off:], data)
		}
		if err := check(); err != nil {
			return false
		}
		if rng.Intn(2) == 0 {
			if err := fs.Sync(); err != nil {
				return false
			}
		}
		if rng.Intn(4) == 0 {
			// Clean unmount: flush, then mount fresh state from disk.
			if err := fs.Sync(); err != nil {
				return false
			}
			f.Close()
			fs2, err := Mount(dev, clk, fs.opts)
			if err != nil {
				return false
			}
			fs = fs2
			f, err = fs.Open("/shadow")
			if err != nil {
				return false
			}
		}
		return check() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	fs, _, _ := newFS(t)
	writeFile(t, fs, "/s", pattern(40000, 30))
	fs.Sync()
	st := fs.Stats()
	if st.PartialSegments == 0 || st.BlocksLogged == 0 || st.Checkpoints == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.SummaryBlocks != st.PartialSegments {
		t.Fatalf("one summary per partial segment: %+v", st)
	}
}

func TestManySmallFiles(t *testing.T) {
	fs, _, _ := newFS(t)
	if err := fs.Mkdir("/lots"); err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		writeFile(t, fs, fmt.Sprintf("/lots/f%03d", i), pattern(100+i, byte(i)))
	}
	fs2 := remount(t, fs)
	entries, err := fs2.ReadDir("/lots")
	if err != nil || len(entries) != n {
		t.Fatalf("ReadDir: %d entries, %v", len(entries), err)
	}
	for i := 0; i < n; i += 17 {
		got := readFile(t, fs2, fmt.Sprintf("/lots/f%03d", i))
		if !bytes.Equal(got, pattern(100+i, byte(i))) {
			t.Fatalf("file %d corrupted", i)
		}
	}
}

func TestMountRejectsGarbage(t *testing.T) {
	clk := sim.NewClock()
	dev := disk.New(sim.SmallModel(), clk)
	if _, err := Mount(dev, clk, Options{}); err == nil {
		t.Fatal("mounting an unformatted device should fail")
	}
}

// TestCoalesceRestoresSequentialLayout exercises the §5.3/§5.4 enhancement:
// after random updates scatter a file across the log, Coalesce rewrites it
// in logical order and sequential reads get fast again.
func TestCoalesceRestoresSequentialLayout(t *testing.T) {
	clk := sim.NewClock()
	model := sim.RZ55Model()
	model.NumBlocks = 16384 // 64 MB
	dev := disk.New(model, clk)
	fs, err := Format(dev, clk, Options{CacheBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	const blocks = 600
	data := pattern(blocks*4096, 1)
	writeFile(t, fs, "/db", data)
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}

	// Random single-block updates scatter the file.
	rng := sim.NewRNG(3)
	f, _ := fs.Open("/db")
	for i := 0; i < 400; i++ {
		lbn := rng.Int63n(blocks)
		patch := pattern(4096, byte(i))
		f.WriteAt(patch, lbn*4096)
		copy(data[lbn*4096:], patch)
		if i%25 == 0 {
			fs.Sync()
		}
	}
	f.Close()
	fs.Sync()

	scanTime := func() time.Duration {
		// Cold cache: remount.
		fs2, err := Mount(dev, clk, Options{CacheBlocks: 64})
		if err != nil {
			t.Fatal(err)
		}
		g, err := fs2.Open("/db")
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		start := clk.Now()
		buf := make([]byte, 64*1024)
		for off := int64(0); off < blocks*4096; off += int64(len(buf)) {
			if _, err := g.ReadAt(buf, off); err != nil {
				t.Fatal(err)
			}
		}
		return clk.Now() - start
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fragmented := scanTime()

	// Coalesce on a freshly mounted image, then re-measure.
	fs3, err := Mount(dev, clk, Options{CacheBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs3.Coalesce("/db"); err != nil {
		t.Fatal(err)
	}
	if err := fs3.Sync(); err != nil {
		t.Fatal(err)
	}
	coalesced := scanTime()

	if coalesced*2 > fragmented {
		t.Fatalf("coalescing should at least halve the scan time: %v → %v", fragmented, coalesced)
	}
	// Contents unchanged.
	fs4, err := Mount(dev, clk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, fs4, "/db"); !bytes.Equal(got, data) {
		t.Fatal("coalesce corrupted the file")
	}
}

func TestCoalesceRejectsDirectories(t *testing.T) {
	fs, _, _ := newFS(t)
	fs.Mkdir("/d")
	if err := fs.Coalesce("/d"); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("got %v, want ErrIsDir", err)
	}
}

func TestCoalesceEmptyAndMissing(t *testing.T) {
	fs, _, _ := newFS(t)
	writeFile(t, fs, "/empty", nil)
	if err := fs.Coalesce("/empty"); err != nil {
		t.Fatalf("empty file: %v", err)
	}
	if err := fs.Coalesce("/nope"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("got %v, want ErrNotExist", err)
	}
}

// TestOrphanPressureFlush: evicting more dirty blocks than a segment's worth
// (the staging-buffer bound) must trigger a flush on the next operation
// instead of letting the orphan table grow without limit.
func TestOrphanPressureFlush(t *testing.T) {
	clk := sim.NewClock()
	dev := disk.New(sim.SmallModel(), clk)
	// Tiny cache: every write evicts.
	fs, err := Format(dev, clk, Options{CacheBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("/spill")
	if err != nil {
		t.Fatal(err)
	}
	// Dirty far more blocks than the cache holds; evictions park them as
	// orphans until the staging bound (one segment = 128 blocks) trips.
	data := pattern(4096, 1)
	for i := int64(0); i < 400; i++ {
		data[0] = byte(i)
		if _, err := f.WriteAt(data, i*4096); err != nil {
			t.Fatal(err)
		}
	}
	fs.mu.Lock()
	orphans := len(fs.orphans)
	fs.mu.Unlock()
	if orphans > int(fs.sb.SegmentBlocks)+8 {
		t.Fatalf("orphan staging buffer grew to %d blocks (bound ~%d)", orphans, fs.sb.SegmentBlocks)
	}
	// Everything reads back correctly despite the churn.
	got := make([]byte, 4096)
	for i := int64(0); i < 400; i += 37 {
		if _, err := f.ReadAt(got, i*4096); err != nil {
			t.Fatal(err)
		}
		want := pattern(4096, 1)
		want[0] = byte(i)
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d corrupted", i)
		}
	}
	f.Close()
}

// TestPeriodicCheckpointBoundsRollForward: with CheckpointEvery small, long
// write streams checkpoint automatically.
func TestPeriodicCheckpointBoundsRollForward(t *testing.T) {
	clk := sim.NewClock()
	dev := disk.New(sim.SmallModel(), clk)
	fs, err := Format(dev, clk, Options{CheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	cp0 := fs.Stats().Checkpoints
	for i := 0; i < 30; i++ {
		writeFile(t, fs, fmt.Sprintf("/f%d", i), pattern(20000, byte(i)))
		if err := fs.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got := fs.Stats().Checkpoints; got <= cp0 {
		t.Fatalf("periodic checkpoints should have fired: %d → %d", cp0, got)
	}
	// And the chain stays recoverable.
	fs2, err := Mount(dev, clk, fs.opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, fs2, "/f29"); !bytes.Equal(got, pattern(20000, 29)) {
		t.Fatal("data lost")
	}
}

// TestIOFaultsPropagate injects device errors and verifies they surface
// through the file system API instead of being swallowed.
func TestIOFaultsPropagate(t *testing.T) {
	fs, dev, _ := newFS(t)
	writeFile(t, fs, "/f", pattern(40960, 1))
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("media error")

	// Read fault: drop the cache (remount keeps the device), then fail
	// all reads in the segment area.
	fs2 := remount(t, fs)
	dev.SetFault(func(op string, block int64) error {
		if op == "read" {
			return boom
		}
		return nil
	})
	f, err := fs2.Open("/f") // namei may read → tolerate either failure point
	if err == nil {
		buf := make([]byte, 4096)
		_, err = f.ReadAt(buf, 0)
		f.Close()
	}
	if !errors.Is(err, boom) {
		t.Fatalf("read fault not propagated: %v", err)
	}
	dev.SetFault(nil)

	// Write fault: all writes fail; a flush must report it.
	g, err := fs2.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteAt(pattern(4096, 9), 0); err != nil {
		t.Fatal(err)
	}
	dev.SetFault(func(op string, block int64) error {
		if op == "write" {
			return boom
		}
		return nil
	})
	if err := fs2.Flush(); !errors.Is(err, boom) {
		t.Fatalf("write fault not propagated: %v", err)
	}
	dev.SetFault(nil)
	// After the fault clears, the flush succeeds and data is intact.
	if err := fs2.Sync(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if _, err := g.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern(4096, 9)) {
		t.Fatal("data lost across transient write fault")
	}
	g.Close()
}
