package lfs

import (
	"bytes"
	"testing"

	"repro/internal/buffer"
)

// TestReadCurrentRun: a sequentially-written file reads back through
// ReadCurrentRun in multi-block device transfers; an overwrite relocates the
// rewritten block to the log head and truncates the contiguous run there;
// holes fall back to the caller (0 blocks, nil error).
func TestReadCurrentRun(t *testing.T) {
	fs, dev, _ := newFS(t)
	bs := fs.BlockSize()
	const nblocks = 12
	data := pattern(nblocks*bs, 3)
	writeFile(t, fs, "/seq", data)
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/seq")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	id := buffer.BlockID{File: f.(*File).ID(), Block: 0}

	bufs := make([][]byte, 8)
	for i := range bufs {
		bufs[i] = make([]byte, bs)
	}
	readsBefore := dev.Stats().Reads
	k, err := fs.ReadCurrentRun(id, bufs)
	if err != nil {
		t.Fatal(err)
	}
	if k < 2 {
		t.Fatalf("sequentially-written file yielded a run of %d blocks", k)
	}
	if got := dev.Stats().Reads - readsBefore; got != 1 {
		t.Fatalf("run of %d blocks took %d device reads, want 1", k, got)
	}
	for i := 0; i < k; i++ {
		if !bytes.Equal(bufs[i], data[i*bs:(i+1)*bs]) {
			t.Fatalf("block %d of the run has wrong bytes", i)
		}
	}

	// Overwrite one block mid-file: the no-overwrite log relocates it, so a
	// run started before it must stop short and a fresh read must see the
	// new bytes at the old logical position.
	mod := pattern(bs, 200)
	if _, err := f.WriteAt(mod, 2*int64(bs)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	k2, err := fs.ReadCurrentRun(id, bufs)
	if err != nil {
		t.Fatal(err)
	}
	if k2 < 1 || k2 > 2 {
		t.Fatalf("run across a relocated block filled %d blocks, want 1 or 2", k2)
	}
	if !bytes.Equal(bufs[0], data[:bs]) {
		t.Fatal("first block changed after an unrelated overwrite")
	}
	k3, err := fs.ReadCurrentRun(buffer.BlockID{File: id.File, Block: 2}, bufs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if k3 != 1 || !bytes.Equal(bufs[0], mod) {
		t.Fatalf("relocated block read back wrong (run %d)", k3)
	}

	// A hole (block past EOF never written) has no on-disk home.
	kh, err := fs.ReadCurrentRun(buffer.BlockID{File: id.File, Block: nblocks + 5}, bufs)
	if err != nil {
		t.Fatal(err)
	}
	if kh != 0 {
		t.Fatalf("hole produced a run of %d blocks", kh)
	}
}
