// Package lfs implements a log-structured file system in the style of
// Rosenblum & Ousterhout's Sprite LFS [11,12], the substrate of the paper.
//
// All data — file blocks, indirect blocks, inodes — is written in large
// sequential units called segments. Each flush produces a "partial segment":
// a summary block followed by the blocks it describes, appended at the
// current position of the log. Nothing is ever overwritten in place; the
// inode map (imap) records where the newest version of each inode lives, and
// a cleaner reclaims segments whose blocks have mostly died. Two alternating
// checkpoint regions record the imap, the segment usage table, and the log
// position; mounting loads the newest checkpoint and rolls the log forward
// through the summary-block chain.
//
// The no-overwrite policy is what the embedded transaction manager
// (internal/core) exploits: before-images of updated pages remain in the log
// until the cleaner reclaims them, so transaction abort needs no undo log —
// it simply discards the not-yet-written buffers (§2 of the paper).
package lfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Ino is an inode number.
type Ino uint64

// RootIno is the inode number of the root directory.
const RootIno Ino = 1

// Layout and format constants.
const (
	superMagic   = 0x4c465331 // "LFS1"
	cpMagic      = 0x4c465343 // "LFSC"
	summaryMagic = 0x4c465353 // "LFSS"
	inodeMagic   = 0x4c465349 // "LFSI"

	// formatVersion is the on-disk format version. Version 2 added the
	// payload CRC to segment summaries (a summary vouches for the blocks it
	// describes, so roll-forward can detect a torn multi-block segment
	// write) and the version field itself to the superblock.
	formatVersion = 2

	// NDirect is the number of direct block pointers in an inode.
	NDirect = 12

	// superBlockAddr is the disk address of the superblock.
	superBlockAddr = 0

	// defaultSegmentBlocks is the default segment size in blocks
	// (128 × 4 KB = 512 KB, within the 256 KB–1 MB range Sprite LFS used).
	defaultSegmentBlocks = 128

	// defaultCheckpointBlocks is the size of each checkpoint region.
	defaultCheckpointBlocks = 64

	// minSegmentTail: when fewer blocks than this remain in the current
	// segment, the writer advances to the next segment rather than writing
	// a tiny partial segment.
	minSegmentTail = 4

	// maxDataPerPartial bounds the data blocks in one partial segment.
	maxDataPerPartial = 64
	// maxFilesPerPartial bounds the distinct files in one partial segment
	// so the conservative metadata estimate stays within a segment.
	maxFilesPerPartial = 8
)

// Errors.
var (
	ErrNoSpace      = errors.New("lfs: no clean segments (disk full)")
	ErrCorrupt      = errors.New("lfs: corrupt on-disk structure")
	ErrFileTooLarge = errors.New("lfs: file exceeds maximum mappable size")
)

// superblock is the static description of the file system, stored at block 0.
type superblock struct {
	Magic         uint32
	Version       uint32
	BlockSize     uint32
	TotalBlocks   int64
	SegmentBlocks int64
	CPBlocks      int64 // blocks per checkpoint region
	SegStart      int64 // first block of segment 0
	NumSegments   int64
}

func (sb *superblock) encode(blockSize int) []byte {
	b := make([]byte, blockSize)
	le := binary.LittleEndian
	le.PutUint32(b[0:], sb.Magic)
	le.PutUint32(b[4:], sb.BlockSize)
	le.PutUint64(b[8:], uint64(sb.TotalBlocks))
	le.PutUint64(b[16:], uint64(sb.SegmentBlocks))
	le.PutUint64(b[24:], uint64(sb.CPBlocks))
	le.PutUint64(b[32:], uint64(sb.SegStart))
	le.PutUint64(b[40:], uint64(sb.NumSegments))
	le.PutUint32(b[48:], sb.Version)
	le.PutUint32(b[52:], crc32.ChecksumIEEE(b[0:52]))
	return b
}

func decodeSuperblock(b []byte) (superblock, error) {
	var sb superblock
	if len(b) < 56 {
		return sb, fmt.Errorf("%w: short superblock", ErrCorrupt)
	}
	le := binary.LittleEndian
	if le.Uint32(b[52:]) != crc32.ChecksumIEEE(b[0:52]) {
		return sb, fmt.Errorf("%w: superblock checksum", ErrCorrupt)
	}
	sb.Magic = le.Uint32(b[0:])
	if sb.Magic != superMagic {
		return sb, fmt.Errorf("%w: bad superblock magic %#x", ErrCorrupt, sb.Magic)
	}
	sb.BlockSize = le.Uint32(b[4:])
	sb.TotalBlocks = int64(le.Uint64(b[8:]))
	sb.SegmentBlocks = int64(le.Uint64(b[16:]))
	sb.CPBlocks = int64(le.Uint64(b[24:]))
	sb.SegStart = int64(le.Uint64(b[32:]))
	sb.NumSegments = int64(le.Uint64(b[40:]))
	sb.Version = le.Uint32(b[48:])
	if sb.Version != formatVersion {
		return sb, fmt.Errorf("%w: format version %d, want %d", ErrCorrupt, sb.Version, formatVersion)
	}
	return sb, nil
}

// segState describes a segment's lifecycle.
type segState uint8

const (
	segFree     segState = iota // clean, available for writing
	segInLog                    // written, part of the log
	segCurrent                  // the segment being filled
	segReserved                 // pre-allocated as the next segment (log chaining)
)

// segInfo is one entry of the in-memory segment usage table.
type segInfo struct {
	State    segState
	Live     int64  // live blocks that would need copying to clean this segment
	SeqStamp uint64 // summary sequence of the most recent write into the segment
	// AgeStamp is the youngest data age written into the segment: the
	// maximum of the AgeStamp fields of its partial segments. Fresh writes
	// stamp the current sequence number, but the cleaner preserves the age
	// of relocated blocks, so a segment full of relocated cold data keeps a
	// small AgeStamp and stays attractive to the cost-benefit policy — the
	// Sprite-LFS generational trick.
	AgeStamp uint64
}

// blockKind tags an entry in a segment summary.
type blockKind uint8

const (
	kindData      blockKind = iota // file data block; Index = logical block number
	kindInodePack                  // packed inode block; Index = number of inodes inside
	kindInd                        // single indirect pointer block
	kindDInd                       // double indirect pointer block
	kindDChild                     // child of the double indirect block; Index = child slot
	kindDelete                     // deletion record (no block follows); logged for roll-forward
)

// summaryEntry describes one block of a partial segment (or a deletion).
type summaryEntry struct {
	Ino   Ino
	Kind  blockKind
	Index int64
}

const summaryEntrySize = 8 + 1 + 8 // ino + kind + index

// summaryHeader precedes the entries in a summary block.
//
//	magic    uint32
//	crc      uint32   (over everything except itself)
//	seq      uint64   (monotonic partial-segment sequence)
//	selfAddr int64    (disk address of this summary block — defeats stale data)
//	nextSeg  int64    (pre-allocated successor segment, for roll-forward chaining)
//	nBlocks  uint32   (blocks following the summary)
//	nEntries uint32   (summary entries, = nBlocks + deletion records)
//	ageStamp uint64   (age of the youngest block; fresh writes use seq, the
//	                   cleaner carries the age of relocated blocks forward)
//	payloadCRC uint32 (CRC32 over the nBlocks described blocks, in order —
//	                   lets roll-forward detect a torn multi-block segment
//	                   write whose summary block survived)
//	flags    uint32   (sumFlagCont: this partial does not complete its flush
//	                   batch; roll-forward must withhold the whole chain
//	                   until the terminating partial is seen intact)
const summaryHeaderSize = 4 + 4 + 8 + 8 + 8 + 4 + 4 + 8 + 4 + 4

// sumFlagCont marks a partial segment whose flush batch continues in the
// next partial. A commit force writes all of a transaction's dirty pages in
// one flushLocked call; when they do not fit a single partial segment, every
// partial but the last carries this flag so recovery can treat the batch
// atomically — applying a prefix would expose a half-committed transaction.
const sumFlagCont = 1

// maxSummaryEntries is how many entries fit in one summary block.
func maxSummaryEntries(blockSize int) int {
	return (blockSize - summaryHeaderSize) / summaryEntrySize
}

type summary struct {
	Seq        uint64
	SelfAddr   int64
	NextSeg    int64
	NBlocks    int
	AgeStamp   uint64
	PayloadCRC uint32
	Flags      uint32
	Entries    []summaryEntry
}

func (s *summary) encode(blockSize int) ([]byte, error) {
	if len(s.Entries) > maxSummaryEntries(blockSize) {
		return nil, fmt.Errorf("lfs: %d summary entries exceed capacity %d", len(s.Entries), maxSummaryEntries(blockSize))
	}
	b := make([]byte, blockSize)
	le := binary.LittleEndian
	le.PutUint32(b[0:], summaryMagic)
	le.PutUint64(b[8:], s.Seq)
	le.PutUint64(b[16:], uint64(s.SelfAddr))
	le.PutUint64(b[24:], uint64(s.NextSeg))
	le.PutUint32(b[32:], uint32(s.NBlocks))
	le.PutUint32(b[36:], uint32(len(s.Entries)))
	le.PutUint64(b[40:], s.AgeStamp)
	le.PutUint32(b[48:], s.PayloadCRC)
	le.PutUint32(b[52:], s.Flags)
	off := summaryHeaderSize
	for _, e := range s.Entries {
		le.PutUint64(b[off:], uint64(e.Ino))
		b[off+8] = byte(e.Kind)
		le.PutUint64(b[off+9:], uint64(e.Index))
		off += summaryEntrySize
	}
	le.PutUint32(b[4:], summaryChecksum(b))
	return b, nil
}

// summaryChecksum covers the whole block except the CRC field itself.
func summaryChecksum(b []byte) uint32 {
	crc := crc32.NewIEEE()
	crc.Write(b[0:4])
	crc.Write(b[8:])
	return crc.Sum32()
}

// payloadChecksum is the CRC32 over a partial segment's described blocks in
// log order — the value the summary's payloadCRC field vouches for.
func payloadChecksum(bufs [][]byte) uint32 {
	crc := crc32.NewIEEE()
	for _, b := range bufs {
		crc.Write(b)
	}
	return crc.Sum32()
}

// decodeSummary parses a block as a summary. It returns ok=false (not an
// error) if the block is not a valid summary written at addr — used by
// roll-forward, where encountering a non-summary block means end of log.
func decodeSummary(b []byte, addr int64) (summary, bool) {
	var s summary
	if len(b) < summaryHeaderSize {
		return s, false
	}
	le := binary.LittleEndian
	if le.Uint32(b[0:]) != summaryMagic {
		return s, false
	}
	if le.Uint32(b[4:]) != summaryChecksum(b) {
		return s, false
	}
	s.Seq = le.Uint64(b[8:])
	s.SelfAddr = int64(le.Uint64(b[16:]))
	if s.SelfAddr != addr {
		return s, false // a relocated copy of an old summary (e.g. cleaner artifact)
	}
	s.NextSeg = int64(le.Uint64(b[24:]))
	s.NBlocks = int(le.Uint32(b[32:]))
	s.AgeStamp = le.Uint64(b[40:])
	s.PayloadCRC = le.Uint32(b[48:])
	s.Flags = le.Uint32(b[52:])
	n := int(le.Uint32(b[36:]))
	if n < 0 || n > maxSummaryEntries(len(b)) {
		return s, false
	}
	// Every described block consumes an entry, so NBlocks can never exceed
	// the entry count; rejecting the excess bounds how much garbage a
	// corrupt-but-checksum-colliding summary could make a reader fetch.
	if s.NBlocks < 0 || s.NBlocks > n {
		return s, false
	}
	off := summaryHeaderSize
	s.Entries = make([]summaryEntry, n)
	for i := 0; i < n; i++ {
		s.Entries[i].Ino = Ino(le.Uint64(b[off:]))
		s.Entries[i].Kind = blockKind(b[off+8])
		s.Entries[i].Index = int64(le.Uint64(b[off+9:]))
		off += summaryEntrySize
	}
	return s, true
}
