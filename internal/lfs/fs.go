package lfs

import (
	"fmt"
	"sync"

	"repro/internal/buffer"
	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// Options configures the file system.
type Options struct {
	// SegmentBlocks is the segment size in blocks (default 128 = 512 KB).
	SegmentBlocks int64
	// CheckpointBlocks is the size of each checkpoint region (default 64).
	CheckpointBlocks int64
	// CacheBlocks is the buffer cache capacity (default 1024 = 4 MB).
	CacheBlocks int
	// CleanThreshold: cleaning starts when free segments drop below this
	// (default 4).
	CleanThreshold int
	// CleanTarget: cleaning stops when free segments reach this (default 8).
	CleanTarget int
	// Policy selects the cleaner's victim-selection policy (default
	// CostBenefit).
	Policy CleanerPolicy
	// CheckpointEvery writes a checkpoint after this many partial
	// segments (default 512), bounding the roll-forward work a crash can
	// require. Sprite LFS checkpointed on a timer for the same reason.
	CheckpointEvery int
	// CleanBatch is how many cost-benefit-ranked victim segments one
	// cleaning pass reclaims together (default 4). Batching amortizes the
	// positioning cost of reading live blocks — they go through one C-SCAN
	// sweep — and gives the hot/cold segregation enough blocks to separate.
	CleanBatch int
	// IdleCleanTrigger: CleanIdle starts working when free segments drop
	// below this (default CleanThreshold+1). It sits just above
	// CleanThreshold so background cleaning keeps the synchronous cleaner
	// from firing on the critical path, but no higher than it must:
	// triggering earlier shrinks the in-log pool, giving segments less time
	// to die and forcing the cleaner to copy hotter, fuller victims.
	IdleCleanTrigger int
}

func (o *Options) fill() {
	if o.SegmentBlocks == 0 {
		o.SegmentBlocks = defaultSegmentBlocks
	}
	if o.CheckpointBlocks == 0 {
		o.CheckpointBlocks = defaultCheckpointBlocks
	}
	if o.CacheBlocks == 0 {
		o.CacheBlocks = 1024
	}
	if o.CleanThreshold == 0 {
		o.CleanThreshold = 4
	}
	if o.CleanTarget == 0 {
		o.CleanTarget = 8
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 512
	}
	if o.CleanBatch == 0 {
		o.CleanBatch = 4
	}
	if o.IdleCleanTrigger == 0 {
		o.IdleCleanTrigger = o.CleanThreshold + 1
	}
}

// Stats reports file system activity.
type Stats struct {
	PartialSegments int64 // partial segments written
	BlocksLogged    int64 // blocks written to the log (incl. summaries)
	SummaryBlocks   int64
	Checkpoints     int64
	Cleaner         CleanerStats
}

// FS is a mounted log-structured file system.
type FS struct {
	mu        sync.Mutex
	dev       disk.BlockDevice
	clock     *sim.Clock
	pool      *buffer.Pool
	blockSize int
	sb        superblock
	opts      Options

	imap    map[Ino]int64 // inode number → disk address of inode block
	segs    []segInfo
	free    int64 // count of segFree segments
	curSeg  int64
	curOff  int64
	nextSeg int64
	seq     uint64 // next partial-segment sequence number
	cpSeq   uint64 // checkpoint sequence (even/odd selects the region)
	cpBound uint64 // seq at last checkpoint: segments stamped ≥ this are
	// part of the uncheckpointed log tail and must not be reused
	nextIno Ino

	inodes     map[Ino]*inode // loaded inodes
	orphans    map[buffer.BlockID][]byte
	pendingDel []Ino
	cleaning   bool
	// chainCont is set while a multi-partial flush batch is incomplete:
	// every partial written in that window (including cleaner relocations
	// triggered mid-flush) carries sumFlagCont, and checkpoints are
	// deferred, so recovery can never expose a prefix of the batch.
	chainCont bool
	// packRefs counts how many imap entries point into each inode pack
	// block; a pack block is dead (its segment's live count drops) only
	// when the last inode in it has been superseded.
	packRefs       map[int64]int
	orphanPressure bool
	debugAudit     bool
	stats          Stats
	retain         SnapshotRetention // nil = no snapshot layer attached
	tracer         *trace.Tracer     // nil = tracing off
	// sumCache holds, per in-log segment, the summaries of ALL its partial
	// segments — present only when complete (built up from offset 0).
	// It lets the cleaner identify a victim's live blocks without reading
	// the whole segment back: it reads just the live data blocks, an ~8×
	// I/O saving at typical victim utilisation. Cache misses (e.g. segments
	// written before the last mount) fall back to reading the summary
	// chain from disk.
	sumCache map[int64][]summary
}

var _ vfs.FileSystem = (*FS)(nil)

// Format initializes a fresh file system on dev and returns it mounted.
func Format(dev disk.BlockDevice, clock *sim.Clock, opts Options) (*FS, error) {
	opts.fill()
	bs := dev.BlockSize()
	segStart := 1 + 2*opts.CheckpointBlocks
	nseg := (dev.NumBlocks() - segStart) / opts.SegmentBlocks
	if nseg < int64(opts.CleanTarget)+2 {
		return nil, fmt.Errorf("lfs: device too small: %d segments", nseg)
	}
	sb := superblock{
		Magic:         superMagic,
		Version:       formatVersion,
		BlockSize:     uint32(bs),
		TotalBlocks:   dev.NumBlocks(),
		SegmentBlocks: opts.SegmentBlocks,
		CPBlocks:      opts.CheckpointBlocks,
		SegStart:      segStart,
		NumSegments:   nseg,
	}
	if err := dev.Write(superBlockAddr, sb.encode(bs)); err != nil {
		return nil, err
	}
	fs := &FS{
		dev:       dev,
		clock:     clock,
		blockSize: bs,
		sb:        sb,
		opts:      opts,
		imap:      make(map[Ino]int64),
		segs:      make([]segInfo, nseg),
		free:      nseg,
		curSeg:    0,
		curOff:    0,
		nextSeg:   1,
		seq:       1,
		cpSeq:     0,
		cpBound:   1,
		nextIno:   RootIno + 1,
		inodes:    make(map[Ino]*inode),
		orphans:   make(map[buffer.BlockID][]byte),
		packRefs:  make(map[int64]int),
		sumCache:  make(map[int64][]summary),
	}
	fs.segs[0].State = segCurrent
	fs.segs[1].State = segReserved
	fs.free -= 2
	fs.pool = buffer.New(opts.CacheBlocks, bs, fs.writeback)

	// Create the root directory.
	root := &inode{ino: RootIno, mode: modeDir, nlink: 2, dirty: true}
	fs.inodes[RootIno] = root
	if err := fs.writeDirLocked(root, nil); err != nil {
		return nil, err
	}
	if err := fs.checkpointLocked(); err != nil {
		return nil, err
	}
	return fs, nil
}

// Name implements vfs.FileSystem.
func (fs *FS) Name() string { return "lfs" }

// BlockSize implements vfs.FileSystem.
func (fs *FS) BlockSize() int { return fs.blockSize }

// Pool exposes the buffer cache. The embedded transaction manager
// (internal/core) uses it to hold and invalidate transaction-protected
// buffers, mirroring the kernel data-structure extensions of §4.1.
func (fs *FS) Pool() *buffer.Pool { return fs.pool }

// Device returns the underlying block device (for stats and inspection).
func (fs *FS) Device() disk.BlockDevice { return fs.dev }

// SetTracer attaches a tracer; cleaning passes then emit cleaner.pass spans
// (with the pass's disk time attributed as cleaner stall rather than
// workload I/O) and checkpoints emit lfs.checkpoint spans. A nil tracer
// costs nothing.
func (fs *FS) SetTracer(tr *trace.Tracer) {
	fs.mu.Lock()
	fs.tracer = tr
	fs.mu.Unlock()
}

// SnapshotRetention is implemented by a transaction layer that pins old
// on-disk page versions for snapshot (multiversion) reads. While a retained
// address lies inside a segment, the cleaner must neither pick that segment
// as a victim nor free it through the dead-segment fast path: the addresses
// in the version map must stay readable until the last pinning snapshot
// closes.
type SnapshotRetention interface {
	// RetainsRange reports whether any retained version address falls in
	// the disk-address range [lo, hi).
	RetainsRange(lo, hi int64) bool
	// RetainedBlocks returns the number of distinct retained addresses.
	RetainedBlocks() int64
	// HorizonLag returns how many commit epochs the oldest pinned snapshot
	// trails the newest commit (0 when nothing is pinned).
	HorizonLag() int64
}

// SetSnapshotRetention attaches the snapshot layer's retention horizon.
// The cleaner consults it on every victim-selection and dead-segment-free
// decision; a nil retention (the default) restores unrestricted cleaning.
func (fs *FS) SetSnapshotRetention(r SnapshotRetention) {
	fs.mu.Lock()
	fs.retain = r
	fs.mu.Unlock()
}

// retainedLocked reports whether the retention horizon pins any address in
// segment s.
func (fs *FS) retainedLocked(s int64) bool {
	if fs.retain == nil {
		return false
	}
	base := fs.segBase(s)
	return fs.retain.RetainsRange(base, base+fs.sb.SegmentBlocks)
}

// BlockAddr returns the current disk address of a file's logical block
// (0 = unallocated hole). The embedded transaction manager records these
// addresses as it commits over them: in a no-overwrite log the pre-commit
// address keeps holding the page's previous version, which is exactly what
// a pinned snapshot needs to read.
func (fs *FS) BlockAddr(file vfs.FileID, lbn int64) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	in, err := fs.loadInode(Ino(file))
	if err != nil {
		return 0, err
	}
	return fs.blockAddr(in, lbn)
}

// ReadAddr reads the block at disk address addr into p, bypassing the
// buffer pool; addr 0 reads as zeroes. Snapshot reads use it to fetch a
// superseded page version straight from the log — the address stays valid
// because retention (SetSnapshotRetention) keeps the cleaner away from its
// segment, and in-log segments are append-only.
func (fs *FS) ReadAddr(addr int64, p []byte) error {
	if addr == 0 {
		clear(p)
		return nil
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.dev.Read(addr, p)
}

// ReadCurrent reads the current on-disk (committed) content of a file's
// logical block into p, bypassing the buffer pool. Snapshot reads use it
// for pages with no recorded newer version: the buffer pool may hold
// uncommitted transaction-held bytes for such a page, but the log itself
// still holds the committed image.
func (fs *FS) ReadCurrent(id buffer.BlockID, p []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.fetchBlock(id, p)
}

// ReadCurrentRun reads up to len(bufs) logically-sequential committed
// blocks of file id.File starting at id.Block, stopping at the first block
// that is no longer physically contiguous in the log. The contiguous prefix
// is transferred in a single device operation (one seek), which is the
// sequential-read bandwidth a scan gets over data the log has never
// rewritten. Returns how many blocks were filled; 0 with a nil error means
// the first block itself has no contiguous on-disk home (hole or orphan)
// and the caller should fall back to ReadCurrent.
func (fs *FS) ReadCurrentRun(id buffer.BlockID, bufs [][]byte) (int, error) {
	if len(bufs) == 0 {
		return 0, nil
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.orphans[id]; ok {
		return 0, nil
	}
	in, err := fs.loadInode(Ino(id.File))
	if err != nil {
		return 0, err
	}
	start, err := fs.blockAddr(in, id.Block)
	if err != nil {
		return 0, err
	}
	if start == 0 {
		return 0, nil
	}
	n := 1
	for n < len(bufs) {
		next := buffer.BlockID{File: id.File, Block: id.Block + int64(n)}
		if _, ok := fs.orphans[next]; ok {
			break
		}
		addr, err := fs.blockAddr(in, next.Block)
		if err != nil || addr != start+int64(n) {
			break
		}
		n++
	}
	if n == 1 {
		if err := fs.dev.Read(start, bufs[0]); err != nil {
			return 0, err
		}
		return 1, nil
	}
	if err := fs.dev.ReadRun(start, bufs[:n]); err != nil {
		return 0, err
	}
	return n, nil
}

// Stats returns a snapshot of the file system counters.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st := fs.stats
	if fs.retain != nil {
		st.Cleaner.RetainedBlocks = fs.retain.RetainedBlocks()
		st.Cleaner.HorizonLag = fs.retain.HorizonLag()
	}
	return st
}

// FreeSegments reports the number of clean segments.
func (fs *FS) FreeSegments() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.free
}

// blockIDOf forms the buffer-cache key of a file's logical block.
func blockIDOf(ino Ino, lbn int64) buffer.BlockID {
	return buffer.BlockID{File: vfs.FileID(ino), Block: lbn}
}

// segBase returns the disk address of the first block of segment s.
func (fs *FS) segBase(s int64) int64 {
	return fs.sb.SegStart + s*fs.sb.SegmentBlocks
}

// segOf returns the segment containing disk address addr, or -1 for
// addresses outside the segment area (superblock, checkpoint regions).
func (fs *FS) segOf(addr int64) int64 {
	if addr < fs.sb.SegStart {
		return -1
	}
	return (addr - fs.sb.SegStart) / fs.sb.SegmentBlocks
}

// accountOld decrements the live count of the segment that held addr.
func (fs *FS) accountOld(addr int64) {
	if addr == 0 {
		return
	}
	if s := fs.segOf(addr); s >= 0 && fs.segs[s].Live > 0 {
		fs.segs[s].Live--
	}
}

// accountNew increments the live count of the segment receiving addr.
func (fs *FS) accountNew(addr int64) {
	if s := fs.segOf(addr); s >= 0 {
		fs.segs[s].Live++
	}
}

// writeback is the buffer pool's dirty-eviction callback. The block cannot
// be written in place (LFS never overwrites); instead its bytes are parked in
// the orphan table and written with the next partial segment. Reads consult
// the orphan table before disk.
func (fs *FS) writeback(id buffer.BlockID, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	fs.orphans[id] = cp
	// The orphan table models the segment staging buffer, which holds at
	// most about one segment of blocks in a real LFS; when it fills, the
	// next file system operation writes a segment out. (The flush cannot
	// run here: this callback executes inside the buffer pool's lock.)
	if int64(len(fs.orphans)) >= fs.sb.SegmentBlocks {
		fs.orphanPressure = true
	}
	return nil
}

// maybeFlushOrphansLocked drains the staging buffer when eviction pressure
// filled it.
func (fs *FS) maybeFlushOrphansLocked() error {
	if !fs.orphanPressure {
		return nil
	}
	fs.orphanPressure = false
	return fs.flushLocked(nil, false, false)
}

// decPackRef drops one reference to the inode pack block at addr, marking
// the block dead in its segment when the last reference goes.
func (fs *FS) decPackRef(addr int64) {
	if addr == 0 {
		return
	}
	fs.packRefs[addr]--
	if fs.packRefs[addr] <= 0 {
		delete(fs.packRefs, addr)
		fs.accountOld(addr)
	}
}

// loadInode returns the in-memory inode for ino, reading its pack block
// from the log if necessary.
func (fs *FS) loadInode(ino Ino) (*inode, error) {
	if in, ok := fs.inodes[ino]; ok {
		return in, nil
	}
	addr, ok := fs.imap[ino]
	if !ok {
		return nil, vfs.ErrNotExist
	}
	buf := make([]byte, fs.blockSize)
	if err := fs.dev.Read(addr, buf); err != nil {
		return nil, err
	}
	pack, err := decodeInodePack(buf)
	if err != nil {
		return nil, fmt.Errorf("inode %d at %d: %w", ino, addr, err)
	}
	for _, in := range pack {
		if in.ino == ino {
			fs.inodes[ino] = in
			return in, nil
		}
	}
	return nil, fmt.Errorf("%w: imap points %d at a pack without it", ErrCorrupt, ino)
}

// fetchBlock is the buffer-pool fetch path for file data blocks.
func (fs *FS) fetchBlock(id buffer.BlockID, dst []byte) error {
	if data, ok := fs.orphans[id]; ok {
		copy(dst, data)
		return nil
	}
	in, err := fs.loadInode(Ino(id.File))
	if err != nil {
		return err
	}
	addr, err := fs.blockAddr(in, id.Block)
	if err != nil {
		return err
	}
	if addr == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return nil
	}
	return fs.dev.Read(addr, dst)
}

// Sync implements vfs.FileSystem: flush everything and checkpoint.
func (fs *FS) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.checkpointLocked()
}

// Flush writes all dirty (unheld) buffers to the log without checkpointing.
func (fs *FS) Flush() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.flushLocked(nil, false, false)
}

// FlushFile forces one file's dirty (unheld) blocks and meta-data to the
// log — the embedded transaction manager's commit force (§4.3: "the kernel
// flushes them to disk and releases locks when the writes have completed").
func (fs *FS) FlushFile(ino vfs.FileID) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.flushLocked(map[Ino]bool{Ino(ino): true}, true, false)
}

// FlushFiles forces several files in a single partial-segment stream (one
// group-committed unit).
func (fs *FS) FlushFiles(inos []vfs.FileID) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	set := make(map[Ino]bool, len(inos))
	for _, i := range inos {
		set[Ino(i)] = true
	}
	return fs.flushLocked(set, true, true)
}
