package lfs

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/buffer"
	"repro/internal/detsort"
	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/trace"
)

// checkpoint is the volatile state persisted to a checkpoint region: the
// imap, the segment usage table, and the log position. Two regions alternate
// so a crash during a checkpoint write leaves the previous one intact.
type checkpoint struct {
	CpSeq   uint64
	Seq     uint64
	NextIno Ino
	CurSeg  int64
	CurOff  int64
	NextSeg int64
	Imap    map[Ino]int64
	Segs    []segInfo
}

func (cp *checkpoint) encode() []byte {
	size := 4 + 4 + 4 + 8*6 + 8 + len(cp.Imap)*16 + 8 + len(cp.Segs)*25
	b := make([]byte, size)
	le := binary.LittleEndian
	le.PutUint32(b[0:], cpMagic)
	// b[4:8] = crc, filled last
	le.PutUint32(b[8:], uint32(size))
	off := 12
	for _, v := range []uint64{cp.CpSeq, cp.Seq, uint64(cp.NextIno), uint64(cp.CurSeg), uint64(cp.CurOff), uint64(cp.NextSeg)} {
		le.PutUint64(b[off:], v)
		off += 8
	}
	le.PutUint64(b[off:], uint64(len(cp.Imap)))
	off += 8
	for _, ino := range detsort.Keys(cp.Imap) {
		le.PutUint64(b[off:], uint64(ino))
		le.PutUint64(b[off+8:], uint64(cp.Imap[ino]))
		off += 16
	}
	le.PutUint64(b[off:], uint64(len(cp.Segs)))
	off += 8
	for _, s := range cp.Segs {
		b[off] = byte(s.State)
		le.PutUint64(b[off+1:], uint64(s.Live))
		le.PutUint64(b[off+9:], s.SeqStamp)
		le.PutUint64(b[off+17:], s.AgeStamp)
		off += 25
	}
	crc := crc32.NewIEEE()
	crc.Write(b[0:4])
	crc.Write(b[8:])
	le.PutUint32(b[4:], crc.Sum32())
	return b
}

func decodeCheckpoint(b []byte) (*checkpoint, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("%w: short checkpoint", ErrCorrupt)
	}
	le := binary.LittleEndian
	if le.Uint32(b[0:]) != cpMagic {
		return nil, fmt.Errorf("%w: checkpoint magic", ErrCorrupt)
	}
	size := int(le.Uint32(b[8:]))
	if size < 12 || size > len(b) {
		return nil, fmt.Errorf("%w: checkpoint size %d", ErrCorrupt, size)
	}
	b = b[:size]
	crc := crc32.NewIEEE()
	crc.Write(b[0:4])
	crc.Write(b[8:])
	if le.Uint32(b[4:]) != crc.Sum32() {
		return nil, fmt.Errorf("%w: checkpoint checksum", ErrCorrupt)
	}
	cp := &checkpoint{Imap: make(map[Ino]int64)}
	off := 12
	cp.CpSeq = le.Uint64(b[off:])
	cp.Seq = le.Uint64(b[off+8:])
	cp.NextIno = Ino(le.Uint64(b[off+16:]))
	cp.CurSeg = int64(le.Uint64(b[off+24:]))
	cp.CurOff = int64(le.Uint64(b[off+32:]))
	cp.NextSeg = int64(le.Uint64(b[off+40:]))
	off += 48
	nImap := int(le.Uint64(b[off:]))
	off += 8
	for i := 0; i < nImap; i++ {
		ino := Ino(le.Uint64(b[off:]))
		addr := int64(le.Uint64(b[off+8:]))
		cp.Imap[ino] = addr
		off += 16
	}
	nSegs := int(le.Uint64(b[off:]))
	off += 8
	cp.Segs = make([]segInfo, nSegs)
	for i := 0; i < nSegs; i++ {
		cp.Segs[i].State = segState(b[off])
		cp.Segs[i].Live = int64(le.Uint64(b[off+1:]))
		cp.Segs[i].SeqStamp = le.Uint64(b[off+9:])
		cp.Segs[i].AgeStamp = le.Uint64(b[off+17:])
		off += 25
	}
	return cp, nil
}

// checkpointLocked flushes all dirty state and writes a checkpoint to the
// alternate region. Caller holds fs.mu.
func (fs *FS) checkpointLocked() error {
	if err := fs.flushLocked(nil, false, false); err != nil {
		return err
	}
	return fs.writeCheckpointLocked()
}

// writeCheckpointLocked persists the current imap, segment usage table, and
// log position WITHOUT flushing dirty data buffers first. Deferred
// indirect-pointer state, however, MUST be written before the checkpoint:
// commit forces leave updated pointer blocks dirty in memory, recoverable
// only by replaying the commit summaries — and a checkpoint moves the
// roll-forward start past those summaries. A crash right after a flushless
// checkpoint would then resolve indirect-range blocks through the stale
// on-disk pointer blocks, silently reviving pre-commit data. The cleaner
// uses this to advance the checkpoint boundary (and thereby unlock victim
// segments) without triggering a full data flush while segments are scarce.
func (fs *FS) writeCheckpointLocked() error {
	if fs.chainCont {
		// A flush batch is mid-chain (the cleaner can run between its
		// partials): the in-memory imap already reflects the batch's
		// written prefix, and checkpointing it would make that prefix
		// recoverable without the chain terminator — exactly the
		// half-committed state the chain flag exists to prevent. Defer;
		// flushLocked checkpoints after the batch completes.
		return nil
	}
	span := fs.tracer.Begin("lfs", "lfs.checkpoint")
	defer func() { span.End(trace.AU("seq", fs.seq)) }()
	var metaDirty []Ino
	for _, ino := range detsort.Keys(fs.inodes) {
		if fs.inodeMetaDirty(fs.inodes[ino]) {
			metaDirty = append(metaDirty, ino)
		}
	}
	for len(metaDirty) > 0 {
		n := min(len(metaDirty), maxFilesPerPartial)
		if err := fs.writePartialLocked(nil, metaDirty[:n], false, 0); err != nil {
			return err
		}
		metaDirty = metaDirty[n:]
	}
	cp := checkpoint{
		CpSeq:   fs.cpSeq + 1,
		Seq:     fs.seq,
		NextIno: fs.nextIno,
		CurSeg:  fs.curSeg,
		CurOff:  fs.curOff,
		NextSeg: fs.nextSeg,
		Imap:    fs.imap,
		Segs:    fs.segs,
	}
	enc := cp.encode()
	regionBytes := int(fs.sb.CPBlocks) * fs.blockSize
	if len(enc) > regionBytes {
		return fmt.Errorf("lfs: checkpoint (%d bytes) exceeds region (%d bytes)", len(enc), regionBytes)
	}
	region := int64(cp.CpSeq % 2)
	base := 1 + region*fs.sb.CPBlocks
	nblocks := (len(enc) + fs.blockSize - 1) / fs.blockSize
	blocks := make([][]byte, nblocks)
	for i := range blocks {
		blocks[i] = make([]byte, fs.blockSize)
		lo := i * fs.blockSize
		hi := lo + fs.blockSize
		if hi > len(enc) {
			hi = len(enc)
		}
		copy(blocks[i], enc[lo:hi])
	}
	if err := fs.dev.WriteRun(base, blocks); err != nil {
		return err
	}
	fs.cpSeq = cp.CpSeq
	fs.cpBound = fs.seq
	fs.stats.Checkpoints++
	return nil
}

// Mount loads an existing file system from dev: read the superblock, pick
// the newer valid checkpoint, roll the log forward through the summary-block
// chain, rebuild the segment usage table, and checkpoint the recovered
// state.
func Mount(dev disk.BlockDevice, clock *sim.Clock, opts Options) (*FS, error) {
	opts.fill()
	bs := dev.BlockSize()
	buf := make([]byte, bs)
	if err := dev.Read(superBlockAddr, buf); err != nil {
		return nil, err
	}
	sb, err := decodeSuperblock(buf)
	if err != nil {
		return nil, err
	}
	if int(sb.BlockSize) != bs {
		return nil, fmt.Errorf("%w: block size mismatch", ErrCorrupt)
	}

	// Read both checkpoint regions; keep the newer valid one.
	var best *checkpoint
	for region := int64(0); region < 2; region++ {
		base := 1 + region*sb.CPBlocks
		raw := make([]byte, int(sb.CPBlocks)*bs)
		bufs := make([][]byte, sb.CPBlocks)
		for i := range bufs {
			bufs[i] = raw[i*bs : (i+1)*bs]
		}
		if err := dev.ReadRun(base, bufs); err != nil {
			return nil, err
		}
		cp, err := decodeCheckpoint(raw)
		if err != nil {
			continue
		}
		if best == nil || cp.CpSeq > best.CpSeq {
			best = cp
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: no valid checkpoint", ErrCorrupt)
	}

	fs := &FS{
		dev:       dev,
		clock:     clock,
		blockSize: bs,
		sb:        sb,
		opts:      opts,
		imap:      best.Imap,
		segs:      best.Segs,
		curSeg:    best.CurSeg,
		curOff:    best.CurOff,
		nextSeg:   best.NextSeg,
		seq:       best.Seq,
		cpSeq:     best.CpSeq,
		nextIno:   best.NextIno,
		inodes:    make(map[Ino]*inode),
		orphans:   make(map[buffer.BlockID][]byte),
		packRefs:  make(map[int64]int),
		sumCache:  make(map[int64][]summary),
	}
	if int64(len(fs.segs)) != sb.NumSegments {
		return nil, fmt.Errorf("%w: checkpoint segment table size", ErrCorrupt)
	}
	fs.pool = buffer.New(opts.CacheBlocks, bs, fs.writeback)

	if err := fs.rollForwardLocked(); err != nil {
		return nil, err
	}
	if err := fs.rebuildUsageLocked(); err != nil {
		return nil, err
	}
	fs.cpBound = fs.seq
	// Persist the recovered state so the log tail can be reused safely.
	if err := fs.checkpointLocked(); err != nil {
		return nil, err
	}
	return fs, nil
}

// readPartialLocked reads and validates one partial segment at pos: the
// summary block, then the blocks it describes, whose CRC must match the
// summary's payload field. ok=false (without error) means pos does not hold
// an intact partial segment — a torn segment write, garbage, or stale data —
// which roll-forward treats as end-of-log: a summary only vouches for its
// payload, so a crashed multi-block write that happened to complete the
// summary block but not all described blocks must be discarded whole.
func (fs *FS) readPartialLocked(pos int64) (summary, [][]byte, bool, error) {
	buf := make([]byte, fs.blockSize)
	if err := fs.dev.Read(pos, buf); err != nil {
		return summary{}, nil, false, err
	}
	sum, ok := decodeSummary(buf, pos)
	if !ok {
		return summary{}, nil, false, nil
	}
	// The payload must lie within the summary's own segment (a partial
	// segment never crosses a segment boundary).
	if seg := fs.segOf(pos); seg < 0 || pos+int64(sum.NBlocks) >= fs.segBase(seg)+fs.sb.SegmentBlocks {
		return summary{}, nil, false, nil
	}
	payload := make([][]byte, sum.NBlocks)
	raw := make([]byte, sum.NBlocks*fs.blockSize)
	for i := range payload {
		payload[i] = raw[i*fs.blockSize : (i+1)*fs.blockSize]
	}
	if err := fs.dev.ReadRun(pos+1, payload); err != nil {
		return summary{}, nil, false, err
	}
	if payloadChecksum(payload) != sum.PayloadCRC {
		return summary{}, nil, false, nil
	}
	return sum, payload, true, nil
}

// rollForwardLocked follows the partial-segment chain from the checkpointed
// log position, applying inode-map updates and deletions from each summary
// whose sequence number matches the expected next value. The chain ends at
// the first position that does not hold the expected summary with an intact
// payload.
//
// Partials flagged sumFlagCont belong to a flush batch that continues in
// the next partial; such a batch is applied only once its terminating
// (unflagged) partial is read intact. If the log ends mid-batch, the whole
// batch is discarded and the recovered log position rewinds to the end of
// the last complete batch — a commit force's pages are all-or-nothing even
// when they span several partial segments.
func (fs *FS) rollForwardLocked() error {
	pos := fs.segBase(fs.curSeg) + fs.curOff
	curSeg, curOff := fs.curSeg, fs.curOff
	nextSeg := fs.nextSeg
	seq := fs.seq
	// pendingPtr records each data block's newest logged address. Commit
	// forces defer indirect-pointer blocks, so the summaries are the
	// authoritative record of where data blocks went; the pointers are
	// rebuilt after the walk (last write wins).
	type ptrKey struct {
		ino Ino
		lbn int64
	}
	pendingPtr := make(map[ptrKey]int64)
	// apply folds one intact partial's summary into the recovered state:
	// blocks map one-to-one onto the entries with block-consuming kinds, in
	// order, at pos+1, pos+2, ... Inode pack blocks are decoded to learn
	// which inodes they carry; deletion records drop imap entries.
	apply := func(sum summary, payload [][]byte, pos, seg int64) error {
		blockIdx := int64(0)
		for _, e := range sum.Entries {
			switch e.Kind {
			case kindDelete:
				delete(fs.imap, e.Ino)
				if e.Ino >= fs.nextIno {
					fs.nextIno = e.Ino + 1
				}
				for k := range pendingPtr {
					if k.ino == e.Ino {
						delete(pendingPtr, k)
					}
				}
				continue
			case kindData:
				pendingPtr[ptrKey{e.Ino, e.Index}] = pos + 1 + blockIdx
			case kindInodePack:
				addr := pos + 1 + blockIdx
				// The payload CRC already matched, so the pack bytes are
				// the ones the summary was written against; a decode error
				// here is genuine corruption, not a torn tail.
				pack, err := decodeInodePack(payload[blockIdx])
				if err != nil {
					return fmt.Errorf("lfs: roll-forward pack at %d: %w", addr, err)
				}
				for _, in := range pack {
					fs.imap[in.ino] = addr
					if in.ino >= fs.nextIno {
						fs.nextIno = in.ino + 1
					}
				}
			}
			blockIdx++
		}
		fs.segs[seg].SeqStamp = sum.Seq
		if age := sum.AgeStamp; age > fs.segs[seg].AgeStamp {
			fs.segs[seg].AgeStamp = age
		}
		return nil
	}
	// batch holds the partials of a not-yet-terminated flush chain; commit
	// rewinds to the position/sequence after the last applied terminator.
	type readPartial struct {
		sum     summary
		payload [][]byte
		pos     int64
		seg     int64
	}
	var batch []readPartial
	commit := struct {
		seg, off, next int64
		seq            uint64
	}{curSeg, curOff, nextSeg, seq}
	for {
		if curOff >= fs.sb.SegmentBlocks-minSegmentTail+1 || curOff >= fs.sb.SegmentBlocks {
			// Current segment exhausted: the writer moved to nextSeg.
			curSeg, curOff = nextSeg, 0
			pos = fs.segBase(curSeg)
		}
		sum, payload, ok, err := fs.readPartialLocked(pos)
		if err != nil {
			return err
		}
		if !ok || sum.Seq != seq {
			// Check whether the writer advanced early (e.g. the partial
			// didn't fit the remaining space): try the next segment once.
			if curOff != 0 {
				tryPos := fs.segBase(nextSeg)
				s2, p2, ok2, err := fs.readPartialLocked(tryPos)
				if err != nil {
					return err
				}
				if ok2 && s2.Seq == seq {
					curSeg, curOff, pos = nextSeg, 0, tryPos
					sum, payload, ok = s2, p2, true
				}
			}
			if !ok || sum.Seq != seq {
				break
			}
		}
		batch = append(batch, readPartial{sum, payload, pos, curSeg})
		seq++
		nextSeg = sum.NextSeg
		curOff += int64(1 + sum.NBlocks)
		pos = fs.segBase(curSeg) + curOff
		if sum.Flags&sumFlagCont == 0 {
			for _, p := range batch {
				if err := apply(p.sum, p.payload, p.pos, p.seg); err != nil {
					return err
				}
			}
			batch = batch[:0]
			commit.seg, commit.off, commit.next, commit.seq = curSeg, curOff, nextSeg, seq
		}
	}
	// An unterminated batch is discarded whole; the log resumes where the
	// last complete batch ended.
	fs.curSeg, fs.curOff, fs.nextSeg = commit.seg, commit.off, commit.next
	fs.seq = commit.seq

	// Rebuild deferred indirect pointers from the summaries' data entries.
	// Direct-range entries are redundant with the inode pack contents
	// (setting them again is idempotent); indirect-range entries restore
	// pointer-block updates that were never written before the crash.
	ptrOrder := detsort.KeysFunc(pendingPtr, func(a, b ptrKey) int {
		if a.ino != b.ino {
			if a.ino < b.ino {
				return -1
			}
			return 1
		}
		if a.lbn != b.lbn {
			if a.lbn < b.lbn {
				return -1
			}
			return 1
		}
		return 0
	})
	for _, k := range ptrOrder {
		addr := pendingPtr[k]
		if k.lbn < NDirect {
			continue // direct pointers live in the inode pack, which is authoritative
		}
		if _, ok := fs.imap[k.ino]; !ok {
			continue // deleted after the write
		}
		in, err := fs.loadInode(k.ino)
		if err != nil {
			return fmt.Errorf("lfs: pointer replay for inode %d: %w", k.ino, err)
		}
		if k.lbn >= (in.size+int64(fs.blockSize)-1)/int64(fs.blockSize) {
			// Beyond the recovered size (e.g. a truncate intervened).
			continue
		}
		if _, err := fs.setBlockAddr(in, k.lbn, addr); err != nil {
			return err
		}
	}
	return nil
}

// rebuildUsageLocked recomputes the segment usage table from the recovered
// imap: walk every inode and count its blocks live in their segments.
func (fs *FS) rebuildUsageLocked() error {
	for s := range fs.segs {
		fs.segs[s].Live = 0
		if fs.segs[s].State == segCurrent || fs.segs[s].State == segReserved {
			fs.segs[s].State = segInLog
		}
	}
	mark := func(addr int64) {
		if s := fs.segOf(addr); s >= 0 {
			fs.segs[s].Live++
			if fs.segs[s].State == segFree {
				fs.segs[s].State = segInLog
			}
		}
	}
	// Inode pack blocks are shared: count each pack block once and rebuild
	// the reference counts from the imap.
	fs.packRefs = make(map[int64]int)
	for _, ino := range detsort.Keys(fs.imap) {
		addr := fs.imap[ino]
		if fs.packRefs[addr] == 0 {
			mark(addr)
		}
		fs.packRefs[addr]++
		in, err := fs.loadInode(ino)
		if err != nil {
			return fmt.Errorf("lfs: usage rebuild of inode %d: %w", ino, err)
		}
		err = fs.forEachBlock(in, func(kind blockKind, index, a int64) error {
			mark(a)
			return nil
		})
		if err != nil {
			return err
		}
	}
	// Segments with no live blocks become free, except the log head and
	// its reserved successor.
	fs.free = 0
	for s := int64(0); s < fs.sb.NumSegments; s++ {
		if fs.segs[s].Live == 0 && s != fs.curSeg && s != fs.nextSeg {
			fs.segs[s].State = segFree
			fs.free++
		} else if fs.segs[s].Live > 0 && fs.segs[s].State == segFree {
			fs.segs[s].State = segInLog
		}
	}
	fs.segs[fs.curSeg].State = segCurrent
	fs.segs[fs.nextSeg].State = segReserved
	return nil
}
