// Package figures regenerates every result figure of the paper's evaluation
// (§5, Figures 4–7) plus the ablations DESIGN.md calls out. Each function
// builds fresh simulated rigs, runs the measured workloads, and returns a
// report that prints the same series the paper plots, side by side with the
// paper's own numbers.
package figures

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/ffs"
	"repro/internal/lfs"
	"repro/internal/libtp"
	"repro/internal/sim"
	"repro/internal/tpcb"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// Options scales the experiments.
type Options struct {
	// Scale multiplies the paper's TPC-B sizing (1.0 = 1,000,000
	// accounts). Default 0.05.
	Scale float64
	// Txns is the number of transactions per measured run (the paper ran
	// its throughput tests to steady state and the SCAN test after
	// 100,000 transactions). Default 5000.
	Txns int
	// Costs is the CPU cost model (default sim.SpriteCosts()).
	Costs sim.CostModel
	// CleanerMode overrides the LFS cleaning discipline for the figure rigs:
	// "sync" or "idle" (background cleaning charged against foreground idle
	// windows). When empty, each rig uses its natural mode: the kernel-lfs
	// system cleans in idle-overlapped mode (its cleaner lives below the
	// device queue and sees idle windows), the user-level systems clean
	// synchronously (§5.4: a user-space cleaner cannot observe device
	// idleness and serializes with the application).
	CleanerMode string
	// CleanBatch overrides the cleaner's victims-per-pass batch size
	// (0 = the LFS default).
	CleanBatch int
	// MPLs are the multiprogramming levels the MPL sweep measures
	// (default 1, 2, 4, 8, 16).
	MPLs []int
	// GroupCommit is the batch size for the group-commit arm of the MPL
	// sweep (default 8); the other arm always forces per commit.
	GroupCommit int
	// LogSegmentBytes bounds the user-level systems' WAL segment size
	// (0 = the wal default); LogRetain archives dead segments at checkpoint
	// instead of deleting them.
	LogSegmentBytes int64
	LogRetain       bool
	// Scanners and ScansEach size the mixed OLTP + scan sweep (Scan):
	// Scanners concurrent readers each performing ScansEach full account
	// scans alongside the writers. Defaults 2 and 1.
	Scanners  int
	ScansEach int
}

// rigLogOptions copies the WAL segment knobs into a rig configuration.
func (o Options) rigLogOptions(r tpcb.RigOptions) tpcb.RigOptions {
	r.LogSegmentBytes = o.LogSegmentBytes
	r.LogRetain = o.LogRetain
	return r
}

func (o *Options) fill() {
	if o.Scale == 0 {
		o.Scale = 0.05
	}
	if o.Txns == 0 {
		o.Txns = 5000
	}
	if o.Costs == (sim.CostModel{}) {
		o.Costs = sim.SpriteCosts()
	}
	if len(o.MPLs) == 0 {
		o.MPLs = []int{1, 2, 4, 8, 16}
	}
	if o.GroupCommit == 0 {
		o.GroupCommit = 8
	}
	if o.Scanners == 0 {
		o.Scanners = 2
	}
	if o.ScansEach == 0 {
		o.ScansEach = 1
	}
}

// ---------------------------------------------------------------- Figure 4

// Figure4Row is one bar of Figure 4.
type Figure4Row struct {
	System  string
	TPS     float64
	Elapsed time.Duration
	// CleanerShare is the fraction of elapsed time the LFS cleaner
	// consumed (0 for the read-optimized system).
	CleanerShare float64
}

// Figure4Report reproduces Figure 4: transaction performance of the three
// configurations.
type Figure4Report struct {
	Opts Options
	Rows []Figure4Row
}

// Figure4 runs the modified TPC-B on the three systems.
func Figure4(opts Options) (*Figure4Report, error) {
	opts.fill()
	cfg := tpcb.ScaledConfig(opts.Scale)
	rep := &Figure4Report{Opts: opts}
	for _, kind := range []string{"user-ffs", "user-lfs", "kernel-lfs"} {
		ropts := tpcb.RigOptions{
			Kind: kind, Config: cfg, Costs: opts.Costs, ExpectedTxns: opts.Txns,
			CleanBatch: opts.CleanBatch,
		}
		if kind != "user-ffs" {
			ropts.CleanerMode = opts.CleanerMode
			if ropts.CleanerMode == "" && kind == "kernel-lfs" {
				ropts.CleanerMode = "idle"
			}
		}
		rig, err := tpcb.BuildRig(opts.rigLogOptions(ropts))
		if err != nil {
			return nil, fmt.Errorf("figure 4 %s: %w", kind, err)
		}
		res, err := rig.Run(cfg, opts.Txns)
		if err != nil {
			return nil, fmt.Errorf("figure 4 %s: %w", kind, err)
		}
		row := Figure4Row{System: kind, TPS: res.TPS, Elapsed: res.Elapsed}
		if rig.LFS != nil {
			// Only cleaner time on the critical path counts: background
			// passes subtract what the idle windows absorbed.
			cl := rig.LFS.Stats().Cleaner
			row.CleanerShare = float64(cl.BusyTime-cl.OverlapTime) / float64(res.Elapsed)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// String formats the report like the paper's Figure 4 bars.
func (r *Figure4Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — Transaction Performance (modified TPC-B, MPL=1, scale %.2f, %d txns)\n", r.Opts.Scale, r.Opts.Txns)
	fmt.Fprintf(&b, "  %-12s %8s %12s %14s   %s\n", "system", "TPS", "elapsed", "cleaner-share", "paper")
	paper := map[string]string{"user-ffs": "12.3 TPS", "user-lfs": "13.6 TPS", "kernel-lfs": "≈ user-lfs"}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %8.2f %12s %13.1f%%   %s\n",
			row.System, row.TPS, row.Elapsed.Truncate(time.Millisecond), row.CleanerShare*100, paper[row.System])
	}
	if len(r.Rows) == 3 {
		lfsWin := (r.Rows[1].TPS/r.Rows[0].TPS - 1) * 100
		kernelRatio := r.Rows[2].TPS / r.Rows[1].TPS
		fmt.Fprintf(&b, "  LFS over read-optimized: %+.1f%% (paper: +10%%); kernel/user on LFS: %.2f (paper: ≈1, user slowed by 2× sync syscalls)\n",
			lfsWin, kernelRatio)
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 5

// Figure5Row compares one workload on the two kernels.
type Figure5Row struct {
	Workload    string
	NormalK     time.Duration // unmodified kernel
	TxnK        time.Duration // kernel with embedded transaction support
	DeltaPct    float64
	PaperClaims string
}

// Figure5Report reproduces Figure 5: impact of the kernel transaction
// implementation on non-transaction workloads.
type Figure5Report struct {
	Rows []Figure5Row
}

// newWorkloadLFS builds a 96 MB LFS for the non-transaction workloads.
func newWorkloadLFS() (*lfs.FS, *sim.Clock, error) {
	clk := sim.NewClock()
	model := sim.RZ55Model()
	model.NumBlocks = 24576
	dev := disk.New(model, clk)
	fsys, err := lfs.Format(dev, clk, lfs.Options{CacheBlocks: 2048})
	return fsys, clk, err
}

// Figure5 runs Andrew, Bigfile, and the user-level transaction system on an
// unmodified kernel and on the transaction-enabled kernel.
func Figure5(opts Options) (*Figure5Report, error) {
	opts.fill()
	rep := &Figure5Report{}

	// Andrew.
	fsA, clkA, err := newWorkloadLFS()
	if err != nil {
		return nil, err
	}
	andrewPlain, err := workload.RunAndrew(fsA, clkA, workload.DefaultAndrew())
	if err != nil {
		return nil, err
	}
	fsB, clkB, err := newWorkloadLFS()
	if err != nil {
		return nil, err
	}
	andrewTxn, err := workload.RunAndrew(core.New(fsB, clkB, core.Options{Costs: opts.Costs}).AsFileSystem(), clkB, workload.DefaultAndrew())
	if err != nil {
		return nil, err
	}
	rep.add("ANDREW", andrewPlain.Total(), andrewTxn.Total())

	// Bigfile.
	fsC, clkC, err := newWorkloadLFS()
	if err != nil {
		return nil, err
	}
	bigPlain, err := workload.RunBigfile(fsC, clkC, workload.DefaultBigfile())
	if err != nil {
		return nil, err
	}
	fsD, clkD, err := newWorkloadLFS()
	if err != nil {
		return nil, err
	}
	bigTxn, err := workload.RunBigfile(core.New(fsD, clkD, core.Options{Costs: opts.Costs}).AsFileSystem(), clkD, workload.DefaultBigfile())
	if err != nil {
		return nil, err
	}
	rep.add("BIGFILE", bigPlain.Total(), bigTxn.Total())

	// User-TP: the user-level transaction system, which uses none of the
	// kernel transaction machinery. On the transaction kernel its file
	// accesses still pass through the embedded manager's lock-necessity
	// check.
	userTP := func(asTxnKernel bool) (time.Duration, error) {
		cfg := tpcb.ScaledConfig(opts.Scale / 2)
		n := opts.Txns / 5
		if n < 200 {
			n = 200
		}
		clk := sim.NewClock()
		dev := disk.New(tpcb.DiskModelFor(cfg, n), clk)
		cache := tpcb.CacheBlocksFor(cfg, n)
		base, err := lfs.Format(dev, clk, lfs.Options{CacheBlocks: cache})
		if err != nil {
			return 0, err
		}
		var fsys vfs.FileSystem = base
		if asTxnKernel {
			fsys = core.New(base, clk, core.Options{Costs: opts.Costs}).AsFileSystem()
		}
		env, err := libtp.NewEnv(fsys, clk, libtp.Options{CacheBlocks: cache, Costs: opts.Costs})
		if err != nil {
			return 0, err
		}
		sys := tpcb.NewUserSystem(env, clk, opts.Costs)
		if err := sys.Load(cfg); err != nil {
			return 0, err
		}
		res, err := tpcb.RunBenchmark(sys, clk, cfg, n)
		if err != nil {
			return 0, err
		}
		return res.Elapsed, nil
	}
	tpPlain, err := userTP(false)
	if err != nil {
		return nil, err
	}
	tpTxn, err := userTP(true)
	if err != nil {
		return nil, err
	}
	rep.add("USER-TP", tpPlain, tpTxn)
	return rep, nil
}

func (r *Figure5Report) add(name string, plain, txn time.Duration) {
	r.Rows = append(r.Rows, Figure5Row{
		Workload:    name,
		NormalK:     plain,
		TxnK:        txn,
		DeltaPct:    (float64(txn)/float64(plain) - 1) * 100,
		PaperClaims: "within 1–2%",
	})
}

// String formats the report like Figure 5.
func (r *Figure5Report) String() string {
	var b strings.Builder
	b.WriteString("Figure 5 — Non-Transaction Performance (normal kernel vs transaction kernel)\n")
	fmt.Fprintf(&b, "  %-10s %14s %14s %9s   %s\n", "workload", "normal", "txn-kernel", "delta", "paper")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s %14s %14s %+8.2f%%   %s\n",
			row.Workload, row.NormalK.Truncate(time.Millisecond), row.TxnK.Truncate(time.Millisecond), row.DeltaPct, row.PaperClaims)
	}
	return b.String()
}

// ------------------------------------------------------------- Figures 6/7

// Figure67Report reproduces the SCAN test (Figure 6) and the combined
// elapsed-time crossover (Figure 7).
type Figure67Report struct {
	Opts Options
	// Per-system transaction rates (from the update phase).
	FFSTPS, LFSTPS float64
	// Sequential key-order scan times after the random updates.
	FFSScan, LFSScan time.Duration
	// LFSScanCoalesced is the LFS scan after running the coalescing
	// cleaner (the §5.3/§5.4 enhancement) — the "promising solution" the
	// paper's conclusion points to.
	LFSScanCoalesced time.Duration
	// ScanPenalty = LFSScan/FFSScan (paper: read-optimized ~50% faster).
	ScanPenalty float64
	// CrossoverTxns is where the two total-elapsed lines intersect
	// (paper: ≈134,300 at full scale, ≈2h40m of peak throughput).
	CrossoverTxns  float64
	CrossoverTime  time.Duration
	Series         []Figure7Point
	PaperCrossover string
}

// Figure7Point is one x-position of Figure 7.
type Figure7Point struct {
	Txns     int
	FFSTotal time.Duration
	LFSTotal time.Duration
}

// Figure67 runs the SCAN experiment: load, run the update phase, remount
// (cold cache), then read the account relation in key order.
func Figure67(opts Options) (*Figure67Report, error) {
	opts.fill()
	cfg := tpcb.ScaledConfig(opts.Scale)
	rep := &Figure67Report{Opts: opts, PaperCrossover: "≈134,300 txns (≈2h40m at 13.6 TPS)"}

	type sysResult struct {
		tps           float64
		scan          time.Duration
		scanCoalesced time.Duration
	}
	runOne := func(kind string) (sysResult, error) {
		rig, err := tpcb.BuildRig(opts.rigLogOptions(tpcb.RigOptions{Kind: kind, Config: cfg, Costs: opts.Costs, ExpectedTxns: opts.Txns}))
		if err != nil {
			return sysResult{}, err
		}
		res, err := tpcb.RunBenchmark(rig.Sys, rig.Clock, cfg, opts.Txns)
		if err != nil {
			return sysResult{}, err
		}
		// Cold cache: remount the file system from the device.
		var scanFS interface {
			Name() string
		}
		start := rig.Clock.Now()
		// Cursor CPU: the paper's scan pushes every record through the
		// record layer; charge half a keyed record operation per record
		// (a cursor-next is cheaper than a search).
		scanCPU := func(records int64) {
			rig.Clock.Advance(time.Duration(records) * opts.Costs.RecordOp / 2)
		}
		switch kind {
		case "user-ffs":
			fsys, err := ffs.Mount(rig.Dev, rig.Clock, ffs.Options{CacheBlocks: 256})
			if err != nil {
				return sysResult{}, err
			}
			start = rig.Clock.Now() // exclude mount time
			n, err := tpcb.ScanAccountsOn(fsys)
			if err != nil {
				return sysResult{}, err
			}
			scanCPU(n)
			scanFS = fsys
		case "user-lfs":
			fsys, err := lfs.Mount(rig.Dev, rig.Clock, lfs.Options{CacheBlocks: 256})
			if err != nil {
				return sysResult{}, err
			}
			start = rig.Clock.Now()
			n, err := tpcb.ScanAccountsOn(fsys)
			if err != nil {
				return sysResult{}, err
			}
			scanCPU(n)
			scan := rig.Clock.Now() - start

			// The §5.3/§5.4 enhancement: coalesce the fragmented account
			// file with the cleaner machinery, then scan again cold.
			if err := fsys.Coalesce(tpcb.AccountPath); err != nil {
				return sysResult{}, err
			}
			if err := fsys.Sync(); err != nil {
				return sysResult{}, err
			}
			fs3, err := lfs.Mount(rig.Dev, rig.Clock, lfs.Options{CacheBlocks: 256})
			if err != nil {
				return sysResult{}, err
			}
			start2 := rig.Clock.Now()
			n2, err := tpcb.ScanAccountsOn(fs3)
			if err != nil {
				return sysResult{}, err
			}
			scanCPU(n2)
			return sysResult{tps: res.TPS, scan: scan, scanCoalesced: rig.Clock.Now() - start2}, nil
		}
		_ = scanFS
		return sysResult{tps: res.TPS, scan: rig.Clock.Now() - start}, nil
	}

	ffsRes, err := runOne("user-ffs")
	if err != nil {
		return nil, fmt.Errorf("figure 6 ffs: %w", err)
	}
	lfsRes, err := runOne("user-lfs")
	if err != nil {
		return nil, fmt.Errorf("figure 6 lfs: %w", err)
	}
	rep.FFSTPS, rep.FFSScan = ffsRes.tps, ffsRes.scan
	rep.LFSTPS, rep.LFSScan = lfsRes.tps, lfsRes.scan
	rep.LFSScanCoalesced = lfsRes.scanCoalesced
	rep.ScanPenalty = float64(lfsRes.scan) / float64(ffsRes.scan)

	// Figure 7: total elapsed = txns/TPS + scan (scan held at its
	// after-N-updates cost, as the paper does). Crossover where the lines
	// meet.
	den := 1/rep.FFSTPS - 1/rep.LFSTPS
	if den > 0 {
		rep.CrossoverTxns = (rep.LFSScan - rep.FFSScan).Seconds() / den
		rep.CrossoverTime = time.Duration(rep.CrossoverTxns / rep.LFSTPS * float64(time.Second))
	}
	maxT := int(rep.CrossoverTxns * 2)
	if maxT < opts.Txns {
		maxT = opts.Txns
	}
	for i := 0; i <= 8; i++ {
		n := maxT * i / 8
		rep.Series = append(rep.Series, Figure7Point{
			Txns:     n,
			FFSTotal: time.Duration(float64(n)/rep.FFSTPS*float64(time.Second)) + rep.FFSScan,
			LFSTotal: time.Duration(float64(n)/rep.LFSTPS*float64(time.Second)) + rep.LFSScan,
		})
	}
	return rep, nil
}

// String formats Figures 6 and 7.
func (r *Figure67Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — Sequential (key-order) read after %d random-update txns (scale %.2f)\n", r.Opts.Txns, r.Opts.Scale)
	fmt.Fprintf(&b, "  %-16s %14s\n", "system", "scan elapsed")
	fmt.Fprintf(&b, "  %-16s %14s\n", "read-optimized", r.FFSScan.Truncate(time.Millisecond))
	fmt.Fprintf(&b, "  %-16s %14s\n", "LFS", r.LFSScan.Truncate(time.Millisecond))
	fmt.Fprintf(&b, "  %-16s %14s  (after the §5.4 coalescing cleaner)\n", "LFS coalesced", r.LFSScanCoalesced.Truncate(time.Millisecond))
	fmt.Fprintf(&b, "  LFS/read-optimized scan ratio: %.2f (paper: read-optimized ≈50%% faster, ratio ≈1.5); coalesced ratio: %.2f\n\n",
		r.ScanPenalty, float64(r.LFSScanCoalesced)/float64(r.FFSScan))

	b.WriteString("Figure 7 — Total elapsed time (transactions + one scan)\n")
	fmt.Fprintf(&b, "  %-10s %16s %16s\n", "txns", "read-optimized", "LFS")
	for _, p := range r.Series {
		fmt.Fprintf(&b, "  %-10d %16s %16s\n", p.Txns, p.FFSTotal.Truncate(time.Second), p.LFSTotal.Truncate(time.Second))
	}
	fmt.Fprintf(&b, "  crossover: %.0f txns (%s of peak throughput); paper at full scale: %s\n",
		r.CrossoverTxns, r.CrossoverTime.Truncate(time.Second), r.PaperCrossover)
	return b.String()
}
