package figures

import (
	"fmt"
	"strings"

	"repro/internal/tpcb"
	"repro/internal/trace"
)

// BenchReport is the traced benchmark sweep: every measured configuration's
// full snapshot (result, subsystem stats, per-proc time attribution, metrics
// registry), plus the tracer of the last kernel-lfs run for callers that
// want to export its Chrome trace.
type BenchReport struct {
	Opts Options
	Rows []*trace.Snapshot
	// Tracer is the tracer of the final (kernel-lfs, high-MPL) run, kept
	// so cmd/txnbench can write its Chrome trace-event file. Excluded from
	// JSON: the snapshot rows already carry the metrics.
	Tracer *trace.Tracer `json:"-"`
}

// Bench runs the three systems at MPL 1 (per-commit force) and at the
// group-commit MPL (default 8) with tracing on, collecting a snapshot per
// run. It is the machine-readable companion to Figure 4/Figure 5: one JSON
// document with every counter and the per-proc time breakdown, byte-stable
// across same-seed runs.
func Bench(opts Options) (*BenchReport, error) {
	opts.fill()
	cfg := tpcb.ScaledConfig(opts.Scale)
	rep := &BenchReport{Opts: opts}
	type leg struct {
		mpl, gc int
	}
	legs := []leg{{1, 1}, {max(opts.GroupCommit, 2), opts.GroupCommit}}
	for _, l := range legs {
		for _, kind := range []string{"user-ffs", "user-lfs", "kernel-lfs"} {
			ropts := tpcb.RigOptions{
				Kind: kind, Config: cfg, Costs: opts.Costs, ExpectedTxns: opts.Txns,
				GroupCommit: l.gc, CleanBatch: opts.CleanBatch, Trace: true,
			}
			if kind != "user-ffs" {
				ropts.CleanerMode = opts.CleanerMode
				if ropts.CleanerMode == "" && kind == "kernel-lfs" {
					ropts.CleanerMode = "idle"
				}
			}
			rig, err := tpcb.BuildRig(opts.rigLogOptions(ropts))
			if err != nil {
				return nil, fmt.Errorf("bench %s mpl=%d: %w", kind, l.mpl, err)
			}
			res, err := rig.RunMPL(cfg, opts.Txns, l.mpl)
			if err != nil {
				return nil, fmt.Errorf("bench %s mpl=%d: %w", kind, l.mpl, err)
			}
			rep.Rows = append(rep.Rows, tpcb.CollectSnapshot(rig, res, rig.Tracer))
			rep.Tracer = rig.Tracer
		}
	}
	return rep, nil
}

func (r *BenchReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Traced benchmark sweep (scale %.2f, %d txns per run)\n", r.Opts.Scale, r.Opts.Txns)
	for _, snap := range r.Rows {
		b.WriteByte('\n')
		b.WriteString(snap.Render())
	}
	return b.String()
}
