package figures

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/lfs"
	"repro/internal/sim"
	"repro/internal/tpcb"
)

// ------------------------------------------------------------ Ablation: sync

// SyncAblationReport quantifies §5.1's synchronization analysis: without
// hardware test-and-set, user-level locking costs two system calls per
// operation; with fast user-level mutual exclusion [1] the user/kernel gap
// closes.
type SyncAblationReport struct {
	Opts Options
	// TPS for (user, kernel) under each cost model.
	SlowUser, SlowKernel float64 // no test-and-set (Sprite)
	FastUser, FastKernel float64 // fast user-level sync
}

// AblationSync runs user-lfs and kernel-lfs under both cost models.
func AblationSync(opts Options) (*SyncAblationReport, error) {
	opts.fill()
	cfg := tpcb.ScaledConfig(opts.Scale)
	rep := &SyncAblationReport{Opts: opts}
	run := func(kind string, costs sim.CostModel) (float64, error) {
		rig, err := tpcb.BuildRig(tpcb.RigOptions{Kind: kind, Config: cfg, Costs: costs, ExpectedTxns: opts.Txns})
		if err != nil {
			return 0, err
		}
		res, err := tpcb.RunBenchmark(rig.Sys, rig.Clock, cfg, opts.Txns)
		if err != nil {
			return 0, err
		}
		return res.TPS, nil
	}
	var err error
	if rep.SlowUser, err = run("user-lfs", sim.SpriteCosts()); err != nil {
		return nil, err
	}
	if rep.SlowKernel, err = run("kernel-lfs", sim.SpriteCosts()); err != nil {
		return nil, err
	}
	if rep.FastUser, err = run("user-lfs", sim.FastSyncCosts()); err != nil {
		return nil, err
	}
	if rep.FastKernel, err = run("kernel-lfs", sim.FastSyncCosts()); err != nil {
		return nil, err
	}
	return rep, nil
}

// String formats the ablation.
func (r *SyncAblationReport) String() string {
	var b strings.Builder
	b.WriteString("Ablation — synchronization cost (§5.1: no hardware test-and-set doubles user-level sync)\n")
	fmt.Fprintf(&b, "  %-26s %10s %10s %12s\n", "cost model", "user TPS", "kernel TPS", "user gain")
	fmt.Fprintf(&b, "  %-26s %10.2f %10.2f %+11.2f%%\n", "Sprite (2 syscalls/sync)", r.SlowUser, r.SlowKernel, 0.0)
	fmt.Fprintf(&b, "  %-26s %10.2f %10.2f %+11.2f%%\n", "fast user sync [1]", r.FastUser, r.FastKernel,
		(r.FastUser/r.SlowUser-1)*100)
	b.WriteString("  (the user-level system gains from fast sync; the kernel system is unaffected)\n")
	return b.String()
}

// -------------------------------------------------------- Ablation: cleaner

// CleanerAblationReport quantifies §5.4: the in-kernel cleaner stalls the
// workload (its I/O sits on the critical path); a user-space cleaner
// running in idle periods approaches the no-stall bound.
type CleanerAblationReport struct {
	Opts Options
	// Elapsed with the synchronous in-kernel cleaner.
	KernelCleaner time.Duration
	// CleanerBusy is the device time the cleaner consumed.
	CleanerBusy time.Duration
	// UserCleanerBound is the elapsed time with cleaning fully overlapped
	// into idle periods (the §5.4 design's upper bound).
	UserCleanerBound time.Duration
	TPSKernel        float64
	TPSUserBound     float64
}

// AblationCleaner measures the kernel-cleaner run and derives the
// user-space-cleaner bound.
func AblationCleaner(opts Options) (*CleanerAblationReport, error) {
	opts.fill()
	cfg := tpcb.ScaledConfig(opts.Scale)
	rig, err := tpcb.BuildRig(tpcb.RigOptions{Kind: "kernel-lfs", Config: cfg, Costs: opts.Costs, ExpectedTxns: opts.Txns})
	if err != nil {
		return nil, err
	}
	res, err := tpcb.RunBenchmark(rig.Sys, rig.Clock, cfg, opts.Txns)
	if err != nil {
		return nil, err
	}
	busy := rig.LFS.Stats().Cleaner.BusyTime
	bound := res.Elapsed - busy
	rep := &CleanerAblationReport{
		Opts:             opts,
		KernelCleaner:    res.Elapsed,
		CleanerBusy:      busy,
		UserCleanerBound: bound,
		TPSKernel:        res.TPS,
		TPSUserBound:     float64(opts.Txns) / bound.Seconds(),
	}
	return rep, nil
}

// String formats the ablation.
func (r *CleanerAblationReport) String() string {
	var b strings.Builder
	b.WriteString("Ablation — cleaner placement (§5.4: move the cleaner to user space)\n")
	fmt.Fprintf(&b, "  in-kernel cleaner (measured): %12s  %.2f TPS\n", r.KernelCleaner.Truncate(time.Millisecond), r.TPSKernel)
	fmt.Fprintf(&b, "  cleaner device time:          %12s  (%.1f%% of elapsed)\n", r.CleanerBusy.Truncate(time.Millisecond),
		float64(r.CleanerBusy)/float64(r.KernelCleaner)*100)
	fmt.Fprintf(&b, "  user-space cleaner bound:     %12s  %.2f TPS (cleaning fully overlapped with idle)\n",
		r.UserCleanerBound.Truncate(time.Millisecond), r.TPSUserBound)
	return b.String()
}

// --------------------------------------------------- Ablation: group commit

// GroupCommitReport shows the log-force amortization of group commit (§4.4).
type GroupCommitReport struct {
	Opts    Options
	Batches []int
	UserTPS []float64
	Forces  []int64
}

// AblationGroupCommit sweeps the user-level system's commit batch size.
// (At MPL=1 the kernel system's strict group commit degenerates on TPC-B's
// hot pages — every transaction conflicts with the pending batch — so the
// user-level WAL, which has no page conflicts on the log, is where the
// effect shows.)
func AblationGroupCommit(opts Options) (*GroupCommitReport, error) {
	opts.fill()
	cfg := tpcb.ScaledConfig(opts.Scale)
	rep := &GroupCommitReport{Opts: opts, Batches: []int{1, 4, 16}}
	for _, batch := range rep.Batches {
		rig, err := tpcb.BuildRig(tpcb.RigOptions{Kind: "user-lfs", Config: cfg, Costs: opts.Costs,
			GroupCommit: batch, ExpectedTxns: opts.Txns})
		if err != nil {
			return nil, err
		}
		res, err := tpcb.RunBenchmark(rig.Sys, rig.Clock, cfg, opts.Txns)
		if err != nil {
			return nil, err
		}
		rep.UserTPS = append(rep.UserTPS, res.TPS)
		rep.Forces = append(rep.Forces, rig.Env.LogStats().Forces)
	}
	return rep, nil
}

// String formats the ablation.
func (r *GroupCommitReport) String() string {
	var b strings.Builder
	b.WriteString("Ablation — group commit (§4.4: amortize the commit force)\n")
	fmt.Fprintf(&b, "  %-8s %10s %12s\n", "batch", "user TPS", "log forces")
	for i, batch := range r.Batches {
		fmt.Fprintf(&b, "  %-8d %10.2f %12d\n", batch, r.UserTPS[i], r.Forces[i])
	}
	return b.String()
}

// -------------------------------------------------- Ablation: commit volume

// CommitBytesReport contrasts §4.3's whole-page commit flush with WAL's
// delta logging.
type CommitBytesReport struct {
	Opts Options
	// KernelBytesPerTxn: whole pages forced at commit by the embedded TM.
	KernelBytesPerTxn float64
	// UserLogBytesPerTxn: bytes of before/after images in the WAL.
	UserLogBytesPerTxn float64
	// TPS of both systems, showing the paper's claim that the extra
	// sequential commit bytes barely matter next to the random reads.
	KernelTPS, UserTPS float64
}

// AblationCommitBytes measures the write volume difference.
func AblationCommitBytes(opts Options) (*CommitBytesReport, error) {
	opts.fill()
	cfg := tpcb.ScaledConfig(opts.Scale)
	rep := &CommitBytesReport{Opts: opts}

	rigK, err := tpcb.BuildRig(tpcb.RigOptions{Kind: "kernel-lfs", Config: cfg, Costs: opts.Costs, ExpectedTxns: opts.Txns})
	if err != nil {
		return nil, err
	}
	resK, err := tpcb.RunBenchmark(rigK.Sys, rigK.Clock, cfg, opts.Txns)
	if err != nil {
		return nil, err
	}
	rep.KernelBytesPerTxn = float64(rigK.Core.Stats().BytesFlushed) / float64(opts.Txns)
	rep.KernelTPS = resK.TPS

	rigU, err := tpcb.BuildRig(tpcb.RigOptions{Kind: "user-lfs", Config: cfg, Costs: opts.Costs, ExpectedTxns: opts.Txns})
	if err != nil {
		return nil, err
	}
	resU, err := tpcb.RunBenchmark(rigU.Sys, rigU.Clock, cfg, opts.Txns)
	if err != nil {
		return nil, err
	}
	rep.UserLogBytesPerTxn = float64(rigU.Env.LogStats().BytesLogged) / float64(opts.Txns)
	rep.UserTPS = resU.TPS
	return rep, nil
}

// String formats the ablation.
func (r *CommitBytesReport) String() string {
	var b strings.Builder
	b.WriteString("Ablation — commit volume (§4.3: whole pages at commit vs logging only the updated bytes)\n")
	fmt.Fprintf(&b, "  embedded (whole pages): %10.0f bytes/txn   %.2f TPS\n", r.KernelBytesPerTxn, r.KernelTPS)
	fmt.Fprintf(&b, "  WAL (byte deltas):      %10.0f bytes/txn   %.2f TPS\n", r.UserLogBytesPerTxn, r.UserTPS)
	fmt.Fprintf(&b, "  ratio: %.0f× more bytes forced at commit by the embedded system\n",
		r.KernelBytesPerTxn/r.UserLogBytesPerTxn)
	return b.String()
}

// ----------------------------------------------- Ablation: cleaner policies

// CleanerPolicyReport compares greedy vs cost-benefit victim selection.
type CleanerPolicyReport struct {
	Opts     Options
	Policies []string
	TPS      []float64
	Copied   []int64 // live blocks copied (write amplification)
	Cleaned  []int64 // segments reclaimed
}

// AblationCleanerPolicy runs kernel-lfs TPC-B under both policies.
func AblationCleanerPolicy(opts Options) (*CleanerPolicyReport, error) {
	opts.fill()
	cfg := tpcb.ScaledConfig(opts.Scale)
	rep := &CleanerPolicyReport{Opts: opts}
	for _, pol := range []lfs.CleanerPolicy{lfs.Greedy, lfs.CostBenefit} {
		rig, err := tpcb.BuildRig(tpcb.RigOptions{Kind: "kernel-lfs", Config: cfg, Costs: opts.Costs,
			Policy: pol, ExpectedTxns: opts.Txns})
		if err != nil {
			return nil, err
		}
		res, err := tpcb.RunBenchmark(rig.Sys, rig.Clock, cfg, opts.Txns)
		if err != nil {
			return nil, err
		}
		st := rig.LFS.Stats().Cleaner
		rep.Policies = append(rep.Policies, pol.String())
		rep.TPS = append(rep.TPS, res.TPS)
		rep.Copied = append(rep.Copied, st.BlocksCopied)
		rep.Cleaned = append(rep.Cleaned, st.SegmentsCleaned)
	}
	return rep, nil
}

// String formats the ablation.
func (r *CleanerPolicyReport) String() string {
	var b strings.Builder
	b.WriteString("Ablation — cleaner victim selection policy\n")
	fmt.Fprintf(&b, "  %-14s %8s %14s %12s\n", "policy", "TPS", "blocks copied", "segs cleaned")
	for i := range r.Policies {
		fmt.Fprintf(&b, "  %-14s %8.2f %14d %12d\n", r.Policies[i], r.TPS[i], r.Copied[i], r.Cleaned[i])
	}
	return b.String()
}
