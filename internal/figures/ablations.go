package figures

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/lfs"
	"repro/internal/sim"
	"repro/internal/tpcb"
)

// ------------------------------------------------------------ Ablation: sync

// SyncAblationReport quantifies §5.1's synchronization analysis: without
// hardware test-and-set, user-level locking costs two system calls per
// operation; with fast user-level mutual exclusion [1] the user/kernel gap
// closes.
type SyncAblationReport struct {
	Opts Options
	// TPS for (user, kernel) under each cost model.
	SlowUser, SlowKernel float64 // no test-and-set (Sprite)
	FastUser, FastKernel float64 // fast user-level sync
}

// AblationSync runs user-lfs and kernel-lfs under both cost models.
func AblationSync(opts Options) (*SyncAblationReport, error) {
	opts.fill()
	cfg := tpcb.ScaledConfig(opts.Scale)
	rep := &SyncAblationReport{Opts: opts}
	run := func(kind string, costs sim.CostModel) (float64, error) {
		rig, err := tpcb.BuildRig(opts.rigLogOptions(tpcb.RigOptions{Kind: kind, Config: cfg, Costs: costs, ExpectedTxns: opts.Txns}))
		if err != nil {
			return 0, err
		}
		res, err := tpcb.RunBenchmark(rig.Sys, rig.Clock, cfg, opts.Txns)
		if err != nil {
			return 0, err
		}
		return res.TPS, nil
	}
	var err error
	if rep.SlowUser, err = run("user-lfs", sim.SpriteCosts()); err != nil {
		return nil, err
	}
	if rep.SlowKernel, err = run("kernel-lfs", sim.SpriteCosts()); err != nil {
		return nil, err
	}
	if rep.FastUser, err = run("user-lfs", sim.FastSyncCosts()); err != nil {
		return nil, err
	}
	if rep.FastKernel, err = run("kernel-lfs", sim.FastSyncCosts()); err != nil {
		return nil, err
	}
	return rep, nil
}

// String formats the ablation.
func (r *SyncAblationReport) String() string {
	var b strings.Builder
	b.WriteString("Ablation — synchronization cost (§5.1: no hardware test-and-set doubles user-level sync)\n")
	fmt.Fprintf(&b, "  %-26s %10s %10s %12s\n", "cost model", "user TPS", "kernel TPS", "user gain")
	fmt.Fprintf(&b, "  %-26s %10.2f %10.2f %+11.2f%%\n", "Sprite (2 syscalls/sync)", r.SlowUser, r.SlowKernel, 0.0)
	fmt.Fprintf(&b, "  %-26s %10.2f %10.2f %+11.2f%%\n", "fast user sync [1]", r.FastUser, r.FastKernel,
		(r.FastUser/r.SlowUser-1)*100)
	b.WriteString("  (the user-level system gains from fast sync; the kernel system is unaffected)\n")
	return b.String()
}

// -------------------------------------------------------- Ablation: cleaner

// CleanerAblationReport quantifies §5.4: the synchronous in-kernel cleaner
// stalls the workload (its I/O sits on the critical path); the measured
// idle-overlapped background cleaner hides that I/O in the device's idle
// windows and approaches the analytic no-stall bound.
type CleanerAblationReport struct {
	Opts Options

	// Synchronous in-kernel cleaner (measured baseline).
	SyncElapsed time.Duration
	SyncBusy    time.Duration // cleaner device time, all of it on the critical path
	TPSSync     float64

	// Idle-overlapped background cleaner (measured).
	IdleElapsed time.Duration
	IdleBusy    time.Duration // total cleaner device time
	IdleOverlap time.Duration // absorbed by foreground idle windows
	IdleStall   time.Duration // residue that stalled the workload
	TPSIdle     float64
	// IdleWriteAmp is total logged blocks over foreground logged blocks in
	// the idle run (1.0 = the cleaner added no writes).
	IdleWriteAmp float64

	// Analytic no-stall bound derived from the synchronous run
	// (elapsed − cleaner busy): the ceiling §5.4's design aims at.
	BoundElapsed time.Duration
	TPSBound     float64

	// User-level system on LFS under the same rig — the configuration the
	// paper's Figure 4 shows the synchronous kernel cleaner losing to.
	TPSUser float64
}

// AblationCleaner measures kernel-lfs with the synchronous cleaner and with
// the idle-overlapped background cleaner, derives the analytic no-stall
// bound, and runs user-lfs for the cross-system comparison.
func AblationCleaner(opts Options) (*CleanerAblationReport, error) {
	opts.fill()
	cfg := tpcb.ScaledConfig(opts.Scale)
	rep := &CleanerAblationReport{Opts: opts}

	run := func(kind, mode string) (tpcb.Result, *tpcb.Rig, error) {
		rig, err := tpcb.BuildRig(opts.rigLogOptions(tpcb.RigOptions{Kind: kind, Config: cfg, Costs: opts.Costs,
			ExpectedTxns: opts.Txns, CleanerMode: mode, CleanBatch: opts.CleanBatch}))
		if err != nil {
			return tpcb.Result{}, nil, err
		}
		res, err := rig.Run(cfg, opts.Txns)
		return res, rig, err
	}

	resSync, rigSync, err := run("kernel-lfs", "sync")
	if err != nil {
		return nil, err
	}
	rep.SyncElapsed = resSync.Elapsed
	rep.SyncBusy = rigSync.LFS.Stats().Cleaner.BusyTime
	rep.TPSSync = resSync.TPS

	resIdle, rigIdle, err := run("kernel-lfs", "idle")
	if err != nil {
		return nil, err
	}
	st := rigIdle.LFS.Stats()
	rep.IdleElapsed = resIdle.Elapsed
	rep.IdleBusy = st.Cleaner.BusyTime
	rep.IdleOverlap = st.Cleaner.OverlapTime
	rep.IdleStall = st.Cleaner.StallTime
	rep.TPSIdle = resIdle.TPS
	rep.IdleWriteAmp = st.WriteAmplification()

	rep.BoundElapsed = rep.SyncElapsed - rep.SyncBusy
	if rep.BoundElapsed > 0 {
		rep.TPSBound = float64(opts.Txns) / rep.BoundElapsed.Seconds()
	}

	resUser, _, err := run("user-lfs", "sync")
	if err != nil {
		return nil, err
	}
	rep.TPSUser = resUser.TPS
	return rep, nil
}

// String formats the ablation.
func (r *CleanerAblationReport) String() string {
	var b strings.Builder
	b.WriteString("Ablation — cleaner placement (§5.4: take the cleaner off the critical path)\n")
	fmt.Fprintf(&b, "  %-34s %12s %8s %15s\n", "configuration", "elapsed", "TPS", "cleaner stall")
	fmt.Fprintf(&b, "  %-34s %12s %8.2f %14.1f%%\n", "synchronous in-kernel (measured)",
		r.SyncElapsed.Truncate(time.Millisecond), r.TPSSync, float64(r.SyncBusy)/float64(r.SyncElapsed)*100)
	fmt.Fprintf(&b, "  %-34s %12s %8.2f %14.1f%%\n", "idle-overlapped (measured)",
		r.IdleElapsed.Truncate(time.Millisecond), r.TPSIdle, float64(r.IdleStall)/float64(r.IdleElapsed)*100)
	fmt.Fprintf(&b, "  %-34s %12s %8.2f %15s\n", "no-stall bound (analytic)",
		r.BoundElapsed.Truncate(time.Millisecond), r.TPSBound, "0.0%")
	fmt.Fprintf(&b, "  idle cleaner: %s busy = %s overlapped + %s stalled; write amplification %.2f×\n",
		r.IdleBusy.Truncate(time.Millisecond), r.IdleOverlap.Truncate(time.Millisecond),
		r.IdleStall.Truncate(time.Millisecond), r.IdleWriteAmp)
	fmt.Fprintf(&b, "  user-level on LFS: %.2f TPS → kernel/user ratio %.2f sync, %.2f idle-overlapped\n",
		r.TPSUser, r.TPSSync/r.TPSUser, r.TPSIdle/r.TPSUser)
	return b.String()
}

// --------------------------------------------------- Ablation: group commit

// GroupCommitReport shows the log-force amortization of group commit (§4.4).
type GroupCommitReport struct {
	Opts    Options
	Batches []int
	UserTPS []float64
	Forces  []int64
}

// AblationGroupCommit sweeps the user-level system's commit batch size.
// (At MPL=1 the kernel system's strict group commit degenerates on TPC-B's
// hot pages — every transaction conflicts with the pending batch — so the
// user-level WAL, which has no page conflicts on the log, is where the
// effect shows.)
func AblationGroupCommit(opts Options) (*GroupCommitReport, error) {
	opts.fill()
	cfg := tpcb.ScaledConfig(opts.Scale)
	rep := &GroupCommitReport{Opts: opts, Batches: []int{1, 4, 16}}
	for _, batch := range rep.Batches {
		rig, err := tpcb.BuildRig(opts.rigLogOptions(tpcb.RigOptions{Kind: "user-lfs", Config: cfg, Costs: opts.Costs,
			GroupCommit: batch, ExpectedTxns: opts.Txns}))
		if err != nil {
			return nil, err
		}
		res, err := tpcb.RunBenchmark(rig.Sys, rig.Clock, cfg, opts.Txns)
		if err != nil {
			return nil, err
		}
		rep.UserTPS = append(rep.UserTPS, res.TPS)
		rep.Forces = append(rep.Forces, rig.Env.LogStats().Forces)
	}
	return rep, nil
}

// String formats the ablation.
func (r *GroupCommitReport) String() string {
	var b strings.Builder
	b.WriteString("Ablation — group commit (§4.4: amortize the commit force)\n")
	fmt.Fprintf(&b, "  %-8s %10s %12s\n", "batch", "user TPS", "log forces")
	for i, batch := range r.Batches {
		fmt.Fprintf(&b, "  %-8d %10.2f %12d\n", batch, r.UserTPS[i], r.Forces[i])
	}
	return b.String()
}

// -------------------------------------------------- Ablation: commit volume

// CommitBytesReport contrasts §4.3's whole-page commit flush with WAL's
// delta logging.
type CommitBytesReport struct {
	Opts Options
	// KernelBytesPerTxn: whole pages forced at commit by the embedded TM.
	KernelBytesPerTxn float64
	// UserLogBytesPerTxn: bytes of before/after images in the WAL.
	UserLogBytesPerTxn float64
	// TPS of both systems, showing the paper's claim that the extra
	// sequential commit bytes barely matter next to the random reads.
	KernelTPS, UserTPS float64
}

// AblationCommitBytes measures the write volume difference.
func AblationCommitBytes(opts Options) (*CommitBytesReport, error) {
	opts.fill()
	cfg := tpcb.ScaledConfig(opts.Scale)
	rep := &CommitBytesReport{Opts: opts}

	rigK, err := tpcb.BuildRig(opts.rigLogOptions(tpcb.RigOptions{Kind: "kernel-lfs", Config: cfg, Costs: opts.Costs, ExpectedTxns: opts.Txns}))
	if err != nil {
		return nil, err
	}
	resK, err := tpcb.RunBenchmark(rigK.Sys, rigK.Clock, cfg, opts.Txns)
	if err != nil {
		return nil, err
	}
	rep.KernelBytesPerTxn = float64(rigK.Core.Stats().BytesFlushed) / float64(opts.Txns)
	rep.KernelTPS = resK.TPS

	rigU, err := tpcb.BuildRig(opts.rigLogOptions(tpcb.RigOptions{Kind: "user-lfs", Config: cfg, Costs: opts.Costs, ExpectedTxns: opts.Txns}))
	if err != nil {
		return nil, err
	}
	resU, err := tpcb.RunBenchmark(rigU.Sys, rigU.Clock, cfg, opts.Txns)
	if err != nil {
		return nil, err
	}
	rep.UserLogBytesPerTxn = float64(rigU.Env.LogStats().BytesLogged) / float64(opts.Txns)
	rep.UserTPS = resU.TPS
	return rep, nil
}

// String formats the ablation.
func (r *CommitBytesReport) String() string {
	var b strings.Builder
	b.WriteString("Ablation — commit volume (§4.3: whole pages at commit vs logging only the updated bytes)\n")
	fmt.Fprintf(&b, "  embedded (whole pages): %10.0f bytes/txn   %.2f TPS\n", r.KernelBytesPerTxn, r.KernelTPS)
	fmt.Fprintf(&b, "  WAL (byte deltas):      %10.0f bytes/txn   %.2f TPS\n", r.UserLogBytesPerTxn, r.UserTPS)
	fmt.Fprintf(&b, "  ratio: %.0f× more bytes forced at commit by the embedded system\n",
		r.KernelBytesPerTxn/r.UserLogBytesPerTxn)
	return b.String()
}

// ----------------------------------------------- Ablation: cleaner policies

// CleanerPolicyReport compares greedy vs cost-benefit victim selection.
type CleanerPolicyReport struct {
	Opts     Options
	Policies []string
	TPS      []float64
	Copied   []int64 // live blocks copied (write amplification)
	Cleaned  []int64 // segments reclaimed
}

// AblationCleanerPolicy runs kernel-lfs TPC-B under both policies.
func AblationCleanerPolicy(opts Options) (*CleanerPolicyReport, error) {
	opts.fill()
	cfg := tpcb.ScaledConfig(opts.Scale)
	rep := &CleanerPolicyReport{Opts: opts}
	for _, pol := range []lfs.CleanerPolicy{lfs.Greedy, lfs.CostBenefit} {
		rig, err := tpcb.BuildRig(opts.rigLogOptions(tpcb.RigOptions{Kind: "kernel-lfs", Config: cfg, Costs: opts.Costs,
			Policy: pol, ExpectedTxns: opts.Txns}))
		if err != nil {
			return nil, err
		}
		res, err := tpcb.RunBenchmark(rig.Sys, rig.Clock, cfg, opts.Txns)
		if err != nil {
			return nil, err
		}
		st := rig.LFS.Stats().Cleaner
		rep.Policies = append(rep.Policies, pol.String())
		rep.TPS = append(rep.TPS, res.TPS)
		rep.Copied = append(rep.Copied, st.BlocksCopied)
		rep.Cleaned = append(rep.Cleaned, st.SegmentsCleaned)
	}
	return rep, nil
}

// String formats the ablation.
func (r *CleanerPolicyReport) String() string {
	var b strings.Builder
	b.WriteString("Ablation — cleaner victim selection policy\n")
	fmt.Fprintf(&b, "  %-14s %8s %14s %12s\n", "policy", "TPS", "blocks copied", "segs cleaned")
	for i := range r.Policies {
		fmt.Fprintf(&b, "  %-14s %8.2f %14d %12d\n", r.Policies[i], r.TPS[i], r.Copied[i], r.Cleaned[i])
	}
	return b.String()
}
