package figures

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/tpcb"
	"repro/internal/trace"
)

// ScanReport is the mixed OLTP + long-running-scan sweep (the MVCC
// snapshot-read experiment): for each system, TPC-B writers at the
// group-commit MPL run alone, against two-phase-locking scans, and against
// lock-free snapshot scans. Each row is the run's full snapshot with its
// Scan section filled in; Modes records the requested mode per row (the
// snapshot's own scan.mode is the effective one — user-ffs degrades
// snapshot to locking, having no no-overwrite log to retain old versions).
type ScanReport struct {
	Opts  Options
	Modes []tpcb.ScanMode
	Rows  []*trace.Snapshot
	// Tracer of the final (kernel-lfs, snapshot-mode) run, for Chrome
	// trace export; excluded from JSON like BenchReport's.
	Tracer *trace.Tracer `json:"-"`
}

// Scan runs the mixed workload sweep: three systems × {none, locking,
// snapshot} at the group-commit MPL (default 8) with idle cleaning on the
// LFS rigs, so snapshot retention and the cleaner actually contend.
func Scan(opts Options) (*ScanReport, error) {
	opts.fill()
	cfg := tpcb.ScaledConfig(opts.Scale)
	rep := &ScanReport{Opts: opts}
	mpl := max(opts.GroupCommit, 2)
	modes := []tpcb.ScanMode{tpcb.ScanNone, tpcb.ScanLocking, tpcb.ScanSnapshot}
	for _, kind := range []string{"user-ffs", "user-lfs", "kernel-lfs"} {
		for _, mode := range modes {
			ropts := tpcb.RigOptions{
				Kind: kind, Config: cfg, Costs: opts.Costs, ExpectedTxns: opts.Txns,
				GroupCommit: opts.GroupCommit, CleanBatch: opts.CleanBatch, Trace: true,
			}
			if kind != "user-ffs" {
				ropts.CleanerMode = opts.CleanerMode
				if ropts.CleanerMode == "" {
					ropts.CleanerMode = "idle"
				}
				// Snapshot retention pins whole segments for the life of a
				// scan, so the LFS rigs need log headroom beyond the paper's
				// half-full sizing or the cleaner runs out of clean segments.
				ropts.DiskScale = 6.0
			}
			rig, err := tpcb.BuildRig(opts.rigLogOptions(ropts))
			if err != nil {
				return nil, fmt.Errorf("scan %s %s: %w", kind, mode, err)
			}
			scanners, each := opts.Scanners, opts.ScansEach
			if mode == tpcb.ScanNone {
				scanners, each = 0, 0
			}
			res, err := rig.RunMixed(cfg, opts.Txns, mpl, scanners, each, mode)
			if err != nil {
				return nil, fmt.Errorf("scan %s %s: %w", kind, mode, err)
			}
			rep.Modes = append(rep.Modes, mode)
			rep.Rows = append(rep.Rows, tpcb.CollectMixedSnapshot(rig, res, rig.Tracer))
			rep.Tracer = rig.Tracer
		}
	}
	return rep, nil
}

func (r *ScanReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Mixed OLTP + scan sweep (scale %.2f, %d txns, %d scanner(s) × %d scan(s))\n",
		r.Opts.Scale, r.Opts.Txns, r.Opts.Scanners, r.Opts.ScansEach)
	fmt.Fprintf(&b, "%-12s %-9s %-9s %10s %12s %10s %8s\n",
		"system", "asked", "ran", "writerTPS", "lock-blocked", "dl-aborts", "retained")
	for i, snap := range r.Rows {
		ran := "-"
		tps := snap.TPS
		if snap.Scan != nil {
			ran = snap.Scan.Mode
			tps = snap.Scan.WriterTPS
		}
		var blocked time.Duration
		var aborts int64
		if snap.Locks != nil {
			blocked = snap.Locks.BlockedTime
			aborts = snap.Locks.DeadlockAborts
		}
		// RetainedBlocks is an instantaneous gauge (zero once the last
		// snapshot closes at end of run); RetentionSkips is the cumulative
		// count of cleaner victims deferred for a pinned snapshot.
		var retained int64
		if snap.LFS != nil {
			retained = snap.LFS.Cleaner.RetentionSkips
		}
		fmt.Fprintf(&b, "%-12s %-9s %-9s %10.2f %12.1fs %10d %8d\n",
			snap.System, string(r.Modes[i]), ran, tps, blocked.Seconds(), aborts, retained)
	}
	return b.String()
}
