package figures

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/tpcb"
)

// ---------------------------------------------------------------- MPL sweep

// FigureMPLCell is one measured point: a system at one multiprogramming
// level with one group-commit setting.
type FigureMPLCell struct {
	MPL     int
	TPS     float64
	Elapsed time.Duration
	// Retries counts deadlock-victim transactions that were re-run.
	Retries int64
	// BlockedTime is cumulative simulated time clients spent suspended on
	// lock waits; DeadlockAborts counts waits resolved by aborting the
	// requester.
	BlockedTime    time.Duration
	DeadlockAborts int64
	// QueueTime is cumulative simulated time clients waited for the busy
	// spindle.
	QueueTime time.Duration
	// Forces counts log forces (user-level systems) or commit flushes
	// (kernel).
	Forces int64
}

// FigureMPLSeries is one line of the sweep: a system with a fixed
// group-commit batch size, measured across multiprogramming levels.
type FigureMPLSeries struct {
	System      string
	GroupCommit int
	Cells       []FigureMPLCell
}

// FigureMPLReport holds the TPS-vs-MPL sweep over the three systems of
// Figure 4, with and without group commit. The paper measured TPC-B at
// MPL 1 only (§5.1's single-user caveat); this sweep is the multi-user
// extension its discussion of group commit (§4.4) anticipates.
type FigureMPLReport struct {
	Opts   Options
	Series []FigureMPLSeries
}

// FigureMPL runs the modified TPC-B at each multiprogramming level, on each
// system, with force-per-commit and with group commit.
func FigureMPL(opts Options) (*FigureMPLReport, error) {
	opts.fill()
	cfg := tpcb.ScaledConfig(opts.Scale)
	rep := &FigureMPLReport{Opts: opts}
	for _, kind := range []string{"user-ffs", "user-lfs", "kernel-lfs"} {
		for _, gc := range []int{1, opts.GroupCommit} {
			series := FigureMPLSeries{System: kind, GroupCommit: gc}
			for _, mpl := range opts.MPLs {
				ropts := tpcb.RigOptions{
					Kind: kind, Config: cfg, Costs: opts.Costs, ExpectedTxns: opts.Txns,
					GroupCommit: gc, CleanBatch: opts.CleanBatch,
				}
				if kind != "user-ffs" {
					ropts.CleanerMode = opts.CleanerMode
					if ropts.CleanerMode == "" && kind == "kernel-lfs" {
						ropts.CleanerMode = "idle"
					}
				}
				rig, err := tpcb.BuildRig(opts.rigLogOptions(ropts))
				if err != nil {
					return nil, fmt.Errorf("mpl sweep %s gc=%d: %w", kind, gc, err)
				}
				res, err := rig.RunMPL(cfg, opts.Txns, mpl)
				if err != nil {
					return nil, fmt.Errorf("mpl sweep %s gc=%d mpl=%d: %w", kind, gc, mpl, err)
				}
				ls := rig.LockStats()
				cell := FigureMPLCell{
					MPL: mpl, TPS: res.TPS, Elapsed: res.Elapsed, Retries: res.Retries,
					BlockedTime: ls.BlockedTime, DeadlockAborts: ls.DeadlockAborts,
					QueueTime: rig.Dev.Stats().QueueTime,
				}
				if rig.Env != nil {
					cell.Forces = rig.Env.LogStats().Forces
				} else if rig.Core != nil {
					cell.Forces = rig.Core.Stats().CommitFlush
				}
				series.Cells = append(series.Cells, cell)
			}
			rep.Series = append(rep.Series, series)
		}
	}
	return rep, nil
}

// String formats the sweep as one table per (system, group-commit) series.
func (r *FigureMPLReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MPL sweep — modified TPC-B throughput vs multiprogramming level (scale %.2f, %d txns)\n",
		r.Opts.Scale, r.Opts.Txns)
	for _, s := range r.Series {
		mode := "force per commit"
		if s.GroupCommit > 1 {
			mode = fmt.Sprintf("group commit ×%d", s.GroupCommit)
		}
		fmt.Fprintf(&b, "  %s, %s:\n", s.System, mode)
		fmt.Fprintf(&b, "    %4s %8s %12s %8s %8s %9s %12s %12s\n",
			"MPL", "TPS", "elapsed", "forces", "retries", "deadlocks", "blocked", "disk-queue")
		for _, c := range s.Cells {
			fmt.Fprintf(&b, "    %4d %8.2f %12s %8d %8d %9d %12s %12s\n",
				c.MPL, c.TPS, c.Elapsed.Truncate(time.Millisecond), c.Forces, c.Retries,
				c.DeadlockAborts, c.BlockedTime.Truncate(time.Millisecond), c.QueueTime.Truncate(time.Millisecond))
		}
	}
	return b.String()
}
