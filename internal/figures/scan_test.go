package figures

import (
	"strings"
	"testing"

	"repro/internal/tpcb"
)

// TestScanSweepShape runs the mixed OLTP + scan sweep at the CI scale and
// checks its acceptance shape: snapshot scans run lock-free on both LFS
// systems (scan-attributable lock time zero, asked mode honored), user-ffs
// degrades honestly to locking, and locking-mode scans cost the lock manager
// more blocked time than snapshot-mode ones on the kernel system.
func TestScanSweepShape(t *testing.T) {
	rep, err := Scan(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 9 || len(rep.Modes) != 9 {
		t.Fatalf("want 3 systems x 3 modes, got %d rows / %d modes", len(rep.Rows), len(rep.Modes))
	}
	type key struct {
		sys  string
		mode tpcb.ScanMode
	}
	rows := map[key]int{}
	for i, snap := range rep.Rows {
		rows[key{snap.System, rep.Modes[i]}] = i
	}
	for _, sys := range []string{"user-ffs", "user-lfs", "kernel-lfs"} {
		for _, mode := range []tpcb.ScanMode{tpcb.ScanNone, tpcb.ScanLocking, tpcb.ScanSnapshot} {
			i, ok := rows[key{sys, mode}]
			if !ok {
				t.Fatalf("missing row %s/%s", sys, mode)
			}
			snap := rep.Rows[i]
			if mode == tpcb.ScanNone {
				if snap.Scan != nil {
					t.Errorf("%s baseline row has a scan section", sys)
				}
				continue
			}
			if snap.Scan == nil || snap.Scan.Rows == 0 {
				t.Fatalf("%s/%s row has no scan work: %+v", sys, mode, snap.Scan)
			}
			want := string(mode)
			if sys == "user-ffs" && mode == tpcb.ScanSnapshot {
				want = string(tpcb.ScanLocking) // no no-overwrite log to version from
			}
			if snap.Scan.Mode != want {
				t.Errorf("%s asked %s ran %s, want %s", sys, mode, snap.Scan.Mode, want)
			}
			if mode == tpcb.ScanSnapshot && sys != "user-ffs" {
				for _, row := range snap.Attribution {
					if strings.HasPrefix(row.Proc, "scan-") && row.Lock != 0 {
						t.Errorf("%s snapshot scan proc %s blocked %v on locks", sys, row.Proc, row.Lock)
					}
				}
			}
		}
	}
	lockRow := rep.Rows[rows[key{"kernel-lfs", tpcb.ScanLocking}]]
	snapRow := rep.Rows[rows[key{"kernel-lfs", tpcb.ScanSnapshot}]]
	if lockRow.Locks == nil || snapRow.Locks == nil {
		t.Fatal("kernel rows missing lock sections")
	}
	if lockRow.Locks.BlockedTime <= snapRow.Locks.BlockedTime {
		t.Errorf("locking scans should cost more lock-blocked time than snapshot scans: %v <= %v",
			lockRow.Locks.BlockedTime, snapRow.Locks.BlockedTime)
	}
	s := rep.String()
	if !strings.Contains(s, "writerTPS") || !strings.Contains(s, "kernel-lfs") {
		t.Fatalf("report formatting broken:\n%s", s)
	}
}
