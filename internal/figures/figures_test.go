package figures

import (
	"strings"
	"testing"
)

// smallOpts keeps CI runs quick while still exercising every code path.
func smallOpts() Options {
	return Options{Scale: 0.01, Txns: 600}
}

func TestFigure4ShapeHolds(t *testing.T) {
	rep, err := Figure4(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	byName := map[string]Figure4Row{}
	for _, r := range rep.Rows {
		byName[r.System] = r
	}
	// The defining orderings of Figure 4.
	if byName["user-lfs"].TPS <= byName["user-ffs"].TPS {
		t.Fatalf("LFS (%f) must beat the read-optimized FS (%f) on the transaction workload",
			byName["user-lfs"].TPS, byName["user-ffs"].TPS)
	}
	// The kernel system must be in the same league as the user system
	// (the paper reports them comparable; see EXPERIMENTS.md for the
	// measured ratio and its analysis).
	ratio := byName["kernel-lfs"].TPS / byName["user-lfs"].TPS
	if ratio < 0.5 || ratio > 1.5 {
		t.Fatalf("kernel/user ratio %.2f outside the comparable band", ratio)
	}
	s := rep.String()
	if !strings.Contains(s, "Figure 4") || !strings.Contains(s, "user-lfs") {
		t.Fatalf("report formatting broken:\n%s", s)
	}
}

func TestFigure5WithinTwoPercent(t *testing.T) {
	rep, err := Figure5(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.DeltaPct < -0.5 || row.DeltaPct > 2.0 {
			t.Fatalf("%s: txn-kernel overhead %.2f%% outside the paper's 1–2%% band", row.Workload, row.DeltaPct)
		}
	}
	if !strings.Contains(rep.String(), "ANDREW") {
		t.Fatal("report formatting broken")
	}
}

func TestFigure67ScanPenaltyAndCrossover(t *testing.T) {
	rep, err := Figure67(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Figure 6: the read-optimized system must win the key-order scan
	// after random updates (paper: by ~50%).
	if rep.ScanPenalty <= 1.0 {
		t.Fatalf("scan penalty %.2f: LFS should be slower than read-optimized after random updates", rep.ScanPenalty)
	}
	// Figure 7: LFS wins the transaction phase, so a positive crossover
	// must exist.
	if rep.LFSTPS <= rep.FFSTPS {
		t.Fatalf("LFS TPS (%f) should exceed FFS TPS (%f)", rep.LFSTPS, rep.FFSTPS)
	}
	if rep.CrossoverTxns <= 0 {
		t.Fatalf("crossover = %f, want positive", rep.CrossoverTxns)
	}
	// The crossover must actually balance the two lines.
	ffsTotal := rep.CrossoverTxns/rep.FFSTPS + rep.FFSScan.Seconds()
	lfsTotal := rep.CrossoverTxns/rep.LFSTPS + rep.LFSScan.Seconds()
	if diff := ffsTotal - lfsTotal; diff > 1 || diff < -1 {
		t.Fatalf("lines do not meet at crossover: %f vs %f", ffsTotal, lfsTotal)
	}
	if !strings.Contains(rep.String(), "crossover") {
		t.Fatal("report formatting broken")
	}
}

func TestAblationSyncDirection(t *testing.T) {
	rep, err := AblationSync(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Fast user sync must help the user-level system...
	if rep.FastUser <= rep.SlowUser {
		t.Fatalf("fast sync should raise user TPS: %f vs %f", rep.FastUser, rep.SlowUser)
	}
	// ...and close (or shrink) the kernel's relative advantage.
	slowGap := rep.SlowKernel / rep.SlowUser
	fastGap := rep.FastKernel / rep.FastUser
	if fastGap >= slowGap+0.001 {
		t.Fatalf("fast user sync should shrink the kernel/user gap: %.4f → %.4f", slowGap, fastGap)
	}
	_ = rep.String()
}

func TestAblationCleanerBound(t *testing.T) {
	rep, err := AblationCleaner(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SyncBusy <= 0 {
		t.Fatal("the synchronous cleaner should have run under TPC-B churn")
	}
	if rep.IdleBusy <= 0 {
		t.Fatal("the idle-overlapped cleaner should have run under TPC-B churn")
	}
	// The analytic bound removes all cleaner stalls from the synchronous
	// run, so it must beat it; the measured idle-overlapped run must also
	// beat synchronous. No ordering is asserted between idle and the bound:
	// the bound inherits the synchronous cleaner's work, and batched idle
	// passes can clean more cheaply than that.
	if rep.TPSBound <= rep.TPSSync {
		t.Fatalf("removing cleaner stalls must raise TPS: bound %f vs sync %f", rep.TPSBound, rep.TPSSync)
	}
	if rep.TPSIdle <= rep.TPSSync {
		t.Fatalf("idle-overlapped cleaning must beat the synchronous cleaner: %f vs %f", rep.TPSIdle, rep.TPSSync)
	}
	// Overlap accounting must be consistent: busy = overlapped + stalled,
	// and the stall residue must be smaller than the synchronous run's
	// all-stall cleaner time.
	if got := rep.IdleOverlap + rep.IdleStall; got != rep.IdleBusy {
		t.Fatalf("idle cleaner accounting: overlap %v + stall %v != busy %v", rep.IdleOverlap, rep.IdleStall, got)
	}
	if rep.IdleStall >= rep.SyncBusy {
		t.Fatalf("idle-overlapped stall %v should be below the synchronous cleaner time %v", rep.IdleStall, rep.SyncBusy)
	}
	if rep.IdleWriteAmp < 1 {
		t.Fatalf("write amplification %f < 1", rep.IdleWriteAmp)
	}
	_ = rep.String()
}

func TestAblationGroupCommitAmortizes(t *testing.T) {
	rep, err := AblationGroupCommit(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Forces[0] <= rep.Forces[len(rep.Forces)-1] {
		t.Fatalf("larger batches must force the log less: %v", rep.Forces)
	}
	if rep.UserTPS[len(rep.UserTPS)-1] < rep.UserTPS[0] {
		t.Fatalf("group commit should not reduce throughput: %v", rep.UserTPS)
	}
	_ = rep.String()
}

func TestAblationCommitBytes(t *testing.T) {
	rep, err := AblationCommitBytes(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// §4.3: the embedded system writes whole pages; WAL writes deltas —
	// "this compares rather dismally with logging schemes where only the
	// updated bytes need be written".
	if rep.KernelBytesPerTxn < 4*rep.UserLogBytesPerTxn {
		t.Fatalf("whole-page commits (%f B) should dwarf WAL deltas (%f B)", rep.KernelBytesPerTxn, rep.UserLogBytesPerTxn)
	}
	_ = rep.String()
}

func TestAblationCleanerPolicy(t *testing.T) {
	rep, err := AblationCleanerPolicy(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Policies) != 2 {
		t.Fatalf("policies = %v", rep.Policies)
	}
	for i := range rep.Policies {
		if rep.TPS[i] <= 0 {
			t.Fatalf("%s produced no throughput", rep.Policies[i])
		}
	}
	_ = rep.String()
}

func TestFigureMPLSweep(t *testing.T) {
	opts := smallOpts()
	opts.MPLs = []int{1, 4}
	rep, err := FigureMPL(opts)
	if err != nil {
		t.Fatal(err)
	}
	// 3 systems × 2 group-commit settings.
	if len(rep.Series) != 6 {
		t.Fatalf("series = %d", len(rep.Series))
	}
	for _, s := range rep.Series {
		if len(s.Cells) != 2 {
			t.Fatalf("%s gc=%d: cells = %d", s.System, s.GroupCommit, len(s.Cells))
		}
		for _, c := range s.Cells {
			if c.TPS <= 0 {
				t.Fatalf("%s gc=%d mpl=%d produced no throughput", s.System, s.GroupCommit, c.MPL)
			}
		}
		// Concurrency must help the force-per-commit runs: overlapping
		// clients hide the per-commit force latency. (With group commit the
		// MPL=1 run already batches its forces, so no ordering is asserted.)
		if s.GroupCommit == 1 && s.Cells[1].TPS <= s.Cells[0].TPS {
			t.Fatalf("%s gc=%d: MPL=4 (%.2f TPS) should beat MPL=1 (%.2f TPS)",
				s.System, s.GroupCommit, s.Cells[1].TPS, s.Cells[0].TPS)
		}
	}
	out := rep.String()
	if !strings.Contains(out, "MPL sweep") || !strings.Contains(out, "kernel-lfs") {
		t.Fatalf("report formatting broken:\n%s", out)
	}
}

func TestCoalescingCleanerRestoresScan(t *testing.T) {
	rep, err := Figure67(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.LFSScanCoalesced <= 0 {
		t.Fatal("coalesced scan not measured")
	}
	// The coalescing cleaner must recover most of the sequential-read
	// gap the random updates created.
	if rep.LFSScanCoalesced >= rep.LFSScan {
		t.Fatalf("coalescing should speed up the scan: %v → %v", rep.LFSScan, rep.LFSScanCoalesced)
	}
}
