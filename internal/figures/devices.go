package figures

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/tpcb"
)

// ------------------------------------------------------------- device sweep

// FigureDevicesCell is one measured point of the multi-spindle sweep: one
// array size at one multiprogramming level.
type FigureDevicesCell struct {
	MPL     int
	TPS     float64
	Elapsed time.Duration
	Retries int64
	// Cross and Single count committed transactions that spanned shards
	// (two-phase commit) versus those that stayed on one device. Zero on
	// the single-spindle baseline.
	Cross  int64
	Single int64
	// QueueTime is cumulative time requests waited for a busy spindle,
	// summed over the array; MaxDevQueue is the worst single device's
	// share (the hot spindle).
	QueueTime   time.Duration
	MaxDevQueue time.Duration
	// BlockedTime is cumulative lock-wait time across clients.
	BlockedTime time.Duration
}

// FigureDevicesSeries is one line of the sweep: one device count across all
// multiprogramming levels.
type FigureDevicesSeries struct {
	Devices int
	Cells   []FigureDevicesCell
}

// FigureDevicesReport holds the TPS-vs-MPL-vs-device-count sweep: the
// modified TPC-B on the user-level LFS system, range-partitioned across 1,
// 2, and 4 spindles with per-shard logs and cross-shard two-phase commit.
// The single-spindle line saturates once the one disk is busy; adding
// spindles moves the saturation point up because independent shards queue
// and seek independently, which is the scale-out argument the paper's
// single-disk §5 measurements stop short of.
type FigureDevicesReport struct {
	Opts    Options
	Devices []int
	Series  []FigureDevicesSeries
}

// deviceSweepMPLs are the multiprogramming levels of the device sweep: the
// interesting region is past the single-disk saturation knee, so the sweep
// runs an order of magnitude beyond the default MPL figure, to 256.
var deviceSweepMPLs = []int{1, 4, 16, 64, 128, 256}

// FigureDevices measures the device sweep. Unless opts.MPLs was set
// explicitly it sweeps deviceSweepMPLs, and the database is sized so every
// relation has at least one row per shard at the largest device count.
func FigureDevices(opts Options, devices []int) (*FigureDevicesReport, error) {
	opts.fill()
	if len(devices) == 0 {
		devices = []int{1, 2, 4}
	}
	mpls := opts.MPLs
	if len(mpls) == 5 && mpls[0] == 1 && mpls[4] == 16 {
		// The generic default from fill(); the device sweep wants the
		// post-saturation region.
		mpls = deviceSweepMPLs
	}
	// The sweep needs a database large enough that the buffer pool sized
	// for MPL-256 write sets (below) still misses: device scaling only
	// shows when the workload is read-bound. With the generic defaults
	// (scale 0.05, 5000 txns) the whole database would fit that pool, so
	// substitute a 4x-larger database and a shorter run.
	if opts.Scale == 0.05 {
		opts.Scale = 0.2
	}
	if opts.Txns == 5000 {
		opts.Txns = 600
	}
	cfg := tpcb.ScaledConfig(opts.Scale)
	// Contention relief for the deep end of the sweep: at MPL 256 the
	// scaled-down branch relation (2 rows) would serialize everything, so
	// give the sweep the branch fan-out its MPL range needs, and apply
	// the TPC-B 85% home-branch account rule — the locality a
	// range-partitioned array exploits. Without it nearly every
	// transaction is a cross-shard two-phase commit holding hot branch
	// locks across a log force, and the array loses to the single disk.
	if cfg.Branches < 64 {
		cfg.Branches = 64
	}
	if cfg.Tellers < 4*cfg.Branches {
		cfg.Tellers = 4 * cfg.Branches
	}
	cfg.Locality = 85
	for _, n := range devices {
		if cfg.Branches < int64(n) {
			cfg.Branches = int64(n)
		}
		if cfg.Tellers < int64(n) {
			cfg.Tellers = int64(n)
		}
	}
	maxMPL := 0
	for _, m := range mpls {
		if m > maxMPL {
			maxMPL = m
		}
	}
	// Every cell runs the same "hardware": a pool big enough for the
	// no-steal write sets of maxMPL concurrent transactions (the rig's
	// natural sizing wedges past MPL ~64), and a disk with headroom for
	// the deadlock-retry storm's abort records.
	cache := tpcb.CacheBlocksFor(cfg, opts.Txns) + 8*maxMPL
	rep := &FigureDevicesReport{Opts: opts, Devices: devices}
	for _, n := range devices {
		series := FigureDevicesSeries{Devices: n}
		for _, mpl := range mpls {
			ropts := tpcb.RigOptions{
				Kind: "user-lfs", Config: cfg, Costs: opts.Costs, ExpectedTxns: opts.Txns,
				GroupCommit: opts.GroupCommit, CleanBatch: opts.CleanBatch,
				Devices: n, Layout: "partition",
				CacheBlocks: cache, DiskScale: 4.0,
			}
			rig, err := tpcb.BuildRig(opts.rigLogOptions(ropts))
			if err != nil {
				return nil, fmt.Errorf("device sweep n=%d: %w", n, err)
			}
			res, err := rig.RunMPL(cfg, opts.Txns, mpl)
			if err != nil {
				return nil, fmt.Errorf("device sweep n=%d mpl=%d: %w", n, mpl, err)
			}
			cell := FigureDevicesCell{
				MPL: mpl, TPS: res.TPS, Elapsed: res.Elapsed, Retries: res.Retries,
				BlockedTime: rig.LockStats().BlockedTime,
			}
			for _, d := range rig.Devs {
				q := d.Stats().QueueTime
				cell.QueueTime += q
				if q > cell.MaxDevQueue {
					cell.MaxDevQueue = q
				}
			}
			if ss, ok := rig.Sys.(*tpcb.ShardedSystem); ok {
				cell.Cross, cell.Single = ss.CrossShardTxns()
			}
			series.Cells = append(series.Cells, cell)
		}
		rep.Series = append(rep.Series, series)
	}
	return rep, nil
}

// String formats the sweep as one table per device count.
func (r *FigureDevicesReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "device sweep — TPC-B throughput vs MPL vs spindles (partitioned user-lfs, scale %.2f, %d txns)\n",
		r.Opts.Scale, r.Opts.Txns)
	for _, s := range r.Series {
		fmt.Fprintf(&b, "  %d device(s):\n", s.Devices)
		fmt.Fprintf(&b, "    %4s %8s %12s %8s %8s %8s %12s %12s %12s\n",
			"MPL", "TPS", "elapsed", "retries", "cross", "single", "blocked", "disk-queue", "hot-spindle")
		for _, c := range s.Cells {
			fmt.Fprintf(&b, "    %4d %8.2f %12s %8d %8d %8d %12s %12s %12s\n",
				c.MPL, c.TPS, c.Elapsed.Truncate(time.Millisecond), c.Retries, c.Cross, c.Single,
				c.BlockedTime.Truncate(time.Millisecond), c.QueueTime.Truncate(time.Millisecond),
				c.MaxDevQueue.Truncate(time.Millisecond))
		}
	}
	return b.String()
}
