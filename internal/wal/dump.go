package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/vfs"
)

// Dump prints a human-readable description of the log rooted at base — the
// checkpoint anchor, every segment's header, block headers (CRC status,
// flags, payload length, first-record offset), index entries, and decoded
// records — for offline inspection. It is a raw reader: torn or corrupt
// blocks, records, and index entries are reported, not fatal, so it is
// usable on a crashed image.
func Dump(w io.Writer, fsys vfs.FileSystem, base string) error {
	// Anchor.
	if f, err := fsys.Open(anchorName(base)); err == nil {
		raw := make([]byte, anchorSize)
		n, _ := f.ReadAt(raw, 0)
		f.Close()
		if a, ok := decodeAnchor(raw[:n]); ok {
			fmt.Fprintf(w, "anchor %s: checkpoint=%s low-water=%d\n", anchorName(base), a.ckptLSN, a.lowWater)
		} else {
			fmt.Fprintf(w, "anchor %s: INVALID\n", anchorName(base))
		}
	} else {
		fmt.Fprintf(w, "anchor %s: missing (%v)\n", anchorName(base), err)
	}

	seqs, err := discoverSegments(fsys, base)
	if err != nil {
		return err
	}
	if len(seqs) == 0 {
		fmt.Fprintf(w, "no segments\n")
		return nil
	}
	for _, seq := range seqs {
		if err := dumpSegment(w, fsys, base, seq); err != nil {
			return err
		}
	}
	return nil
}

func dumpSegment(w io.Writer, fsys vfs.FileSystem, base string, seq uint64) error {
	name := segName(base, seq)
	f, err := fsys.Open(name)
	if err != nil {
		return err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return err
	}
	raw := make([]byte, size)
	n, err := f.ReadAt(raw, 0)
	if err != nil {
		return err
	}
	raw = raw[:n]

	fmt.Fprintf(w, "\nsegment %s: %d bytes, %d data blocks\n", name, size, (size-BlockSize+BlockSize-1)/BlockSize)
	if got, ok := decodeSegHeader(raw); ok {
		fmt.Fprintf(w, "  header: magic ok, version %d, seq %d, block size %d\n", formatVersion, got, BlockSize)
		if got != seq {
			fmt.Fprintf(w, "  header: SEQ MISMATCH (file name says %d)\n", seq)
		}
	} else {
		fmt.Fprintf(w, "  header: INVALID\n")
	}

	// Blocks: report each header, accumulating the valid payload stream.
	var stream []byte
	streamDone := false
	for off, blk := BlockSize, int64(0); off+BlockSize <= len(raw); off, blk = off+BlockSize, blk+1 {
		bi, ok := decodeBlock(raw[off : off+BlockSize])
		if !ok {
			le := binary.LittleEndian
			fmt.Fprintf(w, "  block %4d: BAD CRC (stored %08x, dataLen %d) — torn or unwritten\n",
				blk, le.Uint32(raw[off:]), le.Uint16(raw[off+6:]))
			streamDone = true
			continue
		}
		flags := ""
		if bi.cont {
			flags = " cont"
		}
		fr := "-"
		if bi.firstRec != noFirstRec {
			fr = fmt.Sprintf("%d", bi.firstRec)
		}
		fmt.Fprintf(w, "  block %4d: crc ok, dataLen %4d, firstRec %s%s\n", blk, bi.dataLen, fr, flags)
		if !streamDone {
			stream = append(stream, raw[off+blockHdrSize:off+blockHdrSize+bi.dataLen]...)
			if bi.dataLen < PayloadSize {
				streamDone = true
			}
		}
	}

	// Records.
	off := int64(0)
	for off < int64(len(stream)) {
		r, sz, err := decodeRecord(stream[off:])
		if err != nil {
			fmt.Fprintf(w, "  record @%s: TORN (%d trailing bytes undecodable)\n",
				makeLSN(seq, off), int64(len(stream))-off)
			break
		}
		r.LSN = makeLSN(seq, off)
		fmt.Fprintf(w, "  record @%-12s %s\n", r.LSN, describeRecord(&r))
		off += int64(sz)
	}

	// Index.
	dumpIndex(w, fsys, base, seq)
	return nil
}

func describeRecord(r *Record) string {
	switch r.Type {
	case RecUpdate:
		return fmt.Sprintf("update  txn=%d file=%d block=%d off=%d before=%dB after=%dB",
			r.Txn, r.File, r.Block, r.Offset, len(r.Before), len(r.After))
	case RecCommit:
		return fmt.Sprintf("commit  txn=%d", r.Txn)
	case RecAbort:
		return fmt.Sprintf("abort   txn=%d", r.Txn)
	case RecCheckpoint:
		return fmt.Sprintf("ckpt    low-water=%d", r.File)
	case RecPrepare:
		return fmt.Sprintf("prepare txn=%d gid=%d", r.Txn, r.File)
	case RecGlobalCommit:
		return fmt.Sprintf("gcommit gid=%d", r.Txn)
	default:
		return fmt.Sprintf("UNKNOWN type=%d txn=%d", r.Type, r.Txn)
	}
}

func dumpIndex(w io.Writer, fsys vfs.FileSystem, base string, seq uint64) {
	name := idxName(base, seq)
	f, err := fsys.Open(name)
	if err != nil {
		fmt.Fprintf(w, "  index %s: missing\n", name)
		return
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil || size == 0 {
		fmt.Fprintf(w, "  index %s: empty\n", name)
		return
	}
	raw := make([]byte, size)
	n, err := f.ReadAt(raw, 0)
	if err != nil {
		fmt.Fprintf(w, "  index %s: unreadable (%v)\n", name, err)
		return
	}
	raw = raw[:n]
	fmt.Fprintf(w, "  index %s: %d entries\n", name, len(raw)/indexEntrySize)
	for off := 0; off+indexEntrySize <= len(raw); off += indexEntrySize {
		e, ok := decodeIndexEntry(raw[off:])
		if !ok {
			fmt.Fprintf(w, "    entry %3d: BAD CRC (stored %08x vs computed %08x)\n",
				off/indexEntrySize,
				binary.LittleEndian.Uint32(raw[off+12:]),
				crc32.ChecksumIEEE(raw[off:off+12]))
			continue
		}
		fmt.Fprintf(w, "    entry %3d: lsn %-12s → block %d\n", off/indexEntrySize, e.lsn, e.block)
	}
}
