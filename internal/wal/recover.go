package wal

import (
	"errors"
	"sort"

	"repro/internal/vfs"
)

// ScanStats measures the cost of one recovery scan: how much of the log had
// to be read to bring the database to a consistent state. Bounded recovery
// means these numbers track the tail since the last checkpoint, not total
// log history.
type ScanStats struct {
	StartLSN   LSN   `json:"start_lsn"`
	Segments   int64 `json:"segments"`
	Blocks     int64 `json:"blocks"`
	Records    int64 `json:"records"`
	Bytes      int64 `json:"bytes"` // payload bytes examined
	IndexSeeks int64 `json:"index_seeks"`
}

// Create initializes a fresh segmented log rooted at base: it writes the
// checkpoint anchor ({base}.ckpt) and prepares the first segment, whose
// file materializes lazily at the first force.
func Create(fsys vfs.FileSystem, base string, opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	af, err := fsys.Create(anchorName(base))
	if err != nil {
		return nil, err
	}
	if _, err := af.WriteAt(encodeAnchor(anchor{ckptLSN: 0, lowWater: 1}), 0); err != nil {
		return nil, err
	}
	// A full file-system sync: the anchor's directory entry must be durable
	// too, or a crash leaves the log undiscoverable.
	if err := fsys.Sync(); err != nil {
		return nil, err
	}
	return &Manager{
		fsys: fsys, base: base, opts: opts, anchorF: af,
		lowWater: 1, batch: 1,
		writers: []*segWriter{{seq: 1}},
	}, nil
}

// Exists reports whether a log rooted at base exists (its anchor file does).
func Exists(fsys vfs.FileSystem, base string) bool {
	_, err := fsys.Stat(anchorName(base))
	return err == nil
}

// Open opens an existing segmented log for recovery and further appending.
// The open itself is bounded: it reads the anchor, lists the log directory,
// finishes any truncation a crash interrupted, and loads only the last live
// segment (whose torn tail, if any, it discards physically). Everything
// older is touched again only if a recovery scan needs it.
func Open(fsys vfs.FileSystem, base string, opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	af, err := fsys.Open(anchorName(base))
	if err != nil {
		return nil, err
	}
	raw := make([]byte, anchorSize)
	n, err := af.ReadAt(raw, 0)
	if err != nil {
		return nil, err
	}
	a, anchorOK := decodeAnchor(raw[:n])

	segs, err := discoverSegments(fsys, base)
	if err != nil {
		return nil, err
	}
	if !anchorOK {
		// Unreadable anchor (it is written atomically, so this means
		// external damage): fall back to scanning everything present.
		a = anchor{ckptLSN: 0, lowWater: 1}
		if len(segs) > 0 {
			a.lowWater = segs[0]
		}
	}

	m := &Manager{
		fsys: fsys, base: base, opts: opts, anchorF: af,
		lowWater: a.lowWater, ckptLSN: a.ckptLSN, batch: 1,
	}

	// Finish any interrupted truncation: segments below the anchored
	// low-water mark are dead (with Retain they are archives and stay).
	var live []uint64
	removed := false
	for _, seq := range segs {
		if seq >= a.lowWater {
			live = append(live, seq)
			continue
		}
		if !opts.Retain {
			if err := removeIfExists(fsys, segName(base, seq)); err != nil {
				return nil, err
			}
			if err := removeIfExists(fsys, idxName(base, seq)); err != nil {
				return nil, err
			}
			m.stats.SegmentsDeleted++
			removed = true
		}
	}

	// Attach the highest live segment as the active writer. A segment whose
	// header never became durable holds no acknowledged data (the header is
	// synced before any block write), so it is deleted and the previous
	// segment becomes active again.
	for len(live) > 0 {
		seq := live[len(live)-1]
		w, ok, err := m.openSegment(seq)
		if err != nil {
			return nil, err
		}
		if !ok {
			if err := removeIfExists(fsys, segName(base, seq)); err != nil {
				return nil, err
			}
			if err := removeIfExists(fsys, idxName(base, seq)); err != nil {
				return nil, err
			}
			live = live[:len(live)-1]
			removed = true
			continue
		}
		m.writers = []*segWriter{w}
		break
	}
	if m.writers == nil {
		m.writers = []*segWriter{{seq: a.lowWater}}
	}
	if removed {
		// Same barrier truncateBelow needs: flush the unlinks' deletion
		// records together with the directory update, so a later log-only
		// sync cannot persist one without the other (see truncateBelow).
		if err := fsys.Sync(); err != nil {
			return nil, err
		}
	}

	// Sanity: a checkpoint LSN must point into the live log. The anchor is
	// written only after the checkpoint record is durable, so this fires
	// only on external damage; degrade to scanning from the low-water mark.
	if m.ckptLSN != 0 {
		w := m.active()
		seg := m.ckptLSN.Segment()
		if seg < m.lowWater || seg > w.seq ||
			(seg == w.seq && m.ckptLSN.Offset() > 0 && m.ckptLSN.Offset() >= w.durable) {
			m.ckptLSN = 0
		}
	}
	return m, nil
}

// openSegment loads segment seq as the active writer: validates the header,
// reassembles the durable payload stream, discards a torn tail physically
// (rewriting the tail block with the reduced length and truncating the
// file), and rewrites the segment's index to match. ok=false means the
// header itself is unreadable (the segment holds no durable data).
func (m *Manager) openSegment(seq uint64) (*segWriter, bool, error) {
	f, err := m.fsys.Open(segName(m.base, seq))
	if err != nil {
		return nil, false, err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, false, err
	}
	raw := make([]byte, size)
	if n, err := f.ReadAt(raw, 0); err != nil {
		f.Close()
		return nil, false, err
	} else {
		raw = raw[:n]
	}
	if got, ok := decodeSegHeader(raw); !ok || got != seq {
		f.Close()
		return nil, false, nil
	}

	stream, _, _ := assembleStream(raw)
	validEnd, starts := parseStream(stream)

	w := &segWriter{seq: seq, f: f, stream: stream[:validEnd:validEnd], durable: validEnd, starts: starts}

	// Physically discard the torn tail: those bytes were never acknowledged
	// durable, and clearing them keeps waldump output and later rewrites
	// unambiguous.
	if int64(len(stream)) > validEnd || size > blockFileOff((validEnd+PayloadSize-1)/PayloadSize) {
		if validEnd == 0 {
			if err := f.Truncate(blockFileOff(0)); err != nil {
				f.Close()
				return nil, false, err
			}
		} else {
			last := (validEnd - 1) / PayloadSize
			var blk [BlockSize]byte
			encodeBlock(blk[:], w.stream[last*PayloadSize:validEnd], w.firstRecIn(last*PayloadSize, validEnd), w.contAt(last*PayloadSize))
			if _, err := f.WriteAt(blk[:], blockFileOff(last)); err != nil {
				f.Close()
				return nil, false, err
			}
			if err := f.Truncate(blockFileOff(last) + BlockSize); err != nil {
				f.Close()
				return nil, false, err
			}
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, false, err
		}
	}

	// Rewrite the index from the recovered stream (a crash may have left it
	// behind or torn; it is advisory, so rebuild is cheap and simple).
	idxF, err := m.fsys.Open(idxName(m.base, seq))
	if err != nil {
		if idxF, err = m.fsys.Create(idxName(m.base, seq)); err != nil {
			f.Close()
			return nil, false, err
		}
	}
	w.idxF = idxF
	var buf []byte
	complete := validEnd / PayloadSize
	for b := int64(0); b < complete; b++ {
		fr := w.firstRecIn(b*PayloadSize, (b+1)*PayloadSize)
		if fr == noFirstRec {
			continue
		}
		var e [indexEntrySize]byte
		encodeIndexEntry(e[:], indexEntry{lsn: makeLSN(seq, b*PayloadSize+int64(fr)), block: b})
		buf = append(buf, e[:]...)
	}
	if len(buf) > 0 {
		if _, err := idxF.WriteAt(buf, 0); err != nil {
			return nil, false, err
		}
	}
	if err := idxF.Truncate(int64(len(buf))); err != nil {
		return nil, false, err
	}
	w.idxNext = complete
	w.idxCnt = int64(len(buf) / indexEntrySize)
	return w, true, nil
}

// assembleStream concatenates the payloads of the valid data blocks of a
// raw segment image (header block included), stopping at the first invalid
// block or after a partial (tail) block. It returns the payload stream, the
// number of blocks read, and whether assembly stopped early on an invalid
// block (torn).
func assembleStream(raw []byte) (stream []byte, blocks int64, torn bool) {
	for off := BlockSize; off+BlockSize <= len(raw); off += BlockSize {
		bi, ok := decodeBlock(raw[off : off+BlockSize])
		if !ok {
			return stream, blocks, true
		}
		blocks++
		stream = append(stream, raw[off+blockHdrSize:off+blockHdrSize+bi.dataLen]...)
		if bi.dataLen < PayloadSize {
			break // a partial block is by construction the last
		}
	}
	return stream, blocks, false
}

// parseStream walks a payload stream record by record, returning the end of
// the last complete record and every record-start offset before it.
func parseStream(stream []byte) (validEnd int64, starts []int64) {
	off := 0
	for off < len(stream) {
		_, sz, err := decodeRecord(stream[off:])
		if err != nil {
			break
		}
		starts = append(starts, int64(off))
		off += sz
	}
	return int64(off), starts
}

// Scan reads every intact record from the last checkpoint onward (from the
// low-water segment's start if no checkpoint is anchored). A torn or
// corrupt tail terminates the scan without error (those records were never
// acknowledged durable).
func (m *Manager) Scan() ([]Record, error) {
	recs, stats, err := m.scanFrom(m.ckptLSN)
	if err != nil {
		return nil, err
	}
	m.lastScan = stats
	return recs, nil
}

// scanFrom reads the durable records with LSN >= from, in order. from == 0
// means the start of the low-water segment. Sealed segments are read from
// disk — the first via an index seek when its index helps — and the active
// segment is served from the in-memory durable stream.
func (m *Manager) scanFrom(from LSN) ([]Record, ScanStats, error) {
	if from == 0 {
		from = makeLSN(m.lowWater, 0)
	}
	stats := ScanStats{StartLSN: from}
	act := m.active()
	var recs []Record
	for seq := from.Segment(); seq <= act.seq; seq++ {
		if seq == act.seq {
			// Active segment: decode straight from the durable stream.
			stats.Segments++
			start := int64(0)
			if seq == from.Segment() {
				start = from.Offset()
			}
			i := sort.Search(len(act.starts), func(i int) bool { return act.starts[i] >= start })
			for ; i < len(act.starts) && act.starts[i] < act.durable; i++ {
				off := act.starts[i]
				r, sz, err := decodeRecord(act.stream[off:act.durable])
				if err != nil || off+int64(sz) > act.durable {
					break
				}
				r.LSN = makeLSN(seq, off)
				recs = append(recs, r)
				stats.Records++
				stats.Bytes += int64(sz)
			}
			if act.durable > start {
				stats.Blocks += (act.durable+PayloadSize-1)/PayloadSize - start/PayloadSize
			}
			break
		}
		segRecs, segStats, torn, err := m.scanSealed(seq, from)
		if err != nil {
			return nil, stats, err
		}
		recs = append(recs, segRecs...)
		stats.Segments += segStats.Segments
		stats.Blocks += segStats.Blocks
		stats.Records += segStats.Records
		stats.Bytes += segStats.Bytes
		stats.IndexSeeks += segStats.IndexSeeks
		if torn {
			// Data past a torn point was never acknowledged (segments drain
			// strictly in order), so the scan ends here.
			break
		}
	}
	return recs, stats, nil
}

// scanSealed reads one sealed segment from disk. For the segment containing
// `from` it consults the index to skip the blocks before the target.
func (m *Manager) scanSealed(seq uint64, from LSN) (recs []Record, stats ScanStats, torn bool, err error) {
	f, err := m.fsys.Open(segName(m.base, seq))
	if err != nil {
		if vfsNotExist(err) {
			// A live segment file that is missing means nothing was ever
			// forced to it (files materialize lazily); skip, not torn.
			return nil, stats, false, nil
		}
		return nil, stats, false, err
	}
	defer f.Close()
	stats.Segments++

	size, err := f.Size()
	if err != nil {
		return nil, stats, false, err
	}

	// Index seek: start reading at the block containing the first record
	// >= from, instead of block 0.
	startBlock := int64(0)
	streamBase := int64(0) // stream offset of startBlock's first payload byte
	target := int64(0)     // skip records below this stream offset
	if seq == from.Segment() && from.Offset() > 0 {
		target = from.Offset()
		if e, ok := indexSeek(readIndex(m.fsys, m.base, seq), from); ok {
			startBlock = e.block
			streamBase = e.block * PayloadSize
			stats.IndexSeeks++
		}
	}

	fileOff := blockFileOff(startBlock)
	if fileOff > size {
		return nil, stats, false, nil
	}
	raw := make([]byte, size-fileOff+BlockSize)
	n, err := f.ReadAt(raw, fileOff-BlockSize) // include header block for assembleStream's framing
	if err != nil {
		return nil, stats, false, err
	}
	raw = raw[:n]
	if startBlock == 0 {
		if got, ok := decodeSegHeader(raw); !ok || got != seq {
			return nil, stats, true, nil
		}
	}
	stream, blocks, torn := assembleStream(raw)
	stats.Blocks += blocks

	// Find the first record start: at streamBase the index entry guarantees
	// a record boundary (or we started at block 0 where offset 0 is one).
	off := int64(0)
	for off < int64(len(stream)) {
		r, sz, derr := decodeRecord(stream[off:])
		if derr != nil {
			torn = torn || off < int64(len(stream))
			break
		}
		if streamBase+off >= target {
			r.LSN = makeLSN(seq, streamBase+off)
			recs = append(recs, r)
			stats.Records++
		}
		stats.Bytes += int64(sz)
		off += int64(sz)
	}
	return recs, stats, torn, nil
}

func vfsNotExist(err error) bool {
	return errors.Is(err, vfs.ErrNotExist)
}

// Recover replays the log from the last checkpoint. Transactions fall into
// three classes:
//
//   - committed (commit record present): their updates are redone in log
//     order;
//   - explicitly aborted (abort record present): they are ALSO redone in
//     log order — the transaction layer logs compensation updates
//     (after-image = restored before-image) before the abort record, so
//     replaying the whole sequence reproduces the rollback without ever
//     moving backwards in history. This is how compensation log records
//     keep an abort from clobbering later committed writes at recovery.
//   - in-flight losers (neither record): their before-images are applied
//     in reverse order. Strict two-phase locking guarantees no later
//     transaction wrote the same bytes (the loser still held its write
//     locks at the crash), so reverse undo is safe.
//
// Prepared-but-undecided branches of a global transaction (RecPrepare with
// no later local commit/abort) are presumed aborted; a sharded recovery that
// has the coordinators' decisions uses RecoverResolved instead.
//
// apply writes a byte range into a database page. The scan cost is recorded
// in LastScanStats.
func (m *Manager) Recover(apply func(file uint64, block int64, offset uint32, data []byte) error) (winners, losers int, err error) {
	winners, losers, _, err = m.RecoverResolved(apply, nil)
	return winners, losers, err
}

// RecoverResolved is Recover with an in-doubt resolver: a prepared local
// transaction whose fate has no local decision record is committed when
// resolve reports its global transaction id as committed, and undone
// otherwise (presumed abort — also the behaviour for a nil resolve). The
// extra indoubt count reports how many branches needed the resolver.
func (m *Manager) RecoverResolved(apply func(file uint64, block int64, offset uint32, data []byte) error, resolve func(gid uint64) bool) (winners, losers, indoubt int, err error) {
	recs, err := m.Scan()
	if err != nil {
		return 0, 0, 0, err
	}
	return ReplayRecords(recs, apply, resolve)
}

// GlobalDecisions returns the global-transaction ids whose commit decision
// records (RecGlobalCommit) appear in recs. A sharded recovery scans every
// shard's log first, unions these sets, and then resolves each shard's
// in-doubt branches against the union.
func GlobalDecisions(recs []Record) map[uint64]bool {
	var out map[uint64]bool
	for _, r := range recs {
		if r.Type == RecGlobalCommit {
			if out == nil {
				out = map[uint64]bool{}
			}
			out[r.Txn] = true
		}
	}
	return out
}

// ReplayRecords replays an already-scanned record sequence through apply,
// using resolve to decide prepared-but-undecided branches (nil = presumed
// abort). It is the body of Recover/RecoverResolved, exported so a
// multi-shard recovery can scan all logs before replaying any of them.
func ReplayRecords(recs []Record, apply func(file uint64, block int64, offset uint32, data []byte) error, resolve func(gid uint64) bool) (winners, losers, indoubt int, err error) {
	committed := map[uint64]bool{}
	aborted := map[uint64]bool{}
	prepared := map[uint64]uint64{} // local txn -> global txn id
	var prepOrder []uint64          // prepare-record order; no map iteration needed
	seen := map[uint64]bool{}
	var seenOrder []uint64 // first-appearance order; no map iteration needed
	for _, r := range recs {
		switch r.Type {
		case RecCommit:
			committed[r.Txn] = true
		case RecAbort:
			aborted[r.Txn] = true
		case RecPrepare:
			if _, dup := prepared[r.Txn]; !dup {
				prepOrder = append(prepOrder, r.Txn)
			}
			prepared[r.Txn] = r.File
		case RecUpdate:
			if !seen[r.Txn] {
				seen[r.Txn] = true
				seenOrder = append(seenOrder, r.Txn)
			}
		}
	}
	// Resolve in-doubt branches: prepared, but no local decision record
	// survived. The coordinator's durable decision is authoritative; with
	// none (or no resolver) the branch is presumed aborted and undone like
	// any other loser — its locks were still held at the crash, so reverse
	// undo is safe.
	for _, txn := range prepOrder {
		if committed[txn] || aborted[txn] {
			continue
		}
		indoubt++
		if resolve != nil && resolve(prepared[txn]) {
			committed[txn] = true
		}
	}
	// Redo committed and aborted-with-compensation transactions forward.
	for _, r := range recs {
		if r.Type == RecUpdate && (committed[r.Txn] || aborted[r.Txn]) {
			if err := apply(r.File, r.Block, r.Offset, r.After); err != nil {
				return 0, 0, 0, err
			}
		}
	}
	// Undo in-flight losers backward.
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		if r.Type == RecUpdate && !committed[r.Txn] && !aborted[r.Txn] {
			if err := apply(r.File, r.Block, r.Offset, r.Before); err != nil {
				return 0, 0, 0, err
			}
		}
	}
	w, l := 0, 0
	for _, txn := range seenOrder {
		if committed[txn] {
			w++
		} else {
			l++
		}
	}
	return w, l, indoubt, nil
}
