// Package wal implements the write-ahead log manager of the user-level
// transaction system (Figure 2 of the paper): physical before/after-image
// logging of byte ranges within pages, supporting both redo and undo
// recovery, with group commit to amortize the cost of forcing the log.
//
// The log is a sequence of rotated segment files ({base}.{seq}.txnlog) on
// whichever file system the database lives on, each built from CRC-protected
// 4 KB blocks (see segment.go for the on-disk format). Each record carries
// its transaction, the page it touched, the byte range, and the before- and
// after-images; commit forces the log to disk (possibly after batching
// several transactions — group commit, [3]). Checkpoints advance a low-water
// mark recorded in a small anchor file and truncate (or archive) the dead
// segments below it, so recovery reads the live tail, never total history.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/trace"
	"repro/internal/vfs"
)

// RecType discriminates log records.
type RecType uint8

const (
	// RecUpdate is a page update with before/after images.
	RecUpdate RecType = iota + 1
	// RecCommit marks a transaction committed.
	RecCommit
	// RecAbort marks a transaction rolled back.
	RecAbort
	// RecCheckpoint records that all dirty pages up to this point were
	// flushed and lists no active transactions (quiescent checkpoint). Its
	// File field carries the low-water segment sequence the checkpoint
	// established.
	RecCheckpoint
	// RecPrepare marks a local transaction prepared under a two-phase
	// commit: all its updates precede this record, and its fate now belongs
	// to the global transaction whose id is carried in the File field. A
	// prepared transaction with no later local commit/abort is in doubt at
	// recovery and is resolved by the coordinator's decision record.
	RecPrepare
	// RecGlobalCommit is the coordinator's decision record for a global
	// transaction (id in the Txn field): once durable in the coordinator's
	// log, every prepared branch of that global transaction commits.
	// Absence at recovery means presumed abort.
	RecGlobalCommit
)

// Record is one log record.
type Record struct {
	LSN    LSN
	Type   RecType
	Txn    uint64
	File   uint64
	Block  int64
	Offset uint32 // byte offset within the page
	Before []byte
	After  []byte
}

const recFixed = 4 + 4 + 1 + 8 + 8 + 8 + 4 + 4 + 4 // len crc type txn file block off blen alen

// Errors.
var (
	ErrCorrupt = errors.New("wal: corrupt log record")
	ErrClosed  = errors.New("wal: log closed")
)

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is zero: a segment seals once its payload stream reaches this size.
const DefaultSegmentBytes = 1 << 20

// Options configures the segmented log.
type Options struct {
	// SegmentBytes is the rotation threshold: once a segment's payload
	// stream would exceed it, the segment seals and a new one opens.
	// 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// Retain keeps dead segments on disk (read-only archives for online
	// backup) instead of deleting them at checkpoint truncation.
	Retain bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	return o
}

// Stats counts log activity.
type Stats struct {
	Records      int64
	BytesLogged  int64 // record bytes appended (excludes block framing)
	Forces       int64 // log forces (synchronous flushes)
	GroupCommits int64 // commits absorbed into a pending batch

	Segments         int64 // segment files created
	Rotations        int64 // active-segment seals due to the size threshold
	SegmentsSealed   int64 // sealed segments fully flushed and closed
	SegmentsDeleted  int64 // dead segments removed by checkpoint truncation
	SegmentsArchived int64 // dead segments retained as read-only archives
	Checkpoints      int64 // checkpoints anchored
	IndexEntries     int64 // index entries emitted
	IndexWrites      int64 // index file write batches
}

// segWriter is the in-memory state of one not-yet-finalized segment: the
// whole payload stream (records back to the segment's first byte, so tail
// blocks can be recomposed on rewrite), the durable prefix, and the record
// start offsets that drive block headers and the index.
type segWriter struct {
	seq     uint64
	f       vfs.File // nil until the first force creates the file
	idxF    vfs.File
	stream  []byte  // payload stream: encoded records, contiguous
	durable int64   // stream prefix durable on disk
	starts  []int64 // record-start offsets into stream, ascending
	idxNext int64   // next block to consider for index emission
	idxCnt  int64   // index entries written so far
	sealed  bool    // rotation happened; finalize at next force
}

func (w *segWriter) end() int64 { return int64(len(w.stream)) }

// grow extends the payload stream by n bytes and returns the new region.
// The stream only ever grows within a segment, so spare capacity is reused
// and the doubling slope is the only allocation.
//
//simlint:noalloc
func (w *segWriter) grow(n int) []byte {
	old := len(w.stream)
	if cap(w.stream)-old < n {
		//simlint:alloc(amortized doubling of the per-segment payload stream)
		w.stream = append(w.stream, make([]byte, n)...)
	} else {
		w.stream = w.stream[:old+n]
	}
	return w.stream[old : old+n]
}

// firstRecIn returns the payload offset (relative to lo) of the first record
// starting in stream[lo:hi], or noFirstRec.
//
//simlint:noalloc
func (w *segWriter) firstRecIn(lo, hi int64) int {
	//simlint:alloc(non-escaping closure: sort.Search does not retain its predicate)
	i := sort.Search(len(w.starts), func(i int) bool { return w.starts[i] >= lo })
	if i < len(w.starts) && w.starts[i] < hi {
		return int(w.starts[i] - lo)
	}
	return noFirstRec
}

// contAt reports whether stream position lo falls mid-record (the block
// beginning there needs the continuation flag).
//
//simlint:noalloc
func (w *segWriter) contAt(lo int64) bool {
	if lo == 0 {
		return false
	}
	//simlint:alloc(non-escaping closure: sort.Search does not retain its predicate)
	i := sort.Search(len(w.starts), func(i int) bool { return w.starts[i] >= lo })
	return !(i < len(w.starts) && w.starts[i] == lo)
}

// Manager is a write-ahead log over rotated segments.
type Manager struct {
	fsys vfs.FileSystem
	base string
	opts Options

	// writers holds the unfinalized segments in ascending sequence order;
	// the last is the active segment new records append to. Everything
	// before it is sealed and drains (in order — a sealed segment is fully
	// durable before the next segment's file even exists) at Force.
	writers  []*segWriter
	lowWater uint64 // lowest live segment sequence
	ckptLSN  LSN    // last anchored checkpoint, 0 = none
	anchorF  vfs.File
	closed   bool

	// Group commit: force the log only once every batch commits, or
	// immediately when batch <= 1 ("sufficiently more transactions have
	// committed to justify the write", §4.4).
	batch        int
	pendingComms int

	blockBuf []byte // reusable block-composition scratch for Force
	idxBuf   []byte // reusable index-entry scratch for flushIndex

	stats    Stats
	lastScan ScanStats
	tracer   *trace.Tracer // nil = tracing off
	// Metric handles resolved at SetTracer time; nil handles are free.
	ctrAbsorbed, ctrForces, ctrRotations, ctrSealed, ctrTruncated, ctrIdxWrites *trace.Counter
}

// SetTracer attaches a tracer; log forces then emit wal.force spans, commit
// appends emit wal.commit instants, rotations and truncations emit instants,
// and the wal.* counters accumulate. A nil tracer costs nothing.
func (m *Manager) SetTracer(tr *trace.Tracer) {
	m.tracer = tr
	m.ctrAbsorbed = tr.Counter("wal.absorbed")
	m.ctrForces = tr.Counter("wal.forces")
	m.ctrRotations = tr.Counter("wal.rotations")
	m.ctrSealed = tr.Counter("wal.sealed")
	m.ctrTruncated = tr.Counter("wal.truncated")
	m.ctrIdxWrites = tr.Counter("wal.indexWrites")
}

// SetGroupCommit sets the commit batch size: the log is forced once per
// `batch` commits. batch <= 1 forces at every commit.
func (m *Manager) SetGroupCommit(batch int) {
	if batch < 1 {
		batch = 1
	}
	m.batch = batch
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// LastScanStats reports the cost of the most recent recovery scan.
func (m *Manager) LastScanStats() ScanStats { return m.lastScan }

// CheckpointLSN returns the last anchored checkpoint LSN (0 if none).
func (m *Manager) CheckpointLSN() LSN { return m.ckptLSN }

// LowWater returns the lowest live segment sequence.
func (m *Manager) LowWater() uint64 { return m.lowWater }

// active returns the segment new records append to.
func (m *Manager) active() *segWriter { return m.writers[len(m.writers)-1] }

// End returns the logical end of the log (the LSN the next record gets).
func (m *Manager) End() LSN {
	w := m.active()
	return makeLSN(w.seq, w.end())
}

// FlushedTo reports the durable end of the log. Pages whose most recent
// update has LSN < FlushedTo may be written to the database (WAL rule).
func (m *Manager) FlushedTo() LSN {
	w := m.writers[0]
	return makeLSN(w.seq, w.durable)
}

func recSize(r *Record) int { return recFixed + len(r.Before) + len(r.After) }

// encodeRecordInto encodes r into b, which must be exactly recSize(r) bytes.
// The CRC is computed with table-driven crc32.Update rather than a
// crc32.NewIEEE hash value, which would allocate on every record.
//
//simlint:noalloc
func encodeRecordInto(b []byte, r *Record) {
	le := binary.LittleEndian
	le.PutUint32(b[0:], uint32(len(b)))
	b[8] = byte(r.Type)
	le.PutUint64(b[9:], r.Txn)
	le.PutUint64(b[17:], r.File)
	le.PutUint64(b[25:], uint64(r.Block))
	le.PutUint32(b[33:], r.Offset)
	le.PutUint32(b[37:], uint32(len(r.Before)))
	le.PutUint32(b[41:], uint32(len(r.After)))
	copy(b[recFixed:], r.Before)
	copy(b[recFixed+len(r.Before):], r.After)
	crc := crc32.Update(0, crc32.IEEETable, b[0:4])
	crc = crc32.Update(crc, crc32.IEEETable, b[8:])
	le.PutUint32(b[4:], crc)
}

func decodeRecord(b []byte) (Record, int, error) {
	if len(b) < recFixed {
		return Record{}, 0, ErrCorrupt
	}
	le := binary.LittleEndian
	size := int(le.Uint32(b[0:]))
	if size < recFixed || size > len(b) {
		return Record{}, 0, ErrCorrupt
	}
	crc := crc32.Update(0, crc32.IEEETable, b[0:4])
	crc = crc32.Update(crc, crc32.IEEETable, b[8:size])
	if le.Uint32(b[4:]) != crc {
		return Record{}, 0, ErrCorrupt
	}
	var r Record
	r.Type = RecType(b[8])
	r.Txn = le.Uint64(b[9:])
	r.File = le.Uint64(b[17:])
	r.Block = int64(le.Uint64(b[25:]))
	r.Offset = le.Uint32(b[33:])
	blen := int(le.Uint32(b[37:]))
	alen := int(le.Uint32(b[41:]))
	if recFixed+blen+alen != size {
		return Record{}, 0, ErrCorrupt
	}
	r.Before = append([]byte(nil), b[recFixed:recFixed+blen]...)
	r.After = append([]byte(nil), b[recFixed+blen:size]...)
	return r, size, nil
}

// append adds a record to the active segment's in-memory stream, encoding it
// in place (no per-record buffer), rotating first if the record would push
// the stream past the segment threshold, and returns its LSN. Pure memory —
// no I/O happens until Force.
//
//simlint:noalloc
func (m *Manager) append(r *Record) LSN {
	size := recSize(r)
	w := m.active()
	if w.end() > 0 && w.end()+int64(size) > m.opts.SegmentBytes {
		w.sealed = true
		m.stats.Rotations++
		m.ctrRotations.Add(1)
		m.tracer.Instant("wal", "wal.rotate", trace.AU("seq", w.seq+1))
		//simlint:alloc(cold rotation slope: one writer per SegmentBytes of log)
		w = &segWriter{seq: w.seq + 1}
		//simlint:alloc(cold rotation slope: writers list grows once per rotation)
		m.writers = append(m.writers, w)
	}
	lsn := makeLSN(w.seq, w.end())
	r.LSN = lsn
	//simlint:alloc(amortized growth of the per-segment record-start index)
	w.starts = append(w.starts, w.end())
	encodeRecordInto(w.grow(size), r)
	m.stats.Records++
	m.stats.BytesLogged += int64(size)
	return lsn
}

// LogUpdate appends an update record (before writing the page to disk: the
// WAL protocol requires the log to be forced before the page, which the
// buffer manager enforces by flushing the log on page write-back). The
// before/after images are encoded into the segment stream before LogUpdate
// returns, so the caller's slices are not retained and need no copy.
//
//simlint:noalloc
func (m *Manager) LogUpdate(txn, file uint64, block int64, offset uint32, before, after []byte) (LSN, error) {
	if m.closed {
		return 0, ErrClosed
	}
	r := Record{Type: RecUpdate, Txn: txn, File: file, Block: block, Offset: offset,
		Before: before, After: after}
	return m.append(&r), nil
}

// LogCommit appends a commit record and forces the log (or defers the force
// under group commit). It reports whether the commit is durable yet.
//
//simlint:noalloc
func (m *Manager) LogCommit(txn uint64) (LSN, bool, error) {
	if m.closed {
		return 0, false, ErrClosed
	}
	//simlint:alloc(non-escaping record: append encodes it and drops the pointer)
	lsn := m.append(&Record{Type: RecCommit, Txn: txn})
	m.tracer.Instant("wal", "wal.commit", trace.AU("txn", txn), trace.AI("lsn", int64(lsn)))
	m.pendingComms++
	if m.pendingComms >= m.batch {
		m.pendingComms = 0
		if err := m.Force(); err != nil {
			return lsn, false, err
		}
		return lsn, true, nil
	}
	m.stats.GroupCommits++
	return lsn, false, nil
}

// AppendCommit appends a commit record without forcing the log and without
// touching the manager's own group-commit batching. The multiprogramming
// commit path uses it: there the environment owns the batching policy,
// blocking concurrent committers on a shared flush event, and calls Force
// itself when the batch fills (or the scheduler's timeout arm fires). A
// rotation triggered mid-batch is safe: the sealed segment simply drains
// ahead of the active one inside the batch's eventual Force.
//
//simlint:noalloc
func (m *Manager) AppendCommit(txn uint64) (LSN, error) {
	if m.closed {
		return 0, ErrClosed
	}
	//simlint:alloc(non-escaping record: append encodes it and drops the pointer)
	lsn := m.append(&Record{Type: RecCommit, Txn: txn})
	m.tracer.Instant("wal", "wal.commit", trace.AU("txn", txn), trace.AI("lsn", int64(lsn)))
	return lsn, nil
}

// NoteAbsorbed counts a commit that joined a pending batch without forcing
// the log, for callers that batch via AppendCommit.
func (m *Manager) NoteAbsorbed() {
	m.stats.GroupCommits++
	m.ctrAbsorbed.Add(1)
}

// LogPrepare appends a prepare record binding local transaction txn to
// global transaction gid, without forcing the log. The caller must make the
// record durable (a Force, direct or via a group-commit batch) before the
// coordinator is allowed to log its decision — that ordering is the whole
// two-phase-commit contract.
//
//simlint:noalloc
func (m *Manager) LogPrepare(txn, gid uint64) (LSN, error) {
	if m.closed {
		return 0, ErrClosed
	}
	//simlint:alloc(non-escaping record: append encodes it and drops the pointer)
	lsn := m.append(&Record{Type: RecPrepare, Txn: txn, File: gid})
	m.tracer.Instant("wal", "wal.prepare", trace.AU("txn", txn), trace.AU("gid", gid))
	return lsn, nil
}

// AppendGlobalCommit appends the coordinator's decision record for global
// transaction gid without forcing the log; like AppendCommit, the caller
// owns the force that makes the decision durable (the commit point of the
// whole global transaction).
//
//simlint:noalloc
func (m *Manager) AppendGlobalCommit(gid uint64) (LSN, error) {
	if m.closed {
		return 0, ErrClosed
	}
	//simlint:alloc(non-escaping record: append encodes it and drops the pointer)
	lsn := m.append(&Record{Type: RecGlobalCommit, Txn: gid})
	m.tracer.Instant("wal", "wal.globalcommit", trace.AU("gid", gid))
	return lsn, nil
}

// LogAbort appends an abort record (no force needed: undo was already
// applied from in-memory state, and the abort record only speeds recovery).
func (m *Manager) LogAbort(txn uint64) (LSN, error) {
	if m.closed {
		return 0, ErrClosed
	}
	return m.append(&Record{Type: RecAbort, Txn: txn}), nil
}

// LogCheckpoint appends a quiescent-checkpoint record, forces the log,
// anchors the checkpoint (LSN + low-water segment) in the anchor file, and
// truncates the now-dead segments below the low-water mark. The ordering is
// crash-safe at every step: until the anchor write is durable, recovery uses
// the previous checkpoint (whose segments still exist); after it, the dead
// segments are unreferenced and deleting them is idempotent (Open finishes
// an interrupted truncation).
func (m *Manager) LogCheckpoint() (LSN, error) {
	if m.closed {
		return 0, ErrClosed
	}
	r := Record{Type: RecCheckpoint}
	// The record lands in whatever segment is active after a possible
	// rotation; that segment becomes the new low-water mark. Stamp it into
	// the record for offline inspection (the anchor is authoritative).
	// Mirrors append's rotation condition; recSize is File-independent.
	w := m.active()
	r.File = w.seq
	if w.end() > 0 && w.end()+int64(recSize(&r)) > m.opts.SegmentBytes {
		r.File = w.seq + 1
	}
	lsn := m.append(&r)
	if err := m.Force(); err != nil {
		return lsn, err
	}
	newLow := lsn.Segment()
	if err := m.writeAnchor(anchor{ckptLSN: lsn, lowWater: newLow}); err != nil {
		return lsn, err
	}
	m.ckptLSN = lsn
	if err := m.truncateBelow(newLow); err != nil {
		return lsn, err
	}
	m.stats.Checkpoints++
	m.pendingComms = 0
	return lsn, nil
}

// writeAnchor atomically replaces the checkpoint anchor (a single sub-block
// write, atomic on both file systems).
func (m *Manager) writeAnchor(a anchor) error {
	if _, err := m.anchorF.WriteAt(encodeAnchor(a), 0); err != nil {
		return err
	}
	return m.anchorF.Sync()
}

// truncateBelow deletes (or, with Retain, archives in place) every segment
// with sequence below newLow. Deletion durability is not required: if the
// crash eats a removal, Open finds the stale segment below the anchored
// low-water mark and deletes it again. The full-FS sync after the removals
// IS required, though — an LFS-style host queues each unlink's deletion
// record for its next flush, whichever file triggers it, while the updated
// directory block stays dirty in memory. Without the barrier, the next
// commit force (a log-file-only sync) would persist the inode deletions
// alone, and a crash there recovers directory entries pointing at dead
// inodes. The sync flushes the deletions and the directory update as one
// atomic batch.
func (m *Manager) truncateBelow(newLow uint64) error {
	removed := false
	for seq := m.lowWater; seq < newLow; seq++ {
		if m.opts.Retain {
			m.stats.SegmentsArchived++
			continue
		}
		if err := removeIfExists(m.fsys, segName(m.base, seq)); err != nil {
			return err
		}
		if err := removeIfExists(m.fsys, idxName(m.base, seq)); err != nil {
			return err
		}
		removed = true
		m.stats.SegmentsDeleted++
		m.ctrTruncated.Add(1)
		m.tracer.Instant("wal", "wal.truncate", trace.AU("seq", seq))
	}
	m.lowWater = newLow
	if removed {
		return m.fsys.Sync()
	}
	return nil
}

func removeIfExists(fsys vfs.FileSystem, path string) error {
	err := fsys.Remove(path)
	if errors.Is(err, vfs.ErrNotExist) {
		return nil
	}
	return err
}

// dirty reports whether Force has anything to do.
func (m *Manager) dirty() bool {
	for _, w := range m.writers {
		if w.sealed || w.durable < w.end() {
			return true
		}
	}
	return false
}

// Force flushes all buffered records to the segment files and syncs them —
// the log force at the heart of WAL. Segments drain strictly in sequence
// order: a sealed segment is fully durable (data, index, close) before the
// next segment's file is created, so a crash can tear at most the last
// segment on disk.
//
//simlint:noalloc
func (m *Manager) Force() error {
	if m.closed {
		return ErrClosed
	}
	if !m.dirty() {
		return nil
	}
	span := m.tracer.Begin("wal", "wal.force")
	var bytes int64
	for {
		w := m.writers[0]
		n, err := m.flushWriter(w)
		if err != nil {
			return err
		}
		bytes += n
		if !w.sealed {
			break
		}
		if err := m.finalizeWriter(w); err != nil {
			return err
		}
		m.writers = m.writers[1:]
	}
	m.stats.Forces++
	span.End(trace.AI("bytes", bytes))
	m.ctrForces.Add(1)
	return nil
}

// flushWriter makes w's whole stream durable: composes the dirty block
// range (including a rewrite of the previously-partial tail block), writes
// it in one contiguous I/O, syncs, then emits index entries for the blocks
// that are now complete. Returns the count of newly durable stream bytes.
//
//simlint:noalloc
func (m *Manager) flushWriter(w *segWriter) (int64, error) {
	end := w.end()
	if w.durable >= end {
		return 0, nil
	}
	if w.f == nil {
		if err := m.createSegment(w); err != nil {
			return 0, err
		}
	}
	b0 := w.durable / PayloadSize
	b1 := (end - 1) / PayloadSize
	need := int((b1 - b0 + 1) * BlockSize)
	if cap(m.blockBuf) < need {
		//simlint:alloc(reusable block scratch grows to the largest force seen)
		m.blockBuf = make([]byte, need)
	}
	buf := m.blockBuf[:need]
	for b := b0; b <= b1; b++ {
		lo := b * PayloadSize
		hi := lo + PayloadSize
		if hi > end {
			hi = end
		}
		dst := buf[(b-b0)*BlockSize : (b-b0+1)*BlockSize]
		encodeBlock(dst, w.stream[lo:hi], w.firstRecIn(lo, hi), w.contAt(lo))
	}
	//simlint:alloc(simulated data I/O below the log hot path, not the compose loop)
	if _, err := w.f.WriteAt(buf, blockFileOff(b0)); err != nil {
		return 0, err
	}
	//simlint:alloc(simulated sync below the log hot path)
	if err := w.f.Sync(); err != nil {
		return 0, err
	}
	written := end - w.durable
	w.durable = end
	return written, m.flushIndex(w, false)
}

// createSegment lazily materializes w's segment and index files, making
// their directory entries durable before any data is acknowledged.
//
//simlint:alloc(cold per-segment file creation: runs once per SegmentBytes of log)
func (m *Manager) createSegment(w *segWriter) error {
	f, err := m.fsys.Create(segName(m.base, w.seq))
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(encodeSegHeader(w.seq), 0); err != nil {
		return err
	}
	idxF, err := m.fsys.Create(idxName(m.base, w.seq))
	if err != nil {
		return err
	}
	// A full file-system sync, not just an fsync of the file: the segment's
	// directory entry must be durable too, or a crash leaves acknowledged
	// log data unreachable by path.
	if err := m.fsys.Sync(); err != nil {
		return err
	}
	w.f, w.idxF = f, idxF
	m.stats.Segments++
	return nil
}

// flushIndex appends index entries for blocks that became complete (or, at
// finalize time, for the partial tail block too). The index is advisory:
// it is not synced until the segment seals, and recovery falls back to a
// full segment scan when it is missing or torn.
//
//simlint:noalloc
func (m *Manager) flushIndex(w *segWriter, final bool) error {
	limit := w.durable / PayloadSize // first incomplete block
	if final && w.durable%PayloadSize != 0 {
		limit++
	}
	if w.idxNext >= limit || w.idxF == nil {
		return nil
	}
	buf := m.idxBuf[:0] // reusable scratch: steady state emits with no allocation
	for b := w.idxNext; b < limit; b++ {
		lo := b * PayloadSize
		hi := lo + PayloadSize
		if hi > w.durable {
			hi = w.durable
		}
		fr := w.firstRecIn(lo, hi)
		if fr == noFirstRec {
			continue
		}
		var e [indexEntrySize]byte
		encodeIndexEntry(e[:], indexEntry{lsn: makeLSN(w.seq, lo+int64(fr)), block: b})
		//simlint:alloc(amortized growth of the reusable index scratch)
		buf = append(buf, e[:]...)
		m.stats.IndexEntries++
	}
	w.idxNext = limit
	m.idxBuf = buf[:0]
	if len(buf) == 0 {
		return nil
	}
	//simlint:alloc(simulated index I/O below the log hot path, not the emit loop)
	if _, err := w.idxF.WriteAt(buf, w.idxCnt*indexEntrySize); err != nil {
		return err
	}
	w.idxCnt += int64(len(buf) / indexEntrySize)
	m.stats.IndexWrites++
	m.ctrIdxWrites.Add(1)
	return nil
}

// finalizeWriter completes a sealed, fully-flushed segment: emits the tail
// block's index entry, syncs and closes the index, and closes the data file.
//
//simlint:alloc(cold per-segment finalize: runs once per rotation)
func (m *Manager) finalizeWriter(w *segWriter) error {
	if w.f != nil {
		if err := m.flushIndex(w, true); err != nil {
			return err
		}
		if err := w.idxF.Sync(); err != nil {
			return err
		}
		if err := w.idxF.Close(); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return err
		}
	}
	m.stats.SegmentsSealed++
	m.ctrSealed.Add(1)
	return nil
}

// Close flushes and closes the log files.
func (m *Manager) Close() error {
	if m.closed {
		return nil
	}
	if err := m.Force(); err != nil {
		return err
	}
	m.closed = true
	for _, w := range m.writers {
		if w.f != nil {
			if err := w.idxF.Close(); err != nil {
				return err
			}
			if err := w.f.Close(); err != nil {
				return err
			}
		}
	}
	return m.anchorF.Close()
}

// String describes the log position.
func (m *Manager) String() string {
	w := m.active()
	return fmt.Sprintf("wal{seg=%d end=%d durable=%d low=%d ckpt=%s}",
		w.seq, w.end(), w.durable, m.lowWater, m.ckptLSN)
}
