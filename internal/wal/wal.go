// Package wal implements the write-ahead log manager of the user-level
// transaction system (Figure 2 of the paper): physical before/after-image
// logging of byte ranges within pages, supporting both redo and undo
// recovery, with group commit to amortize the cost of forcing the log.
//
// The log is an append-only file on whichever file system the database lives
// on. Each record carries its transaction, the page it touched, the byte
// range, and the before- and after-images; commit forces the log to disk
// (possibly after batching several transactions — group commit, [3]).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/detsort"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// LSN is a log sequence number: the byte offset of a record in the log file.
type LSN int64

// RecType discriminates log records.
type RecType uint8

const (
	// RecUpdate is a page update with before/after images.
	RecUpdate RecType = iota + 1
	// RecCommit marks a transaction committed.
	RecCommit
	// RecAbort marks a transaction rolled back.
	RecAbort
	// RecCheckpoint records that all dirty pages up to this point were
	// flushed and lists no active transactions (quiescent checkpoint).
	RecCheckpoint
)

// Record is one log record.
type Record struct {
	LSN    LSN
	Type   RecType
	Txn    uint64
	File   uint64
	Block  int64
	Offset uint32 // byte offset within the page
	Before []byte
	After  []byte
}

// headerSize is the reserved area at the start of the log file.
const headerSize = 512

const recFixed = 4 + 4 + 1 + 8 + 8 + 8 + 4 + 4 + 4 // len crc type txn file block off blen alen

// Errors.
var (
	ErrCorrupt = errors.New("wal: corrupt log record")
	ErrClosed  = errors.New("wal: log closed")
)

// Stats counts log activity.
type Stats struct {
	Records      int64
	BytesLogged  int64
	Forces       int64 // log forces (synchronous flushes)
	GroupCommits int64 // commits absorbed into a pending batch
}

// Manager is a write-ahead log.
type Manager struct {
	f      vfs.File
	buf    []byte // unflushed tail
	tail   int64  // durable end of log (file offset)
	end    int64  // logical end including buffered records
	closed bool

	// Group commit: force the log only once every batch commits, or
	// immediately when batch <= 1 ("sufficiently more transactions have
	// committed to justify the write", §4.4).
	batch        int
	pendingComms int

	stats  Stats
	tracer *trace.Tracer // nil = tracing off
	// Metric handles resolved at SetTracer time; nil handles are free.
	ctrAbsorbed, ctrForces *trace.Counter
}

// SetTracer attaches a tracer; log forces then emit wal.force spans, commit
// appends emit wal.commit instants, and absorbed commits count into the
// wal.absorbed counter. A nil tracer costs nothing.
func (m *Manager) SetTracer(tr *trace.Tracer) {
	m.tracer = tr
	m.ctrAbsorbed = tr.Counter("wal.absorbed")
	m.ctrForces = tr.Counter("wal.forces")
}

// Create initializes a fresh log file at path.
func Create(fsys vfs.FileSystem, path string) (*Manager, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(hdr, 0x57414c31) // "WAL1"
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return nil, err
	}
	// A full file-system sync, not just an fsync of the file: the log's
	// directory entry must be durable too, or a crash before the first
	// checkpoint leaves the log unreachable by path.
	if err := fsys.Sync(); err != nil {
		return nil, err
	}
	return &Manager{f: f, tail: headerSize, end: headerSize, batch: 1}, nil
}

// Open opens an existing log file for recovery and further appending.
func Open(fsys vfs.FileSystem, path string) (*Manager, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	m := &Manager{f: f, batch: 1}
	// The durable end is found by scanning (the trailing record's end);
	// Scan tolerates a torn tail.
	recs, err := m.Scan()
	if err != nil {
		return nil, err
	}
	end := int64(headerSize)
	if n := len(recs); n > 0 {
		last := recs[n-1]
		end = int64(last.LSN) + int64(recSize(&last))
	}
	// Discard the torn tail on disk, not just logically: a crash mid-force
	// can leave a half-written record (bad CRC) past the last intact one.
	// Those bytes were never acknowledged durable; truncating them keeps a
	// later partial overwrite from ever resurrecting stale record fragments.
	if size, err := f.Size(); err != nil {
		return nil, err
	} else if size > end {
		if err := f.Truncate(end); err != nil {
			return nil, err
		}
		if err := f.Sync(); err != nil {
			return nil, err
		}
	}
	m.tail, m.end = end, end
	return m, nil
}

// SetGroupCommit sets the commit batch size: the log is forced once per
// `batch` commits. batch <= 1 forces at every commit.
func (m *Manager) SetGroupCommit(batch int) {
	if batch < 1 {
		batch = 1
	}
	m.batch = batch
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// End returns the logical end of the log.
func (m *Manager) End() LSN { return LSN(m.end) }

func recSize(r *Record) int { return recFixed + len(r.Before) + len(r.After) }

func encodeRecord(r *Record) []byte {
	size := recSize(r)
	b := make([]byte, size)
	le := binary.LittleEndian
	le.PutUint32(b[0:], uint32(size))
	b[8] = byte(r.Type)
	le.PutUint64(b[9:], r.Txn)
	le.PutUint64(b[17:], r.File)
	le.PutUint64(b[25:], uint64(r.Block))
	le.PutUint32(b[33:], r.Offset)
	le.PutUint32(b[37:], uint32(len(r.Before)))
	le.PutUint32(b[41:], uint32(len(r.After)))
	copy(b[recFixed:], r.Before)
	copy(b[recFixed+len(r.Before):], r.After)
	crc := crc32.NewIEEE()
	crc.Write(b[0:4])
	crc.Write(b[8:])
	le.PutUint32(b[4:], crc.Sum32())
	return b
}

func decodeRecord(b []byte) (Record, int, error) {
	if len(b) < recFixed {
		return Record{}, 0, ErrCorrupt
	}
	le := binary.LittleEndian
	size := int(le.Uint32(b[0:]))
	if size < recFixed || size > len(b) {
		return Record{}, 0, ErrCorrupt
	}
	crc := crc32.NewIEEE()
	crc.Write(b[0:4])
	crc.Write(b[8:size])
	if le.Uint32(b[4:]) != crc.Sum32() {
		return Record{}, 0, ErrCorrupt
	}
	var r Record
	r.Type = RecType(b[8])
	r.Txn = le.Uint64(b[9:])
	r.File = le.Uint64(b[17:])
	r.Block = int64(le.Uint64(b[25:]))
	r.Offset = le.Uint32(b[33:])
	blen := int(le.Uint32(b[37:]))
	alen := int(le.Uint32(b[41:]))
	if recFixed+blen+alen != size {
		return Record{}, 0, ErrCorrupt
	}
	r.Before = append([]byte(nil), b[recFixed:recFixed+blen]...)
	r.After = append([]byte(nil), b[recFixed+blen:size]...)
	return r, size, nil
}

// append adds a record to the in-memory tail and returns its LSN.
func (m *Manager) append(r *Record) LSN {
	lsn := LSN(m.end)
	r.LSN = lsn
	enc := encodeRecord(r)
	m.buf = append(m.buf, enc...)
	m.end += int64(len(enc))
	m.stats.Records++
	m.stats.BytesLogged += int64(len(enc))
	return lsn
}

// LogUpdate appends an update record (before writing the page to disk: the
// WAL protocol requires the log to be forced before the page, which the
// buffer manager enforces by flushing the log on page write-back).
func (m *Manager) LogUpdate(txn, file uint64, block int64, offset uint32, before, after []byte) (LSN, error) {
	if m.closed {
		return 0, ErrClosed
	}
	r := Record{Type: RecUpdate, Txn: txn, File: file, Block: block, Offset: offset,
		Before: append([]byte(nil), before...), After: append([]byte(nil), after...)}
	return m.append(&r), nil
}

// LogCommit appends a commit record and forces the log (or defers the force
// under group commit). It reports whether the commit is durable yet.
func (m *Manager) LogCommit(txn uint64) (LSN, bool, error) {
	if m.closed {
		return 0, false, ErrClosed
	}
	lsn := m.append(&Record{Type: RecCommit, Txn: txn})
	m.tracer.Instant("wal", "wal.commit", trace.AU("txn", txn), trace.AI("lsn", int64(lsn)))
	m.pendingComms++
	if m.pendingComms >= m.batch {
		m.pendingComms = 0
		if err := m.Force(); err != nil {
			return lsn, false, err
		}
		return lsn, true, nil
	}
	m.stats.GroupCommits++
	return lsn, false, nil
}

// AppendCommit appends a commit record without forcing the log and without
// touching the manager's own group-commit batching. The multiprogramming
// commit path uses it: there the environment owns the batching policy,
// blocking concurrent committers on a shared flush event, and calls Force
// itself when the batch fills (or the scheduler's timeout arm fires).
func (m *Manager) AppendCommit(txn uint64) (LSN, error) {
	if m.closed {
		return 0, ErrClosed
	}
	lsn := m.append(&Record{Type: RecCommit, Txn: txn})
	m.tracer.Instant("wal", "wal.commit", trace.AU("txn", txn), trace.AI("lsn", int64(lsn)))
	return lsn, nil
}

// NoteAbsorbed counts a commit that joined a pending batch without forcing
// the log, for callers that batch via AppendCommit.
func (m *Manager) NoteAbsorbed() {
	m.stats.GroupCommits++
	m.ctrAbsorbed.Add(1)
}

// LogAbort appends an abort record (no force needed: undo was already
// applied from in-memory state, and the abort record only speeds recovery).
func (m *Manager) LogAbort(txn uint64) (LSN, error) {
	if m.closed {
		return 0, ErrClosed
	}
	return m.append(&Record{Type: RecAbort, Txn: txn}), nil
}

// LogCheckpoint appends a quiescent-checkpoint record and forces the log.
func (m *Manager) LogCheckpoint() (LSN, error) {
	if m.closed {
		return 0, ErrClosed
	}
	lsn := m.append(&Record{Type: RecCheckpoint})
	return lsn, m.Force()
}

// Force flushes all buffered records to the log file and syncs it — the
// log force at the heart of WAL.
func (m *Manager) Force() error {
	if m.closed {
		return ErrClosed
	}
	if len(m.buf) == 0 {
		return nil
	}
	span := m.tracer.Begin("wal", "wal.force")
	bytes := len(m.buf)
	if _, err := m.f.WriteAt(m.buf, m.tail); err != nil {
		return err
	}
	if err := m.f.Sync(); err != nil {
		return err
	}
	m.tail = m.end
	m.buf = m.buf[:0]
	m.stats.Forces++
	span.End(trace.AI("bytes", int64(bytes)))
	m.ctrForces.Add(1)
	return nil
}

// FlushedTo reports the durable end of the log. Pages whose most recent
// update has LSN < FlushedTo may be written to the database (WAL rule).
func (m *Manager) FlushedTo() LSN { return LSN(m.tail) }

// Scan reads every intact record from the start of the log. A torn or
// corrupt tail terminates the scan without error (those records were never
// acknowledged durable).
func (m *Manager) Scan() ([]Record, error) {
	size, err := m.f.Size()
	if err != nil {
		return nil, err
	}
	if size <= headerSize {
		return nil, nil
	}
	raw := make([]byte, size-headerSize)
	n, err := m.f.ReadAt(raw, headerSize)
	if err != nil {
		return nil, err
	}
	raw = raw[:n]
	var recs []Record
	off := 0
	for off < len(raw) {
		r, sz, err := decodeRecord(raw[off:])
		if err != nil {
			break // torn tail
		}
		r.LSN = LSN(headerSize + off)
		recs = append(recs, r)
		off += sz
	}
	return recs, nil
}

// Recover replays the log. Transactions fall into three classes:
//
//   - committed (commit record present): their updates are redone in log
//     order;
//   - explicitly aborted (abort record present): they are ALSO redone in
//     log order — the transaction layer logs compensation updates
//     (after-image = restored before-image) before the abort record, so
//     replaying the whole sequence reproduces the rollback without ever
//     moving backwards in history. This is how compensation log records
//     keep an abort from clobbering later committed writes at recovery.
//   - in-flight losers (neither record): their before-images are applied
//     in reverse order. Strict two-phase locking guarantees no later
//     transaction wrote the same bytes (the loser still held its write
//     locks at the crash), so reverse undo is safe.
//
// apply writes a byte range into a database page.
func (m *Manager) Recover(apply func(file uint64, block int64, offset uint32, data []byte) error) (winners, losers int, err error) {
	recs, err := m.Scan()
	if err != nil {
		return 0, 0, err
	}
	committed := map[uint64]bool{}
	aborted := map[uint64]bool{}
	seen := map[uint64]bool{}
	for _, r := range recs {
		switch r.Type {
		case RecCommit:
			committed[r.Txn] = true
		case RecAbort:
			aborted[r.Txn] = true
		case RecUpdate:
			seen[r.Txn] = true
		}
	}
	// Redo committed and aborted-with-compensation transactions forward.
	for _, r := range recs {
		if r.Type == RecUpdate && (committed[r.Txn] || aborted[r.Txn]) {
			if err := apply(r.File, r.Block, r.Offset, r.After); err != nil {
				return 0, 0, err
			}
		}
	}
	// Undo in-flight losers backward.
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		if r.Type == RecUpdate && !committed[r.Txn] && !aborted[r.Txn] {
			if err := apply(r.File, r.Block, r.Offset, r.Before); err != nil {
				return 0, 0, err
			}
		}
	}
	w, l := 0, 0
	for _, txn := range detsort.Keys(seen) {
		if committed[txn] {
			w++
		} else {
			l++
		}
	}
	return w, l, nil
}

// Reset truncates the log after a quiescent checkpoint (all data pages
// flushed, no active transactions): recovery will find an empty log.
func (m *Manager) Reset() error {
	if m.closed {
		return ErrClosed
	}
	m.buf = m.buf[:0]
	if err := m.f.Truncate(headerSize); err != nil {
		return err
	}
	if err := m.f.Sync(); err != nil {
		return err
	}
	m.tail, m.end = headerSize, headerSize
	m.pendingComms = 0
	return nil
}

// Close flushes and closes the log file.
func (m *Manager) Close() error {
	if m.closed {
		return nil
	}
	if err := m.Force(); err != nil {
		return err
	}
	m.closed = true
	return m.f.Close()
}

// String describes the log position.
func (m *Manager) String() string {
	return fmt.Sprintf("wal{end=%d durable=%d}", m.end, m.tail)
}
